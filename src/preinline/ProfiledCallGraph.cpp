//===- preinline/ProfiledCallGraph.cpp - Profiled call graph ----------------===//

#include "preinline/ProfiledCallGraph.h"

#include <algorithm>
#include <functional>
#include <set>

namespace csspgo {

ProfiledCallGraph
ProfiledCallGraph::fromProfile(const ContextProfile &Profile) {
  ProfiledCallGraph G;
  std::set<std::string> NodeSet;
  Profile.forEachNode([&G, &NodeSet](const SampleContext &Ctx,
                                     const ContextTrieNode &N) {
    const std::string &Caller = Ctx.back().Func;
    NodeSet.insert(Caller);
    // Out-of-line calls observed as LBR call branches.
    for (const auto &[Site, Targets] : N.Profile.Calls) {
      for (const auto &[Callee, Count] : Targets) {
        G.Edges[Caller][Callee] += Count;
        G.InWeight[Callee] += Count;
        NodeSet.insert(Callee);
      }
    }
    // Caller->callee edges implied by the context structure itself: a
    // context [.. A:s @ B] proves A calls (or inlined) B, even when no
    // call branch exists in the binary because B's copy was inlined.
    for (size_t I = 0; I + 1 < Ctx.size(); ++I) {
      G.Edges[Ctx[I].Func][Ctx[I + 1].Func] += N.Profile.TotalSamples;
      G.InWeight[Ctx[I + 1].Func] += N.Profile.TotalSamples;
      NodeSet.insert(Ctx[I].Func);
      NodeSet.insert(Ctx[I + 1].Func);
    }
  });
  G.Nodes.assign(NodeSet.begin(), NodeSet.end());
  return G;
}

uint64_t ProfiledCallGraph::edgeWeight(const std::string &From,
                                       const std::string &To) const {
  auto It = Edges.find(From);
  if (It == Edges.end())
    return 0;
  auto It2 = It->second.find(To);
  return It2 == It->second.end() ? 0 : It2->second;
}

std::vector<std::string> ProfiledCallGraph::topDownOrder() const {
  // DFS post-order from root candidates (no incoming weight first, then by
  // decreasing out weight), reversed. Cycles are cut by the visited set;
  // starting at the heaviest roots keeps the hot tree intact.
  std::vector<std::string> Roots;
  for (const std::string &N : Nodes)
    if (!InWeight.count(N))
      Roots.push_back(N);
  // Fall back to every node as a potential root (cycle-only graphs).
  std::vector<std::string> Order;
  std::set<std::string> Visited;
  std::function<void(const std::string &)> Visit =
      [&](const std::string &N) {
        if (!Visited.insert(N).second)
          return;
        auto It = Edges.find(N);
        if (It != Edges.end()) {
          // Visit heavier callees first for a stable, hotness-biased order.
          std::vector<std::pair<uint64_t, std::string>> Sorted;
          for (const auto &[Callee, W] : It->second)
            Sorted.emplace_back(W, Callee);
          std::sort(Sorted.rbegin(), Sorted.rend());
          for (const auto &[W, Callee] : Sorted)
            Visit(Callee);
        }
        Order.push_back(N);
      };
  for (const std::string &R : Roots)
    Visit(R);
  for (const std::string &N : Nodes)
    Visit(N);
  std::reverse(Order.begin(), Order.end());
  return Order;
}

} // namespace csspgo

//===- preinline/ProfiledCallGraph.h - Profiled call graph -------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Call graph built purely from profile data (no IR): nodes are function
/// names, edge weights are call-target sample counts summed over all
/// contexts. Provides the top-down traversal order the pre-inliner needs
/// (Algorithm 2 line 1: GetTopDownOrder(ProfiledCallGraph)).
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_PREINLINE_PROFILEDCALLGRAPH_H
#define CSSPGO_PREINLINE_PROFILEDCALLGRAPH_H

#include "profile/ContextTrie.h"

#include <map>
#include <string>
#include <vector>

namespace csspgo {

class ProfiledCallGraph {
public:
  /// Builds the graph from all call-target records in \p Profile.
  static ProfiledCallGraph fromProfile(const ContextProfile &Profile);

  /// Functions in top-down order: callers before callees, cycles broken by
  /// edge weight (heaviest tree kept).
  std::vector<std::string> topDownOrder() const;

  uint64_t edgeWeight(const std::string &From, const std::string &To) const;

  const std::map<std::string, std::map<std::string, uint64_t>> &
  edges() const {
    return Edges;
  }

private:
  std::map<std::string, std::map<std::string, uint64_t>> Edges;
  std::map<std::string, uint64_t> InWeight;
  std::vector<std::string> Nodes;
};

} // namespace csspgo

#endif // CSSPGO_PREINLINE_PROFILEDCALLGRAPH_H

//===- preinline/PreInliner.cpp - Context-sensitive pre-inliner -------------===//

#include "preinline/PreInliner.h"

#include "preinline/ProfiledCallGraph.h"
#include "profile/ProfileSummary.h"

#include <algorithm>
#include <queue>

namespace csspgo {

namespace {

/// Recursively merges \p N (and its subtree) into \p Dst: profiles merge,
/// children re-parent under the same (site, callee) keys. This implements
/// MoveContextProfileToBaseProfile including context promotion.
void promoteSubtree(ContextTrieNode &Dst, ContextTrieNode &N,
                    unsigned &Merged) {
  if (N.HasProfile) {
    if (!Dst.HasProfile) {
      Dst.HasProfile = true;
      Dst.Profile.Name = N.Profile.Name;
      Dst.Profile.Guid = N.Profile.Guid;
      Dst.Profile.Checksum = N.Profile.Checksum;
    }
    Dst.Profile.merge(N.Profile);
    ++Merged;
  }
  Dst.ShouldBeInlined |= N.ShouldBeInlined;
  for (auto &[Key, Child] : N.Children) {
    ContextTrieNode &DstChild = Dst.getOrCreateChild(Key.first, Key.second);
    promoteSubtree(DstChild, Child, Merged);
  }
}

struct Candidate {
  ContextTrieNode *Node = nullptr;
  SampleContext Ctx; ///< Full context of the candidate copy.
  uint64_t Samples = 0;
  uint64_t SizeBytes = 0;

  bool operator<(const Candidate &O) const {
    // Max-heap by samples; smaller size wins ties.
    if (Samples != O.Samples)
      return Samples < O.Samples;
    return SizeBytes > O.SizeBytes;
  }
};

} // namespace

PreInlinerStats runPreInliner(ContextProfile &Profile,
                              const FuncSizeTable &Sizes,
                              const PreInlinerOptions &Opts) {
  PreInlinerStats Stats;
  uint64_t HotThreshold = Opts.HotThreshold;
  if (!HotThreshold)
    HotThreshold = hotThreshold(Profile, Opts.HotCutoff);
  Stats.HotThresholdUsed = HotThreshold;

  ProfiledCallGraph CG = ProfiledCallGraph::fromProfile(Profile);

  for (const std::string &Func : CG.topDownOrder()) {
    // Collect the current trie nodes whose leaf is Func, with their full
    // contexts and parents.
    struct NodeRef {
      SampleContext Ctx;
      ContextTrieNode *Node;
      ContextTrieNode *Parent;
      std::pair<uint32_t, std::string> KeyInParent;
    };
    std::vector<NodeRef> Deep;
    // Manual walk with parent tracking.
    std::function<void(ContextTrieNode &, SampleContext &)> Walk =
        [&](ContextTrieNode &N, SampleContext &Ctx) {
          for (auto &[Key, Child] : N.Children) {
            if (!Ctx.empty())
              Ctx.back().Site = Key.first;
            Ctx.push_back({Child.FuncName, 0});
            if (Child.FuncName == Func && Ctx.size() > 1)
              Deep.push_back({Ctx, &Child, &N, Key});
            Walk(Child, Ctx);
            Ctx.pop_back();
            if (!Ctx.empty())
              Ctx.back().Site = 0;
          }
        };
    SampleContext Ctx;
    Walk(Profile.Root, Ctx);

    // Move unmarked contexts (and their subtrees) into the base profile.
    ContextTrieNode &Base = Profile.Root.getOrCreateChild(0, Func);
    // Erase children-first to keep parents valid: process deepest first.
    std::stable_sort(Deep.begin(), Deep.end(),
                     [](const NodeRef &A, const NodeRef &B) {
                       return A.Ctx.size() > B.Ctx.size();
                     });
    for (NodeRef &R : Deep) {
      if (R.Node->ShouldBeInlined)
        continue;
      promoteSubtree(Base, *R.Node, Stats.ContextsMergedToBase);
      R.Parent->Children.erase(R.KeyInParent);
    }

    // Candidate selection (Algorithm 2 lines 8-20) per live representation
    // of Func: the base context plus every still-inlined context. Re-walk
    // after promotion — marked nodes may have been re-parented into the
    // base subtree.
    Deep.clear();
    Walk(Profile.Root, Ctx);
    std::vector<std::pair<ContextTrieNode *, SampleContext>> Reps;
    Reps.emplace_back(&Base, SampleContext{{Func, 0}});
    for (NodeRef &R : Deep)
      if (R.Node->ShouldBeInlined)
        Reps.emplace_back(R.Node, R.Ctx);

    for (auto &[Rep, RepCtx] : Reps) {
      uint64_t FuncSize = Sizes.sizeForContext(RepCtx);
      std::priority_queue<Candidate> Queue;
      auto EnqueueChildren = [&](ContextTrieNode *N,
                                 const SampleContext &NCtx) {
        for (auto &[Key, Child] : N->Children) {
          if (!Child.HasProfile || Child.ShouldBeInlined)
            continue;
          Candidate C;
          C.Node = &Child;
          C.Ctx = NCtx;
          C.Ctx.back().Site = Key.first;
          C.Ctx.push_back({Child.FuncName, 0});
          C.Samples = Child.Profile.TotalSamples;
          C.SizeBytes = Sizes.sizeForContext(C.Ctx);
          Queue.push(std::move(C));
        }
      };
      EnqueueChildren(Rep, RepCtx);

      while (!Queue.empty() && FuncSize < Opts.SizeLimitBytes) {
        Candidate C = Queue.top();
        Queue.pop();
        if (C.Samples < HotThreshold)
          break; // Candidates only get colder.
        if (C.SizeBytes > Opts.MaxCandidateSizeBytes)
          continue;
        C.Node->ShouldBeInlined = true;
        ++Stats.ContextsMarkedInlined;
        FuncSize += C.SizeBytes;
        EnqueueChildren(C.Node, C.Ctx);
      }
    }
  }
  return Stats;
}

} // namespace csspgo

//===- preinline/PreInliner.h - Context-sensitive pre-inliner ----*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The context-sensitive pre-inliner (paper §III-B-b, Algorithm 2): runs
/// offline, during profile generation, and makes *global, top-down*
/// inline decisions using (a) context-sensitive hotness from the profile
/// and (b) function sizes *measured from the profiled binary* (Algorithm
/// 3) rather than early-IR estimates. Decisions are persisted in the
/// profile (ShouldBeInlined); context profiles of call sites that will
/// not be inlined are merged back into their callee's base profile, which
/// both shrinks the profile and gives the compiler accurate post-inline
/// base profiles despite ThinLTO-style module isolation.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_PREINLINE_PREINLINER_H
#define CSSPGO_PREINLINE_PREINLINER_H

#include "profile/ContextTrie.h"
#include "profgen/BinarySizeExtractor.h"

namespace csspgo {

struct PreInlinerOptions {
  /// Call-site sample count at/above which a context is an inline
  /// candidate. 0 = derive a profile-summary threshold at HotCutoff.
  uint64_t HotThreshold = 0;
  double HotCutoff = 0.9;
  /// Measured-size cap (bytes) for an inlinable candidate copy.
  uint64_t MaxCandidateSizeBytes = 550;
  /// Growth budget per function (bytes), Algorithm 2's "Limit".
  uint64_t SizeLimitBytes = 3000;
};

struct PreInlinerStats {
  unsigned ContextsMarkedInlined = 0;
  unsigned ContextsMergedToBase = 0;
  uint64_t HotThresholdUsed = 0;
};

/// Runs the pre-inliner over \p Profile in place. \p Sizes is the
/// Algorithm-3 size table extracted from the profiled binary.
PreInlinerStats runPreInliner(ContextProfile &Profile,
                              const FuncSizeTable &Sizes,
                              const PreInlinerOptions &Opts = {});

} // namespace csspgo

#endif // CSSPGO_PREINLINE_PREINLINER_H

//===- profile/ProfileMerge.cpp - Profile merging -------------------------===//

#include "profile/ProfileMerge.h"

#include <cassert>

namespace csspgo {

void mergeFlatProfiles(FlatProfile &Dst, const FlatProfile &Src) {
  assert(Dst.Kind == Src.Kind && "cannot merge profiles of different kinds");
  for (const auto &[Name, P] : Src.Functions) {
    FunctionProfile &D = Dst.getOrCreate(Name);
    D.Guid = P.Guid;
    D.Checksum = P.Checksum;
    D.merge(P);
  }
}

void mergeContextProfiles(ContextProfile &Dst, const ContextProfile &Src) {
  assert(Dst.Kind == Src.Kind && "cannot merge profiles of different kinds");
  Src.forEachNode([&Dst](const SampleContext &Ctx, const ContextTrieNode &N) {
    ContextTrieNode &D = Dst.getOrCreateNode(Ctx);
    D.HasProfile = true;
    D.Profile.Guid = N.Profile.Guid;
    D.Profile.Checksum = N.Profile.Checksum;
    D.ShouldBeInlined |= N.ShouldBeInlined;
    D.Profile.merge(N.Profile);
  });
}

} // namespace csspgo

//===- profile/ProfileMerge.cpp - Profile merging -------------------------===//

#include "profile/ProfileMerge.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace csspgo {

namespace {

const char *kindName(ProfileKind K) {
  return K == ProfileKind::LineBased ? "line-based" : "probe-based";
}

[[noreturn]] void fatalKindMismatch(const char *What, ProfileKind Dst,
                                    ProfileKind Src) {
  std::fprintf(stderr,
               "csspgo: cannot merge %s profiles of different kinds "
               "(dst is %s, src is %s); counts keyed by different anchor "
               "spaces must never be summed\n",
               What, kindName(Dst), kindName(Src));
  std::abort();
}

/// Decay scaler. Per-slot values round half up independently except for
/// the edge-conserved quantities (heads and call targets of sampled
/// profiles), which round through per-function-name cumulative
/// accumulators so both sides of every head/call edge telescope to the
/// same scaled sum (see the ProfileMerge.h contract). Profiles must be
/// scaled in a deterministic traversal for reproducible slot values; the
/// std::map orders used here match the serializers'.
class ProfileScaler {
public:
  ProfileScaler(uint64_t Num, uint64_t Den, bool ExactCounts)
      : Num(Num), Den(Den), Exact(ExactCounts) {}

  void scaleProfile(FunctionProfile &P) {
    uint64_t NewTotal = 0;
    for (auto &[K, N] : P.Body) {
      N = scaleValue(N);
      NewTotal = saturatingAdd(NewTotal, N);
    }
    P.TotalSamples = NewTotal;
    P.HeadSamples = Exact ? std::min(scaleValue(P.HeadSamples), NewTotal)
                          : scaleCumulative(Heads[P.Name], P.HeadSamples);
    for (auto &[K, Targets] : P.Calls)
      for (auto &[Callee, N] : Targets)
        N = Exact ? scaleValue(N) : scaleCumulative(CallTargets[Callee], N);
    for (auto &[K, Map] : P.Inlinees)
      for (auto &[Callee, Sub] : Map)
        scaleProfile(Sub);
  }

private:
  struct Acc {
    unsigned __int128 Pre = 0;  ///< Unscaled prefix sum.
    unsigned __int128 Post = 0; ///< round(Pre * Num / Den) so far.
  };

  uint64_t round128(unsigned __int128 V) const {
    unsigned __int128 R = (V * Num + Den / 2) / Den;
    return R > UINT64_MAX ? UINT64_MAX : static_cast<uint64_t>(R);
  }
  uint64_t scaleValue(uint64_t V) const { return round128(V); }
  uint64_t scaleCumulative(Acc &A, uint64_t V) {
    A.Pre += V;
    unsigned __int128 NewPost = (A.Pre * Num + Den / 2) / Den;
    unsigned __int128 Slot = NewPost - A.Post;
    A.Post = NewPost;
    return Slot > UINT64_MAX ? UINT64_MAX : static_cast<uint64_t>(Slot);
  }

  uint64_t Num, Den;
  bool Exact;
  std::map<std::string, Acc> Heads;
  std::map<std::string, Acc> CallTargets;
};

} // namespace

MergeStats mergeFlatProfiles(FlatProfile &Dst, const FlatProfile &Src) {
  if (Dst.Functions.empty())
    Dst.Kind = Src.Kind;
  else if (Dst.Kind != Src.Kind)
    fatalKindMismatch("flat", Dst.Kind, Src.Kind);
  MergeStats Stats;
  for (const auto &[Name, P] : Src.Functions) {
    if (Dst.Functions.count(Name))
      ++Stats.ContextsMerged;
    else
      ++Stats.ContextsAdded;
    Stats.CountsSummed +=
        saturatingAdd(P.totalBodySamples(), P.HeadSamples);
    FunctionProfile &D = Dst.getOrCreate(Name);
    if (P.Guid)
      D.Guid = P.Guid;
    if (P.Checksum)
      D.Checksum = P.Checksum;
    Stats.SaturatedCounts += D.merge(P);
  }
  return Stats;
}

MergeStats mergeContextProfiles(ContextProfile &Dst,
                                const ContextProfile &Src) {
  bool DstEmpty = Dst.Root.Children.empty() && !Dst.Root.HasProfile;
  if (DstEmpty)
    Dst.Kind = Src.Kind;
  else if (Dst.Kind != Src.Kind)
    fatalKindMismatch("context", Dst.Kind, Src.Kind);
  MergeStats Stats;
  Src.forEachNode([&Dst, &Stats](const SampleContext &Ctx,
                                 const ContextTrieNode &N) {
    ContextTrieNode &D = Dst.getOrCreateNode(Ctx);
    if (D.HasProfile)
      ++Stats.ContextsMerged;
    else
      ++Stats.ContextsAdded;
    Stats.CountsSummed +=
        saturatingAdd(N.Profile.totalBodySamples(), N.Profile.HeadSamples);
    D.HasProfile = true;
    if (N.Profile.Guid)
      D.Profile.Guid = N.Profile.Guid;
    if (N.Profile.Checksum)
      D.Profile.Checksum = N.Profile.Checksum;
    D.ShouldBeInlined |= N.ShouldBeInlined;
    Stats.SaturatedCounts += D.Profile.merge(N.Profile);
  });
  return Stats;
}

void scaleFlatProfile(FlatProfile &Profile, uint64_t Num, uint64_t Den,
                      bool ExactCounts) {
  if (!Den || Num == Den)
    return;
  ProfileScaler S(Num, Den, ExactCounts);
  for (auto &[Name, P] : Profile.Functions)
    S.scaleProfile(P);
}

void scaleContextProfile(ContextProfile &Profile, uint64_t Num, uint64_t Den) {
  if (!Den || Num == Den)
    return;
  ProfileScaler S(Num, Den, /*ExactCounts=*/false);
  Profile.forEachNodeMutable(
      [&S](const SampleContext &, ContextTrieNode &N) {
        S.scaleProfile(N.Profile);
      });
}

} // namespace csspgo

//===- profile/ProfileMerge.cpp - Profile merging -------------------------===//

#include "profile/ProfileMerge.h"

#include <cstdio>
#include <cstdlib>

namespace csspgo {

namespace {

const char *kindName(ProfileKind K) {
  return K == ProfileKind::LineBased ? "line-based" : "probe-based";
}

[[noreturn]] void fatalKindMismatch(const char *What, ProfileKind Dst,
                                    ProfileKind Src) {
  std::fprintf(stderr,
               "csspgo: cannot merge %s profiles of different kinds "
               "(dst is %s, src is %s); counts keyed by different anchor "
               "spaces must never be summed\n",
               What, kindName(Dst), kindName(Src));
  std::abort();
}

} // namespace

MergeStats mergeFlatProfiles(FlatProfile &Dst, const FlatProfile &Src) {
  if (Dst.Functions.empty())
    Dst.Kind = Src.Kind;
  else if (Dst.Kind != Src.Kind)
    fatalKindMismatch("flat", Dst.Kind, Src.Kind);
  MergeStats Stats;
  for (const auto &[Name, P] : Src.Functions) {
    if (Dst.Functions.count(Name))
      ++Stats.ContextsMerged;
    else
      ++Stats.ContextsAdded;
    Stats.CountsSummed +=
        saturatingAdd(P.totalBodySamples(), P.HeadSamples);
    FunctionProfile &D = Dst.getOrCreate(Name);
    if (P.Guid)
      D.Guid = P.Guid;
    if (P.Checksum)
      D.Checksum = P.Checksum;
    Stats.SaturatedCounts += D.merge(P);
  }
  return Stats;
}

MergeStats mergeContextProfiles(ContextProfile &Dst,
                                const ContextProfile &Src) {
  bool DstEmpty = Dst.Root.Children.empty() && !Dst.Root.HasProfile;
  if (DstEmpty)
    Dst.Kind = Src.Kind;
  else if (Dst.Kind != Src.Kind)
    fatalKindMismatch("context", Dst.Kind, Src.Kind);
  MergeStats Stats;
  Src.forEachNode([&Dst, &Stats](const SampleContext &Ctx,
                                 const ContextTrieNode &N) {
    ContextTrieNode &D = Dst.getOrCreateNode(Ctx);
    if (D.HasProfile)
      ++Stats.ContextsMerged;
    else
      ++Stats.ContextsAdded;
    Stats.CountsSummed +=
        saturatingAdd(N.Profile.totalBodySamples(), N.Profile.HeadSamples);
    D.HasProfile = true;
    if (N.Profile.Guid)
      D.Profile.Guid = N.Profile.Guid;
    if (N.Profile.Checksum)
      D.Profile.Checksum = N.Profile.Checksum;
    D.ShouldBeInlined |= N.ShouldBeInlined;
    Stats.SaturatedCounts += D.Profile.merge(N.Profile);
  });
  return Stats;
}

} // namespace csspgo

//===- profile/ProfileIO.h - Text profile (de)serialization -----*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text serialization of flat and context-sensitive profiles, modeled on
/// LLVM's extended-text sample-profile format. Serialized size is also the
/// metric for the profile-size scalability experiment (§III-B: untrimmed
/// context-sensitive profiles can be ~10x larger).
///
/// Flat format (one function):
///   foo:TOTAL:HEAD
///    !CFGChecksum: 12345            (probe-based only)
///    IDX.DISC: COUNT
///    IDX.DISC: @ CALLEE:COUNT [CALLEE:COUNT ...]
///    IDX.DISC: > CALLEE:TOTAL:HEAD { ... nested body ... }
///
/// Context-sensitive format (one context per record):
///   [main:12 @ foo:3 @ bar]:TOTAL:HEAD
///    !CFGChecksum: 12345
///    !ShouldBeInlined              (pre-inliner decision)
///    IDX: COUNT
///    IDX: @ CALLEE:COUNT
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_PROFILE_PROFILEIO_H
#define CSSPGO_PROFILE_PROFILEIO_H

#include "profile/ContextTrie.h"
#include "profile/FunctionProfile.h"

#include <string>

namespace csspgo {

std::string serializeFlatProfile(const FlatProfile &Profile);
std::string serializeContextProfile(const ContextProfile &Profile);

/// Parses a flat profile; returns false on malformed input.
bool parseFlatProfile(const std::string &Text, FlatProfile &Out);

/// Parses a context-sensitive profile; returns false on malformed input.
bool parseContextProfile(const std::string &Text, ContextProfile &Out);

/// Serialized size in bytes (the scalability metric).
size_t profileSizeBytes(const FlatProfile &Profile);
size_t profileSizeBytes(const ContextProfile &Profile);

} // namespace csspgo

#endif // CSSPGO_PROFILE_PROFILEIO_H

//===- profile/ProfileArena.cpp - Flat SoA profile views ------------------===//

#include "profile/ProfileArena.h"

#include "support/Hashing.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace csspgo {

//===----------------------------------------------------------------------===//
// Arena primitives
//===----------------------------------------------------------------------===//

uint32_t ProfileArena::appendProfile(const FunctionProfile &P) {
  FuncRecord R;
  R.Name = Names.intern(P.Name);
  R.Guid = P.Guid;
  R.Checksum = P.Checksum;
  R.TotalSamples = P.TotalSamples;
  R.HeadSamples = P.HeadSamples;

  R.BodyBegin = static_cast<uint32_t>(Body.size());
  for (const auto &[K, N] : P.Body)
    Body.push_back({K, N});
  R.BodyEnd = static_cast<uint32_t>(Body.size());

  R.CallsBegin = static_cast<uint32_t>(Calls.size());
  for (const auto &[K, Targets] : P.Calls)
    for (const auto &[Callee, N] : Targets)
      Calls.push_back({K, Names.intern(Callee), N});
  R.CallsEnd = static_cast<uint32_t>(Calls.size());

  // Children append their own slices while we recurse, so collect this
  // record's inlinee slots first and emit them contiguously afterwards.
  std::vector<InlineSlot> Tmp;
  for (const auto &[K, Map] : P.Inlinees)
    for (const auto &[Callee, Sub] : Map)
      Tmp.push_back({K, Names.intern(Callee), appendProfile(Sub)});
  R.InlineesBegin = static_cast<uint32_t>(Inlinees.size());
  Inlinees.insert(Inlinees.end(), Tmp.begin(), Tmp.end());
  R.InlineesEnd = static_cast<uint32_t>(Inlinees.size());

  Records.push_back(R);
  return static_cast<uint32_t>(Records.size() - 1);
}

FunctionProfile ProfileArena::materialize(uint32_t Rec) const {
  const FuncRecord &R = Records[Rec];
  FunctionProfile P;
  P.Name = Names.name(R.Name);
  P.Guid = R.Guid;
  P.Checksum = R.Checksum;
  P.TotalSamples = R.TotalSamples;
  P.HeadSamples = R.HeadSamples;
  for (uint32_t I = R.BodyBegin; I != R.BodyEnd; ++I)
    P.Body.emplace_hint(P.Body.end(), Body[I].Key, Body[I].Count);
  {
    std::map<std::string, uint64_t> *Cur = nullptr;
    ProfileKey CurK;
    for (uint32_t I = R.CallsBegin; I != R.CallsEnd; ++I) {
      const CallSlot &S = Calls[I];
      if (!Cur || !(S.Key == CurK)) {
        Cur = &P.Calls.emplace_hint(P.Calls.end(), S.Key,
                                    std::map<std::string, uint64_t>())
                   ->second;
        CurK = S.Key;
      }
      Cur->emplace_hint(Cur->end(), Names.name(S.Callee), S.Count);
    }
  }
  {
    std::map<std::string, FunctionProfile> *Cur = nullptr;
    ProfileKey CurK;
    for (uint32_t I = R.InlineesBegin; I != R.InlineesEnd; ++I) {
      const InlineSlot &S = Inlinees[I];
      if (!Cur || !(S.Key == CurK)) {
        Cur = &P.Inlinees
                   .emplace_hint(P.Inlinees.end(), S.Key,
                                 std::map<std::string, FunctionProfile>())
                   ->second;
        CurK = S.Key;
      }
      Cur->emplace_hint(Cur->end(), Names.name(S.Callee), materialize(S.Rec));
    }
  }
  return P;
}

uint64_t ProfileArena::totalBodySamples(uint32_t Rec) const {
  const FuncRecord &R = Records[Rec];
  uint64_t Total = 0;
  for (uint32_t I = R.BodyBegin; I != R.BodyEnd; ++I)
    Total = saturatingAdd(Total, Body[I].Count);
  for (uint32_t I = R.InlineesBegin; I != R.InlineesEnd; ++I)
    Total = saturatingAdd(Total, totalBodySamples(Inlinees[I].Rec));
  return Total;
}

size_t ProfileArena::byteSize() const {
  return Body.size() * sizeof(BodySlot) + Calls.size() * sizeof(CallSlot) +
         Inlinees.size() * sizeof(InlineSlot) +
         Frames.size() * sizeof(FrameSlot) +
         Records.size() * sizeof(FuncRecord);
}

//===----------------------------------------------------------------------===//
// Bridges to/from the map containers
//===----------------------------------------------------------------------===//

FlatProfileView flatViewOf(const FlatProfile &P) {
  FlatProfileView V;
  V.Kind = P.Kind;
  for (const auto &[Name, FP] : P.Functions)
    V.Functions.push_back(V.Arena.appendProfile(FP));
  return V;
}

FlatProfile flatProfileOf(const FlatProfileView &V) {
  FlatProfile P;
  P.Kind = V.Kind;
  for (uint32_t Rec : V.Functions) {
    FunctionProfile FP = V.Arena.materialize(Rec);
    std::string Name = FP.Name;
    P.Functions.emplace_hint(P.Functions.end(), std::move(Name),
                             std::move(FP));
  }
  return P;
}

ContextProfileView contextViewOf(const ContextProfile &P) {
  ContextProfileView V;
  V.Kind = P.Kind;
  P.forEachNode([&V](const SampleContext &Ctx, const ContextTrieNode &N) {
    ContextRecord C;
    C.FramesBegin = static_cast<uint32_t>(V.Arena.Frames.size());
    for (const ContextFrame &F : Ctx)
      V.Arena.Frames.push_back({V.Arena.Names.intern(F.Func), F.Site});
    C.FramesEnd = static_cast<uint32_t>(V.Arena.Frames.size());
    C.Rec = V.Arena.appendProfile(N.Profile);
    C.ShouldBeInlined = N.ShouldBeInlined;
    V.Contexts.push_back(C);
  });
  return V;
}

ContextProfile contextProfileOf(const ContextProfileView &V) {
  ContextProfile P;
  P.Kind = V.Kind;
  // Contexts arrive in trie-DFS order, so consecutive contexts share long
  // node prefixes; reuse them via a path stack instead of re-walking the
  // trie from the root each time. Node identity at depth d depends on the
  // frame functions up to d and the sites *before* d (the leaf site is
  // not part of the path key).
  std::vector<ContextTrieNode *> Stack;
  std::vector<FrameSlot> Prev;
  SampleContext Ctx;
  for (const ContextRecord &C : V.Contexts) {
    uint32_t Len = C.FramesEnd - C.FramesBegin;
    const FrameSlot *Frames = V.Arena.Frames.data() + C.FramesBegin;
    size_t Common = 0;
    while (Common < Prev.size() && Common < Len &&
           Prev[Common].Func == Frames[Common].Func &&
           (Common == 0 || Prev[Common - 1].Site == Frames[Common - 1].Site))
      ++Common;
    // A deeper previous path with an equal site chain can over-extend the
    // match by one frame when the leaf sites differ; the loop condition
    // above already guards that via the Site check of the preceding frame,
    // so Stack[0..Common) are exactly the reusable nodes.
    Stack.resize(Common);
    ContextTrieNode *N = Common ? Stack.back() : nullptr;
    for (size_t I = Common; I != Len; ++I) {
      const std::string &Func = V.Arena.Names.name(Frames[I].Func);
      uint32_t Site = I == 0 ? 0 : Frames[I - 1].Site;
      N = I == 0 ? &P.Root.getOrCreateChild(0, Func)
                 : &N->getOrCreateChild(Site, Func);
      Stack.push_back(N);
    }
    Prev.assign(Frames, Frames + Len);
    N->HasProfile = true;
    N->ShouldBeInlined = C.ShouldBeInlined;
    N->Profile = V.Arena.materialize(C.Rec);
  }
  (void)Ctx;
  return P;
}

//===----------------------------------------------------------------------===//
// K-way merge over sorted slices
//===----------------------------------------------------------------------===//

namespace {

const char *kindName(ProfileKind K) {
  return K == ProfileKind::LineBased ? "line-based" : "probe-based";
}

[[noreturn]] void fatalViewKindMismatch(const char *What, ProfileKind Dst,
                                        ProfileKind Src) {
  std::fprintf(stderr,
               "csspgo: cannot merge %s profiles of different kinds "
               "(dst is %s, src is %s); counts keyed by different anchor "
               "spaces must never be summed\n",
               What, kindName(Dst), kindName(Src));
  std::abort();
}

/// Saturating accumulate that counts clamp events, sharing the clamp
/// implementation with FunctionProfile (saturatingAccum).
void satInto(uint64_t &Slot, uint64_t V, uint64_t &Saturated) {
  if (saturatingAccum(Slot, V))
    ++Saturated;
}

/// One input record for a merge: the part's arena, its name remap into
/// the output interner, and the record itself.
struct RecSource {
  const ProfileArena *A = nullptr;
  const std::vector<NameId> *Remap = nullptr;
  uint32_t Rec = 0;

  const FuncRecord &rec() const { return A->Records[Rec]; }
  NameId remap(NameId Id) const { return (*Remap)[Id]; }
};

/// Deep-copies record \p Rec of \p A into \p Out, remapping name ids.
/// Canonical slice order is preserved because the remap is built
/// order-preserving over name strings.
uint32_t copyRecord(ProfileArena &Out, const ProfileArena &A, uint32_t Rec,
                    const std::vector<NameId> &Remap) {
  const FuncRecord &R = A.Records[Rec];
  FuncRecord N;
  N.Name = Remap[R.Name];
  N.Guid = R.Guid;
  N.Checksum = R.Checksum;
  N.TotalSamples = R.TotalSamples;
  N.HeadSamples = R.HeadSamples;
  N.BodyBegin = static_cast<uint32_t>(Out.Body.size());
  for (uint32_t I = R.BodyBegin; I != R.BodyEnd; ++I)
    Out.Body.push_back(A.Body[I]);
  N.BodyEnd = static_cast<uint32_t>(Out.Body.size());
  N.CallsBegin = static_cast<uint32_t>(Out.Calls.size());
  for (uint32_t I = R.CallsBegin; I != R.CallsEnd; ++I)
    Out.Calls.push_back(
        {A.Calls[I].Key, Remap[A.Calls[I].Callee], A.Calls[I].Count});
  N.CallsEnd = static_cast<uint32_t>(Out.Calls.size());
  std::vector<InlineSlot> Tmp;
  for (uint32_t I = R.InlineesBegin; I != R.InlineesEnd; ++I)
    Tmp.push_back({A.Inlinees[I].Key, Remap[A.Inlinees[I].Callee],
                   copyRecord(Out, A, A.Inlinees[I].Rec, Remap)});
  N.InlineesBegin = static_cast<uint32_t>(Out.Inlinees.size());
  Out.Inlinees.insert(Out.Inlinees.end(), Tmp.begin(), Tmp.end());
  N.InlineesEnd = static_cast<uint32_t>(Out.Inlinees.size());
  Out.Records.push_back(N);
  return static_cast<uint32_t>(Out.Records.size() - 1);
}

/// Merges \p Base (the pre-existing Dst record, or null) and \p Srcs
/// (merge sources in part order) into one output record, reproducing the
/// sequential FunctionProfile::merge fold exactly: per-slot values fold
/// with saturating adds in part order starting from the base value,
/// TotalSamples folds part-major over each source's body entries, and
/// Guid/Checksum take the last nonzero source (falling back to the base,
/// falling back to \p SeedGuid / 0 — the values a freshly created map
/// node would carry). \p Saturated accumulates clamp events exactly as
/// the map fold counts them.
uint32_t mergeRecords(ProfileArena &Out, NameId Name, uint64_t SeedGuid,
                      const RecSource *Base, const std::vector<RecSource> &Srcs,
                      uint64_t &Saturated) {
  assert(!Srcs.empty() && "pure copies go through copyRecord");
  FuncRecord N;
  N.Name = Name;
  N.Guid = Base ? Base->rec().Guid : SeedGuid;
  N.Checksum = Base ? Base->rec().Checksum : 0;
  N.TotalSamples = Base ? Base->rec().TotalSamples : 0;
  N.HeadSamples = Base ? Base->rec().HeadSamples : 0;
  for (const RecSource &S : Srcs) {
    const FuncRecord &R = S.rec();
    if (R.Guid)
      N.Guid = R.Guid;
    if (R.Checksum)
      N.Checksum = R.Checksum;
    // The map fold adds each source body entry into TotalSamples right
    // after its slot; the slot and total chains are independent, so the
    // part-major total fold here sees the identical addition sequence.
    for (uint32_t I = R.BodyBegin; I != R.BodyEnd; ++I)
      satInto(N.TotalSamples, S.A->Body[I].Count, Saturated);
    satInto(N.HeadSamples, R.HeadSamples, Saturated);
  }

  size_t K = Srcs.size() + (Base ? 1 : 0);
  // Cursor 0 is the base when present; sources follow in part order.
  auto sourceAt = [&](size_t I) -> const RecSource & {
    return Base ? (I == 0 ? *Base : Srcs[I - 1]) : Srcs[I];
  };
  auto isBase = [&](size_t I) { return Base && I == 0; };

  // Body: k-way by ProfileKey; within a key, fold base value then source
  // values in part order.
  {
    std::vector<uint32_t> Cur(K), End(K);
    for (size_t I = 0; I != K; ++I) {
      Cur[I] = sourceAt(I).rec().BodyBegin;
      End[I] = sourceAt(I).rec().BodyEnd;
    }
    N.BodyBegin = static_cast<uint32_t>(Out.Body.size());
    while (true) {
      bool Any = false;
      ProfileKey Min;
      for (size_t I = 0; I != K; ++I) {
        if (Cur[I] == End[I])
          continue;
        ProfileKey Key = sourceAt(I).A->Body[Cur[I]].Key;
        if (!Any || Key < Min) {
          Min = Key;
          Any = true;
        }
      }
      if (!Any)
        break;
      uint64_t Val = 0;
      for (size_t I = 0; I != K; ++I) {
        if (Cur[I] == End[I])
          continue;
        const BodySlot &S = sourceAt(I).A->Body[Cur[I]];
        if (!(S.Key == Min))
          continue;
        if (isBase(I))
          Val = S.Count;
        else
          satInto(Val, S.Count, Saturated);
        ++Cur[I];
      }
      Out.Body.push_back({Min, Val});
    }
    N.BodyEnd = static_cast<uint32_t>(Out.Body.size());
  }

  // Calls: k-way by (key, callee name) — callee names compare as output
  // interner ids, which are assigned in name order.
  {
    std::vector<uint32_t> Cur(K), End(K);
    for (size_t I = 0; I != K; ++I) {
      Cur[I] = sourceAt(I).rec().CallsBegin;
      End[I] = sourceAt(I).rec().CallsEnd;
    }
    auto keyOf = [&](size_t I) {
      const CallSlot &S = sourceAt(I).A->Calls[Cur[I]];
      return std::make_pair(S.Key, sourceAt(I).remap(S.Callee));
    };
    N.CallsBegin = static_cast<uint32_t>(Out.Calls.size());
    while (true) {
      bool Any = false;
      std::pair<ProfileKey, NameId> Min;
      for (size_t I = 0; I != K; ++I) {
        if (Cur[I] == End[I])
          continue;
        auto Key = keyOf(I);
        if (!Any || Key.first < Min.first ||
            (Key.first == Min.first && Key.second < Min.second)) {
          Min = Key;
          Any = true;
        }
      }
      if (!Any)
        break;
      uint64_t Val = 0;
      for (size_t I = 0; I != K; ++I) {
        if (Cur[I] == End[I] || !(keyOf(I) == Min))
          continue;
        uint64_t Count = sourceAt(I).A->Calls[Cur[I]].Count;
        if (isBase(I))
          Val = Count;
        else
          satInto(Val, Count, Saturated);
        ++Cur[I];
      }
      Out.Calls.push_back({Min.first, Min.second, Val});
    }
    N.CallsEnd = static_cast<uint32_t>(Out.Calls.size());
  }

  // Inlinees: k-way by (key, callee name), recursing per merged slot. A
  // slot present only in the base copies through verbatim; otherwise the
  // child records merge with the base's child (if any) as their base.
  {
    std::vector<uint32_t> Cur(K), End(K);
    for (size_t I = 0; I != K; ++I) {
      Cur[I] = sourceAt(I).rec().InlineesBegin;
      End[I] = sourceAt(I).rec().InlineesEnd;
    }
    auto keyOf = [&](size_t I) {
      const InlineSlot &S = sourceAt(I).A->Inlinees[Cur[I]];
      return std::make_pair(S.Key, sourceAt(I).remap(S.Callee));
    };
    std::vector<InlineSlot> Tmp;
    while (true) {
      bool Any = false;
      std::pair<ProfileKey, NameId> Min;
      for (size_t I = 0; I != K; ++I) {
        if (Cur[I] == End[I])
          continue;
        auto Key = keyOf(I);
        if (!Any || Key.first < Min.first ||
            (Key.first == Min.first && Key.second < Min.second)) {
          Min = Key;
          Any = true;
        }
      }
      if (!Any)
        break;
      RecSource ChildBase;
      bool HasChildBase = false;
      std::vector<RecSource> ChildSrcs;
      for (size_t I = 0; I != K; ++I) {
        if (Cur[I] == End[I] || !(keyOf(I) == Min))
          continue;
        const RecSource &S = sourceAt(I);
        RecSource Child{S.A, S.Remap, S.A->Inlinees[Cur[I]].Rec};
        if (isBase(I)) {
          ChildBase = Child;
          HasChildBase = true;
        } else {
          ChildSrcs.push_back(Child);
        }
        ++Cur[I];
      }
      uint32_t ChildRec;
      if (ChildSrcs.empty()) {
        ChildRec =
            copyRecord(Out, *ChildBase.A, ChildBase.Rec, *ChildBase.Remap);
      } else {
        // getOrCreateInlinee seeds a fresh inlinee with Name = callee and
        // no GUID; an existing base child keeps its own name.
        NameId ChildName = HasChildBase
                               ? ChildBase.remap(ChildBase.rec().Name)
                               : Min.second;
        ChildRec = mergeRecords(Out, ChildName, /*SeedGuid=*/0,
                                HasChildBase ? &ChildBase : nullptr, ChildSrcs,
                                Saturated);
      }
      Tmp.push_back({Min.first, Min.second, ChildRec});
    }
    N.InlineesBegin = static_cast<uint32_t>(Out.Inlinees.size());
    Out.Inlinees.insert(Out.Inlinees.end(), Tmp.begin(), Tmp.end());
    N.InlineesEnd = static_cast<uint32_t>(Out.Inlinees.size());
  }

  Out.Records.push_back(N);
  return static_cast<uint32_t>(Out.Records.size() - 1);
}

/// Builds an order-preserving name remap for each part into \p Out's
/// interner: output ids are assigned over the sorted union of all part
/// names, so id comparisons order exactly as name comparisons.
template <typename ViewT>
std::vector<std::vector<NameId>>
buildRemaps(NameInterner &Out, const std::vector<const ViewT *> &Parts) {
  // Fleet fast path: shards of the same binary carry identical name
  // tables (the same trie shape interns in the same first-reference
  // order), so one sorted remap serves every part. The equality scan
  // short-circuits on the first mismatch, so disjoint parts only pay a
  // size compare or one string compare.
  bool Identical = true;
  for (size_t P = 1; Identical && P != Parts.size(); ++P) {
    const NameInterner &A = Parts[0]->Arena.Names;
    const NameInterner &B = Parts[P]->Arena.Names;
    if (A.size() != B.size()) {
      Identical = false;
      break;
    }
    for (size_t I = 0; I != A.size(); ++I)
      if (A.name(static_cast<NameId>(I)) != B.name(static_cast<NameId>(I))) {
        Identical = false;
        break;
      }
  }

  std::vector<std::string_view> All;
  size_t Total = 0;
  for (const ViewT *P : Parts)
    Total += P->Arena.Names.size();
  All.reserve(Identical && !Parts.empty() ? Parts[0]->Arena.Names.size()
                                          : Total);
  size_t Scan = Identical && !Parts.empty() ? 1 : Parts.size();
  for (size_t P = 0; P != Scan; ++P)
    for (size_t I = 0; I != Parts[P]->Arena.Names.size(); ++I)
      All.push_back(Parts[P]->Arena.Names.name(static_cast<NameId>(I)));
  std::sort(All.begin(), All.end());
  All.erase(std::unique(All.begin(), All.end()), All.end());
  for (std::string_view S : All)
    Out.intern(S);
  std::vector<std::vector<NameId>> Remaps;
  if (Identical && !Parts.empty()) {
    std::vector<NameId> Map(Parts[0]->Arena.Names.size());
    for (size_t I = 0; I != Map.size(); ++I)
      Map[I] = Out.intern(Parts[0]->Arena.Names.name(static_cast<NameId>(I)));
    Remaps.assign(Parts.size(), Map);
    return Remaps;
  }
  for (const ViewT *P : Parts) {
    std::vector<NameId> Map(P->Arena.Names.size());
    for (size_t I = 0; I != Map.size(); ++I)
      Map[I] = Out.intern(P->Arena.Names.name(static_cast<NameId>(I)));
    Remaps.push_back(std::move(Map));
  }
  return Remaps;
}

/// Per-source merge-event statistics shared by the flat and context
/// merges: mergeFlatProfiles / mergeContextProfiles count one event per
/// (part, entry) pair for every merge *source* (the base entry existed
/// already and contributes none).
void countMergeEvents(MergeStats &Stats, bool HadBase,
                      const std::vector<RecSource> &Srcs) {
  for (size_t I = 0; I != Srcs.size(); ++I) {
    if (HadBase || I)
      ++Stats.ContextsMerged;
    else
      ++Stats.ContextsAdded;
    const RecSource &S = Srcs[I];
    Stats.CountsSummed +=
        saturatingAdd(S.A->totalBodySamples(S.Rec), S.rec().HeadSamples);
  }
}

} // namespace

FlatProfileView
mergeFlatViews(const std::vector<const FlatProfileView *> &Parts,
               MergeStats &Stats, bool IntoEmptyDst) {
  FlatProfileView Out;
  if (Parts.empty())
    return Out;
  Out.Kind = Parts[0]->Kind;
  for (const FlatProfileView *P : Parts)
    if (P->Kind != Out.Kind)
      fatalViewKindMismatch("flat", Out.Kind, P->Kind);
  auto Remaps = buildRemaps(Out.Arena.Names, Parts);

  size_t K = Parts.size();
  std::vector<size_t> Cur(K);
  auto nameAt = [&](size_t P) {
    return Remaps[P][Parts[P]->Arena.Records[Parts[P]->Functions[Cur[P]]].Name];
  };
  // Single scan per output function: minimum and its ties tracked
  // together (see mergeContextViews).
  std::vector<size_t> Ties;
  Ties.reserve(K);
  while (true) {
    bool Any = false;
    NameId Min = 0;
    Ties.clear();
    for (size_t P = 0; P != K; ++P) {
      if (Cur[P] == Parts[P]->Functions.size())
        continue;
      NameId N = nameAt(P);
      if (!Any || N < Min) {
        Min = N;
        Any = true;
        Ties.clear();
        Ties.push_back(P);
      } else if (N == Min) {
        Ties.push_back(P);
      }
    }
    if (!Any)
      break;
    RecSource Base;
    bool HasBase = false;
    std::vector<RecSource> Srcs;
    for (size_t P : Ties) {
      RecSource S{&Parts[P]->Arena, &Remaps[P], Parts[P]->Functions[Cur[P]]};
      if (P == 0 && !IntoEmptyDst) {
        Base = S;
        HasBase = true;
      } else {
        Srcs.push_back(S);
      }
      ++Cur[P];
      assert((Cur[P] == Parts[P]->Functions.size() || nameAt(P) > Min) &&
             "view functions must be name-sorted");
    }
    countMergeEvents(Stats, HasBase, Srcs);
    uint32_t Rec =
        Srcs.empty()
            ? copyRecord(Out.Arena, *Base.A, Base.Rec, *Base.Remap)
            : mergeRecords(Out.Arena, Min, /*SeedGuid=*/0,
                           HasBase ? &Base : nullptr, Srcs, Stats.SaturatedCounts);
    Out.Functions.push_back(Rec);
  }
  return Out;
}

namespace {

/// Compares two contexts by their trie path-key sequences — (site to
/// this frame, function) pairs, prefix-first — which is exactly the
/// order ContextProfile::forEachNode visits profile nodes in.
int compareContexts(const ProfileArena &AA, const std::vector<NameId> &RA,
                    const ContextRecord &A, const ProfileArena &AB,
                    const std::vector<NameId> &RB, const ContextRecord &B) {
  uint32_t LenA = A.FramesEnd - A.FramesBegin;
  uint32_t LenB = B.FramesEnd - B.FramesBegin;
  uint32_t Len = std::min(LenA, LenB);
  for (uint32_t I = 0; I != Len; ++I) {
    const FrameSlot &FA = AA.Frames[A.FramesBegin + I];
    const FrameSlot &FB = AB.Frames[B.FramesBegin + I];
    uint32_t SiteA = I == 0 ? 0 : AA.Frames[A.FramesBegin + I - 1].Site;
    uint32_t SiteB = I == 0 ? 0 : AB.Frames[B.FramesBegin + I - 1].Site;
    if (SiteA != SiteB)
      return SiteA < SiteB ? -1 : 1;
    NameId NA = RA[FA.Func], NB = RB[FB.Func];
    if (NA != NB)
      return NA < NB ? -1 : 1;
  }
  if (LenA != LenB)
    return LenA < LenB ? -1 : 1;
  return 0;
}

} // namespace

ContextProfileView
mergeContextViews(const std::vector<const ContextProfileView *> &Parts,
                  MergeStats &Stats, bool IntoEmptyDst) {
  ContextProfileView Out;
  if (Parts.empty())
    return Out;
  Out.Kind = Parts[0]->Kind;
  for (const ContextProfileView *P : Parts)
    if (P->Kind != Out.Kind)
      fatalViewKindMismatch("context", Out.Kind, P->Kind);
  auto Remaps = buildRemaps(Out.Arena.Names, Parts);

  size_t K = Parts.size();
  std::vector<size_t> Cur(K);
  auto ctxAt = [&](size_t P) -> const ContextRecord & {
    return Parts[P]->Contexts[Cur[P]];
  };
  // Single scan per output context: track the minimum cursor AND the
  // parts tied with it as the scan goes (a new minimum resets the tie
  // list), instead of one sweep to find the minimum and a second to
  // collect contributors — compareContexts walks the whole frame slice,
  // so halving the sweeps matters on wide merges.
  std::vector<size_t> Ties;
  Ties.reserve(K);
  while (true) {
    size_t MinPart = K;
    Ties.clear();
    for (size_t P = 0; P != K; ++P) {
      if (Cur[P] == Parts[P]->Contexts.size())
        continue;
      int C = MinPart == K
                  ? -1
                  : compareContexts(Parts[P]->Arena, Remaps[P], ctxAt(P),
                                    Parts[MinPart]->Arena, Remaps[MinPart],
                                    ctxAt(MinPart));
      if (C < 0) {
        MinPart = P;
        Ties.clear();
        Ties.push_back(P);
      } else if (C == 0) {
        Ties.push_back(P);
      }
    }
    if (MinPart == K)
      break;
    const ContextRecord &MinCtx = ctxAt(MinPart);
    const ProfileArena &MinArena = Parts[MinPart]->Arena;
    const std::vector<NameId> &MinRemap = Remaps[MinPart];

    // Emit the merged frame slice (identical across contributors).
    ContextRecord OutCtx;
    OutCtx.FramesBegin = static_cast<uint32_t>(Out.Arena.Frames.size());
    for (uint32_t I = MinCtx.FramesBegin; I != MinCtx.FramesEnd; ++I)
      Out.Arena.Frames.push_back(
          {MinRemap[MinArena.Frames[I].Func], MinArena.Frames[I].Site});
    OutCtx.FramesEnd = static_cast<uint32_t>(Out.Arena.Frames.size());
    NameId LeafName =
        Out.Arena.Frames[OutCtx.FramesEnd - 1].Func;

    RecSource Base;
    bool HasBase = false;
    std::vector<RecSource> Srcs;
    bool SBI = false;
    for (size_t P : Ties) {
      const ContextRecord &C = ctxAt(P);
      RecSource S{&Parts[P]->Arena, &Remaps[P], C.Rec};
      if (P == 0 && !IntoEmptyDst) {
        Base = S;
        HasBase = true;
        SBI = C.ShouldBeInlined;
      } else {
        Srcs.push_back(S);
        SBI |= C.ShouldBeInlined;
      }
      ++Cur[P];
      assert((Cur[P] == Parts[P]->Contexts.size() ||
              compareContexts(Parts[P]->Arena, Remaps[P], ctxAt(P), MinArena,
                              MinRemap, MinCtx) > 0) &&
             "view contexts must be in trie-DFS order");
    }
    countMergeEvents(Stats, HasBase, Srcs);
    OutCtx.ShouldBeInlined = SBI;
    uint32_t Rec;
    if (Srcs.empty()) {
      Rec = copyRecord(Out.Arena, *Base.A, Base.Rec, *Base.Remap);
    } else {
      // A context absent from the running Dst is created through
      // getOrCreateChild, which seeds Name = leaf and Guid =
      // computeFunctionGuid(leaf); an existing node keeps its own.
      NameId Name = HasBase ? Base.remap(Base.rec().Name) : LeafName;
      uint64_t Seed = computeFunctionGuid(Out.Arena.Names.name(LeafName));
      Rec = mergeRecords(Out.Arena, Name, Seed, HasBase ? &Base : nullptr,
                         Srcs, Stats.SaturatedCounts);
    }
    OutCtx.Rec = Rec;
    Out.Contexts.push_back(OutCtx);
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// View decay scaler (mirrors ProfileMerge's ProfileScaler)
//===----------------------------------------------------------------------===//

namespace {

/// Slot-for-slot port of ProfileMerge's ProfileScaler onto arena
/// records: same traversal order (body in key order, head, call targets
/// in (key, callee) order, then inlinees depth-first), same 128-bit
/// round-half-up arithmetic, same per-function-name head and per-callee
/// call-target telescoping accumulators — so a view scaled here and a
/// map profile scaled there stay bit-identical. Accumulators key by
/// NameId, which is bijective with names within one arena.
class ViewScaler {
public:
  ViewScaler(ProfileArena &A, uint64_t Num, uint64_t Den, bool ExactCounts)
      : A(A), Num(Num), Den(Den), Exact(ExactCounts) {}

  void scaleRecord(uint32_t Rec) {
    FuncRecord &R = A.Records[Rec];
    uint64_t NewTotal = 0;
    for (uint32_t I = R.BodyBegin; I != R.BodyEnd; ++I) {
      A.Body[I].Count = scaleValue(A.Body[I].Count);
      NewTotal = saturatingAdd(NewTotal, A.Body[I].Count);
    }
    R.TotalSamples = NewTotal;
    R.HeadSamples = Exact
                        ? std::min(scaleValue(R.HeadSamples), NewTotal)
                        : scaleCumulative(Heads[R.Name], R.HeadSamples);
    for (uint32_t I = R.CallsBegin; I != R.CallsEnd; ++I)
      A.Calls[I].Count =
          Exact ? scaleValue(A.Calls[I].Count)
                : scaleCumulative(CallTargets[A.Calls[I].Callee],
                                  A.Calls[I].Count);
    for (uint32_t I = R.InlineesBegin; I != R.InlineesEnd; ++I)
      scaleRecord(A.Inlinees[I].Rec);
  }

private:
  struct Acc {
    unsigned __int128 Pre = 0;
    unsigned __int128 Post = 0;
  };

  uint64_t scaleValue(uint64_t V) const {
    unsigned __int128 R = (static_cast<unsigned __int128>(V) * Num + Den / 2) / Den;
    return R > UINT64_MAX ? UINT64_MAX : static_cast<uint64_t>(R);
  }
  uint64_t scaleCumulative(Acc &Ac, uint64_t V) {
    Ac.Pre += V;
    unsigned __int128 NewPost = (Ac.Pre * Num + Den / 2) / Den;
    unsigned __int128 Slot = NewPost - Ac.Post;
    Ac.Post = NewPost;
    return Slot > UINT64_MAX ? UINT64_MAX : static_cast<uint64_t>(Slot);
  }

  ProfileArena &A;
  uint64_t Num, Den;
  bool Exact;
  std::unordered_map<NameId, Acc> Heads;
  std::unordered_map<NameId, Acc> CallTargets;
};

} // namespace

void scaleFlatView(FlatProfileView &V, uint64_t Num, uint64_t Den,
                   bool ExactCounts) {
  if (!Den || Num == Den)
    return;
  ViewScaler S(V.Arena, Num, Den, ExactCounts);
  for (uint32_t Rec : V.Functions)
    S.scaleRecord(Rec);
}

void scaleContextView(ContextProfileView &V, uint64_t Num, uint64_t Den) {
  if (!Den || Num == Den)
    return;
  ViewScaler S(V.Arena, Num, Den, /*ExactCounts=*/false);
  for (const ContextRecord &C : V.Contexts)
    S.scaleRecord(C.Rec);
}

} // namespace csspgo

//===- profile/Trimmer.h - Cold-context trimming ----------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cold-context trimming and merging (§III-B "Scalability"). Cold functions
/// are unlikely to be inlined, so keeping context-sensitive profiles for
/// them only bloats the profile. The trimmer merges every context whose
/// samples fall below a threshold into the base (top-level) context of its
/// leaf function, making the CS profile comparable in size to a regular
/// profile without losing the benefit for hot functions.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_PROFILE_TRIMMER_H
#define CSSPGO_PROFILE_TRIMMER_H

#include "profile/ContextTrie.h"

namespace csspgo {

struct TrimStats {
  size_t ContextsBefore = 0;
  size_t ContextsAfter = 0;
  size_t ContextsMerged = 0;
};

/// Merges every context with TotalSamples below \p ColdThreshold into the
/// base context of its leaf function, then erases the merged nodes.
/// \p ColdThreshold is expressed in samples; a typical value is a small
/// percentile of the total.
TrimStats trimColdContexts(ContextProfile &Profile, uint64_t ColdThreshold);

/// Convenience: computes the threshold as the \p Percentile (0..1) hotness
/// cutoff over all context TotalSamples.
uint64_t coldThresholdForPercentile(const ContextProfile &Profile,
                                    double Percentile);

} // namespace csspgo

#endif // CSSPGO_PROFILE_TRIMMER_H

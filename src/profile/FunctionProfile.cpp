//===- profile/FunctionProfile.cpp - Sample profile data ------------------===//

#include "profile/FunctionProfile.h"

#include <algorithm>

namespace csspgo {

void FunctionProfile::addBody(ProfileKey K, uint64_t N) {
  uint64_t &Slot = Body[K];
  Slot = saturatingAdd(Slot, N);
  TotalSamples = saturatingAdd(TotalSamples, N);
}

void FunctionProfile::maxBody(ProfileKey K, uint64_t N) {
  uint64_t &Slot = Body[K];
  if (N > Slot) {
    TotalSamples = saturatingAdd(TotalSamples, N - Slot);
    Slot = N;
  }
}

void FunctionProfile::addCall(ProfileKey K, const std::string &Callee,
                              uint64_t N) {
  uint64_t &Slot = Calls[K][Callee];
  Slot = saturatingAdd(Slot, N);
}

uint64_t FunctionProfile::bodyAt(ProfileKey K) const {
  auto It = Body.find(K);
  return It == Body.end() ? 0 : It->second;
}

uint64_t FunctionProfile::callAt(ProfileKey K) const {
  auto It = Calls.find(K);
  if (It == Calls.end())
    return 0;
  uint64_t Total = 0;
  for (const auto &[Callee, N] : It->second)
    Total += N;
  return Total;
}

const FunctionProfile *
FunctionProfile::inlineeAt(ProfileKey K, const std::string &Callee) const {
  auto It = Inlinees.find(K);
  if (It == Inlinees.end())
    return nullptr;
  auto It2 = It->second.find(Callee);
  return It2 == It->second.end() ? nullptr : &It2->second;
}

FunctionProfile *FunctionProfile::inlineeAt(ProfileKey K,
                                            const std::string &Callee) {
  return const_cast<FunctionProfile *>(
      static_cast<const FunctionProfile *>(this)->inlineeAt(K, Callee));
}

FunctionProfile &
FunctionProfile::getOrCreateInlinee(ProfileKey K, const std::string &Callee) {
  FunctionProfile &P = Inlinees[K][Callee];
  if (P.Name.empty())
    P.Name = Callee;
  return P;
}

uint64_t FunctionProfile::merge(const FunctionProfile &Other, uint64_t Num,
                                uint64_t Den) {
  uint64_t Saturated = 0;
  auto Scale = [&](uint64_t V) -> uint64_t {
    if (Num == Den)
      return V;
    if (!Den)
      return V;
    // 128-bit intermediate: V * Num overflows uint64_t long before the
    // scaled result does (e.g. scaling a near-max count by 3/2).
    unsigned __int128 Wide =
        (static_cast<unsigned __int128>(V) * Num + Den / 2) / Den;
    if (Wide > UINT64_MAX) {
      ++Saturated;
      return UINT64_MAX;
    }
    return static_cast<uint64_t>(Wide);
  };
  auto SatInto = [&Saturated](uint64_t &Slot, uint64_t V) {
    if (saturatingAccum(Slot, V))
      ++Saturated;
  };
  for (const auto &[K, N] : Other.Body) {
    uint64_t S = Scale(N);
    SatInto(Body[K], S);
    SatInto(TotalSamples, S);
  }
  SatInto(HeadSamples, Scale(Other.HeadSamples));
  for (const auto &[K, Targets] : Other.Calls)
    for (const auto &[Callee, N] : Targets)
      SatInto(Calls[K][Callee], Scale(N));
  for (const auto &[K, Map] : Other.Inlinees)
    for (const auto &[Callee, P] : Map) {
      FunctionProfile &Sub = getOrCreateInlinee(K, Callee);
      // Carry probe metadata down: an inlinee present only in Other must
      // keep its GUID/checksum, or stale-profile detection breaks on the
      // merged profile.
      if (P.Guid)
        Sub.Guid = P.Guid;
      if (P.Checksum)
        Sub.Checksum = P.Checksum;
      Saturated += Sub.merge(P, Num, Den);
    }
  return Saturated;
}

uint64_t FunctionProfile::maxBodyCount() const {
  uint64_t Max = 0;
  for (const auto &[K, N] : Body)
    Max = std::max(Max, N);
  return Max;
}

uint64_t FunctionProfile::totalBodySamples() const {
  uint64_t Total = 0;
  for (const auto &[K, N] : Body)
    Total = saturatingAdd(Total, N);
  for (const auto &[K, Map] : Inlinees)
    for (const auto &[Callee, P] : Map)
      Total = saturatingAdd(Total, P.totalBodySamples());
  return Total;
}

FunctionProfile &FlatProfile::getOrCreate(const std::string &Name) {
  FunctionProfile &P = Functions[Name];
  if (P.Name.empty())
    P.Name = Name;
  return P;
}

const FunctionProfile *FlatProfile::find(const std::string &Name) const {
  auto It = Functions.find(Name);
  return It == Functions.end() ? nullptr : &It->second;
}

uint64_t FlatProfile::totalSamples() const {
  uint64_t Total = 0;
  for (const auto &[Name, P] : Functions)
    Total = saturatingAdd(Total, P.TotalSamples);
  return Total;
}

} // namespace csspgo

//===- profile/FunctionProfile.cpp - Sample profile data ------------------===//

#include "profile/FunctionProfile.h"

#include <algorithm>

namespace csspgo {

void FunctionProfile::addBody(ProfileKey K, uint64_t N) {
  Body[K] += N;
  TotalSamples += N;
}

void FunctionProfile::maxBody(ProfileKey K, uint64_t N) {
  uint64_t &Slot = Body[K];
  if (N > Slot) {
    TotalSamples += N - Slot;
    Slot = N;
  }
}

void FunctionProfile::addCall(ProfileKey K, const std::string &Callee,
                              uint64_t N) {
  Calls[K][Callee] += N;
}

uint64_t FunctionProfile::bodyAt(ProfileKey K) const {
  auto It = Body.find(K);
  return It == Body.end() ? 0 : It->second;
}

uint64_t FunctionProfile::callAt(ProfileKey K) const {
  auto It = Calls.find(K);
  if (It == Calls.end())
    return 0;
  uint64_t Total = 0;
  for (const auto &[Callee, N] : It->second)
    Total += N;
  return Total;
}

const FunctionProfile *
FunctionProfile::inlineeAt(ProfileKey K, const std::string &Callee) const {
  auto It = Inlinees.find(K);
  if (It == Inlinees.end())
    return nullptr;
  auto It2 = It->second.find(Callee);
  return It2 == It->second.end() ? nullptr : &It2->second;
}

FunctionProfile *FunctionProfile::inlineeAt(ProfileKey K,
                                            const std::string &Callee) {
  return const_cast<FunctionProfile *>(
      static_cast<const FunctionProfile *>(this)->inlineeAt(K, Callee));
}

FunctionProfile &
FunctionProfile::getOrCreateInlinee(ProfileKey K, const std::string &Callee) {
  FunctionProfile &P = Inlinees[K][Callee];
  if (P.Name.empty())
    P.Name = Callee;
  return P;
}

void FunctionProfile::merge(const FunctionProfile &Other, uint64_t Num,
                            uint64_t Den) {
  auto Scale = [&](uint64_t V) -> uint64_t {
    if (Num == Den)
      return V;
    return Den ? (V * Num + Den / 2) / Den : V;
  };
  for (const auto &[K, N] : Other.Body)
    addBody(K, Scale(N));
  TotalSamples -= 0; // addBody already tracked the total.
  HeadSamples += Scale(Other.HeadSamples);
  for (const auto &[K, Targets] : Other.Calls)
    for (const auto &[Callee, N] : Targets)
      addCall(K, Callee, Scale(N));
  for (const auto &[K, Map] : Other.Inlinees)
    for (const auto &[Callee, P] : Map) {
      FunctionProfile &Sub = getOrCreateInlinee(K, Callee);
      // Carry probe metadata down: an inlinee present only in Other must
      // keep its GUID/checksum, or stale-profile detection breaks on the
      // merged profile.
      if (P.Guid)
        Sub.Guid = P.Guid;
      if (P.Checksum)
        Sub.Checksum = P.Checksum;
      Sub.merge(P, Num, Den);
    }
}

uint64_t FunctionProfile::maxBodyCount() const {
  uint64_t Max = 0;
  for (const auto &[K, N] : Body)
    Max = std::max(Max, N);
  return Max;
}

uint64_t FunctionProfile::totalBodySamples() const {
  uint64_t Total = 0;
  for (const auto &[K, N] : Body)
    Total += N;
  for (const auto &[K, Map] : Inlinees)
    for (const auto &[Callee, P] : Map)
      Total += P.totalBodySamples();
  return Total;
}

FunctionProfile &FlatProfile::getOrCreate(const std::string &Name) {
  FunctionProfile &P = Functions[Name];
  if (P.Name.empty())
    P.Name = Name;
  return P;
}

const FunctionProfile *FlatProfile::find(const std::string &Name) const {
  auto It = Functions.find(Name);
  return It == Functions.end() ? nullptr : &It->second;
}

uint64_t FlatProfile::totalSamples() const {
  uint64_t Total = 0;
  for (const auto &[Name, P] : Functions)
    Total += P.TotalSamples;
  return Total;
}

} // namespace csspgo

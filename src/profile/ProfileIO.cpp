//===- profile/ProfileIO.cpp - Text profile (de)serialization -------------===//

#include "profile/ProfileIO.h"

#include <charconv>
#include <sstream>

namespace csspgo {

static void writeKey(std::ostringstream &OS, ProfileKey K) {
  OS << K.Index;
  if (K.Disc)
    OS << "." << K.Disc;
}

static void writeBody(std::ostringstream &OS, const FunctionProfile &P,
                      int Indent) {
  std::string Pad(Indent, ' ');
  if (P.Checksum) {
    OS << Pad << "!CFGChecksum: " << P.Checksum << "\n";
  }
  for (const auto &[K, N] : P.Body) {
    OS << Pad;
    writeKey(OS, K);
    OS << ": " << N << "\n";
  }
  for (const auto &[K, Targets] : P.Calls) {
    OS << Pad;
    writeKey(OS, K);
    OS << ": @";
    for (const auto &[Callee, N] : Targets)
      OS << " " << Callee << ":" << N;
    OS << "\n";
  }
  for (const auto &[K, Map] : P.Inlinees) {
    for (const auto &[Callee, Inlinee] : Map) {
      OS << Pad;
      writeKey(OS, K);
      OS << ": > " << Callee << ":" << Inlinee.TotalSamples << ":"
         << Inlinee.HeadSamples << " {\n";
      writeBody(OS, Inlinee, Indent + 1);
      OS << Pad << "}\n";
    }
  }
}

std::string serializeFlatProfile(const FlatProfile &Profile) {
  std::ostringstream OS;
  OS << (Profile.Kind == ProfileKind::ProbeBased ? "!kind: probe\n"
                                                 : "!kind: line\n");
  for (const auto &[Name, P] : Profile.Functions) {
    OS << Name << ":" << P.TotalSamples << ":" << P.HeadSamples << "\n";
    writeBody(OS, P, 1);
  }
  return OS.str();
}

std::string serializeContextProfile(const ContextProfile &Profile) {
  std::ostringstream OS;
  OS << (Profile.Kind == ProfileKind::ProbeBased ? "!kind: probe\n"
                                                 : "!kind: line\n");
  Profile.forEachNode([&OS](const SampleContext &Ctx,
                            const ContextTrieNode &N) {
    const FunctionProfile &P = N.Profile;
    OS << contextToString(Ctx) << ":" << P.TotalSamples << ":"
       << P.HeadSamples << "\n";
    if (N.ShouldBeInlined)
      OS << " !ShouldBeInlined\n";
    writeBody(OS, P, 1);
  });
  return OS.str();
}

namespace {

/// A line-oriented cursor over the serialized text.
class LineReader {
public:
  explicit LineReader(const std::string &Text) : Text(Text) {}

  /// Reads the next line; returns false at end of input.
  bool next(std::string &Line) {
    if (Pos >= Text.size())
      return false;
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    Line = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    return true;
  }

  void pushBack(const std::string &Line) {
    Pos -= Line.size() + 1;
  }

private:
  const std::string &Text;
  size_t Pos = 0;
};

size_t indentOf(const std::string &S) {
  size_t I = 0;
  while (I < S.size() && S[I] == ' ')
    ++I;
  return I;
}

/// Strict unsigned parse over [First, Last): all digits, no sign, no
/// leading/trailing junk, and the value must fit the type — a count field
/// overflowing uint64_t is corruption, not a number to clamp.
template <typename T>
bool parseUInt(const char *First, const char *Last, T &Out) {
  if (First == Last)
    return false;
  auto [Ptr, Ec] = std::from_chars(First, Last, Out, 10);
  return Ec == std::errc() && Ptr == Last;
}

template <typename T> bool parseUInt(const std::string &S, T &Out) {
  return parseUInt(S.data(), S.data() + S.size(), Out);
}

bool parseKey(const std::string &S, ProfileKey &K) {
  size_t Dot = S.find('.');
  const char *B = S.data();
  if (Dot == std::string::npos) {
    K.Disc = 0;
    return parseUInt(B, B + S.size(), K.Index);
  }
  return parseUInt(B, B + Dot, K.Index) &&
         parseUInt(B + Dot + 1, B + S.size(), K.Disc);
}

/// Parses body lines at indentation > \p HeaderIndent into \p P.
bool parseBody(LineReader &Reader, FunctionProfile &P, size_t HeaderIndent);

bool parseBodyLine(LineReader &Reader, const std::string &Line,
                   FunctionProfile &P) {
  std::string S = Line.substr(indentOf(Line));
  if (S.rfind("!CFGChecksum: ", 0) == 0) {
    // The serializer emits at most one (nonzero) checksum line per
    // profile; a second one is corruption, not an update.
    if (P.Checksum)
      return false;
    return parseUInt(S.substr(14), P.Checksum);
  }
  if (S == "!ShouldBeInlined")
    return false; // The context parser consumes the attribute by peeking
                  // right after the header; reaching it here means it is
                  // duplicated or misplaced.
  size_t Colon = S.find(": ");
  if (Colon == std::string::npos)
    return false;
  ProfileKey K;
  if (!parseKey(S.substr(0, Colon), K))
    return false;
  std::string Rest = S.substr(Colon + 2);
  if (Rest.empty())
    return false;
  if (Rest[0] == '@') {
    // Call targets: "@ callee:count callee:count".
    if (P.Calls.count(K))
      return false; // One line per call site.
    auto &Targets = P.Calls[K]; // Created even when empty: round-trips.
    std::istringstream IS(Rest.substr(1));
    std::string Tok;
    while (IS >> Tok) {
      size_t C = Tok.rfind(':');
      if (C == std::string::npos || C == 0)
        return false;
      std::string Callee = Tok.substr(0, C);
      uint64_t Count;
      if (!parseUInt(Tok.data() + C + 1, Tok.data() + Tok.size(), Count))
        return false;
      if (!Targets.emplace(std::move(Callee), Count).second)
        return false; // Duplicate callee at one site.
    }
    return true;
  }
  if (Rest[0] == '>') {
    // Nested inlinee: "> callee:total:head {".
    size_t Brace = Rest.rfind('{');
    if (Brace == std::string::npos || Brace < 3 ||
        Brace != Rest.size() - 1 || Rest[1] != ' ' ||
        Rest[Brace - 1] != ' ')
      return false;
    std::string Header = Rest.substr(2, Brace - 3);
    size_t C2 = Header.rfind(':');
    if (C2 == std::string::npos || C2 == 0)
      return false;
    size_t C1 = Header.rfind(':', C2 - 1);
    if (C1 == std::string::npos || C1 == 0)
      return false;
    std::string Callee = Header.substr(0, C1);
    uint64_t Total, Head;
    if (!parseUInt(Header.data() + C1 + 1, Header.data() + C2, Total) ||
        !parseUInt(Header.data() + C2 + 1, Header.data() + Header.size(),
                   Head))
      return false;
    if (P.inlineeAt(K, Callee))
      return false; // Duplicate inlinee record.
    FunctionProfile &Inlinee = P.getOrCreateInlinee(K, Callee);
    Inlinee.HeadSamples = Head;
    // Body lines until the matching "}".
    std::string BodyLine;
    size_t MyIndent = indentOf(Line);
    while (Reader.next(BodyLine)) {
      std::string Trimmed = BodyLine.substr(indentOf(BodyLine));
      if (Trimmed == "}" && indentOf(BodyLine) == MyIndent)
        // Count conservation at parse time: the recorded total must match
        // the recomputed body sum, or the inlinee body was truncated or
        // tampered with.
        return Inlinee.TotalSamples == Total;
      if (!parseBodyLine(Reader, BodyLine, Inlinee))
        return false;
    }
    return false; // Missing closing brace.
  }
  // Plain body count.
  if (P.Body.count(K))
    return false; // One line per key.
  uint64_t Count;
  if (!parseUInt(Rest, Count))
    return false;
  P.addBody(K, Count);
  return true;
}

bool parseBody(LineReader &Reader, FunctionProfile &P, size_t HeaderIndent) {
  std::string Line;
  while (Reader.next(Line)) {
    if (Line.empty())
      continue;
    if (indentOf(Line) <= HeaderIndent) {
      Reader.pushBack(Line);
      return true;
    }
    if (!parseBodyLine(Reader, Line, P))
      return false;
  }
  return true;
}

bool parseHeader(const std::string &Line, std::string &Name, uint64_t &Total,
                 uint64_t &Head) {
  // name:total:head — name may contain ':' (contexts), so split from the
  // right.
  size_t C2 = Line.rfind(':');
  if (C2 == std::string::npos || C2 == 0)
    return false;
  size_t C1 = Line.rfind(':', C2 - 1);
  if (C1 == std::string::npos || C1 == 0)
    return false;
  Name = Line.substr(0, C1);
  return parseUInt(Line.data() + C1 + 1, Line.data() + C2, Total) &&
         parseUInt(Line.data() + C2 + 1, Line.data() + Line.size(), Head);
}

/// "!kind: probe" / "!kind: line"; anything else under the "!kind: "
/// prefix is malformed.
bool parseKindLine(const std::string &Line, ProfileKind &Kind) {
  if (Line == "!kind: probe")
    Kind = ProfileKind::ProbeBased;
  else if (Line == "!kind: line")
    Kind = ProfileKind::LineBased;
  else
    return false;
  return true;
}

} // namespace

bool parseFlatProfile(const std::string &Text, FlatProfile &Out) {
  LineReader Reader(Text);
  std::string Line;
  while (Reader.next(Line)) {
    if (Line.empty())
      continue;
    if (Line.rfind("!kind: ", 0) == 0) {
      if (!parseKindLine(Line, Out.Kind))
        return false;
      continue;
    }
    if (indentOf(Line) != 0)
      return false;
    std::string Name;
    uint64_t Total, Head;
    if (!parseHeader(Line, Name, Total, Head) || Name.empty())
      return false;
    if (Out.Functions.count(Name))
      return false; // The serializer emits each function exactly once.
    FunctionProfile &P = Out.getOrCreate(Name);
    P.HeadSamples = Head;
    if (!parseBody(Reader, P, 0))
      return false;
    // Count conservation at parse time: the header total is redundant
    // with the body sum, so a mismatch means truncated or edited input.
    if (P.TotalSamples != Total)
      return false;
  }
  return true;
}

bool parseContextProfile(const std::string &Text, ContextProfile &Out) {
  LineReader Reader(Text);
  std::string Line;
  while (Reader.next(Line)) {
    if (Line.empty())
      continue;
    if (Line.rfind("!kind: ", 0) == 0) {
      if (!parseKindLine(Line, Out.Kind))
        return false;
      continue;
    }
    if (indentOf(Line) != 0)
      return false;
    std::string Name;
    uint64_t Total, Head;
    if (!parseHeader(Line, Name, Total, Head))
      return false;
    SampleContext Ctx;
    if (!contextFromString(Name, Ctx))
      return false;
    ContextTrieNode &N = Out.getOrCreateNode(Ctx);
    if (N.HasProfile)
      return false; // Duplicate context record.
    N.HasProfile = true;
    N.Profile.HeadSamples = Head;
    // Peek for the !ShouldBeInlined attribute.
    std::string Attr;
    if (Reader.next(Attr)) {
      if (Attr.substr(indentOf(Attr)) == "!ShouldBeInlined")
        N.ShouldBeInlined = true;
      else
        Reader.pushBack(Attr);
    }
    if (!parseBody(Reader, N.Profile, 0))
      return false;
    if (N.Profile.TotalSamples != Total)
      return false;
  }
  return true;
}

size_t profileSizeBytes(const FlatProfile &Profile) {
  return serializeFlatProfile(Profile).size();
}

size_t profileSizeBytes(const ContextProfile &Profile) {
  return serializeContextProfile(Profile).size();
}

} // namespace csspgo

//===- profile/ProfileIO.cpp - Text profile (de)serialization -------------===//

#include "profile/ProfileIO.h"

#include <cstdlib>
#include <sstream>

namespace csspgo {

static void writeKey(std::ostringstream &OS, ProfileKey K) {
  OS << K.Index;
  if (K.Disc)
    OS << "." << K.Disc;
}

static void writeBody(std::ostringstream &OS, const FunctionProfile &P,
                      int Indent) {
  std::string Pad(Indent, ' ');
  if (P.Checksum) {
    OS << Pad << "!CFGChecksum: " << P.Checksum << "\n";
  }
  for (const auto &[K, N] : P.Body) {
    OS << Pad;
    writeKey(OS, K);
    OS << ": " << N << "\n";
  }
  for (const auto &[K, Targets] : P.Calls) {
    OS << Pad;
    writeKey(OS, K);
    OS << ": @";
    for (const auto &[Callee, N] : Targets)
      OS << " " << Callee << ":" << N;
    OS << "\n";
  }
  for (const auto &[K, Map] : P.Inlinees) {
    for (const auto &[Callee, Inlinee] : Map) {
      OS << Pad;
      writeKey(OS, K);
      OS << ": > " << Callee << ":" << Inlinee.TotalSamples << ":"
         << Inlinee.HeadSamples << " {\n";
      writeBody(OS, Inlinee, Indent + 1);
      OS << Pad << "}\n";
    }
  }
}

std::string serializeFlatProfile(const FlatProfile &Profile) {
  std::ostringstream OS;
  OS << (Profile.Kind == ProfileKind::ProbeBased ? "!kind: probe\n"
                                                 : "!kind: line\n");
  for (const auto &[Name, P] : Profile.Functions) {
    OS << Name << ":" << P.TotalSamples << ":" << P.HeadSamples << "\n";
    writeBody(OS, P, 1);
  }
  return OS.str();
}

std::string serializeContextProfile(const ContextProfile &Profile) {
  std::ostringstream OS;
  OS << (Profile.Kind == ProfileKind::ProbeBased ? "!kind: probe\n"
                                                 : "!kind: line\n");
  Profile.forEachNode([&OS](const SampleContext &Ctx,
                            const ContextTrieNode &N) {
    const FunctionProfile &P = N.Profile;
    OS << contextToString(Ctx) << ":" << P.TotalSamples << ":"
       << P.HeadSamples << "\n";
    if (N.ShouldBeInlined)
      OS << " !ShouldBeInlined\n";
    writeBody(OS, P, 1);
  });
  return OS.str();
}

namespace {

/// A line-oriented cursor over the serialized text.
class LineReader {
public:
  explicit LineReader(const std::string &Text) : Text(Text) {}

  /// Reads the next line; returns false at end of input.
  bool next(std::string &Line) {
    if (Pos >= Text.size())
      return false;
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    Line = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    return true;
  }

  void pushBack(const std::string &Line) {
    Pos -= Line.size() + 1;
  }

private:
  const std::string &Text;
  size_t Pos = 0;
};

size_t indentOf(const std::string &S) {
  size_t I = 0;
  while (I < S.size() && S[I] == ' ')
    ++I;
  return I;
}

bool parseKey(const std::string &S, ProfileKey &K) {
  size_t Dot = S.find('.');
  K.Index = static_cast<uint32_t>(std::strtoul(S.c_str(), nullptr, 10));
  K.Disc = Dot == std::string::npos
               ? 0
               : static_cast<uint32_t>(
                     std::strtoul(S.c_str() + Dot + 1, nullptr, 10));
  return true;
}

/// Parses body lines at indentation > \p HeaderIndent into \p P.
bool parseBody(LineReader &Reader, FunctionProfile &P, size_t HeaderIndent);

bool parseBodyLine(LineReader &Reader, const std::string &Line,
                   FunctionProfile &P) {
  std::string S = Line.substr(indentOf(Line));
  if (S.rfind("!CFGChecksum: ", 0) == 0) {
    P.Checksum = std::strtoull(S.c_str() + 14, nullptr, 10);
    return true;
  }
  if (S == "!ShouldBeInlined")
    return true; // Handled by the context parser.
  size_t Colon = S.find(": ");
  if (Colon == std::string::npos)
    return false;
  ProfileKey K;
  parseKey(S.substr(0, Colon), K);
  std::string Rest = S.substr(Colon + 2);
  if (Rest.empty())
    return false;
  if (Rest[0] == '@') {
    // Call targets: "@ callee:count callee:count".
    std::istringstream IS(Rest.substr(1));
    std::string Tok;
    while (IS >> Tok) {
      size_t C = Tok.rfind(':');
      if (C == std::string::npos)
        return false;
      P.addCall(K, Tok.substr(0, C),
                std::strtoull(Tok.c_str() + C + 1, nullptr, 10));
    }
    return true;
  }
  if (Rest[0] == '>') {
    // Nested inlinee: "> callee:total:head {".
    size_t Brace = Rest.rfind('{');
    if (Brace == std::string::npos)
      return false;
    std::string Header = Rest.substr(2, Brace - 3);
    size_t C1 = Header.find(':');
    size_t C2 = Header.find(':', C1 + 1);
    if (C1 == std::string::npos || C2 == std::string::npos)
      return false;
    std::string Callee = Header.substr(0, C1);
    FunctionProfile &Inlinee = P.getOrCreateInlinee(K, Callee);
    Inlinee.HeadSamples =
        std::strtoull(Header.c_str() + C2 + 1, nullptr, 10);
    // Body lines until the matching "}".
    std::string BodyLine;
    size_t MyIndent = indentOf(Line);
    while (Reader.next(BodyLine)) {
      std::string Trimmed = BodyLine.substr(indentOf(BodyLine));
      if (Trimmed == "}" && indentOf(BodyLine) == MyIndent)
        return true;
      if (!parseBodyLine(Reader, BodyLine, Inlinee))
        return false;
    }
    return false; // Missing closing brace.
  }
  // Plain body count.
  P.addBody(K, std::strtoull(Rest.c_str(), nullptr, 10));
  return true;
}

bool parseBody(LineReader &Reader, FunctionProfile &P, size_t HeaderIndent) {
  std::string Line;
  while (Reader.next(Line)) {
    if (Line.empty())
      continue;
    if (indentOf(Line) <= HeaderIndent) {
      Reader.pushBack(Line);
      return true;
    }
    if (!parseBodyLine(Reader, Line, P))
      return false;
  }
  return true;
}

bool parseHeader(const std::string &Line, std::string &Name, uint64_t &Total,
                 uint64_t &Head) {
  // name:total:head — name may contain ':' (contexts), so split from the
  // right.
  size_t C2 = Line.rfind(':');
  if (C2 == std::string::npos || C2 == 0)
    return false;
  size_t C1 = Line.rfind(':', C2 - 1);
  if (C1 == std::string::npos)
    return false;
  Name = Line.substr(0, C1);
  Total = std::strtoull(Line.c_str() + C1 + 1, nullptr, 10);
  Head = std::strtoull(Line.c_str() + C2 + 1, nullptr, 10);
  return true;
}

} // namespace

bool parseFlatProfile(const std::string &Text, FlatProfile &Out) {
  LineReader Reader(Text);
  std::string Line;
  while (Reader.next(Line)) {
    if (Line.empty())
      continue;
    if (Line.rfind("!kind: ", 0) == 0) {
      Out.Kind = Line == "!kind: probe" ? ProfileKind::ProbeBased
                                        : ProfileKind::LineBased;
      continue;
    }
    if (indentOf(Line) != 0)
      return false;
    std::string Name;
    uint64_t Total, Head;
    if (!parseHeader(Line, Name, Total, Head))
      return false;
    FunctionProfile &P = Out.getOrCreate(Name);
    P.HeadSamples = Head;
    if (!parseBody(Reader, P, 0))
      return false;
  }
  return true;
}

bool parseContextProfile(const std::string &Text, ContextProfile &Out) {
  LineReader Reader(Text);
  std::string Line;
  while (Reader.next(Line)) {
    if (Line.empty())
      continue;
    if (Line.rfind("!kind: ", 0) == 0) {
      Out.Kind = Line == "!kind: probe" ? ProfileKind::ProbeBased
                                        : ProfileKind::LineBased;
      continue;
    }
    if (indentOf(Line) != 0)
      return false;
    std::string Name;
    uint64_t Total, Head;
    if (!parseHeader(Line, Name, Total, Head))
      return false;
    SampleContext Ctx;
    if (!contextFromString(Name, Ctx))
      return false;
    ContextTrieNode &N = Out.getOrCreateNode(Ctx);
    N.HasProfile = true;
    N.Profile.HeadSamples = Head;
    // Peek for the !ShouldBeInlined attribute.
    std::string Attr;
    if (Reader.next(Attr)) {
      if (Attr.substr(indentOf(Attr)) == "!ShouldBeInlined")
        N.ShouldBeInlined = true;
      else
        Reader.pushBack(Attr);
    }
    if (!parseBody(Reader, N.Profile, 0))
      return false;
  }
  return true;
}

size_t profileSizeBytes(const FlatProfile &Profile) {
  return serializeFlatProfile(Profile).size();
}

size_t profileSizeBytes(const ContextProfile &Profile) {
  return serializeContextProfile(Profile).size();
}

} // namespace csspgo

//===- profile/ContextTrie.h - Context-sensitive profiles -------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The context trie stores one FunctionProfile per *calling context*
/// ("main:12 @ foo:3 @ bar" = bar called from foo's call site 3, foo called
/// from main's call site 12). This is the profile shape produced by the
/// context-sensitive profiler (§III-B) and consumed by the pre-inliner and
/// the CSSPGO profile loader.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_PROFILE_CONTEXTTRIE_H
#define CSSPGO_PROFILE_CONTEXTTRIE_H

#include "profile/FunctionProfile.h"

#include <functional>
#include <vector>

namespace csspgo {

/// One frame of a sample context. All frames except the last carry the
/// call-site key (probe id) of the call in that function which leads to the
/// next frame; the last frame is the leaf function itself (Site unused).
struct ContextFrame {
  std::string Func;
  uint32_t Site = 0;

  bool operator==(const ContextFrame &O) const {
    return Func == O.Func && Site == O.Site;
  }
  bool operator<(const ContextFrame &O) const {
    return Func != O.Func ? Func < O.Func : Site < O.Site;
  }
};

/// A full calling context, outermost caller first, leaf last.
using SampleContext = std::vector<ContextFrame>;

/// Renders "[main:12 @ foo:3 @ bar]".
std::string contextToString(const SampleContext &Ctx);

/// Parses the output of contextToString. Returns false on malformed input.
bool contextFromString(const std::string &S, SampleContext &Out);

class ContextTrieNode {
public:
  std::string FuncName;        ///< Function at this node ("" for the root).
  FunctionProfile Profile;     ///< Samples for this exact context.
  bool HasProfile = false;
  /// Pre-inliner decision persisted into the profile: the compiler should
  /// inline this context's leaf into its parent (paper Algorithm 2).
  bool ShouldBeInlined = false;

  /// Children keyed by (call-site key in this function, callee name).
  std::map<std::pair<uint32_t, std::string>, ContextTrieNode> Children;

  ContextTrieNode *getChild(uint32_t Site, const std::string &Callee);
  const ContextTrieNode *getChild(uint32_t Site,
                                  const std::string &Callee) const;
  ContextTrieNode &getOrCreateChild(uint32_t Site, const std::string &Callee);

  /// Sum of TotalSamples in this subtree.
  uint64_t subtreeSamples() const;
};

/// Context-sensitive profile database.
class ContextProfile {
public:
  ProfileKind Kind = ProfileKind::ProbeBased;

  ContextTrieNode Root;

  /// Returns the node for \p Ctx, creating intermediate nodes as needed.
  ContextTrieNode &getOrCreateNode(const SampleContext &Ctx);

  /// Returns the node for \p Ctx or nullptr.
  const ContextTrieNode *findNode(const SampleContext &Ctx) const;
  ContextTrieNode *findNode(const SampleContext &Ctx);

  /// Returns the top-level node of \p Func (context = [Func]) or nullptr.
  const ContextTrieNode *findBase(const std::string &Func) const;
  ContextTrieNode *findBase(const std::string &Func);

  /// Visits every node that has a profile, passing its full context.
  void
  forEachNode(const std::function<void(const SampleContext &,
                                       const ContextTrieNode &)> &Fn) const;
  void forEachNodeMutable(
      const std::function<void(const SampleContext &, ContextTrieNode &)> &Fn);

  /// Number of nodes holding a profile.
  size_t numProfiles() const;

  /// Total samples across all contexts.
  uint64_t totalSamples() const;

  /// Flattens to a context-insensitive profile: every context of a function
  /// merges into one FunctionProfile (what AutoFDO would see, modulo
  /// correlation quality). Used by tests and the trimming ablation.
  FlatProfile flatten() const;
};

} // namespace csspgo

#endif // CSSPGO_PROFILE_CONTEXTTRIE_H

//===- profile/ProfileMerge.h - Profile merging -----------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Merging of profiles from multiple profiling runs (the production
/// workflow aggregates samples from many hosts before feeding PGO). The
/// same primitives serve as the reduction step of the sharded
/// profile-generation pipeline (ShardedProfGen), so each merge reports
/// MergeStats making the reduction observable.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_PROFILE_PROFILEMERGE_H
#define CSSPGO_PROFILE_PROFILEMERGE_H

#include "profile/ContextTrie.h"
#include "profile/FunctionProfile.h"

namespace csspgo {

/// Observability record of one merge (or a whole shard reduction when
/// accumulated with +=).
struct MergeStats {
  /// Contexts (trie nodes) or flat function entries newly created in Dst.
  uint64_t ContextsAdded = 0;
  /// Contexts / function entries that already existed and were summed.
  uint64_t ContextsMerged = 0;
  /// Total sample counts (body incl. nested inlinees, plus head samples)
  /// accumulated into Dst.
  uint64_t CountsSummed = 0;
  /// Count slots that clamped at UINT64_MAX during the merge instead of
  /// wrapping. Nonzero means the merged profile lost magnitude at the
  /// top end — still ordered correctly, but worth surfacing.
  uint64_t SaturatedCounts = 0;

  MergeStats &operator+=(const MergeStats &O) {
    ContextsAdded += O.ContextsAdded;
    ContextsMerged += O.ContextsMerged;
    CountsSummed += O.CountsSummed;
    SaturatedCounts += O.SaturatedCounts;
    return *this;
  }
};

/// Accumulates \p Src into \p Dst (counts are summed). An empty \p Dst
/// adopts \p Src's kind; otherwise a kind mismatch (line-based vs
/// probe-based) is a fatal usage error reported with a clear message —
/// merging profiles keyed by different anchor spaces silently produces
/// garbage counts.
MergeStats mergeFlatProfiles(FlatProfile &Dst, const FlatProfile &Src);

/// Accumulates \p Src into \p Dst context-by-context. Same kind rules as
/// mergeFlatProfiles.
MergeStats mergeContextProfiles(ContextProfile &Dst,
                                const ContextProfile &Src);

/// Scales every count in \p Profile by Num/Den (round half up). This is
/// the decay step of multi-epoch ingestion (ProfileStore::ingestEpoch), so
/// it must keep a scaled profile verifiable at VerifyLevel::Full:
///
///  * Count conservation is restored structurally: after scaling a
///    function's body slots, TotalSamples is recomputed as their
///    saturating sum.
///
///  * Head/call-edge conservation (sum of a function's head samples ==
///    sum of call-target counts into it, database-wide) cannot survive
///    independent per-slot rounding — two slots of 1 scaled by 1/2 round
///    to 2, one slot of 2 rounds to 1. Instead, all head slots of a
///    function name share one cumulative accumulator (and all call-target
///    slots into it share another): slot i becomes
///    round(S_i * Num/Den) - round(S_{i-1} * Num/Den) over the prefix sums
///    S. Each side telescopes to round(true_sum * Num/Den), so equal sums
///    stay equal under any Num/Den.
///
///  * Exact-count (Instr) profiles get \p ExactCounts = true: no edge
///    accumulators (the equality does not apply to them), and the head is
///    clamped to the recomputed total so HEAD <= TOTAL keeps holding.
///
/// Num == Den is a no-op; Num = 0 zeroes every count.
void scaleFlatProfile(FlatProfile &Profile, uint64_t Num, uint64_t Den,
                      bool ExactCounts = false);
void scaleContextProfile(ContextProfile &Profile, uint64_t Num, uint64_t Den);

} // namespace csspgo

#endif // CSSPGO_PROFILE_PROFILEMERGE_H

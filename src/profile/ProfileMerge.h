//===- profile/ProfileMerge.h - Profile merging -----------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Merging of profiles from multiple profiling runs (the production
/// workflow aggregates samples from many hosts before feeding PGO).
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_PROFILE_PROFILEMERGE_H
#define CSSPGO_PROFILE_PROFILEMERGE_H

#include "profile/ContextTrie.h"
#include "profile/FunctionProfile.h"

namespace csspgo {

/// Accumulates \p Src into \p Dst (counts are summed). Kinds must match.
void mergeFlatProfiles(FlatProfile &Dst, const FlatProfile &Src);

/// Accumulates \p Src into \p Dst context-by-context.
void mergeContextProfiles(ContextProfile &Dst, const ContextProfile &Src);

} // namespace csspgo

#endif // CSSPGO_PROFILE_PROFILEMERGE_H

//===- profile/ContextTrie.cpp - Context-sensitive profiles ---------------===//

#include "profile/ContextTrie.h"

#include "support/Hashing.h"
#include "support/SourceText.h"

#include <cassert>

namespace csspgo {

std::string contextToString(const SampleContext &Ctx) {
  std::string S = "[";
  for (size_t I = 0; I != Ctx.size(); ++I) {
    if (I)
      S += " @ ";
    S += Ctx[I].Func;
    if (I + 1 != Ctx.size())
      S += ":" + std::to_string(Ctx[I].Site);
  }
  S += "]";
  return S;
}

bool contextFromString(const std::string &S, SampleContext &Out) {
  Out.clear();
  if (S.size() < 2 || S.front() != '[' || S.back() != ']')
    return false;
  std::string Inner = S.substr(1, S.size() - 2);
  if (Inner.empty())
    return false;
  // Split on " @ ".
  std::vector<std::string> Parts;
  size_t Pos = 0;
  while (true) {
    size_t At = Inner.find(" @ ", Pos);
    if (At == std::string::npos) {
      Parts.push_back(Inner.substr(Pos));
      break;
    }
    Parts.push_back(Inner.substr(Pos, At - Pos));
    Pos = At + 3;
  }
  for (size_t I = 0; I != Parts.size(); ++I) {
    ContextFrame F;
    size_t Colon = Parts[I].rfind(':');
    if (I + 1 != Parts.size()) {
      if (Colon == std::string::npos)
        return false;
      F.Func = Parts[I].substr(0, Colon);
      F.Site = static_cast<uint32_t>(
          std::strtoul(Parts[I].c_str() + Colon + 1, nullptr, 10));
    } else {
      F.Func = Parts[I];
    }
    if (F.Func.empty())
      return false;
    Out.push_back(std::move(F));
  }
  return true;
}

ContextTrieNode *ContextTrieNode::getChild(uint32_t Site,
                                           const std::string &Callee) {
  auto It = Children.find({Site, Callee});
  return It == Children.end() ? nullptr : &It->second;
}

const ContextTrieNode *
ContextTrieNode::getChild(uint32_t Site, const std::string &Callee) const {
  auto It = Children.find({Site, Callee});
  return It == Children.end() ? nullptr : &It->second;
}

ContextTrieNode &
ContextTrieNode::getOrCreateChild(uint32_t Site, const std::string &Callee) {
  ContextTrieNode &N = Children[{Site, Callee}];
  if (N.FuncName.empty()) {
    N.FuncName = Callee;
    N.Profile.Name = Callee;
    N.Profile.Guid = computeFunctionGuid(Callee);
  }
  return N;
}

uint64_t ContextTrieNode::subtreeSamples() const {
  uint64_t Total = HasProfile ? Profile.TotalSamples : 0;
  for (const auto &[Key, Child] : Children)
    Total += Child.subtreeSamples();
  return Total;
}

ContextTrieNode &ContextProfile::getOrCreateNode(const SampleContext &Ctx) {
  assert(!Ctx.empty() && "empty context");
  ContextTrieNode *N = &Root;
  // The root's children are keyed by (0, top-level function name).
  N = &N->getOrCreateChild(0, Ctx.front().Func);
  for (size_t I = 0; I + 1 < Ctx.size(); ++I)
    N = &N->getOrCreateChild(Ctx[I].Site, Ctx[I + 1].Func);
  return *N;
}

const ContextTrieNode *
ContextProfile::findNode(const SampleContext &Ctx) const {
  if (Ctx.empty())
    return nullptr;
  const ContextTrieNode *N = Root.getChild(0, Ctx.front().Func);
  for (size_t I = 0; N && I + 1 < Ctx.size(); ++I)
    N = N->getChild(Ctx[I].Site, Ctx[I + 1].Func);
  return N;
}

ContextTrieNode *ContextProfile::findNode(const SampleContext &Ctx) {
  return const_cast<ContextTrieNode *>(
      static_cast<const ContextProfile *>(this)->findNode(Ctx));
}

const ContextTrieNode *
ContextProfile::findBase(const std::string &Func) const {
  return Root.getChild(0, Func);
}

ContextTrieNode *ContextProfile::findBase(const std::string &Func) {
  return Root.getChild(0, Func);
}

static void visitNodes(
    const ContextTrieNode &N, SampleContext &Ctx,
    const std::function<void(const SampleContext &, const ContextTrieNode &)>
        &Fn) {
  if (N.HasProfile)
    Fn(Ctx, N);
  for (const auto &[Key, Child] : N.Children) {
    if (!Ctx.empty())
      Ctx.back().Site = Key.first;
    Ctx.push_back({Child.FuncName, 0});
    visitNodes(Child, Ctx, Fn);
    Ctx.pop_back();
    if (!Ctx.empty())
      Ctx.back().Site = 0;
  }
}

void ContextProfile::forEachNode(
    const std::function<void(const SampleContext &, const ContextTrieNode &)>
        &Fn) const {
  SampleContext Ctx;
  visitNodes(Root, Ctx, Fn);
}

void ContextProfile::forEachNodeMutable(
    const std::function<void(const SampleContext &, ContextTrieNode &)> &Fn) {
  forEachNode([&Fn](const SampleContext &Ctx, const ContextTrieNode &N) {
    Fn(Ctx, const_cast<ContextTrieNode &>(N));
  });
}

size_t ContextProfile::numProfiles() const {
  size_t Count = 0;
  forEachNode([&Count](const SampleContext &, const ContextTrieNode &) {
    ++Count;
  });
  return Count;
}

uint64_t ContextProfile::totalSamples() const {
  return Root.subtreeSamples();
}

FlatProfile ContextProfile::flatten() const {
  FlatProfile Flat;
  Flat.Kind = Kind;
  forEachNode([&Flat](const SampleContext &Ctx, const ContextTrieNode &N) {
    FunctionProfile &P = Flat.getOrCreate(Ctx.back().Func);
    P.Guid = N.Profile.Guid;
    P.Checksum = N.Profile.Checksum;
    P.merge(N.Profile);
  });
  return Flat;
}

} // namespace csspgo

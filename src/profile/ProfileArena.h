//===- profile/ProfileArena.h - Flat SoA profile views ----------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Flat, arena-backed struct-of-arrays representation of sample profiles.
/// The map-based containers (FunctionProfile / ContextProfile) are the
/// canonical *semantic* model, but their pointer-chasing layout dominates
/// the cost of the profile data plane: every body slot is a red-black tree
/// node, every callee name a heap string, every merge a rebuild of those
/// trees. The arena keeps the same information as four append-only pools
/// of POD slots plus an interned name table:
///
///   Body      [ (key, count) ... ]          sorted by ProfileKey
///   Calls     [ (key, callee, count) ... ]  sorted by (key, callee name)
///   Inlinees  [ (key, callee, record) ... ] sorted by (key, callee name)
///   Frames    [ (func, site) ... ]          context frames, outermost first
///
/// A FuncRecord is five scalars plus half-open ranges into the pools; a
/// profile database is a list of record (or context) handles over one
/// shared arena. All slices are kept in the canonical order the std::map
/// containers iterate in, which the producers provide for free (map
/// iteration, trie DFS, and the binary store's record encoding are all
/// already sorted), so merging K profiles is a k-way merge of sorted
/// slices and conversion back to the map containers is a monotone build.
///
/// The conversions are exact: view -> map -> view and map -> view -> map
/// are identities, the k-way merges reproduce the sequential map merges
/// bit-for-bit (including MergeStats and saturation behavior), and the
/// view scaler reproduces ProfileMerge's decay scaler slot-for-slot.
/// ArenaTest and the differential fuzzer hold all of that down.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_PROFILE_PROFILEARENA_H
#define CSSPGO_PROFILE_PROFILEARENA_H

#include "profile/ProfileMerge.h"

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace csspgo {

/// Index into a NameInterner's table.
using NameId = uint32_t;

/// Deduplicating append-only name table. Ids are dense and assigned in
/// first-intern order; `name(id)` is stable for the interner's lifetime
/// (std::deque storage never relocates elements, so the lookup keys can
/// be views into the stored strings).
class NameInterner {
public:
  NameId intern(std::string_view S) {
    auto It = Ids.find(S);
    if (It != Ids.end())
      return It->second;
    Storage.emplace_back(S);
    NameId Id = static_cast<NameId>(Storage.size() - 1);
    Ids.emplace(Storage.back(), Id);
    return Id;
  }

  const std::string &name(NameId Id) const { return Storage[Id]; }
  size_t size() const { return Storage.size(); }

private:
  std::deque<std::string> Storage;
  std::unordered_map<std::string_view, NameId> Ids;
};

/// One body sample slot: (key, count).
struct BodySlot {
  ProfileKey Key;
  uint64_t Count = 0;
};

/// One call-target slot: (call-site key, interned callee, count).
struct CallSlot {
  ProfileKey Key;
  NameId Callee = 0;
  uint64_t Count = 0;
};

/// One inlinee slot: (call-site key, interned callee, child record index).
struct InlineSlot {
  ProfileKey Key;
  NameId Callee = 0;
  uint32_t Rec = 0;
};

/// One context frame: function plus the call site leading to the next
/// frame (0 on the leaf frame, mirroring ContextFrame).
struct FrameSlot {
  NameId Func = 0;
  uint32_t Site = 0;
};

/// Flat equivalent of one FunctionProfile: scalars plus half-open slice
/// ranges into the owning arena's pools. Child inlinee records live in
/// the same arena, referenced by index from the Inlinees slice.
struct FuncRecord {
  NameId Name = 0;
  uint64_t Guid = 0;
  uint64_t Checksum = 0;
  uint64_t TotalSamples = 0;
  uint64_t HeadSamples = 0;
  uint32_t BodyBegin = 0, BodyEnd = 0;
  uint32_t CallsBegin = 0, CallsEnd = 0;
  uint32_t InlineesBegin = 0, InlineesEnd = 0;
};

/// Bump-pointer storage for one profile database: slot pools plus the
/// record table and name interner. Append-only; slices are identified by
/// (begin, end) index pairs so growing the pools never invalidates them.
class ProfileArena {
public:
  NameInterner Names;
  std::vector<BodySlot> Body;
  std::vector<CallSlot> Calls;
  std::vector<InlineSlot> Inlinees;
  std::vector<FrameSlot> Frames;
  std::vector<FuncRecord> Records;

  /// Appends \p P (recursively, inlinees first-child-deep) and returns
  /// the new record's index. Slices are emitted in the canonical sorted
  /// order (std::map iteration order of the source profile).
  uint32_t appendProfile(const FunctionProfile &P);

  /// Rebuilds the map-based profile for record \p Rec. Exact inverse of
  /// appendProfile.
  FunctionProfile materialize(uint32_t Rec) const;

  /// Saturating body-sample total of record \p Rec including nested
  /// inlinees; mirrors FunctionProfile::totalBodySamples.
  uint64_t totalBodySamples(uint32_t Rec) const;

  /// Approximate resident bytes of the pools (observability only).
  size_t byteSize() const;
};

/// Flat (context-insensitive) profile database as a view: top-level
/// record indices in function-name order over one arena.
struct FlatProfileView {
  ProfileKind Kind = ProfileKind::LineBased;
  ProfileArena Arena;
  std::vector<uint32_t> Functions;
};

/// One calling context: a frame slice plus the record holding its
/// samples, in ContextProfile trie-DFS order within the view.
struct ContextRecord {
  uint32_t FramesBegin = 0, FramesEnd = 0;
  uint32_t Rec = 0;
  bool ShouldBeInlined = false;
};

/// Context-sensitive profile database as a view: contexts in trie-DFS
/// order (prefix-first, children by (site, callee) — exactly the order
/// ContextProfile::forEachNode visits) over one arena.
struct ContextProfileView {
  ProfileKind Kind = ProfileKind::ProbeBased;
  ProfileArena Arena;
  std::vector<ContextRecord> Contexts;
};

/// FlatProfile -> view. Slices come out canonically sorted because the
/// source maps iterate sorted.
FlatProfileView flatViewOf(const FlatProfile &P);

/// View -> FlatProfile. Exact inverse of flatViewOf; on merged or
/// store-loaded views it produces exactly what the map-based pipeline
/// would have produced.
FlatProfile flatProfileOf(const FlatProfileView &V);

/// ContextProfile -> view (profile-bearing nodes only, trie-DFS order).
ContextProfileView contextViewOf(const ContextProfile &P);

/// View -> ContextProfile. Rebuilds the trie; intermediate no-profile
/// nodes are reseeded exactly as ContextTrieNode::getOrCreateChild does.
ContextProfile contextProfileOf(const ContextProfileView &V);

/// K-way merge of flat views over sorted slices. Reproduces, bit for
/// bit (values, Guid/Checksum carry, saturation behavior and MergeStats):
///
///   Dst = copy(*Parts[0]);
///   for (i = 1 .. K-1) Stats += mergeFlatProfiles(Dst, *Parts[i]);
///
/// With \p IntoEmptyDst the first part is a merge *source* too
/// (Dst starts empty, as in ProfileStore::ingestEpoch's first epoch):
///
///   Dst = {}; for (i = 0 .. K-1) Stats += mergeFlatProfiles(Dst, ...);
///
/// All parts must share one kind (fatal mismatch otherwise, same as the
/// map merge). Input slices must be canonically ordered — true of every
/// in-tree producer; debug builds assert it.
FlatProfileView mergeFlatViews(const std::vector<const FlatProfileView *> &Parts,
                               MergeStats &Stats, bool IntoEmptyDst = false);

/// K-way merge of context views; same contract as mergeFlatViews but
/// emulating sequential mergeContextProfiles (including the trie's GUID
/// seeding of newly created nodes and ShouldBeInlined OR-folding).
ContextProfileView
mergeContextViews(const std::vector<const ContextProfileView *> &Parts,
                  MergeStats &Stats, bool IntoEmptyDst = false);

/// Decay-scales a view in place; slot-for-slot identical to
/// scaleFlatProfile / scaleContextProfile on the equivalent map profile
/// (same traversal order, same telescoping head/call-edge accumulators).
void scaleFlatView(FlatProfileView &V, uint64_t Num, uint64_t Den,
                   bool ExactCounts = false);
void scaleContextView(ContextProfileView &V, uint64_t Num, uint64_t Den);

} // namespace csspgo

#endif // CSSPGO_PROFILE_PROFILEARENA_H

//===- profile/ProfileSummary.h - Hotness thresholds -------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Profile-summary style hotness thresholds shared by the profile loader
/// and the pre-inliner: the hot threshold is the smallest count among the
/// hottest entries that together cover a cutoff fraction of the total
/// count mass (the same spirit as LLVM's ProfileSummaryInfo).
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_PROFILE_PROFILESUMMARY_H
#define CSSPGO_PROFILE_PROFILESUMMARY_H

#include "profile/ContextTrie.h"
#include "profile/FunctionProfile.h"

#include <vector>

namespace csspgo {

/// Smallest count among the hottest entries covering \p Cutoff of the
/// total mass of \p Counts. Returns 1 for empty/zero inputs.
uint64_t summaryThreshold(std::vector<uint64_t> Counts, double Cutoff);

/// The count distribution hotThreshold() derives its threshold from
/// (call-target counts with a body-count fallback for flat profiles;
/// per-context totals for CS profiles). Only the multiset matters, so
/// persisting it — the binary store's summary section does — reproduces
/// every threshold exactly without materializing the profile.
std::vector<uint64_t> hotCountDistribution(const FlatProfile &Profile);
std::vector<uint64_t> hotCountDistribution(const ContextProfile &Profile);

/// Hot-call-site threshold from the distribution of call-target counts of
/// a flat profile (falls back to body counts for counter-keyed profiles,
/// which record no call targets).
uint64_t hotThreshold(const FlatProfile &Profile, double Cutoff);

/// Hot-context threshold from the distribution of context total samples.
uint64_t hotThreshold(const ContextProfile &Profile, double Cutoff);

} // namespace csspgo

#endif // CSSPGO_PROFILE_PROFILESUMMARY_H

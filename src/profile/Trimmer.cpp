//===- profile/Trimmer.cpp - Cold-context trimming ------------------------===//

#include "profile/Trimmer.h"

#include <algorithm>

namespace csspgo {

TrimStats trimColdContexts(ContextProfile &Profile, uint64_t ColdThreshold) {
  TrimStats Stats;
  Stats.ContextsBefore = Profile.numProfiles();

  // Collect cold contexts first; mutating the trie while visiting would
  // invalidate iteration.
  std::vector<SampleContext> Cold;
  Profile.forEachNode([&](const SampleContext &Ctx, const ContextTrieNode &N) {
    if (Ctx.size() > 1 && N.Profile.TotalSamples < ColdThreshold)
      Cold.push_back(Ctx);
  });

  for (const SampleContext &Ctx : Cold) {
    ContextTrieNode *N = Profile.findNode(Ctx);
    if (!N || !N->HasProfile)
      continue;
    // Merge into the leaf function's base context.
    ContextTrieNode &Base = Profile.Root.getOrCreateChild(0, Ctx.back().Func);
    if (!Base.HasProfile) {
      Base.HasProfile = true;
      Base.Profile.Name = N->Profile.Name;
      Base.Profile.Guid = N->Profile.Guid;
      Base.Profile.Checksum = N->Profile.Checksum;
    }
    Base.Profile.merge(N->Profile);
    N->Profile = FunctionProfile();
    N->Profile.Name = N->FuncName;
    N->HasProfile = false;
    ++Stats.ContextsMerged;
  }

  // Prune empty leaf nodes (no profile, no children) repeatedly.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::function<void(ContextTrieNode &)> Prune =
        [&](ContextTrieNode &Node) {
          for (auto It = Node.Children.begin(); It != Node.Children.end();) {
            Prune(It->second);
            if (!It->second.HasProfile && It->second.Children.empty()) {
              It = Node.Children.erase(It);
              Changed = true;
            } else {
              ++It;
            }
          }
        };
    Prune(Profile.Root);
  }

  Stats.ContextsAfter = Profile.numProfiles();
  return Stats;
}

uint64_t coldThresholdForPercentile(const ContextProfile &Profile,
                                    double Percentile) {
  std::vector<uint64_t> Totals;
  Profile.forEachNode(
      [&Totals](const SampleContext &, const ContextTrieNode &N) {
        Totals.push_back(N.Profile.TotalSamples);
      });
  if (Totals.empty())
    return 0;
  std::sort(Totals.begin(), Totals.end());
  double Clamped = std::clamp(Percentile, 0.0, 1.0);
  size_t Idx = static_cast<size_t>(Clamped * (Totals.size() - 1));
  return Totals[Idx];
}

} // namespace csspgo

//===- profile/ProfileSummary.cpp - Hotness thresholds -----------------------===//

#include "profile/ProfileSummary.h"

#include <algorithm>
#include <functional>

namespace csspgo {

uint64_t summaryThreshold(std::vector<uint64_t> Counts, double Cutoff) {
  if (Counts.empty())
    return 1;
  std::sort(Counts.rbegin(), Counts.rend());
  long double Total = 0;
  for (uint64_t C : Counts)
    Total += C;
  if (Total <= 0)
    return 1;
  long double Acc = 0;
  for (uint64_t C : Counts) {
    Acc += C;
    if (Acc >= Total * Cutoff)
      return std::max<uint64_t>(C, 1);
  }
  return 1;
}

std::vector<uint64_t> hotCountDistribution(const FlatProfile &Profile) {
  std::vector<uint64_t> CallCounts;
  std::function<void(const FunctionProfile &)> Collect =
      [&](const FunctionProfile &P) {
        for (const auto &[K, Targets] : P.Calls)
          for (const auto &[Callee, N] : Targets)
            CallCounts.push_back(N);
        for (const auto &[K, Map] : P.Inlinees)
          for (const auto &[Name, Sub] : Map)
            Collect(Sub);
      };
  for (const auto &[Name, P] : Profile.Functions)
    Collect(P);
  if (CallCounts.empty()) {
    for (const auto &[Name, P] : Profile.Functions)
      for (const auto &[K, N] : P.Body)
        CallCounts.push_back(N);
  }
  return CallCounts;
}

std::vector<uint64_t> hotCountDistribution(const ContextProfile &Profile) {
  std::vector<uint64_t> Totals;
  Profile.forEachNode(
      [&Totals](const SampleContext &, const ContextTrieNode &N) {
        Totals.push_back(N.Profile.TotalSamples);
      });
  return Totals;
}

uint64_t hotThreshold(const FlatProfile &Profile, double Cutoff) {
  return summaryThreshold(hotCountDistribution(Profile), Cutoff);
}

uint64_t hotThreshold(const ContextProfile &Profile, double Cutoff) {
  return summaryThreshold(hotCountDistribution(Profile), Cutoff);
}

} // namespace csspgo

//===- profile/FunctionProfile.h - Sample profile data ----------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sample-profile containers. A FunctionProfile holds body samples keyed by
/// ProfileKey — a (index, discriminator) pair where the index is a
/// function-relative *line offset* for AutoFDO profiles or a *probe id* for
/// CSSPGO profiles — plus call-target counts and (for AutoFDO) nested
/// inlinee profiles mirroring the inlining of the profiled binary.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_PROFILE_FUNCTIONPROFILE_H
#define CSSPGO_PROFILE_FUNCTIONPROFILE_H

#include <cstdint>
#include <map>
#include <string>

namespace csspgo {

/// Saturating uint64 addition: profile counts are magnitudes, so an
/// overflowing sum clamps at UINT64_MAX instead of wrapping a huge count
/// into a tiny one. All count accumulation in the profile containers goes
/// through this, which keeps TotalSamples == saturating-sum(Body) a true
/// invariant even at the extremes (the ProfileVerifier checks exactly
/// that equation).
inline uint64_t saturatingAdd(uint64_t A, uint64_t B) {
  uint64_t R;
  return __builtin_add_overflow(A, B, &R) ? UINT64_MAX : R;
}

/// In-place saturating accumulate: Slot += V, clamping at UINT64_MAX.
/// Returns true when the addition clamped. This is the one clamp
/// implementation shared by every merge path — FunctionProfile::merge and
/// the flat arena k-way merge both count their SaturatedCounts through it,
/// so the two paths cannot drift on the clamping rule.
inline bool saturatingAccum(uint64_t &Slot, uint64_t V) {
  uint64_t R;
  if (__builtin_add_overflow(Slot, V, &R)) {
    Slot = UINT64_MAX;
    return true;
  }
  Slot = R;
  return false;
}

/// Key of one profile record within a function.
struct ProfileKey {
  uint32_t Index = 0; ///< Line offset (AutoFDO) or probe id (CSSPGO).
  uint32_t Disc = 0;  ///< Discriminator (AutoFDO only; 0 otherwise).

  ProfileKey() = default;
  ProfileKey(uint32_t Index, uint32_t Disc = 0) : Index(Index), Disc(Disc) {}

  bool operator<(const ProfileKey &O) const {
    return Index != O.Index ? Index < O.Index : Disc < O.Disc;
  }
  bool operator==(const ProfileKey &O) const {
    return Index == O.Index && Disc == O.Disc;
  }
};

/// Whether profile records are keyed by debug-info line offsets or by
/// pseudo-probe ids. This is the axis the paper's "profile correlation"
/// comparison (Fig. 2) runs along.
enum class ProfileKind : uint8_t { LineBased, ProbeBased };

/// Sample profile of one function (or of one calling context of a function
/// when stored in a ContextTrie).
class FunctionProfile {
public:
  std::string Name;
  uint64_t Guid = 0;
  /// CFG checksum persisted by probe-based profiles; the loader rejects the
  /// profile when it mismatches the IR checksum (stale profile detection).
  uint64_t Checksum = 0;
  uint64_t TotalSamples = 0;
  /// Samples attributed to the function entry (≈ invocation count).
  uint64_t HeadSamples = 0;

  /// Body samples: key -> count.
  std::map<ProfileKey, uint64_t> Body;

  /// Call targets: call-site key -> callee name -> count.
  std::map<ProfileKey, std::map<std::string, uint64_t>> Calls;

  /// Nested profiles of callees inlined in the *profiled* binary
  /// (AutoFDO-style partial context sensitivity): call-site key -> callee
  /// name -> profile.
  std::map<ProfileKey, std::map<std::string, FunctionProfile>> Inlinees;

  /// Adds \p N samples at \p K, with "sum" (default) or "max" semantics.
  void addBody(ProfileKey K, uint64_t N);
  /// Sets Body[K] = max(Body[K], N): the debug-info heuristic the paper
  /// describes for one-to-many line mappings.
  void maxBody(ProfileKey K, uint64_t N);

  void addCall(ProfileKey K, const std::string &Callee, uint64_t N);

  /// Returns the body count at \p K, or 0.
  uint64_t bodyAt(ProfileKey K) const;

  /// Returns the total call-target count at call site \p K.
  uint64_t callAt(ProfileKey K) const;

  /// Returns the inlinee profile at (\p K, \p Callee), or nullptr.
  const FunctionProfile *inlineeAt(ProfileKey K,
                                   const std::string &Callee) const;
  FunctionProfile *inlineeAt(ProfileKey K, const std::string &Callee);

  /// Gets or creates a nested inlinee profile.
  FunctionProfile &getOrCreateInlinee(ProfileKey K, const std::string &Callee);

  /// Accumulates \p Other into this profile, scaling counts by \p Num/Den.
  /// Used when merging un-inlined context profiles into a base profile.
  /// Counts saturate at UINT64_MAX instead of wrapping; returns the number
  /// of additions (body slots, heads, call targets, recursively through
  /// inlinees) that saturated, so merge pipelines can report clamping
  /// (MergeStats::SaturatedCounts) instead of silently corrupting counts.
  uint64_t merge(const FunctionProfile &Other, uint64_t Num = 1,
                 uint64_t Den = 1);

  /// Max body sample count (a hotness proxy).
  uint64_t maxBodyCount() const;

  /// Sum of all body samples including nested inlinees.
  uint64_t totalBodySamples() const;

  bool empty() const {
    return Body.empty() && Calls.empty() && Inlinees.empty();
  }
};

/// A flat (context-insensitive) profile database: AutoFDO profiles and
/// instrumentation profiles.
struct FlatProfile {
  ProfileKind Kind = ProfileKind::LineBased;
  std::map<std::string, FunctionProfile> Functions;

  FunctionProfile &getOrCreate(const std::string &Name);
  const FunctionProfile *find(const std::string &Name) const;
  uint64_t totalSamples() const;
};

} // namespace csspgo

#endif // CSSPGO_PROFILE_FUNCTIONPROFILE_H

//===- postlink/ProfileMap.cpp - Profile mapping at binary addresses ------===//

#include "postlink/ProfileMap.h"

#include <algorithm>

namespace csspgo {
namespace postlink {

namespace {

/// Adds one straight-line run [Begin, End] (global instruction indices,
/// both executed) to the block and fallthrough-edge counts. The run is
/// only credible when it stays inside one function — a resolution glitch
/// could otherwise smear counts across the whole text section.
void creditRange(const BinaryCFG &CFG, size_t Begin, size_t End,
                 BinaryProfile &Prof) {
  if (Begin > End)
    return;
  uint32_t FirstB = CFG.BlockOfInst[Begin];
  uint32_t LastB = CFG.BlockOfInst[End];
  if (CFG.Blocks[FirstB].Func != CFG.Blocks[LastB].Func)
    return;
  // Straight-line execution visits consecutive layout blocks.
  for (uint32_t B = FirstB; B <= LastB; ++B) {
    Prof.BlockCounts[B] = saturatingAdd(Prof.BlockCounts[B], 1);
    if (B != LastB)
      saturatingAccum(Prof.EdgeCounts[{B, B + 1}], 1);
  }
}

} // namespace

BinaryProfile mapProfileToBinary(const BinaryCFG &CFG,
                                 const std::vector<PerfSample> &Samples,
                                 const FlatProfile *FnProf, const Module *IR,
                                 const ProfileMapOptions &Opts) {
  const Binary &Bin = *CFG.Bin;
  BinaryProfile Prof;
  Prof.BlockCounts.assign(CFG.Blocks.size(), 0);
  Prof.FuncHasCounts.assign(CFG.Funcs.size(), false);
  ProfileMapStats &St = Prof.Stats;

  // --- LBR aggregation -------------------------------------------------
  for (const PerfSample &S : Samples) {
    // Resolve every endpoint once; failures lower the mapped-sample rate
    // (the binary the samples came from no longer matches this one).
    std::vector<size_t> SrcIdx(S.LBR.size()), DstIdx(S.LBR.size());
    for (size_t I = 0; I != S.LBR.size(); ++I) {
      SrcIdx[I] = Bin.indexOfAddr(S.LBR[I].Src);
      DstIdx[I] = Bin.indexOfAddr(S.LBR[I].Dst);
      St.LBREndpoints += 2;
      St.LBRResolved += (SrcIdx[I] != SIZE_MAX) + (DstIdx[I] != SIZE_MAX);
    }
    for (size_t I = 0; I != S.LBR.size(); ++I) {
      // The taken edge itself, when it stays within one function (calls
      // and returns cross functions and are not layout edges).
      if (SrcIdx[I] != SIZE_MAX && DstIdx[I] != SIZE_MAX) {
        uint32_t SB = CFG.BlockOfInst[SrcIdx[I]];
        uint32_t DB = CFG.BlockOfInst[DstIdx[I]];
        if (CFG.Blocks[SB].Func == CFG.Blocks[DB].Func)
          saturatingAccum(Prof.EdgeCounts[{SB, DB}], 1);
      }
      // Range inference: destination of this record up to the source of
      // the next executed fallthrough-only (every transfer is recorded).
      if (I + 1 < S.LBR.size()) {
        if (DstIdx[I] != SIZE_MAX && SrcIdx[I + 1] != SIZE_MAX)
          creditRange(CFG, DstIdx[I], SrcIdx[I + 1], Prof);
      } else if (DstIdx[I] != SIZE_MAX) {
        // The newest record: execution had at least reached its target.
        uint32_t B = CFG.BlockOfInst[DstIdx[I]];
        Prof.BlockCounts[B] = saturatingAdd(Prof.BlockCounts[B], 1);
      }
    }
  }
  for (const BBlock &B : CFG.Blocks)
    if (Prof.BlockCounts[&B - CFG.Blocks.data()] > 0)
      Prof.FuncHasCounts[B.Func] = true;

  // --- Probe-count fallback for LBR-dark functions ---------------------
  bool AnyProbeMapped = false;
  if (FnProf && FnProf->Kind == ProfileKind::ProbeBased) {
    for (size_t F = 0; F != Bin.Funcs.size(); ++F) {
      if (Prof.FuncHasCounts[F])
        continue;
      const MachineFunction &MF = Bin.Funcs[F];
      const FunctionProfile *P = FnProf->find(MF.Name);
      if (!P || P->empty())
        continue;

      FunctionProfile Recovered; // Keep-alive for the matched profile.
      if (IR) {
        const Function *Fn = IR->getFunction(MF.Name);
        if (Fn && Fn->HasProbes && P->Checksum &&
            P->Checksum != Fn->ProbeCFGChecksum) {
          ++St.StaleProfiles;
          if (!Opts.MatchStale) {
            ++St.StaleDropped;
            continue;
          }
          MatchResult R = matchStaleProfile(*P, *Fn, *IR,
                                            ProfileKind::ProbeBased,
                                            Opts.Matcher);
          if (!R.Stats.Accepted) {
            ++St.StaleDropped;
            continue;
          }
          ++St.StaleRecovered;
          Recovered = std::move(R.Recovered);
          P = &Recovered;
        }
      }

      bool Mapped = false;
      for (const ProbeRecord &PR : Bin.Probes) {
        if (PR.FuncIdx != F || PR.Guid != MF.Guid || PR.InlineId != 0)
          continue;
        uint64_t N = P->bodyAt(ProfileKey(PR.ProbeId));
        if (!N)
          continue;
        uint32_t B = CFG.BlockOfInst[PR.InstIdx];
        Prof.BlockCounts[B] = std::max(Prof.BlockCounts[B], N);
        Mapped = true;
      }
      if (Mapped) {
        Prof.FuncHasCounts[F] = true;
        ++St.FuncsFromProbes;
        AnyProbeMapped = true;
      }
    }
  }

  for (bool Has : Prof.FuncHasCounts)
    St.FuncsWithCounts += Has;
  St.MappedSampleRate =
      St.LBREndpoints
          ? static_cast<double>(St.LBRResolved) /
                static_cast<double>(St.LBREndpoints)
          : (AnyProbeMapped ? 1.0 : 0.0);
  return Prof;
}

} // namespace postlink
} // namespace csspgo

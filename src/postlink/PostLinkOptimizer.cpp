//===- postlink/PostLinkOptimizer.cpp - BOLT-style binary rewriter --------===//

#include "postlink/PostLinkOptimizer.h"

#include "opt/ExtTSPCore.h"
#include "profile/FunctionProfile.h"

#include <algorithm>
#include <map>

namespace csspgo {
namespace postlink {

namespace {

//===----------------------------------------------------------------------===//
// Identical-code folding.
//===----------------------------------------------------------------------===//

/// Canonical token stream of one function's body: every field that affects
/// execution, with layout-dependent state normalized — branch targets
/// become function-local ordinals, self-calls a sentinel, and addresses /
/// debug metadata are excluded entirely. Two functions with equal streams
/// compute the same results through any call site.
std::vector<uint64_t> canonicalTokens(const Binary &Bin, uint32_t F) {
  const MachineFunction &MF = Bin.Funcs[F];
  auto LocalOrdinal = [&MF](size_t Idx) {
    return Idx < MF.HotEnd ? Idx - MF.HotBegin
                           : (MF.HotEnd - MF.HotBegin) + (Idx - MF.ColdBegin);
  };

  std::vector<uint64_t> Tok;
  Tok.push_back(MF.NumParams);
  Tok.push_back(MF.NumRegs);
  Tok.push_back(MF.HotEnd - MF.HotBegin); // Hot/cold partition point.
  auto EmitOperand = [&Tok](const Operand &O) {
    Tok.push_back(static_cast<uint64_t>(O.K));
    Tok.push_back(static_cast<uint64_t>(O.Val));
  };
  auto EmitInst = [&](const MInst &MI) {
    Tok.push_back(static_cast<uint64_t>(MI.Op));
    Tok.push_back(MI.Dst);
    EmitOperand(MI.A);
    EmitOperand(MI.B);
    EmitOperand(MI.C);
    Tok.push_back(MI.Args.size());
    for (const Operand &O : MI.Args)
      EmitOperand(O);
    Tok.push_back(MI.IsTailCall);
    Tok.push_back(MI.InvertCond);
    Tok.push_back(MI.CounterIdx);
    Tok.push_back(MI.Target >= 0
                      ? LocalOrdinal(static_cast<size_t>(MI.Target)) + 1
                      : 0);
    // A recursive call is equivalent across copies of the same body.
    Tok.push_back(MI.Op == Opcode::Call
                      ? (MI.CalleeIdx == F ? ~uint64_t(0) : MI.CalleeIdx)
                      : 0);
  };
  for (size_t I = MF.HotBegin; I != MF.HotEnd; ++I)
    EmitInst(Bin.Code[I]);
  for (size_t I = MF.ColdBegin; I != MF.ColdEnd; ++I)
    EmitInst(Bin.Code[I]);
  return Tok;
}

/// Populates Plan.CalleeRemap and drops duplicate bodies. "main" (the
/// executor's entry symbol) is never dropped; it can still act as the
/// surviving representative.
unsigned foldIdenticalCode(const Binary &Bin, LayoutPlan &Plan) {
  std::map<std::vector<uint64_t>, uint32_t> Reps;
  std::vector<uint32_t> Remap(Bin.Funcs.size());
  unsigned Folded = 0;
  for (uint32_t F = 0; F != Bin.Funcs.size(); ++F) {
    Remap[F] = F;
    const MachineFunction &MF = Bin.Funcs[F];
    if (MF.HotEnd == MF.HotBegin && MF.ColdEnd == MF.ColdBegin)
      continue; // Already empty.
    auto [It, New] = Reps.emplace(canonicalTokens(Bin, F), F);
    if (New || MF.Name == "main")
      continue;
    Remap[F] = It->second;
    Plan.Funcs[F].Blocks.clear();
    Plan.Funcs[F].NumHot = 0;
    ++Folded;
  }
  if (Folded)
    Plan.CalleeRemap = std::move(Remap);
  return Folded;
}

//===----------------------------------------------------------------------===//
// Ext-TSP reordering and hot/cold splitting.
//===----------------------------------------------------------------------===//

/// Reorders one function's hot blocks along mapped edge counts. Returns
/// true when the layout changed.
bool reorderFunction(const BinaryCFG &CFG, const BinaryProfile &Prof,
                     FuncLayout &FL, size_t MaxBlocks, double MinGain) {
  size_t NumHot = FL.NumHot;
  if (NumHot < 3 || NumHot > MaxBlocks)
    return false;

  // Local index space over the hot blocks; the entry block leads its
  // section, so local 0 is the entry.
  std::map<unsigned, unsigned> LocalOf;
  std::vector<uint64_t> Sizes;
  for (size_t I = 0; I != NumHot; ++I) {
    LocalOf[FL.Blocks[I]] = static_cast<unsigned>(I);
    Sizes.push_back(CFG.Blocks[FL.Blocks[I]].SizeBytes);
  }

  std::vector<exttsp::Edge> Edges;
  double TotalWeight = 0;
  auto AddEdge = [&](unsigned SrcB, int64_t DstB, double W) {
    if (DstB < 0)
      return;
    auto SIt = LocalOf.find(SrcB);
    auto DIt = LocalOf.find(static_cast<unsigned>(DstB));
    if (SIt == LocalOf.end() || DIt == LocalOf.end())
      return;
    Edges.push_back({SIt->second, DIt->second, W});
    TotalWeight += W;
  };
  for (size_t I = 0; I != NumHot; ++I) {
    unsigned B = FL.Blocks[I];
    const BBlock &Blk = CFG.Blocks[B];
    AddEdge(B, Blk.Taken,
            static_cast<double>(Prof.edgeCount(
                B, static_cast<unsigned>(std::max<int64_t>(Blk.Taken, 0)))));
    AddEdge(B, Blk.Fallthru,
            static_cast<double>(Prof.edgeCount(
                B,
                static_cast<unsigned>(std::max<int64_t>(Blk.Fallthru, 0)))));
  }
  if (TotalWeight == 0) {
    // LBR edges missing (probe-count fallback): approximate each edge's
    // weight by its destination block's count.
    Edges.clear();
    for (size_t I = 0; I != NumHot; ++I) {
      unsigned B = FL.Blocks[I];
      const BBlock &Blk = CFG.Blocks[B];
      for (int64_t Succ : {Blk.Taken, Blk.Fallthru})
        if (Succ >= 0)
          AddEdge(B, Succ,
                  static_cast<double>(
                      Prof.blockCount(static_cast<unsigned>(Succ))));
    }
    TotalWeight = 0;
    for (const exttsp::Edge &E : Edges)
      TotalWeight += E.Weight;
    if (TotalWeight == 0)
      return false;
  }

  exttsp::Solver Solver(std::move(Sizes), std::move(Edges), 0);
  std::vector<unsigned> CurrentOrder(NumHot);
  for (unsigned I = 0; I != NumHot; ++I)
    CurrentOrder[I] = I;
  double CurrentScore = Solver.scoreOfOrder(CurrentOrder);
  std::vector<unsigned> Order = Solver.run();
  if (Order.size() != NumHot || Order.front() != 0)
    return false; // Entry must stay first; bail out defensively.
  bool Identity = true;
  for (unsigned I = 0; I != Order.size(); ++I)
    Identity &= Order[I] == I;
  if (Identity)
    return false;
  // Score gate: apply only a clear win over the layout the binary already
  // has — near-ties are churn (extra synthesized branches, moved code)
  // with no modeled upside.
  if (Solver.scoreOfOrder(Order) <= CurrentScore * (1.0 + MinGain))
    return false;

  std::vector<unsigned> NewHot;
  NewHot.reserve(NumHot);
  for (unsigned L : Order)
    NewHot.push_back(FL.Blocks[L]);
  std::copy(NewHot.begin(), NewHot.end(), FL.Blocks.begin());
  return true;
}

/// Moves never-executed hot blocks (count <= Threshold) to the front of
/// the function's cold region. The entry block never moves. Returns the
/// number of blocks moved.
unsigned splitFunction(const BinaryProfile &Prof, FuncLayout &FL,
                       uint64_t Threshold, uint64_t MinFuncCount) {
  if (FL.NumHot < 2)
    return 0;
  // Confidence gate: a zero count only means "cold" when the function was
  // actually sampled enough for its hot blocks to have accumulated counts.
  uint64_t FuncTotal = 0;
  for (size_t I = 0; I != FL.NumHot; ++I)
    FuncTotal = saturatingAdd(FuncTotal, Prof.blockCount(FL.Blocks[I]));
  if (FuncTotal < MinFuncCount)
    return 0;
  std::vector<unsigned> Hot, Moved;
  Hot.push_back(FL.Blocks[0]); // Entry stays put.
  for (size_t I = 1; I != FL.NumHot; ++I) {
    unsigned B = FL.Blocks[I];
    (Prof.blockCount(B) <= Threshold ? Moved : Hot).push_back(B);
  }
  if (Moved.empty())
    return 0;
  std::vector<unsigned> NewBlocks = Hot;
  NewBlocks.insert(NewBlocks.end(), Moved.begin(), Moved.end());
  NewBlocks.insert(NewBlocks.end(), FL.Blocks.begin() + FL.NumHot,
                   FL.Blocks.end());
  FL.Blocks = std::move(NewBlocks);
  FL.NumHot = Hot.size();
  return static_cast<unsigned>(Moved.size());
}

} // namespace

Expected<PostLinkResult> runPostLink(const Binary &Bin,
                                     const std::vector<PerfSample> &Samples,
                                     const FlatProfile *FnProf,
                                     const Module *IR,
                                     const PostLinkOptions &Opts) {
  Expected<BinaryCFG> CFGOr = reconstructBinaryCFG(Bin);
  if (!CFGOr)
    return CFGOr.takeError().withContext("post-link reconstruction");
  const BinaryCFG &CFG = *CFGOr;

  // Correctness gate: disassembly must be lossless before any rewrite.
  {
    std::unique_ptr<Binary> RoundTrip = reassemble(CFG, identityLayout(CFG));
    std::string Why;
    if (!binariesIdentical(Bin, *RoundTrip, &Why))
      return Status::error("post-link identity round-trip failed: " + Why);
  }

  PostLinkResult Res;
  Res.Stats.TextBytesBefore = Bin.textSize();

  BinaryProfile Prof = mapProfileToBinary(CFG, Samples, FnProf, IR, Opts.Map);
  Res.Stats.Map = Prof.Stats;

  LayoutPlan Plan = identityLayout(CFG);
  if (Opts.Fold)
    Res.Stats.FuncsFolded = foldIdenticalCode(Bin, Plan);

  bool Gated = Prof.Stats.MappedSampleRate < Opts.MinMappedRate;
  Res.Stats.TransformsGated = Gated && (Opts.Reorder || Opts.Split);
  if (!Gated) {
    for (size_t F = 0; F != Plan.Funcs.size(); ++F) {
      FuncLayout &FL = Plan.Funcs[F];
      if (FL.Blocks.empty() || !Prof.FuncHasCounts[F])
        continue;
      if (Opts.Reorder && reorderFunction(CFG, Prof, FL,
                                          Opts.MaxReorderBlocks,
                                          Opts.ReorderMinGain))
        ++Res.Stats.FuncsReordered;
      if (Opts.Split) {
        unsigned Moved = splitFunction(Prof, FL, Opts.SplitThreshold,
                                       Opts.SplitMinFuncCount);
        if (Moved) {
          ++Res.Stats.FuncsSplit;
          Res.Stats.BlocksSplit += Moved;
        }
      }
    }
  }

  Res.Bin = reassemble(CFG, Plan, &Res.Stats.Reassemble);
  Res.Stats.TextBytesAfter = Res.Bin->textSize();
  return Res;
}

} // namespace postlink
} // namespace csspgo

//===- postlink/ProfileMap.h - Profile mapping at binary addresses -*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Profile mapping side of the post-link optimizer (BOLT stage 2): project
/// execution profiles onto a reconstructed binary CFG, at binary
/// addresses.
///
/// Two sources feed the map, mirroring BOLT's perf2bolt aggregation:
///
///  - Raw LBR samples. Each taken-branch record resolves both endpoints
///    through the binary's address index; the fraction that resolves is
///    the mapped-sample rate, the transform gate's confidence signal.
///    Same-function taken edges become CFG edge counts, and — since the
///    simulator's LBR logs *every* control transfer (jumps, calls,
///    returns) — the address range between one record's destination and
///    the next record's source is a straight-line fallthrough run, which
///    AutoFDO-style range inference converts into block and fallthrough
///    edge counts.
///
///  - The loader's function profiles (probe-keyed). For functions the LBR
///    left dark, top-level probe records translate body counts onto the
///    blocks anchoring each probe. A profile whose CFG checksum disagrees
///    with the (optionally supplied) IR is stale — exactly the BOLT-side
///    staleness problem — and is routed through the src/matcher anchors;
///    only a recovery clearing the matcher's confidence threshold is
///    applied, otherwise the profile is dropped as the loader would.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_POSTLINK_PROFILEMAP_H
#define CSSPGO_POSTLINK_PROFILEMAP_H

#include "ir/Module.h"
#include "matcher/StaleMatcher.h"
#include "postlink/BinaryCFG.h"
#include "profile/FunctionProfile.h"
#include "sim/Sampler.h"

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace csspgo {
namespace postlink {

struct ProfileMapOptions {
  /// Route stale function profiles (checksum mismatch vs the IR) through
  /// the anchor matcher instead of dropping them outright.
  bool MatchStale = true;
  MatcherConfig Matcher;
};

struct ProfileMapStats {
  uint64_t LBREndpoints = 0; ///< Branch-record endpoints seen.
  uint64_t LBRResolved = 0;  ///< Endpoints resolving to an instruction.
  /// LBRResolved / LBREndpoints; with no LBR data, 1.0 if probe counts
  /// mapped (the profile speaks for the whole binary) else 0.0.
  double MappedSampleRate = 0;
  unsigned FuncsWithCounts = 0;  ///< Functions with any mapped counts.
  unsigned FuncsFromProbes = 0;  ///< ... of which probe-count fallback.
  unsigned StaleProfiles = 0;    ///< Checksum-mismatched function profiles.
  unsigned StaleRecovered = 0;   ///< ... recovered through the matcher.
  unsigned StaleDropped = 0;     ///< ... dropped (low confidence/no IR).
};

/// The execution profile of one binary, expressed on its reconstructed
/// CFG.
struct BinaryProfile {
  /// Execution count per BinaryCFG block (parallel to CFG.Blocks).
  std::vector<uint64_t> BlockCounts;
  /// Taken/fallthrough counts between same-function blocks.
  std::map<std::pair<unsigned, unsigned>, uint64_t> EdgeCounts;
  /// Per function: whether any of its blocks received a count.
  std::vector<bool> FuncHasCounts;
  ProfileMapStats Stats;

  uint64_t blockCount(unsigned B) const { return BlockCounts[B]; }
  uint64_t edgeCount(unsigned Src, unsigned Dst) const {
    auto It = EdgeCounts.find({Src, Dst});
    return It == EdgeCounts.end() ? 0 : It->second;
  }
};

/// Maps \p Samples (and, for LBR-dark functions, \p FnProf) onto \p CFG.
/// \p IR, when given, enables staleness detection and matcher routing for
/// the probe-count fallback; without it stale profiles are dropped.
BinaryProfile mapProfileToBinary(const BinaryCFG &CFG,
                                 const std::vector<PerfSample> &Samples,
                                 const FlatProfile *FnProf = nullptr,
                                 const Module *IR = nullptr,
                                 const ProfileMapOptions &Opts = {});

} // namespace postlink
} // namespace csspgo

#endif // CSSPGO_POSTLINK_PROFILEMAP_H

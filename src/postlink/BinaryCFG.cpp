//===- postlink/BinaryCFG.cpp - Binary CFG reconstruction -----------------===//

#include "postlink/BinaryCFG.h"

#include "codegen/Lowering.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <sstream>

namespace csspgo {
namespace postlink {

namespace {

Status malformed(const std::string &What) {
  return Status::error("postlink: malformed binary: " + What);
}

std::string at(size_t Idx) { return " (instruction " + std::to_string(Idx) + ")"; }

/// A section range [Begin, End) of function \p Func.
struct Section {
  size_t Begin = 0, End = 0;
  uint32_t Func = 0;
  bool Cold = false;
};

/// Whole-binary validation. Every check here doubles as the fuzz
/// harness's clean-rejection contract: a mutated binary must either pass
/// (and round-trip) or fail with a diagnostic — never index out of
/// bounds.
Status validate(const Binary &Bin, std::vector<Section> &Sections) {
  // The linker lays out all hot sections in function order, then all cold
  // sections in function order, contiguously covering Code.
  size_t Cursor = 0;
  for (size_t F = 0; F != Bin.Funcs.size(); ++F) {
    const MachineFunction &MF = Bin.Funcs[F];
    if (MF.HotBegin != Cursor || MF.HotEnd < MF.HotBegin)
      return malformed("hot section of '" + MF.Name + "' breaks layout order");
    Cursor = MF.HotEnd;
    if (MF.HotEnd > MF.HotBegin)
      Sections.push_back({MF.HotBegin, MF.HotEnd,
                          static_cast<uint32_t>(F), /*Cold=*/false});
  }
  for (size_t F = 0; F != Bin.Funcs.size(); ++F) {
    const MachineFunction &MF = Bin.Funcs[F];
    if (MF.ColdBegin != Cursor || MF.ColdEnd < MF.ColdBegin)
      return malformed("cold section of '" + MF.Name + "' breaks layout order");
    Cursor = MF.ColdEnd;
    if (MF.ColdEnd > MF.ColdBegin)
      Sections.push_back({MF.ColdBegin, MF.ColdEnd,
                          static_cast<uint32_t>(F), /*Cold=*/true});
    size_t WantEntry = MF.HotEnd > MF.HotBegin ? MF.HotBegin : MF.ColdBegin;
    if (MF.EntryIdx != WantEntry)
      return malformed("entry of '" + MF.Name + "' is not its section start");
  }
  if (Cursor != Bin.Code.size())
    return malformed("sections do not cover the code stream");

  // The indirect-call dispatch table must resolve before any CallIndirect
  // can be trusted.
  for (uint32_t Slot : Bin.FuncTable)
    if (Slot >= Bin.Funcs.size())
      return malformed("function table slot out of range");

  for (const Section &S : Sections) {
    const MachineFunction &MF = Bin.Funcs[S.Func];
    for (size_t I = S.Begin; I != S.End; ++I) {
      const MInst &MI = Bin.Code[I];
      uint8_t Raw = static_cast<uint8_t>(MI.Op);
      if (Raw > static_cast<uint8_t>(Opcode::InstrProfIncr) ||
          MI.Op == Opcode::PseudoProbe)
        return malformed("invalid opcode" + at(I));
      if (MI.Size != machineSizeOf(MI.Op))
        return malformed("encoded size disagrees with the opcode" + at(I));

      bool IsBranch = MI.Op == Opcode::Br || MI.Op == Opcode::CondBr;
      if (!IsBranch && MI.Target != -1)
        return malformed("non-branch carries a branch target" + at(I));
      if (IsBranch) {
        if (MI.Target < 0 ||
            static_cast<size_t>(MI.Target) >= Bin.Code.size() ||
            !MF.containsIdx(static_cast<size_t>(MI.Target)))
          return malformed("branch target escapes its function" + at(I));
      }
      if (MI.Op == Opcode::Call && MI.CalleeIdx >= Bin.Funcs.size())
        return malformed("call to an out-of-range function" + at(I));
      if (MI.Op == Opcode::CallIndirect && Bin.FuncTable.empty())
        return malformed("indirect call without a function table" + at(I));

      bool SectionFinal = I + 1 == S.End;
      if (SectionFinal && MI.Op != Opcode::Br && MI.Op != Opcode::Ret)
        return malformed("section falls through its end" + at(I));
    }
  }

  // Addresses must be exactly what the linker's assignment loop produces
  // (including its alignment behavior) — reassembly re-runs that loop, so
  // a binary with a divergent address table cannot round-trip.
  {
    uint64_t Addr = Binary::BaseAddr;
    size_t NextFuncStart = 0;
    std::vector<size_t> FuncStarts;
    for (const MachineFunction &MF : Bin.Funcs)
      FuncStarts.push_back(MF.HotBegin);
    for (size_t I = 0; I != Bin.Code.size(); ++I) {
      if (NextFuncStart < FuncStarts.size() &&
          I == FuncStarts[NextFuncStart]) {
        Addr = (Addr + 15) & ~uint64_t(15);
        ++NextFuncStart;
      }
      if (Bin.Code[I].Addr != Addr)
        return malformed("address table is corrupt" + at(I));
      Addr += Bin.Code[I].Size;
    }
  }

  for (const ProbeRecord &P : Bin.Probes) {
    if (P.FuncIdx >= Bin.Funcs.size() ||
        !Bin.Funcs[P.FuncIdx].containsIdx(P.InstIdx))
      return malformed("probe record detached from its function");
  }
  return Status();
}

} // namespace

Expected<BinaryCFG> reconstructBinaryCFG(const Binary &Bin) {
  std::vector<Section> Sections;
  if (Status St = validate(Bin, Sections); !St)
    return St;

  BinaryCFG CFG;
  CFG.Bin = &Bin;
  CFG.Funcs.resize(Bin.Funcs.size());
  CFG.BlockOfInst.assign(Bin.Code.size(), UINT32_MAX);

  // Leader discovery: section starts, branch targets, and the instruction
  // after any terminator. Validation guarantees targets stay inside the
  // owning function, so every leader lands on a real section.
  std::set<size_t> Leaders;
  for (const Section &S : Sections) {
    Leaders.insert(S.Begin);
    for (size_t I = S.Begin; I != S.End; ++I) {
      const MInst &MI = Bin.Code[I];
      if (MI.Op == Opcode::Br || MI.Op == Opcode::CondBr)
        Leaders.insert(static_cast<size_t>(MI.Target));
      if (isTerminator(MI.Op) && I + 1 < S.End)
        Leaders.insert(I + 1);
    }
  }

  // Carve each section into blocks at the leaders. Sections are visited in
  // layout order, so CFG.Blocks ends up sorted by Begin.
  for (const Section &S : Sections) {
    auto It = Leaders.lower_bound(S.Begin);
    while (It != Leaders.end() && *It < S.End) {
      size_t Begin = *It;
      ++It;
      size_t End = (It != Leaders.end() && *It < S.End) ? *It : S.End;
      BBlock B;
      B.Begin = Begin;
      B.End = End;
      B.Func = S.Func;
      B.Cold = S.Cold;
      for (size_t I = Begin; I != End; ++I) {
        B.SizeBytes += Bin.Code[I].Size;
        CFG.BlockOfInst[I] = static_cast<uint32_t>(CFG.Blocks.size());
      }
      CFG.Funcs[S.Func].Blocks.push_back(
          static_cast<unsigned>(CFG.Blocks.size()));
      if (!S.Cold)
        ++CFG.Funcs[S.Func].NumHot;
      CFG.Blocks.push_back(B);
    }
  }

  // Successor edges from each block's last instruction.
  for (BBlock &B : CFG.Blocks) {
    const MInst &Last = Bin.Code[B.End - 1];
    if (Last.Op == Opcode::Br) {
      B.Taken = CFG.BlockOfInst[static_cast<size_t>(Last.Target)];
    } else if (Last.Op == Opcode::CondBr) {
      B.Taken = CFG.BlockOfInst[static_cast<size_t>(Last.Target)];
      B.Fallthru = CFG.BlockOfInst[B.End]; // In-section by validation.
    } else if (Last.Op != Opcode::Ret) {
      // Leader split: the next instruction is a branch target.
      B.Fallthru = CFG.BlockOfInst[B.End];
    }
  }
  return CFG;
}

LayoutPlan identityLayout(const BinaryCFG &CFG) {
  LayoutPlan Plan;
  Plan.Funcs.resize(CFG.Funcs.size());
  for (size_t F = 0; F != CFG.Funcs.size(); ++F) {
    Plan.Funcs[F].Blocks = CFG.Funcs[F].Blocks;
    Plan.Funcs[F].NumHot = CFG.Funcs[F].NumHot;
  }
  return Plan;
}

std::unique_ptr<Binary> reassemble(const BinaryCFG &CFG,
                                   const LayoutPlan &Plan,
                                   ReassembleStats *Stats) {
  const Binary &Old = *CFG.Bin;
  assert(Plan.Funcs.size() == Old.Funcs.size() && "plan shape mismatch");
  ReassembleStats Local;
  ReassembleStats &RS = Stats ? *Stats : Local;

  auto RemapCallee = [&Plan](uint32_t Idx) {
    return Plan.CalleeRemap.empty() ? Idx : Plan.CalleeRemap[Idx];
  };

  // Emit each function's instructions in plan order, repairing displaced
  // fallthroughs. Targets are recorded as block ids and resolved to local
  // indices once the function's layout is final.
  struct LocalFunc {
    std::vector<MInst> Insts;
    size_t ColdStartLocal = 0;
    std::vector<std::pair<size_t, unsigned>> Fixups; ///< inst -> block id.
  };
  std::vector<LocalFunc> Locals(Old.Funcs.size());
  std::vector<size_t> LocalHead(CFG.Blocks.size(), SIZE_MAX);
  std::vector<size_t> NewLocalOfOld(Old.Code.size(), SIZE_MAX);

  for (size_t F = 0; F != Old.Funcs.size(); ++F) {
    const FuncLayout &FL = Plan.Funcs[F];
    LocalFunc &LF = Locals[F];
    auto Synthesize = [&](const MInst &Like, unsigned DestBlock) {
      MInst Br;
      Br.Op = Opcode::Br;
      Br.Size = machineSizeOf(Opcode::Br);
      Br.DL = Like.DL;
      Br.OriginGuid = Like.OriginGuid;
      Br.InlineId = Like.InlineId;
      LF.Insts.push_back(std::move(Br));
      LF.Fixups.emplace_back(LF.Insts.size() - 1, DestBlock);
      ++RS.BranchesSynthesized;
    };

    for (size_t BI = 0; BI != FL.Blocks.size(); ++BI) {
      if (BI == FL.NumHot)
        LF.ColdStartLocal = LF.Insts.size();
      unsigned BId = FL.Blocks[BI];
      const BBlock &B = CFG.Blocks[BId];
      LocalHead[BId] = LF.Insts.size();
      for (size_t I = B.Begin; I != B.End; ++I) {
        MInst MI = Old.Code[I];
        if (MI.Op == Opcode::Call && MI.CalleeIdx != ~0u)
          MI.CalleeIdx = RemapCallee(MI.CalleeIdx);
        NewLocalOfOld[I] = LF.Insts.size();
        LF.Insts.push_back(std::move(MI));
      }

      // The block's control-flow exit against its new layout neighbor.
      bool LastInSection =
          BI < FL.NumHot ? BI + 1 == FL.NumHot : BI + 1 == FL.Blocks.size();
      int64_t NextB = LastInSection
                          ? -1
                          : static_cast<int64_t>(FL.Blocks[BI + 1]);
      size_t LastLocal = LF.Insts.size() - 1;
      const MInst &Last = LF.Insts[LastLocal];
      if (Last.Op == Opcode::Br) {
        LF.Fixups.emplace_back(LastLocal, static_cast<unsigned>(B.Taken));
      } else if (Last.Op == Opcode::CondBr) {
        if (B.Fallthru == NextB) {
          LF.Fixups.emplace_back(LastLocal, static_cast<unsigned>(B.Taken));
        } else if (B.Taken == NextB) {
          // The taken target became the layout successor: invert the
          // condition so the old fallthrough becomes the explicit target.
          LF.Insts[LastLocal].InvertCond = !LF.Insts[LastLocal].InvertCond;
          LF.Fixups.emplace_back(LastLocal,
                                 static_cast<unsigned>(B.Fallthru));
          ++RS.BranchesFlipped;
        } else {
          LF.Fixups.emplace_back(LastLocal, static_cast<unsigned>(B.Taken));
          Synthesize(LF.Insts[LastLocal],
                     static_cast<unsigned>(B.Fallthru));
        }
      } else if (B.Fallthru >= 0 && B.Fallthru != NextB) {
        Synthesize(LF.Insts[LastLocal], static_cast<unsigned>(B.Fallthru));
      }
    }
    if (FL.NumHot >= FL.Blocks.size())
      LF.ColdStartLocal = LF.Insts.size();
    for (const auto &[InstIdx, BId] : LF.Fixups)
      LF.Insts[InstIdx].Target = static_cast<int64_t>(LocalHead[BId]);
  }

  // Relink: the linker's passes 1-3 verbatim (minus the hotness reorder in
  // pass 0 — function order is an input here — and minus counter
  // re-basing, which already happened when the input binary was linked).
  auto Bin = std::make_unique<Binary>();

  struct Placement {
    size_t HotBase = 0;
    size_t ColdBase = 0;
    size_t ColdStartLocal = 0;
  };
  std::vector<Placement> Places(Locals.size());
  size_t GlobalIdx = 0;
  for (size_t F = 0; F != Locals.size(); ++F) {
    Places[F].HotBase = GlobalIdx;
    Places[F].ColdStartLocal = Locals[F].ColdStartLocal;
    GlobalIdx += Locals[F].ColdStartLocal;
  }
  for (size_t F = 0; F != Locals.size(); ++F) {
    Places[F].ColdBase = GlobalIdx;
    GlobalIdx += Locals[F].Insts.size() - Locals[F].ColdStartLocal;
  }
  auto MapLocal = [&Places](size_t F, size_t Local) {
    const Placement &P = Places[F];
    return Local < P.ColdStartLocal ? P.HotBase + Local
                                    : P.ColdBase + (Local - P.ColdStartLocal);
  };

  Bin->Code.resize(GlobalIdx);
  for (size_t F = 0; F != Locals.size(); ++F) {
    LocalFunc &LF = Locals[F];
    MachineFunction MF = Old.Funcs[F]; // Name, params, counters, inline table.
    MF.HotBegin = Places[F].HotBase;
    MF.HotEnd = Places[F].HotBase + LF.ColdStartLocal;
    MF.ColdBegin = Places[F].ColdBase;
    MF.ColdEnd =
        Places[F].ColdBase + (LF.Insts.size() - LF.ColdStartLocal);
    MF.EntryIdx = MF.HotEnd > MF.HotBegin ? MF.HotBegin : MF.ColdBegin;
    Bin->Funcs.push_back(std::move(MF));

    for (size_t L = 0; L != LF.Insts.size(); ++L) {
      MInst MI = std::move(LF.Insts[L]);
      if (MI.Target >= 0)
        MI.Target =
            static_cast<int64_t>(MapLocal(F, static_cast<size_t>(MI.Target)));
      Bin->Code[MapLocal(F, L)] = std::move(MI);
    }
  }

  // Probe records follow their instructions; probes of dropped (folded)
  // bodies vanish with them. Emission order matches the linker's: grouped
  // by function, original order within.
  for (size_t F = 0; F != Locals.size(); ++F)
    for (const ProbeRecord &Old_ : Old.Probes) {
      if (Old_.FuncIdx != F || NewLocalOfOld[Old_.InstIdx] == SIZE_MAX)
        continue;
      ProbeRecord P = Old_;
      P.InstIdx = MapLocal(F, NewLocalOfOld[Old_.InstIdx]);
      Bin->Probes.push_back(P);
    }

  Bin->DebugNames = Old.DebugNames;
  Bin->NumCounters = Old.NumCounters;
  Bin->CounterOwners = Old.CounterOwners;
  Bin->FuncTable.reserve(Old.FuncTable.size());
  for (uint32_t Slot : Old.FuncTable)
    Bin->FuncTable.push_back(RemapCallee(Slot));

  // Pass 3: assign addresses. 16-byte alignment at hot function starts.
  uint64_t Addr = Binary::BaseAddr;
  size_t NextFuncStart = 0;
  std::vector<size_t> FuncStarts;
  for (const MachineFunction &MF : Bin->Funcs)
    FuncStarts.push_back(MF.HotBegin);
  for (size_t I = 0; I != Bin->Code.size(); ++I) {
    if (NextFuncStart < FuncStarts.size() &&
        I == FuncStarts[NextFuncStart]) {
      Addr = (Addr + 15) & ~uint64_t(15);
      ++NextFuncStart;
    }
    Bin->Code[I].Addr = Addr;
    Addr += Bin->Code[I].Size;
  }
  Bin->buildAddrIndex();
  return Bin;
}

//===----------------------------------------------------------------------===//
// Identity comparison.
//===----------------------------------------------------------------------===//

namespace {

bool instsEqual(const MInst &A, const MInst &B) {
  return A.Op == B.Op && A.Dst == B.Dst && A.A == B.A && A.B == B.B &&
         A.C == B.C && A.Args == B.Args && A.CalleeIdx == B.CalleeIdx &&
         A.IsTailCall == B.IsTailCall && A.InvertCond == B.InvertCond &&
         A.Target == B.Target && A.CounterIdx == B.CounterIdx &&
         A.CallSiteId == B.CallSiteId && A.Size == B.Size &&
         A.Addr == B.Addr && A.DL == B.DL && A.OriginGuid == B.OriginGuid &&
         A.InlineId == B.InlineId;
}

bool funcsEqual(const MachineFunction &A, const MachineFunction &B) {
  return A.Name == B.Name && A.Guid == B.Guid &&
         A.NumParams == B.NumParams && A.NumRegs == B.NumRegs &&
         A.HotBegin == B.HotBegin && A.HotEnd == B.HotEnd &&
         A.ColdBegin == B.ColdBegin && A.ColdEnd == B.ColdEnd &&
         A.EntryIdx == B.EntryIdx && A.InlineTable == B.InlineTable &&
         A.CounterBase == B.CounterBase && A.NumCounters == B.NumCounters;
}

bool probesEqual(const ProbeRecord &A, const ProbeRecord &B) {
  return A.Guid == B.Guid && A.ProbeId == B.ProbeId &&
         A.InlineId == B.InlineId && A.FuncIdx == B.FuncIdx &&
         A.InstIdx == B.InstIdx && A.IsCallProbe == B.IsCallProbe;
}

bool fail(std::string *Why, const std::string &What) {
  if (Why)
    *Why = What;
  return false;
}

} // namespace

bool binariesIdentical(const Binary &A, const Binary &B, std::string *Why) {
  if (A.Code.size() != B.Code.size())
    return fail(Why, "instruction counts differ");
  for (size_t I = 0; I != A.Code.size(); ++I)
    if (!instsEqual(A.Code[I], B.Code[I]))
      return fail(Why, "instruction " + std::to_string(I) + " differs");
  if (A.Funcs.size() != B.Funcs.size())
    return fail(Why, "function counts differ");
  for (size_t F = 0; F != A.Funcs.size(); ++F)
    if (!funcsEqual(A.Funcs[F], B.Funcs[F]))
      return fail(Why, "function '" + A.Funcs[F].Name + "' differs");
  if (A.Probes.size() != B.Probes.size())
    return fail(Why, "probe counts differ");
  for (size_t P = 0; P != A.Probes.size(); ++P)
    if (!probesEqual(A.Probes[P], B.Probes[P]))
      return fail(Why, "probe record " + std::to_string(P) + " differs");
  if (A.DebugNames != B.DebugNames)
    return fail(Why, "debug name tables differ");
  if (A.FuncTable != B.FuncTable)
    return fail(Why, "function tables differ");
  if (A.NumCounters != B.NumCounters)
    return fail(Why, "counter counts differ");
  if (A.CounterOwners != B.CounterOwners)
    return fail(Why, "counter ownership differs");
  return true;
}

} // namespace postlink
} // namespace csspgo

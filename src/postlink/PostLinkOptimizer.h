//===- postlink/PostLinkOptimizer.h - BOLT-style binary rewriter -*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The post-link optimizer (ROADMAP item 2): rewrite a linked Binary using
/// an execution profile, in the mold of "BOLT: A Practical Binary
/// Optimizer for Data Centers and Beyond". The pipeline is
///
///   reconstruct CFG  ->  map profile  ->  fold / reorder / split
///                    ->  reassemble through the linker's layout
///
/// with two hard gates: the disassemble->reassemble identity round-trip
/// must hold on the input (lossless recovery), and the layout transforms
/// only run when the mapped-sample rate clears a confidence threshold —
/// moving blocks on a profile that does not describe this binary is how a
/// post-link optimizer makes things slower.
///
/// Transforms, in order:
///  - identical-code folding: functions with equal canonical instruction
///    streams (addresses and debug metadata excluded, branch targets and
///    self-calls canonicalized) keep one body; calls and the indirect-call
///    table are redirected, duplicate bodies are dropped. Profile-
///    independent, so it runs first and unconditionally.
///  - basic-block reordering: the Ext-TSP solver shared with the IR-level
///    pass (opt/ExtTSPCore.h) re-lays each hot section out along its
///    mapped edge counts.
///  - hot/cold splitting: never-executed blocks of profiled functions move
///    behind the function's cold region, shrinking the hot text the
///    i-cache model has to cover.
///
/// The output binary runs unmodified on sim/Executor and is scored by
/// CostModel — the three-way PGO / BOLT / PGO+BOLT comparison lives in
/// bench/ablation_postlink.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_POSTLINK_POSTLINKOPTIMIZER_H
#define CSSPGO_POSTLINK_POSTLINKOPTIMIZER_H

#include "postlink/BinaryCFG.h"
#include "postlink/ProfileMap.h"

#include <memory>

namespace csspgo {
namespace postlink {

struct PostLinkOptions {
  bool Fold = true;    ///< Identical-code folding.
  bool Reorder = true; ///< Ext-TSP basic-block reordering.
  bool Split = true;   ///< Hot/cold block splitting.
  /// Minimum mapped-sample rate below which the layout transforms
  /// (reorder, split) are suppressed; folding is profile-independent and
  /// unaffected.
  double MinMappedRate = 0.5;
  /// Minimum Ext-TSP score gain (relative) a proposed reordering must
  /// show over the current layout to be applied. On an already-PGO'd
  /// binary the IR-level pass has optimized the same objective with the
  /// same profile, so near-tie proposals are churn: they add synthesized
  /// branches and move code for no modeled benefit.
  double ReorderMinGain = 0.02;
  /// Blocks with mapped count <= this threshold are split out of the hot
  /// section (0 = only never-executed blocks).
  uint64_t SplitThreshold = 0;
  /// Minimum total mapped count across a function's hot blocks before
  /// splitting it: a zero-count block in a barely-sampled function is no
  /// evidence of coldness, and production inputs drift — moving a block
  /// that does run costs a taken branch plus cold-region i-cache misses.
  uint64_t SplitMinFuncCount = 16;
  /// Ext-TSP is quadratic in chains; functions with more hot blocks keep
  /// their layout (mirrors the IR pass's fallback bound).
  size_t MaxReorderBlocks = 64;
  ProfileMapOptions Map; ///< Profile mapping / stale-matcher routing.
};

struct PostLinkStats {
  ProfileMapStats Map;
  ReassembleStats Reassemble;
  unsigned FuncsFolded = 0;    ///< Duplicate bodies dropped.
  unsigned FuncsReordered = 0; ///< Functions with a changed hot layout.
  unsigned FuncsSplit = 0;     ///< Functions that shed cold blocks.
  unsigned BlocksSplit = 0;    ///< Blocks moved to the cold region.
  bool TransformsGated = false; ///< Layout transforms suppressed (low rate).
  uint64_t TextBytesBefore = 0;
  uint64_t TextBytesAfter = 0;
};

struct PostLinkResult {
  std::unique_ptr<Binary> Bin;
  PostLinkStats Stats;
};

/// Rewrites \p Bin under \p Opts. \p Samples are the LBR samples collected
/// from running exactly this binary; \p FnProf (optional, probe-keyed)
/// fills in LBR-dark functions and \p IR (optional) enables staleness
/// detection plus matcher routing for it. Fails with a clean Status when
/// the binary cannot be reconstructed or the identity round-trip does not
/// hold — in which case the input binary should be shipped unmodified.
Expected<PostLinkResult> runPostLink(const Binary &Bin,
                                     const std::vector<PerfSample> &Samples,
                                     const FlatProfile *FnProf = nullptr,
                                     const Module *IR = nullptr,
                                     const PostLinkOptions &Opts = {});

} // namespace postlink
} // namespace csspgo

#endif // CSSPGO_POSTLINK_POSTLINKOPTIMIZER_H

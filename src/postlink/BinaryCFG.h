//===- postlink/BinaryCFG.h - Binary CFG reconstruction ---------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Disassembly side of the post-link optimizer (BOLT stage 1): rebuild a
/// basic-block CFG from a linked Binary's byte-accurate machine encoding,
/// and reassemble a (possibly reordered) block layout back into a Binary
/// through the linker's exact layout algorithm.
///
/// Reconstruction performs whole-binary validation first — section ranges,
/// branch-target containment, per-opcode encoding sizes, the recomputable
/// address table, probe attachment — and returns a clean error Status on
/// any violation instead of crashing; the fuzz harness feeds it mutated
/// binaries and requires exactly that behavior. On a well-formed binary,
/// the round trip reassemble(identityLayout(CFG)) reproduces the input
/// field for field (binariesIdentical), which is the subsystem's
/// correctness gate: every transform is expressed as a layout plan, so an
/// identity plan proving lossless disassembly proves the rewriter never
/// invents or loses encoding state.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_POSTLINK_BINARYCFG_H
#define CSSPGO_POSTLINK_BINARYCFG_H

#include "codegen/MachineModule.h"
#include "support/Status.h"

#include <memory>
#include <string>
#include <vector>

namespace csspgo {
namespace postlink {

/// One reconstructed basic block: the contiguous instruction run
/// [Begin, End) within one section of one function. Control leaves the
/// block either through the explicit branch of its last instruction
/// (Taken) or by falling through to the next block in layout (Fallthru).
struct BBlock {
  size_t Begin = 0, End = 0; ///< Global instruction indices, End exclusive.
  uint32_t Func = 0;         ///< Owning function (Binary::Funcs index).
  bool Cold = false;         ///< Lives in the function's cold section.
  uint64_t SizeBytes = 0;    ///< Encoded byte size of the block.

  /// Successor blocks as indices into BinaryCFG::Blocks; -1 when absent.
  /// Taken is the Br target or the CondBr taken target; Fallthru is the
  /// layout successor (CondBr not-taken, or a plain leader split — the
  /// block ends because the next instruction is a branch target).
  int64_t Taken = -1;
  int64_t Fallthru = -1;
};

/// Blocks of one function, layout order; the hot-section blocks form the
/// prefix [0, NumHot) of Blocks.
struct FuncBlocks {
  std::vector<unsigned> Blocks; ///< Indices into BinaryCFG::Blocks.
  size_t NumHot = 0;
};

/// The reconstructed whole-binary CFG. Valid only as long as the Binary it
/// was built from.
struct BinaryCFG {
  const Binary *Bin = nullptr;
  std::vector<BBlock> Blocks;      ///< Global layout order.
  std::vector<FuncBlocks> Funcs;   ///< Parallel to Bin->Funcs.
  /// Block index owning each instruction (UINT32_MAX for none — cannot
  /// happen on a validated binary).
  std::vector<uint32_t> BlockOfInst;

  const BBlock &blockOf(size_t InstIdx) const {
    return Blocks[BlockOfInst[InstIdx]];
  }
};

/// Validates \p Bin (clean Status error on any malformed encoding — sizes,
/// targets, section ranges, addresses, probes) and reconstructs its CFG:
/// leaders are section starts, branch targets and post-terminator
/// instructions; fallthrough edges follow the layout.
Expected<BinaryCFG> reconstructBinaryCFG(const Binary &Bin);

/// A re-layout plan for one function: its blocks in the new order (entry
/// block first) with the first NumHot blocks in the hot section. An empty
/// Blocks list drops the function's body (identical-code folding).
struct FuncLayout {
  std::vector<unsigned> Blocks; ///< BinaryCFG block indices.
  size_t NumHot = 0;
};

/// A whole-binary re-layout plan.
struct LayoutPlan {
  std::vector<FuncLayout> Funcs; ///< Parallel to BinaryCFG::Funcs.
  /// Optional call redirection (identical-code folding): new Funcs index
  /// for each original CalleeIdx / FuncTable slot. Empty = identity.
  std::vector<uint32_t> CalleeRemap;
};

/// The plan that reproduces \p CFG's binary unchanged.
LayoutPlan identityLayout(const BinaryCFG &CFG);

/// What reassembly had to repair while realizing a plan.
struct ReassembleStats {
  unsigned BranchesFlipped = 0;     ///< CondBr conditions inverted.
  unsigned BranchesSynthesized = 0; ///< Br instructions materialized.
};

/// Reassembles \p CFG's binary under \p Plan: blocks are emitted in plan
/// order, displaced fallthroughs are repaired (CondBr inversion when the
/// taken target became the layout successor, otherwise a synthesized Br),
/// branch targets and probe records are remapped, and the result is
/// re-laid-out with the linker's exact address-assignment algorithm.
/// Counters, the function table (after CalleeRemap), debug names and all
/// per-function metadata carry over.
std::unique_ptr<Binary> reassemble(const BinaryCFG &CFG,
                                   const LayoutPlan &Plan,
                                   ReassembleStats *Stats = nullptr);

/// Field-for-field equality of two binaries — code (every MInst field,
/// including addresses and symbolization metadata), functions, probes,
/// tables and counter ownership. On mismatch, \p Why (when given) receives
/// a description of the first difference.
bool binariesIdentical(const Binary &A, const Binary &B,
                       std::string *Why = nullptr);

} // namespace postlink
} // namespace csspgo

#endif // CSSPGO_POSTLINK_BINARYCFG_H

//===- loader/DebugInfoCorrelator.cpp - Line-based correlation --------------===//

#include "loader/Correlators.h"

#include <algorithm>

namespace csspgo {

void annotateBlocksByLines(const std::vector<BasicBlock *> &Blocks,
                           const FunctionProfile &P, uint64_t OriginGuid) {
  for (BasicBlock *BB : Blocks) {
    uint64_t Weight = 0;
    for (const Instruction &I : BB->Insts) {
      if (I.OriginGuid != OriginGuid)
        continue;
      Weight = std::max(
          Weight, P.bodyAt({I.DL.Line, I.DL.Discriminator}));
    }
    BB->setCount(Weight);
    BB->SuccWeights.clear();
  }
}

ProfileKey callSiteKey(const Instruction &Call, ProfileKind Kind) {
  if (Kind == ProfileKind::ProbeBased)
    return {Call.ProbeId, 0};
  return {Call.DL.Line, Call.DL.Discriminator};
}

uint64_t callSiteCount(const Instruction &Call, const BasicBlock &BB,
                       const FunctionProfile &P, ProfileKind Kind) {
  ProfileKey Key = callSiteKey(Call, Kind);
  uint64_t FromTargets = P.callAt(Key);
  if (FromTargets)
    return FromTargets;
  uint64_t FromBody = P.bodyAt(Key);
  if (FromBody)
    return FromBody;
  return BB.HasCount ? BB.Count : 0;
}

} // namespace csspgo

//===- loader/ProfileLoader.h - Sample profile loader ------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sample-profile loader: correlates a profile onto pristine IR,
/// annotates block counts and entry counts, performs the *top-down*
/// profile-guided inlining the paper argues for (replaying profiled-binary
/// inlining for flat profiles; descending the context trie and honoring
/// pre-inliner decisions for context-sensitive profiles), and detects
/// stale probe profiles via CFG checksums.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_LOADER_PROFILELOADER_H
#define CSSPGO_LOADER_PROFILELOADER_H

#include "ir/Module.h"
#include "matcher/StaleMatcher.h"
#include "profile/ContextTrie.h"
#include "profile/FunctionProfile.h"
#include "support/Status.h"
#include "verify/ProfileVerifier.h"

#include <string>
#include <vector>

namespace csspgo {

struct LoaderOptions {
  /// Call-site count at/above which the loader inlines. 0 = derive a
  /// ProfileSummary-style threshold from the profile.
  uint64_t HotCallsiteThreshold = 0;
  /// Fraction of total call/context mass considered hot when deriving the
  /// threshold (LLVM's hot-count cutoff is similar in spirit).
  double HotCutoff = 0.9;
  /// Callee size cap (code instructions) for loader inlining.
  unsigned MaxInlineSize = 140;
  /// Replay inline decisions recorded in the profile (nested inlinee
  /// profiles / ShouldBeInlined contexts).
  bool ReplayInlining = true;
  /// Flat profiles only: additionally inline *hot* call sites that have no
  /// nested inlinee profile, annotating the body by scaling the callee's
  /// aggregate profile. This is the Fig. 3a context-insensitive scaling —
  /// post-inline counts become unreliable, so production AutoFDO leans on
  /// replay instead; off by default, on for the ablation.
  bool InlineHotFlatCallsites = false;
  /// For CS loading: also inline hot contexts the pre-inliner did not
  /// mark (used when the pre-inliner is disabled in ablations).
  bool InlineHotContexts = true;
  /// Sample-accurate mode (production default): a function with no
  /// samples in the profile is *known cold* — all its blocks get count 0
  /// so splitting and the inliner treat it accordingly.
  bool ProfileSampleAccurate = true;
  /// Promote dominant indirect-call targets to guarded direct calls
  /// (indirect-call promotion). Requires call-target records: exact value
  /// profiles for Instr PGO, LBR-observed targets for sampling PGO.
  bool PromoteIndirectCalls = true;
  /// Minimum share of a site's calls the dominant target needs.
  double ICPDominance = 0.5;
  /// Recover stale profiles by anchor matching (src/matcher) instead of
  /// dropping them. Probe profiles are matched on a CFG-checksum
  /// mismatch; line-based profiles on drifted call anchors (they are
  /// never dropped — a failed line match falls back to the profile
  /// as-is, AutoFDO's historical behavior).
  bool RecoverStaleProfiles = true;
  /// Confidence below which a matcher-recovered probe profile is still
  /// dropped (forwarded to MatcherConfig::MinConfidence).
  double StaleMatchMinConfidence = 0.5;
  /// Self-consistency verification of the input profile before loading
  /// (count conservation, head/call-edge conservation; see
  /// verify/ProfileVerifier.h). The loader only *records* violations in
  /// LoaderStats — it never rejects the profile, since a stale-but-usable
  /// profile is routinely fed here on purpose. Probe-table agreement is
  /// not checked (the input may legitimately predate the current build).
  VerifyLevel Verify = VerifyLevel::Summary;
  /// Include the cross-function head/call-edge conservation check in that
  /// verification. Lazy store loads turn this off: a module-scoped subset
  /// legitimately cuts edges into functions that were not materialized
  /// (same reasoning as the fuzz harness's truncated-profile stage).
  bool VerifyCrossEdges = true;
};

/// One stale-profile matching attempt (per function; CS profiles record
/// one entry per distinct stale function, not per context).
struct StaleMatchRecord {
  std::string Name;
  MatchStats Stats;
};

struct LoaderStats {
  unsigned FunctionsAnnotated = 0;
  /// Checksum-mismatched profiles dropped (matcher off, match rejected,
  /// or below confidence). Counted per mismatch site, as before.
  unsigned StaleDropped = 0;
  /// Distinct stale functions the matcher recovered and the loader
  /// applied. Deduplicated per function: a function whose recovered
  /// profile is applied both top-level and at inline sites (or that was
  /// both matched and store-materialized) counts once, matching the CS
  /// pre-pass accounting.
  unsigned StaleMatched = 0;
  /// Call-site anchors the matcher aligned across applied recoveries.
  uint64_t StaleAnchorsMatched = 0;
  /// Body samples carried over to fresh keys across applied recoveries.
  uint64_t StaleCountsRecovered = 0;
  /// Per-function matching attempts (accepted and rejected).
  std::vector<StaleMatchRecord> StaleMatches;
  unsigned InlinedCallsites = 0;
  unsigned PromotedIndirectCalls = 0;
  uint64_t HotThresholdUsed = 0;
  /// Store-backed loads: functions materialized from the binary store, and
  /// store functions skipped because the module has no function of that
  /// name (the lazy-loading payoff).
  unsigned StoreFunctionsMaterialized = 0;
  unsigned StoreFunctionsSkipped = 0;
  /// Invariant violations the pre-load verification found in the input
  /// profile (0 when LoaderOptions::Verify is Off).
  uint64_t VerifyViolations = 0;
  /// First recorded violation, for diagnostics ("where: message").
  std::string VerifyFirst;
};

/// Loads a flat profile (AutoFDO line-based, probe-only, or Instr
/// counter-based — selected by \p Profile.Kind plus \p IsInstr).
LoaderStats loadFlatProfile(Module &M, const FlatProfile &Profile,
                            bool IsInstr, const LoaderOptions &Opts = {});

/// Loads a context-sensitive probe-based profile.
LoaderStats loadContextProfile(Module &M, const ContextProfile &Profile,
                               const LoaderOptions &Opts = {});

class ProfileStore;

/// Loads from a binary profile store (store/ProfileStore.h), flat or
/// context-sensitive and exact- or sampled-count as the store's flags
/// say. Lazy mode — the build-job default — materializes only the store
/// functions \p M actually contains, seeking each through the store's
/// per-function index; eager mode materializes everything first (tools /
/// analyses that want the whole database). Either way the hot threshold
/// comes from the store's persisted summary distribution, so lazy, eager,
/// and text-based loads of the same profile annotate bit-identically.
/// Compact-name stores are resolved against \p M before loading. A decode
/// failure surfaces as an error Status (the long-lived service skips the
/// epoch and reports, instead of dying).
Expected<LoaderStats> loadProfileFromStore(Module &M, ProfileStore &Store,
                                           const LoaderOptions &Opts = {},
                                           bool Lazy = true);

} // namespace csspgo

#endif // CSSPGO_LOADER_PROFILELOADER_H

//===- loader/ProbeCorrelator.cpp - Anchor-based correlation ----------------===//

#include "loader/Correlators.h"

namespace csspgo {

void annotateBlocksByAnchors(const std::vector<BasicBlock *> &Blocks,
                             const FunctionProfile &P, uint64_t OriginGuid) {
  for (BasicBlock *BB : Blocks) {
    uint64_t Weight = 0;
    bool Found = false;
    for (const Instruction &I : BB->Insts) {
      if (!I.isIntrinsic() || I.OriginGuid != OriginGuid)
        continue;
      Weight = P.bodyAt({I.ProbeId, 0});
      Found = true;
      break; // The block anchor leads the block.
    }
    (void)Found;
    BB->setCount(Weight);
    BB->SuccWeights.clear();
  }
}

} // namespace csspgo

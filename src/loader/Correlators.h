//===- loader/Correlators.h - Profile correlation ---------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two correlation mechanisms of Fig. 2, plus the instrumentation one:
/// - debug-info correlation (AutoFDO): a block's weight is the MAX of the
///   per-line counts of its instructions — inherits every line-table
///   artifact the optimizer produced;
/// - probe correlation (CSSPGO): a block's weight is the count recorded
///   for its block probe id — one-to-one, checksum-guarded;
/// - counter correlation (Instr PGO): identical to probe correlation but
///   keyed by counter ids.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_LOADER_CORRELATORS_H
#define CSSPGO_LOADER_CORRELATORS_H

#include "ir/Module.h"
#include "profile/FunctionProfile.h"

#include <vector>

namespace csspgo {

/// Annotates \p Blocks from the line-keyed \p P. Only instructions whose
/// OriginGuid equals \p OriginGuid participate (inlined code correlates
/// against its own inlinee profile). Every block gets HasCount=true;
/// blocks with no matching samples get 0.
void annotateBlocksByLines(const std::vector<BasicBlock *> &Blocks,
                           const FunctionProfile &P, uint64_t OriginGuid);

/// Annotates \p Blocks from the anchor-keyed \p P (probe or counter ids).
void annotateBlocksByAnchors(const std::vector<BasicBlock *> &Blocks,
                             const FunctionProfile &P, uint64_t OriginGuid);

/// Returns the call-site profile key of call instruction \p Call under the
/// given correlation kind (line offset or call probe id).
ProfileKey callSiteKey(const Instruction &Call, ProfileKind Kind);

/// Total call-target samples recorded for \p Call in \p P; falls back to
/// the containing block's body count at the call's key.
uint64_t callSiteCount(const Instruction &Call, const BasicBlock &BB,
                       const FunctionProfile &P, ProfileKind Kind);

} // namespace csspgo

#endif // CSSPGO_LOADER_CORRELATORS_H

//===- loader/ProfileLoader.cpp - Sample profile loader ---------------------===//

#include "loader/ProfileLoader.h"

#include "loader/Correlators.h"
#include "matcher/StaleMatcher.h"
#include "profile/ProfileSummary.h"
#include "opt/InlineCost.h"
#include "opt/Inliner.h"
#include "store/ProfileStore.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <set>

namespace csspgo {

namespace {

/// Call-graph top-down order (callers before callees), entry first.
std::vector<Function *> topDownOrder(Module &M) {
  // Reverse post order over the call graph from the entry, then any
  // remaining functions.
  std::vector<Function *> PostOrder;
  std::set<Function *> Visited;
  std::function<void(Function *)> Visit = [&](Function *F) {
    if (!Visited.insert(F).second)
      return;
    for (auto &BB : F->Blocks)
      for (const Instruction &I : BB->Insts)
        if (I.isCall())
          if (Function *Callee = M.getFunction(I.Callee))
            Visit(Callee);
    PostOrder.push_back(F);
  };
  if (Function *Entry = M.getFunction(M.EntryFunction))
    Visit(Entry);
  for (auto &F : M.Functions)
    Visit(F.get());
  std::vector<Function *> Order(PostOrder.rbegin(), PostOrder.rend());
  return Order;
}

std::vector<BasicBlock *> allBlocks(Function &F) {
  std::vector<BasicBlock *> Out;
  for (auto &BB : F.Blocks)
    Out.push_back(BB.get());
  return Out;
}

/// Sample-accurate cold fill: every un-annotated function becomes known
/// cold (all blocks count 0). Mirrors production -fprofile-sample-accurate.
void markUnprofiledFunctionsCold(Module &M) {
  for (auto &F : M.Functions) {
    bool Annotated = false;
    for (auto &BB : F->Blocks)
      Annotated |= BB->HasCount;
    if (Annotated || F->IsEntryPoint)
      continue;
    for (auto &BB : F->Blocks)
      BB->setCount(0);
    F->HasEntryCount = true;
    F->EntryCount = 0;
  }
}

std::vector<BasicBlock *> mappedBlocks(const InlinedBody &Body) {
  return Body.ClonedOrder;
}

void recordVerifyReport(LoaderStats &Stats, const VerifyReport &R) {
  Stats.VerifyViolations = R.Violations;
  if (!R.Details.empty())
    Stats.VerifyFirst =
        R.Details.front().Where + ": " + R.Details.front().Message;
}

/// The single entry point for stale-profile handling. Every
/// checksum-mismatch site in the loader routes through resolve(), which
/// returns the profile to apply: the input itself when it is not stale, a
/// matcher-recovered profile when recovery succeeds and clears the
/// confidence bar, or nullptr when the profile must be dropped.
///
/// Line-based profiles are never dropped (AutoFDO historically applies
/// them as-is): staleness is detected via drifted call anchors, and a
/// rejected match falls back to the unmodified profile.
class StaleResolver {
public:
  StaleResolver(Module &M, ProfileKind Kind, const LoaderOptions &Opts,
                LoaderStats &Stats, bool PreMatched = false)
      : M(M), Kind(Kind), Opts(Opts), Stats(Stats), PreMatched(PreMatched) {
    Cfg.MinConfidence = Opts.StaleMatchMinConfidence;
  }

  static bool probeChecksumMismatch(const FunctionProfile &P,
                                    const Function &F) {
    return P.Checksum && F.HasProbes && P.Checksum != F.ProbeCFGChecksum;
  }

  const FunctionProfile *resolve(const FunctionProfile &P, const Function &F) {
    const bool Probe = Kind == ProfileKind::ProbeBased;
    const bool Stale =
        Probe ? probeChecksumMismatch(P, F)
              : (Opts.RecoverStaleProfiles && lineProfileLooksStale(P, F));
    if (!Stale)
      return &P;
    // PreMatched: a whole-profile pre-pass already ran the matcher (CS
    // loading); anything still stale here was below confidence.
    if (!Opts.RecoverStaleProfiles || PreMatched) {
      ++Stats.StaleDropped;
      return Probe ? nullptr : &P;
    }
    MatchResult R = matchStaleProfile(P, F, M, Kind, Cfg);
    // One attempt record and one StaleMatched tick per distinct function:
    // the same stale callee routinely resolves both top-level and at
    // several inline sites (and, store-backed, once more after lazy
    // materialization), which used to double-count it in the stats the
    // dashboard aggregates. Each *site* still runs its own remap.
    bool FirstAttempt = AttemptedFns.insert(F.getName()).second;
    if (FirstAttempt)
      Stats.StaleMatches.push_back({F.getName(), R.Stats});
    if (!R.Stats.Accepted) {
      ++Stats.StaleDropped;
      return Probe ? nullptr : &P;
    }
    if (MatchedFns.insert(F.getName()).second) {
      ++Stats.StaleMatched;
      Stats.StaleAnchorsMatched += R.Stats.AnchorsMatched;
      Stats.StaleCountsRecovered += R.Stats.SamplesRecovered;
    }
    Storage.push_back(
        std::make_unique<FunctionProfile>(std::move(R.Recovered)));
    return Storage.back().get();
  }

  const MatcherConfig &matcherConfig() const { return Cfg; }

private:
  Module &M;
  ProfileKind Kind;
  const LoaderOptions &Opts;
  LoaderStats &Stats;
  bool PreMatched;
  MatcherConfig Cfg;
  /// Functions already attempted/recovered, for per-function stats dedup.
  std::set<std::string> AttemptedFns, MatchedFns;
  /// Recovered profiles must outlive the load (annotation, ICP and the
  /// inline drivers hold pointers into them).
  std::vector<std::unique_ptr<FunctionProfile>> Storage;
};

void annotate(const std::vector<BasicBlock *> &Blocks,
              const FunctionProfile &P, uint64_t OriginGuid,
              ProfileKind Kind, bool Anchored) {
  if (Anchored)
    annotateBlocksByAnchors(Blocks, P, OriginGuid);
  else
    annotateBlocksByLines(Blocks, P, OriginGuid);
}

/// Indirect-call promotion: rewrites an indirect call whose profile shows
/// a dominant target into a guarded direct call:
///
///   r = callindirect [slot](args)      t = (slot == S_dom)
///                                =>    if (t) r = call Dom(args)
///                                      else   r = callindirect [slot](args)
///
/// The direct call keeps the site's probe id, so context-trie lookups and
/// subsequent inlining work on it unchanged. This is the value-profile
/// optimization the paper lists as instrumentation PGO's edge; sampled
/// variants get targets from LBR call branches instead.
unsigned promoteIndirectCallsIn(Module &M, Function &F,
                                const FunctionProfile &P, ProfileKind Kind,
                                uint64_t HotThreshold,
                                const LoaderOptions &Opts) {
  unsigned Promoted = 0;
  // Each site is promoted at most once: the guarded fallback keeps the
  // site id (so the *next* profiling iteration still sees the residual
  // targets), and must not be promoted again in this build.
  std::set<std::pair<uint32_t, uint32_t>> DoneSites;
  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (auto &BBPtr : F.Blocks) {
      BasicBlock *BB = BBPtr.get();
      for (size_t I = 0; I != BB->Insts.size(); ++I) {
        Instruction Inst = BB->Insts[I];
        if (!Inst.isIndirectCall())
          continue;
        ProfileKey Key = callSiteKey(Inst, Kind);
        if (!DoneSites.insert({Key.Index, Key.Disc}).second)
          continue;
        auto It = P.Calls.find(Key);
        if (It == P.Calls.end())
          continue;
        uint64_t Total = 0, DomCount = 0;
        std::string Dom;
        for (const auto &[Callee, N] : It->second) {
          Total += N;
          if (N > DomCount) {
            DomCount = N;
            Dom = Callee;
          }
        }
        if (!Total || Total < std::max<uint64_t>(HotThreshold / 4, 2))
          continue;
        if (static_cast<double>(DomCount) < Opts.ICPDominance * Total)
          continue;
        uint32_t Slot = M.functionTableSlot(Dom);
        Function *Target = M.getFunction(Dom);
        if (Slot == ~0u || !Target)
          continue;

        // Split: BB keeps [0, I); continuation gets (I, end).
        BasicBlock *Cont = F.createBlock("icp.cont");
        Cont->Insts.assign(BB->Insts.begin() + static_cast<ptrdiff_t>(I) + 1,
                           BB->Insts.end());
        Cont->HasCount = BB->HasCount;
        Cont->Count = BB->Count;
        Cont->SuccWeights = std::move(BB->SuccWeights);
        BB->Insts.erase(BB->Insts.begin() + static_cast<ptrdiff_t>(I),
                        BB->Insts.end());
        BB->SuccWeights.clear();

        BasicBlock *Direct = F.createBlock("icp.direct");
        BasicBlock *Fallback = F.createBlock("icp.fallback");

        // Guard in BB.
        RegId Guard = F.allocReg();
        Instruction Cmp;
        Cmp.Op = Opcode::CmpEQ;
        Cmp.Dst = Guard;
        Cmp.A = Inst.A;
        Cmp.B = Operand::imm(Slot);
        Cmp.DL = Inst.DL;
        Cmp.OriginGuid = Inst.OriginGuid;
        Cmp.InlineStack = Inst.InlineStack;
        BB->Insts.push_back(std::move(Cmp));
        Instruction Br;
        Br.Op = Opcode::CondBr;
        Br.A = Operand::reg(Guard);
        Br.Succ0 = Direct;
        Br.Succ1 = Fallback;
        Br.DL = Inst.DL;
        Br.OriginGuid = Inst.OriginGuid;
        Br.InlineStack = Inst.InlineStack;
        BB->Insts.push_back(std::move(Br));

        // Direct arm: keeps the site's probe id for context lookups.
        Instruction DirectCall = Inst;
        DirectCall.Op = Opcode::Call;
        DirectCall.Callee = Dom;
        DirectCall.A = Operand();
        Direct->Insts.push_back(std::move(DirectCall));
        Instruction BrD;
        BrD.Op = Opcode::Br;
        BrD.Succ0 = Cont;
        BrD.DL = Inst.DL;
        BrD.OriginGuid = Inst.OriginGuid;
        BrD.InlineStack = Inst.InlineStack;
        Direct->Insts.push_back(BrD);

        // Fallback arm: the original indirect call (site id retained so
        // remaining targets still profile there next iteration).
        Fallback->Insts.push_back(Inst);
        Fallback->Insts.push_back(BrD);

        // Profile maintenance.
        if (BB->HasCount) {
          double DomShare = static_cast<double>(DomCount) / Total;
          Direct->setCount(static_cast<uint64_t>(BB->Count * DomShare));
          Fallback->setCount(BB->Count - Direct->Count);
          BB->SuccWeights = {Direct->Count, Fallback->Count};
          Direct->SuccWeights = {Direct->Count};
          Fallback->SuccWeights = {Fallback->Count};
        }
        ++Promoted;
        Progress = true;
        break;
      }
      if (Progress)
        break;
    }
  }
  return Promoted;
}

/// Shared recursive replay of inlining for flat profiles: after annotating
/// \p Blocks of \p F from \p P, inline call sites that have a nested
/// inlinee profile (replay) or are hot, then annotate the cloned bodies
/// from the inlinee profile and recurse.
struct FlatInlineDriver {
  Module &M;
  const FlatProfile &Profile;
  ProfileKind Kind;
  bool Anchored;
  const LoaderOptions &Opts;
  uint64_t HotThreshold;
  LoaderStats &Stats;
  StaleResolver &Resolver;

  /// \p Scale is the accumulated execution-share of the inline chain
  /// enclosing \p Blocks: annotated counts of cloned bodies multiply by
  /// it so nested replay inside a scaled outer body stays consistent.
  void processCallsIn(Function &F, std::vector<BasicBlock *> Blocks,
                      const FunctionProfile &P, int Depth, double Scale) {
    if (Depth > 8)
      return;
    bool Progress = true;
    while (Progress) {
      Progress = false;
      for (BasicBlock *BB : Blocks) {
        for (size_t I = 0; I != BB->Insts.size(); ++I) {
          Instruction &Inst = BB->Insts[I];
          if (!Inst.isCall())
            continue;
          Function *Callee = M.getFunction(Inst.Callee);
          if (!Callee || Callee == &F || Callee->NoInline ||
              Callee->IsEntryPoint)
            continue;
          ProfileKey Key = callSiteKey(Inst, Kind);
          const FunctionProfile *InlineeProf =
              P.inlineeAt(Key, Inst.Callee);
          uint64_t CSCount = callSiteCount(Inst, *BB, P, Kind);
          bool Replay = Opts.ReplayInlining && InlineeProf &&
                        InlineeProf->totalBodySamples() > 0;
          bool Hot = Opts.InlineHotFlatCallsites &&
                     static_cast<double>(CSCount) * Scale >= HotThreshold;
          if (!Replay && !Hot)
            continue;
          if (estimateFunctionSize(*Callee) > Opts.MaxInlineSize)
            continue;
          // Stale inlinee profiles (checksum-guarded for probes, anchor
          // checked for lines) route through the matcher; when they stay
          // unrecoverable, only hot sites proceed (scaled fallback).
          if (InlineeProf) {
            InlineeProf = Resolver.resolve(*InlineeProf, *Callee);
            if (!InlineeProf && !Hot)
              continue;
          }
          InlinedBody Body = inlineCallSite(F, BB, I, *Callee);
          if (!Body.Success)
            continue;
          ++Stats.InlinedCallsites;
          std::vector<BasicBlock *> Cloned = mappedBlocks(Body);
          const FunctionProfile *BodyProf = InlineeProf;
          const FunctionProfile *CalleeFlat = Profile.find(Inst.Callee);
          if (!BodyProf)
            BodyProf = CalleeFlat;
          if (BodyProf) {
            annotate(Cloned, *BodyProf, Callee->getGuid(), Kind, Anchored);
            double NewScale = Scale;
            if (!InlineeProf && CalleeFlat) {
              // No context slice available: scale the callee's aggregate
              // profile by the call-site share (the Fig. 3a artifact).
              uint64_t Head = std::max<uint64_t>(CalleeFlat->HeadSamples, 1);
              NewScale =
                  Scale * std::min(1.0, static_cast<double>(CSCount) / Head);
            }
            // Replayed slices are exact relative to the callee copy of
            // the profiling binary but still execute under the enclosing
            // chain's share.
            if (NewScale != 1.0)
              for (BasicBlock *CB : Cloned)
                CB->setCount(static_cast<uint64_t>(CB->Count * NewScale));
            processCallsIn(F, Cloned, *BodyProf, Depth + 1, NewScale);
          } else {
            for (BasicBlock *CB : Cloned)
              CB->setCount(0);
          }
          Progress = true;
          break;
        }
        if (Progress)
          break;
      }
    }
  }
};

} // namespace

LoaderStats loadFlatProfile(Module &M, const FlatProfile &Profile,
                            bool IsInstr, const LoaderOptions &Opts) {
  LoaderStats Stats;
  if (Opts.Verify != VerifyLevel::Off) {
    VerifierOptions VO;
    VO.Level = Opts.Verify;
    // Instr counter profiles are exact (head is a body counter, so
    // HEAD <= TOTAL must hold); sampled profiles instead obey head/call
    // edge conservation. Probe-table agreement is deliberately not
    // checked here: the input may be stale on purpose.
    VO.ExactCounts = IsInstr;
    VO.CheckHeadEdges = !IsInstr && Opts.VerifyCrossEdges;
    recordVerifyReport(Stats, verifyFlatProfile(Profile, VO));
  }
  bool Anchored = Profile.Kind == ProfileKind::ProbeBased;
  uint64_t HotThreshold = Opts.HotCallsiteThreshold
                              ? Opts.HotCallsiteThreshold
                              : hotThreshold(Profile, Opts.HotCutoff);
  Stats.HotThresholdUsed = HotThreshold;

  StaleResolver Resolver(M, Profile.Kind, Opts, Stats);
  FlatInlineDriver Driver{M,    Profile,      Profile.Kind, Anchored,
                          Opts, HotThreshold, Stats,        Resolver};

  for (Function *F : topDownOrder(M)) {
    // Declaration-only functions (no body yet) have nothing to annotate.
    if (F->Blocks.empty())
      continue;
    const FunctionProfile *P = Profile.find(F->getName());
    if (!P)
      continue;
    // Stale-profile detection + recovery (Instr counter profiles are
    // exact by construction and skip it).
    if (!IsInstr)
      P = Resolver.resolve(*P, *F);
    if (!P)
      continue;
    annotate(allBlocks(*F), *P, F->getGuid(), Profile.Kind, Anchored);
    F->HasEntryCount = true;
    F->EntryCount = std::max(P->HeadSamples, F->getEntry()->Count);
    ++Stats.FunctionsAnnotated;
    if (Opts.PromoteIndirectCalls)
      Stats.PromotedIndirectCalls += promoteIndirectCallsIn(
          M, *F, *P, Profile.Kind, HotThreshold, Opts);
    // Instrumentation profiles carry no inline hierarchy to replay, but
    // their exact counts make hot-call-site early inlining safe (the
    // scaled annotation is internally consistent); sampling profiles only
    // do this when explicitly enabled (Fig. 3a hazard).
    if (!IsInstr || Opts.InlineHotFlatCallsites)
      Driver.processCallsIn(*F, allBlocks(*F), *P, 0, 1.0);
  }
  if (Opts.ProfileSampleAccurate)
    markUnprofiledFunctionsCold(M);
  return Stats;
}

namespace {

/// CS loading: descends the context trie in lock step with inlining. A
/// function's profile may live in many context nodes (one per caller
/// chain); any of them that were not consumed by inlining into callers
/// act as a merged "virtual node", so context-sensitive inlining inside F
/// works whether or not F itself was inlined anywhere.
struct CSInlineDriver {
  Module &M;
  const ContextProfile &Profile;
  const LoaderOptions &Opts;
  uint64_t HotThreshold;
  LoaderStats &Stats;
  StaleResolver &Resolver;
  std::set<const ContextTrieNode *> Consumed;

  /// Children with the given (site, callee) across all \p Nodes.
  static std::vector<const ContextTrieNode *>
  childrenAt(const std::vector<const ContextTrieNode *> &Nodes,
             uint32_t Site, const std::string &Callee) {
    std::vector<const ContextTrieNode *> Out;
    for (const ContextTrieNode *N : Nodes)
      if (const ContextTrieNode *C = N->getChild(Site, Callee))
        if (C->HasProfile || !C->Children.empty())
          Out.push_back(C);
    return Out;
  }

  /// Recursively processes calls within \p Blocks of \p F, where
  /// \p Nodes are the trie nodes whose (merged) profile annotated them.
  void processCallsIn(Function &F, std::vector<BasicBlock *> Blocks,
                      const std::vector<const ContextTrieNode *> &Nodes,
                      int Depth) {
    if (Depth > 8)
      return;
    bool Progress = true;
    while (Progress) {
      Progress = false;
      for (BasicBlock *BB : Blocks) {
        for (size_t I = 0; I != BB->Insts.size(); ++I) {
          Instruction &Inst = BB->Insts[I];
          if (!Inst.isCall() || Inst.ProbeId == 0)
            continue;
          Function *Callee = M.getFunction(Inst.Callee);
          if (!Callee || Callee == &F || Callee->NoInline ||
              Callee->IsEntryPoint)
            continue;
          auto Children = childrenAt(Nodes, Inst.ProbeId, Inst.Callee);
          if (Children.empty())
            continue;
          // Merge the context slices across the caller contexts of F.
          FunctionProfile Slice;
          Slice.Name = Inst.Callee;
          bool Marked = false;
          uint64_t Checksum = 0;
          bool AnyUnconsumed = false;
          for (const ContextTrieNode *C : Children) {
            if (Consumed.count(C))
              continue;
            AnyUnconsumed = true;
            Slice.merge(C->Profile);
            Marked |= C->ShouldBeInlined;
            if (C->Profile.Checksum)
              Checksum = C->Profile.Checksum;
          }
          if (!AnyUnconsumed)
            continue;
          bool Hot = Opts.InlineHotContexts &&
                     Slice.TotalSamples >= HotThreshold;
          if (!(Opts.ReplayInlining && Marked) && !Hot)
            continue;
          if (estimateFunctionSize(*Callee) > Opts.MaxInlineSize)
            continue;
          Slice.Checksum = Checksum;
          const FunctionProfile *Applied = Resolver.resolve(Slice, *Callee);
          if (!Applied)
            continue;
          InlinedBody Body = inlineCallSite(F, BB, I, *Callee);
          if (!Body.Success)
            continue;
          ++Stats.InlinedCallsites;
          for (const ContextTrieNode *C : Children)
            Consumed.insert(C);
          std::vector<BasicBlock *> Cloned = mappedBlocks(Body);
          // Context-accurate annotation (Fig. 3b): the cloned body gets
          // the *slice* of the callee profile for this calling context.
          annotateBlocksByAnchors(Cloned, *Applied, Callee->getGuid());
          processCallsIn(F, Cloned, Children, Depth + 1);
          Progress = true;
          break;
        }
        if (Progress)
          break;
      }
    }
  }
};

} // namespace

LoaderStats loadContextProfile(Module &M, const ContextProfile &Profile,
                               const LoaderOptions &Opts) {
  LoaderStats Stats;
  if (Opts.Verify != VerifyLevel::Off) {
    VerifierOptions VO;
    VO.Level = Opts.Verify;
    VO.CheckHeadEdges = Opts.VerifyCrossEdges;
    recordVerifyReport(Stats, verifyContextProfile(Profile, VO));
  }
  // The resolver is PreMatched: stale contexts are recovered by a
  // whole-trie matcher pre-pass below (one alignment per function across
  // all its contexts); whatever is still stale when the in-loop sites
  // see it was below confidence and is dropped as before.
  StaleResolver Resolver(M, ProfileKind::ProbeBased, Opts, Stats,
                         /*PreMatched=*/true);
  std::unique_ptr<ContextProfile> Corrected;
  if (Opts.RecoverStaleProfiles) {
    ContextMatchSummary Summary;
    Corrected =
        matchContextProfile(Profile, M, Resolver.matcherConfig(), Summary);
    if (Corrected) {
      Stats.StaleMatched += Summary.FunctionsMatched;
      Stats.StaleAnchorsMatched += Summary.AnchorsMatched;
      Stats.StaleCountsRecovered += Summary.CountsRecovered;
      for (const auto &[Name, S] : Summary.PerFunction)
        Stats.StaleMatches.push_back({Name, S});
    }
  }
  const ContextProfile &Prof = Corrected ? *Corrected : Profile;

  uint64_t HotThreshold = Opts.HotCallsiteThreshold
                              ? Opts.HotCallsiteThreshold
                              : hotThreshold(Prof, Opts.HotCutoff);
  Stats.HotThresholdUsed = HotThreshold;

  CSInlineDriver Driver{M, Prof, Opts, HotThreshold, Stats, Resolver, {}};

  // Collect all context nodes per leaf function up front.
  std::map<std::string, std::vector<const ContextTrieNode *>> ByLeaf;
  Prof.forEachNode(
      [&ByLeaf](const SampleContext &Ctx, const ContextTrieNode &N) {
        ByLeaf[Ctx.back().Func].push_back(&N);
      });

  for (Function *F : topDownOrder(M)) {
    // Declaration-only functions (no body yet) have nothing to annotate.
    if (F->Blocks.empty())
      continue;
    auto It = ByLeaf.find(F->getName());
    if (It == ByLeaf.end())
      continue;
    // Effective base profile: every context of F that was not consumed by
    // inlining into a caller (callers were processed first — top-down
    // order), merged together.
    FunctionProfile Base;
    Base.Name = F->getName();
    uint64_t Checksum = 0;
    std::vector<const ContextTrieNode *> LiveNodes;
    for (const ContextTrieNode *N : It->second) {
      if (Driver.Consumed.count(N))
        continue;
      LiveNodes.push_back(N);
      Base.merge(N->Profile);
      if (N->Profile.Checksum)
        Checksum = N->Profile.Checksum;
    }
    if (Base.empty())
      continue;
    Base.Checksum = Checksum;
    const FunctionProfile *Applied = Resolver.resolve(Base, *F);
    if (!Applied)
      continue;
    annotateBlocksByAnchors(allBlocks(*F), *Applied, F->getGuid());
    F->HasEntryCount = true;
    F->EntryCount = std::max(Applied->HeadSamples, F->getEntry()->Count);
    ++Stats.FunctionsAnnotated;
    if (Opts.PromoteIndirectCalls)
      Stats.PromotedIndirectCalls += promoteIndirectCallsIn(
          M, *F, *Applied, ProfileKind::ProbeBased, HotThreshold, Opts);

    // Top-down context-sensitive inlining across all live contexts of F.
    Driver.processCallsIn(*F, allBlocks(*F), LiveNodes, 0);
  }
  if (Opts.ProfileSampleAccurate)
    markUnprofiledFunctionsCold(M);
  return Stats;
}

namespace {

/// Options for loading a module-scoped subset: the derived hot threshold
/// must come from the store's whole-profile summary (a subset distribution
/// would skew it), and cross-function edge conservation cannot be checked
/// against a subset.
LoaderOptions storeScopedOptions(const LoaderOptions &Opts, bool Lazy,
                                 const ProfileStore &Store) {
  LoaderOptions O = Opts;
  if (!O.HotCallsiteThreshold)
    O.HotCallsiteThreshold = Store.hotThreshold(O.HotCutoff);
  if (Lazy)
    O.VerifyCrossEdges = false;
  return O;
}

} // namespace

Expected<LoaderStats> loadProfileFromStore(Module &M, ProfileStore &Store,
                                           const LoaderOptions &Opts,
                                           bool Lazy) {
  Store.resolveNames(M);
  unsigned Mat = 0, Skipped = 0;
  LoaderStats Stats;
  // Materialization runs on the flat plane: the view loaders cursor the
  // selected payload tiles into one arena (the per-function seeking that
  // makes module-scoped loading O(module), not O(store)), and the arena
  // is bridged to the map containers only once, at the end, for the
  // annotation pass. Bit-identical to decoding each function into maps —
  // ArenaTest holds the bridge down — but without the per-record tree
  // rebuilds on the hot path.
  if (Store.isCS()) {
    ContextViewLoader L(Store);
    for (size_t I = 0; I != Store.numFunctions(); ++I) {
      if (Lazy && !M.getFunction(std::string(Store.functionName(I)))) {
        ++Skipped;
        continue;
      }
      if (Status S = L.load(I); !S.ok())
        return S.withContext(Lazy ? "lazy context load" : "eager store load");
      ++Mat;
    }
    ContextProfile Materialized = contextProfileOf(L.view());
    Stats = loadContextProfile(M, Materialized,
                               storeScopedOptions(Opts, Lazy, Store));
  } else {
    FlatViewLoader L(Store);
    for (size_t I = 0; I != Store.numFunctions(); ++I) {
      if (Lazy && !M.getFunction(std::string(Store.functionName(I)))) {
        ++Skipped;
        continue;
      }
      if (Status S = L.load(I); !S.ok())
        return S.withContext(Lazy ? "lazy function load" : "eager store load");
      ++Mat;
    }
    FlatProfile Materialized = flatProfileOf(L.view());
    Stats = loadFlatProfile(M, Materialized, Store.isInstr(),
                            storeScopedOptions(Opts, Lazy, Store));
  }
  Stats.StoreFunctionsMaterialized = Mat;
  Stats.StoreFunctionsSkipped = Skipped;
  return Stats;
}

} // namespace csspgo

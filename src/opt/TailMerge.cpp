//===- opt/TailMerge.cpp - Code merge ---------------------------------------===//
//
// Merges identical basic blocks (the "tail merge" family of §III-A "Code
// Merge"). Two blocks merge when their instruction sequences are identical
// and they branch to the same successors; predecessors of the duplicate are
// redirected to the survivor.
//
// This is the transformation with *no* sound profile-preserving form: after
// the merge, the combined execution count can no longer be attributed to
// the two original program locations. Consequences per PGO variant:
//  - AutoFDO (no anchors): blocks merge freely; the survivor keeps its own
//    debug lines, so in the next profiling iteration the duplicate's source
//    lines receive zero samples and the survivor's lines absorb both
//    counts — the correlation damage the paper describes.
//  - CSSPGO: each block carries a pseudo-probe with a distinct id, so
//    Instruction::isIdenticalTo fails and the merge is blocked, preserving
//    the original control flow for correlation. This holds at *both*
//    barrier strengths (merge is never unblocked, matching the paper).
//  - Instr PGO: counter increments with distinct counter ids likewise block
//    the merge (the classic "instrumentation as optimization barrier").
//
// Profile maintenance: the survivor's count becomes the sum.
//
//===----------------------------------------------------------------------===//

#include "ir/CFG.h"
#include "opt/PassManager.h"

#include <algorithm>

namespace csspgo {

static bool blocksIdentical(const BasicBlock &A, const BasicBlock &B) {
  if (A.Insts.size() != B.Insts.size())
    return false;
  for (size_t I = 0; I != A.Insts.size(); ++I)
    if (!A.Insts[I].isIdenticalTo(B.Insts[I]))
      return false;
  return true;
}

/// Length of the longest common instruction suffix of \p A and \p B
/// (terminator included). Probes and counters compare by identity, so a
/// probe pair with different ids terminates the suffix — that is the
/// blocking mechanism.
static size_t commonSuffixLen(const BasicBlock &A, const BasicBlock &B) {
  size_t N = 0;
  while (N < A.Insts.size() && N < B.Insts.size()) {
    const Instruction &IA = A.Insts[A.Insts.size() - 1 - N];
    const Instruction &IB = B.Insts[B.Insts.size() - 1 - N];
    if (!IA.isIdenticalTo(IB))
      break;
    ++N;
  }
  return N;
}

/// Splits the common suffix of \p A and \p B into a fresh shared block.
/// Both blocks must currently end with identical terminators.
static void mergeSuffix(Function &F, BasicBlock *A, BasicBlock *B,
                        size_t SuffixLen) {
  BasicBlock *T = F.createBlock("tailmerge");
  T->Insts.assign(A->Insts.end() - static_cast<ptrdiff_t>(SuffixLen),
                  A->Insts.end());
  // Profile maintenance: the shared tail executes as often as both
  // sources combined; its outgoing weights are the sources' sums.
  if (A->HasCount || B->HasCount) {
    T->setCount(A->Count + B->Count);
    unsigned NumSucc = T->numSuccessors();
    T->SuccWeights.clear();
    for (unsigned S = 0; S != NumSucc; ++S)
      T->SuccWeights.push_back((A->SuccWeights.size() == NumSucc
                                    ? A->SuccWeights[S]
                                    : A->Count / std::max(1u, NumSucc)) +
                               (B->SuccWeights.size() == NumSucc
                                    ? B->SuccWeights[S]
                                    : B->Count / std::max(1u, NumSucc)));
  }
  for (BasicBlock *Src : {A, B}) {
    Src->Insts.erase(Src->Insts.end() - static_cast<ptrdiff_t>(SuffixLen),
                     Src->Insts.end());
    Instruction Br;
    Br.Op = Opcode::Br;
    Br.Succ0 = T;
    if (!Src->Insts.empty()) {
      Br.DL = Src->Insts.back().DL;
      Br.OriginGuid = Src->Insts.back().OriginGuid;
      Br.InlineStack = Src->Insts.back().InlineStack;
    } else if (!T->Insts.empty()) {
      Br.DL = T->Insts.front().DL;
      Br.OriginGuid = T->Insts.front().OriginGuid;
      Br.InlineStack = T->Insts.front().InlineStack;
    }
    Src->Insts.push_back(std::move(Br));
    Src->SuccWeights.clear();
    if (Src->HasCount)
      Src->SuccWeights = {Src->Count};
  }
}

unsigned runTailMerge(Function &F, const OptOptions &Opts) {
  (void)Opts; // Merging is blocked by anchors at any barrier strength.
  unsigned Changed = 0;
  bool Progress = true;
  while (Progress) {
    Progress = false;
    auto Preds = computePredecessors(F);
    // Whole-block merges first.
    for (size_t I = 0; I != F.Blocks.size() && !Progress; ++I) {
      for (size_t J = I + 1; J != F.Blocks.size() && !Progress; ++J) {
        BasicBlock *A = F.Blocks[I].get();
        BasicBlock *B = F.Blocks[J].get();
        if (B == F.getEntry() || A == B)
          continue;
        if (!blocksIdentical(*A, *B))
          continue;
        // Merge B into A.
        for (BasicBlock *P : Preds[B])
          P->replaceSuccessor(B, A);
        if (A->HasCount || B->HasCount)
          A->setCount(A->Count + B->Count);
        F.eraseBlock(B);
        ++Changed;
        Progress = true;
      }
    }
    if (Progress)
      continue;
    // Partial (suffix) merges: factor a common tail of >= 3 instructions
    // (terminator + 2) into a shared block.
    constexpr size_t MinSuffix = 3;
    size_t NumBlocks = F.Blocks.size();
    for (size_t I = 0; I != NumBlocks && !Progress; ++I) {
      for (size_t J = I + 1; J != NumBlocks && !Progress; ++J) {
        BasicBlock *A = F.Blocks[I].get();
        BasicBlock *B = F.Blocks[J].get();
        if (A == B)
          continue;
        size_t Suffix = commonSuffixLen(*A, *B);
        if (Suffix < MinSuffix || Suffix >= A->Insts.size() ||
            Suffix >= B->Insts.size())
          continue;
        mergeSuffix(F, A, B, Suffix);
        ++Changed;
        Progress = true;
      }
    }
  }
  return Changed;
}

} // namespace csspgo

//===- opt/Inliner.h - Inlining ----------------------------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Inlining machinery:
/// - inlineCallSite(): the mechanical transform, shared by the bottom-up
///   inliner here and the top-down sample-profile inliner in the loader.
///   Cloned instructions keep their origin function's line/probe numbering
///   and get the call site pushed onto their inline stack, which is what
///   both DWARF inline info and pseudo-probe inline stacks do.
/// - runBottomUpInliner(): LLVM-style CGSCC bottom-up inlining. This is
///   the inliner the paper criticizes for profile purposes: decisions are
///   made callee-first, so no context specialization is possible, and
///   post-inline counts can only be *scaled* from the callee's aggregate
///   profile (the Fig. 3a inaccuracy).
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_OPT_INLINER_H
#define CSSPGO_OPT_INLINER_H

#include "ir/Module.h"

#include <map>

namespace csspgo {

/// Result of mechanically inlining one call site.
struct InlinedBody {
  bool Success = false;
  /// Maps callee blocks to their clones in the caller.
  std::map<const BasicBlock *, BasicBlock *> BlockMap;
  /// Clones in the callee's block order (deterministic iteration; the
  /// pointer-keyed map above must not drive any ordering decision).
  std::vector<BasicBlock *> ClonedOrder;
  /// The split-off continuation holding the code after the call.
  BasicBlock *Continuation = nullptr;
};

/// Inlines the call at \p BB->Insts[CallIdx] (which must call \p Callee).
/// Performs no profitability analysis and no profile annotation of the
/// cloned body beyond clearing stale counts — callers annotate via the
/// returned BlockMap. Returns Success=false only on malformed input.
InlinedBody inlineCallSite(Function &Caller, BasicBlock *BB, size_t CallIdx,
                           const Function &Callee);

/// Cost parameters for the bottom-up inliner.
struct InlineParams {
  /// Callee size (code instructions) below which any call site inlines.
  unsigned SizeThreshold = 45;
  /// Callee size below which *hot* call sites inline.
  unsigned HotSizeThreshold = 100;
  /// Callee size below which even cold call sites inline (call overhead
  /// still dominates for tiny callees; mirrors LLVM's cold threshold).
  unsigned ColdSizeThreshold = 18;
  /// Block count at/above which a call site counts as hot (0 = no
  /// profile-driven bonus).
  uint64_t HotCallsiteCount = 0;
  /// Stop growing a caller beyond this many code instructions.
  unsigned MaxCallerSize = 450;
  /// Rounds of bottom-up iteration.
  unsigned MaxIterations = 2;
};

struct InlinerStats {
  unsigned NumInlined = 0;
  unsigned NumDeadFunctionsRemoved = 0;
};

/// Runs bottom-up inlining over \p M. When blocks carry profile counts the
/// cloned bodies are annotated by scaling the callee's counts with the
/// call-site/entry ratio (context-insensitive scaling).
InlinerStats runBottomUpInliner(Module &M, const InlineParams &Params);

/// Removes functions that have no remaining call sites and are not the
/// entry point. Returns the number removed.
unsigned removeDeadFunctions(Module &M);

} // namespace csspgo

#endif // CSSPGO_OPT_INLINER_H

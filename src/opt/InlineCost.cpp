//===- opt/InlineCost.cpp - Inline profitability ------------------------------===//

#include "opt/InlineCost.h"

namespace csspgo {

unsigned estimateFunctionSize(const Function &F) {
  unsigned Size = 0;
  for (const auto &BB : F.Blocks)
    for (const Instruction &I : BB->Insts) {
      if (I.isProbe())
        continue; // Zero-size correlation anchors.
      Size += I.isCall() ? 3 : 1;
    }
  return Size;
}

InlineDecision shouldInline(const Function &Caller, const Function &Callee,
                            uint64_t CallsiteCount,
                            const InlineParams &Params) {
  InlineDecision D;
  if (Callee.NoInline) {
    D.Reason = "noinline attribute";
    return D;
  }
  if (Callee.IsEntryPoint) {
    D.Reason = "entry point";
    return D;
  }
  if (Callee.AlwaysInline) {
    D.Inline = true;
    D.Reason = "alwaysinline attribute";
    return D;
  }
  unsigned CalleeSize = estimateFunctionSize(Callee);
  unsigned CallerSize = estimateFunctionSize(Caller);
  if (CallerSize + CalleeSize > Params.MaxCallerSize) {
    D.Reason = "caller size limit";
    return D;
  }
  bool Hot =
      Params.HotCallsiteCount && CallsiteCount >= Params.HotCallsiteCount;
  // Cold call sites with a profile present do not inline at all: the
  // profile tells us the call overhead does not matter there and keeping
  // the code out of line is an i-cache win.
  bool KnownCold = Params.HotCallsiteCount &&
                   CallsiteCount < Params.HotCallsiteCount / 16;
  if (KnownCold) {
    if (CalleeSize <= Params.ColdSizeThreshold) {
      D.Inline = true;
      D.Reason = "tiny callee at cold call site";
      return D;
    }
    D.Reason = "cold call site";
    return D;
  }
  if (Hot && CalleeSize <= Params.HotSizeThreshold) {
    D.Inline = true;
    D.Reason = "hot call site";
    return D;
  }
  if (CalleeSize <= Params.SizeThreshold) {
    D.Inline = true;
    D.Reason = "small callee";
    return D;
  }
  D.Reason = "size threshold";
  return D;
}

} // namespace csspgo

//===- opt/PassManager.h - Optimization pipeline ----------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimization pipeline and its configuration. Every transformation is
/// responsible for *profile maintenance* (paper Fig. 1): updating block
/// counts and edge weights to reflect its CFG changes. The ProbeBarrier
/// knob reproduces the paper's flexibility claim: pseudo-probes can be made
/// a stronger or weaker optimization barrier to trade run-time overhead
/// against profile accuracy (§III-A).
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_OPT_PASSMANAGER_H
#define CSSPGO_OPT_PASSMANAGER_H

#include "ir/Module.h"
#include "opt/BlockTiming.h"

#include <cstdint>
#include <string>
#include <vector>

namespace csspgo {

/// How strongly pseudo-probes block optimizations. The paper's production
/// tuning is Weak: near-zero overhead, probes do not block if-conversion or
/// code motion (only code merge, which has no sound profile-preserving
/// form). Strong blocks those too, buying accuracy with run-time cost.
enum class ProbeBarrier : uint8_t { Weak, Strong };

struct OptOptions {
  ProbeBarrier Barrier = ProbeBarrier::Weak;

  bool EnableSimplifyCFG = true;
  bool EnableTailMerge = true;
  bool EnableIfConvert = true;
  bool EnableJumpThreading = true;
  bool EnableLoopUnroll = true;
  bool EnableCodeMotion = true;
  bool EnableDCE = true;
  bool EnableConstantFold = true;
  bool EnableLayout = true;
  bool EnableFunctionSplit = true;

  /// Loop unroll factor for small hot loops.
  unsigned UnrollFactor = 3;
  /// Max body instructions for an unrollable loop.
  unsigned UnrollMaxBodySize = 24;
  /// Max instructions per arm for if-conversion.
  unsigned IfConvertMaxArmSize = 3;
  /// Max block size for tail duplication (jump threading).
  unsigned TailDupMaxSize = 8;

  /// Measured per-block timing from a core-instruction trace (null =
  /// frequency-only compilation, the classic PGO mode). When present,
  /// if-conversion and loop unrolling gate on measured latency instead of
  /// frequencies alone; blocks without a timing entry keep the
  /// frequency-only behavior, so timing can only veto marginal transforms,
  /// never enable new ones. The pointer is borrowed for the duration of
  /// the pipeline run.
  const TimingProfile *Timing = nullptr;
  /// Timing gate for if-conversion: with measured timing for the branch
  /// block and both arms, conversion is rejected when executing the
  /// skipped arm's measured latency (plus a select) on every pass costs
  /// more than the measured mispredict cycles plus the eliminated
  /// control flow. Requires all three measurements — missing arm timing
  /// means the profiling binary converted the diamond itself, so the
  /// branch block's stats describe the converted form and cannot
  /// second-guess it.
  ///
  /// Cycles one branch eliminated by if-conversion is assumed to cost per
  /// execution (instruction base plus the average taken redirect; mirrors
  /// CostModel::TakenBranchCost).
  unsigned IfConvertAssumedBranchCycles = 3;
  /// Cycles one mispredict is assumed to burn (mirrors
  /// CostModel::MispredictPenalty).
  unsigned IfConvertAssumedMispredictCycles = 14;
  /// Timing gate for loop unrolling: minimum fraction (permille) of one
  /// iteration's measured cycles that the removed back-edge jump
  /// represents. Long-latency bodies gain almost nothing from unrolling
  /// and still pay its code-size/i-cache cost.
  unsigned UnrollMinGainPermille = 25;
  /// Cycles the eliminated back-edge jump is assumed to cost (the opt
  /// layer carries no machine cost model; mirrors
  /// CostModel::TakenBranchCost).
  unsigned UnrollAssumedBranchCycles = 2;

  /// Assign DWARF-style discriminators to instructions cloned by loop
  /// unrolling, so debug-info correlation can tell the copies apart
  /// (§III-A: discriminators mitigate *some* code duplication, but
  /// annotating every duplicating transformation is impractical — tail
  /// duplication and friends stay unannotated here, as in practice).
  bool AssignUnrollDiscriminators = true;
};

/// Per-pass change statistics, for tests and debugging.
struct PassStats {
  std::vector<std::pair<std::string, unsigned>> Changes;
  void record(const std::string &Pass, unsigned N) {
    if (N)
      Changes.emplace_back(Pass, N);
  }
  unsigned total() const {
    unsigned T = 0;
    for (const auto &[P, N] : Changes)
      T += N;
    return T;
  }
};

/// \name Individual passes. Each returns the number of changes applied.
/// @{
unsigned runSimplifyCFG(Function &F, const OptOptions &Opts);
unsigned runTailMerge(Function &F, const OptOptions &Opts);
unsigned runIfConvert(Function &F, const OptOptions &Opts);
unsigned runJumpThreading(Function &F, const OptOptions &Opts);
unsigned runLoopUnroll(Function &F, const OptOptions &Opts);
unsigned runCodeMotion(Function &F, const OptOptions &Opts);
unsigned runDCE(Function &F, const OptOptions &Opts);
unsigned runConstantFold(Function &F, const OptOptions &Opts);
unsigned runExtTSPLayout(Function &F, const OptOptions &Opts);
unsigned runFunctionSplit(Function &F, const OptOptions &Opts);
/// @}

/// Runs the mid-level scalar/CFG pipeline (no inlining, no layout) on every
/// function, iterating to a fixpoint (bounded).
PassStats runMidLevelPipeline(Module &M, const OptOptions &Opts);

/// Runs the late pipeline: block layout and function splitting.
PassStats runLatePipeline(Module &M, const OptOptions &Opts);

} // namespace csspgo

#endif // CSSPGO_OPT_PASSMANAGER_H

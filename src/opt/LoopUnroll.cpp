//===- opt/LoopUnroll.cpp - Loop unrolling -----------------------------------===//
//
// Unrolls small rotated loops (header tests the condition, a single body
// block branches back) by duplicating the header+body pair:
//
//   H:  if c goto B else X          H:  if c goto B  else X
//   B:  body; goto H          =>    B:  body; goto H2
//                                   H2: if c goto B2 else X
//                                   B2: body; goto H
//
// This is code duplication (§III-A): lines and probes are cloned. AutoFDO's
// MAX heuristic under-counts the loop body afterwards; CSSPGO's summed
// same-id probe copies stay exact. Profile maintenance: each copy receives
// count / factor.
//
//===----------------------------------------------------------------------===//

#include "ir/CFG.h"
#include "opt/PassManager.h"

#include <map>

namespace csspgo {

namespace {

/// Clones \p Src into a fresh block of \p F with the same instructions.
/// When \p Discriminator is non-zero the copies are tagged with it so
/// line-based correlation can separate them.
BasicBlock *cloneBlock(Function &F, const BasicBlock &Src,
                       const std::string &Hint, uint32_t Discriminator) {
  BasicBlock *NB = F.createBlock(Hint);
  NB->Insts = Src.Insts;
  if (Discriminator)
    for (Instruction &I : NB->Insts)
      I.DL.Discriminator = Discriminator;
  NB->HasCount = Src.HasCount;
  NB->Count = Src.Count;
  NB->SuccWeights = Src.SuccWeights;
  return NB;
}

} // namespace

unsigned runLoopUnroll(Function &F, const OptOptions &Opts) {
  if (Opts.UnrollFactor < 2)
    return 0;
  unsigned Changed = 0;

  // Snapshot loops up front; unrolling invalidates the analysis, so only
  // loops still matching the pattern are transformed.
  auto Loops = findLoops(F);
  for (Loop &L : Loops) {
    if (L.Blocks.size() != 2 || L.Latches.size() != 1)
      continue;
    BasicBlock *H = L.Header;
    BasicBlock *B = L.Latches.front();
    if (!H->hasTerminator() || !B->hasTerminator())
      continue;
    Instruction &HT = H->terminator();
    Instruction &BT = B->terminator();
    if (HT.Op != Opcode::CondBr || BT.Op != Opcode::Br || BT.Succ0 != H)
      continue;
    // Identify which header edge enters the body.
    bool BodyOnTrue = HT.Succ0 == B;
    if (!BodyOnTrue && HT.Succ1 != B)
      continue;
    if (B->Insts.size() > Opts.UnrollMaxBodySize)
      continue;
    // Calls in the body make duplication too costly here.
    bool HasCall = false;
    for (const Instruction &I : B->Insts)
      HasCall |= I.isCall();
    if (HasCall)
      continue;
    // Timing gate: unrolling a rotated loop mostly removes back-edge
    // jumps, so its payoff is the jump's share of one iteration's
    // measured cycles. A long-latency body (divisions, misses) gains a
    // sliver and still pays the duplication's i-cache cost — reject it.
    {
      const BlockTimingStats *HS = blockTiming(Opts.Timing, *H);
      const BlockTimingStats *BS = blockTiming(Opts.Timing, *B);
      if (HS && BS && HS->Executed && BS->Executed) {
        uint64_t PerIterCycles =
            HS->Cycles / HS->Executed + BS->Cycles / BS->Executed;
        if (static_cast<uint64_t>(Opts.UnrollAssumedBranchCycles) * 1000 <
            static_cast<uint64_t>(Opts.UnrollMinGainPermille) * PerIterCycles)
          continue;
      }
    }

    // Build factor-1 extra copies chained between B and H.
    std::vector<BasicBlock *> Headers{H}, Bodies{B};
    BasicBlock *BranchBackFrom = B;
    for (unsigned Copy = 1; Copy != Opts.UnrollFactor; ++Copy) {
      uint32_t Disc = Opts.AssignUnrollDiscriminators ? Copy : 0;
      BasicBlock *H2 = cloneBlock(F, *H, "unroll.h", Disc);
      BasicBlock *B2 = cloneBlock(F, *B, "unroll.b", Disc);
      Headers.push_back(H2);
      Bodies.push_back(B2);
      // H2 branches into B2 on the body edge; exit edge unchanged.
      if (BodyOnTrue)
        H2->terminator().Succ0 = B2;
      else
        H2->terminator().Succ1 = B2;
      // Previous body copy falls into H2 instead of H.
      BranchBackFrom->terminator().Succ0 = H2;
      BranchBackFrom = B2;
    }
    // Last copy closes the loop.
    BranchBackFrom->terminator().Succ0 = H;

    // Profile maintenance: the trip count distributes over the copies.
    if (H->HasCount) {
      uint64_t HCount = H->Count, BCount = B->Count;
      for (BasicBlock *X : Headers) {
        X->setCount(HCount / Opts.UnrollFactor);
        for (uint64_t &W : X->SuccWeights)
          W /= Opts.UnrollFactor;
      }
      for (BasicBlock *X : Bodies) {
        X->setCount(BCount / Opts.UnrollFactor);
        for (uint64_t &W : X->SuccWeights)
          W /= Opts.UnrollFactor;
      }
    }
    ++Changed;
  }
  return Changed;
}

} // namespace csspgo

//===- opt/ExtTSPCore.h - Ext-TSP scorer and chain solver -------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Ext-TSP layout objective and greedy chain solver (Newell & Pupyrev,
/// "Improved Basic Block Reordering"), factored out of the IR-level layout
/// pass so the post-link optimizer can score reconstructed *binary* CFGs
/// with the exact same objective. The score of a layout sums, over CFG
/// edges (s -> t) with weight w:
///   - w                          if t is placed directly after s;
///   - w * 0.1 * (1 - d / 1024)  for short forward jumps of distance d;
///   - w * 0.1 * (1 - d / 640)   for short backward jumps.
///
/// Blocks are abstract here: the caller supplies byte sizes, weighted
/// edges and the entry index; the solver returns a permutation with the
/// entry block's chain first. ExtTSPLayout.cpp feeds it IR blocks;
/// postlink/PostLinkOptimizer.cpp feeds it disassembled machine blocks.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_OPT_EXTTSPCORE_H
#define CSSPGO_OPT_EXTTSPCORE_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace csspgo {
namespace exttsp {

constexpr double ForwardWeight = 0.1;
constexpr double BackwardWeight = 0.1;
constexpr double ForwardDistance = 1024;
constexpr double BackwardDistance = 640;

/// One weighted CFG edge between block indices.
struct Edge {
  unsigned Src = 0;
  unsigned Dst = 0;
  double Weight = 0;
};

/// A chain of blocks under construction.
struct Chain {
  std::vector<unsigned> Blocks;
  uint64_t Size = 0;
  bool ContainsEntry = false;
};

/// Greedy chain-merging solver over the Ext-TSP objective. Quadratic in
/// the number of chains — callers cap the block count (the IR pass and the
/// post-link reorderer both fall back / bail above 64 blocks).
class Solver {
public:
  Solver(std::vector<uint64_t> Sizes, std::vector<Edge> Edges,
         unsigned EntryIdx)
      : Sizes(std::move(Sizes)), Edges(std::move(Edges)) {
    for (unsigned I = 0; I != this->Sizes.size(); ++I) {
      Chain C;
      C.Blocks = {I};
      C.Size = this->Sizes[I];
      C.ContainsEntry = I == EntryIdx;
      Chains.push_back(std::move(C));
    }
  }

  /// Ext-TSP score of placing the given blocks consecutively.
  double scoreOfOrder(const std::vector<unsigned> &Order) const {
    // Offsets of each block in the tentative layout.
    std::map<unsigned, uint64_t> Offset;
    std::map<unsigned, uint64_t> EndOffset;
    uint64_t Pos = 0;
    for (unsigned B : Order) {
      Offset[B] = Pos;
      Pos += Sizes[B];
      EndOffset[B] = Pos;
    }
    double Score = 0;
    for (const Edge &E : Edges) {
      auto SrcIt = EndOffset.find(E.Src);
      auto DstIt = Offset.find(E.Dst);
      if (SrcIt == EndOffset.end() || DstIt == Offset.end())
        continue;
      uint64_t SrcEnd = SrcIt->second;
      uint64_t DstBegin = DstIt->second;
      if (SrcEnd == DstBegin) {
        Score += E.Weight;
      } else if (DstBegin > SrcEnd) {
        double D = static_cast<double>(DstBegin - SrcEnd);
        if (D < ForwardDistance)
          Score += E.Weight * ForwardWeight * (1.0 - D / ForwardDistance);
      } else {
        double D = static_cast<double>(SrcEnd - DstBegin);
        if (D < BackwardDistance)
          Score += E.Weight * BackwardWeight * (1.0 - D / BackwardDistance);
      }
    }
    return Score;
  }

  /// Runs greedy chain merging and returns the final block permutation,
  /// entry chain first.
  std::vector<unsigned> run() {
    // Greedy chain merging: pick the pair/orientation with the best gain.
    while (Chains.size() > 1) {
      double BestGain = 0;
      size_t BestA = 0, BestB = 0;
      bool Found = false;
      for (size_t I = 0; I != Chains.size(); ++I) {
        for (size_t J = 0; J != Chains.size(); ++J) {
          if (I == J)
            continue;
          // The entry chain can only be extended at its tail.
          if (Chains[J].ContainsEntry)
            continue;
          double Base =
              scoreOfOrder(Chains[I].Blocks) + scoreOfOrder(Chains[J].Blocks);
          double Gain = scoreMerge(Chains[I], Chains[J]) - Base;
          if (!Found || Gain > BestGain) {
            BestGain = Gain;
            BestA = I;
            BestB = J;
            Found = true;
          }
        }
      }
      if (!Found)
        break;
      // Merge B into A.
      Chain &A = Chains[BestA];
      Chain &B = Chains[BestB];
      A.Blocks.insert(A.Blocks.end(), B.Blocks.begin(), B.Blocks.end());
      A.Size += B.Size;
      A.ContainsEntry |= B.ContainsEntry;
      Chains.erase(Chains.begin() + static_cast<ptrdiff_t>(BestB));
    }

    // Entry chain first, then remaining chains by decreasing hotness proxy
    // (we keep insertion order — remaining chains are cold).
    std::stable_sort(Chains.begin(), Chains.end(),
                     [](const Chain &X, const Chain &Y) {
                       return X.ContainsEntry > Y.ContainsEntry;
                     });
    std::vector<unsigned> Order;
    for (const Chain &C : Chains)
      Order.insert(Order.end(), C.Blocks.begin(), C.Blocks.end());
    return Order;
  }

private:
  double scoreMerge(const Chain &A, const Chain &B) const {
    std::vector<unsigned> Order = A.Blocks;
    Order.insert(Order.end(), B.Blocks.begin(), B.Blocks.end());
    return scoreOfOrder(Order);
  }

  std::vector<uint64_t> Sizes;
  std::vector<Edge> Edges;
  std::vector<Chain> Chains;
};

} // namespace exttsp
} // namespace csspgo

#endif // CSSPGO_OPT_EXTTSPCORE_H

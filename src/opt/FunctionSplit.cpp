//===- opt/FunctionSplit.cpp - Hot/cold function splitting --------------------===//
//
// Moves never-executed (count == 0) blocks into the cold section, which the
// linker places after all hot code. Splitting shrinks the hot working set:
// the simulator's i-cache stops fetching cold lines interleaved with hot
// ones. The paper enables function splitting for all PGO variants in its
// evaluation (§IV-A); its effectiveness depends directly on profile
// quality — mis-attributed counts either leave cold code hot-resident or,
// worse, demote genuinely hot blocks.
//
//===----------------------------------------------------------------------===//

#include "opt/PassManager.h"

namespace csspgo {

unsigned runFunctionSplit(Function &F, const OptOptions &Opts) {
  (void)Opts;
  if (F.Blocks.size() < 2)
    return 0;
  // Only split profiled functions with at least one hot block.
  bool AnyHot = false;
  bool AnyCounts = false;
  for (auto &BB : F.Blocks) {
    AnyCounts |= BB->HasCount;
    AnyHot |= BB->HasCount && BB->Count > 0;
  }
  if (!AnyCounts)
    return 0;

  // A function whose entry never executed is entirely cold: every block
  // (including the entry) moves to the cold section, so the function's
  // code leaves the hot working set completely.
  if (!AnyHot || (F.getEntry()->HasCount && F.getEntry()->Count == 0)) {
    unsigned Split = 0;
    for (auto &BB : F.Blocks)
      if (!BB->IsColdSection) {
        BB->IsColdSection = true;
        ++Split;
      }
    return Split;
  }

  unsigned Split = 0;
  for (auto &BB : F.Blocks) {
    if (BB.get() == F.getEntry())
      continue;
    if (BB->HasCount && BB->Count == 0 && !BB->IsColdSection) {
      BB->IsColdSection = true;
      ++Split;
    }
  }
  return Split;
}

} // namespace csspgo

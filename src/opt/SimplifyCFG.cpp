//===- opt/SimplifyCFG.cpp - CFG cleanup ------------------------------------===//
//
// Folds trivial control flow:
//  - CondBr with equal targets or a constant condition becomes Br;
//  - a block whose single predecessor ends in an unconditional Br into it
//    is spliced into that predecessor (straight-line merge — sound for
//    probes since no counts are conflated);
//  - empty forwarding blocks (only a Br, plus probes that can be hoisted
//    into the successor when it has a single predecessor) are bypassed;
//  - unreachable blocks are removed.
// Profile maintenance: counts transfer with the dominant path; edge
// weights are preserved or re-derived from block counts.
//
//===----------------------------------------------------------------------===//

#include "ir/CFG.h"
#include "opt/PassManager.h"

namespace csspgo {

static unsigned foldBranches(Function &F) {
  unsigned Changed = 0;
  for (auto &BB : F.Blocks) {
    if (!BB->hasTerminator())
      continue;
    Instruction &T = BB->terminator();
    if (T.Op != Opcode::CondBr)
      continue;
    bool Fold = false;
    BasicBlock *Target = nullptr;
    if (T.Succ0 == T.Succ1) {
      Fold = true;
      Target = T.Succ0;
    } else if (T.A.isImm()) {
      Fold = true;
      Target = T.A.getImm() ? T.Succ0 : T.Succ1;
    }
    if (!Fold)
      continue;
    T.Op = Opcode::Br;
    T.Succ0 = Target;
    T.Succ1 = nullptr;
    T.A = Operand();
    if (!BB->SuccWeights.empty())
      BB->SuccWeights = {BB->Count};
    ++Changed;
  }
  return Changed;
}

/// Splices single-successor -> single-predecessor block pairs.
static unsigned mergeStraightLine(Function &F) {
  unsigned Changed = 0;
  bool Progress = true;
  while (Progress) {
    Progress = false;
    auto Preds = computePredecessors(F);
    for (auto &BBPtr : F.Blocks) {
      BasicBlock *B = BBPtr.get();
      if (!B->hasTerminator())
        continue;
      Instruction &T = B->terminator();
      if (T.Op != Opcode::Br)
        continue;
      BasicBlock *S = T.Succ0;
      if (S == B || S == F.getEntry())
        continue;
      if (Preds[S].size() != 1)
        continue;
      // Splice S into B.
      B->Insts.pop_back(); // Drop the Br.
      for (Instruction &I : S->Insts)
        B->Insts.push_back(std::move(I));
      S->Insts.clear();
      // Profile: the merged block executes as often as B did.
      B->SuccWeights = std::move(S->SuccWeights);
      // Make S unreachable; erased below.
      F.eraseBlock(S);
      Progress = true;
      ++Changed;
      break; // Iterator invalidated; restart.
    }
  }
  return Changed;
}

/// Redirects predecessors of blocks that only forward (probe-free "br"
/// blocks) directly to the destination.
static unsigned bypassForwarders(Function &F) {
  unsigned Changed = 0;
  auto Preds = computePredecessors(F);
  for (auto &BBPtr : F.Blocks) {
    BasicBlock *B = BBPtr.get();
    if (B == F.getEntry() || !B->hasTerminator())
      continue;
    if (B->Insts.size() != 1 || B->Insts[0].Op != Opcode::Br)
      continue;
    BasicBlock *Dest = B->Insts[0].Succ0;
    if (Dest == B)
      continue;
    for (BasicBlock *P : Preds[B]) {
      P->replaceSuccessor(B, Dest);
      ++Changed;
    }
  }
  return Changed;
}

unsigned runSimplifyCFG(Function &F, const OptOptions &Opts) {
  (void)Opts;
  unsigned Changed = 0;
  Changed += foldBranches(F);
  Changed += bypassForwarders(F);
  Changed += removeUnreachableBlocks(F) ? 1 : 0;
  Changed += mergeStraightLine(F);
  Changed += removeUnreachableBlocks(F) ? 1 : 0;
  return Changed;
}

} // namespace csspgo

//===- opt/CodeMotion.cpp - Loop-invariant code motion -----------------------===//
//
// Hoists loop-invariant pure instructions from loop headers into a
// preheader. This moves instructions from a hot region into a colder one —
// the "code motion" profile hazard of §III-A: after hoisting, the moved
// instruction's debug line sits at a low-frequency address, so AutoFDO's
// per-line counts under-report the original block. Pseudo-probes are
// unaffected: probes are not moved (they are block anchors, not attached
// to the moved instruction), so probe-based counts stay exact. Under
// ProbeBarrier::Strong the paper's "more accurate" configuration treats
// probes as scheduling barriers and the hoist is suppressed when the block
// holds a probe.
//
//===----------------------------------------------------------------------===//

#include "ir/CFG.h"
#include "opt/PassManager.h"

#include <set>

namespace csspgo {

unsigned runCodeMotion(Function &F, const OptOptions &Opts) {
  unsigned Changed = 0;
  auto Loops = findLoops(F);
  auto Preds = computePredecessors(F);

  for (Loop &L : Loops) {
    BasicBlock *H = L.Header;
    if (H == F.getEntry())
      continue;

    // Registers written anywhere in the loop.
    std::set<RegId> LoopWrites;
    for (BasicBlock *B : L.Blocks)
      for (const Instruction &I : B->Insts)
        if (I.Dst != InvalidReg && !I.isProbe())
          LoopWrites.insert(I.Dst);

    // Strong barrier: probes pin the schedule of their block.
    if (Opts.Barrier == ProbeBarrier::Strong && H->getBlockProbe())
      continue;

    // Find hoistable instructions in the header: pure, operands not
    // written in the loop, destination written only once in the loop, and
    // not read earlier in the header.
    std::vector<size_t> Hoistable;
    std::set<RegId> ReadSoFar;
    std::vector<RegId> Reads;
    for (size_t Idx = 0; Idx != H->Insts.size(); ++Idx) {
      const Instruction &I = H->Insts[Idx];
      if (I.isTerminator())
        break;
      Reads.clear();
      I.getUsedRegs(Reads);
      if (I.isProbe())
        continue;
      bool Ok = isPureOp(I.Op) && I.Dst != InvalidReg &&
                !ReadSoFar.count(I.Dst);
      if (Ok)
        for (RegId R : Reads)
          Ok &= !LoopWrites.count(R);
      // Destination written exactly once in the loop (this instruction).
      if (Ok) {
        unsigned Writes = 0;
        for (BasicBlock *B : L.Blocks)
          for (const Instruction &J : B->Insts)
            Writes += !J.isProbe() && J.Dst == I.Dst;
        Ok = Writes == 1;
      }
      // Not read anywhere in the loop before the header position — we only
      // hoist from the header and already tracked header reads; body blocks
      // execute after the header, so their reads are safe.
      if (Ok)
        Hoistable.push_back(Idx);
      for (RegId R : Reads)
        ReadSoFar.insert(R);
    }
    if (Hoistable.empty())
      continue;

    // Build or find the preheader: the unique non-latch predecessor edge
    // source. If there are several, synthesize a preheader block.
    std::vector<BasicBlock *> Outside;
    for (BasicBlock *P : Preds[H])
      if (!L.Blocks.count(P))
        Outside.push_back(P);
    if (Outside.empty())
      continue; // Unreachable loop.
    BasicBlock *Pre = F.createBlock("preheader");
    for (BasicBlock *P : Outside)
      P->replaceSuccessor(H, Pre);
    // Move the hoistable instructions (in order) into the preheader.
    for (size_t K = 0; K != Hoistable.size(); ++K)
      Pre->Insts.push_back(H->Insts[Hoistable[K]]);
    for (size_t K = Hoistable.size(); K-- > 0;)
      H->Insts.erase(H->Insts.begin() +
                     static_cast<ptrdiff_t>(Hoistable[K]));
    Instruction Br;
    Br.Op = Opcode::Br;
    Br.Succ0 = H;
    Br.DL = Pre->Insts.front().DL;
    Br.OriginGuid = Pre->Insts.front().OriginGuid;
    Br.InlineStack = Pre->Insts.front().InlineStack;
    Pre->Insts.push_back(std::move(Br));

    // Profile maintenance: the preheader runs once per loop entry = sum of
    // entering edge counts; approximate with header count minus latch
    // counts when available.
    if (H->HasCount) {
      uint64_t LatchIn = 0;
      for (BasicBlock *Latch : L.Latches)
        if (Latch->HasCount) {
          // Weight of the latch->header edge.
          auto Succs = Latch->successors();
          for (unsigned S = 0; S != Succs.size(); ++S)
            if (Succs[S] == H)
              LatchIn += Latch->succWeight(S);
        }
      Pre->setCount(H->Count > LatchIn ? H->Count - LatchIn : 1);
      Pre->SuccWeights = {Pre->Count};
    }

    Changed += Hoistable.size();
    Preds = computePredecessors(F);
  }
  return Changed;
}

} // namespace csspgo

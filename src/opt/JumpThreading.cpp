//===- opt/JumpThreading.cpp - Jump threading / tail duplication ------------===//
//
// Duplicates small multi-predecessor blocks into their predecessors
// (tail duplication), the canonical "code duplication" transformation of
// §III-A: after it, one source line (and one pseudo-probe id) exists at
// several binary addresses.
//
//   P: ...; br T                 P: ...; <T's body>; <T's terminator>
//   Q: ...; br T          =>     Q: ...; br T      (T kept for Q)
//   T: small; terminator
//
// Correlation consequences:
//  - AutoFDO's debug-info symbolization sees the same line at multiple
//    addresses and applies the MAX heuristic — wrong for duplication,
//    where the copies' frequencies must be summed (the paper's central
//    example of why one-to-many mappings lose information);
//  - CSSPGO clones the probes; profgen *sums* counts of same-id probe
//    copies, recovering the exact original frequency (one-to-one mapping).
//
// Profile maintenance: P keeps its count and inherits T's edge weights
// scaled by P's share; T's count drops by P's count.
//
//===----------------------------------------------------------------------===//

#include "ir/CFG.h"
#include "opt/PassManager.h"

#include <algorithm>

namespace csspgo {

static bool isDuplicatableBlock(const BasicBlock &T, unsigned MaxSize) {
  if (!T.hasTerminator())
    return false;
  // Calls are not duplicated (code growth, and call-site probes would need
  // id cloning across functions).
  unsigned Real = 0;
  for (const Instruction &I : T.Insts) {
    if (I.isProbe())
      continue;
    if (I.isCall())
      return false;
    ++Real;
  }
  return Real <= MaxSize;
}

unsigned runJumpThreading(Function &F, const OptOptions &Opts) {
  unsigned Changed = 0;
  bool Progress = true;
  unsigned Guard = 0;
  while (Progress && Guard++ < 32) {
    Progress = false;
    auto Preds = computePredecessors(F);
    for (auto &BBPtr : F.Blocks) {
      BasicBlock *T = BBPtr.get();
      if (T == F.getEntry())
        continue;
      if (Preds[T].size() < 2)
        continue;
      if (!isDuplicatableBlock(*T, Opts.TailDupMaxSize))
        continue;
      // Do not duplicate loop headers into their latches (would peel the
      // loop endlessly under repeated application).
      bool IsSelfTarget = false;
      for (BasicBlock *S : T->successors())
        IsSelfTarget |= S == T;
      if (IsSelfTarget)
        continue;

      // Pick one predecessor that ends in an unconditional branch to T.
      BasicBlock *P = nullptr;
      for (BasicBlock *Cand : Preds[T]) {
        if (Cand == T)
          continue;
        if (Cand->hasTerminator() &&
            Cand->terminator().Op == Opcode::Br &&
            Cand->terminator().Succ0 == T) {
          P = Cand;
          break;
        }
      }
      if (!P)
        continue;

      // Splice a copy of T into P, replacing P's Br. P's terminator (and
      // thus its successor arity) changes; stale weights must go.
      P->Insts.pop_back();
      for (const Instruction &I : T->Insts)
        P->Insts.push_back(I);
      P->SuccWeights.clear();

      // Profile maintenance: P takes its proportional share of T's
      // outgoing edge weights; T keeps the remainder.
      if (P->HasCount && T->HasCount && T->Count > 0) {
        uint64_t OldCount = T->Count;
        double PShare = std::min(1.0, static_cast<double>(P->Count) /
                                          static_cast<double>(OldCount));
        P->SuccWeights.clear();
        unsigned NumSucc = P->numSuccessors();
        for (unsigned S = 0; S != NumSucc; ++S)
          P->SuccWeights.push_back(
              static_cast<uint64_t>(T->succWeight(S) * PShare));
        T->setCount(OldCount > P->Count ? OldCount - P->Count : 0);
        for (unsigned S = 0; S < T->SuccWeights.size(); ++S)
          T->SuccWeights[S] =
              static_cast<uint64_t>(T->SuccWeights[S] * (1.0 - PShare));
      }

      Progress = true;
      ++Changed;
      break; // CFG changed; recompute predecessors.
    }
    removeUnreachableBlocks(F);
  }
  return Changed;
}

} // namespace csspgo

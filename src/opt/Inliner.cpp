//===- opt/Inliner.cpp - Inlining --------------------------------------------===//

#include "opt/Inliner.h"

#include "ir/CFG.h"
#include "opt/InlineCost.h"

#include <algorithm>
#include <functional>
#include <set>

namespace csspgo {

InlinedBody inlineCallSite(Function &Caller, BasicBlock *BB, size_t CallIdx,
                           const Function &Callee) {
  InlinedBody Result;
  if (CallIdx >= BB->Insts.size())
    return Result;
  Instruction Call = BB->Insts[CallIdx];
  if (!Call.isCall() || Call.Callee != Callee.getName())
    return Result;
  if (&Callee == &Caller)
    return Result; // Direct recursion is never inlined here.

  // 1. Split off the continuation.
  BasicBlock *Cont = Caller.createBlock("inl.cont");
  Cont->Insts.assign(BB->Insts.begin() + static_cast<ptrdiff_t>(CallIdx) + 1,
                     BB->Insts.end());
  BB->Insts.erase(BB->Insts.begin() + static_cast<ptrdiff_t>(CallIdx),
                  BB->Insts.end());
  Cont->HasCount = BB->HasCount;
  Cont->Count = BB->Count;
  Cont->SuccWeights = std::move(BB->SuccWeights);
  BB->SuccWeights.clear();

  // 2. Register remapping: callee frame appended to the caller frame.
  RegId Offset = Caller.getNumRegs();
  Caller.ensureRegs(Offset + Callee.getNumRegs());
  auto RemapReg = [Offset](RegId R) {
    return R == InvalidReg ? InvalidReg : R + Offset;
  };
  auto RemapOp = [Offset](Operand O) {
    return O.isReg() ? Operand::reg(O.getReg() + Offset) : O;
  };

  // 3. Parameter setup in BB, attributed to the call site.
  for (unsigned P = 0; P != Callee.getNumParams(); ++P) {
    Instruction Mv;
    Mv.Op = Opcode::Mov;
    Mv.Dst = Offset + P;
    Mv.A = P < Call.Args.size() ? Call.Args[P] : Operand::imm(0);
    Mv.DL = Call.DL;
    Mv.OriginGuid = Call.OriginGuid;
    Mv.InlineStack = Call.InlineStack;
    BB->Insts.push_back(std::move(Mv));
  }

  // 4. The inline stack frame every cloned instruction gains.
  InlineFrame NewFrame;
  NewFrame.FuncGuid = Call.OriginGuid;
  NewFrame.CallLoc = Call.DL;
  NewFrame.CallProbeId = Call.ProbeId;
  std::vector<InlineFrame> Prefix = Call.InlineStack;
  Prefix.push_back(NewFrame);

  // 5. Clone callee blocks.
  for (const auto &CB : Callee.Blocks) {
    BasicBlock *NB = Caller.createBlock("inl");
    NB->clearProfile();
    Result.BlockMap[CB.get()] = NB;
    Result.ClonedOrder.push_back(NB);
  }
  for (const auto &CB : Callee.Blocks) {
    BasicBlock *NB = Result.BlockMap[CB.get()];
    for (const Instruction &CI : CB->Insts) {
      Instruction NI = CI;
      NI.Dst = RemapReg(NI.Dst);
      NI.A = RemapOp(NI.A);
      NI.B = RemapOp(NI.B);
      NI.C = RemapOp(NI.C);
      for (Operand &O : NI.Args)
        O = RemapOp(O);
      if (NI.Succ0)
        NI.Succ0 = Result.BlockMap.at(NI.Succ0);
      if (NI.Succ1)
        NI.Succ1 = Result.BlockMap.at(NI.Succ1);
      // Inline context: call-site prefix + the instruction's own stack.
      std::vector<InlineFrame> NewStack = Prefix;
      NewStack.insert(NewStack.end(), NI.InlineStack.begin(),
                      NI.InlineStack.end());
      NI.InlineStack = std::move(NewStack);
      // A tail call in the callee is no longer in tail position relative
      // to the caller's frame semantics once inlined into a non-tail
      // context; drop the flag (conservative and always correct).
      if (NI.isCall())
        NI.IsTailCall = false;

      if (NI.Op == Opcode::Ret) {
        // ret v  =>  [dst = mov v;] br cont
        if (Call.Dst != InvalidReg) {
          Instruction Mv;
          Mv.Op = Opcode::Mov;
          Mv.Dst = Call.Dst;
          Mv.A = NI.A;
          Mv.DL = Call.DL;
          Mv.OriginGuid = Call.OriginGuid;
          Mv.InlineStack = Call.InlineStack;
          NB->Insts.push_back(std::move(Mv));
        }
        Instruction Br;
        Br.Op = Opcode::Br;
        Br.Succ0 = Cont;
        Br.DL = Call.DL;
        Br.OriginGuid = Call.OriginGuid;
        Br.InlineStack = Call.InlineStack;
        NB->Insts.push_back(std::move(Br));
        continue;
      }
      NB->Insts.push_back(std::move(NI));
    }
  }

  // 6. BB branches into the cloned entry.
  Instruction Br;
  Br.Op = Opcode::Br;
  Br.Succ0 = Result.BlockMap.at(Callee.getEntry());
  Br.DL = Call.DL;
  Br.OriginGuid = Call.OriginGuid;
  Br.InlineStack = Call.InlineStack;
  BB->Insts.push_back(std::move(Br));
  if (BB->HasCount)
    BB->SuccWeights = {BB->Count};

  Result.Continuation = Cont;
  Result.Success = true;
  return Result;
}

namespace {

/// Scales the cloned body's profile from the callee's aggregate profile:
/// cloned.Count = callee.Count * CallsiteCount / CalleeEntryCount. This is
/// deliberately the context-insensitive approximation (Fig. 3a).
void scaleInlinedProfile(const Function &Callee, const InlinedBody &Body,
                         uint64_t CallsiteCount) {
  uint64_t EntryCount =
      Callee.getEntry()->HasCount ? Callee.getEntry()->Count : 0;
  for (const auto &CB : Callee.Blocks) {
    BasicBlock *NB = Body.BlockMap.at(CB.get());
    if (!CB->HasCount || !EntryCount) {
      if (CallsiteCount)
        NB->setCount(0);
      continue;
    }
    double Ratio =
        static_cast<double>(CallsiteCount) / static_cast<double>(EntryCount);
    NB->setCount(static_cast<uint64_t>(CB->Count * Ratio));
    NB->SuccWeights.clear();
    for (unsigned S = 0; S != CB->SuccWeights.size(); ++S)
      NB->SuccWeights.push_back(
          static_cast<uint64_t>(CB->SuccWeights[S] * Ratio));
  }
}

/// Post-order over the call graph (callees before callers).
std::vector<Function *> bottomUpOrder(Module &M) {
  std::vector<Function *> Order;
  std::set<Function *> Visited;
  std::function<void(Function *)> Visit = [&](Function *F) {
    if (!Visited.insert(F).second)
      return;
    for (auto &BB : F->Blocks)
      for (const Instruction &I : BB->Insts)
        if (I.isCall())
          if (Function *Callee = M.getFunction(I.Callee))
            Visit(Callee);
    Order.push_back(F);
  };
  for (auto &F : M.Functions)
    Visit(F.get());
  return Order;
}

} // namespace

InlinerStats runBottomUpInliner(Module &M, const InlineParams &Params) {
  InlinerStats Stats;
  for (unsigned Iter = 0; Iter != Params.MaxIterations; ++Iter) {
    unsigned InlinedThisRound = 0;
    for (Function *F : bottomUpOrder(M)) {
      bool Progress = true;
      while (Progress) {
        Progress = false;
        for (auto &BBPtr : F->Blocks) {
          BasicBlock *BB = BBPtr.get();
          for (size_t I = 0; I != BB->Insts.size(); ++I) {
            const Instruction &Inst = BB->Insts[I];
            if (!Inst.isCall())
              continue;
            // Tail calls already run frame-free (TCE); keeping them out of
            // line is the better size trade and preserves dispatch chains.
            if (Inst.IsTailCall)
              continue;
            Function *Callee = M.getFunction(Inst.Callee);
            if (!Callee || Callee == F)
              continue;
            uint64_t CallsiteCount = BB->HasCount ? BB->Count : 0;
            InlineDecision D = shouldInline(
                *F, *Callee, CallsiteCount, Params);
            if (!D.Inline)
              continue;
            InlinedBody Body = inlineCallSite(*F, BB, I, *Callee);
            if (!Body.Success)
              continue;
            if (BB->HasCount)
              scaleInlinedProfile(*Callee, Body, CallsiteCount);
            ++Stats.NumInlined;
            ++InlinedThisRound;
            Progress = true;
            break; // BB's instruction list changed; rescan.
          }
          if (Progress)
            break; // Block list changed; restart function scan.
        }
      }
    }
    if (!InlinedThisRound)
      break;
  }
  Stats.NumDeadFunctionsRemoved = removeDeadFunctions(M);
  return Stats;
}

unsigned removeDeadFunctions(Module &M) {
  unsigned Removed = 0;
  bool Progress = true;
  while (Progress) {
    Progress = false;
    std::set<std::string> Called;
    // Address-taken functions (dispatch-table entries) stay alive.
    for (const std::string &Entry : M.FunctionTable)
      Called.insert(Entry);
    for (auto &F : M.Functions)
      for (auto &BB : F->Blocks)
        for (const Instruction &I : BB->Insts)
          if (I.Op == Opcode::Call)
            Called.insert(I.Callee);
    for (auto &F : M.Functions) {
      if (F->IsEntryPoint || F->getName() == M.EntryFunction)
        continue;
      if (Called.count(F->getName()))
        continue;
      M.eraseFunction(F.get());
      ++Removed;
      Progress = true;
      break; // Iterator invalidated.
    }
  }
  return Removed;
}

} // namespace csspgo

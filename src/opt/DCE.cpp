//===- opt/DCE.cpp - Dead code elimination -----------------------------------===//
//
// Removes pure instructions whose destination register is never read
// anywhere in the function (iterated to a fixpoint) and unreachable blocks.
// Return-value registers and call results with side effects are preserved.
// Probes and counters are never dead: they are the correlation anchors.
//
//===----------------------------------------------------------------------===//

#include "ir/CFG.h"
#include "opt/PassManager.h"

#include <set>

namespace csspgo {

unsigned runDCE(Function &F, const OptOptions &Opts) {
  (void)Opts;
  unsigned Changed = 0;
  bool Progress = true;
  while (Progress) {
    Progress = false;
    // Registers read by any instruction.
    std::set<RegId> Read;
    std::vector<RegId> Reads;
    for (auto &BB : F.Blocks)
      for (const Instruction &I : BB->Insts) {
        Reads.clear();
        I.getUsedRegs(Reads);
        Read.insert(Reads.begin(), Reads.end());
      }
    for (auto &BB : F.Blocks) {
      auto &Insts = BB->Insts;
      for (size_t Idx = Insts.size(); Idx-- > 0;) {
        const Instruction &I = Insts[Idx];
        if (!isPureOp(I.Op))
          continue;
        if (I.Dst == InvalidReg || Read.count(I.Dst))
          continue;
        Insts.erase(Insts.begin() + static_cast<ptrdiff_t>(Idx));
        ++Changed;
        Progress = true;
      }
    }
  }
  Changed += removeUnreachableBlocks(F) ? 1 : 0;
  return Changed;
}

} // namespace csspgo

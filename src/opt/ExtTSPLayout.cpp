//===- opt/ExtTSPLayout.cpp - Ext-TSP block layout -----------------------------===//
//
// Profile-guided basic-block reordering using the Ext-TSP objective
// (Newell & Pupyrev, "Improved Basic Block Reordering", ref [15] of the
// paper). The objective and the greedy chain solver live in
// opt/ExtTSPCore.h, shared with the post-link optimizer, which runs the
// same scorer over reconstructed binary CFGs.
//
// The optimizer greedily merges chains of blocks, always keeping the
// entry chain first. With no profile, the pass keeps the natural order.
// This pass is where post-inline profile accuracy pays off: wrong edge
// weights (the Fig. 3a scaling artifact) place the wrong successor in the
// fallthrough position, which the simulator charges via taken-branch and
// i-cache costs.
//
//===----------------------------------------------------------------------===//

#include "codegen/Lowering.h"
#include "ir/CFG.h"
#include "opt/ExtTSPCore.h"
#include "opt/PassManager.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace csspgo {

namespace {

/// Byte size of a block when lowered (probes are free).
uint64_t blockSize(const BasicBlock &BB) {
  uint64_t Size = 0;
  for (const Instruction &I : BB.Insts)
    Size += machineSizeOf(I.Op);
  return Size;
}

} // namespace

/// Fast-path layout for big functions: greedy fallthrough chaining in the
/// spirit of Pettis-Hansen. Start chains at the hottest unplaced blocks and
/// extend along the heaviest outgoing edge.
static std::vector<unsigned> greedyChainOrder(Function &F) {
  unsigned N = static_cast<unsigned>(F.Blocks.size());
  std::vector<bool> Placed(N, false);
  std::vector<unsigned> ByHotness(N);
  for (unsigned I = 0; I != N; ++I)
    ByHotness[I] = I;
  std::stable_sort(ByHotness.begin(), ByHotness.end(),
                   [&F](unsigned A, unsigned B) {
                     return F.Blocks[A]->Count > F.Blocks[B]->Count;
                   });

  std::vector<unsigned> Order;
  auto Extend = [&](unsigned Start) {
    unsigned Cur = Start;
    while (true) {
      Placed[Cur] = true;
      Order.push_back(Cur);
      BasicBlock *B = F.Blocks[Cur].get();
      auto Succs = B->successors();
      unsigned Best = N;
      uint64_t BestW = 0;
      for (unsigned S = 0; S != Succs.size(); ++S) {
        unsigned Idx = F.blockIndex(Succs[S]);
        if (Placed[Idx])
          continue;
        uint64_t W = B->succWeight(S);
        if (Best == N || W > BestW) {
          Best = Idx;
          BestW = W;
        }
      }
      if (Best == N)
        return;
      Cur = Best;
    }
  };
  Extend(0); // Entry chain first.
  for (unsigned I : ByHotness)
    if (!Placed[I])
      Extend(I);
  return Order;
}

unsigned runExtTSPLayout(Function &F, const OptOptions &Opts) {
  (void)Opts;
  if (F.Blocks.size() < 3)
    return 0;
  // Without profile annotation, keep the natural (source) order.
  if (!F.getEntry()->HasCount)
    return 0;

  // Full Ext-TSP is quadratic in chains; fall back to greedy fallthrough
  // chaining for very large functions.
  if (F.Blocks.size() > 64) {
    std::vector<unsigned> Order = greedyChainOrder(F);
    bool Identity = true;
    for (unsigned I = 0; I != Order.size(); ++I)
      Identity &= Order[I] == I;
    if (Identity)
      return 0;
    std::vector<std::unique_ptr<BasicBlock>> NewOrder;
    NewOrder.reserve(F.Blocks.size());
    for (unsigned I : Order)
      NewOrder.push_back(std::move(F.Blocks[I]));
    F.Blocks = std::move(NewOrder);
    return 1;
  }

  std::vector<uint64_t> Sizes;
  std::vector<exttsp::Edge> Edges;
  for (unsigned I = 0; I != F.Blocks.size(); ++I) {
    BasicBlock *B = F.Blocks[I].get();
    Sizes.push_back(blockSize(*B));
    auto Succs = B->successors();
    for (unsigned S = 0; S != Succs.size(); ++S) {
      exttsp::Edge E;
      E.Src = I;
      E.Dst = F.blockIndex(Succs[S]);
      E.Weight = B->HasCount ? static_cast<double>(B->succWeight(S)) : 0.0;
      Edges.push_back(E);
    }
  }

  exttsp::Solver Solver(std::move(Sizes), std::move(Edges), 0);
  std::vector<unsigned> Order = Solver.run();
  assert(Order.size() == F.Blocks.size() && "layout must be a permutation");
  if (Order.front() != 0)
    return 0; // Entry must stay first; bail out defensively.

  bool Identity = true;
  for (unsigned I = 0; I != Order.size(); ++I)
    Identity &= Order[I] == I;
  if (Identity)
    return 0;

  std::vector<std::unique_ptr<BasicBlock>> NewOrder;
  NewOrder.reserve(F.Blocks.size());
  for (unsigned I : Order)
    NewOrder.push_back(std::move(F.Blocks[I]));
  F.Blocks = std::move(NewOrder);
  return 1;
}

} // namespace csspgo

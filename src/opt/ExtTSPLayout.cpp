//===- opt/ExtTSPLayout.cpp - Ext-TSP block layout -----------------------------===//
//
// Profile-guided basic-block reordering using the Ext-TSP objective
// (Newell & Pupyrev, "Improved Basic Block Reordering", ref [15] of the
// paper). The score of a layout sums, over CFG edges (s -> t) with weight
// w:
//   - w               if t is placed directly after s (fallthrough);
//   - w * 0.1 * (1 - d / 1024)  for short forward jumps of distance d;
//   - w * 0.1 * (1 - d / 640)   for short backward jumps.
//
// The optimizer greedily merges chains of blocks, always keeping the
// entry chain first. With no profile, the pass keeps the natural order.
// This pass is where post-inline profile accuracy pays off: wrong edge
// weights (the Fig. 3a scaling artifact) place the wrong successor in the
// fallthrough position, which the simulator charges via taken-branch and
// i-cache costs.
//
//===----------------------------------------------------------------------===//

#include "codegen/Lowering.h"
#include "ir/CFG.h"
#include "opt/PassManager.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace csspgo {

namespace {

constexpr double ForwardWeight = 0.1;
constexpr double BackwardWeight = 0.1;
constexpr double ForwardDistance = 1024;
constexpr double BackwardDistance = 640;

struct Edge {
  unsigned Src = 0;
  unsigned Dst = 0;
  double Weight = 0;
};

/// Byte size of a block when lowered (probes are free).
uint64_t blockSize(const BasicBlock &BB) {
  uint64_t Size = 0;
  for (const Instruction &I : BB.Insts)
    Size += machineSizeOf(I.Op);
  return Size;
}

struct Chain {
  std::vector<unsigned> Blocks;
  uint64_t Size = 0;
  bool ContainsEntry = false;
};

class ExtTSP {
public:
  ExtTSP(std::vector<uint64_t> Sizes, std::vector<Edge> Edges,
         unsigned EntryIdx)
      : Sizes(std::move(Sizes)), Edges(std::move(Edges)) {
    for (unsigned I = 0; I != this->Sizes.size(); ++I) {
      Chain C;
      C.Blocks = {I};
      C.Size = this->Sizes[I];
      C.ContainsEntry = I == EntryIdx;
      Chains.push_back(std::move(C));
    }
  }

  std::vector<unsigned> run();

private:
  double scoreOfOrder(const std::vector<unsigned> &Order) const;
  double scoreMerge(const Chain &A, const Chain &B) const;

  std::vector<uint64_t> Sizes;
  std::vector<Edge> Edges;
  std::vector<Chain> Chains;
};

double ExtTSP::scoreOfOrder(const std::vector<unsigned> &Order) const {
  // Offsets of each block in the tentative layout.
  std::map<unsigned, uint64_t> Offset;
  std::map<unsigned, uint64_t> EndOffset;
  uint64_t Pos = 0;
  for (unsigned B : Order) {
    Offset[B] = Pos;
    Pos += Sizes[B];
    EndOffset[B] = Pos;
  }
  double Score = 0;
  for (const Edge &E : Edges) {
    auto SrcIt = EndOffset.find(E.Src);
    auto DstIt = Offset.find(E.Dst);
    if (SrcIt == EndOffset.end() || DstIt == Offset.end())
      continue;
    uint64_t SrcEnd = SrcIt->second;
    uint64_t DstBegin = DstIt->second;
    if (SrcEnd == DstBegin) {
      Score += E.Weight;
    } else if (DstBegin > SrcEnd) {
      double D = static_cast<double>(DstBegin - SrcEnd);
      if (D < ForwardDistance)
        Score += E.Weight * ForwardWeight * (1.0 - D / ForwardDistance);
    } else {
      double D = static_cast<double>(SrcEnd - DstBegin);
      if (D < BackwardDistance)
        Score += E.Weight * BackwardWeight * (1.0 - D / BackwardDistance);
    }
  }
  return Score;
}

double ExtTSP::scoreMerge(const Chain &A, const Chain &B) const {
  std::vector<unsigned> Order = A.Blocks;
  Order.insert(Order.end(), B.Blocks.begin(), B.Blocks.end());
  return scoreOfOrder(Order);
}

std::vector<unsigned> ExtTSP::run() {
  // Greedy chain merging: pick the pair/orientation with the best gain.
  while (Chains.size() > 1) {
    double BestGain = 0;
    size_t BestA = 0, BestB = 0;
    bool Found = false;
    for (size_t I = 0; I != Chains.size(); ++I) {
      for (size_t J = 0; J != Chains.size(); ++J) {
        if (I == J)
          continue;
        // The entry chain can only be extended at its tail.
        if (Chains[J].ContainsEntry)
          continue;
        double Base =
            scoreOfOrder(Chains[I].Blocks) + scoreOfOrder(Chains[J].Blocks);
        double Gain = scoreMerge(Chains[I], Chains[J]) - Base;
        if (!Found || Gain > BestGain) {
          BestGain = Gain;
          BestA = I;
          BestB = J;
          Found = true;
        }
      }
    }
    if (!Found)
      break;
    // Merge B into A.
    Chain &A = Chains[BestA];
    Chain &B = Chains[BestB];
    A.Blocks.insert(A.Blocks.end(), B.Blocks.begin(), B.Blocks.end());
    A.Size += B.Size;
    A.ContainsEntry |= B.ContainsEntry;
    Chains.erase(Chains.begin() + static_cast<ptrdiff_t>(BestB));
  }

  // Entry chain first, then remaining chains by decreasing hotness proxy
  // (we keep insertion order — remaining chains are cold).
  std::stable_sort(Chains.begin(), Chains.end(),
                   [](const Chain &X, const Chain &Y) {
                     return X.ContainsEntry > Y.ContainsEntry;
                   });
  std::vector<unsigned> Order;
  for (const Chain &C : Chains)
    Order.insert(Order.end(), C.Blocks.begin(), C.Blocks.end());
  return Order;
}

} // namespace

/// Fast-path layout for big functions: greedy fallthrough chaining in the
/// spirit of Pettis-Hansen. Start chains at the hottest unplaced blocks and
/// extend along the heaviest outgoing edge.
static std::vector<unsigned> greedyChainOrder(Function &F) {
  unsigned N = static_cast<unsigned>(F.Blocks.size());
  std::vector<bool> Placed(N, false);
  std::vector<unsigned> ByHotness(N);
  for (unsigned I = 0; I != N; ++I)
    ByHotness[I] = I;
  std::stable_sort(ByHotness.begin(), ByHotness.end(),
                   [&F](unsigned A, unsigned B) {
                     return F.Blocks[A]->Count > F.Blocks[B]->Count;
                   });

  std::vector<unsigned> Order;
  auto Extend = [&](unsigned Start) {
    unsigned Cur = Start;
    while (true) {
      Placed[Cur] = true;
      Order.push_back(Cur);
      BasicBlock *B = F.Blocks[Cur].get();
      auto Succs = B->successors();
      unsigned Best = N;
      uint64_t BestW = 0;
      for (unsigned S = 0; S != Succs.size(); ++S) {
        unsigned Idx = F.blockIndex(Succs[S]);
        if (Placed[Idx])
          continue;
        uint64_t W = B->succWeight(S);
        if (Best == N || W > BestW) {
          Best = Idx;
          BestW = W;
        }
      }
      if (Best == N)
        return;
      Cur = Best;
    }
  };
  Extend(0); // Entry chain first.
  for (unsigned I : ByHotness)
    if (!Placed[I])
      Extend(I);
  return Order;
}

unsigned runExtTSPLayout(Function &F, const OptOptions &Opts) {
  (void)Opts;
  if (F.Blocks.size() < 3)
    return 0;
  // Without profile annotation, keep the natural (source) order.
  if (!F.getEntry()->HasCount)
    return 0;

  // Full Ext-TSP is quadratic in chains; fall back to greedy fallthrough
  // chaining for very large functions.
  if (F.Blocks.size() > 64) {
    std::vector<unsigned> Order = greedyChainOrder(F);
    bool Identity = true;
    for (unsigned I = 0; I != Order.size(); ++I)
      Identity &= Order[I] == I;
    if (Identity)
      return 0;
    std::vector<std::unique_ptr<BasicBlock>> NewOrder;
    NewOrder.reserve(F.Blocks.size());
    for (unsigned I : Order)
      NewOrder.push_back(std::move(F.Blocks[I]));
    F.Blocks = std::move(NewOrder);
    return 1;
  }

  std::vector<uint64_t> Sizes;
  std::vector<Edge> Edges;
  for (unsigned I = 0; I != F.Blocks.size(); ++I) {
    BasicBlock *B = F.Blocks[I].get();
    Sizes.push_back(blockSize(*B));
    auto Succs = B->successors();
    for (unsigned S = 0; S != Succs.size(); ++S) {
      Edge E;
      E.Src = I;
      E.Dst = F.blockIndex(Succs[S]);
      E.Weight = B->HasCount ? static_cast<double>(B->succWeight(S)) : 0.0;
      Edges.push_back(E);
    }
  }

  ExtTSP Solver(std::move(Sizes), std::move(Edges), 0);
  std::vector<unsigned> Order = Solver.run();
  assert(Order.size() == F.Blocks.size() && "layout must be a permutation");
  if (Order.front() != 0)
    return 0; // Entry must stay first; bail out defensively.

  bool Identity = true;
  for (unsigned I = 0; I != Order.size(); ++I)
    Identity &= Order[I] == I;
  if (Identity)
    return 0;

  std::vector<std::unique_ptr<BasicBlock>> NewOrder;
  NewOrder.reserve(F.Blocks.size());
  for (unsigned I : Order)
    NewOrder.push_back(std::move(F.Blocks[I]));
  F.Blocks = std::move(NewOrder);
  return 1;
}

} // namespace csspgo

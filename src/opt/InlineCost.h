//===- opt/InlineCost.h - Inline profitability -------------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Inline profitability for the bottom-up inliner: a static size estimate
/// of the callee against size thresholds, with a bonus for hot call sites
/// when profile counts are annotated. Note the contrast with the
/// pre-inliner (preinline/), which uses *measured* post-optimization sizes
/// extracted from the profiled binary (paper Algorithm 3) instead of this
/// early-IR estimate.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_OPT_INLINECOST_H
#define CSSPGO_OPT_INLINECOST_H

#include "ir/Module.h"
#include "opt/Inliner.h"

namespace csspgo {

struct InlineDecision {
  bool Inline = false;
  const char *Reason = "";
};

/// Static size estimate of \p F in "cost units" (code instructions; calls
/// weighted heavier).
unsigned estimateFunctionSize(const Function &F);

/// Decides whether to inline \p Callee into \p Caller at a call site with
/// profile count \p CallsiteCount (0 when unknown).
InlineDecision shouldInline(const Function &Caller, const Function &Callee,
                            uint64_t CallsiteCount,
                            const InlineParams &Params);

} // namespace csspgo

#endif // CSSPGO_OPT_INLINECOST_H

//===- opt/BlockTiming.h - Measured per-block timing ------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-block timing measured from a core-instruction trace, keyed by the
/// block's pseudo-probe (function guid, probe id). Frequency profiles say
/// how *often* a block ran; this says how *expensive* it was — executed
/// count, accumulated unperturbed cycles, and conditional-branch
/// mispredicts attributed to the block. The timing-aware transform gates
/// (LoopUnroll, IfConvert) consume it through OptOptions::Timing; the
/// TraceDecoder produces it. It lives at the opt layer because the passes
/// sit below the trace subsystem in the library layering.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_OPT_BLOCKTIMING_H
#define CSSPGO_OPT_BLOCKTIMING_H

#include "ir/BasicBlock.h"

#include <cstdint>
#include <map>
#include <utility>

namespace csspgo {

/// Timing of one probed block.
struct BlockTimingStats {
  uint64_t Executed = 0;   ///< Times the block's probe was crossed.
  uint64_t Cycles = 0;     ///< Unperturbed cycles attributed to the block.
  uint64_t Mispredicts = 0; ///< Conditional mispredicts in the block.
};

/// Measured timing for every probed block the trace touched.
struct TimingProfile {
  std::map<std::pair<uint64_t, uint32_t>, BlockTimingStats> Blocks;

  /// Returns the stats for (guid, probe id), or nullptr when the trace
  /// never crossed that block.
  const BlockTimingStats *find(uint64_t Guid, uint32_t ProbeId) const {
    auto It = Blocks.find({Guid, ProbeId});
    return It == Blocks.end() ? nullptr : &It->second;
  }

  bool empty() const { return Blocks.empty(); }
};

/// The timing entry covering \p BB, looked up through the last
/// pseudo-probe in the block: the decoder attributes an instruction's
/// cycles to the most recently crossed probe, so a block's terminator
/// (the instruction the transform gates care about) is covered by its
/// last probe. Null when \p Timing is null, the pipeline runs probe-free,
/// or the trace never crossed the block.
inline const BlockTimingStats *blockTiming(const TimingProfile *Timing,
                                           const BasicBlock &BB) {
  if (!Timing)
    return nullptr;
  const Instruction *Probe = nullptr;
  for (const Instruction &I : BB.Insts)
    if (I.isProbe())
      Probe = &I;
  if (!Probe)
    return nullptr;
  return Timing->find(Probe->OriginGuid, Probe->ProbeId);
}

} // namespace csspgo

#endif // CSSPGO_OPT_BLOCKTIMING_H

//===- opt/IfConvert.cpp - If-conversion ------------------------------------===//
//
// Converts small diamonds/triangles into straight-line selects:
//
//   B: condbr c, T, F        B: tT.. = <T's ops>   (fresh temps)
//   T: x = ...; br J    =>      tF.. = <F's ops>
//   F: x = ...; br J             x = select c, tT, tF
//   J: ...                       br J
//
// Anchor interaction (§III-A): the arms' pseudo-probes disappear with the
// arms. Under ProbeBarrier::Weak — the paper's production tuning — the
// conversion is *unblocked* ("we fine-tune a few critical optimizations,
// including if-convert ... to be unblocked by pseudo-probe") and the arm
// probes are simply dropped; the block counts they carried are no longer
// individually observable, a small deliberate accuracy loss in exchange
// for zero overhead. Under ProbeBarrier::Strong the presence of a probe in
// an arm blocks the conversion. Traditional instrumentation counters
// always block it.
//
// Profile maintenance: B keeps its count; the arms vanish.
//
//===----------------------------------------------------------------------===//

#include "ir/CFG.h"
#include "opt/PassManager.h"

#include <set>

namespace csspgo {

namespace {

/// True if every non-probe instruction in \p Arm is a pure op and the arm
/// ends with an unconditional branch to \p Join.
bool isConvertibleArm(const BasicBlock &Arm, const BasicBlock *Join,
                      unsigned MaxSize) {
  if (!Arm.hasTerminator())
    return false;
  const Instruction &T = Arm.terminator();
  if (T.Op != Opcode::Br || T.Succ0 != Join)
    return false;
  unsigned Real = 0;
  for (const Instruction &I : Arm.Insts) {
    if (I.isProbe())
      continue;
    if (I.isTerminator())
      break;
    if (!isPureOp(I.Op) || I.Dst == InvalidReg)
      return false;
    ++Real;
  }
  return Real <= MaxSize;
}

bool armHasAnchor(const BasicBlock &Arm) {
  for (const Instruction &I : Arm.Insts)
    if (I.isIntrinsic())
      return true;
  return false;
}

bool armHasCounter(const BasicBlock &Arm) {
  for (const Instruction &I : Arm.Insts)
    if (I.isCounter())
      return true;
  return false;
}

/// Checks the no-interference condition: no instruction in either arm reads
/// a register written by any (earlier or later) arm instruction. This keeps
/// the hoisted computation order-independent.
bool armsInterfere(const BasicBlock *T, const BasicBlock *F) {
  std::set<RegId> Writes;
  auto CollectWrites = [&Writes](const BasicBlock *Arm) {
    if (!Arm)
      return;
    for (const Instruction &I : Arm->Insts)
      if (!I.isTerminator() && !I.isProbe() && I.Dst != InvalidReg)
        Writes.insert(I.Dst);
  };
  CollectWrites(T);
  CollectWrites(F);
  std::vector<RegId> Reads;
  auto CheckReads = [&](const BasicBlock *Arm) {
    if (!Arm)
      return false;
    for (const Instruction &I : Arm->Insts) {
      if (I.isTerminator() || I.isProbe())
        continue;
      Reads.clear();
      I.getUsedRegs(Reads);
      for (RegId R : Reads)
        if (Writes.count(R))
          return true;
    }
    return false;
  };
  return CheckReads(T) || CheckReads(F);
}

} // namespace

static bool tryConvertAt(Function &F, BasicBlock *B, const OptOptions &Opts,
                         std::map<BasicBlock *, std::vector<BasicBlock *>>
                             &Preds) {
  if (!B->hasTerminator())
    return false;
  Instruction Term = B->terminator();
  if (Term.Op != Opcode::CondBr || Term.Succ0 == Term.Succ1)
    return false;
  BasicBlock *T = Term.Succ0;
  BasicBlock *FB = Term.Succ1;
  if (T == B || FB == B)
    return false;
  // Both arms must be single-predecessor and converge on the same join.
  if (Preds[T].size() != 1 || Preds[FB].size() != 1)
    return false;
  if (!T->hasTerminator() || T->terminator().Op != Opcode::Br)
    return false;
  BasicBlock *Join = T->terminator().Succ0;
  if (Join == T || Join == FB)
    return false;
  if (!isConvertibleArm(*T, Join, Opts.IfConvertMaxArmSize) ||
      !isConvertibleArm(*FB, Join, Opts.IfConvertMaxArmSize))
    return false;
  // Barrier policy.
  if (armHasCounter(*T) || armHasCounter(*FB))
    return false; // Instrumentation always blocks.
  if (Opts.Barrier == ProbeBarrier::Strong &&
      (armHasAnchor(*T) || armHasAnchor(*FB)))
    return false;
  if (armsInterfere(T, FB))
    return false;
  // Timing gate: veto conversions whose measured cost balance is
  // unfavorable. Keeping the branch burns the measured mispredict cycles
  // plus the eliminated control flow; converting additionally executes,
  // on every pass, the arm the branch would have skipped (its measured
  // per-execution latency, minus the join jump that no longer exists)
  // plus the select. The comparison needs measurements for the branch
  // block *and both arms* — when the arms carry no timing, the profiling
  // binary converted this diamond itself (dropping the arm probes), so
  // the branch block's stats describe the converted form and say nothing
  // about the branchy one; vetoing on them would be circular, so the
  // frequency-only decision stands.
  const BlockTimingStats *BS = blockTiming(Opts.Timing, *B);
  const BlockTimingStats *TS = blockTiming(Opts.Timing, *T);
  const BlockTimingStats *FS = blockTiming(Opts.Timing, *FB);
  if (BS && TS && FS && BS->Executed && TS->Executed && FS->Executed) {
    uint64_t Jump = Opts.IfConvertAssumedBranchCycles;
    auto SkippedLat = [Jump](const BlockTimingStats *S) {
      uint64_t Lat = S->Cycles / S->Executed;
      return Lat > Jump ? Lat - Jump : 0;
    };
    uint64_t Runs = TS->Executed + FS->Executed;
    // + Runs: one select per execution.
    uint64_t Added = TS->Executed * SkippedLat(FS) +
                     FS->Executed * SkippedLat(TS) + Runs;
    uint64_t Saved = BS->Mispredicts * Opts.IfConvertAssumedMispredictCycles +
                     Runs * Jump;
    if (Added > Saved)
      return false;
  }
  // The select reads the condition after both arms execute; arms must not
  // clobber it.
  if (Term.A.isReg()) {
    for (BasicBlock *Arm : {T, FB})
      for (const Instruction &I : Arm->Insts)
        if (!I.isTerminator() && !I.isProbe() && I.Dst == Term.A.getReg())
          return false;
  }

  // Hoist both arms into B with fresh temporaries, then select.
  Operand Cond = Term.A;
  B->Insts.pop_back(); // Drop the CondBr.

  std::map<RegId, Operand> TVal, FVal;
  auto Hoist = [&F, B](BasicBlock *Arm, std::map<RegId, Operand> &Vals) {
    for (Instruction &I : Arm->Insts) {
      if (I.isTerminator() || I.isProbe())
        continue;
      RegId Orig = I.Dst;
      RegId Tmp = F.allocReg();
      Instruction Copy = I;
      Copy.Dst = Tmp;
      B->Insts.push_back(std::move(Copy));
      Vals[Orig] = Operand::reg(Tmp);
    }
  };
  Hoist(T, TVal);
  Hoist(FB, FVal);

  // One select per register written by either arm.
  std::set<RegId> AllDsts;
  for (auto &[R, V] : TVal)
    AllDsts.insert(R);
  for (auto &[R, V] : FVal)
    AllDsts.insert(R);
  for (RegId R : AllDsts) {
    Instruction Sel;
    Sel.Op = Opcode::Select;
    Sel.Dst = R;
    Sel.A = Cond;
    Sel.B = TVal.count(R) ? TVal[R] : Operand::reg(R);
    Sel.C = FVal.count(R) ? FVal[R] : Operand::reg(R);
    Sel.DL = Term.DL;
    Sel.OriginGuid = Term.OriginGuid;
    Sel.InlineStack = Term.InlineStack;
    B->Insts.push_back(std::move(Sel));
  }

  // Branch to the join.
  Instruction Br;
  Br.Op = Opcode::Br;
  Br.Succ0 = Join;
  Br.DL = Term.DL;
  Br.OriginGuid = Term.OriginGuid;
  Br.InlineStack = Term.InlineStack;
  B->Insts.push_back(std::move(Br));
  B->SuccWeights.clear();
  if (B->HasCount)
    B->SuccWeights = {B->Count};

  // The arms become unreachable; collect them now.
  removeUnreachableBlocks(F);
  return true;
}

unsigned runIfConvert(Function &F, const OptOptions &Opts) {
  unsigned Changed = 0;
  bool Progress = true;
  while (Progress) {
    Progress = false;
    auto Preds = computePredecessors(F);
    for (auto &BBPtr : F.Blocks) {
      if (tryConvertAt(F, BBPtr.get(), Opts, Preds)) {
        ++Changed;
        Progress = true;
        break; // Block list mutated; restart with fresh preds.
      }
    }
  }
  return Changed;
}

} // namespace csspgo

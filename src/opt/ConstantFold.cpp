//===- opt/ConstantFold.cpp - Local constant folding --------------------------===//
//
// Block-local constant propagation and folding: tracks registers holding
// known constants within a block (conservatively reset at block entry),
// folds pure operations whose operands are all constant into immediate
// moves, and substitutes constant registers into operand positions. The
// terminator benefits too: a CondBr whose condition folds becomes foldable
// by SimplifyCFG.
//
//===----------------------------------------------------------------------===//

#include "opt/PassManager.h"

#include "ir/GuestArith.h"

#include <map>
#include <optional>

namespace csspgo {

namespace {

// Folding must agree bit-for-bit with what the interpreters would have
// computed at run time, so it evaluates with the same guest semantics
// (wraparound, total division) instead of raw host signed ops.
std::optional<int64_t> foldBinary(Opcode Op, int64_t A, int64_t B) {
  switch (Op) {
  case Opcode::Add:
    return guestAdd(A, B);
  case Opcode::Sub:
    return guestSub(A, B);
  case Opcode::Mul:
    return guestMul(A, B);
  case Opcode::Div:
    return guestDiv(A, B);
  case Opcode::Mod:
    return guestMod(A, B);
  case Opcode::And:
    return A & B;
  case Opcode::Or:
    return A | B;
  case Opcode::Xor:
    return A ^ B;
  case Opcode::Shl:
    return guestShl(A, B);
  case Opcode::Shr:
    return guestShr(A, B);
  case Opcode::CmpEQ:
    return A == B;
  case Opcode::CmpNE:
    return A != B;
  case Opcode::CmpLT:
    return A < B;
  case Opcode::CmpLE:
    return A <= B;
  case Opcode::CmpGT:
    return A > B;
  case Opcode::CmpGE:
    return A >= B;
  default:
    return std::nullopt;
  }
}

} // namespace

unsigned runConstantFold(Function &F, const OptOptions &Opts) {
  (void)Opts;
  unsigned Changed = 0;
  for (auto &BB : F.Blocks) {
    std::map<RegId, int64_t> Known;
    for (Instruction &I : BB->Insts) {
      // Substitute known-constant registers into operands.
      auto Subst = [&Known, &Changed](Operand &O) {
        if (!O.isReg())
          return;
        auto It = Known.find(O.getReg());
        if (It == Known.end())
          return;
        O = Operand::imm(It->second);
        ++Changed;
      };
      Subst(I.A);
      Subst(I.B);
      Subst(I.C);
      for (Operand &O : I.Args)
        Subst(O);

      // Fold.
      if (I.Op == Opcode::Mov && I.A.isImm()) {
        Known[I.Dst] = I.A.getImm();
        continue;
      }
      if (isPureOp(I.Op) && I.Op != Opcode::Mov && I.Op != Opcode::Select &&
          I.A.isImm() && I.B.isImm()) {
        if (auto V = foldBinary(I.Op, I.A.getImm(), I.B.getImm())) {
          I.Op = Opcode::Mov;
          I.A = Operand::imm(*V);
          I.B = Operand();
          Known[I.Dst] = *V;
          ++Changed;
          continue;
        }
      }
      if (I.Op == Opcode::Select && I.A.isImm()) {
        Operand Chosen = I.A.getImm() ? I.B : I.C;
        I.Op = Opcode::Mov;
        I.A = Chosen;
        I.B = I.C = Operand();
        if (I.A.isImm())
          Known[I.Dst] = I.A.getImm();
        else
          Known.erase(I.Dst);
        ++Changed;
        continue;
      }
      // Any other write invalidates the tracked constant.
      if (I.Dst != InvalidReg)
        Known.erase(I.Dst);
    }
  }
  return Changed;
}

} // namespace csspgo

//===- opt/PassManager.cpp - Optimization pipeline -------------------------===//

#include "opt/PassManager.h"

#include "ir/Verifier.h"

namespace csspgo {

PassStats runMidLevelPipeline(Module &M, const OptOptions &Opts) {
  PassStats Stats;
  for (auto &F : M.Functions) {
    // Bounded fixpoint: each round can expose new opportunities (constant
    // folding after threading, dead code after if-conversion, ...).
    for (int Round = 0; Round != 3; ++Round) {
      unsigned Changed = 0;
      if (Opts.EnableConstantFold)
        Changed += runConstantFold(*F, Opts);
      if (Opts.EnableSimplifyCFG)
        Changed += runSimplifyCFG(*F, Opts);
      if (Opts.EnableJumpThreading)
        Changed += runJumpThreading(*F, Opts);
      if (Opts.EnableIfConvert)
        Changed += runIfConvert(*F, Opts);
      if (Round == 0 && Opts.EnableLoopUnroll)
        Changed += runLoopUnroll(*F, Opts);
      if (Opts.EnableCodeMotion)
        Changed += runCodeMotion(*F, Opts);
      if (Opts.EnableTailMerge)
        Changed += runTailMerge(*F, Opts);
      if (Opts.EnableDCE)
        Changed += runDCE(*F, Opts);
      if (Opts.EnableSimplifyCFG)
        Changed += runSimplifyCFG(*F, Opts);
      Stats.record("midlevel." + F->getName(), Changed);
      if (!Changed)
        break;
    }
  }
  verifyOrDie(M, "after mid-level pipeline");
  return Stats;
}

PassStats runLatePipeline(Module &M, const OptOptions &Opts) {
  PassStats Stats;
  for (auto &F : M.Functions) {
    if (Opts.EnableFunctionSplit)
      Stats.record("split." + F->getName(), runFunctionSplit(*F, Opts));
    if (Opts.EnableLayout)
      Stats.record("layout." + F->getName(), runExtTSPLayout(*F, Opts));
  }
  verifyOrDie(M, "after late pipeline");
  return Stats;
}

} // namespace csspgo

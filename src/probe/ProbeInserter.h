//===- probe/ProbeInserter.h - Pseudo-instrumentation ----------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pseudo-probe insertion (paper §III-A). Runs at the very start of the
/// pipeline, before any aggressive transformation, and inserts
/// - one block probe at the head of every basic block, and
/// - a call-site probe id on every call instruction,
/// then computes and stores the function's CFG checksum.
///
/// The same pass doubles as the traditional-instrumentation inserter: in
/// Instr mode it emits InstrProfIncr counter increments instead (which do
/// lower to machine code and act as strong optimization barriers).
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_PROBE_PROBEINSERTER_H
#define CSSPGO_PROBE_PROBEINSERTER_H

#include "ir/Module.h"

namespace csspgo {

/// What kind of correlation anchors to insert.
enum class AnchorKind {
  PseudoProbe, ///< CSSPGO: intrinsic, materializes as metadata only.
  InstrCounter ///< Instrumentation PGO: real counter increments.
};

/// Inserts anchors into every function of \p M and computes CFG checksums.
/// Idempotent: functions that already carry anchors are skipped.
void insertProbes(Module &M, AnchorKind Kind);

/// Strips all probes/counters (used to measure probe-free baselines).
void stripProbes(Module &M);

} // namespace csspgo

#endif // CSSPGO_PROBE_PROBEINSERTER_H

//===- probe/ProbeInserter.cpp - Pseudo-instrumentation -------------------===//

#include "probe/ProbeInserter.h"

#include "ir/Checksum.h"

namespace csspgo {

static void insertIntoFunction(Function &F, AnchorKind Kind) {
  if (F.HasProbes || F.NumCounters)
    return;

  uint32_t NextId = 1;
  for (auto &BB : F.Blocks) {
    // Block anchor at the head of the block.
    Instruction Probe;
    Probe.Op = Kind == AnchorKind::PseudoProbe ? Opcode::PseudoProbe
                                               : Opcode::InstrProfIncr;
    Probe.ProbeId = NextId++;
    Probe.OriginGuid = F.getGuid();
    // Anchors inherit the line of the first real instruction so the
    // line table stays sensible.
    if (!BB->Insts.empty())
      Probe.DL = BB->Insts.front().DL;
    BB->Insts.insert(BB->Insts.begin(), Probe);

    // Call-site ids: probes in probe mode, value-site ids in counter mode
    // (the instrumentation runtime records indirect-call targets per
    // site). Counter-mode call sites use a separate numbering so block
    // counter ids stay contiguous.
    if (Kind == AnchorKind::PseudoProbe)
      for (Instruction &I : BB->Insts)
        if (I.isCall() && I.ProbeId == 0 && I.OriginGuid == F.getGuid())
          I.ProbeId = NextId++;
  }

  if (Kind == AnchorKind::InstrCounter) {
    uint32_t NextSite = 1;
    for (auto &BB : F.Blocks)
      for (Instruction &I : BB->Insts)
        if (I.isCall() && I.ProbeId == 0 && I.OriginGuid == F.getGuid())
          I.ProbeId = NextSite++;
  }

  F.NextProbeId = NextId;
  if (Kind == AnchorKind::PseudoProbe) {
    F.HasProbes = true;
    F.ProbeCFGChecksum = computeCFGChecksum(F);
  } else {
    F.NumCounters = NextId - 1;
  }
}

void insertProbes(Module &M, AnchorKind Kind) {
  for (auto &F : M.Functions)
    insertIntoFunction(*F, Kind);
}

void stripProbes(Module &M) {
  for (auto &F : M.Functions) {
    for (auto &BB : F->Blocks) {
      std::vector<Instruction> Kept;
      Kept.reserve(BB->Insts.size());
      for (Instruction &I : BB->Insts) {
        if (I.isIntrinsic())
          continue;
        if (I.isCall())
          I.ProbeId = 0;
        Kept.push_back(std::move(I));
      }
      BB->Insts = std::move(Kept);
    }
    F->HasProbes = false;
    F->NumCounters = 0;
    F->NextProbeId = 1;
  }
}

} // namespace csspgo

//===- probe/ProbeTable.cpp - Probe descriptor table ----------------------===//

#include "probe/ProbeTable.h"

namespace csspgo {

ProbeTable ProbeTable::fromModule(const Module &M) {
  ProbeTable T;
  for (const auto &F : M.Functions) {
    if (!F->HasProbes)
      continue;
    ProbeDescriptor D;
    D.FuncName = F->getName();
    D.Guid = F->getGuid();
    D.CFGChecksum = F->ProbeCFGChecksum;
    D.NumProbes = F->NextProbeId - 1;
    T.ByGuid[D.Guid] = std::move(D);
  }
  return T;
}

const ProbeDescriptor *ProbeTable::find(uint64_t Guid) const {
  auto It = ByGuid.find(Guid);
  return It == ByGuid.end() ? nullptr : &It->second;
}

const ProbeDescriptor *ProbeTable::findByName(const std::string &Name) const {
  for (const auto &[G, D] : ByGuid)
    if (D.FuncName == Name)
      return &D;
  return nullptr;
}

} // namespace csspgo

//===- probe/ProbeTable.h - Probe descriptor table --------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-module table of probe descriptors: for every probed function, its
/// GUID, name and CFG checksum. The descriptor table is the compile-time
/// side of correlation: profgen writes (guid, probe id) keyed counts, the
/// profile loader resolves guids back to functions and verifies checksums.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_PROBE_PROBETABLE_H
#define CSSPGO_PROBE_PROBETABLE_H

#include "ir/Module.h"

#include <cstdint>
#include <map>
#include <string>

namespace csspgo {

struct ProbeDescriptor {
  std::string FuncName;
  uint64_t Guid = 0;
  uint64_t CFGChecksum = 0;
  uint32_t NumProbes = 0;
};

class ProbeTable {
public:
  /// Builds the table from a probed module.
  static ProbeTable fromModule(const Module &M);

  const ProbeDescriptor *find(uint64_t Guid) const;
  const ProbeDescriptor *findByName(const std::string &Name) const;

  size_t size() const { return ByGuid.size(); }

  const std::map<uint64_t, ProbeDescriptor> &descriptors() const {
    return ByGuid;
  }

private:
  std::map<uint64_t, ProbeDescriptor> ByGuid;
};

} // namespace csspgo

#endif // CSSPGO_PROBE_PROBETABLE_H

//===- pgo/ProfilePipeline.h - Unified profile pipeline ---------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one surface a profile consumer drives. Before this facade the
/// pipeline stages had divergent entry points — ProfileGenerator for
/// generation, free loadXxxProfile functions plus two store loaders for
/// application, ingestEpoch for persistence — each with its own options
/// struct, error convention and stats out-params. Every caller
/// (PGODriver, the benches, csspgo_exp) wired them together by hand, and
/// a long-running service would have had to repeat that wiring a fourth
/// time.
///
/// ProfilePipeline packages the wiring: one builder-style PipelineOptions
/// selects generator kind, parallelism, transport, loader and
/// verification policy; `generate` produces a ProfileBundle (including
/// full-CSSPGO post-processing: cold-context trimming and the
/// pre-inliner, both re-verified), `apply` routes a bundle into a module
/// through the configured transport, `ingest` folds it into a binary
/// store under decay. Failures come back as Status/Expected — strict
/// callers (PGODriver) abort on them exactly like before, the fleet
/// service skips the epoch and reports. Everything the stages observe
/// accumulates into one PipelineStats, queryable at any point.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_PGO_PROFILEPIPELINE_H
#define CSSPGO_PGO_PROFILEPIPELINE_H

#include "pgo/BuildPipeline.h"
#include "pgo/PipelineStats.h"
#include "postlink/PostLinkOptimizer.h"
#include "profgen/ProfileGenerator.h"
#include "support/Status.h"
#include "trace/TraceDecoder.h"

#include <cstdint>
#include <string>
#include <vector>

namespace csspgo {

struct CounterDump;
struct RunResult;

/// Every knob of the pipeline, builder-style: chain the setters and hand
/// the result to ProfilePipeline. Defaults reproduce the paper pipeline
/// (full CSSPGO, serial, in-memory transport, strict full verification).
struct PipelineOptions {
  /// Profile shape to generate (pgo kind, not build variant).
  ProfGenKind Kind = ProfGenKind::CS;
  /// Shards for sample-sum generation; 0 = hardware threads, 1 = serial.
  unsigned Parallelism = 1;
  /// Run the missing-frame inferrer (CS kind only).
  bool InferMissingFrames = true;
  /// Transport `apply` routes bundles through.
  ProfileTransport Transport = ProfileTransport::InMemory;
  /// Loader configuration for `apply`.
  LoaderOptions Loader;

  /// Verification level for generation, post-transform re-checks and
  /// ingest gating.
  VerifyLevel Verify = VerifyLevel::Full;
  /// With verification on: violations become error Statuses (callers
  /// decide whether that aborts). Off records reports and carries on.
  bool Strict = true;

  /// Full-CSSPGO post-processing (CS kind only).
  bool TrimColdContexts = false;
  uint64_t TrimThresholdDivisor = 5000;
  bool RunPreInliner = false;

  /// Store ingestion: prior-aggregate weight (permille) and name table.
  uint32_t DecayPermille = 1000;
  bool CompactNames = false;

  /// Run the post-link binary optimizer (reorder/split/fold) on the final
  /// binary, BOLT-style. Consumers that own an executed binary call
  /// ProfilePipeline::postLink when this is set.
  bool PostLink = false;
  postlink::PostLinkOptions PostLinkOpts;

  PipelineOptions &kind(ProfGenKind K) { Kind = K; return *this; }
  PipelineOptions &parallelism(unsigned N) { Parallelism = N; return *this; }
  PipelineOptions &inferMissingFrames(bool B) { InferMissingFrames = B; return *this; }
  PipelineOptions &transport(ProfileTransport T) { Transport = T; return *this; }
  PipelineOptions &loader(const LoaderOptions &L) { Loader = L; return *this; }
  PipelineOptions &verify(VerifyLevel V) { Verify = V; return *this; }
  PipelineOptions &strict(bool B) { Strict = B; return *this; }
  PipelineOptions &trimColdContexts(bool B, uint64_t Divisor = 5000) {
    TrimColdContexts = B;
    TrimThresholdDivisor = Divisor;
    return *this;
  }
  PipelineOptions &preInliner(bool B) { RunPreInliner = B; return *this; }
  PipelineOptions &decay(uint32_t Permille) { DecayPermille = Permille; return *this; }
  PipelineOptions &compactNames(bool B) { CompactNames = B; return *this; }
  PipelineOptions &postLink(bool B) { PostLink = B; return *this; }
  PipelineOptions &postLinkOptions(const postlink::PostLinkOptions &O) {
    PostLinkOpts = O;
    PostLink = true;
    return *this;
  }
};

class ProfilePipeline {
public:
  explicit ProfilePipeline(PipelineOptions Opts = {}) : Opts(std::move(Opts)) {}

  /// Generates a bundle from PMU samples (CS / ProbeOnly / AutoFDO kinds).
  /// For the CS kind this is the paper's full generation pipeline:
  /// sharded sample processing, cold-context trimming and the pre-inliner
  /// (when enabled), with the invariants re-verified after each transform.
  /// Strict verification failures return an error Status carrying the
  /// report.
  Expected<ProfileBundle> generate(const Binary &Bin, const ProbeTable *Probes,
                                   const std::vector<PerfSample> &Samples);

  /// Generates from an instrumentation counter dump (Instr kind); \p Run,
  /// when given, contributes the indirect-call value profile.
  Expected<ProfileBundle> generate(const Binary &Bin, const CounterDump &Dump,
                                   const RunResult *Run = nullptr);

  /// Generates from a core-instruction trace: replays \p Trace of a run of
  /// \p Bin started at \p Entry into the exact PerfSample stream the
  /// equivalent sampling run would have produced (trace/TraceDecoder),
  /// then flows through the configured sample pipeline — so the frequency
  /// profile is bit-identical to the sampling path's whenever frequencies
  /// suffice. The bundle additionally carries the trace's measured
  /// per-block TimingProfile; replay/validation stats are kept for
  /// lastTraceReplay(). Corrupt traces come back as an error Status.
  Expected<ProfileBundle> generate(const Binary &Bin, const ProbeTable *Probes,
                                   const TraceData &Trace,
                                   const TraceReplayOptions &Replay,
                                   const std::string &Entry = "main");

  /// Annotates \p M with \p Profile through the configured transport
  /// (in-memory, text round trip, binary store eager/lazy). All four
  /// routes produce bit-identical annotation; a serialization failure
  /// (impossible for freshly generated bundles, routine for a service fed
  /// from the outside) is an error Status, never an abort.
  Expected<LoaderStats> apply(Module &M, const ProfileBundle &Profile);

  /// Folds \p Profile into the store held in \p StoreBytes under the
  /// configured decay, verifier-gated; \p StoreBytes is untouched on
  /// error. Empty \p StoreBytes creates a single-epoch store.
  Status ingest(std::string &StoreBytes, const ProfileBundle &Profile,
                uint64_t Timestamp);

  /// Rewrites \p Bin with the post-link optimizer under the configured
  /// PostLinkOpts: CFG reconstruction (identity-gated), profile mapping
  /// from \p Samples (plus \p FnProf for LBR-dark functions, stale
  /// profiles routed through the matcher when \p IR is given), then
  /// fold / reorder / split and re-layout. The per-run stats are kept for
  /// lastPostLink(). Errors mean "ship the input binary unmodified".
  Expected<postlink::PostLinkResult>
  postlink(const Binary &Bin, const std::vector<PerfSample> &Samples,
           const FlatProfile *FnProf = nullptr, const Module *IR = nullptr);

  const PipelineOptions &options() const { return Opts; }

  /// Everything the stages observed so far, across all calls on this
  /// pipeline; sum over pipelines with PipelineStats::operator+=. The
  /// mutable overload lets an orchestrator (the fleet service) fold in
  /// observations from work it ran outside the pipeline — per-host
  /// generation stats, host-order reductions — so one record still tells
  /// the whole story.
  const PipelineStats &stats() const { return Stats; }
  PipelineStats &stats() { return Stats; }
  PipelineStats takeStats() { return std::move(Stats); }

  /// The most recent verification report (post-transform when trimming or
  /// the pre-inliner ran) — what a caller reports as "the" verdict on the
  /// last profile; Stats.Verify is the union over every check instead.
  const VerifyReport &lastVerify() const { return LastVerify; }

  /// Stats of the most recent postlink() call on this pipeline.
  const postlink::PostLinkStats &lastPostLink() const { return LastPostLink; }

  /// Replay/validation stats of the most recent trace generate() call
  /// (Samples and Timing cleared — they were consumed into the bundle).
  const TraceReplayResult &lastTraceReplay() const { return LastTraceReplay; }

private:
  Status recordVerify(VerifyReport R, const std::string &What);

  PipelineOptions Opts;
  PipelineStats Stats;
  VerifyReport LastVerify;
  postlink::PostLinkStats LastPostLink;
  TraceReplayResult LastTraceReplay;
};

} // namespace csspgo

#endif // CSSPGO_PGO_PROFILEPIPELINE_H

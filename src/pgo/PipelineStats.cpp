//===- pgo/PipelineStats.cpp - Unified pipeline observability ---------------===//

#include "pgo/PipelineStats.h"

#include <sstream>

namespace csspgo {

LoaderStats &accumulate(LoaderStats &S, const LoaderStats &O) {
  S.FunctionsAnnotated += O.FunctionsAnnotated;
  S.StaleDropped += O.StaleDropped;
  S.StaleMatched += O.StaleMatched;
  S.StaleAnchorsMatched += O.StaleAnchorsMatched;
  S.StaleCountsRecovered += O.StaleCountsRecovered;
  S.StaleMatches.insert(S.StaleMatches.end(), O.StaleMatches.begin(),
                        O.StaleMatches.end());
  S.InlinedCallsites += O.InlinedCallsites;
  S.PromotedIndirectCalls += O.PromotedIndirectCalls;
  if (!S.HotThresholdUsed)
    S.HotThresholdUsed = O.HotThresholdUsed;
  S.StoreFunctionsMaterialized += O.StoreFunctionsMaterialized;
  S.StoreFunctionsSkipped += O.StoreFunctionsSkipped;
  S.VerifyViolations += O.VerifyViolations;
  if (S.VerifyFirst.empty())
    S.VerifyFirst = O.VerifyFirst;
  return S;
}

VerifyReport &accumulate(VerifyReport &R, const VerifyReport &O) {
  R.FunctionsChecked += O.FunctionsChecked;
  R.ContextsChecked += O.ContextsChecked;
  R.Violations += O.Violations;
  for (const Violation &V : O.Details) {
    if (R.Details.size() >= 16)
      break;
    R.Details.push_back(V);
  }
  return R;
}

CSProfileGenStats &accumulate(CSProfileGenStats &S,
                              const CSProfileGenStats &O) {
  S.Samples += O.Samples;
  S.UnsyncedSamples += O.UnsyncedSamples;
  S.RangesProcessed += O.RangesProcessed;
  S.TailCallStats.Attempts += O.TailCallStats.Attempts;
  S.TailCallStats.Recovered += O.TailCallStats.Recovered;
  S.TailCallStats.AmbiguousPaths += O.TailCallStats.AmbiguousPaths;
  S.TailCallStats.NoPath += O.TailCallStats.NoPath;
  return S;
}

PipelineStats &PipelineStats::operator+=(const PipelineStats &O) {
  accumulate(ProfGen, O.ProfGen);
  Reduce += O.Reduce;
  Ingest += O.Ingest;
  accumulate(Loader, O.Loader);
  accumulate(Verify, O.Verify);
  ShardsUsed = std::max(ShardsUsed, O.ShardsUsed);
  EpochsFolded += O.EpochsFolded;
  TotalSamples += O.TotalSamples;
  return *this;
}

namespace {

/// Minimal JSON object writer: unsigned fields with fixed key order. All
/// keys are literals and all values numeric, so no escaping is needed.
class JSONObj {
public:
  void field(const char *Key, uint64_t Value) {
    Out << (First ? "" : ",") << '"' << Key << "\":" << Value;
    First = false;
  }
  void object(const char *Key, const std::string &Body) {
    Out << (First ? "" : ",") << '"' << Key << "\":" << Body;
    First = false;
  }
  std::string str() const { return "{" + Out.str() + "}"; }

private:
  std::ostringstream Out;
  bool First = true;
};

std::string mergeJSON(const MergeStats &M) {
  JSONObj O;
  O.field("contexts_added", M.ContextsAdded);
  O.field("contexts_merged", M.ContextsMerged);
  O.field("counts_summed", M.CountsSummed);
  O.field("saturated", M.SaturatedCounts);
  return O.str();
}

} // namespace

std::string PipelineStats::toJSON() const {
  JSONObj ProfGenO;
  ProfGenO.field("samples", ProfGen.Samples);
  ProfGenO.field("unsynced", ProfGen.UnsyncedSamples);
  ProfGenO.field("ranges", ProfGen.RangesProcessed);
  ProfGenO.field("tailcall_recovered", ProfGen.TailCallStats.Recovered);

  JSONObj LoaderO;
  LoaderO.field("annotated", Loader.FunctionsAnnotated);
  LoaderO.field("inlined", Loader.InlinedCallsites);
  LoaderO.field("icp", Loader.PromotedIndirectCalls);
  LoaderO.field("stale_dropped", Loader.StaleDropped);
  LoaderO.field("stale_matched", Loader.StaleMatched);
  LoaderO.field("stale_anchors", Loader.StaleAnchorsMatched);
  LoaderO.field("stale_counts_recovered", Loader.StaleCountsRecovered);
  LoaderO.field("hot_threshold", Loader.HotThresholdUsed);
  LoaderO.field("store_materialized", Loader.StoreFunctionsMaterialized);
  LoaderO.field("store_skipped", Loader.StoreFunctionsSkipped);

  JSONObj VerifyO;
  VerifyO.field("functions_checked", Verify.FunctionsChecked);
  VerifyO.field("contexts_checked", Verify.ContextsChecked);
  VerifyO.field("violations", Verify.Violations);

  JSONObj Top;
  Top.object("profgen", ProfGenO.str());
  Top.object("reduce", mergeJSON(Reduce));
  Top.object("ingest", mergeJSON(Ingest));
  Top.object("loader", LoaderO.str());
  Top.object("verify", VerifyO.str());
  Top.field("shards", ShardsUsed);
  Top.field("epochs_folded", EpochsFolded);
  Top.field("total_samples", TotalSamples);
  return Top.str();
}

} // namespace csspgo

//===- pgo/BuildPipeline.h - PGO build pipelines -----------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compilation pipelines of the PGO variants under study:
///
///   None            — plain optimized build (profiling binary for the
///                     sampling variants, and the overhead baseline).
///   Instr           — traditional instrumentation PGO: counters in the
///                     profiling binary (strong barriers + run-time cost),
///                     exact counter-keyed profile in the release build.
///   AutoFDO         — sampling PGO with debug-info correlation [2].
///   CSSPGOProbeOnly — pseudo-probes as correlation anchors, flat profile
///                     (isolates the pseudo-instrumentation contribution).
///   CSSPGOFull      — probes + context-sensitive profile + pre-inliner.
///
/// All variants share the same optimization pipeline (pre-opt, top-down
/// loader inlining where applicable, bottom-up inliner, mid-level passes,
/// Ext-TSP layout, function splitting) per the paper's §IV-A alignment.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_PGO_BUILDPIPELINE_H
#define CSSPGO_PGO_BUILDPIPELINE_H

#include "ir/Module.h"
#include "loader/ProfileLoader.h"
#include "opt/Inliner.h"
#include "opt/PassManager.h"
#include "profile/ContextTrie.h"
#include "profile/FunctionProfile.h"
#include "codegen/MachineModule.h"
#include "probe/ProbeTable.h"

#include <memory>

namespace csspgo {

enum class PGOVariant : uint8_t {
  None,
  Instr,
  AutoFDO,
  CSSPGOProbeOnly,
  CSSPGOFull,
  /// Core-instruction-trace collection (probes + full CS profile like
  /// CSSPGOFull, but the profile comes from replaying a branch trace
  /// instead of PMU samples, and the build additionally consumes the
  /// trace's measured per-block timing).
  Trace,
};

const char *variantName(PGOVariant V);

/// How a profile travels from collection to the optimized build. InMemory
/// hands the in-memory containers straight to the loader (the historical
/// behavior); the other transports round-trip through a serialization on
/// the way, exercising what a real deployment does between the profiling
/// fleet and the build farm. All four produce bit-identical builds for
/// the sampling variants (the store is lossless and the text format drops
/// only loader-irrelevant fields); `csspgo_exp run --format` selects one.
enum class ProfileTransport : uint8_t {
  InMemory,    ///< No serialization.
  Text,        ///< serialize + parse (profile/ProfileIO).
  BinaryEager, ///< writeStore + open + full materialization.
  BinaryLazy,  ///< writeStore + open + module-scoped lazy loading.
};

const char *transportName(ProfileTransport T);

/// A profile of any of the three shapes.
struct ProfileBundle {
  bool Has = false;
  bool IsInstr = false;
  bool IsCS = false;
  FlatProfile Flat;
  ContextProfile CS;
  /// Transport the optimized build consumes this bundle through.
  ProfileTransport Transport = ProfileTransport::InMemory;
  /// Measured per-block timing from a core-instruction trace (Trace
  /// variant only; null otherwise). Shared because bundles are copied
  /// freely between pipeline stages; the optimized build borrows it for
  /// the timing-aware transform gates (OptOptions::Timing).
  std::shared_ptr<const TimingProfile> Timing;
};

struct BuildConfig {
  PGOVariant Variant = PGOVariant::None;
  OptOptions Opt;
  InlineParams Inline;
  LoaderOptions Loader;
  /// Run MCF profile inference after annotation (profi, ref [10]). Off
  /// only in the inference ablation.
  bool EnableInference = true;
};

struct BuildResult {
  std::unique_ptr<Module> IR;
  std::unique_ptr<Binary> Bin;
  LoaderStats Loader;
  InlinerStats Inliner;
  /// Probe descriptors snapshotted at insertion time (before any function
  /// could be optimized away); the .pseudo_probe_desc section equivalent.
  ProbeTable ProbeDescs;
};

/// Builds \p Source under \p Config. \p Profile may be null (profiling
/// build / plain build). The returned binary carries probes for CSSPGO
/// variants and counters for the Instr *profiling* build only.
BuildResult buildWithPGO(const Module &Source, const BuildConfig &Config,
                         const ProfileBundle *Profile);

/// Annotation-only build used by the profile-quality analysis (Table I):
/// clones \p Source, inserts matching anchors, correlates \p Profile onto
/// the pristine IR with *no inlining*, runs inference, and returns the
/// annotated module. Modules produced this way from different profiles are
/// block-for-block comparable.
std::unique_ptr<Module> annotateForQuality(const Module &Source,
                                           const ProfileBundle &Profile);

/// As above, but seeded from \p Base so loader policy knobs (e.g.
/// RecoverStaleProfiles for a drop-policy quality column) carry through;
/// the no-inline settings still override Base's inlining fields.
std::unique_ptr<Module> annotateForQuality(const Module &Source,
                                           const ProfileBundle &Profile,
                                           const LoaderOptions &Base);

} // namespace csspgo

#endif // CSSPGO_PGO_BUILDPIPELINE_H

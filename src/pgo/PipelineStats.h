//===- pgo/PipelineStats.h - Unified pipeline observability -----*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One composable stats record for the whole profile pipeline. The stages
/// each keep their focused structs (CSProfileGenStats, MergeStats,
/// LoaderStats, VerifyReport) — what was scattered before was the
/// *aggregate*: every consumer (csspgo_exp run, the benches, now the fleet
/// dashboard) re-assembled its own subset from out-params and result
/// fields, which is how the StaleMatched double-count survived unnoticed.
/// PipelineStats is that aggregate: one value, filled in by
/// ProfilePipeline as stages run, summable across runs/epochs/services
/// with operator+=, and serializable with toJSON() for machine consumers
/// (`csspgo_exp run --json`, `csspgo_exp serve/fleet`).
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_PGO_PIPELINESTATS_H
#define CSSPGO_PGO_PIPELINESTATS_H

#include "loader/ProfileLoader.h"
#include "profgen/CSProfileGenerator.h"
#include "profile/ProfileMerge.h"
#include "verify/ProfileVerifier.h"

#include <cstdint>
#include <string>

namespace csspgo {

/// Accumulates \p O into \p S: counters sum, attempt records concatenate,
/// scalar context fields (HotThresholdUsed, VerifyFirst) keep the first
/// nonzero/nonempty value.
LoaderStats &accumulate(LoaderStats &S, const LoaderStats &O);

/// Accumulates generation stats (all counters sum).
CSProfileGenStats &accumulate(CSProfileGenStats &S,
                              const CSProfileGenStats &O);

/// Accumulates \p O into \p R (checked/violation counts sum; detail
/// records concatenate up to the usual cap).
VerifyReport &accumulate(VerifyReport &R, const VerifyReport &O);

struct PipelineStats {
  /// Profile generation (samples decoded, ranges, tail-call inference).
  CSProfileGenStats ProfGen;
  /// Shard-reduction of parallel generation (zeros when serial).
  MergeStats Reduce;
  /// Store epoch folding (ingestEpoch merges; zeros when no store).
  MergeStats Ingest;
  /// Annotation/load onto a module.
  LoaderStats Loader;
  /// Union of every verification the pipeline ran (generation-side,
  /// post-trim, ingest gating).
  VerifyReport Verify;

  /// Shards the generation actually used.
  unsigned ShardsUsed = 1;
  /// Store epochs folded through this pipeline.
  uint64_t EpochsFolded = 0;
  /// Total samples of the profiles generated through this pipeline.
  uint64_t TotalSamples = 0;

  PipelineStats &operator+=(const PipelineStats &O);

  /// Single-line JSON object with one key per stage; stable key order, so
  /// equal stats render byte-identically (the fleet-dashboard and
  /// transport-equivalence tests diff this text).
  std::string toJSON() const;
};

} // namespace csspgo

#endif // CSSPGO_PGO_PIPELINESTATS_H

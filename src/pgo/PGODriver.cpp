//===- pgo/PGODriver.cpp - End-to-end PGO experiments ------------------------===//

#include "pgo/PGODriver.h"

#include "preinline/PreInliner.h"
#include "probe/ProbeTable.h"
#include "profgen/BinarySizeExtractor.h"
#include "profile/Trimmer.h"
#include "sim/InstrRuntime.h"

#include <cstdio>
#include <cstdlib>

namespace csspgo {

namespace {

/// Strict-mode enforcement: every profile this driver handles is freshly
/// generated against the binary it came from, so a verifier violation is
/// a pipeline bug, not bad input — fail loudly with the report.
void enforceVerified(const VerifyReport &R, const char *What, bool Strict) {
  if (R.ok() || !Strict)
    return;
  std::fprintf(stderr, "csspgo: profile verification failed (%s):\n%s", What,
               R.str().c_str());
  std::abort();
}

} // namespace

PGODriver::PGODriver(ExperimentConfig Config) : Config(std::move(Config)) {
  Source = generateProgram(this->Config.Workload);
}

PGODriver::PGODriver(ExperimentConfig Config, std::unique_ptr<Module> Source)
    : Config(std::move(Config)), Source(std::move(Source)) {}

BuildConfig PGODriver::makeBuildConfig(PGOVariant V) const {
  BuildConfig B;
  B.Variant = V;
  B.Opt = Config.Opt;
  B.Inline = Config.Inline;
  B.Loader = Config.Loader;
  B.EnableInference = Config.EnableInference;
  if (Config.VerifyProfiles)
    B.Loader.Verify = VerifyLevel::Full;
  if (V == PGOVariant::CSSPGOFull && Config.RunPreInliner) {
    // With the pre-inliner's global decisions persisted in the profile,
    // the loader honors them instead of its own local hot heuristic.
    B.Loader.InlineHotContexts = false;
  }
  return B;
}

ProfileBundle PGODriver::collectProfile(PGOVariant V,
                                        const BuildResult &ProfBuild,
                                        VariantOutcome &Out) {
  ProfileBundle Bundle;
  if (V == PGOVariant::None)
    return Bundle;

  std::vector<int64_t> TrainMem =
      generateInput(Config.Workload, Config.TrainSeed);

  ExecConfig Exec;
  Exec.Sampler.Enabled = V != PGOVariant::Instr;
  Exec.Sampler.PeriodCycles = Config.SamplePeriodCycles;
  Exec.Sampler.Precise = Config.PreciseSampling;
  Exec.Sampler.Seed = Config.TrainSeed;
  // Value profiling is part of the instrumentation runtime.
  Exec.CollectValueProfile = V == PGOVariant::Instr;

  RunResult Train =
      execute(*ProfBuild.Bin, "main", TrainMem, Exec);
  Out.ProfilingCycles = Train.Cycles;

  // All four profile shapes flow through the ProfileGenerator facade; the
  // CS and probe-only kinds honor Config.Parallelism (sharded generation,
  // bit-identical to serial).
  ProfGenOptions GenOpts;
  GenOpts.InferMissingFrames = Config.InferMissingFrames;
  GenOpts.Parallelism = Config.Parallelism;
  GenOpts.Verify =
      Config.VerifyProfiles ? VerifyLevel::Full : VerifyLevel::Off;
  switch (V) {
  case PGOVariant::Instr: {
    GenOpts.Kind = ProfGenKind::Instr;
    ProfileGenerator Gen(*ProfBuild.Bin, nullptr, GenOpts);
    ProfGenResult R = Gen.generate(dumpCounters(*ProfBuild.Bin, Train),
                                   &Train);
    Bundle.Flat = std::move(R.Flat);
    Bundle.IsInstr = true;
    Bundle.Has = true;
    Out.ProfGenVerify = std::move(R.Verify);
    enforceVerified(Out.ProfGenVerify, "instr profgen", Config.VerifyStrict);
    break;
  }
  case PGOVariant::AutoFDO: {
    GenOpts.Kind = ProfGenKind::AutoFDO;
    ProfileGenerator Gen(*ProfBuild.Bin, nullptr, GenOpts);
    ProfGenResult R = Gen.generate(Train.Samples);
    Bundle.Flat = std::move(R.Flat);
    Out.ProfGen = R.Stats;
    Bundle.Has = true;
    Out.ProfGenVerify = std::move(R.Verify);
    enforceVerified(Out.ProfGenVerify, "autofdo profgen",
                    Config.VerifyStrict);
    break;
  }
  case PGOVariant::CSSPGOProbeOnly: {
    GenOpts.Kind = ProfGenKind::ProbeOnly;
    ProfileGenerator Gen(*ProfBuild.Bin, &ProfBuild.ProbeDescs, GenOpts);
    ProfGenResult R = Gen.generate(Train.Samples);
    Bundle.Flat = std::move(R.Flat);
    Out.ProfGen = R.Stats;
    Out.ProfGenReduce = R.Reduce;
    Bundle.Has = true;
    Out.ProfGenVerify = std::move(R.Verify);
    enforceVerified(Out.ProfGenVerify, "probe-only profgen",
                    Config.VerifyStrict);
    break;
  }
  case PGOVariant::CSSPGOFull: {
    GenOpts.Kind = ProfGenKind::CS;
    ProfileGenerator Gen(*ProfBuild.Bin, &ProfBuild.ProbeDescs, GenOpts);
    ProfGenResult R = Gen.generate(Train.Samples);
    Bundle.CS = std::move(R.CS);
    Out.ProfGen = R.Stats;
    Out.ProfGenReduce = R.Reduce;
    Out.ProfGenVerify = std::move(R.Verify);
    enforceVerified(Out.ProfGenVerify, "cs profgen", Config.VerifyStrict);
    if (Config.TrimColdContexts) {
      uint64_t Threshold =
          Bundle.CS.totalSamples() /
          std::max<uint64_t>(1, Config.TrimThresholdDivisor);
      trimColdContexts(Bundle.CS, std::max<uint64_t>(Threshold, 2));
    }
    if (Config.RunPreInliner) {
      FuncSizeTable Sizes = extractFuncSizes(*ProfBuild.Bin);
      runPreInliner(Bundle.CS, Sizes);
    }
    if (Config.VerifyProfiles &&
        (Config.TrimColdContexts || Config.RunPreInliner)) {
      // Trimming merges cold contexts into base nodes and the pre-inliner
      // promotes subtrees; both move counts without creating or dropping
      // any, so the full invariant set (including head/call-edge
      // conservation) must still hold on the transformed trie.
      VerifierOptions VO;
      VO.Probes = &ProfBuild.ProbeDescs;
      Out.ProfGenVerify = verifyContextProfile(Bundle.CS, VO);
      enforceVerified(Out.ProfGenVerify, "cs profgen after trim/preinline",
                      Config.VerifyStrict);
    }
    Bundle.IsCS = true;
    Bundle.Has = true;
    break;
  }
  case PGOVariant::None:
    break;
  }
  // The optimized builds consume the profile through the configured
  // transport (in-memory / text / binary store, see BuildPipeline.h).
  Bundle.Transport = Config.Transport;
  return Bundle;
}

const VariantOutcome &PGODriver::baseline() {
  if (!Baseline) {
    Baseline = std::make_unique<VariantOutcome>(run(PGOVariant::None));
  }
  return *Baseline;
}

VariantOutcome PGODriver::run(PGOVariant V) {
  VariantOutcome Out;
  Out.Variant = V;

  // 1. Profiling build (plain pipeline + variant anchors, no profile).
  BuildConfig ProfConfig = makeBuildConfig(V);
  BuildResult ProfBuild = buildWithPGO(*Source, ProfConfig, nullptr);

  // 2. Profile collection + generation; sampling variants iterate the
  //    production loop (profile the optimized binary of the previous
  //    iteration — continuous profiling in deployment).
  Out.Profile = collectProfile(V, ProfBuild, Out);
  bool Sampled = V == PGOVariant::AutoFDO ||
                 V == PGOVariant::CSSPGOProbeOnly ||
                 V == PGOVariant::CSSPGOFull;
  if (Sampled) {
    for (unsigned Iter = 1; Iter < Config.ProfileIterations; ++Iter) {
      BuildResult IterBuild =
          buildWithPGO(*Source, makeBuildConfig(V), &Out.Profile);
      // ProfilingCycles/overhead stay those of the first (anchored vs
      // plain, same pipeline) run — the Fig. 8 comparison; this
      // re-profiling run executes an already-optimized binary.
      VariantOutcome Scratch;
      Out.Profile = collectProfile(V, IterBuild, Scratch);
      Out.ProfGen = Scratch.ProfGen;
      Out.ProfGenReduce = Scratch.ProfGenReduce;
    }
  }

  // Profiling overhead: profiling-binary cycles vs the plain binary on
  // the same training input. Sampling itself is free in the PMU; the
  // delta comes from anchors (counters cost cycles, probes at most block
  // optimizations).
  if (V != PGOVariant::None) {
    const VariantOutcome &Plain = baseline();
    // Plain profiling-run cycles were recorded on the train input too.
    if (Plain.ProfilingCycles)
      Out.ProfilingOverheadPct =
          100.0 *
          (static_cast<double>(Out.ProfilingCycles) - Plain.ProfilingCycles) /
          Plain.ProfilingCycles;
  } else {
    // For the baseline, record the plain binary's train-input cycles as
    // the overhead reference.
    std::vector<int64_t> TrainMem =
        generateInput(Config.Workload, Config.TrainSeed);
    RunResult R = execute(*ProfBuild.Bin, "main", TrainMem, {});
    Out.ProfilingCycles = R.Cycles;
  }

  // 3. Optimized build.
  BuildConfig OptConfig = makeBuildConfig(V);
  auto Build = std::make_unique<BuildResult>(
      buildWithPGO(*Source, OptConfig,
                   Out.Profile.Has ? &Out.Profile : nullptr));
  if (Config.VerifyProfiles && Config.VerifyStrict && Out.Profile.Has &&
      Build->Loader.VerifyViolations) {
    // The loader re-verified the profile it consumed; our profiles are
    // fresh, so any violation it recorded is a pipeline bug.
    std::fprintf(stderr,
                 "csspgo: loader-side profile verification failed "
                 "(%llu violations; first: %s)\n",
                 static_cast<unsigned long long>(
                     Build->Loader.VerifyViolations),
                 Build->Loader.VerifyFirst.c_str());
    std::abort();
  }
  Out.CodeSizeBytes = Build->Bin->textSize();

  // 4. Evaluation runs.
  long double Sum = 0;
  for (unsigned E = 0; E != Config.EvalRuns; ++E) {
    std::vector<int64_t> EvalMem = generateInput(
        Config.Workload, Config.EvalSeedBase + E, Config.EvalShift);
    RunResult R = execute(*Build->Bin, "main", EvalMem, {});
    Out.EvalCycles.push_back(R.Cycles);
    Sum += R.Cycles;
    if (E == 0) {
      Out.ExitValue = R.ExitValue;
      Out.EvalInstructions = R.Instructions;
      Out.EvalICacheMisses = R.ICacheMisses;
      Out.EvalMispredicts = R.Mispredicts;
      Out.EvalTakenBranches = R.TakenBranches;
      Out.EvalCalls = R.Calls;
    }
  }
  Out.EvalCyclesMean =
      Config.EvalRuns ? static_cast<double>(Sum / Config.EvalRuns) : 0;
  Out.Build = std::move(Build);
  return Out;
}

double PGODriver::improvementPct(const VariantOutcome &V,
                                 const VariantOutcome &Baseline) {
  if (!Baseline.EvalCyclesMean)
    return 0;
  return 100.0 * (Baseline.EvalCyclesMean - V.EvalCyclesMean) /
         Baseline.EvalCyclesMean;
}

} // namespace csspgo

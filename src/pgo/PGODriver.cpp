//===- pgo/PGODriver.cpp - End-to-end PGO experiments ------------------------===//

#include "pgo/PGODriver.h"

#include "pgo/ProfilePipeline.h"
#include "probe/ProbeTable.h"
#include "sim/InstrRuntime.h"

#include <cstdio>
#include <cstdlib>

namespace csspgo {

PGODriver::PGODriver(ExperimentConfig Config) : Config(std::move(Config)) {
  Source = generateProgram(this->Config.Workload);
}

PGODriver::PGODriver(ExperimentConfig Config, std::unique_ptr<Module> Source)
    : Config(std::move(Config)), Source(std::move(Source)) {}

BuildConfig PGODriver::makeBuildConfig(PGOVariant V) const {
  BuildConfig B;
  B.Variant = V;
  B.Opt = Config.Opt;
  B.Inline = Config.Inline;
  B.Loader = Config.Loader;
  B.EnableInference = Config.EnableInference;
  if (Config.VerifyProfiles)
    B.Loader.Verify = VerifyLevel::Full;
  if (V == PGOVariant::CSSPGOFull && Config.RunPreInliner) {
    // With the pre-inliner's global decisions persisted in the profile,
    // the loader honors them instead of its own local hot heuristic.
    B.Loader.InlineHotContexts = false;
  }
  return B;
}

ProfileBundle PGODriver::collectProfile(PGOVariant V,
                                        const BuildResult &ProfBuild,
                                        VariantOutcome &Out) {
  ProfileBundle Bundle;
  if (V == PGOVariant::None)
    return Bundle;

  std::vector<int64_t> TrainMem =
      generateInput(Config.Workload, Config.TrainSeed);

  // The three collection modes are mutually exclusive: counters (Instr),
  // the core-instruction trace (Trace), or PMU sampling (the rest). Each
  // pays its own modeled perturbation through Config.Costs.
  bool TraceMode = V == PGOVariant::Trace;
  ExecConfig Exec;
  Exec.Costs = Config.Costs;
  Exec.Sampler.Enabled = V != PGOVariant::Instr && !TraceMode;
  Exec.Sampler.PeriodCycles = Config.SamplePeriodCycles;
  Exec.Sampler.Precise = Config.PreciseSampling;
  Exec.Sampler.Seed = Config.TrainSeed;
  Exec.Trace = Config.Trace;
  Exec.Trace.Enabled = TraceMode;
  // Value profiling is part of the instrumentation runtime.
  Exec.CollectValueProfile = V == PGOVariant::Instr;

  RunResult Train =
      execute(*ProfBuild.Bin, "main", TrainMem, Exec);
  Out.ProfilingCycles = Train.Cycles;
  if (TraceMode) {
    Out.TraceBytes = Train.Trace.Bytes.size();
    Out.TraceTruncated = Train.Trace.Truncated;
    Out.TracePackets = Train.Trace.Packets;
    Out.TraceBranchEvents = Train.Trace.BranchEvents;
  }

  // All four profile shapes flow through the ProfilePipeline facade; the
  // CS and probe-only kinds honor Config.Parallelism (sharded generation,
  // bit-identical to serial), and full CSSPGO gets its cold-context
  // trimming and pre-inliner pass inside the pipeline, re-verified. The
  // optimized builds later consume the bundle through the configured
  // transport (in-memory / text / binary store, see BuildPipeline.h).
  PipelineOptions PipeOpts;
  PipeOpts.InferMissingFrames = Config.InferMissingFrames;
  PipeOpts.Parallelism = Config.Parallelism;
  PipeOpts.Transport = Config.Transport;
  PipeOpts.Verify =
      Config.VerifyProfiles ? VerifyLevel::Full : VerifyLevel::Off;
  PipeOpts.Strict = Config.VerifyStrict;
  switch (V) {
  case PGOVariant::Instr:
    PipeOpts.Kind = ProfGenKind::Instr;
    break;
  case PGOVariant::AutoFDO:
    PipeOpts.Kind = ProfGenKind::AutoFDO;
    break;
  case PGOVariant::CSSPGOProbeOnly:
    PipeOpts.Kind = ProfGenKind::ProbeOnly;
    break;
  case PGOVariant::CSSPGOFull:
  case PGOVariant::Trace:
    PipeOpts.Kind = ProfGenKind::CS;
    PipeOpts.trimColdContexts(Config.TrimColdContexts,
                              Config.TrimThresholdDivisor);
    PipeOpts.RunPreInliner = Config.RunPreInliner;
    break;
  case PGOVariant::None:
    break;
  }

  ProfilePipeline Pipeline(PipeOpts);
  bool Probed = V == PGOVariant::CSSPGOProbeOnly ||
                V == PGOVariant::CSSPGOFull || V == PGOVariant::Trace;
  Expected<ProfileBundle> Generated = [&]() -> Expected<ProfileBundle> {
    if (V == PGOVariant::Instr)
      return Pipeline.generate(*ProfBuild.Bin,
                               dumpCounters(*ProfBuild.Bin, Train), &Train);
    if (TraceMode) {
      // Replay the trace against the sampling configuration the other CS
      // variants use, so the frequency profile is bit-identical to theirs
      // whenever frequencies suffice; the bundle additionally carries the
      // measured per-block timing.
      TraceReplayOptions Replay;
      Replay.Sampler.Enabled = true;
      Replay.Sampler.PeriodCycles = Config.SamplePeriodCycles;
      Replay.Sampler.Precise = Config.PreciseSampling;
      Replay.Sampler.Seed = Config.TrainSeed;
      Replay.Costs = Config.Costs;
      Replay.Format = Exec.Trace;
      return Pipeline.generate(*ProfBuild.Bin, &ProfBuild.ProbeDescs,
                               Train.Trace, Replay);
    }
    return Pipeline.generate(*ProfBuild.Bin,
                             Probed ? &ProfBuild.ProbeDescs : nullptr,
                             Train.Samples);
  }();
  if (TraceMode) {
    Out.TraceTimestamps = Pipeline.lastTraceReplay().Timestamps;
    Out.TraceTimestampMismatches =
        Pipeline.lastTraceReplay().TimestampMismatches;
  }
  if (!Generated) {
    // Strict-mode enforcement: every profile this driver handles is
    // freshly generated against the binary it came from, so a verifier
    // violation is a pipeline bug, not bad input — fail loudly.
    std::fprintf(stderr, "csspgo: %s", Generated.status().message().c_str());
    std::abort();
  }
  Bundle = Generated.take();

  if (V != PGOVariant::Instr)
    Out.ProfGen = Pipeline.stats().ProfGen;
  if (Probed)
    Out.ProfGenReduce = Pipeline.stats().Reduce;
  Out.ProfGenVerify = Pipeline.lastVerify();
  return Bundle;
}

const VariantOutcome &PGODriver::baseline() {
  if (!Baseline) {
    Baseline = std::make_unique<VariantOutcome>(run(PGOVariant::None));
  }
  return *Baseline;
}

VariantOutcome PGODriver::run(PGOVariant V) {
  VariantOutcome Out;
  Out.Variant = V;

  // 1. Profiling build (plain pipeline + variant anchors, no profile).
  BuildConfig ProfConfig = makeBuildConfig(V);
  BuildResult ProfBuild = buildWithPGO(*Source, ProfConfig, nullptr);

  // 2. Profile collection + generation; sampling variants iterate the
  //    production loop (profile the optimized binary of the previous
  //    iteration — continuous profiling in deployment).
  Out.Profile = collectProfile(V, ProfBuild, Out);
  bool Sampled = V == PGOVariant::AutoFDO ||
                 V == PGOVariant::CSSPGOProbeOnly ||
                 V == PGOVariant::CSSPGOFull || V == PGOVariant::Trace;
  if (Sampled) {
    for (unsigned Iter = 1; Iter < Config.ProfileIterations; ++Iter) {
      BuildResult IterBuild =
          buildWithPGO(*Source, makeBuildConfig(V), &Out.Profile);
      // ProfilingCycles/overhead stay those of the first (anchored vs
      // plain, same pipeline) run — the Fig. 8 comparison; this
      // re-profiling run executes an already-optimized binary.
      VariantOutcome Scratch;
      Out.Profile = collectProfile(V, IterBuild, Scratch);
      Out.ProfGen = Scratch.ProfGen;
      Out.ProfGenReduce = Scratch.ProfGenReduce;
    }
  }

  // Profiling overhead: profiling-binary cycles vs the plain binary on
  // the same training input. Sampling itself is free in the PMU; the
  // delta comes from anchors (counters cost cycles, probes at most block
  // optimizations).
  if (V != PGOVariant::None) {
    const VariantOutcome &Plain = baseline();
    // Plain profiling-run cycles were recorded on the train input too.
    if (Plain.ProfilingCycles)
      Out.ProfilingOverheadPct =
          100.0 *
          (static_cast<double>(Out.ProfilingCycles) - Plain.ProfilingCycles) /
          Plain.ProfilingCycles;
  } else {
    // For the baseline, record the plain binary's train-input cycles as
    // the overhead reference.
    std::vector<int64_t> TrainMem =
        generateInput(Config.Workload, Config.TrainSeed);
    ExecConfig Plain;
    Plain.Costs = Config.Costs;
    RunResult R = execute(*ProfBuild.Bin, "main", TrainMem, Plain);
    Out.ProfilingCycles = R.Cycles;
  }

  // 3. Optimized build.
  BuildConfig OptConfig = makeBuildConfig(V);
  auto Build = std::make_unique<BuildResult>(
      buildWithPGO(*Source, OptConfig,
                   Out.Profile.Has ? &Out.Profile : nullptr));
  if (Config.VerifyProfiles && Config.VerifyStrict && Out.Profile.Has &&
      Build->Loader.VerifyViolations) {
    // The loader re-verified the profile it consumed; our profiles are
    // fresh, so any violation it recorded is a pipeline bug.
    std::fprintf(stderr,
                 "csspgo: loader-side profile verification failed "
                 "(%llu violations; first: %s)\n",
                 static_cast<unsigned long long>(
                     Build->Loader.VerifyViolations),
                 Build->Loader.VerifyFirst.c_str());
    std::abort();
  }
  Out.CodeSizeBytes = Build->Bin->textSize();

  // 4. Evaluation runs (no collection enabled, so the perturbation knobs
  //    never fire; Costs still flows through for cost-model ablations).
  ExecConfig Eval;
  Eval.Costs = Config.Costs;
  long double Sum = 0;
  for (unsigned E = 0; E != Config.EvalRuns; ++E) {
    std::vector<int64_t> EvalMem = generateInput(
        Config.Workload, Config.EvalSeedBase + E, Config.EvalShift);
    RunResult R = execute(*Build->Bin, "main", EvalMem, Eval);
    Out.EvalCycles.push_back(R.Cycles);
    Sum += R.Cycles;
    if (E == 0) {
      Out.ExitValue = R.ExitValue;
      Out.EvalInstructions = R.Instructions;
      Out.EvalICacheMisses = R.ICacheMisses;
      Out.EvalMispredicts = R.Mispredicts;
      Out.EvalTakenBranches = R.TakenBranches;
      Out.EvalCalls = R.Calls;
    }
  }
  Out.EvalCyclesMean =
      Config.EvalRuns ? static_cast<double>(Sum / Config.EvalRuns) : 0;
  Out.Build = std::move(Build);
  return Out;
}

PostLinkOutcome PGODriver::runPostLink(PGOVariant V,
                                       const postlink::PostLinkOptions &Opts) {
  return stackPostLink(run(V), Opts, Config.TrainSeed, 0.0);
}

PostLinkOutcome PGODriver::stackPostLink(VariantOutcome Base,
                                         const postlink::PostLinkOptions &Opts,
                                         uint64_t SampleSeed,
                                         double SampleShift) {
  PostLinkOutcome Out;
  Out.Base = std::move(Base);
  const Binary &OptBin = *Out.Base.Build->Bin;

  // Re-profile the deployed (optimized) binary — normally on the training
  // input, so the samples describe exactly the binary being rewritten and
  // the mapped-sample rate should be ~1. The release train instead passes
  // the previous release's eval-shifted seed here, making these the
  // one-release-stale samples whose binary-level cost it measures.
  std::vector<int64_t> TrainMem =
      generateInput(Config.Workload, SampleSeed, SampleShift);
  ExecConfig Exec;
  Exec.Sampler.Enabled = true;
  Exec.Sampler.PeriodCycles = Config.SamplePeriodCycles;
  Exec.Sampler.Precise = Config.PreciseSampling;
  Exec.Sampler.Seed = SampleSeed;
  RunResult Train = execute(OptBin, "main", TrainMem, Exec);

  // For probed binaries, also derive a flat probe profile from the same
  // run: it backfills functions the LBR ring left dark.
  ProfileBundle ProbeBundle;
  const FlatProfile *FnProf = nullptr;
  if (!OptBin.Probes.empty()) {
    PipelineOptions ProbeOpts;
    ProbeOpts.Kind = ProfGenKind::ProbeOnly;
    ProbeOpts.Parallelism = Config.Parallelism;
    ProbeOpts.Verify =
        Config.VerifyProfiles ? VerifyLevel::Full : VerifyLevel::Off;
    ProbeOpts.Strict = Config.VerifyStrict;
    ProfilePipeline ProbePipe(ProbeOpts);
    Expected<ProfileBundle> Generated = ProbePipe.generate(
        OptBin, &Out.Base.Build->ProbeDescs, Train.Samples);
    if (Generated) {
      ProbeBundle = Generated.take();
      FnProf = &ProbeBundle.Flat;
    }
  }

  ProfilePipeline Pipeline(PipelineOptions().postLinkOptions(Opts));
  Expected<postlink::PostLinkResult> Rewritten = Pipeline.postlink(
      OptBin, Train.Samples, FnProf, Out.Base.Build->IR.get());
  if (!Rewritten) {
    // Same policy as strict verification: the input binary came straight
    // out of our own linker, so a reconstruction failure is a bug.
    std::fprintf(stderr, "csspgo: %s\n",
                 Rewritten.status().message().c_str());
    std::abort();
  }
  Out.Stats = Rewritten->Stats;
  Out.Bin = std::move(Rewritten->Bin);

  // Guarded rollout: the rewrite must strictly win on the training input
  // (plain run, no sampling) or the variant's binary ships unmodified.
  // Layout transforms trade modeled i-cache placement against extra
  // branches, and an unlucky line alignment can flip the sign — the
  // guard catches that with data the optimizer is allowed to see; the
  // eval inputs stay untouched.
  {
    std::vector<int64_t> MemVariant =
        generateInput(Config.Workload, Config.TrainSeed);
    RunResult Variant = execute(OptBin, "main", MemVariant, {});
    std::vector<int64_t> MemRewrite =
        generateInput(Config.Workload, Config.TrainSeed);
    RunResult Rewrite = execute(*Out.Bin, "main", MemRewrite, {});
    Out.TrainCyclesVariant = Variant.Cycles;
    Out.TrainCyclesRewrite = Rewrite.Cycles;
    Out.RewriteKept = Rewrite.ExitValue == Variant.ExitValue &&
                      Rewrite.Cycles < Variant.Cycles;
    if (!Out.RewriteKept)
      Out.Bin = std::make_unique<Binary>(OptBin);
  }
  Out.CodeSizeBytes = Out.Bin->textSize();

  // Evaluate the rewritten binary on the exact inputs Base saw.
  long double Sum = 0;
  for (unsigned E = 0; E != Config.EvalRuns; ++E) {
    std::vector<int64_t> EvalMem = generateInput(
        Config.Workload, Config.EvalSeedBase + E, Config.EvalShift);
    RunResult R = execute(*Out.Bin, "main", EvalMem, {});
    Out.EvalCycles.push_back(R.Cycles);
    Sum += R.Cycles;
    if (E == 0) {
      Out.ExitValue = R.ExitValue;
      Out.EvalICacheMisses = R.ICacheMisses;
      Out.EvalMispredicts = R.Mispredicts;
      Out.EvalTakenBranches = R.TakenBranches;
    }
  }
  Out.EvalCyclesMean =
      Config.EvalRuns ? static_cast<double>(Sum / Config.EvalRuns) : 0;
  return Out;
}

double PGODriver::improvementPct(const VariantOutcome &V,
                                 const VariantOutcome &Baseline) {
  if (!Baseline.EvalCyclesMean)
    return 0;
  return 100.0 * (Baseline.EvalCyclesMean - V.EvalCyclesMean) /
         Baseline.EvalCyclesMean;
}

BuildConfig staleVariantBuildConfig(PGOVariant V,
                                    const ExperimentConfig &Config) {
  BuildConfig BC;
  BC.Variant = V;
  if (V == PGOVariant::CSSPGOFull && Config.RunPreInliner)
    BC.Loader.InlineHotContexts = false;
  return BC;
}

double evalMeanCycles(const BuildResult &Build,
                      const ExperimentConfig &Config) {
  long double Sum = 0;
  for (unsigned E = 0; E != Config.EvalRuns; ++E) {
    std::vector<int64_t> Mem = generateInput(
        Config.Workload, Config.EvalSeedBase + E, Config.EvalShift);
    Sum += execute(*Build.Bin, "main", Mem, {}).Cycles;
  }
  return Config.EvalRuns ? static_cast<double>(Sum / Config.EvalRuns) : 0;
}

} // namespace csspgo

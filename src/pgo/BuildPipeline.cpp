//===- pgo/BuildPipeline.cpp - PGO build pipelines ---------------------------===//

#include "pgo/BuildPipeline.h"

#include "codegen/Linker.h"
#include "inference/ProfileInference.h"
#include "ir/Verifier.h"
#include "pgo/ProfilePipeline.h"
#include "probe/ProbeInserter.h"

#include <cstdio>
#include <cstdlib>

namespace csspgo {

const char *variantName(PGOVariant V) {
  switch (V) {
  case PGOVariant::None:
    return "None";
  case PGOVariant::Instr:
    return "InstrPGO";
  case PGOVariant::AutoFDO:
    return "AutoFDO";
  case PGOVariant::CSSPGOProbeOnly:
    return "CSSPGO-probe-only";
  case PGOVariant::CSSPGOFull:
    return "CSSPGO";
  case PGOVariant::Trace:
    return "TracePGO";
  }
  return "<unknown>";
}

const char *transportName(ProfileTransport T) {
  switch (T) {
  case ProfileTransport::InMemory:
    return "memory";
  case ProfileTransport::Text:
    return "text";
  case ProfileTransport::BinaryEager:
    return "binary";
  case ProfileTransport::BinaryLazy:
    return "binary-lazy";
  }
  return "<unknown>";
}

static bool usesProbes(PGOVariant V) {
  return V == PGOVariant::CSSPGOProbeOnly || V == PGOVariant::CSSPGOFull ||
         V == PGOVariant::Trace;
}

/// Routes the profile into the loader through the bundle's transport
/// (ProfilePipeline::apply). A transport failure is a pipeline bug here —
/// the bundle was produced by our own generators an instant earlier — so
/// it aborts like verifyOrDie; the fleet service uses the pipeline
/// directly and survives the same failure by skipping the work item.
static LoaderStats loadThroughTransport(Module &M,
                                        const ProfileBundle &Profile,
                                        const LoaderOptions &Opts) {
  ProfilePipeline Pipeline(
      PipelineOptions().transport(Profile.Transport).loader(Opts));
  Expected<LoaderStats> Stats = Pipeline.apply(M, Profile);
  if (!Stats) {
    std::fprintf(stderr, "csspgo: profile transport failed: %s\n",
                 Stats.status().message().c_str());
    std::abort();
  }
  return Stats.take();
}

BuildResult buildWithPGO(const Module &Source, const BuildConfig &Config,
                         const ProfileBundle *Profile) {
  BuildResult Result;
  Result.IR = Source.clone();
  Module &M = *Result.IR;

  // 1. Correlation anchors, inserted on pristine IR (before any
  //    transformation), exactly like the profiling build did.
  if (usesProbes(Config.Variant)) {
    insertProbes(M, AnchorKind::PseudoProbe);
    Result.ProbeDescs = ProbeTable::fromModule(M);
  } else if (Config.Variant == PGOVariant::Instr) {
    insertProbes(M, AnchorKind::InstrCounter);
  }

  // 2. Profile correlation, annotation and top-down loader inlining,
  //    through whatever transport the bundle prescribes (in-memory by
  //    default; text or binary-store round trips under --format).
  if (Profile && Profile->Has) {
    Result.Loader = loadThroughTransport(M, *Profile, Config.Loader);
    // The release build of Instr PGO carries no counters: they only
    // existed to establish the correlation, which annotation completed.
    if (Config.Variant == PGOVariant::Instr)
      stripProbes(M);
    if (Config.EnableInference)
      inferModuleProfile(M);
  } else if (Config.Variant == PGOVariant::Instr) {
    // Profiling build of Instr PGO keeps its counters (run-time cost +
    // optimization barriers).
  }
  verifyOrDie(M, "after profile loading");

  // 3. Bottom-up inlining (profile-aware when counts are annotated).
  InlineParams Inline = Config.Inline;
  if (Profile && Profile->Has && Result.Loader.HotThresholdUsed)
    Inline.HotCallsiteCount = Result.Loader.HotThresholdUsed;
  Result.Inliner = runBottomUpInliner(M, Inline);
  verifyOrDie(M, "after bottom-up inlining");
  if (Profile && Profile->Has && Config.EnableInference)
    inferModuleProfile(M);

  // 4. Mid-level pipeline and late (layout/splitting) pipeline. A bundle
  //    carrying measured block timing (Trace variant) arms the
  //    timing-aware transform gates; frequency-only bundles leave the
  //    pipeline behavior unchanged.
  OptOptions Opt = Config.Opt;
  if (Profile && Profile->Has && Profile->Timing && !Profile->Timing->empty())
    Opt.Timing = Profile->Timing.get();
  runMidLevelPipeline(M, Opt);
  runLatePipeline(M, Opt);

  // 5. Codegen.
  Result.Bin = compileToBinary(M);
  return Result;
}

std::unique_ptr<Module> annotateForQuality(const Module &Source,
                                           const ProfileBundle &Profile,
                                           const LoaderOptions &Base) {
  auto M = Source.clone();
  // Anchors matching the profile kind so correlation works; counter and
  // probe insertion add the same one-intrinsic-per-block shape, keeping
  // modules block-for-block comparable across kinds.
  if (Profile.IsInstr)
    insertProbes(*M, AnchorKind::InstrCounter);
  else if (Profile.IsCS || Profile.Flat.Kind == ProfileKind::ProbeBased)
    insertProbes(*M, AnchorKind::PseudoProbe);

  LoaderOptions NoInline = Base;
  NoInline.ReplayInlining = false;
  NoInline.InlineHotContexts = false;
  NoInline.MaxInlineSize = 0;
  if (Profile.IsCS)
    loadContextProfile(*M, Profile.CS, NoInline);
  else
    loadFlatProfile(*M, Profile.Flat, Profile.IsInstr, NoInline);
  inferModuleProfile(*M);
  return M;
}

std::unique_ptr<Module> annotateForQuality(const Module &Source,
                                           const ProfileBundle &Profile) {
  return annotateForQuality(Source, Profile, LoaderOptions());
}

} // namespace csspgo

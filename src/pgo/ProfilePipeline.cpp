//===- pgo/ProfilePipeline.cpp - Unified profile pipeline --------------------===//

#include "pgo/ProfilePipeline.h"

#include "preinline/PreInliner.h"
#include "profgen/BinarySizeExtractor.h"
#include "profile/ProfileIO.h"
#include "profile/Trimmer.h"
#include "store/ProfileStore.h"

#include <algorithm>

namespace csspgo {

Status ProfilePipeline::recordVerify(VerifyReport R, const std::string &What) {
  bool Ok = R.ok();
  std::string Text = Ok ? std::string() : R.str();
  accumulate(Stats.Verify, R);
  LastVerify = std::move(R);
  if (Ok || !Opts.Strict || Opts.Verify == VerifyLevel::Off)
    return {};
  return Status::error("profile verification failed (" + What + "):\n" + Text);
}

Expected<ProfileBundle>
ProfilePipeline::generate(const Binary &Bin, const ProbeTable *Probes,
                          const std::vector<PerfSample> &Samples) {
  ProfGenOptions GenOpts;
  GenOpts.Kind = Opts.Kind;
  GenOpts.InferMissingFrames = Opts.InferMissingFrames;
  GenOpts.Parallelism = Opts.Parallelism;
  GenOpts.Verify = Opts.Verify;

  ProfileGenerator Gen(Bin, Probes, GenOpts);
  ProfGenResult R = Gen.generate(Samples);
  accumulate(Stats.ProfGen, R.Stats);
  Stats.Reduce += R.Reduce;
  Stats.ShardsUsed = std::max(Stats.ShardsUsed, R.ShardsUsed);

  ProfileBundle Bundle;
  Bundle.Has = true;
  Bundle.Transport = Opts.Transport;
  if (Status S = recordVerify(std::move(R.Verify),
                              std::string(profGenKindName(Opts.Kind)) +
                                  " profgen");
      !S)
    return S;

  if (R.IsCS) {
    Bundle.IsCS = true;
    Bundle.CS = std::move(R.CS);
    bool Transformed = false;
    if (Opts.TrimColdContexts) {
      uint64_t Threshold =
          Bundle.CS.totalSamples() /
          std::max<uint64_t>(1, Opts.TrimThresholdDivisor);
      trimColdContexts(Bundle.CS, std::max<uint64_t>(Threshold, 2));
      Transformed = true;
    }
    if (Opts.RunPreInliner) {
      FuncSizeTable Sizes = extractFuncSizes(Bin);
      runPreInliner(Bundle.CS, Sizes);
      Transformed = true;
    }
    if (Transformed && Opts.Verify != VerifyLevel::Off) {
      // Trimming merges cold contexts into base nodes and the pre-inliner
      // promotes subtrees; both move counts without creating or dropping
      // any, so the full invariant set (including head/call-edge
      // conservation) must still hold on the transformed trie.
      VerifierOptions VO;
      VO.Probes = Probes;
      if (Status S = recordVerify(verifyContextProfile(Bundle.CS, VO),
                                  "cs profgen after trim/preinline");
          !S)
        return S;
    }
  } else {
    Bundle.Flat = std::move(R.Flat);
  }
  Stats.TotalSamples += Bundle.IsCS ? Bundle.CS.totalSamples()
                                    : Bundle.Flat.totalSamples();
  return Bundle;
}

Expected<ProfileBundle> ProfilePipeline::generate(const Binary &Bin,
                                                  const CounterDump &Dump,
                                                  const RunResult *Run) {
  ProfGenOptions GenOpts;
  GenOpts.Kind = ProfGenKind::Instr;
  GenOpts.Verify = Opts.Verify;

  ProfileGenerator Gen(Bin, nullptr, GenOpts);
  ProfGenResult R = Gen.generate(Dump, Run);
  accumulate(Stats.ProfGen, R.Stats);

  ProfileBundle Bundle;
  Bundle.Has = true;
  Bundle.IsInstr = true;
  Bundle.Transport = Opts.Transport;
  Bundle.Flat = std::move(R.Flat);
  if (Status S = recordVerify(std::move(R.Verify), "instr profgen"); !S)
    return S;
  Stats.TotalSamples += Bundle.Flat.totalSamples();
  return Bundle;
}

Expected<ProfileBundle> ProfilePipeline::generate(
    const Binary &Bin, const ProbeTable *Probes, const TraceData &Trace,
    const TraceReplayOptions &Replay, const std::string &Entry) {
  Expected<TraceReplayResult> Replayed = replayTrace(Bin, Entry, Trace, Replay);
  if (!Replayed)
    return Replayed.takeError().withContext("trace pipeline");
  TraceReplayResult R = Replayed.take();

  // The synthesized samples flow through the unchanged sample pipeline,
  // so trimming, the pre-inliner and verification all apply identically.
  Expected<ProfileBundle> Bundle = generate(Bin, Probes, R.Samples);
  R.Samples.clear();
  R.Samples.shrink_to_fit();
  if (Bundle && !R.Timing.empty())
    Bundle->Timing =
        std::make_shared<const TimingProfile>(std::move(R.Timing));
  R.Timing = TimingProfile();
  LastTraceReplay = std::move(R);
  return Bundle;
}

Expected<LoaderStats> ProfilePipeline::apply(Module &M,
                                             const ProfileBundle &Profile) {
  auto Record = [this](LoaderStats S) -> Expected<LoaderStats> {
    accumulate(Stats.Loader, S);
    return S;
  };
  switch (Profile.Transport) {
  case ProfileTransport::InMemory:
    break;
  case ProfileTransport::Text: {
    if (Profile.IsCS) {
      ContextProfile CS;
      if (!parseContextProfile(serializeContextProfile(Profile.CS), CS))
        return Status::error(
            "text transport: context profile failed to re-parse");
      return Record(loadContextProfile(M, CS, Opts.Loader));
    }
    FlatProfile Flat;
    if (!parseFlatProfile(serializeFlatProfile(Profile.Flat), Flat))
      return Status::error("text transport: flat profile failed to re-parse");
    return Record(loadFlatProfile(M, Flat, Profile.IsInstr, Opts.Loader));
  }
  case ProfileTransport::BinaryEager:
  case ProfileTransport::BinaryLazy: {
    bool Lazy = Profile.Transport == ProfileTransport::BinaryLazy;
    std::vector<EpochInfo> Epochs{
        {0, Profile.IsCS ? Profile.CS.totalSamples()
                         : Profile.Flat.totalSamples(),
         1000}};
    std::string Bytes =
        Profile.IsCS ? writeStore(Profile.CS, Epochs)
                     : writeStore(Profile.Flat, Epochs, {}, Profile.IsInstr);
    Expected<ProfileStore> Store = ProfileStore::open(std::move(Bytes));
    if (!Store)
      return Store.takeError().withContext("binary transport");
    Expected<LoaderStats> Loaded =
        loadProfileFromStore(M, *Store, Opts.Loader, Lazy);
    if (!Loaded)
      return Loaded.takeError().withContext("binary transport");
    return Record(Loaded.take());
  }
  }
  if (Profile.IsCS)
    return Record(loadContextProfile(M, Profile.CS, Opts.Loader));
  return Record(loadFlatProfile(M, Profile.Flat, Profile.IsInstr, Opts.Loader));
}

Status ProfilePipeline::ingest(std::string &StoreBytes,
                               const ProfileBundle &Profile,
                               uint64_t Timestamp) {
  if (!Profile.Has)
    return Status::error("ingest: empty profile bundle");
  IngestOptions IO;
  IO.DecayPermille = Opts.DecayPermille;
  IO.Timestamp = Timestamp;
  IO.ExactCounts = Profile.IsInstr;
  IO.Write.CompactNames = Opts.CompactNames;
  // Every fold is verifier-gated regardless of the generation-time level:
  // the store is long-lived shared state, and a bad fold poisons every
  // build downstream.
  IO.Verify = VerifyLevel::Full;

  IngestResult R = Profile.IsCS ? ingestEpoch(StoreBytes, Profile.CS, IO)
                                : ingestEpoch(StoreBytes, Profile.Flat, IO);
  accumulate(Stats.Verify, R.Verify);
  if (!R.Ok)
    return Status::error("ingest: " + R.Error);
  Stats.Ingest += R.Merge;
  ++Stats.EpochsFolded;
  return {};
}

Expected<postlink::PostLinkResult>
ProfilePipeline::postlink(const Binary &Bin,
                          const std::vector<PerfSample> &Samples,
                          const FlatProfile *FnProf, const Module *IR) {
  Expected<postlink::PostLinkResult> R =
      postlink::runPostLink(Bin, Samples, FnProf, IR, Opts.PostLinkOpts);
  if (R)
    LastPostLink = R->Stats;
  return R;
}

} // namespace csspgo

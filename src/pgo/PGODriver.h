//===- pgo/PGODriver.h - End-to-end PGO experiments --------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end experiment driver replicating the paper's methodology
/// (§IV-A): build the profiling binary, run it on training input with PMU
/// sampling (or counters), generate the variant's profile (including
/// cold-context trimming, Algorithm-3 size extraction and the pre-inliner
/// for full CSSPGO), rebuild with the profile, and measure cycles on
/// evaluation inputs drawn from a slightly shifted distribution.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_PGO_PGODRIVER_H
#define CSSPGO_PGO_PGODRIVER_H

#include "pgo/BuildPipeline.h"
#include "postlink/PostLinkOptimizer.h"
#include "profgen/ProfileGenerator.h"
#include "sim/Executor.h"
#include "workload/ProgramGenerator.h"

#include <map>
#include <memory>

namespace csspgo {

struct ExperimentConfig {
  WorkloadConfig Workload;

  uint64_t TrainSeed = 7;
  uint64_t EvalSeedBase = 5000;
  unsigned EvalRuns = 3;
  /// Train/eval input distribution shift (production drift).
  double EvalShift = 0.04;

  uint64_t SamplePeriodCycles = 4001;
  bool PreciseSampling = true; ///< PEBS on (the paper's setup).

  /// Cost model for every run the driver executes. The perturbation knobs
  /// (CounterCost, SampleInterruptCost, TraceByteCost) make the
  /// ProfilingOverheadPct column reflect each mode's real collection
  /// cost: counter increments for Instr, interrupt delivery for the
  /// sampling variants, packet writes for Trace.
  CostModel Costs;
  /// Core-instruction-trace knobs for the Trace variant (buffer bound,
  /// timestamp density, compression). Enabled is set by the driver.
  TraceConfig Trace;

  /// Continuous-profiling iterations for sampling-based variants: the
  /// production workflow profiles the *currently deployed optimized*
  /// binary, so profiles reflect its inlining (AutoFDO's partial context
  /// sensitivity comes exactly from there, §II-B). Iteration 1 profiles a
  /// plain build; each further iteration rebuilds with the profile and
  /// re-profiles. Instrumentation PGO needs no iteration (exact counts on
  /// pristine IR).
  unsigned ProfileIterations = 1;

  /// Full-CSSPGO profile-generation pipeline knobs.
  bool TrimColdContexts = true;
  uint64_t TrimThresholdDivisor = 5000; ///< threshold = total/divisor.
  bool RunPreInliner = true;
  bool InferMissingFrames = true;

  /// Worker threads for sharded profile generation (CS / probe-only
  /// variants): 0 = one per hardware thread, 1 = serial. Any value yields
  /// bit-identical profiles; this is purely a throughput knob.
  unsigned Parallelism = 1;

  /// Base build configuration (variant-specific fields are filled in).
  OptOptions Opt;
  InlineParams Inline;
  LoaderOptions Loader;
  bool EnableInference = true;

  /// Transport the optimized builds consume profiles through (in-memory,
  /// text round trip, or binary store; `csspgo_exp --format`). The
  /// sampling variants build bit-identically under all of them.
  ProfileTransport Transport = ProfileTransport::InMemory;

  /// Run the ProfileVerifier over every profile the pipeline produces or
  /// consumes: Full verification at generation time (including probe-table
  /// agreement), a re-check after cold-context trimming and the
  /// pre-inliner, and pre-load verification inside the loader. See
  /// verify/ProfileVerifier.h for the invariants.
  bool VerifyProfiles = true;
  /// With VerifyProfiles: treat any violation as a fatal pipeline bug
  /// (every profile in this driver is freshly generated, so violations
  /// are never expected). Off records the report and carries on.
  bool VerifyStrict = true;
};

struct VariantOutcome {
  PGOVariant Variant = PGOVariant::None;

  /// Cycles of the profiling run and the overhead vs the plain binary on
  /// the same input (Fig. 8 / Table I "profiling overhead").
  uint64_t ProfilingCycles = 0;
  double ProfilingOverheadPct = 0;

  /// Mean optimized-binary cycles over the eval inputs (the performance
  /// metric; lower is better) and the per-run values (for error bars).
  double EvalCyclesMean = 0;
  std::vector<uint64_t> EvalCycles;

  uint64_t CodeSizeBytes = 0;
  int64_t ExitValue = 0; ///< Semantics check: identical across variants.

  /// Microarchitectural counters from the first eval run (diagnostics).
  uint64_t EvalInstructions = 0;
  uint64_t EvalICacheMisses = 0;
  uint64_t EvalMispredicts = 0;
  uint64_t EvalTakenBranches = 0;
  uint64_t EvalCalls = 0;

  /// Trace variant: encoded trace size, truncation, and the number of TSC
  /// packets failing the replay's write-cost cross-check (0 expected).
  uint64_t TraceBytes = 0;
  bool TraceTruncated = false;
  uint64_t TracePackets = 0;
  uint64_t TraceBranchEvents = 0;
  uint64_t TraceTimestamps = 0;
  uint64_t TraceTimestampMismatches = 0;

  ProfileBundle Profile;
  CSProfileGenStats ProfGen;
  /// Shard-reduction stats of the profile generation (zeros when serial).
  MergeStats ProfGenReduce;
  /// Verification report of the generated profile (after trimming and
  /// pre-inlining for full CSSPGO); empty when verification is off.
  VerifyReport ProfGenVerify;
  std::unique_ptr<BuildResult> Build;
};

/// Outcome of a PGO variant with the post-link optimizer stacked on top:
/// the variant's own outcome, the rewrite stats, and the rewritten
/// binary's evaluation numbers (same inputs as Base's, so the two
/// EvalCyclesMean values are directly comparable — the PGO vs PGO+BOLT
/// axis of the ablation).
struct PostLinkOutcome {
  VariantOutcome Base;
  postlink::PostLinkStats Stats;

  /// Guarded rollout: modeled cycles of the variant's binary and of the
  /// rewrite on the *training* input (no eval input is consulted). The
  /// rewrite ships only when it strictly wins there; otherwise the
  /// variant's binary ships unmodified and RewriteKept is false.
  uint64_t TrainCyclesVariant = 0;
  uint64_t TrainCyclesRewrite = 0;
  bool RewriteKept = false;

  double EvalCyclesMean = 0;
  std::vector<uint64_t> EvalCycles;
  int64_t ExitValue = 0; ///< Must equal Base.ExitValue (semantics check).
  uint64_t CodeSizeBytes = 0;
  uint64_t EvalICacheMisses = 0;
  uint64_t EvalMispredicts = 0;
  uint64_t EvalTakenBranches = 0;

  std::unique_ptr<Binary> Bin; ///< The rewritten binary.
};

class PGODriver {
public:
  explicit PGODriver(ExperimentConfig Config);

  /// Drives the pipeline over an externally constructed \p Source instead
  /// of generating one from Config.Workload (the drift benches profile an
  /// already-edited variant of a program).
  PGODriver(ExperimentConfig Config, std::unique_ptr<Module> Source);

  /// Runs the full pipeline for \p V. Results are deterministic.
  VariantOutcome run(PGOVariant V);

  /// Runs \p V, then stacks the post-link optimizer on the optimized
  /// binary: re-profiles it on the training input (the deployed-binary
  /// samples BOLT consumes), rewrites it through
  /// ProfilePipeline::postlink, and re-evaluates on the same eval inputs.
  /// V == None gives the BOLT-only cell of the ablation; a PGO variant
  /// gives the stacked cell.
  PostLinkOutcome runPostLink(PGOVariant V,
                              const postlink::PostLinkOptions &Opts = {});

  /// Stacks the post-link optimizer on an already-computed \p Base, with
  /// the rewriter's samples collected under input (\p SampleSeed,
  /// \p SampleShift) instead of the training input. runPostLink is this
  /// with (run(V), TrainSeed, 0.0); the release train passes an
  /// eval-shifted previous-release seed to measure binary-level staleness.
  /// The guarded rollout still consults only the training input.
  PostLinkOutcome stackPostLink(VariantOutcome Base,
                                const postlink::PostLinkOptions &Opts,
                                uint64_t SampleSeed, double SampleShift);

  /// Percentage improvement of \p V over \p Baseline (positive = faster),
  /// computed from EvalCyclesMean.
  static double improvementPct(const VariantOutcome &V,
                               const VariantOutcome &Baseline);

  const Module &source() const { return *Source; }
  const ExperimentConfig &config() const { return Config; }

  /// The plain (None) outcome, built on demand and cached.
  const VariantOutcome &baseline();

private:
  BuildConfig makeBuildConfig(PGOVariant V) const;
  ProfileBundle collectProfile(PGOVariant V, const BuildResult &ProfBuild,
                               VariantOutcome &Out);

  ExperimentConfig Config;
  std::unique_ptr<Module> Source;
  std::unique_ptr<VariantOutcome> Baseline;
};

/// The build configuration the stale-profile experiments (drift ablation,
/// release train) use when re-applying a previous release's profile to an
/// edited source: a *default* BuildConfig for the variant — deliberately
/// not PGODriver's (which copies Opt/Inline/Loader from the experiment
/// config) — with the pre-inliner's InlineHotContexts rule preserved.
BuildConfig staleVariantBuildConfig(PGOVariant V,
                                    const ExperimentConfig &Config);

/// Mean optimized-binary cycles of \p Build over \p Config's eval inputs
/// (seeds EvalSeedBase..+EvalRuns at EvalShift) — the drift ablation's and
/// the release train's shared evaluation metric.
double evalMeanCycles(const BuildResult &Build,
                      const ExperimentConfig &Config);

} // namespace csspgo

#endif // CSSPGO_PGO_PGODRIVER_H

//===- codegen/Lowering.h - IR to machine lowering --------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers IR functions to machine code. Key responsibilities:
/// - branch relaxation: conditional branches get hardware shape (one taken
///   target + implicit fallthrough), unconditional branches to the next
///   block are elided entirely — this is where good block layout turns
///   into fewer taken branches;
/// - pseudo-probe materialization: probes emit no instructions; they
///   attach as metadata to the next physical instruction (paper §III-A);
/// - hot/cold section assignment from the function-splitting pass;
/// - per-instruction symbolization metadata (line, inline stack).
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_CODEGEN_LOWERING_H
#define CSSPGO_CODEGEN_LOWERING_H

#include "codegen/MachineModule.h"
#include "ir/Module.h"

#include <memory>

namespace csspgo {

/// Byte size of the encoding of \p Op (0 for PseudoProbe).
uint8_t machineSizeOf(Opcode Op);

/// Result of lowering one function, before linking. Targets are
/// function-local instruction indices; cold instructions start at
/// ColdStartLocal.
struct LoweredFunction {
  std::string Name;
  uint64_t Guid = 0;
  uint32_t NumParams = 0;
  uint32_t NumRegs = 0;
  std::vector<MInst> Insts;               ///< Local layout order.
  size_t ColdStartLocal = SIZE_MAX;       ///< First cold instruction.
  std::vector<ProbeRecord> Probes;        ///< InstIdx is local here.
  std::vector<std::vector<InlineFrame>> InlineTable;
  uint32_t NumCounters = 0;
  /// Sum of annotated block counts (0 without profile). The linker uses
  /// this to order hot sections by hotness (profile-guided function
  /// ordering, as production linkers do with -ffunction-sections).
  uint64_t HotnessScore = 0;
};

/// Lowers every function of \p M. \p M must verify.
std::vector<LoweredFunction> lowerModule(const Module &M);

} // namespace csspgo

#endif // CSSPGO_CODEGEN_LOWERING_H

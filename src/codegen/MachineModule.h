//===- codegen/MachineModule.h - Lowered machine code -----------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lowered "binary": a flat stream of machine instructions with byte
/// sizes and (after linking) byte addresses. Control flow is expressed the
/// way hardware sees it — conditional branches have one explicit taken
/// target and fall through otherwise — which is exactly the property LBR
/// sampling and range-based profile generation rely on.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_CODEGEN_MACHINEMODULE_H
#define CSSPGO_CODEGEN_MACHINEMODULE_H

#include "ir/Instruction.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace csspgo {

/// One machine instruction.
struct MInst {
  Opcode Op = Opcode::Mov;
  RegId Dst = InvalidReg;
  Operand A, B, C;
  std::vector<Operand> Args; ///< Call arguments.

  /// Call: index of the callee in Binary::Funcs.
  uint32_t CalleeIdx = ~0u;
  /// Tail calls lower to frame-replacing jumps.
  bool IsTailCall = false;

  /// CondBr: branch is taken when (cond != 0) XOR InvertCond. Fallthrough
  /// is the next instruction in layout order.
  bool InvertCond = false;

  /// Branch target as a global instruction index (CondBr taken target, Br
  /// target). -1 when not a branch.
  int64_t Target = -1;

  /// InstrProfIncr: global counter index.
  uint32_t CounterIdx = 0;

  /// Calls: the call-site id (probe id / value-site id) in the origin
  /// function's numbering; 0 when no anchors were inserted.
  uint32_t CallSiteId = 0;

  uint8_t Size = 0;   ///< Encoded size in bytes.
  uint64_t Addr = 0;  ///< Byte address (assigned by the linker).

  /// \name Symbolization metadata
  /// @{
  DebugLoc DL;
  uint64_t OriginGuid = 0; ///< Function owning DL's line numbering.
  /// Index into MachineFunction::InlineTable (0 = not inlined).
  uint32_t InlineId = 0;
  /// @}
};

/// A probe metadata record: probe (Guid, Id) attached to the instruction at
/// InstIdx (global index; address resolves after linking).
struct ProbeRecord {
  uint64_t Guid = 0;
  uint32_t ProbeId = 0;
  uint32_t InlineId = 0; ///< Inline context of the probe (function-local table).
  uint32_t FuncIdx = 0;  ///< Function whose InlineTable InlineId refers to.
  size_t InstIdx = 0;
  bool IsCallProbe = false;
};

/// Per-function info in the linked binary.
struct MachineFunction {
  std::string Name;
  uint64_t Guid = 0;
  uint32_t NumParams = 0;
  uint32_t NumRegs = 0;

  /// Global instruction index ranges. Hot part is [HotBegin, HotEnd);
  /// the split cold part is [ColdBegin, ColdEnd) (empty if not split).
  size_t HotBegin = 0, HotEnd = 0;
  size_t ColdBegin = 0, ColdEnd = 0;

  /// Entry instruction (global index) — first instruction of the hot part.
  size_t EntryIdx = 0;

  /// Unique inline stacks referenced by this function's instructions.
  /// Index 0 is always the empty stack.
  std::vector<std::vector<InlineFrame>> InlineTable;

  /// Instrumentation counters owned by this function occupy the global
  /// counter range [CounterBase + 1, CounterBase + NumCounters].
  uint32_t CounterBase = 0;
  uint32_t NumCounters = 0;

  bool containsIdx(size_t Idx) const {
    return (Idx >= HotBegin && Idx < HotEnd) ||
           (Idx >= ColdBegin && Idx < ColdEnd);
  }
};

/// The linked program image.
class Binary {
public:
  std::vector<MInst> Code;
  std::vector<MachineFunction> Funcs;
  std::vector<ProbeRecord> Probes;

  /// Symbol names from debug info / probe descriptors: covers functions
  /// whose standalone body was removed but whose inlined copies remain.
  std::map<uint64_t, std::string> DebugNames;

  /// Indirect-call dispatch table: slot -> function index in Funcs.
  std::vector<uint32_t> FuncTable;

  /// Total number of instrumentation counters (Instr PGO).
  uint32_t NumCounters = 0;

  /// Counter ownership: origin-function guid -> (global base, count).
  /// Counters are keyed by their *origin* function so clones inlined into
  /// other functions keep incrementing the origin's counters.
  std::map<uint64_t, std::pair<uint32_t, uint32_t>> CounterOwners;

  /// Base address of the text section.
  static constexpr uint64_t BaseAddr = 0x400000;

  /// Returns the function index containing global instruction \p Idx,
  /// or ~0u.
  uint32_t funcIndexOf(size_t Idx) const;

  /// Returns the global instruction index at byte address \p Addr (must be
  /// the start of an instruction), or SIZE_MAX.
  size_t indexOfAddr(uint64_t Addr) const;

  /// Returns the address of the instruction after \p Idx in layout order.
  uint64_t nextInstrAddr(size_t Idx) const;

  /// Text-section size in bytes.
  uint64_t textSize() const;

  /// Looks a function up by name; returns ~0u when absent.
  uint32_t funcIndexByName(const std::string &Name) const;

  /// Returns the full inlined frame stack for instruction \p Idx:
  /// outermost frame first; the last element is (OriginGuid, DL). Each
  /// entry is (function guid, location within that function).
  struct SymFrame {
    uint64_t Guid = 0;
    DebugLoc Loc;
    uint32_t CallProbeId = 0; ///< Call-site probe for non-leaf frames.
    bool operator==(const SymFrame &O) const {
      return Guid == O.Guid && Loc == O.Loc && CallProbeId == O.CallProbeId;
    }
  };
  std::vector<SymFrame> symbolize(size_t Idx) const;

  /// Rebuilds the address -> index lookup table; the linker calls this
  /// after assigning addresses.
  void buildAddrIndex();

private:
  std::vector<uint64_t> SortedAddrs; ///< Parallel to Code (layout order).
};

} // namespace csspgo

#endif // CSSPGO_CODEGEN_MACHINEMODULE_H

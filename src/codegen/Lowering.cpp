//===- codegen/Lowering.cpp - IR to machine lowering ----------------------===//

#include "codegen/Lowering.h"

#include <cassert>
#include <map>

namespace csspgo {

uint8_t machineSizeOf(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
    return 3;
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Mod:
    return 4;
  case Opcode::CmpEQ:
  case Opcode::CmpNE:
  case Opcode::CmpLT:
  case Opcode::CmpLE:
  case Opcode::CmpGT:
  case Opcode::CmpGE:
    return 3;
  case Opcode::Mov:
    return 3;
  case Opcode::Select:
    return 4;
  case Opcode::Load:
  case Opcode::Store:
    return 4;
  case Opcode::Call:
    return 5;
  case Opcode::CallIndirect:
    return 3; // call *reg / call [table + reg*8]
  case Opcode::Ret:
    return 1;
  case Opcode::Br:
    return 2;
  case Opcode::CondBr:
    return 2;
  case Opcode::PseudoProbe:
    return 0;
  case Opcode::InstrProfIncr:
    return 7; // inc qword ptr [rip + disp32]
  }
  return 1;
}

namespace {

class FunctionLowering {
public:
  FunctionLowering(const Function &F, const Module &M) : F(F), M(M) {
    Out.Name = F.getName();
    Out.Guid = F.getGuid();
    Out.NumParams = F.getNumParams();
    Out.NumRegs = F.getNumRegs();
    Out.NumCounters = F.NumCounters;
    Out.InlineTable.emplace_back(); // Id 0 = empty stack.
  }

  LoweredFunction run();

private:
  uint32_t internInlineStack(const std::vector<InlineFrame> &Stack);
  MInst &emit(const Instruction &I);
  void flushPendingProbes();
  void lowerBlock(const BasicBlock &BB, const BasicBlock *NextInSection);

  const Function &F;
  const Module &M;
  LoweredFunction Out;

  /// Layout order with cold blocks sunk to the end.
  std::vector<const BasicBlock *> Order;
  std::map<const BasicBlock *, size_t> BlockStart;
  /// Branch fixups: (inst index, destination block).
  std::vector<std::pair<size_t, const BasicBlock *>> Fixups;
  /// Probes awaiting their attachment instruction.
  std::vector<ProbeRecord> PendingProbes;
  std::map<std::vector<InlineFrame>, uint32_t> InlineIds;
};

uint32_t FunctionLowering::internInlineStack(
    const std::vector<InlineFrame> &Stack) {
  if (Stack.empty())
    return 0;
  auto It = InlineIds.find(Stack);
  if (It != InlineIds.end())
    return It->second;
  uint32_t Id = static_cast<uint32_t>(Out.InlineTable.size());
  Out.InlineTable.push_back(Stack);
  InlineIds.emplace(Stack, Id);
  return Id;
}

MInst &FunctionLowering::emit(const Instruction &I) {
  MInst MI;
  MI.Op = I.Op;
  MI.Dst = I.Dst;
  MI.A = I.A;
  MI.B = I.B;
  MI.C = I.C;
  MI.Args = I.Args;
  MI.IsTailCall = I.IsTailCall;
  MI.Size = machineSizeOf(I.Op);
  MI.DL = I.DL;
  MI.OriginGuid = I.OriginGuid;
  MI.InlineId = internInlineStack(I.InlineStack);
  Out.Insts.push_back(std::move(MI));
  flushPendingProbes();
  return Out.Insts.back();
}

void FunctionLowering::flushPendingProbes() {
  if (PendingProbes.empty())
    return;
  size_t Idx = Out.Insts.size() - 1;
  for (ProbeRecord &P : PendingProbes) {
    P.InstIdx = Idx;
    Out.Probes.push_back(P);
  }
  PendingProbes.clear();
}

void FunctionLowering::lowerBlock(const BasicBlock &BB,
                                  const BasicBlock *NextInSection) {
  for (const Instruction &I : BB.Insts) {
    if (I.isProbe()) {
      // Materialize as metadata attached to the next physical instruction.
      ProbeRecord P;
      P.Guid = I.OriginGuid;
      P.ProbeId = I.ProbeId;
      P.InlineId = internInlineStack(I.InlineStack);
      PendingProbes.push_back(P);
      continue;
    }

    if (I.Op == Opcode::Br) {
      if (I.Succ0 == NextInSection)
        continue; // Fallthrough; no instruction.
      MInst &MI = emit(I);
      Fixups.emplace_back(Out.Insts.size() - 1, I.Succ0);
      MI.Target = 0;
      continue;
    }

    if (I.Op == Opcode::CondBr) {
      if (I.Succ1 == NextInSection) {
        MInst &MI = emit(I);
        Fixups.emplace_back(Out.Insts.size() - 1, I.Succ0);
        MI.Target = 0;
      } else if (I.Succ0 == NextInSection) {
        MInst &MI = emit(I);
        MI.InvertCond = true;
        Fixups.emplace_back(Out.Insts.size() - 1, I.Succ1);
        MI.Target = 0;
      } else {
        MInst &MI = emit(I);
        Fixups.emplace_back(Out.Insts.size() - 1, I.Succ0);
        MI.Target = 0;
        // Synthesize the "else" jump.
        Instruction Else;
        Else.Op = Opcode::Br;
        Else.DL = I.DL;
        Else.OriginGuid = I.OriginGuid;
        Else.InlineStack = I.InlineStack;
        MInst &MB = emit(Else);
        Fixups.emplace_back(Out.Insts.size() - 1, I.Succ1);
        MB.Target = 0;
      }
      continue;
    }

    MInst &MI = emit(I);
    if (I.isCall()) {
      if (I.Op == Opcode::Call) {
        const Function *Callee = M.getFunction(I.Callee);
        assert(Callee && "call to unknown function survived verification");
        uint32_t CalleeIdx = 0;
        for (const auto &Fn : M.Functions) {
          if (Fn.get() == Callee)
            break;
          ++CalleeIdx;
        }
        MI.CalleeIdx = CalleeIdx;
      }
      MI.CallSiteId = I.ProbeId;
      // Call-site probe: record against the call instruction itself
      // (pseudo-probe mode only; counter mode uses CallSiteId directly).
      if (I.ProbeId && F.HasProbes) {
        ProbeRecord P;
        P.Guid = I.OriginGuid;
        P.ProbeId = I.ProbeId;
        P.InlineId = MI.InlineId;
        P.InstIdx = Out.Insts.size() - 1;
        P.IsCallProbe = true;
        Out.Probes.push_back(P);
      }
    } else if (I.isCounter()) {
      MI.CounterIdx = I.ProbeId; // Re-based to global ids by the linker.
    }
  }
}

LoweredFunction FunctionLowering::run() {
  // Layout: hot blocks in function order, then cold blocks.
  for (const auto &BB : F.Blocks)
    if (!BB->IsColdSection)
      Order.push_back(BB.get());
  size_t NumHotBlocks = Order.size();
  for (const auto &BB : F.Blocks)
    if (BB->IsColdSection)
      Order.push_back(BB.get());
  assert(!F.Blocks.empty() && "function has no blocks");
  // The entry leads its section: first hot block normally, first cold
  // block when the entire function is cold. Either way it is Order[0]
  // because splitting never marks the entry cold in a mixed function.
  assert(Order.front() == F.getEntry() && "entry must lead the layout");

  for (size_t I = 0; I != Order.size(); ++I) {
    if (I == NumHotBlocks)
      Out.ColdStartLocal = Out.Insts.size();
    BlockStart[Order[I]] = Out.Insts.size();
    // Fallthrough is only possible within a section: the hot->cold seam is
    // not contiguous in the linked image.
    const BasicBlock *Next = nullptr;
    bool CrossesSeam = I < NumHotBlocks && I + 1 >= NumHotBlocks;
    if (I + 1 < Order.size() && !CrossesSeam)
      Next = Order[I + 1];
    lowerBlock(*Order[I], Next);
  }
  if (Out.ColdStartLocal == SIZE_MAX)
    Out.ColdStartLocal = Out.Insts.size();

  assert(PendingProbes.empty() &&
         "probes must attach to a physical instruction (blocks end in "
         "terminators)");

  // Resolve branch fixups to local instruction indices.
  for (const auto &[InstIdx, Dest] : Fixups) {
    size_t Target = BlockStart.at(Dest);
    assert(Target < Out.Insts.size() && "branch to past-the-end block");
    Out.Insts[InstIdx].Target = static_cast<int64_t>(Target);
  }

  for (const auto &BB : F.Blocks)
    if (BB->HasCount)
      Out.HotnessScore += BB->Count;
  return Out;
}

} // namespace

std::vector<LoweredFunction> lowerModule(const Module &M) {
  std::vector<LoweredFunction> Result;
  Result.reserve(M.Functions.size());
  for (const auto &F : M.Functions)
    Result.push_back(FunctionLowering(*F, M).run());
  return Result;
}

} // namespace csspgo

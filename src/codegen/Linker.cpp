//===- codegen/Linker.cpp - Linking ----------------------------------------===//

#include "codegen/Linker.h"

#include <algorithm>
#include <cassert>

namespace csspgo {

std::unique_ptr<Binary> linkBinary(std::vector<LoweredFunction> Lowered) {
  auto Bin = std::make_unique<Binary>();

  // Pass 0: profile-guided function ordering. When any function carries a
  // hotness score, place hot functions first (descending, stable) so the
  // hot working set is contiguous. Call targets are remapped accordingly.
  bool AnyHotness = false;
  for (const LoweredFunction &LF : Lowered)
    AnyHotness |= LF.HotnessScore > 0;
  if (AnyHotness) {
    std::vector<size_t> Perm(Lowered.size());
    for (size_t I = 0; I != Perm.size(); ++I)
      Perm[I] = I;
    std::stable_sort(Perm.begin(), Perm.end(), [&Lowered](size_t A, size_t B) {
      return Lowered[A].HotnessScore > Lowered[B].HotnessScore;
    });
    std::vector<uint32_t> OldToNew(Lowered.size());
    for (size_t NewIdx = 0; NewIdx != Perm.size(); ++NewIdx)
      OldToNew[Perm[NewIdx]] = static_cast<uint32_t>(NewIdx);
    std::vector<LoweredFunction> Reordered;
    Reordered.reserve(Lowered.size());
    for (size_t NewIdx = 0; NewIdx != Perm.size(); ++NewIdx)
      Reordered.push_back(std::move(Lowered[Perm[NewIdx]]));
    Lowered = std::move(Reordered);
    for (LoweredFunction &LF : Lowered)
      for (MInst &MI : LF.Insts)
        if (MI.Op == Opcode::Call)
          MI.CalleeIdx = OldToNew[MI.CalleeIdx];
  }

  // Pass 1: compute global index layout. Hot parts first, cold parts after.
  struct Placement {
    size_t HotBase = 0;
    size_t ColdBase = 0;
    size_t ColdStartLocal = 0;
  };
  std::vector<Placement> Places(Lowered.size());

  size_t GlobalIdx = 0;
  for (size_t F = 0; F != Lowered.size(); ++F) {
    Places[F].HotBase = GlobalIdx;
    Places[F].ColdStartLocal = Lowered[F].ColdStartLocal;
    GlobalIdx += Lowered[F].ColdStartLocal;
  }
  for (size_t F = 0; F != Lowered.size(); ++F) {
    Places[F].ColdBase = GlobalIdx;
    GlobalIdx += Lowered[F].Insts.size() - Lowered[F].ColdStartLocal;
  }

  auto MapLocal = [&Places](size_t F, size_t Local) {
    const Placement &P = Places[F];
    return Local < P.ColdStartLocal ? P.HotBase + Local
                                    : P.ColdBase + (Local - P.ColdStartLocal);
  };

  // Counter id space: allocate per *origin* guid across the whole module
  // (inlined counter clones carry their origin's guid and local id).
  std::map<uint64_t, uint32_t> CounterMax;
  for (const LoweredFunction &LF : Lowered)
    for (const MInst &MI : LF.Insts)
      if (MI.Op == Opcode::InstrProfIncr)
        CounterMax[MI.OriginGuid] =
            std::max(CounterMax[MI.OriginGuid], MI.CounterIdx);
  // Also reserve space for functions with counters but no surviving
  // instructions of their own (fully inlined away): covered above since
  // their clones carry the guid.
  uint32_t TotalCounters = 0;
  std::map<uint64_t, std::pair<uint32_t, uint32_t>> Owners;
  for (const auto &[Guid, MaxId] : CounterMax) {
    Owners[Guid] = {TotalCounters, MaxId};
    TotalCounters += MaxId;
  }

  // Pass 2: emit function metadata and instructions.
  Bin->Code.resize(GlobalIdx);
  uint32_t CounterBase = 0;
  for (size_t F = 0; F != Lowered.size(); ++F) {
    LoweredFunction &LF = Lowered[F];
    MachineFunction MF;
    MF.Name = LF.Name;
    MF.Guid = LF.Guid;
    MF.NumParams = LF.NumParams;
    MF.NumRegs = LF.NumRegs;
    MF.HotBegin = Places[F].HotBase;
    MF.HotEnd = Places[F].HotBase + LF.ColdStartLocal;
    MF.ColdBegin = Places[F].ColdBase;
    MF.ColdEnd =
        Places[F].ColdBase + (LF.Insts.size() - LF.ColdStartLocal);
    // Fully-cold functions live entirely in the cold section; their entry
    // is the first cold instruction.
    MF.EntryIdx = MF.HotEnd > MF.HotBegin ? MF.HotBegin : MF.ColdBegin;
    MF.InlineTable = std::move(LF.InlineTable);
    if (auto It = Owners.find(LF.Guid); It != Owners.end()) {
      MF.CounterBase = It->second.first;
      MF.NumCounters = It->second.second;
    }
    Bin->Funcs.push_back(std::move(MF));

    for (size_t L = 0; L != LF.Insts.size(); ++L) {
      MInst MI = std::move(LF.Insts[L]);
      if (MI.Target >= 0)
        MI.Target =
            static_cast<int64_t>(MapLocal(F, static_cast<size_t>(MI.Target)));
      if (MI.Op == Opcode::InstrProfIncr)
        MI.CounterIdx += Owners.at(MI.OriginGuid).first;
      Bin->Code[MapLocal(F, L)] = std::move(MI);
    }

    for (ProbeRecord P : LF.Probes) {
      P.InstIdx = MapLocal(F, P.InstIdx);
      P.FuncIdx = static_cast<uint32_t>(F);
      Bin->Probes.push_back(P);
    }
  }
  (void)CounterBase;
  Bin->NumCounters = TotalCounters;
  Bin->CounterOwners = std::move(Owners);

  // Pass 3: assign addresses. 16-byte alignment at hot function starts.
  uint64_t Addr = Binary::BaseAddr;
  size_t NextFuncStart = 0;
  std::vector<size_t> FuncStarts;
  for (const MachineFunction &MF : Bin->Funcs)
    FuncStarts.push_back(MF.HotBegin);
  for (size_t I = 0; I != Bin->Code.size(); ++I) {
    if (NextFuncStart < FuncStarts.size() &&
        I == FuncStarts[NextFuncStart]) {
      Addr = (Addr + 15) & ~uint64_t(15);
      ++NextFuncStart;
    }
    Bin->Code[I].Addr = Addr;
    Addr += Bin->Code[I].Size;
  }
  Bin->buildAddrIndex();
  return Bin;
}

std::unique_ptr<Binary> compileToBinary(const Module &M) {
  auto Bin = linkBinary(lowerModule(M));
  Bin->DebugNames = M.guidNames();
  // Resolve the indirect-call dispatch table against the final function
  // order (names are stable across the linker's hotness permutation).
  for (const std::string &Entry : M.FunctionTable) {
    uint32_t Idx = Bin->funcIndexByName(Entry);
    assert(Idx != ~0u && "function table entry vanished");
    Bin->FuncTable.push_back(Idx);
  }
  return Bin;
}

} // namespace csspgo

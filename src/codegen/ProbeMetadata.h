//===- codegen/ProbeMetadata.h - Probe metadata section ----------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Models the .pseudo_probe / .pseudo_probe_desc sections: the
/// self-contained (no relocations in or out) metadata that maps binary
/// addresses back to (function GUID, probe id, inline stack). Provides the
/// size accounting for Fig. 9 and the grouped view the probe-based
/// symbolizer uses.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_CODEGEN_PROBEMETADATA_H
#define CSSPGO_CODEGEN_PROBEMETADATA_H

#include "codegen/MachineModule.h"

namespace csspgo {

struct ProbeMetadataStats {
  uint64_t ProbeEntries = 0;
  uint64_t InlineFrameEntries = 0;
  uint64_t FunctionDescriptors = 0;
  uint64_t SizeBytes = 0;
};

/// Computes the modeled serialized size of the probe metadata of \p Bin.
/// Encoding mirrors LLVM: per function a descriptor (guid + checksum +
/// name), then delta-encoded probe records; inlined probes nest under
/// call-site frames.
ProbeMetadataStats computeProbeMetadataStats(const Binary &Bin);

} // namespace csspgo

#endif // CSSPGO_CODEGEN_PROBEMETADATA_H

//===- codegen/Linker.h - Linking --------------------------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Links lowered functions into a Binary: places all hot sections first
/// (module order) and all split-off cold sections after them, assigns byte
/// addresses with 16-byte function alignment, resolves branch targets to
/// global instruction indices, and re-bases instrumentation counter ids to
/// a module-global counter space.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_CODEGEN_LINKER_H
#define CSSPGO_CODEGEN_LINKER_H

#include "codegen/Lowering.h"
#include "codegen/MachineModule.h"

#include <memory>

namespace csspgo {

/// Links \p Lowered into an executable image.
std::unique_ptr<Binary> linkBinary(std::vector<LoweredFunction> Lowered);

/// Convenience: lower + link in one step.
std::unique_ptr<Binary> compileToBinary(const Module &M);

} // namespace csspgo

#endif // CSSPGO_CODEGEN_LINKER_H

//===- codegen/DebugInfo.cpp - Debug info section model --------------------===//

#include "codegen/DebugInfo.h"

namespace csspgo {

static uint64_t varintSize(uint64_t V) {
  uint64_t Bytes = 1;
  while (V >= 128) {
    V >>= 7;
    ++Bytes;
  }
  return Bytes;
}

DebugInfoStats computeDebugInfoStats(const Binary &Bin) {
  DebugInfoStats Stats;
  Stats.FunctionEntries = Bin.Funcs.size();

  // Line table: one row per instruction whose (line, disc) differs from the
  // previous instruction's (the DWARF line program only emits on change).
  uint64_t PrevAddr = 0;
  DebugLoc PrevLoc;
  uint64_t PrevOrigin = 0;
  for (const MInst &I : Bin.Code) {
    if (I.DL == PrevLoc && I.OriginGuid == PrevOrigin) {
      continue;
    }
    ++Stats.LineTableRows;
    // Special opcode or addr-advance + line-advance, roughly.
    Stats.SizeBytes += varintSize(I.Addr - PrevAddr) + varintSize(I.DL.Line);
    if (I.DL.Discriminator)
      Stats.SizeBytes += 1 + varintSize(I.DL.Discriminator);
    PrevAddr = I.Addr;
    PrevLoc = I.DL;
    PrevOrigin = I.OriginGuid;
  }

  // Inlined-subroutine info: contiguous runs of the same inline context in
  // one function produce one DW_TAG_inlined_subroutine per frame, with
  // ranges. ~14 bytes per frame entry (abbrev + ranges + call file/line).
  uint32_t PrevInlineId = 0;
  uint32_t PrevFunc = ~0u;
  for (size_t Idx = 0; Idx != Bin.Code.size(); ++Idx) {
    const MInst &I = Bin.Code[Idx];
    uint32_t FIdx = Bin.funcIndexOf(Idx);
    if (I.InlineId != PrevInlineId || FIdx != PrevFunc) {
      if (I.InlineId && FIdx != ~0u) {
        uint64_t Frames = Bin.Funcs[FIdx].InlineTable[I.InlineId].size();
        Stats.InlineFrameEntries += Frames;
        Stats.SizeBytes += Frames * 14;
      }
      PrevInlineId = I.InlineId;
      PrevFunc = FIdx;
    }
  }

  // Per-function DIE (name ref, low/high pc, frame info): ~36 bytes, plus
  // the mangled-name string.
  for (const MachineFunction &F : Bin.Funcs)
    Stats.SizeBytes += 36 + F.Name.size() + 1;

  // Compilation-unit headers, abbrev table, string table overhead.
  Stats.SizeBytes += 512;
  return Stats;
}

} // namespace csspgo

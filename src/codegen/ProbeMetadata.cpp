//===- codegen/ProbeMetadata.cpp - Probe metadata section ------------------===//

#include "codegen/ProbeMetadata.h"

#include <map>

namespace csspgo {

static uint64_t varintSize(uint64_t V) {
  uint64_t Bytes = 1;
  while (V >= 128) {
    V >>= 7;
    ++Bytes;
  }
  return Bytes;
}

ProbeMetadataStats computeProbeMetadataStats(const Binary &Bin) {
  ProbeMetadataStats Stats;
  if (Bin.Probes.empty())
    return Stats;

  // Group probe records by function.
  std::map<uint32_t, std::vector<const ProbeRecord *>> ByFunc;
  for (const ProbeRecord &P : Bin.Probes)
    ByFunc[P.FuncIdx].push_back(&P);

  for (const auto &[FuncIdx, Records] : ByFunc) {
    const MachineFunction &F = Bin.Funcs[FuncIdx];
    ++Stats.FunctionDescriptors;
    // .pseudo_probe_desc: guid (8) + checksum (8) + name length + name.
    Stats.SizeBytes += 16 + varintSize(F.Name.size()) + F.Name.size();

    uint64_t PrevAddr = 0;
    for (const ProbeRecord *P : Records) {
      ++Stats.ProbeEntries;
      uint64_t Addr = Bin.Code[P->InstIdx].Addr;
      // Probe record: id + type/attr byte + address delta.
      Stats.SizeBytes += varintSize(P->ProbeId) + 1 +
                         varintSize(Addr >= PrevAddr ? Addr - PrevAddr
                                                     : PrevAddr - Addr);
      PrevAddr = Addr;
      // Inline frames: each level stores (caller guid, call-site probe id).
      if (P->InlineId && P->InlineId < F.InlineTable.size()) {
        uint64_t Frames = F.InlineTable[P->InlineId].size();
        Stats.InlineFrameEntries += Frames;
        for (const InlineFrame &IF : F.InlineTable[P->InlineId])
          // Caller is a varint index into the descriptor table, not a raw
          // 8-byte guid (LLVM encodes inline frames compactly).
          Stats.SizeBytes +=
              varintSize(IF.FuncGuid % 4096) + varintSize(IF.CallProbeId);
      }
    }
  }
  return Stats;
}

} // namespace csspgo

//===- codegen/DebugInfo.h - Debug info section model ------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Models the size and content of the DWARF-like debug-info sections that
/// sampling-based PGO uses as correlation anchors: the line table
/// (address -> function-relative line + discriminator) and the
/// inlined-subroutine info (address -> inline frame stack). The content
/// itself lives on the MInsts; this module provides the size accounting
/// used by the Fig. 9 experiment.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_CODEGEN_DEBUGINFO_H
#define CSSPGO_CODEGEN_DEBUGINFO_H

#include "codegen/MachineModule.h"

namespace csspgo {

struct DebugInfoStats {
  uint64_t LineTableRows = 0;
  uint64_t InlineFrameEntries = 0;
  uint64_t FunctionEntries = 0;
  uint64_t SizeBytes = 0;
};

/// Computes the modeled -g2 debug-info size for \p Bin: delta-encoded line
/// table rows plus inlined-subroutine DIEs plus per-function DIEs.
DebugInfoStats computeDebugInfoStats(const Binary &Bin);

} // namespace csspgo

#endif // CSSPGO_CODEGEN_DEBUGINFO_H

//===- codegen/MachineModule.cpp - Lowered machine code -------------------===//

#include "codegen/MachineModule.h"

#include <algorithm>
#include <cassert>

namespace csspgo {

uint32_t Binary::funcIndexOf(size_t Idx) const {
  for (uint32_t F = 0; F != Funcs.size(); ++F)
    if (Funcs[F].containsIdx(Idx))
      return F;
  return ~0u;
}

void Binary::buildAddrIndex() {
  SortedAddrs.resize(Code.size());
  for (size_t I = 0; I != Code.size(); ++I)
    SortedAddrs[I] = Code[I].Addr;
  assert(std::is_sorted(SortedAddrs.begin(), SortedAddrs.end()) &&
         "layout order must be address order");
}

size_t Binary::indexOfAddr(uint64_t Addr) const {
  auto It = std::lower_bound(SortedAddrs.begin(), SortedAddrs.end(), Addr);
  if (It == SortedAddrs.end() || *It != Addr)
    return SIZE_MAX;
  return static_cast<size_t>(It - SortedAddrs.begin());
}

uint64_t Binary::nextInstrAddr(size_t Idx) const {
  assert(Idx < Code.size());
  return Code[Idx].Addr + Code[Idx].Size;
}

uint64_t Binary::textSize() const {
  uint64_t Total = 0;
  for (const MInst &I : Code)
    Total += I.Size;
  return Total;
}

uint32_t Binary::funcIndexByName(const std::string &Name) const {
  for (uint32_t F = 0; F != Funcs.size(); ++F)
    if (Funcs[F].Name == Name)
      return F;
  return ~0u;
}

std::vector<Binary::SymFrame> Binary::symbolize(size_t Idx) const {
  std::vector<SymFrame> Frames;
  assert(Idx < Code.size());
  const MInst &I = Code[Idx];
  uint32_t FIdx = funcIndexOf(Idx);
  if (FIdx != ~0u && I.InlineId &&
      I.InlineId < Funcs[FIdx].InlineTable.size()) {
    for (const InlineFrame &F : Funcs[FIdx].InlineTable[I.InlineId]) {
      SymFrame S;
      S.Guid = F.FuncGuid;
      S.Loc = F.CallLoc;
      S.CallProbeId = F.CallProbeId;
      Frames.push_back(S);
    }
  }
  SymFrame Leaf;
  Leaf.Guid = I.OriginGuid;
  Leaf.Loc = I.DL;
  Frames.push_back(Leaf);
  return Frames;
}

} // namespace csspgo

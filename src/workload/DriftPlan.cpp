//===- workload/DriftPlan.cpp - Seeded source-drift plans -------------------===//

#include "workload/DriftPlan.h"

#include "support/Hashing.h"

namespace csspgo {

DriftPlan insertDriftPlan(uint32_t Seed) {
  DriftPlan P;
  P.Steps = {{CFGDriftKind::GuardInsert, Seed},
             {CFGDriftKind::BlockSplit, Seed},
             {CFGDriftKind::CalleeRename, Seed}};
  return P;
}

DriftPlan deleteDriftPlan(uint32_t Seed) {
  DriftPlan P;
  P.PrepSteps = {{CFGDriftKind::GuardInsert, Seed}};
  P.Steps = {{CFGDriftKind::GuardDelete, Seed}};
  return P;
}

DriftPlan releaseDriftPlan(uint64_t DriftSeed, unsigned Release) {
  uint32_t Seed = static_cast<uint32_t>(hashCombine(DriftSeed, Release));
  if (Seed == 0)
    Seed = 1;
  DriftPlan P;
  P.ShiftLines = 1 + Release % 3;
  switch (Release % 4) {
  case 1:
    P.Steps = {{CFGDriftKind::GuardInsert, Seed}};
    break;
  case 2:
    P.Steps = {{CFGDriftKind::BlockSplit, Seed},
               {CFGDriftKind::CalleeRename, Seed}};
    break;
  case 3:
    P.Steps = {{CFGDriftKind::GuardInsert, Seed},
               {CFGDriftKind::BlockSplit, Seed + 1}};
    break;
  default: // Release % 4 == 0: fold guards earlier releases inserted.
    P.Steps = {{CFGDriftKind::GuardDelete, Seed}};
    break;
  }
  return P;
}

std::string driftPlanName(const DriftPlan &P) {
  std::string Out;
  for (const DriftStep &S : P.Steps) {
    if (!Out.empty())
      Out += "+";
    switch (S.Kind) {
    case CFGDriftKind::GuardInsert:
      Out += "insert";
      break;
    case CFGDriftKind::GuardDelete:
      Out += "delete";
      break;
    case CFGDriftKind::BlockSplit:
      Out += "split";
      break;
    case CFGDriftKind::CalleeRename:
      Out += "rename";
      break;
    }
  }
  if (P.ShiftLines)
    Out += Out.empty() ? "shift" : "+shift";
  return Out.empty() ? "none" : Out;
}

unsigned applyDriftSteps(Module &M, const std::vector<DriftStep> &Steps) {
  unsigned Edits = 0;
  for (const DriftStep &S : Steps)
    Edits += applyCFGDrift(M, S.Kind, S.Seed);
  return Edits;
}

unsigned applyDriftPlan(Module &M, const DriftPlan &P) {
  unsigned Edits = applyDriftSteps(M, P.Steps);
  if (P.ShiftLines)
    applySourceDrift(M, P.ShiftLines);
  return Edits;
}

} // namespace csspgo

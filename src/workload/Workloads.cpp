//===- workload/Workloads.cpp - Named workload presets ----------------------===//

#include "workload/Workloads.h"

#include <algorithm>
#include <cassert>

namespace csspgo {

WorkloadConfig workloadPreset(const std::string &Name, double RequestScale) {
  WorkloadConfig C;
  C.Name = Name;
  if (Name == "AdRanker") {
    // Compute-heavy ranking: deep arithmetic, moderate call fan-out.
    C.Seed = 101;
    C.NumServices = 8;
    C.NumMids = 72;
    C.NumUtils = 28;
    C.NumColdHandlers = 16;
    C.ArithDensity = 7;
    C.FeatureLoop = 8;
    C.Requests = 3000;
    C.UnbiasedBranchProb = 0.25;
    C.MidsPerService = 10;
  } else if (Name == "AdRetriever") {
    // Branch-heavy retrieval with many similar code paths.
    C.Seed = 202;
    C.NumServices = 8;
    C.NumMids = 88;
    C.NumUtils = 32;
    C.NumColdHandlers = 20;
    C.ArithDensity = 5;
    C.DupTailProb = 0.65;
    C.MidsPerService = 12;
    C.UnbiasedBranchProb = 0.45;
    C.FeatureLoop = 6;
    C.Requests = 3000;
  } else if (Name == "AdFinder") {
    // Call-dense matching with long util dispatch chains.
    C.Seed = 303;
    C.NumServices = 7;
    C.NumMids = 80;
    C.NumUtils = 40;
    C.NumColdHandlers = 16;
    C.ArithDensity = 5;
    C.TailCallProb = 0.5;
    C.UtilCallsPerMid = 3;
    C.MidsPerService = 13;
    C.FeatureLoop = 6;
    C.Requests = 3000;
  } else if (Name == "HHVM") {
    // The biggest binary: wide dispatch, heavy i-cache pressure.
    C.Seed = 404;
    C.NumServices = 12;
    C.NumMids = 140;
    C.NumUtils = 56;
    C.NumColdHandlers = 32;
    C.ArithDensity = 8;
    C.FeatureLoop = 8;
    C.Requests = 2500;
    C.ServiceSkew = 1.0;
    C.MidsPerService = 13;
  } else if (Name == "HaaS") {
    // JS remote execution: small hot core, strong skew, long loops.
    C.Seed = 505;
    C.NumServices = 9;
    C.NumMids = 56;
    C.NumUtils = 20;
    C.NumColdHandlers = 14;
    C.ArithDensity = 6;
    C.ServiceSkew = 1.9;
    C.MidsPerService = 8;
    C.FeatureLoop = 12;
    C.Requests = 3000;
  } else if (Name == "ClangProxy") {
    // Client workload: many functions, short run, flat mix — sampling
    // covers a smaller share of the executed code (§IV-D).
    C.Seed = 606;
    C.NumServices = 14;
    C.NumMids = 150;
    C.NumUtils = 48;
    C.NumColdHandlers = 36;
    C.ArithDensity = 5;
    C.ServiceSkew = 0.3;
    C.MidsPerService = 12;
    C.FeatureLoop = 3;
    C.Requests = 700;
  } else {
    assert(false && "unknown workload preset");
  }
  C.Requests = static_cast<unsigned>(C.Requests * RequestScale);
  if (C.Requests == 0)
    C.Requests = 1;
  return C;
}

std::vector<std::string> serverWorkloadNames() {
  return {"AdRanker", "AdRetriever", "AdFinder", "HHVM", "HaaS"};
}

void applySourceDrift(Module &M, uint32_t ShiftLines) {
  for (auto &F : M.Functions) {
    // Find the midpoint line of the function and shift everything at or
    // below it, as if a comment block was inserted there.
    uint32_t MaxLine = 0;
    for (auto &BB : F->Blocks)
      for (auto &I : BB->Insts)
        MaxLine = std::max(MaxLine, I.DL.Line);
    uint32_t Mid = MaxLine / 2;
    for (auto &BB : F->Blocks)
      for (auto &I : BB->Insts)
        if (I.DL.Line >= Mid)
          I.DL.Line += ShiftLines;
  }
}

} // namespace csspgo

//===- workload/Workloads.cpp - Named workload presets ----------------------===//

#include "workload/Workloads.h"

#include "support/Hashing.h"

#include <algorithm>
#include <cassert>

namespace csspgo {

WorkloadConfig workloadPreset(const std::string &Name, double RequestScale) {
  WorkloadConfig C;
  C.Name = Name;
  if (Name == "AdRanker") {
    // Compute-heavy ranking: deep arithmetic, moderate call fan-out.
    C.Seed = 101;
    C.NumServices = 8;
    C.NumMids = 72;
    C.NumUtils = 28;
    C.NumColdHandlers = 16;
    C.ArithDensity = 7;
    C.FeatureLoop = 8;
    C.Requests = 3000;
    C.UnbiasedBranchProb = 0.25;
    C.MidsPerService = 10;
  } else if (Name == "AdRetriever") {
    // Branch-heavy retrieval with many similar code paths.
    C.Seed = 202;
    C.NumServices = 8;
    C.NumMids = 88;
    C.NumUtils = 32;
    C.NumColdHandlers = 20;
    C.ArithDensity = 5;
    C.DupTailProb = 0.65;
    C.MidsPerService = 12;
    C.UnbiasedBranchProb = 0.45;
    C.FeatureLoop = 6;
    C.Requests = 3000;
  } else if (Name == "AdFinder") {
    // Call-dense matching with long util dispatch chains.
    C.Seed = 303;
    C.NumServices = 7;
    C.NumMids = 80;
    C.NumUtils = 40;
    C.NumColdHandlers = 16;
    C.ArithDensity = 5;
    C.TailCallProb = 0.5;
    C.UtilCallsPerMid = 3;
    C.MidsPerService = 13;
    C.FeatureLoop = 6;
    C.Requests = 3000;
  } else if (Name == "HHVM") {
    // The biggest binary: wide dispatch, heavy i-cache pressure.
    C.Seed = 404;
    C.NumServices = 12;
    C.NumMids = 140;
    C.NumUtils = 56;
    C.NumColdHandlers = 32;
    C.ArithDensity = 8;
    C.FeatureLoop = 8;
    C.Requests = 2500;
    C.ServiceSkew = 1.0;
    C.MidsPerService = 13;
  } else if (Name == "HaaS") {
    // JS remote execution: small hot core, strong skew, long loops.
    C.Seed = 505;
    C.NumServices = 9;
    C.NumMids = 56;
    C.NumUtils = 20;
    C.NumColdHandlers = 14;
    C.ArithDensity = 6;
    C.ServiceSkew = 1.9;
    C.MidsPerService = 8;
    C.FeatureLoop = 12;
    C.Requests = 3000;
  } else if (Name == "RpcFanout") {
    // Microservice aggregator: always-indirect backend dispatch with
    // per-leg dominant targets and rare timeout/retry cold arms.
    C.Seed = 707;
    C.Archetype = WorkloadArchetype::RpcFanout;
    C.NumServices = 6; // Frontends.
    C.NumMids = 48;    // Backend RPC stubs.
    C.NumUtils = 24;
    C.NumColdHandlers = 12;
    C.FanoutBackends = 8;
    C.ArithDensity = 4;
    C.ServiceSkew = 1.4;
    C.FeatureLoop = 6;
    C.Requests = 2200;
  } else if (Name == "InterpLoop") {
    // Bytecode interpreter: one hot fetch/dispatch loop, skewed opcode
    // mix, handlers with per-opcode util modes.
    C.Seed = 808;
    C.Archetype = WorkloadArchetype::InterpLoop;
    C.NumServices = 1;
    C.NumUtils = 16;
    C.NumColdHandlers = 8;
    C.NumOpcodes = 28;
    C.BytecodeLength = 64;
    C.OpcodeSkew = 1.5;
    C.ArithDensity = 3;
    C.Requests = 1800;
  } else if (Name == "ColdBoot") {
    // Mobile cold start: boot phases dominate total cycles, the steady
    // state is short — function ordering, not branch bias, is the win.
    C.Seed = 909;
    C.Archetype = WorkloadArchetype::ColdBoot;
    C.NumServices = 1;
    C.NumMids = 40;
    C.NumUtils = 20;
    C.NumColdHandlers = 10;
    C.BootPhases = 56;
    C.ArithDensity = 5;
    C.FeatureLoop = 2;
    C.Requests = 400;
  } else if (Name == "ClangProxy") {
    // Client workload: many functions, short run, flat mix — sampling
    // covers a smaller share of the executed code (§IV-D).
    C.Seed = 606;
    C.NumServices = 14;
    C.NumMids = 150;
    C.NumUtils = 48;
    C.NumColdHandlers = 36;
    C.ArithDensity = 5;
    C.ServiceSkew = 0.3;
    C.MidsPerService = 12;
    C.FeatureLoop = 3;
    C.Requests = 700;
  } else {
    assert(false && "unknown workload preset");
  }
  C.Requests = static_cast<unsigned>(C.Requests * RequestScale);
  if (C.Requests == 0)
    C.Requests = 1;
  return C;
}

std::vector<std::string> serverWorkloadNames() {
  return {"AdRanker", "AdRetriever", "AdFinder", "HHVM", "HaaS"};
}

std::vector<std::string> archetypeWorkloadNames() {
  return {"RpcFanout", "InterpLoop", "ColdBoot"};
}

void applySourceDrift(Module &M, uint32_t ShiftLines) {
  for (auto &F : M.Functions) {
    // Find the midpoint line of the function and shift everything at or
    // below it, as if a comment block was inserted there.
    uint32_t MaxLine = 0;
    for (auto &BB : F->Blocks)
      for (auto &I : BB->Insts)
        MaxLine = std::max(MaxLine, I.DL.Line);
    uint32_t Mid = MaxLine / 2;
    for (auto &BB : F->Blocks)
      for (auto &I : BB->Insts)
        if (I.DL.Line >= Mid)
          I.DL.Line += ShiftLines;
  }
}

namespace {

/// Moves the last \p K blocks of \p F (just created) to right after layout
/// position \p AnchorIdx, so the edit lands mid-function and shifts the
/// probe ids of everything after it.
void moveNewBlocksAfter(Function &F, size_t AnchorIdx, size_t K) {
  std::rotate(F.Blocks.begin() + static_cast<ptrdiff_t>(AnchorIdx) + 1,
              F.Blocks.end() - static_cast<ptrdiff_t>(K), F.Blocks.end());
}

void shiftLinesFrom(Function &F, uint32_t FromLine, int32_t Delta) {
  for (auto &BB : F.Blocks)
    for (auto &I : BB->Insts)
      if (I.DL.Line >= FromLine)
        I.DL.Line = static_cast<uint32_t>(static_cast<int64_t>(I.DL.Line) +
                                          Delta);
}

/// Valid split points of \p BB: both halves non-empty, the terminator
/// stays in the tail, and a tail call is never left dangling before the
/// new branch.
std::vector<size_t> splitPoints(const BasicBlock &BB) {
  std::vector<size_t> Out;
  if (!BB.hasTerminator())
    return Out;
  // P in [1, size): head keeps [0, P), tail keeps [P, end) including the
  // terminator, and a tail call is never left dangling before the branch.
  for (size_t P = 1; P < BB.Insts.size(); ++P) {
    const Instruction &Before = BB.Insts[P - 1];
    if (Before.isCall() && Before.IsTailCall)
      continue;
    Out.push_back(P);
  }
  return Out;
}

unsigned seededPick(const Function &F, uint32_t Seed, size_t N) {
  return static_cast<unsigned>(
      hashCombine(hashBytes(F.getName()), Seed) % N);
}

/// Splits \p BB at \p Pos into head + tail, returning the new tail block
/// (appended to the function — caller repositions it).
BasicBlock *splitBlock(Function &F, BasicBlock *BB, size_t Pos,
                       const std::string &Label) {
  BasicBlock *Tail = F.createBlock(Label);
  Tail->Insts.assign(BB->Insts.begin() + static_cast<ptrdiff_t>(Pos),
                     BB->Insts.end());
  BB->Insts.erase(BB->Insts.begin() + static_cast<ptrdiff_t>(Pos),
                  BB->Insts.end());
  return Tail;
}

unsigned driftGuardInsert(Module &M, uint32_t Seed) {
  unsigned Edited = 0;
  for (auto &FP : M.Functions) {
    Function &F = *FP;
    // Candidate blocks with at least one valid split point.
    std::vector<std::pair<BasicBlock *, std::vector<size_t>>> Cands;
    for (auto &BB : F.Blocks) {
      auto Points = splitPoints(*BB);
      if (!Points.empty() && BB->Insts.size() >= 2)
        Cands.push_back({BB.get(), std::move(Points)});
    }
    if (Cands.empty())
      continue;
    auto &[BB, Points] = Cands[seededPick(F, Seed, Cands.size())];
    size_t Pos = Points[Points.size() / 2];
    size_t AnchorIdx = F.blockIndex(BB);

    // The guard occupies three new source lines at the split point.
    uint32_t GuardLine = BB->Insts[Pos].DL.Line;
    shiftLinesFrom(F, GuardLine, 3);

    BasicBlock *Tail = splitBlock(F, BB, Pos, "drift.tail");
    BasicBlock *Cold = F.createBlock("drift.cold");

    RegId Guard = F.allocReg();
    Instruction Cmp;
    Cmp.Op = Opcode::CmpEQ;
    Cmp.Dst = Guard;
    Cmp.A = Operand::imm(0);
    Cmp.B = Operand::imm(0);
    Cmp.DL.Line = GuardLine;
    Cmp.OriginGuid = F.getGuid();
    BB->Insts.push_back(std::move(Cmp));
    Instruction Br;
    Br.Op = Opcode::CondBr;
    Br.A = Operand::reg(Guard);
    Br.Succ0 = Tail; // 0 == 0: always taken.
    Br.Succ1 = Cold;
    Br.DL.Line = GuardLine + 1;
    Br.OriginGuid = F.getGuid();
    BB->Insts.push_back(std::move(Br));

    Instruction ColdBr;
    ColdBr.Op = Opcode::Br;
    ColdBr.Succ0 = Tail;
    ColdBr.DL.Line = GuardLine + 2;
    ColdBr.OriginGuid = F.getGuid();
    Cold->Insts.push_back(std::move(ColdBr));

    moveNewBlocksAfter(F, AnchorIdx, 2);
    ++Edited;
  }
  return Edited;
}

unsigned predecessorCount(const Function &F, const BasicBlock *BB) {
  unsigned N = 0;
  for (const auto &Other : F.Blocks)
    for (BasicBlock *S : Other->successors())
      if (S == BB)
        ++N;
  return N;
}

bool regUsedOutside(const Function &F, RegId R, const Instruction *Skip) {
  std::vector<RegId> Used;
  for (const auto &BB : F.Blocks)
    for (const Instruction &I : BB->Insts) {
      if (&I == Skip)
        continue;
      Used.clear();
      I.getUsedRegs(Used);
      if (std::find(Used.begin(), Used.end(), R) != Used.end())
        return true;
    }
  return false;
}

unsigned driftGuardDelete(Module &M) {
  unsigned Edited = 0;
  for (auto &FP : M.Functions) {
    Function &F = *FP;
    bool FoldedAny = false;
    for (auto &BBPtr : F.Blocks) {
      BasicBlock *BB = BBPtr.get();
      if (!BB->hasTerminator())
        continue;
      Instruction &Term = BB->terminator();
      if (Term.Op != Opcode::CondBr || !Term.A.isReg())
        continue;
      // Constant-condition guard: the condition is a same-block compare
      // of two immediates.
      RegId Cond = Term.A.getReg();
      ptrdiff_t DefIdx = -1;
      for (ptrdiff_t I = static_cast<ptrdiff_t>(BB->Insts.size()) - 2;
           I >= 0; --I)
        if (BB->Insts[static_cast<size_t>(I)].writesReg(Cond)) {
          DefIdx = I;
          break;
        }
      if (DefIdx < 0)
        continue;
      Instruction &Def = BB->Insts[static_cast<size_t>(DefIdx)];
      if (!Def.A.isImm() || !Def.B.isImm())
        continue;
      int64_t A = Def.A.getImm(), B = Def.B.getImm();
      bool Val;
      switch (Def.Op) {
      case Opcode::CmpEQ: Val = A == B; break;
      case Opcode::CmpNE: Val = A != B; break;
      case Opcode::CmpLT: Val = A < B; break;
      case Opcode::CmpLE: Val = A <= B; break;
      case Opcode::CmpGT: Val = A > B; break;
      case Opcode::CmpGE: Val = A >= B; break;
      default: continue;
      }
      uint32_t GuardLine = Def.DL.Line;
      BasicBlock *Taken = Val ? Term.Succ0 : Term.Succ1;
      Term.Op = Opcode::Br;
      Term.A = Operand();
      Term.Succ0 = Taken;
      Term.Succ1 = nullptr;
      if (!regUsedOutside(F, Cond, &Def))
        BB->Insts.erase(BB->Insts.begin() + DefIdx);
      // The guard's source lines disappear with it.
      shiftLinesFrom(F, GuardLine + 1, -3);
      FoldedAny = true;
    }
    if (!FoldedAny)
      continue;
    ++Edited;
    // Erase arms that just became unreachable.
    bool Removed = true;
    while (Removed) {
      Removed = false;
      for (auto &BBPtr : F.Blocks) {
        BasicBlock *BB = BBPtr.get();
        if (BB == F.getEntry() || predecessorCount(F, BB))
          continue;
        F.eraseBlock(BB);
        Removed = true;
        break;
      }
    }
    // Collapse trivial single-predecessor Br chains the fold left behind.
    bool Merged = true;
    while (Merged) {
      Merged = false;
      for (auto &BBPtr : F.Blocks) {
        BasicBlock *BB = BBPtr.get();
        if (!BB->hasTerminator() || BB->terminator().Op != Opcode::Br)
          continue;
        BasicBlock *Succ = BB->terminator().Succ0;
        if (!Succ || Succ == BB || Succ == F.getEntry() ||
            predecessorCount(F, Succ) != 1)
          continue;
        BB->Insts.pop_back(); // The Br.
        BB->Insts.insert(BB->Insts.end(), Succ->Insts.begin(),
                         Succ->Insts.end());
        Succ->Insts.clear();
        F.eraseBlock(Succ);
        Merged = true;
        break;
      }
    }
  }
  return Edited;
}

unsigned driftBlockSplit(Module &M, uint32_t Seed) {
  unsigned Edited = 0;
  for (auto &FP : M.Functions) {
    Function &F = *FP;
    std::vector<std::pair<BasicBlock *, std::vector<size_t>>> Cands;
    for (auto &BB : F.Blocks) {
      auto Points = splitPoints(*BB);
      if (!Points.empty() && BB->Insts.size() >= 3)
        Cands.push_back({BB.get(), std::move(Points)});
    }
    if (Cands.empty())
      continue;
    auto &[BB, Points] = Cands[seededPick(F, Seed * 2654435761u, Cands.size())];
    size_t Pos = Points[Points.size() / 2];
    size_t AnchorIdx = F.blockIndex(BB);
    BasicBlock *Tail = splitBlock(F, BB, Pos, "drift.split");
    Instruction Br;
    Br.Op = Opcode::Br;
    Br.Succ0 = Tail;
    Br.DL = Tail->Insts.front().DL; // No source-line changes.
    Br.OriginGuid = F.getGuid();
    BB->Insts.push_back(std::move(Br));
    moveNewBlocksAfter(F, AnchorIdx, 1);
    ++Edited;
  }
  return Edited;
}

unsigned driftCalleeRename(Module &M) {
  // Victim: the most-called non-entry function (ties: first by name).
  std::map<std::string, unsigned> CallCounts;
  for (auto &F : M.Functions)
    for (auto &BB : F->Blocks)
      for (const Instruction &I : BB->Insts)
        if (I.Op == Opcode::Call)
          ++CallCounts[I.Callee];
  Function *Victim = nullptr;
  unsigned Best = 0;
  for (auto &F : M.Functions) {
    if (F->IsEntryPoint)
      continue;
    auto It = CallCounts.find(F->getName());
    unsigned N = It == CallCounts.end() ? 0 : It->second;
    if (N > Best) {
      Best = N;
      Victim = F.get();
    }
  }
  if (!Victim || !Best)
    return 0;

  const std::string OldName = Victim->getName();
  const std::string NewName = OldName + "_v2";
  const std::string HelperName = OldName + "_helper";
  if (M.getFunction(NewName) || M.getFunction(HelperName))
    return 0; // Already drifted.

  // Tiny new helper: returns its argument (pure, no memory traffic).
  Function *Helper = M.createFunction(HelperName, 1);
  {
    BasicBlock *Entry = Helper->createBlock("entry");
    Instruction Ret;
    Ret.Op = Opcode::Ret;
    Ret.A = Operand::reg(0);
    Ret.DL.Line = 1;
    Ret.OriginGuid = Helper->getGuid();
    Entry->Insts.push_back(std::move(Ret));
  }

  // Clone the victim under the new symbol (fresh GUID).
  Function *NewF = M.createFunction(NewName, Victim->getNumParams());
  NewF->ensureRegs(Victim->getNumRegs());
  NewF->NoInline = Victim->NoInline;
  NewF->AlwaysInline = Victim->AlwaysInline;
  std::map<const BasicBlock *, BasicBlock *> BlockMap;
  for (auto &BB : Victim->Blocks)
    BlockMap[BB.get()] = NewF->createBlock(BB->getLabel());
  for (auto &BB : Victim->Blocks) {
    BasicBlock *NB = BlockMap[BB.get()];
    NB->Insts = BB->Insts;
    for (Instruction &I : NB->Insts) {
      if (I.Succ0)
        I.Succ0 = BlockMap[I.Succ0];
      if (I.Succ1)
        I.Succ1 = BlockMap[I.Succ1];
      if (I.OriginGuid == Victim->getGuid())
        I.OriginGuid = NewF->getGuid();
    }
  }

  // The refactor also added a call to the new helper at the top.
  {
    BasicBlock *Entry = NewF->getEntry();
    size_t Pos = 0;
    while (Pos < Entry->Insts.size() && Entry->Insts[Pos].isIntrinsic())
      ++Pos;
    Instruction Call;
    Call.Op = Opcode::Call;
    Call.Dst = NewF->allocReg();
    Call.Callee = HelperName;
    Call.Args = {Operand::imm(7)};
    Call.DL.Line =
        Pos < Entry->Insts.size() ? Entry->Insts[Pos].DL.Line : 1;
    Call.OriginGuid = NewF->getGuid();
    Entry->Insts.insert(Entry->Insts.begin() + static_cast<ptrdiff_t>(Pos),
                        std::move(Call));
  }

  // Retarget every call site and function-table entry, then drop the old
  // body.
  unsigned Retargeted = 0;
  for (auto &F : M.Functions)
    for (auto &BB : F->Blocks)
      for (Instruction &I : BB->Insts)
        if (I.Op == Opcode::Call && I.Callee == OldName) {
          I.Callee = NewName;
          ++Retargeted;
        }
  for (std::string &Entry : M.FunctionTable)
    if (Entry == OldName) {
      Entry = NewName;
      ++Retargeted;
    }
  M.eraseFunction(Victim);
  return Retargeted;
}

} // namespace

unsigned applyCFGDrift(Module &M, CFGDriftKind K, uint32_t Seed) {
  switch (K) {
  case CFGDriftKind::GuardInsert:
    return driftGuardInsert(M, Seed);
  case CFGDriftKind::GuardDelete:
    return driftGuardDelete(M);
  case CFGDriftKind::BlockSplit:
    return driftBlockSplit(M, Seed);
  case CFGDriftKind::CalleeRename:
    return driftCalleeRename(M);
  }
  return 0;
}

} // namespace csspgo

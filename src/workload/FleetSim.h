//===- workload/FleetSim.h - Deterministic fleet model ----------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic model of a profiling fleet: N hosts spread over a few
/// services, sampled in fixed-length epochs under a diurnal traffic
/// curve. This is the workload side of the continuous-profiling service
/// (src/service) — it decides *what* each host runs and how hard, and
/// produces the per-(host, epoch) sampling assignments; executing them is
/// the service's job.
///
/// Everything is a pure function of FleetConfig: host→service assignment,
/// per-epoch load, seeds and timestamps. The diurnal curve is a
/// phase-shifted triangle wave in integer permille (no floating trig), so
/// two fleets with the same config produce byte-identical task streams on
/// any platform — the property the service's sharded-vs-serial
/// bit-identity guarantee rests on.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_WORKLOAD_FLEETSIM_H
#define CSSPGO_WORKLOAD_FLEETSIM_H

#include "workload/ProgramGenerator.h"

#include <cstdint>
#include <string>
#include <vector>

namespace csspgo {

struct FleetConfig {
  unsigned Hosts = 32;
  unsigned Services = 3;
  /// Epochs per `run` pass (the service can keep running more).
  unsigned Epochs = 8;
  uint64_t Seed = 1;

  /// Seconds between epoch timestamps (recorded in store EpochInfo).
  uint64_t EpochSeconds = 900;
  /// Epochs per diurnal traffic cycle.
  unsigned DiurnalPeriod = 8;
  /// Peak-to-mean traffic swing, permille (400 = ±40%).
  uint32_t DiurnalAmplitudePermille = 400;

  /// Request-count scale of the service workload presets (fleet runs use
  /// small per-host runs; the volume comes from host count).
  double RequestScale = 0.05;
  /// PMU sampling period at nominal (1000‰) load; diurnal load shortens
  /// or stretches it, the way a fixed-rate sampler sees more samples on a
  /// busier host.
  uint64_t BaseSamplePeriod = 4001;
};

/// One host's sampling assignment for one epoch.
struct HostTask {
  unsigned Epoch = 0;
  unsigned Host = 0;
  unsigned Service = 0;
  /// Input image seed — distinct per (host, epoch), so hosts of a service
  /// see different request streams that drift across epochs.
  uint64_t InputSeed = 0;
  /// Sampler jitter seed, likewise distinct per (host, epoch).
  uint64_t SamplerSeed = 0;
  /// Diurnally modulated sampling period for this host this epoch.
  uint64_t SamplePeriodCycles = 0;
  /// Service load this epoch, permille of nominal.
  uint32_t LoadPermille = 1000;
  /// Collection timestamp (shared by the whole epoch).
  uint64_t Timestamp = 0;
};

class FleetSim {
public:
  explicit FleetSim(FleetConfig Config);

  const FleetConfig &config() const { return C; }

  /// Preset-derived display name of service \p S ("AdRanker#0", ...).
  const std::string &serviceName(unsigned S) const { return Names[S]; }

  /// The workload config service \p S runs (a scaled server preset;
  /// services beyond the preset list reuse presets with distinct seeds).
  WorkloadConfig serviceWorkload(unsigned S) const;

  /// Static host→service assignment (round-robin).
  unsigned serviceOfHost(unsigned H) const { return H % C.Services; }
  /// Number of hosts assigned to service \p S.
  unsigned hostsOfService(unsigned S) const;

  /// Diurnal load of service \p S at epoch \p E, permille of nominal.
  /// Triangle wave over DiurnalPeriod epochs, phase-shifted per service so
  /// the services don't peak together (the "traffic mix" shifts through
  /// the day even though every host keeps its service).
  uint32_t loadPermille(unsigned S, unsigned E) const;

  /// Timestamp recorded for epoch \p E.
  uint64_t timestamp(unsigned E) const {
    return (static_cast<uint64_t>(E) + 1) * C.EpochSeconds;
  }

  /// The sampling assignments of epoch \p E, in ascending host order —
  /// the canonical reduction order for bit-identical aggregation.
  std::vector<HostTask> epochTasks(unsigned E) const;

private:
  FleetConfig C;
  std::vector<std::string> Names;
};

} // namespace csspgo

#endif // CSSPGO_WORKLOAD_FLEETSIM_H

//===- workload/FleetSim.cpp - Deterministic fleet model ---------------------===//

#include "workload/FleetSim.h"

#include "workload/Workloads.h"

#include <algorithm>

namespace csspgo {

namespace {

/// splitmix64 finalizer — decorrelates (seed, host, epoch) into
/// independent-looking streams without any platform-dependent state.
uint64_t mix(uint64_t X) {
  X += 0x9E3779B97F4A7C15ull;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ull;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBull;
  return X ^ (X >> 31);
}

} // namespace

FleetSim::FleetSim(FleetConfig Config) : C(Config) {
  C.Hosts = std::max(1u, C.Hosts);
  C.Services = std::max(1u, std::min(C.Services, C.Hosts));
  C.DiurnalPeriod = std::max(1u, C.DiurnalPeriod);
  C.DiurnalAmplitudePermille = std::min(C.DiurnalAmplitudePermille, 900u);
  C.BaseSamplePeriod = std::max<uint64_t>(1, C.BaseSamplePeriod);
  std::vector<std::string> Presets = serverWorkloadNames();
  Names.reserve(C.Services);
  for (unsigned S = 0; S != C.Services; ++S)
    Names.push_back(Presets[S % Presets.size()] + "#" + std::to_string(S));
}

WorkloadConfig FleetSim::serviceWorkload(unsigned S) const {
  std::vector<std::string> Presets = serverWorkloadNames();
  WorkloadConfig W = workloadPreset(Presets[S % Presets.size()],
                                    C.RequestScale);
  W.Name = Names[S];
  // Distinct program per service even when presets repeat.
  W.Seed = mix(C.Seed * 1000003 + S) | 1;
  return W;
}

unsigned FleetSim::hostsOfService(unsigned S) const {
  return C.Hosts / C.Services + (S < C.Hosts % C.Services ? 1 : 0);
}

uint32_t FleetSim::loadPermille(unsigned S, unsigned E) const {
  unsigned Period = C.DiurnalPeriod;
  // Spread service peaks evenly across the cycle.
  unsigned Phase = (E + S * Period / C.Services) % Period;
  unsigned Half = std::max(1u, Period / 2);
  unsigned Dist = Phase <= Half ? Phase : Period - Phase; // 0..Half
  uint32_t A = C.DiurnalAmplitudePermille;
  return 1000 - A + static_cast<uint32_t>(2ull * A * Dist / Half);
}

std::vector<HostTask> FleetSim::epochTasks(unsigned E) const {
  std::vector<HostTask> Tasks;
  Tasks.reserve(C.Hosts);
  for (unsigned H = 0; H != C.Hosts; ++H) {
    HostTask T;
    T.Epoch = E;
    T.Host = H;
    T.Service = serviceOfHost(H);
    T.InputSeed = mix(C.Seed ^ mix(H) ^ mix(static_cast<uint64_t>(E) << 32));
    T.SamplerSeed =
        mix(T.InputSeed ^ 0xA5A5A5A5A5A5A5A5ull) | 1; // nonzero
    T.LoadPermille = loadPermille(T.Service, E);
    // Busier service => more samples per cycle budget => shorter period.
    T.SamplePeriodCycles =
        std::max<uint64_t>(1, C.BaseSamplePeriod * 1000 / T.LoadPermille);
    T.Timestamp = timestamp(E);
    Tasks.push_back(T);
  }
  return Tasks;
}

} // namespace csspgo

//===- workload/Workloads.h - Named workload presets -------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named workload presets standing in for the paper's evaluation targets
/// (§IV-A): AdRanker, AdRetriever, AdFinder, HHVM and HaaS (server), plus
/// ClangProxy (the §IV-D client workload: broad code coverage, short run).
/// Each preset dials the generator toward the salient property of its
/// namesake (size, branchiness, call density, skew, coverage).
///
/// Also provides the source-drift helper for the §III-A drift experiment.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_WORKLOAD_WORKLOADS_H
#define CSSPGO_WORKLOAD_WORKLOADS_H

#include "workload/ProgramGenerator.h"

#include <vector>

namespace csspgo {

/// Returns the preset named \p Name ("AdRanker", "AdRetriever",
/// "AdFinder", "HHVM", "HaaS", "ClangProxy", plus the archetype presets
/// "RpcFanout", "InterpLoop", "ColdBoot"). \p RequestScale multiplies
/// the request count (benchmarks use larger scales than unit tests).
WorkloadConfig workloadPreset(const std::string &Name,
                              double RequestScale = 1.0);

/// All five server workload names in paper order.
std::vector<std::string> serverWorkloadNames();

/// The three non-server archetype presets (RpcFanout, InterpLoop,
/// ColdBoot) in ROADMAP order.
std::vector<std::string> archetypeWorkloadNames();

/// Applies a minor, CFG-preserving source drift to \p M: every function
/// gets its line numbers shifted from mid-function down, as if a comment
/// block had been inserted into the source. Debug-info keyed profiles
/// mis-correlate below the shift; probe-based profiles are unaffected and
/// the CFG checksum still matches (§III-A).
void applySourceDrift(Module &M, uint32_t ShiftLines = 3);

/// CFG-*changing* drift kinds for the stale-profile matching experiment.
/// Unlike applySourceDrift these alter block structure, so probe CFG
/// checksums of profiles collected before the drift mismatch and the
/// profiles become stale. Every kind preserves program semantics: a
/// drifted module computes exactly what the original did.
enum class CFGDriftKind {
  /// Per function: split one block at a seeded point and guard the tail
  /// with a never-taken if (a constant-true compare branching over a cold
  /// arm), shifting source lines below the edit down by three — the
  /// "developer added an early-out check" edit.
  GuardInsert,
  /// Folds constant-condition guards back out (the inverse edit):
  /// constant CondBrs become Brs, unreachable arms are erased, and
  /// single-predecessor Br chains collapse, shifting lines back up.
  GuardDelete,
  /// Per function: split one straight-line block in two (no line-number
  /// changes — stresses probe remapping alone).
  BlockSplit,
  /// Module-wide: clone the most-called non-entry function under a
  /// "<name>_v2" symbol (fresh GUID), give it a new tiny "<name>_helper"
  /// callee, retarget every direct call and function-table entry, and
  /// erase the old body — the "function renamed and extended" refactor.
  CalleeRename,
};

/// Applies \p K to \p M; \p Seed varies the edit points. Returns the
/// number of edits (functions edited, or call sites retargeted for
/// CalleeRename).
unsigned applyCFGDrift(Module &M, CFGDriftKind K, uint32_t Seed = 1);

} // namespace csspgo

#endif // CSSPGO_WORKLOAD_WORKLOADS_H

//===- workload/Workloads.h - Named workload presets -------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named workload presets standing in for the paper's evaluation targets
/// (§IV-A): AdRanker, AdRetriever, AdFinder, HHVM and HaaS (server), plus
/// ClangProxy (the §IV-D client workload: broad code coverage, short run).
/// Each preset dials the generator toward the salient property of its
/// namesake (size, branchiness, call density, skew, coverage).
///
/// Also provides the source-drift helper for the §III-A drift experiment.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_WORKLOAD_WORKLOADS_H
#define CSSPGO_WORKLOAD_WORKLOADS_H

#include "workload/ProgramGenerator.h"

#include <vector>

namespace csspgo {

/// Returns the preset named \p Name ("AdRanker", "AdRetriever",
/// "AdFinder", "HHVM", "HaaS", "ClangProxy"). \p RequestScale multiplies
/// the request count (benchmarks use larger scales than unit tests).
WorkloadConfig workloadPreset(const std::string &Name,
                              double RequestScale = 1.0);

/// All five server workload names in paper order.
std::vector<std::string> serverWorkloadNames();

/// Applies a minor, CFG-preserving source drift to \p M: every function
/// gets its line numbers shifted from mid-function down, as if a comment
/// block had been inserted into the source. Debug-info keyed profiles
/// mis-correlate below the shift; probe-based profiles are unaffected and
/// the CFG checksum still matches (§III-A).
void applySourceDrift(Module &M, uint32_t ShiftLines = 3);

} // namespace csspgo

#endif // CSSPGO_WORKLOAD_WORKLOADS_H

//===- workload/DriftPlan.h - Seeded source-drift plans ----------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named, seeded drift plans: the recipes for evolving a workload source
/// from one release to the next. A plan bundles the CFG-changing editors
/// (Workloads.h `applyCFGDrift`) with the CFG-preserving line shift
/// (`applySourceDrift`) so the drift ablation and the release-train
/// simulator stage *identical* edits — the ablation's insert/delete cells
/// and the train's per-release evolution share one source of truth.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_WORKLOAD_DRIFTPLAN_H
#define CSSPGO_WORKLOAD_DRIFTPLAN_H

#include "workload/Workloads.h"

#include <cstdint>
#include <string>
#include <vector>

namespace csspgo {

/// One CFG edit of a drift plan.
struct DriftStep {
  CFGDriftKind Kind;
  uint32_t Seed = 1;
};

/// A complete release-to-release source edit. PrepSteps are applied to
/// the *profiled* release before profiling (delete-drift needs the guards
/// to exist when the profile is collected); Steps and ShiftLines are the
/// edit that produces the next release.
struct DriftPlan {
  std::vector<DriftStep> PrepSteps;
  std::vector<DriftStep> Steps;
  /// applySourceDrift line shift applied after Steps (0 = none).
  uint32_t ShiftLines = 0;
};

/// The §III-A ablation's insert-drift cell: a never-taken guard, a block
/// split, and a callee rename land between the releases.
DriftPlan insertDriftPlan(uint32_t Seed = 1);

/// The inverse (delete-drift) cell: the profiled release already carries
/// guards (PrepSteps) and the next release folds them back out.
DriftPlan deleteDriftPlan(uint32_t Seed = 1);

/// The release-train edit for release \p Release (1-based) of a train
/// seeded with \p DriftSeed. Successive releases cycle through guard
/// insertion, splitting + renaming, combined edits and guard deletion
/// (which folds guards earlier releases inserted), each with a distinct
/// derived seed, plus a small line shift — so a train exercises every
/// editor and both drift directions.
DriftPlan releaseDriftPlan(uint64_t DriftSeed, unsigned Release);

/// Human-readable summary of a plan's Steps ("insert+split+rename" etc.).
std::string driftPlanName(const DriftPlan &P);

/// Applies \p Steps to \p M in order; returns the summed edit count.
unsigned applyDriftSteps(Module &M, const std::vector<DriftStep> &Steps);

/// Applies a plan's Steps then its ShiftLines to \p M (PrepSteps are the
/// caller's responsibility — they belong to the previous release).
/// Returns the summed CFG edit count.
unsigned applyDriftPlan(Module &M, const DriftPlan &P);

} // namespace csspgo

#endif // CSSPGO_WORKLOAD_DRIFTPLAN_H

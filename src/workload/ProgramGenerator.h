//===- workload/ProgramGenerator.h - Synthetic workloads ---------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic synthetic program generator standing in for the paper's
/// production services (AdRanker, AdRetriever, AdFinder, HHVM, HaaS) and
/// the Clang client workload. Programs are request-serving loops with the
/// structural features CSSPGO exploits and the hazards it mitigates:
///
/// - a service dispatch layer whose leaf utilities behave differently per
///   calling service (a "mode" argument that steers branches) — the
///   context-sensitivity payoff of Fig. 3;
/// - biased and unbiased conditional branches driven by input data;
/// - small loops (unroll bait), loop-invariant expressions (code-motion
///   bait), if/else arms with identical tails (tail-merge bait) and
///   convertible diamonds (if-convert bait) — each a §III-A correlation
///   hazard;
/// - rare cold paths (function-splitting / i-cache payoff);
/// - tail-call dispatch chains (missing-frame experiment) and bounded
///   recursion;
/// - behavior driven by a memory image, so training and evaluation inputs
///   can differ realistically.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_WORKLOAD_PROGRAMGENERATOR_H
#define CSSPGO_WORKLOAD_PROGRAMGENERATOR_H

#include "ir/Module.h"
#include "support/Random.h"

#include <memory>
#include <string>
#include <vector>

namespace csspgo {

/// Structural archetype of the generated program. Server is the original
/// request-serving shape (services -> mids -> utils); the others model the
/// ROADMAP's additional deployment scenarios:
///
///  - RpcFanout: a frontend aggregator that fans each request out to
///    several backend RPC stubs (always-indirect call sites, per-backend
///    modes, timeout/retry cold paths) — the microservice shape where
///    context sensitivity distinguishes the same backend under different
///    aggregation legs.
///  - InterpLoop: a bytecode interpreter fetch/dispatch loop over opcode
///    handlers (a skewed indirect dispatch site with an inline fast path
///    for the hottest opcode) — the HHVM-style shape where indirect-call
///    promotion and layout of the dispatch loop dominate.
///  - ColdBoot: a long straight-line startup sequence of once-executed
///    init phases followed by a short steady-state loop — the mobile
///    cold-start shape (à la -fprofile-timestamp) where function ordering
///    and hot/cold splitting decide i-cache behavior.
enum class WorkloadArchetype : uint8_t {
  Server,
  RpcFanout,
  InterpLoop,
  ColdBoot,
};

const char *archetypeName(WorkloadArchetype A);

struct WorkloadConfig {
  std::string Name = "workload";
  uint64_t Seed = 1;

  WorkloadArchetype Archetype = WorkloadArchetype::Server;

  unsigned NumServices = 4;
  unsigned NumMids = 16;
  unsigned NumUtils = 8;
  unsigned NumColdHandlers = 6;

  /// Requests the driver loop processes.
  unsigned Requests = 4000;
  /// Inner per-request feature-loop trip count.
  unsigned FeatureLoop = 8;
  /// Calls from each mid into utils.
  unsigned UtilCallsPerMid = 2;
  /// Distinct mids each service dispatches over (selected by feature
  /// value at run time through an if-else chain).
  unsigned MidsPerService = 10;

  /// Probability a util->util call is a tail call.
  double TailCallProb = 0.3;
  /// Probability a mid contains an identical-tail if/else pair.
  double DupTailProb = 0.5;
  /// Probability of an unpredictable (50/50) branch vs a biased one.
  double UnbiasedBranchProb = 0.3;
  /// Rare-path probability (cold handler call), in 1/1000 units of the
  /// input value space.
  unsigned ColdPathPerMille = 8;

  /// Zipf-like skew of the service mix (higher = more skew).
  double ServiceSkew = 1.2;

  /// Fraction of services dispatching mids through an indirect call (a
  /// function-pointer table) instead of an if-else chain. Indirect sites
  /// are where value profiling / indirect-call promotion pays off.
  double IndirectDispatchProb = 0.35;

  /// Words per request record in the input image.
  unsigned RecordWords = 8;
  uint64_t MemWords = 1 << 16;

  /// Extra straight-line arithmetic per block (code-size dial).
  unsigned ArithDensity = 3;

  /// RpcFanout: backend RPC calls issued per request by the frontend.
  unsigned FanoutBackends = 6;
  /// RpcFanout: probability a backend call path carries a timeout/retry
  /// check (the retry arm is the archetype's cold path).
  double RpcTimeoutProb = 0.5;

  /// InterpLoop: distinct opcode handlers, and the length of the bytecode
  /// program each request interprets.
  unsigned NumOpcodes = 24;
  unsigned BytecodeLength = 48;
  /// InterpLoop: Zipf skew of the opcode mix (hot opcodes dominate).
  double OpcodeSkew = 1.4;

  /// ColdBoot: one-shot init phases executed in order before the (short)
  /// steady-state loop. Each phase runs exactly once, so layout — not
  /// branch bias — decides its cost.
  unsigned BootPhases = 40;
};

/// Generates the program. The module's entry function is "main"; it
/// returns a checksum of all processed requests (used to verify that
/// every PGO variant preserves semantics).
std::unique_ptr<Module> generateProgram(const WorkloadConfig &Config);

/// Generates an input memory image for \p Config with the given seed.
/// \p DistributionShift (0..1) perturbs the value distribution slightly,
/// modeling train/eval differences.
std::vector<int64_t> generateInput(const WorkloadConfig &Config,
                                   uint64_t Seed,
                                   double DistributionShift = 0.0);

} // namespace csspgo

#endif // CSSPGO_WORKLOAD_PROGRAMGENERATOR_H

//===- workload/ProgramGenerator.cpp - Synthetic workloads ------------------===//

#include "workload/ProgramGenerator.h"

#include "ir/Builder.h"
#include "ir/Verifier.h"

#include <algorithm>
#include <cmath>

namespace csspgo {

namespace {

class ProgramBuilder {
public:
  ProgramBuilder(const WorkloadConfig &Config)
      : Config(Config), Rand(Config.Seed) {}

  std::unique_ptr<Module> build();

private:
  void buildUtil(unsigned K);
  void buildColdHandler(unsigned H);
  void buildMid(unsigned J);
  void buildService(unsigned I);
  void buildRecursive();
  void buildMain();

  // Archetype-specific layers (see WorkloadArchetype).
  void buildRpcFrontend(unsigned I);
  void buildOpHandler(unsigned J);
  void buildInterp();
  void buildBootPhase(unsigned K);
  void buildArchetypeMain();

  /// Emits ArithDensity straight-line ops over \p Src, returns last reg.
  RegId emitArith(Builder &B, RegId Src) {
    RegId R = Src;
    for (unsigned A = 0; A != Config.ArithDensity; ++A) {
      Opcode Ops[] = {Opcode::Add, Opcode::Mul, Opcode::Xor, Opcode::Sub};
      Opcode Op = Ops[Rand.nextBelow(4)];
      R = B.emitBinary(Op, Operand::reg(R),
                       Operand::imm(Rand.nextInRange(1, 13)));
    }
    return R;
  }

  std::string utilName(unsigned K) const {
    return "util_" + std::to_string(K);
  }
  std::string midName(unsigned J) const { return "mid_" + std::to_string(J); }
  std::string serviceName(unsigned I) const {
    return "service_" + std::to_string(I);
  }
  std::string coldName(unsigned H) const {
    return "cold_handler_" + std::to_string(H);
  }
  std::string opName(unsigned J) const { return "op_" + std::to_string(J); }
  std::string phaseName(unsigned K) const {
    return "init_phase_" + std::to_string(K);
  }

  /// First word of the bytecode region (InterpLoop): the top of the memory
  /// image, far above the request records.
  int64_t bytecodeBase() const {
    return static_cast<int64_t>(Config.MemWords - Config.BytecodeLength);
  }

  const WorkloadConfig &Config;
  Rng Rand;
  Module *M = nullptr;
  /// Per-service mode constants (drive the context-sensitive branches).
  std::vector<int64_t> Modes;
};

void ProgramBuilder::buildUtil(unsigned K) {
  // util_k(x, mode): context-sensitive branch on mode, a small unrollable
  // self-loop, and an optional tail call along the util chain.
  Function *F = M->createFunction(utilName(K), 2);
  Builder B(F);
  RegId X = 0, Mode = 1;

  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *MA = F->createBlock("modeA");
  BasicBlock *MB = F->createBlock("modeB");
  BasicBlock *MJ = F->createBlock("modejoin");
  BasicBlock *LH = F->createBlock("loop.h");
  BasicBlock *LB = F->createBlock("loop.b");
  BasicBlock *LX = F->createBlock("loop.x");

  // The mode split point: services pass distinct constant modes, so this
  // branch is ~100/0 per calling context but mixed in aggregate.
  int64_t Split = 50;
  B.setInsertBlock(Entry);
  RegId Acc = B.emitConst(0);
  RegId C = B.emitBinary(Opcode::CmpLT, Operand::reg(Mode),
                         Operand::imm(Split));
  B.emitCondBr(Operand::reg(C), MA, MB);

  B.setInsertBlock(MA);
  RegId YA = B.emitBinary(Opcode::Mul, Operand::reg(X), Operand::imm(2));
  YA = emitArith(B, YA);
  B.emitBinary(Opcode::Add, Operand::reg(YA), Operand::imm(1));
  MA->Insts.back().Dst = Acc;
  B.emitBr(MJ);

  B.setInsertBlock(MB);
  RegId YB = B.emitBinary(Opcode::Mul, Operand::reg(X), Operand::imm(3));
  YB = emitArith(B, YB);
  YB = emitArith(B, YB);
  B.emitBinary(Opcode::Sub, Operand::reg(YB), Operand::imm(2));
  MB->Insts.back().Dst = Acc;
  B.emitBr(MJ);

  // Small counted loop (unroll bait): acc = acc*5+3, 3 times.
  B.setInsertBlock(MJ);
  RegId I = B.emitConst(0);
  B.emitBr(LH);

  B.setInsertBlock(LH);
  RegId LC = B.emitBinary(Opcode::CmpLT, Operand::reg(I), Operand::imm(3));
  B.emitCondBr(Operand::reg(LC), LB, LX);

  B.setInsertBlock(LB);
  B.emitBinary(Opcode::Mul, Operand::reg(Acc), Operand::imm(5));
  LB->Insts.back().Dst = Acc;
  B.emitBinary(Opcode::Add, Operand::reg(I), Operand::imm(1));
  LB->Insts.back().Dst = I;
  B.emitBr(LH);

  B.setInsertBlock(LX);
  if (K + 1 < Config.NumUtils && Rand.nextBool(Config.TailCallProb)) {
    // Tail-call dispatch into the next util (frame elided at run time).
    RegId T = B.emitCall(utilName(K + 1),
                         {Operand::reg(Acc), Operand::reg(Mode)},
                         /*IsTail=*/true);
    B.emitRet(Operand::reg(T));
  } else {
    RegId R = B.emitBinary(Opcode::And, Operand::reg(Acc),
                           Operand::imm(0xFFFF));
    B.emitRet(Operand::reg(R));
  }
}

void ProgramBuilder::buildColdHandler(unsigned H) {
  // Rarely-executed error/slow path: a few stores to a scratch area.
  Function *F = M->createFunction(coldName(H), 1);
  Builder B(F);
  BasicBlock *Entry = F->createBlock("entry");
  B.setInsertBlock(Entry);
  RegId X = 0;
  RegId Addr = B.emitBinary(Opcode::Add, Operand::reg(X),
                            Operand::imm(1024 + 64 * H));
  RegId V = emitArith(B, X);
  B.emitStore(Operand::reg(Addr), Operand::reg(V));
  RegId V2 = B.emitBinary(Opcode::Xor, Operand::reg(V), Operand::imm(0x55));
  B.emitStore(Operand::reg(Addr), Operand::reg(V2));
  B.emitRet(Operand::reg(V2));
}

void ProgramBuilder::buildRecursive() {
  // rec(n): bounded recursion, exercises call-stack handling.
  Function *F = M->createFunction("rec", 1);
  Builder B(F);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *BaseCase = F->createBlock("base");
  BasicBlock *Rec = F->createBlock("rec");
  B.setInsertBlock(Entry);
  RegId C = B.emitBinary(Opcode::CmpLE, Operand::reg(0), Operand::imm(0));
  B.emitCondBr(Operand::reg(C), BaseCase, Rec);
  B.setInsertBlock(BaseCase);
  B.emitRet(Operand::imm(0));
  B.setInsertBlock(Rec);
  RegId N1 = B.emitBinary(Opcode::Sub, Operand::reg(0), Operand::imm(1));
  RegId R = B.emitCall("rec", {Operand::reg(N1)});
  RegId R1 = B.emitBinary(Opcode::Add, Operand::reg(R), Operand::imm(1));
  B.emitRet(Operand::reg(R1));
}

void ProgramBuilder::buildMid(unsigned J) {
  // mid_j(v, mode): biased branch with optional identical tails, a loop
  // with a hoistable invariant and an if-convertible diamond, util calls,
  // and a rare cold path.
  Function *F = M->createFunction(midName(J), 2);
  Builder B(F);
  RegId V = 0, Mode = 1;

  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *ArmA = F->createBlock("armA");
  BasicBlock *ArmB = F->createBlock("armB");
  bool DupTails = Rand.nextBool(Config.DupTailProb);
  BasicBlock *TailA = DupTails ? F->createBlock("tailA") : nullptr;
  BasicBlock *TailB = DupTails ? F->createBlock("tailB") : nullptr;
  BasicBlock *Join = F->createBlock("join");
  BasicBlock *LH = F->createBlock("loop.h");
  BasicBlock *LB = F->createBlock("loop.b");
  BasicBlock *P = F->createBlock("ifc.t");
  BasicBlock *Q = F->createBlock("ifc.f");
  BasicBlock *RJ = F->createBlock("ifc.j");
  BasicBlock *LX = F->createBlock("loop.x");
  BasicBlock *Cold = F->createBlock("cold");
  BasicBlock *Done = F->createBlock("done");

  bool Unbiased = Rand.nextBool(Config.UnbiasedBranchProb);
  int64_t Threshold = Unbiased ? 50 : Rand.nextInRange(75, 95);

  B.setInsertBlock(Entry);
  RegId Acc = B.emitConst(0);
  RegId W = B.emitBinary(Opcode::Mul, Operand::reg(V), Operand::imm(3));
  RegId C1 = B.emitBinary(Opcode::CmpLT, Operand::reg(V),
                          Operand::imm(Threshold));
  B.emitCondBr(Operand::reg(C1), ArmA, ArmB);

  B.setInsertBlock(ArmA);
  RegId A1 = B.emitBinary(Opcode::Add, Operand::reg(W), Operand::imm(11));
  A1 = emitArith(B, A1);
  ArmA->Insts.back().Dst = Acc;
  B.emitBr(DupTails ? TailA : Join);

  B.setInsertBlock(ArmB);
  RegId B1 = B.emitBinary(Opcode::Shl, Operand::reg(W), Operand::imm(1));
  B1 = emitArith(B, B1);
  ArmB->Insts.back().Dst = Acc;
  B.emitBr(DupTails ? TailB : Join);

  if (DupTails) {
    // Identical tails: tail-merge bait. Both blocks carry the same
    // instructions and the same successor; only anchors (probes/counters)
    // distinguish them. The store keeps the arms out of if-conversion's
    // reach (impure), so the merge opportunity survives to tail merge.
    B.setInsertBlock(TailA);
    B.emitBinary(Opcode::Add, Operand::reg(Acc), Operand::imm(7));
    TailA->Insts.back().Dst = Acc;
    B.emitStore(Operand::imm(2048 + static_cast<int64_t>(J)),
                Operand::reg(Acc));
    B.emitBinary(Opcode::Xor, Operand::reg(Acc), Operand::imm(0x3C));
    TailA->Insts.back().Dst = Acc;
    B.emitBr(Join);
    // Clone verbatim into TailB (identical lines too: same "source").
    TailB->Insts = TailA->Insts;
  }

  // Loop with a hoistable invariant in the header (code-motion bait) and
  // an unpredictable diamond in the body (if-convert bait).
  B.setInsertBlock(Join);
  RegId I = B.emitConst(0);
  B.emitBr(LH);

  B.setInsertBlock(LH);
  RegId Inv = B.emitBinary(Opcode::Mul, Operand::reg(Mode), Operand::imm(13));
  RegId LC = B.emitBinary(Opcode::CmpLT, Operand::reg(I), Operand::imm(4));
  B.emitCondBr(Operand::reg(LC), LB, LX);

  B.setInsertBlock(LB);
  RegId Par = B.emitBinary(Opcode::And, Operand::reg(V), Operand::imm(1));
  B.emitCondBr(Operand::reg(Par), P, Q);

  RegId XR = F->allocReg();
  B.setInsertBlock(P);
  B.emitBinary(Opcode::Add, Operand::reg(Acc), Operand::reg(Inv));
  P->Insts.back().Dst = XR;
  B.emitBr(RJ);
  B.setInsertBlock(Q);
  B.emitBinary(Opcode::Sub, Operand::reg(Acc), Operand::reg(Inv));
  Q->Insts.back().Dst = XR;
  B.emitBr(RJ);

  B.setInsertBlock(RJ);
  B.emitBinary(Opcode::Add, Operand::reg(XR), Operand::imm(0));
  RJ->Insts.back().Dst = Acc;
  B.emitBinary(Opcode::Add, Operand::reg(I), Operand::imm(1));
  RJ->Insts.back().Dst = I;
  B.emitBr(LH);

  // Util calls with the caller's mode (the context carrier).
  B.setInsertBlock(LX);
  for (unsigned U = 0; U != Config.UtilCallsPerMid; ++U) {
    unsigned K = static_cast<unsigned>(Rand.nextBelow(Config.NumUtils));
    RegId R = B.emitCall(utilName(K), {Operand::reg(Acc), Operand::reg(Mode)});
    B.emitBinary(Opcode::Add, Operand::reg(Acc), Operand::reg(R));
    LX->Insts.back().Dst = Acc;
  }
  // Rare cold path.
  RegId CC = B.emitBinary(
      Opcode::CmpGE, Operand::reg(V),
      Operand::imm(100 - static_cast<int64_t>(
                             std::max(1u, Config.ColdPathPerMille / 10))));
  B.emitCondBr(Operand::reg(CC), Cold, Done);

  B.setInsertBlock(Cold);
  unsigned H = static_cast<unsigned>(Rand.nextBelow(Config.NumColdHandlers));
  RegId CR = B.emitCall(coldName(H), {Operand::reg(Acc)});
  B.emitBinary(Opcode::Add, Operand::reg(Acc), Operand::reg(CR));
  Cold->Insts.back().Dst = Acc;
  if (J + 2 < Config.NumMids && Rand.nextBool(Config.TailCallProb * 0.4)) {
    // Second tail-call site skipping one mid ahead: creates converging
    // tail-call paths (J -> J+2 directly and via J+1), so some missing
    // frames become ambiguous for the inferrer — the paper's failure mode.
    RegId T2 = B.emitCall(midName(J + 2),
                          {Operand::reg(Acc), Operand::reg(Mode)},
                          /*IsTail=*/true);
    B.emitRet(Operand::reg(T2));
  } else {
    B.emitBr(Done);
  }

  B.setInsertBlock(Done);
  if (J + 1 < Config.NumMids && Rand.nextBool(Config.TailCallProb * 0.5)) {
    // Mid-level tail dispatch: mids are too big to inline, so these tail
    // calls survive into the binary and elide frames at run time — the
    // §III-B missing-frame scenario at scale.
    RegId T = B.emitCall(midName(J + 1),
                         {Operand::reg(Acc), Operand::reg(Mode)},
                         /*IsTail=*/true);
    B.emitRet(Operand::reg(T));
  } else {
    B.emitRet(Operand::reg(Acc));
  }
}

void ProgramBuilder::buildService(unsigned I) {
  // service_i(base): per-request feature loop that dispatches over a
  // service-specific set of mids (selected by feature value) with the
  // service-specific mode constant.
  Function *F = M->createFunction(serviceName(I), 1);
  Builder B(F);
  RegId Base = 0;

  unsigned NumDispatch = std::min(Config.MidsPerService, Config.NumMids);
  // Service-specific mid set: a strided window over all mids so that
  // every mid is reachable from some service.
  std::vector<unsigned> MidSet;
  for (unsigned D = 0; D != NumDispatch; ++D)
    MidSet.push_back((I * NumDispatch + D) % Config.NumMids);

  bool UseIndirect = Rand.nextBool(Config.IndirectDispatchProb);

  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *LH = F->createBlock("feat.h");
  BasicBlock *LB = F->createBlock("feat.b");
  std::vector<BasicBlock *> Checks, Calls;
  if (!UseIndirect)
    for (unsigned D = 0; D != NumDispatch; ++D) {
      Checks.push_back(F->createBlock("mcheck"));
      Calls.push_back(F->createBlock("mcall"));
    }
  BasicBlock *Next = F->createBlock("feat.n");
  BasicBlock *LX = F->createBlock("feat.x");

  B.setInsertBlock(Entry);
  RegId Acc = B.emitConst(0);
  RegId Feat = B.emitConst(0);
  RegId Mode = B.emitConst(Modes[I]);
  B.emitBr(LH);

  B.setInsertBlock(LH);
  RegId C = B.emitBinary(Opcode::CmpLT, Operand::reg(Feat),
                         Operand::imm(Config.FeatureLoop));
  B.emitCondBr(Operand::reg(C), LB, LX);

  B.setInsertBlock(LB);
  RegId Off = B.emitBinary(Opcode::Mod, Operand::reg(Feat),
                           Operand::imm(Config.RecordWords - 1));
  RegId Idx = B.emitBinary(Opcode::Add, Operand::reg(Base), Operand::reg(Off));
  Idx = B.emitBinary(Opcode::Add, Operand::reg(Idx), Operand::imm(1));
  RegId V = B.emitLoad(Operand::reg(Idx));
  // Dispatch selector: skewed toward the first mids of the set so the
  // service has a hot core and a lukewarm tail.
  RegId Mixed = B.emitBinary(Opcode::Mul, Operand::reg(V), Operand::reg(V));
  RegId Sel = B.emitBinary(Opcode::Mod, Operand::reg(Mixed),
                           Operand::imm(NumDispatch * 2));
  if (UseIndirect) {
    // Indirect dispatch through the mid function table, with a dominant
    // slot (sel >= NumDispatch collapses to the set's first mid) so the
    // site is promotable.
    RegId SlotIdx = B.emitBinary(Opcode::Mod, Operand::reg(Sel),
                                 Operand::imm(NumDispatch));
    // Collapse ~3/4 of the selector range onto the set's first mid so the
    // site has a clearly dominant target (promotable by ICP).
    RegId IsTail = B.emitBinary(
        Opcode::CmpGE, Operand::reg(Sel),
        Operand::imm(std::max<int64_t>(1, NumDispatch / 2)));
    RegId Dom = B.emitSelect(Operand::reg(IsTail), Operand::imm(0),
                             Operand::reg(SlotIdx));
    RegId Abs = B.emitBinary(Opcode::Add, Operand::reg(Dom),
                             Operand::imm(I * NumDispatch));
    RegId Slot = B.emitBinary(Opcode::Mod, Operand::reg(Abs),
                              Operand::imm(Config.NumMids));
    RegId R = B.emitCallIndirect(Operand::reg(Slot),
                                 {Operand::reg(V), Operand::reg(Mode)});
    B.emitBinary(Opcode::Add, Operand::reg(Acc), Operand::reg(R));
    LB->Insts.back().Dst = Acc;
    B.emitBr(Next);
  } else {
    B.emitBr(Checks[0]);
  }

  for (unsigned D = 0; !UseIndirect && D != NumDispatch; ++D) {
    B.setInsertBlock(Checks[D]);
    if (D + 1 == NumDispatch) {
      B.emitBr(Calls[D]); // Default arm.
    } else {
      // sel <= D captures a decreasing share per arm.
      RegId E = B.emitBinary(Opcode::CmpLE, Operand::reg(Sel),
                             Operand::imm(D));
      B.emitCondBr(Operand::reg(E), Calls[D], Checks[D + 1]);
    }
    B.setInsertBlock(Calls[D]);
    RegId R = B.emitCall(midName(MidSet[D]),
                         {Operand::reg(V), Operand::reg(Mode)});
    B.emitBinary(Opcode::Add, Operand::reg(Acc), Operand::reg(R));
    Calls[D]->Insts.back().Dst = Acc;
    B.emitBr(Next);
  }

  B.setInsertBlock(Next);
  // One service exercises the recursive helper lightly.
  if (I == 0) {
    RegId N = B.emitBinary(Opcode::Mod, Operand::reg(V), Operand::imm(4));
    RegId R = B.emitCall("rec", {Operand::reg(N)});
    B.emitBinary(Opcode::Add, Operand::reg(Acc), Operand::reg(R));
    Next->Insts.back().Dst = Acc;
  }
  B.emitBinary(Opcode::Add, Operand::reg(Feat), Operand::imm(1));
  Next->Insts.back().Dst = Feat;
  B.emitBr(LH);

  B.setInsertBlock(LX);
  B.emitRet(Operand::reg(Acc));
}

void ProgramBuilder::buildMain() {
  Function *F = M->createFunction("main", 0);
  F->IsEntryPoint = true;
  F->NoInline = true;
  Builder B(F);

  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *LH = F->createBlock("req.h");
  BasicBlock *LB = F->createBlock("req.b");
  std::vector<BasicBlock *> Checks, Calls;
  for (unsigned I = 0; I != Config.NumServices; ++I) {
    Checks.push_back(F->createBlock("check"));
    Calls.push_back(F->createBlock("dispatch"));
  }
  BasicBlock *Next = F->createBlock("req.next");
  BasicBlock *Exit = F->createBlock("req.x");

  B.setInsertBlock(Entry);
  RegId Acc = B.emitConst(0);
  RegId Req = B.emitConst(0);
  B.emitBr(LH);

  B.setInsertBlock(LH);
  RegId C = B.emitBinary(Opcode::CmpLT, Operand::reg(Req),
                         Operand::imm(Config.Requests));
  B.emitCondBr(Operand::reg(C), LB, Exit);

  B.setInsertBlock(LB);
  RegId BaseR = B.emitBinary(Opcode::Mul, Operand::reg(Req),
                             Operand::imm(Config.RecordWords));
  RegId T = B.emitLoad(Operand::reg(BaseR));
  B.emitBr(Checks[0]);

  for (unsigned I = 0; I != Config.NumServices; ++I) {
    B.setInsertBlock(Checks[I]);
    if (I + 1 == Config.NumServices) {
      B.emitBr(Calls[I]); // Default arm.
    } else {
      RegId E = B.emitBinary(Opcode::CmpEQ, Operand::reg(T),
                             Operand::imm(I));
      B.emitCondBr(Operand::reg(E), Calls[I], Checks[I + 1]);
    }
    B.setInsertBlock(Calls[I]);
    RegId R = B.emitCall(serviceName(I), {Operand::reg(BaseR)});
    B.emitBinary(Opcode::Add, Operand::reg(Acc), Operand::reg(R));
    Calls[I]->Insts.back().Dst = Acc;
    B.emitBr(Next);
  }

  B.setInsertBlock(Next);
  B.emitBinary(Opcode::And, Operand::reg(Acc), Operand::imm((1ll << 40) - 1));
  Next->Insts.back().Dst = Acc;
  B.emitBinary(Opcode::Add, Operand::reg(Req), Operand::imm(1));
  Next->Insts.back().Dst = Req;
  B.emitBr(LH);

  B.setInsertBlock(Exit);
  B.emitRet(Operand::reg(Acc));
}

void ProgramBuilder::buildRpcFrontend(unsigned I) {
  // service_i(base) as an RPC aggregator: each request fans out to
  // FanoutBackends backend stubs through the function table (RPC stubs are
  // always indirect), every leg with its own dominant backend and the
  // frontend's mode constant; a biased timeout check per leg retries
  // against the primary replica via the cold handler.
  Function *F = M->createFunction(serviceName(I), 1);
  Builder B(F);
  RegId Base = 0;

  bool HasRetry = Rand.nextBool(Config.RpcTimeoutProb);

  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *LH = F->createBlock("rpc.h");
  BasicBlock *LB = F->createBlock("rpc.b");
  BasicBlock *Retry = HasRetry ? F->createBlock("rpc.retry") : nullptr;
  BasicBlock *Next = F->createBlock("rpc.n");
  BasicBlock *LX = F->createBlock("rpc.x");

  B.setInsertBlock(Entry);
  RegId Acc = B.emitConst(0);
  RegId Leg = B.emitConst(0);
  RegId Mode = B.emitConst(Modes[I]);
  B.emitBr(LH);

  B.setInsertBlock(LH);
  RegId C = B.emitBinary(Opcode::CmpLT, Operand::reg(Leg),
                         Operand::imm(Config.FanoutBackends));
  B.emitCondBr(Operand::reg(C), LB, LX);

  B.setInsertBlock(LB);
  RegId Off = B.emitBinary(Opcode::Mod, Operand::reg(Leg),
                           Operand::imm(Config.RecordWords - 1));
  RegId Idx = B.emitBinary(Opcode::Add, Operand::reg(Base), Operand::reg(Off));
  Idx = B.emitBinary(Opcode::Add, Operand::reg(Idx), Operand::imm(1));
  RegId V = B.emitLoad(Operand::reg(Idx));
  // Per-leg backend choice with a dominant primary: most values collapse
  // onto the leg's primary stub, the tail spreads over replicas — a
  // promotable indirect site per (frontend, leg) context.
  RegId Mixed = B.emitBinary(Opcode::Mul, Operand::reg(V), Operand::reg(V));
  RegId Spread =
      B.emitBinary(Opcode::Mod, Operand::reg(Mixed),
                   Operand::imm(std::max(1u, Config.NumMids / 4)));
  RegId IsTail =
      B.emitBinary(Opcode::CmpGE, Operand::reg(V), Operand::imm(25));
  RegId Rep = B.emitSelect(Operand::reg(IsTail), Operand::imm(0),
                           Operand::reg(Spread));
  RegId Abs = B.emitBinary(Opcode::Add, Operand::reg(Rep), Operand::reg(Leg));
  Abs = B.emitBinary(
      Opcode::Add, Operand::reg(Abs),
      Operand::imm(static_cast<int64_t>(I) * Config.FanoutBackends));
  RegId Slot = B.emitBinary(Opcode::Mod, Operand::reg(Abs),
                            Operand::imm(Config.NumMids));
  RegId R = B.emitCallIndirect(Operand::reg(Slot),
                               {Operand::reg(V), Operand::reg(Mode)});
  B.emitBinary(Opcode::Add, Operand::reg(Acc), Operand::reg(R));
  LB->Insts.back().Dst = Acc;
  if (HasRetry) {
    // Timeout: rare by value distribution; the retry arm pays the cold
    // handler and re-issues against the primary replica.
    RegId TC = B.emitBinary(Opcode::CmpGE, Operand::reg(V), Operand::imm(98));
    B.emitCondBr(Operand::reg(TC), Retry, Next);

    B.setInsertBlock(Retry);
    unsigned H =
        static_cast<unsigned>(Rand.nextBelow(Config.NumColdHandlers));
    RegId CR = B.emitCall(coldName(H), {Operand::reg(V)});
    RegId PSlot = B.emitConst(
        static_cast<int64_t>(I * Config.FanoutBackends % Config.NumMids));
    RegId RR = B.emitCallIndirect(Operand::reg(PSlot),
                                  {Operand::reg(V), Operand::reg(Mode)});
    B.emitBinary(Opcode::Add, Operand::reg(Acc), Operand::reg(CR));
    Retry->Insts.back().Dst = Acc;
    B.emitBinary(Opcode::Add, Operand::reg(Acc), Operand::reg(RR));
    Retry->Insts.back().Dst = Acc;
    B.emitBr(Next);
  } else {
    B.emitBr(Next);
  }

  B.setInsertBlock(Next);
  if (I == 0) {
    // The first frontend exercises the recursive helper lightly.
    RegId N = B.emitBinary(Opcode::Mod, Operand::reg(V), Operand::imm(4));
    RegId RC = B.emitCall("rec", {Operand::reg(N)});
    B.emitBinary(Opcode::Add, Operand::reg(Acc), Operand::reg(RC));
    Next->Insts.back().Dst = Acc;
  }
  B.emitBinary(Opcode::Add, Operand::reg(Leg), Operand::imm(1));
  Next->Insts.back().Dst = Leg;
  B.emitBr(LH);

  B.setInsertBlock(LX);
  B.emitRet(Operand::reg(Acc));
}

void ProgramBuilder::buildOpHandler(unsigned J) {
  // op_j(acc, arg): one bytecode handler. Personalities cycle so the
  // dispatch table mixes pure arithmetic, memory traffic, util calls (the
  // context carriers) and a rare trap into the cold path.
  Function *F = M->createFunction(opName(J), 2);
  Builder B(F);
  RegId Acc = 0, Arg = 1;
  BasicBlock *Entry = F->createBlock("entry");
  B.setInsertBlock(Entry);
  switch (J % 5) {
  case 0: {
    RegId R = B.emitBinary(Opcode::Add, Operand::reg(Acc), Operand::reg(Arg));
    R = emitArith(B, R);
    B.emitRet(Operand::reg(R));
    break;
  }
  case 1: {
    RegId R = B.emitBinary(Opcode::Mul, Operand::reg(Acc), Operand::imm(3));
    R = B.emitBinary(Opcode::Xor, Operand::reg(R), Operand::reg(Arg));
    R = emitArith(B, R);
    B.emitRet(Operand::reg(R));
    break;
  }
  case 2: {
    // Memory personality: spill/reload through an opcode-local scratch
    // slot.
    RegId Addr = B.emitConst(3072 + 8 * static_cast<int64_t>(J));
    B.emitStore(Operand::reg(Addr), Operand::reg(Acc));
    RegId L = B.emitLoad(Operand::reg(Addr));
    RegId R = B.emitBinary(Opcode::Sub, Operand::reg(L), Operand::reg(Arg));
    B.emitRet(Operand::reg(R));
    break;
  }
  case 3: {
    // Call personality: the handler leans on a util with an
    // opcode-specific mode — the same utils behave differently under
    // different opcodes (context sensitivity inside the interpreter).
    RegId U = B.emitCall(
        utilName(J % Config.NumUtils),
        {Operand::reg(Arg), Operand::imm((J * 37) % 100)});
    RegId R = B.emitBinary(Opcode::Add, Operand::reg(Acc), Operand::reg(U));
    B.emitRet(Operand::reg(R));
    break;
  }
  default: {
    // Trap personality: rare operand values divert into a cold handler.
    BasicBlock *Trap = F->createBlock("trap");
    BasicBlock *Done = F->createBlock("done");
    RegId R = F->allocReg();
    RegId TC =
        B.emitBinary(Opcode::CmpGE, Operand::reg(Arg), Operand::imm(99));
    B.emitCondBr(Operand::reg(TC), Trap, Done);
    B.setInsertBlock(Trap);
    RegId CR = B.emitCall(coldName(J % Config.NumColdHandlers),
                          {Operand::reg(Arg)});
    B.emitBinary(Opcode::Add, Operand::reg(Acc), Operand::reg(CR));
    Trap->Insts.back().Dst = R;
    B.emitBr(Done);
    B.setInsertBlock(Done);
    // R is the trap result on the trap path; on the common path the
    // handler just shifts the accumulator.
    RegId S = B.emitBinary(Opcode::Shl, Operand::reg(Acc), Operand::imm(1));
    RegId Out = B.emitBinary(Opcode::Xor, Operand::reg(S), Operand::reg(Arg));
    B.emitRet(Operand::reg(Out));
    (void)R;
    break;
  }
  }
}

void ProgramBuilder::buildInterp() {
  // interp(base): the fetch/decode/dispatch loop. The hottest opcode (0)
  // takes an inline fast path behind a biased compare; everything else
  // dispatches through the opcode table — the skewed indirect site
  // indirect-call promotion targets.
  Function *F = M->createFunction("interp", 1);
  Builder B(F);
  RegId Base = 0;

  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *LH = F->createBlock("fetch");
  BasicBlock *LB = F->createBlock("decode");
  BasicBlock *Fast = F->createBlock("op.fast");
  BasicBlock *Slow = F->createBlock("dispatch");
  BasicBlock *Join = F->createBlock("retire");
  BasicBlock *LX = F->createBlock("halt");

  B.setInsertBlock(Entry);
  RegId Acc = B.emitConst(0);
  RegId PC = B.emitConst(0);
  B.emitBr(LH);

  B.setInsertBlock(LH);
  RegId C = B.emitBinary(Opcode::CmpLT, Operand::reg(PC),
                         Operand::imm(Config.BytecodeLength));
  B.emitCondBr(Operand::reg(C), LB, LX);

  B.setInsertBlock(LB);
  RegId OpAddr =
      B.emitBinary(Opcode::Add, Operand::reg(PC), Operand::imm(bytecodeBase()));
  RegId Op = B.emitLoad(Operand::reg(OpAddr));
  RegId AOff = B.emitBinary(Opcode::Mod, Operand::reg(PC),
                            Operand::imm(Config.RecordWords - 1));
  RegId AIdx =
      B.emitBinary(Opcode::Add, Operand::reg(Base), Operand::reg(AOff));
  AIdx = B.emitBinary(Opcode::Add, Operand::reg(AIdx), Operand::imm(1));
  RegId Arg = B.emitLoad(Operand::reg(AIdx));
  RegId IsFast =
      B.emitBinary(Opcode::CmpEQ, Operand::reg(Op), Operand::imm(0));
  B.emitCondBr(Operand::reg(IsFast), Fast, Slow);

  RegId NewAcc = F->allocReg();
  B.setInsertBlock(Fast);
  B.emitBinary(Opcode::Add, Operand::reg(Acc), Operand::reg(Arg));
  Fast->Insts.back().Dst = NewAcc;
  B.emitBr(Join);

  B.setInsertBlock(Slow);
  RegId Slot = B.emitBinary(Opcode::Mod, Operand::reg(Op),
                            Operand::imm(Config.NumOpcodes));
  B.emitCallIndirect(Operand::reg(Slot),
                     {Operand::reg(Acc), Operand::reg(Arg)});
  Slow->Insts.back().Dst = NewAcc;
  B.emitBr(Join);

  B.setInsertBlock(Join);
  B.emitBinary(Opcode::And, Operand::reg(NewAcc),
               Operand::imm((1ll << 32) - 1));
  Join->Insts.back().Dst = Acc;
  B.emitBinary(Opcode::Add, Operand::reg(PC), Operand::imm(1));
  Join->Insts.back().Dst = PC;
  B.emitBr(LH);

  B.setInsertBlock(LX);
  B.emitRet(Operand::reg(Acc));
}

void ProgramBuilder::buildBootPhase(unsigned K) {
  // init_phase_k(x): executed exactly once at startup. NoInline keeps each
  // phase a distinct function in the binary, so placement — not branch
  // bias — decides its i-cache cost; hot/cold splitting and layout are
  // what the archetype measures.
  Function *F = M->createFunction(phaseName(K), 1);
  F->NoInline = true;
  Builder B(F);
  RegId X = 0;
  BasicBlock *Entry = F->createBlock("entry");
  B.setInsertBlock(Entry);
  RegId V = emitArith(B, X);
  RegId Addr = B.emitConst(4096 + 8 * static_cast<int64_t>(K));
  B.emitStore(Operand::reg(Addr), Operand::reg(V));
  RegId V2 = B.emitBinary(Opcode::Xor, Operand::reg(V),
                          Operand::imm(13 * static_cast<int64_t>(K) + 7));
  if (K % 3 == 0) {
    // Every third phase warms a util (the boot sequence touches shared
    // library code too).
    RegId U = B.emitCall(utilName(K % Config.NumUtils),
                         {Operand::reg(V2), Operand::imm((K * 7) % 100)});
    V2 = B.emitBinary(Opcode::Add, Operand::reg(V2), Operand::reg(U));
  }
  B.emitStore(Operand::reg(Addr), Operand::reg(V2));
  B.emitRet(Operand::reg(V2));
}

void ProgramBuilder::buildArchetypeMain() {
  Function *F = M->createFunction("main", 0);
  F->IsEntryPoint = true;
  F->NoInline = true;
  Builder B(F);

  if (Config.Archetype == WorkloadArchetype::InterpLoop) {
    // Request loop: every record runs the interpreter over the shared
    // bytecode program.
    BasicBlock *Entry = F->createBlock("entry");
    BasicBlock *LH = F->createBlock("req.h");
    BasicBlock *LB = F->createBlock("req.b");
    BasicBlock *Exit = F->createBlock("req.x");

    B.setInsertBlock(Entry);
    RegId Acc = B.emitConst(0);
    RegId Req = B.emitConst(0);
    B.emitBr(LH);

    B.setInsertBlock(LH);
    RegId C = B.emitBinary(Opcode::CmpLT, Operand::reg(Req),
                           Operand::imm(Config.Requests));
    B.emitCondBr(Operand::reg(C), LB, Exit);

    B.setInsertBlock(LB);
    RegId BaseR = B.emitBinary(Opcode::Mul, Operand::reg(Req),
                               Operand::imm(Config.RecordWords));
    RegId R = B.emitCall("interp", {Operand::reg(BaseR)});
    B.emitBinary(Opcode::Add, Operand::reg(Acc), Operand::reg(R));
    LB->Insts.back().Dst = Acc;
    B.emitBinary(Opcode::And, Operand::reg(Acc),
                 Operand::imm((1ll << 40) - 1));
    LB->Insts.back().Dst = Acc;
    B.emitBinary(Opcode::Add, Operand::reg(Req), Operand::imm(1));
    LB->Insts.back().Dst = Req;
    B.emitBr(LH);

    B.setInsertBlock(Exit);
    B.emitRet(Operand::reg(Acc));
    return;
  }

  // ColdBoot: a long straight-line once-executed boot sequence, then a
  // short steady-state request loop dispatching over the mid table.
  BasicBlock *Entry = F->createBlock("boot");
  BasicBlock *LH = F->createBlock("req.h");
  BasicBlock *LB = F->createBlock("req.b");
  BasicBlock *Exit = F->createBlock("req.x");

  B.setInsertBlock(Entry);
  RegId Acc = B.emitConst(0);
  for (unsigned K = 0; K != Config.BootPhases; ++K) {
    RegId X = B.emitBinary(Opcode::And, Operand::reg(Acc), Operand::imm(0xFF));
    RegId R = B.emitCall(phaseName(K), {Operand::reg(X)});
    B.emitBinary(Opcode::Add, Operand::reg(Acc), Operand::reg(R));
    Entry->Insts.back().Dst = Acc;
  }
  RegId Req = B.emitConst(0);
  B.emitBr(LH);

  B.setInsertBlock(LH);
  RegId C = B.emitBinary(Opcode::CmpLT, Operand::reg(Req),
                         Operand::imm(Config.Requests));
  B.emitCondBr(Operand::reg(C), LB, Exit);

  B.setInsertBlock(LB);
  RegId BaseR = B.emitBinary(Opcode::Mul, Operand::reg(Req),
                             Operand::imm(Config.RecordWords));
  RegId Idx = B.emitBinary(Opcode::Add, Operand::reg(BaseR), Operand::imm(1));
  RegId V = B.emitLoad(Operand::reg(Idx));
  RegId Slot = B.emitBinary(Opcode::Mod, Operand::reg(V),
                            Operand::imm(Config.NumMids));
  RegId R = B.emitCallIndirect(Operand::reg(Slot),
                               {Operand::reg(V), Operand::imm(30)});
  B.emitBinary(Opcode::Add, Operand::reg(Acc), Operand::reg(R));
  LB->Insts.back().Dst = Acc;
  B.emitBinary(Opcode::And, Operand::reg(Acc), Operand::imm((1ll << 40) - 1));
  LB->Insts.back().Dst = Acc;
  B.emitBinary(Opcode::Add, Operand::reg(Req), Operand::imm(1));
  LB->Insts.back().Dst = Req;
  B.emitBr(LH);

  B.setInsertBlock(Exit);
  B.emitRet(Operand::reg(Acc));
}

std::unique_ptr<Module> ProgramBuilder::build() {
  auto Mod = std::make_unique<Module>(Config.Name);
  M = Mod.get();
  M->MemWords = Config.MemWords;
  M->EntryFunction = "main";

  Modes.resize(Config.NumServices);
  for (unsigned I = 0; I != Config.NumServices; ++I) {
    // Half the services below the util split point, half above.
    Modes[I] = I % 2 == 0 ? Rand.nextInRange(5, 40) : Rand.nextInRange(60, 95);
  }

  switch (Config.Archetype) {
  case WorkloadArchetype::Server:
    // Dispatch table: every mid is indirectly callable (slot = mid index).
    for (unsigned J = 0; J != Config.NumMids; ++J)
      M->addFunctionTableEntry(midName(J));
    for (unsigned K = 0; K != Config.NumUtils; ++K)
      buildUtil(Config.NumUtils - 1 - K); // Build targets before callers.
    for (unsigned H = 0; H != Config.NumColdHandlers; ++H)
      buildColdHandler(H);
    buildRecursive();
    for (unsigned J = 0; J != Config.NumMids; ++J)
      buildMid(J);
    for (unsigned I = 0; I != Config.NumServices; ++I)
      buildService(I);
    buildMain();
    break;

  case WorkloadArchetype::RpcFanout:
    // Mids double as the backend RPC stubs; every fan-out leg dispatches
    // through the table.
    for (unsigned J = 0; J != Config.NumMids; ++J)
      M->addFunctionTableEntry(midName(J));
    for (unsigned K = 0; K != Config.NumUtils; ++K)
      buildUtil(Config.NumUtils - 1 - K);
    for (unsigned H = 0; H != Config.NumColdHandlers; ++H)
      buildColdHandler(H);
    buildRecursive();
    for (unsigned J = 0; J != Config.NumMids; ++J)
      buildMid(J);
    for (unsigned I = 0; I != Config.NumServices; ++I)
      buildRpcFrontend(I);
    buildMain(); // Same request dispatch over service_i frontends.
    break;

  case WorkloadArchetype::InterpLoop:
    // The opcode handlers are the dispatch table.
    for (unsigned J = 0; J != Config.NumOpcodes; ++J)
      M->addFunctionTableEntry(opName(J));
    for (unsigned K = 0; K != Config.NumUtils; ++K)
      buildUtil(Config.NumUtils - 1 - K);
    for (unsigned H = 0; H != Config.NumColdHandlers; ++H)
      buildColdHandler(H);
    for (unsigned J = 0; J != Config.NumOpcodes; ++J)
      buildOpHandler(J);
    buildInterp();
    buildArchetypeMain();
    break;

  case WorkloadArchetype::ColdBoot:
    for (unsigned J = 0; J != Config.NumMids; ++J)
      M->addFunctionTableEntry(midName(J));
    for (unsigned K = 0; K != Config.NumUtils; ++K)
      buildUtil(Config.NumUtils - 1 - K);
    for (unsigned H = 0; H != Config.NumColdHandlers; ++H)
      buildColdHandler(H);
    for (unsigned J = 0; J != Config.NumMids; ++J)
      buildMid(J);
    for (unsigned K = 0; K != Config.BootPhases; ++K)
      buildBootPhase(K);
    buildArchetypeMain();
    break;
  }

  verifyOrDie(*M, "after workload generation");
  return Mod;
}

} // namespace

const char *archetypeName(WorkloadArchetype A) {
  switch (A) {
  case WorkloadArchetype::Server:
    return "Server";
  case WorkloadArchetype::RpcFanout:
    return "RpcFanout";
  case WorkloadArchetype::InterpLoop:
    return "InterpLoop";
  case WorkloadArchetype::ColdBoot:
    return "ColdBoot";
  }
  return "Unknown";
}

std::unique_ptr<Module> generateProgram(const WorkloadConfig &Config) {
  return ProgramBuilder(Config).build();
}

std::vector<int64_t> generateInput(const WorkloadConfig &Config,
                                   uint64_t Seed, double DistributionShift) {
  Rng Rand(Seed ^ 0x9E3779B97F4A7C15ULL);
  std::vector<int64_t> Mem(Config.MemWords, 0);

  // Zipf-like service mix.
  std::vector<double> Weights(Config.NumServices);
  for (unsigned I = 0; I != Config.NumServices; ++I)
    Weights[I] = 1.0 / std::pow(I + 1, Config.ServiceSkew);

  uint64_t MaxRecords = Config.MemWords / Config.RecordWords;
  uint64_t Records = std::min<uint64_t>(Config.Requests, MaxRecords);
  int64_t ValueCeiling =
      99 + static_cast<int64_t>(10 * DistributionShift);
  for (uint64_t R = 0; R != Records; ++R) {
    uint64_t Base = R * Config.RecordWords;
    Mem[Base] = static_cast<int64_t>(Rand.pickWeighted(Weights));
    for (unsigned W = 1; W != Config.RecordWords; ++W)
      Mem[Base + W] = Rand.nextInRange(0, ValueCeiling);
  }

  if (Config.Archetype == WorkloadArchetype::InterpLoop) {
    // The shared bytecode program lives at the top of memory. Opcode 0 is
    // the hottest (the interpreter's inline fast path); the tail follows a
    // Zipf mix that DistributionShift flattens slightly, so train and eval
    // disagree about exactly how dominant the fast path is.
    double Skew = Config.OpcodeSkew * (1.0 - DistributionShift);
    std::vector<double> OpWeights(Config.NumOpcodes);
    for (unsigned J = 0; J != Config.NumOpcodes; ++J)
      OpWeights[J] = 1.0 / std::pow(J + 1, Skew);
    uint64_t CodeBase = Config.MemWords - Config.BytecodeLength;
    for (unsigned PC = 0; PC != Config.BytecodeLength; ++PC)
      Mem[CodeBase + PC] = static_cast<int64_t>(Rand.pickWeighted(OpWeights));
  }
  return Mem;
}

} // namespace csspgo

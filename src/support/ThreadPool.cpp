//===- support/ThreadPool.cpp - Fixed-size worker pool --------------------===//

#include "support/ThreadPool.h"

#include <exception>

namespace csspgo {

unsigned ThreadPool::defaultConcurrency() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}

ThreadPool::ThreadPool(unsigned ThreadCount) {
  if (ThreadCount == 0)
    ThreadCount = defaultConcurrency();
  Workers.reserve(ThreadCount);
  for (unsigned I = 0; I != ThreadCount; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WakeWorkers.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::packaged_task<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WakeWorkers.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task(); // Exceptions land in the task's future.
  }
}

std::future<void> ThreadPool::async(std::function<void()> Task) {
  std::packaged_task<void()> Packaged(std::move(Task));
  std::future<void> Future = Packaged.get_future();
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Packaged));
  }
  WakeWorkers.notify_one();
  return Future;
}

void ThreadPool::parallelFor(size_t Count,
                             const std::function<void(size_t)> &Fn) {
  std::vector<std::future<void>> Futures;
  Futures.reserve(Count);
  for (size_t I = 0; I != Count; ++I)
    Futures.push_back(async([&Fn, I] { Fn(I); }));
  std::exception_ptr First;
  for (std::future<void> &F : Futures) {
    try {
      F.get();
    } catch (...) {
      if (!First)
        First = std::current_exception();
    }
  }
  if (First)
    std::rethrow_exception(First);
}

} // namespace csspgo

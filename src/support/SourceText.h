//===- support/SourceText.h - Formatting helpers --------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string/formatting helpers shared by printers, profile text IO and
/// the benchmark harnesses (fixed-width tables, percentages, counts).
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_SUPPORT_SOURCETEXT_H
#define CSSPGO_SUPPORT_SOURCETEXT_H

#include <cstdint>
#include <string>
#include <vector>

namespace csspgo {

/// Formats \p Value as e.g. "+3.42%" (always signed, two decimals).
std::string formatSignedPercent(double Value);

/// Formats \p Value as e.g. "12.3%" (unsigned, one decimal).
std::string formatPercent(double Value);

/// Formats a byte count as e.g. "12.4 KiB".
std::string formatBytes(uint64_t Bytes);

/// Left-pads \p S with spaces to width \p Width.
std::string padLeft(const std::string &S, size_t Width);

/// Right-pads \p S with spaces to width \p Width.
std::string padRight(const std::string &S, size_t Width);

/// Splits \p S on \p Sep, keeping empty fields.
std::vector<std::string> splitString(const std::string &S, char Sep);

/// A tiny fixed-width text table used by the bench binaries to print
/// paper-style rows ("Fig 6", "Table I", ...).
class TextTable {
public:
  explicit TextTable(std::vector<std::string> Header);

  /// Appends one data row; must have the same arity as the header.
  void addRow(std::vector<std::string> Row);

  /// Renders the table with aligned columns.
  std::string render() const;

private:
  std::vector<std::vector<std::string>> Rows;
};

} // namespace csspgo

#endif // CSSPGO_SUPPORT_SOURCETEXT_H

//===- support/Random.cpp - Deterministic random numbers ------------------===//

#include "support/Random.h"

namespace csspgo {

static uint64_t splitmix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

void Rng::reseed(uint64_t Seed) {
  uint64_t X = Seed;
  for (uint64_t &S : State)
    S = splitmix64(X);
}

static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

uint64_t Rng::next() {
  // xoshiro256**
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::nextBelow(uint64_t Bound) {
  assert(Bound != 0 && "bound must be non-zero");
  // Rejection sampling to avoid modulo bias.
  uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t R = next();
    if (R >= Threshold)
      return R % Bound;
  }
}

int64_t Rng::nextInRange(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty range");
  return Lo + static_cast<int64_t>(
                  nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
}

double Rng::nextDouble() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::nextBool(double P) {
  if (P <= 0.0)
    return false;
  if (P >= 1.0)
    return true;
  return nextDouble() < P;
}

size_t Rng::pickWeighted(const std::vector<double> &Weights) {
  double Total = 0;
  for (double W : Weights)
    Total += W > 0 ? W : 0;
  assert(Total > 0 && "at least one weight must be positive");
  double R = nextDouble() * Total;
  for (size_t I = 0; I != Weights.size(); ++I) {
    double W = Weights[I] > 0 ? Weights[I] : 0;
    if (R < W)
      return I;
    R -= W;
  }
  return Weights.size() - 1;
}

} // namespace csspgo

//===- support/Random.h - Deterministic random numbers --------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (xoshiro256**) used by the workload generator,
/// input generators and the PMU sampler jitter. Determinism is required so
/// that every experiment in the paper reproduction is exactly repeatable.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_SUPPORT_RANDOM_H
#define CSSPGO_SUPPORT_RANDOM_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace csspgo {

/// Deterministic 64-bit PRNG. Seeded explicitly; never reads global state.
class Rng {
public:
  explicit Rng(uint64_t Seed) { reseed(Seed); }

  /// Re-initializes the state from \p Seed using splitmix64.
  void reseed(uint64_t Seed);

  /// Returns the next raw 64-bit value.
  uint64_t next();

  /// Returns a uniform integer in [0, Bound). \p Bound must be non-zero.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns a uniform integer in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi);

  /// Returns a uniform double in [0, 1).
  double nextDouble();

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool nextBool(double P);

  /// Picks an index in [0, Weights.size()) with probability proportional to
  /// Weights[i]. At least one weight must be positive.
  size_t pickWeighted(const std::vector<double> &Weights);

private:
  uint64_t State[4];
};

} // namespace csspgo

#endif // CSSPGO_SUPPORT_RANDOM_H

//===- support/Hashing.cpp - Stable hashing utilities ---------------------===//

#include "support/Hashing.h"

namespace csspgo {

uint64_t hashBytes(std::string_view Bytes) {
  // FNV-1a, 64-bit.
  uint64_t Hash = 0xcbf29ce484222325ULL;
  for (unsigned char C : Bytes) {
    Hash ^= C;
    Hash *= 0x100000001b3ULL;
  }
  return Hash;
}

uint64_t computeFunctionGuid(std::string_view Name) {
  uint64_t Hash = hashBytes(Name);
  // Avoid the reserved value 0, which profiles use to mean "no function".
  return Hash ? Hash : 1;
}

uint64_t hashCombine(uint64_t Seed, uint64_t Value) {
  // 64-bit variant of boost::hash_combine with a splitmix-style mixer.
  Value += 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2);
  Value = (Value ^ (Value >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Value = (Value ^ (Value >> 27)) * 0x94d049bb133111ebULL;
  return Seed ^ (Value ^ (Value >> 31));
}

} // namespace csspgo

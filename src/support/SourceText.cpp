//===- support/SourceText.cpp - Formatting helpers ------------------------===//

#include "support/SourceText.h"

#include <cassert>
#include <cstdio>

namespace csspgo {

std::string formatSignedPercent(double Value) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%+.2f%%", Value);
  return Buf;
}

std::string formatPercent(double Value) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f%%", Value);
  return Buf;
}

std::string formatBytes(uint64_t Bytes) {
  char Buf[32];
  if (Bytes < 1024) {
    std::snprintf(Buf, sizeof(Buf), "%llu B",
                  static_cast<unsigned long long>(Bytes));
  } else if (Bytes < 1024 * 1024) {
    std::snprintf(Buf, sizeof(Buf), "%.1f KiB", Bytes / 1024.0);
  } else {
    std::snprintf(Buf, sizeof(Buf), "%.1f MiB", Bytes / (1024.0 * 1024.0));
  }
  return Buf;
}

std::string padLeft(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return std::string(Width - S.size(), ' ') + S;
}

std::string padRight(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return S + std::string(Width - S.size(), ' ');
}

std::vector<std::string> splitString(const std::string &S, char Sep) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  for (size_t I = 0; I <= S.size(); ++I) {
    if (I == S.size() || S[I] == Sep) {
      Parts.push_back(S.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  return Parts;
}

TextTable::TextTable(std::vector<std::string> Header) {
  Rows.push_back(std::move(Header));
}

void TextTable::addRow(std::vector<std::string> Row) {
  assert(Row.size() == Rows.front().size() && "row arity mismatch");
  Rows.push_back(std::move(Row));
}

std::string TextTable::render() const {
  std::vector<size_t> Widths(Rows.front().size(), 0);
  for (const auto &Row : Rows)
    for (size_t I = 0; I != Row.size(); ++I)
      if (Row[I].size() > Widths[I])
        Widths[I] = Row[I].size();

  std::string Out;
  for (size_t R = 0; R != Rows.size(); ++R) {
    for (size_t I = 0; I != Rows[R].size(); ++I) {
      if (I)
        Out += "  ";
      Out += padRight(Rows[R][I], Widths[I]);
    }
    Out += '\n';
    if (R == 0) {
      for (size_t I = 0; I != Widths.size(); ++I) {
        if (I)
          Out += "  ";
        Out += std::string(Widths[I], '-');
      }
      Out += '\n';
    }
  }
  return Out;
}

} // namespace csspgo

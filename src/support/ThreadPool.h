//===- support/ThreadPool.h - Fixed-size worker pool ------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size thread pool with future-returning task submission, used by
/// the sharded profile-generation pipeline (ShardedProfGen). Tasks are
/// plain std::function<void()> thunks; exceptions thrown by a task are
/// captured into its future and rethrown at get()/wait time in the
/// submitting thread, so shard failures surface at the reduction point
/// instead of crashing a worker.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_SUPPORT_THREADPOOL_H
#define CSSPGO_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace csspgo {

class ThreadPool {
public:
  /// Spawns \p ThreadCount workers; 0 means one per hardware thread.
  explicit ThreadPool(unsigned ThreadCount = 0);

  /// Joins all workers; queued tasks are drained first.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task. The returned future becomes ready when the task
  /// finishes (or throws; the exception is rethrown from get()).
  std::future<void> async(std::function<void()> Task);

  /// Runs Fn(0) .. Fn(Count-1) across the pool and waits for all of them.
  /// The first task exception (lowest index) is rethrown after every task
  /// has finished.
  void parallelFor(size_t Count, const std::function<void(size_t)> &Fn);

  unsigned concurrency() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// max(1, std::thread::hardware_concurrency()).
  static unsigned defaultConcurrency();

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::packaged_task<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable WakeWorkers;
  bool Stopping = false;
};

} // namespace csspgo

#endif // CSSPGO_SUPPORT_THREADPOOL_H

//===- support/BoundedQueue.h - Blocking bounded MPMC queue -----*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded blocking queue for the continuous-profiling service's
/// ingestion front. Producers block in push() while the queue is at
/// capacity — that *is* the backpressure mechanism: a fleet streaming
/// sample epochs faster than the ingestion shards can fold them stalls at
/// the queue instead of growing memory without bound. close() wakes all
/// waiters; a closed queue rejects further pushes and serves remaining
/// items until drained.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_SUPPORT_BOUNDEDQUEUE_H
#define CSSPGO_SUPPORT_BOUNDEDQUEUE_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace csspgo {

template <typename T> class BoundedQueue {
public:
  /// \p Bound is the capacity; at least 1.
  explicit BoundedQueue(size_t Bound) : Bound(Bound ? Bound : 1) {}

  /// Blocks until there is room (backpressure), then enqueues. Returns
  /// false iff the queue was closed (item dropped).
  bool push(T Item) {
    std::unique_lock<std::mutex> Lock(Mutex);
    NotFull.wait(Lock, [&] { return Items.size() < Bound || Closed; });
    if (Closed)
      return false;
    Items.push_back(std::move(Item));
    HighWater = std::max(HighWater, Items.size());
    Lock.unlock();
    NotEmpty.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained;
  /// nullopt means "closed, nothing left".
  std::optional<T> pop() {
    std::unique_lock<std::mutex> Lock(Mutex);
    NotEmpty.wait(Lock, [&] { return !Items.empty() || Closed; });
    if (Items.empty())
      return std::nullopt;
    T Item = std::move(Items.front());
    Items.pop_front();
    Lock.unlock();
    NotFull.notify_one();
    return Item;
  }

  /// No more pushes; pending items remain poppable.
  void close() {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Closed = true;
    }
    NotFull.notify_all();
    NotEmpty.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Items.size();
  }

  size_t bound() const { return Bound; }

  /// Maximum depth the queue ever reached — the backpressure observable
  /// the service dashboard reports (never exceeds bound() by contract).
  size_t highWater() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return HighWater;
  }

private:
  const size_t Bound;
  mutable std::mutex Mutex;
  std::condition_variable NotFull, NotEmpty;
  std::deque<T> Items;
  size_t HighWater = 0;
  bool Closed = false;
};

} // namespace csspgo

#endif // CSSPGO_SUPPORT_BOUNDEDQUEUE_H

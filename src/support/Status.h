//===- support/Status.h - Error propagation primitives ----------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The project's unified error type. Historically each subsystem grew its
/// own convention — `bool` + `std::string &Err` out-params in the store,
/// out-param stats structs in the loader, hard aborts in the driver — which
/// makes a long-lived service impossible to build on top: a service loop
/// must be able to observe, report and survive any failure. `Status`
/// carries success or a diagnostic message; `Expected<T>` carries a value
/// or the Status explaining its absence. Both are cheap to move, and
/// `Expected` aborts loudly (with the diagnostic) if a caller dereferences
/// an error it never checked — turning silent misuse into a deterministic
/// failure, the same policy the IR verifier follows.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_SUPPORT_STATUS_H
#define CSSPGO_SUPPORT_STATUS_H

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace csspgo {

/// Success, or an error with a human-readable diagnostic. There is no
/// error-code taxonomy on purpose: every failure in this pipeline is
/// either handled generically (skip/report the work item) or is a bug, and
/// in both cases the message is what matters.
class [[nodiscard]] Status {
public:
  /// Default-constructed Status is success.
  Status() = default;

  static Status error(std::string Message) {
    Status S;
    S.Failed = true;
    S.Msg = std::move(Message);
    return S;
  }

  bool ok() const { return !Failed; }
  explicit operator bool() const { return ok(); }

  /// Diagnostic message; empty on success.
  const std::string &message() const { return Msg; }

  /// Prefixes the diagnostic with \p Context ("context: message"), e.g.
  /// while unwinding through layers. No-op on success.
  Status withContext(const std::string &Context) const {
    if (ok())
      return *this;
    return error(Context + ": " + Msg);
  }

private:
  bool Failed = false;
  std::string Msg;
};

/// A value of type \p T, or the Status explaining why there is none.
/// Modeled after llvm::Expected with the ergonomics trimmed to what this
/// codebase needs: construct from a T or an error Status, test with
/// explicit bool, then use `*E` / `E->` / `take()` (value) or `status()` /
/// `takeError()` (diagnostic).
template <typename T> class [[nodiscard]] Expected {
public:
  Expected(T Value) : HasValue(true), Value(std::move(Value)) {}
  Expected(Status Err) : HasValue(false), Err(std::move(Err)) {
    if (this->Err.ok())
      fail("Expected constructed from a success Status");
  }

  Expected(Expected &&) = default;
  Expected &operator=(Expected &&) = default;

  bool hasValue() const { return HasValue; }
  explicit operator bool() const { return HasValue; }

  /// The error Status (Status::ok() when a value is present).
  const Status &status() const { return Err; }
  Status takeError() { return std::move(Err); }

  T &operator*() {
    check();
    return Value;
  }
  const T &operator*() const {
    check();
    return Value;
  }
  T *operator->() {
    check();
    return &Value;
  }
  const T *operator->() const {
    check();
    return &Value;
  }

  /// Moves the value out.
  T take() {
    check();
    return std::move(Value);
  }

private:
  void check() const {
    if (!HasValue)
      fail(Err.message().c_str());
  }
  [[noreturn]] static void fail(const char *Msg) {
    std::fprintf(stderr, "csspgo: unchecked Expected dereferenced: %s\n",
                 Msg);
    std::abort();
  }

  bool HasValue;
  T Value{};
  Status Err;
};

} // namespace csspgo

#endif // CSSPGO_SUPPORT_STATUS_H

//===- support/Hashing.h - Stable hashing utilities -----------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stable 64-bit hashing used for function GUIDs and CFG checksums. The
/// hashes must be deterministic across runs and platforms because they are
/// persisted into profiles (CSSPGO matches profile checksums against IR
/// checksums to detect stale profiles).
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_SUPPORT_HASHING_H
#define CSSPGO_SUPPORT_HASHING_H

#include <cstdint>
#include <string_view>

namespace csspgo {

/// 64-bit FNV-1a hash of a byte string. Deterministic across platforms.
uint64_t hashBytes(std::string_view Bytes);

/// Computes the GUID of a function from its name, mirroring
/// llvm::Function::getGUID (an MD5-based scheme); we use FNV-1a but keep
/// the same role: a stable identity that survives source drift.
uint64_t computeFunctionGuid(std::string_view Name);

/// Mixes \p Value into \p Seed (boost::hash_combine style, 64-bit).
uint64_t hashCombine(uint64_t Seed, uint64_t Value);

} // namespace csspgo

#endif // CSSPGO_SUPPORT_HASHING_H

//===- profgen/CSProfileGenerator.cpp - CSSPGO profile generation -----------===//

#include "profgen/CSProfileGenerator.h"

#include "profgen/ProfileGenerator.h"

#include <map>

namespace csspgo {

namespace {

/// Builds the full sample context for a probe: the unwound caller context,
/// plus the probe's own inline frames, ending at the probe's origin
/// function.
SampleContext probeContext(const Symbolizer &Sym, const ProbeRecord &P,
                           const SampleContext &CallerCtx) {
  const Binary &Bin = Sym.binary();
  SampleContext Ctx = CallerCtx;
  const MachineFunction &MF = Bin.Funcs[P.FuncIdx];
  if (P.InlineId && P.InlineId < MF.InlineTable.size())
    for (const InlineFrame &F : MF.InlineTable[P.InlineId])
      Ctx.push_back({Sym.nameOfGuid(F.FuncGuid), F.CallProbeId});
  Ctx.push_back({Sym.nameOfGuid(P.Guid), 0});
  return Ctx;
}

} // namespace

ContextProfile generateCSProfileChunk(const Symbolizer &Sym,
                                      const ProbeTable &Probes,
                                      const std::vector<PerfSample> &Samples,
                                      size_t Begin, size_t End,
                                      MissingFrameInferrer *Inferrer,
                                      CSProfileGenStats *Stats) {
  const Binary &Bin = Sym.binary();
  ContextUnwinder Unwinder(Sym, Inferrer);

  ContextProfile Out;
  Out.Kind = ProfileKind::ProbeBased;

  // Accumulation keyed by full context.
  std::map<SampleContext, std::map<uint32_t, uint64_t>> BodyAcc;
  std::map<SampleContext,
           std::map<uint32_t, std::map<std::string, uint64_t>>>
      CallAcc;
  std::map<SampleContext, uint64_t> HeadAcc;

  for (size_t SampleIdx = Begin; SampleIdx != End; ++SampleIdx) {
    const PerfSample &Sample = Samples[SampleIdx];
    UnwoundSample U = Unwinder.unwind(Sample);
    for (const RangeWithContext &R : U.Ranges) {
      if (Stats)
        ++Stats->RangesProcessed;
      for (size_t Idx = R.BeginIdx; Idx <= R.EndIdx; ++Idx)
        for (const ProbeRecord *P : Sym.probesAt(Idx))
          // Copies of a duplicated probe at different addresses land on
          // the same (context, id) key and are summed here — the
          // one-to-one mapping property.
          BodyAcc[probeContext(Sym, *P, R.CallerContext)][P->ProbeId] += 1;
    }
    for (const BranchWithContext &B : U.Branches) {
      BranchKind Kind = Sym.classify(B.SrcIdx);
      if (Kind != BranchKind::Call && Kind != BranchKind::TailCallJump)
        continue;
      uint32_t CalleeIdx = Sym.funcIndexOf(B.DstIdx);
      if (CalleeIdx == ~0u || Bin.Funcs[CalleeIdx].EntryIdx != B.DstIdx)
        continue;
      const std::string &CalleeName = Bin.Funcs[CalleeIdx].Name;
      auto Frames = Sym.framesAt(B.SrcIdx);
      if (Frames.empty())
        continue;
      SampleContext Ctx = B.CallerContext;
      for (const auto &F : Frames)
        Ctx.push_back({F.Func, F.CallProbeId});
      uint32_t Site = Ctx.back().Site; // The call's own probe id.
      Ctx.back().Site = 0;
      CallAcc[Ctx][Site][CalleeName] += 1;
      // Callee head samples under the callee's context.
      SampleContext CalleeCtx = Ctx;
      CalleeCtx.back().Site = Site;
      CalleeCtx.push_back({CalleeName, 0});
      HeadAcc[CalleeCtx] += 1;
    }
  }

  if (Stats) {
    Stats->Samples = Unwinder.stats().Samples;
    Stats->UnsyncedSamples = Unwinder.stats().Unsynced;
    if (Inferrer)
      Stats->TailCallStats = Inferrer->stats();
  }

  // Materialize the trie.
  auto SetMeta = [&Probes](ContextTrieNode &N) {
    N.HasProfile = true;
    if (const ProbeDescriptor *D = Probes.findByName(N.FuncName)) {
      N.Profile.Guid = D->Guid;
      N.Profile.Checksum = D->CFGChecksum;
    }
  };
  for (const auto &[Ctx, Bodies] : BodyAcc) {
    ContextTrieNode &N = Out.getOrCreateNode(Ctx);
    SetMeta(N);
    for (const auto &[Id, Count] : Bodies)
      N.Profile.addBody({Id, 0}, Count);
  }
  for (const auto &[Ctx, Sites] : CallAcc) {
    ContextTrieNode &N = Out.getOrCreateNode(Ctx);
    SetMeta(N);
    for (const auto &[Site, Targets] : Sites)
      for (const auto &[Callee, Count] : Targets)
        N.Profile.addCall({Site, 0}, Callee, Count);
  }
  for (const auto &[Ctx, Count] : HeadAcc) {
    ContextTrieNode &N = Out.getOrCreateNode(Ctx);
    SetMeta(N);
    N.Profile.HeadSamples += Count;
  }
  return Out;
}

ContextProfile generateCSProfile(const Binary &Bin, const ProbeTable &Probes,
                                 const std::vector<PerfSample> &Samples,
                                 const CSProfileOptions &Opts,
                                 CSProfileGenStats *Stats) {
  ProfGenOptions GenOpts;
  GenOpts.Kind = ProfGenKind::CS;
  GenOpts.InferMissingFrames = Opts.InferMissingFrames;
  GenOpts.Parallelism = 1;
  ProfGenResult R = ProfileGenerator(Bin, &Probes, GenOpts).generate(Samples);
  if (Stats)
    *Stats = R.Stats;
  return std::move(R.CS);
}

namespace {

/// Navigates nested probe-keyed profiles along inline frames.
FunctionProfile &profileForProbeFrames(FlatProfile &Out,
                                       const Symbolizer &Sym,
                                       const std::vector<InlineFrame> &Frames,
                                       uint64_t LeafGuid,
                                       const std::string &TopFunc) {
  FunctionProfile *P = &Out.getOrCreate(
      Frames.empty() ? Sym.nameOfGuid(LeafGuid) : TopFunc);
  for (size_t I = 0; I != Frames.size(); ++I) {
    const std::string &ChildName = I + 1 < Frames.size()
                                       ? Sym.nameOfGuid(Frames[I + 1].FuncGuid)
                                       : Sym.nameOfGuid(LeafGuid);
    P = &P->getOrCreateInlinee({Frames[I].CallProbeId, 0}, ChildName);
  }
  return *P;
}

} // namespace

FlatProfile generateProbeOnlyProfileChunk(const Symbolizer &Sym,
                                          const ProbeTable &Probes,
                                          const std::vector<PerfSample> &Samples,
                                          size_t Begin, size_t End,
                                          CSProfileGenStats *Stats) {
  const Binary &Bin = Sym.binary();
  FlatProfile Out;
  Out.Kind = ProfileKind::ProbeBased;

  // Per-address counts from LBR ranges (no unwinding needed).
  std::map<size_t, uint64_t> AddrCount;
  std::map<std::pair<size_t, size_t>, uint64_t> BranchCount;
  for (size_t SampleIdx = Begin; SampleIdx != End; ++SampleIdx) {
    const PerfSample &Sample = Samples[SampleIdx];
    if (Stats)
      ++Stats->Samples;
    for (size_t I = 0; I + 1 < Sample.LBR.size(); ++I) {
      size_t RBegin = Bin.indexOfAddr(Sample.LBR[I].Dst);
      size_t REnd = Bin.indexOfAddr(Sample.LBR[I + 1].Src);
      if (RBegin == SIZE_MAX || REnd == SIZE_MAX || RBegin > REnd ||
          Sym.funcIndexOf(RBegin) != Sym.funcIndexOf(REnd))
        continue;
      if (Stats)
        ++Stats->RangesProcessed;
      for (size_t Idx = RBegin; Idx <= REnd; ++Idx)
        ++AddrCount[Idx];
    }
    for (const LBREntry &E : Sample.LBR) {
      size_t Src = Bin.indexOfAddr(E.Src);
      size_t Dst = Bin.indexOfAddr(E.Dst);
      if (Src != SIZE_MAX && Dst != SIZE_MAX)
        ++BranchCount[{Src, Dst}];
    }
  }

  // Probe counts: SUM across addresses (one-to-one mapping).
  for (const auto &[Idx, Count] : AddrCount) {
    uint32_t FIdx = Sym.funcIndexOf(Idx);
    if (FIdx == ~0u)
      continue;
    for (const ProbeRecord *P : Sym.probesAt(Idx)) {
      const auto &Frames = Bin.Funcs[FIdx].InlineTable[P->InlineId];
      FunctionProfile &Prof = profileForProbeFrames(
          Out, Sym, Frames, P->Guid, Bin.Funcs[FIdx].Name);
      Prof.addBody({P->ProbeId, 0}, Count);
    }
  }

  // Call targets and head samples.
  for (const auto &[Edge, Count] : BranchCount) {
    auto [Src, Dst] = Edge;
    BranchKind Kind = Sym.classify(Src);
    if (Kind != BranchKind::Call && Kind != BranchKind::TailCallJump)
      continue;
    uint32_t CalleeIdx = Sym.funcIndexOf(Dst);
    if (CalleeIdx == ~0u || Bin.Funcs[CalleeIdx].EntryIdx != Dst)
      continue;
    uint32_t FIdx = Sym.funcIndexOf(Src);
    if (FIdx == ~0u)
      continue;
    const MInst &I = Bin.Code[Src];
    const auto &Frames = Bin.Funcs[FIdx].InlineTable[I.InlineId];
    FunctionProfile &Prof = profileForProbeFrames(
        Out, Sym, Frames, I.OriginGuid, Bin.Funcs[FIdx].Name);
    Prof.addCall({Sym.callProbeAt(Src), 0}, Bin.Funcs[CalleeIdx].Name, Count);
    Out.getOrCreate(Bin.Funcs[CalleeIdx].Name).HeadSamples += Count;
  }

  // Checksums and GUIDs from the descriptor table, including nested
  // inlinee profiles (the loader verifies each level on replay).
  std::function<void(FunctionProfile &)> FixMeta =
      [&Probes, &FixMeta](FunctionProfile &P) {
        if (const ProbeDescriptor *D = Probes.findByName(P.Name)) {
          P.Guid = D->Guid;
          P.Checksum = D->CFGChecksum;
        }
        for (auto &[K, Map] : P.Inlinees)
          for (auto &[Name, Sub] : Map)
            FixMeta(Sub);
      };
  for (auto &[Name, P] : Out.Functions)
    FixMeta(P);
  return Out;
}

FlatProfile generateProbeOnlyProfile(const Binary &Bin,
                                     const ProbeTable &Probes,
                                     const std::vector<PerfSample> &Samples,
                                     CSProfileGenStats *Stats) {
  ProfGenOptions GenOpts;
  GenOpts.Kind = ProfGenKind::ProbeOnly;
  GenOpts.Parallelism = 1;
  ProfGenResult R = ProfileGenerator(Bin, &Probes, GenOpts).generate(Samples);
  if (Stats)
    *Stats = R.Stats;
  return std::move(R.Flat);
}

} // namespace csspgo

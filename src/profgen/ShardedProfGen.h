//===- profgen/ShardedProfGen.h - Sharded profile generation ----*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sharded, multi-threaded profile-generation pipeline. The production
/// workflow aggregates LBR samples from many hosts (§IV-A), which makes
/// profile-generation throughput the operational bottleneck at datacenter
/// scale. This layer partitions the sample vector into K contiguous
/// shards, runs virtual unwinding + context-trie construction per shard on
/// a ThreadPool, and reduces the per-shard profiles with
/// mergeContextProfiles / mergeFlatProfiles.
///
/// Determinism guarantee: the sharded result is bit-identical (same
/// contexts, same counts, same serialized dump) to the serial path for any
/// shard count K, because
///  (1) the tail-call inference graph is collected over the FULL sample
///      set before any shard unwinds (per-shard edge sets are unioned, a
///      set operation independent of partitioning), and
///  (2) every per-sample contribution is a pure sum into ordered maps, so
///      reduction order cannot change the result.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_PROFGEN_SHARDEDPROFGEN_H
#define CSSPGO_PROFGEN_SHARDEDPROFGEN_H

#include "profgen/CSProfileGenerator.h"
#include "profile/ProfileMerge.h"

namespace csspgo {

/// One contiguous shard of the sample vector: [Begin, End).
struct ShardRange {
  size_t Begin = 0;
  size_t End = 0;
};

/// Splits \p Count items into at most \p Shards contiguous ranges of
/// near-equal size (difference at most one item); empty ranges are
/// dropped, so the result may have fewer than \p Shards entries.
std::vector<ShardRange> planShards(size_t Count, unsigned Shards);

/// Maps the user-facing Parallelism knob to a worker count: 0 means one
/// per hardware thread; the result is clamped to [1, SampleCount].
unsigned resolveParallelism(unsigned Requested, size_t SampleCount);

/// Sharded CS profile generation; bit-identical to generateCSProfile for
/// any \p Parallelism. \p Reduce, when given, receives the accumulated
/// MergeStats of the reduction (zeros when a single shard ran).
ContextProfile generateCSProfileSharded(const Binary &Bin,
                                        const ProbeTable &Probes,
                                        const std::vector<PerfSample> &Samples,
                                        const CSProfileOptions &Opts,
                                        unsigned Parallelism,
                                        CSProfileGenStats *Stats = nullptr,
                                        MergeStats *Reduce = nullptr);

/// Sharded probe-only profile generation; bit-identical to
/// generateProbeOnlyProfile for any \p Parallelism.
FlatProfile
generateProbeOnlyProfileSharded(const Binary &Bin, const ProbeTable &Probes,
                                const std::vector<PerfSample> &Samples,
                                unsigned Parallelism,
                                CSProfileGenStats *Stats = nullptr,
                                MergeStats *Reduce = nullptr);

} // namespace csspgo

#endif // CSSPGO_PROFGEN_SHARDEDPROFGEN_H

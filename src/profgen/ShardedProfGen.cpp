//===- profgen/ShardedProfGen.cpp - Sharded profile generation ------------===//

#include "profgen/ShardedProfGen.h"

#include "profile/ProfileArena.h"
#include "support/ThreadPool.h"

namespace csspgo {

std::vector<ShardRange> planShards(size_t Count, unsigned Shards) {
  std::vector<ShardRange> Plan;
  if (Count == 0 || Shards == 0)
    return Plan;
  size_t K = std::min<size_t>(Shards, Count);
  Plan.reserve(K);
  for (size_t I = 0; I != K; ++I) {
    ShardRange R;
    R.Begin = Count * I / K;
    R.End = Count * (I + 1) / K;
    if (R.Begin != R.End)
      Plan.push_back(R);
  }
  return Plan;
}

unsigned resolveParallelism(unsigned Requested, size_t SampleCount) {
  if (Requested == 0)
    Requested = ThreadPool::defaultConcurrency();
  if (SampleCount == 0)
    return 1;
  return static_cast<unsigned>(
      std::min<size_t>(Requested, SampleCount));
}

namespace {

void accumulateStats(CSProfileGenStats &Total, const CSProfileGenStats &S) {
  Total.Samples += S.Samples;
  Total.UnsyncedSamples += S.UnsyncedSamples;
  Total.RangesProcessed += S.RangesProcessed;
  Total.TailCallStats.Attempts += S.TailCallStats.Attempts;
  Total.TailCallStats.Recovered += S.TailCallStats.Recovered;
  Total.TailCallStats.AmbiguousPaths += S.TailCallStats.AmbiguousPaths;
  Total.TailCallStats.NoPath += S.TailCallStats.NoPath;
}

/// Builds the tail-call edge graph of the full sample set, collecting
/// per-shard edge sets on \p Pool and unioning them (order-independent).
MissingFrameInferrer
collectEdgesSharded(const Symbolizer &Sym,
                    const std::vector<PerfSample> &Samples,
                    const std::vector<ShardRange> &Plan, ThreadPool &Pool) {
  MissingFrameInferrer Edges;
  if (Plan.size() <= 1) {
    collectTailCallEdges(Sym, Samples, Edges);
    return Edges;
  }
  std::vector<MissingFrameInferrer> Partial(Plan.size());
  Pool.parallelFor(Plan.size(), [&](size_t I) {
    collectTailCallEdges(Sym, Samples, Plan[I].Begin, Plan[I].End,
                         Partial[I]);
  });
  for (const MissingFrameInferrer &P : Partial)
    Edges.addEdgesFrom(P);
  return Edges;
}

} // namespace

ContextProfile generateCSProfileSharded(const Binary &Bin,
                                        const ProbeTable &Probes,
                                        const std::vector<PerfSample> &Samples,
                                        const CSProfileOptions &Opts,
                                        unsigned Parallelism,
                                        CSProfileGenStats *Stats,
                                        MergeStats *Reduce) {
  Symbolizer Sym(Bin);
  unsigned K = resolveParallelism(Parallelism, Samples.size());
  std::vector<ShardRange> Plan = planShards(Samples.size(), K);

  if (Plan.size() <= 1) {
    // Serial fast path: no pool, no reduction.
    MissingFrameInferrer Edges;
    if (Opts.InferMissingFrames)
      collectTailCallEdges(Sym, Samples, Edges);
    if (Reduce)
      *Reduce = MergeStats{};
    CSProfileGenStats Local;
    ContextProfile Out = generateCSProfileChunk(
        Sym, Probes, Samples, 0, Samples.size(),
        Opts.InferMissingFrames ? &Edges : nullptr, Stats ? &Local : nullptr);
    if (Stats)
      *Stats = Local;
    return Out;
  }

  ThreadPool Pool(K);

  // Phase 1: the shared inference graph, from ALL samples (see the
  // determinism note in the header).
  MissingFrameInferrer Edges;
  if (Opts.InferMissingFrames)
    Edges = collectEdgesSharded(Sym, Samples, Plan, Pool);

  // Phase 2: per-shard unwinding + trie construction. Each shard gets its
  // own copy of the edge graph (inference bumps the inferrer's stats).
  std::vector<ContextProfile> Parts(Plan.size());
  std::vector<CSProfileGenStats> PartStats(Plan.size());
  std::vector<MissingFrameInferrer> Inferrers(Plan.size(), Edges);
  Pool.parallelFor(Plan.size(), [&](size_t I) {
    Parts[I] = generateCSProfileChunk(
        Sym, Probes, Samples, Plan[I].Begin, Plan[I].End,
        Opts.InferMissingFrames ? &Inferrers[I] : nullptr, &PartStats[I]);
  });

  // Phase 3: reduction on the flat plane. The part tries convert to
  // arena views in parallel (each worker flattens its own shard), the
  // sorted context slices k-way merge in one pass, and the result trie is
  // rebuilt once. Bit-identical — counts, stats, saturation — to folding
  // the parts sequentially with mergeContextProfiles (the merge contract
  // in ProfileArena.h), but without K-1 full destination-trie rewalks.
  std::vector<ContextProfileView> Views(Parts.size());
  Pool.parallelFor(Parts.size(),
                   [&](size_t I) { Views[I] = contextViewOf(Parts[I]); });
  std::vector<const ContextProfileView *> Ptrs;
  Ptrs.reserve(Views.size());
  for (const ContextProfileView &V : Views)
    Ptrs.push_back(&V);
  MergeStats MS;
  ContextProfile Out = contextProfileOf(mergeContextViews(Ptrs, MS));
  CSProfileGenStats Total = PartStats.front();
  for (size_t I = 1; I != PartStats.size(); ++I)
    accumulateStats(Total, PartStats[I]);
  if (Stats)
    *Stats = Total;
  if (Reduce)
    *Reduce = MS;
  return Out;
}

FlatProfile
generateProbeOnlyProfileSharded(const Binary &Bin, const ProbeTable &Probes,
                                const std::vector<PerfSample> &Samples,
                                unsigned Parallelism, CSProfileGenStats *Stats,
                                MergeStats *Reduce) {
  Symbolizer Sym(Bin);
  unsigned K = resolveParallelism(Parallelism, Samples.size());
  std::vector<ShardRange> Plan = planShards(Samples.size(), K);

  if (Plan.size() <= 1) {
    if (Reduce)
      *Reduce = MergeStats{};
    CSProfileGenStats Local;
    FlatProfile Out = generateProbeOnlyProfileChunk(
        Sym, Probes, Samples, 0, Samples.size(), Stats ? &Local : nullptr);
    if (Stats)
      *Stats = Local;
    return Out;
  }

  ThreadPool Pool(K);
  std::vector<FlatProfile> Parts(Plan.size());
  std::vector<CSProfileGenStats> PartStats(Plan.size());
  Pool.parallelFor(Plan.size(), [&](size_t I) {
    Parts[I] = generateProbeOnlyProfileChunk(
        Sym, Probes, Samples, Plan[I].Begin, Plan[I].End, &PartStats[I]);
  });

  // Flat-plane reduction, as in generateCSProfileSharded: parallel
  // view conversion, one k-way merge of sorted slices, one rebuild.
  std::vector<FlatProfileView> Views(Parts.size());
  Pool.parallelFor(Parts.size(),
                   [&](size_t I) { Views[I] = flatViewOf(Parts[I]); });
  std::vector<const FlatProfileView *> Ptrs;
  Ptrs.reserve(Views.size());
  for (const FlatProfileView &V : Views)
    Ptrs.push_back(&V);
  MergeStats MS;
  FlatProfile Out = flatProfileOf(mergeFlatViews(Ptrs, MS));
  CSProfileGenStats Total = PartStats.front();
  for (size_t I = 1; I != PartStats.size(); ++I)
    accumulateStats(Total, PartStats[I]);
  if (Stats)
    *Stats = Total;
  if (Reduce)
    *Reduce = MS;
  return Out;
}

} // namespace csspgo

//===- profgen/Symbolizer.h - Binary symbolization ---------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolization services over a linked Binary, shared by the profile
/// generators:
/// - debug-info view: address -> (function, line, discriminator) frame
///   stacks, as DWARF would give AutoFDO;
/// - pseudo-probe view: address -> attached probe records and call-site
///   probe ids, as the .pseudo_probe section gives CSSPGO;
/// - branch classification (call / return / tail-call jump / local), which
///   Algorithm 1 needs to unwind LBR entries.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_PROFGEN_SYMBOLIZER_H
#define CSSPGO_PROFGEN_SYMBOLIZER_H

#include "codegen/MachineModule.h"

#include <map>
#include <string>
#include <vector>

namespace csspgo {

enum class BranchKind : uint8_t {
  NotABranch,
  Conditional,
  Unconditional,
  Call,
  TailCallJump, ///< A frame-replacing jump to another function's entry.
  Return,
};

class Symbolizer {
public:
  explicit Symbolizer(const Binary &Bin);

  const Binary &binary() const { return Bin; }

  /// Function name for a GUID ("" if unknown).
  const std::string &nameOfGuid(uint64_t Guid) const;

  /// Classifies the instruction at \p Idx.
  BranchKind classify(size_t Idx) const;

  /// The call-site probe id of the call instruction at \p Idx (0 if none).
  uint32_t callProbeAt(size_t Idx) const;

  /// Block probes attached to the instruction at \p Idx.
  const std::vector<const ProbeRecord *> &probesAt(size_t Idx) const;

  /// Fully symbolized frames at \p Idx, outermost first. Each frame is
  /// (function name, location in that function, call-site probe id toward
  /// the next frame; the leaf frame's CallProbeId is the instruction's own
  /// call probe when it is a call, else 0).
  struct Frame {
    std::string Func;
    DebugLoc Loc;
    uint32_t CallProbeId = 0;
  };
  std::vector<Frame> framesAt(size_t Idx) const;

  /// The function index containing \p Idx (cached, O(log n)).
  uint32_t funcIndexOf(size_t Idx) const;

private:
  const Binary &Bin;
  std::map<uint64_t, std::string> GuidToName;
  std::map<size_t, uint32_t> CallProbes;
  std::map<size_t, std::vector<const ProbeRecord *>> BlockProbes;
  std::vector<const ProbeRecord *> Empty;
  std::string EmptyName;
  /// Sorted (HotBegin, FuncIdx) and (ColdBegin, FuncIdx) for lookup.
  std::vector<std::pair<size_t, uint32_t>> RangeStarts;
};

} // namespace csspgo

#endif // CSSPGO_PROFGEN_SYMBOLIZER_H

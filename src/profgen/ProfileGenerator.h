//===- profgen/ProfileGenerator.h - Unified profgen facade ------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single entry point for profile generation — our llvm-profgen
/// binary's API face. One options struct selects the generator kind
/// (context-sensitive CSSPGO, probe-only flat, AutoFDO, instrumentation)
/// and the knobs shared across them; one result struct carries the profile
/// plus the generation stats, so stats are never silently dropped the way
/// an optional out-param allows.
///
/// Shardable kinds (CS and ProbeOnly — both pure sums over samples)
/// honor Parallelism by partitioning the sample vector and reducing
/// per-shard profiles (ShardedProfGen); the result is bit-identical to
/// the serial path for any shard count. AutoFDO takes the MAX over
/// per-address counts (§III-A's one-to-many heuristic), which does not
/// distribute over a partition of the samples, and instrumentation counts
/// arrive pre-aggregated in a counter dump — both run serially and ignore
/// Parallelism.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_PROFGEN_PROFILEGENERATOR_H
#define CSSPGO_PROFGEN_PROFILEGENERATOR_H

#include "profgen/CSProfileGenerator.h"
#include "profile/ProfileMerge.h"
#include "verify/ProfileVerifier.h"

namespace csspgo {

struct CounterDump;
struct RunResult;

enum class ProfGenKind : uint8_t { CS, ProbeOnly, AutoFDO, Instr };

const char *profGenKindName(ProfGenKind K);

struct ProfGenOptions {
  ProfGenKind Kind = ProfGenKind::CS;
  /// Run the missing-frame inferrer (CS kind only).
  bool InferMissingFrames = true;
  /// Worker threads for shardable kinds: 0 = one per hardware thread,
  /// 1 = serial, K = shard the samples K ways.
  unsigned Parallelism = 1;
  /// Post-generation invariant verification of the freshly generated
  /// profile (verify/ProfileVerifier.h). Freshly generated profiles have
  /// no excuse for violations, so probe-table agreement is checked too
  /// (when the kind carries a probe table). The result is recorded in
  /// ProfGenResult::Verify; enforcement policy is the caller's call.
  VerifyLevel Verify = VerifyLevel::Summary;
};

struct ProfGenResult {
  /// Which member holds the profile: CS when true, Flat otherwise.
  bool IsCS = false;
  ContextProfile CS;
  FlatProfile Flat;

  /// Generation stats — part of the result, never dropped.
  CSProfileGenStats Stats;
  /// Shard-reduction observability; zeros when a single shard ran.
  MergeStats Reduce;
  /// Number of shards the samples were actually split into.
  unsigned ShardsUsed = 1;
  /// Invariant verification of the generated profile (empty/ok when
  /// ProfGenOptions::Verify is Off).
  VerifyReport Verify;

  /// Total samples of whichever shape was generated — the epoch weight the
  /// store ingestion path records (ProfileStore::ingestEpoch).
  uint64_t totalSamples() const {
    return IsCS ? CS.totalSamples() : Flat.totalSamples();
  }
};

class ProfileGenerator {
public:
  /// \p Probes supplies checksums/GUIDs and is required for the CS and
  /// ProbeOnly kinds; AutoFDO and Instr may pass nullptr.
  ProfileGenerator(const Binary &Bin, const ProbeTable *Probes = nullptr,
                   ProfGenOptions Opts = {});

  /// Generates from PMU samples (CS, ProbeOnly, AutoFDO kinds).
  ProfGenResult generate(const std::vector<PerfSample> &Samples) const;

  /// Generates from an instrumentation counter dump (Instr kind); \p Run,
  /// when given, contributes the indirect-call value profile.
  ProfGenResult generate(const CounterDump &Dump,
                         const RunResult *Run = nullptr) const;

  const ProfGenOptions &options() const { return Opts; }

private:
  const Binary &Bin;
  const ProbeTable *Probes;
  ProfGenOptions Opts;
};

} // namespace csspgo

#endif // CSSPGO_PROFGEN_PROFILEGENERATOR_H

//===- profgen/AutoFDOGenerator.h - AutoFDO profile generation ---*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AutoFDO-style profile generation (the baseline, ref [2]): linear ranges
/// from LBR samples are symbolized through *debug info* (line offsets +
/// discriminators + DWARF inline info). No calling-context reconstruction
/// is performed — context sensitivity is limited to the inlining baked
/// into the profiled binary (nested inlinee profiles).
///
/// The characteristic weakness reproduced here: a source line maps to
/// many binary instructions, so per-location counts take the MAX over the
/// per-address counts — correct for code motion, wrong for code
/// duplication (§III-A).
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_PROFGEN_AUTOFDOGENERATOR_H
#define CSSPGO_PROFGEN_AUTOFDOGENERATOR_H

#include "profile/FunctionProfile.h"
#include "profgen/Symbolizer.h"
#include "sim/Sampler.h"

namespace csspgo {

struct AutoFDOGenStats {
  uint64_t RangesProcessed = 0;
  uint64_t BrokenRanges = 0;
};

/// Generates a line-based flat profile from \p Samples taken on \p Bin.
FlatProfile generateAutoFDOProfile(const Binary &Bin,
                                   const std::vector<PerfSample> &Samples,
                                   AutoFDOGenStats *Stats = nullptr);

} // namespace csspgo

#endif // CSSPGO_PROFGEN_AUTOFDOGENERATOR_H

//===- profgen/ContextUnwinder.cpp - Algorithm 1 -----------------------------===//

#include "profgen/ContextUnwinder.h"

namespace csspgo {

void collectTailCallEdges(const Symbolizer &Sym,
                          const std::vector<PerfSample> &Samples,
                          MissingFrameInferrer &Inferrer) {
  collectTailCallEdges(Sym, Samples, 0, Samples.size(), Inferrer);
}

void collectTailCallEdges(const Symbolizer &Sym,
                          const std::vector<PerfSample> &Samples,
                          size_t Begin, size_t End,
                          MissingFrameInferrer &Inferrer) {
  const Binary &Bin = Sym.binary();
  for (size_t SampleIdx = Begin; SampleIdx != End; ++SampleIdx) {
    const PerfSample &Sample = Samples[SampleIdx];
    for (const LBREntry &E : Sample.LBR) {
      size_t SrcIdx = Bin.indexOfAddr(E.Src);
      if (SrcIdx == SIZE_MAX)
        continue;
      if (Sym.classify(SrcIdx) != BranchKind::TailCallJump)
        continue;
      auto Frames = Sym.framesAt(SrcIdx);
      size_t DstIdx = Bin.indexOfAddr(E.Dst);
      if (Frames.empty() || DstIdx == SIZE_MAX)
        continue;
      uint32_t DstFunc = Sym.funcIndexOf(DstIdx);
      if (DstFunc == ~0u)
        continue;
      Inferrer.addTailCallEdge(Frames.back().Func, Frames.back().CallProbeId,
                               Bin.Funcs[DstFunc].Name);
    }
  }
}

SampleContext
ContextUnwinder::expandCallerContext(const std::vector<size_t> &CallStack,
                                     uint32_t LeafFuncIdx) {
  const Binary &Bin = Sym.binary();
  SampleContext Ctx;
  // CallStack holds call-instruction indices, outermost caller first.
  for (size_t Level = 0; Level != CallStack.size(); ++Level) {
    size_t CallIdx = CallStack[Level];
    auto Frames = Sym.framesAt(CallIdx);
    for (const Symbolizer::Frame &F : Frames)
      Ctx.push_back({F.Func, F.CallProbeId});
    // Missing-frame inference: the static callee of this call should be
    // the function of the next level (or of the leaf). Tail calls between
    // them elide frames.
    const MInst &Call = Bin.Code[CallIdx];
    if (Call.Op != Opcode::Call)
      continue;
    std::string Expected = Bin.Funcs[Call.CalleeIdx].Name;
    std::string Actual;
    if (Level + 1 != CallStack.size()) {
      uint32_t NextFunc = Sym.funcIndexOf(CallStack[Level + 1]);
      if (NextFunc != ~0u)
        Actual = Bin.Funcs[NextFunc].Name;
    } else if (LeafFuncIdx != ~0u) {
      Actual = Bin.Funcs[LeafFuncIdx].Name;
    }
    if (Actual.empty() || Actual == Expected)
      continue;
    if (!Inferrer)
      continue;
    std::vector<MissingFrameInferrer::RecoveredFrame> Recovered;
    if (Inferrer->inferMissingFrames(Expected, Actual, Recovered))
      for (const auto &R : Recovered)
        Ctx.push_back({R.Func, R.SiteProbe});
    // On failure the context simply connects caller->Actual directly
    // (truncated context, same behaviour the paper describes pre-fix).
  }
  return Ctx;
}

UnwoundSample ContextUnwinder::unwind(const PerfSample &Sample) {
  UnwoundSample Out;
  ++S.Samples;
  const Binary &Bin = Sym.binary();
  if (Sample.LBR.empty() || Sample.Stack.empty())
    return Out;

  // Virtual stack of call-instruction indices (outermost caller first).
  // The sampled stack is leaf-first: Stack[0] is the PC, deeper entries
  // are return addresses whose preceding instruction is the call.
  std::vector<size_t> CallStack;
  for (size_t I = Sample.Stack.size(); I-- > 1;) {
    size_t RetIdx = Bin.indexOfAddr(Sample.Stack[I]);
    if (RetIdx == SIZE_MAX || RetIdx == 0)
      return Out; // Corrupt stack.
    size_t CallIdx = RetIdx - 1;
    if (Bin.Code[CallIdx].Op != Opcode::Call)
      return Out;
    CallStack.push_back(CallIdx);
  }
  size_t LeafIdx = Bin.indexOfAddr(Sample.Stack[0]);
  if (LeafIdx == SIZE_MAX)
    return Out;

  // Synchronization check: the leaf must live in the function the newest
  // LBR branch landed in (sampling skid breaks this, PEBS guarantees it).
  const LBREntry &Newest = Sample.LBR.back();
  size_t NewestDst = Bin.indexOfAddr(Newest.Dst);
  if (NewestDst == SIZE_MAX)
    return Out;
  bool Synced = Sym.funcIndexOf(NewestDst) == Sym.funcIndexOf(LeafIdx) &&
                LeafIdx >= NewestDst;
  if (!Synced) {
    ++S.Unsynced;
    Out.Synced = false;
    CallStack.clear(); // Degrade to context-less attribution.
  }

  // Process LBR newest -> oldest, undoing each branch's stack effect
  // first, then emitting the preceding linear range.
  for (size_t I = Sample.LBR.size(); I-- > 0;) {
    const LBREntry &Curr = Sample.LBR[I];
    size_t SrcIdx = Bin.indexOfAddr(Curr.Src);
    size_t DstIdx = Bin.indexOfAddr(Curr.Dst);
    if (SrcIdx == SIZE_MAX || DstIdx == SIZE_MAX) {
      ++S.BrokenRanges;
      continue;
    }
    BranchKind Kind = Sym.classify(SrcIdx);

    // Undo the branch's effect to obtain the pre-branch stack.
    if (Out.Synced) {
      switch (Kind) {
      case BranchKind::Call:
        // The call created the current leaf frame; the caller resumes as
        // the leaf, and the call instruction is exactly SrcIdx — the
        // deepest CallStack entry should match it; pop it.
        if (!CallStack.empty() && CallStack.back() == SrcIdx) {
          CallStack.pop_back();
        } else if (!CallStack.empty()) {
          // Stack/LBR divergence mid-sample; stop trusting the context.
          Out.Synced = false;
          CallStack.clear();
          ++S.Unsynced;
        }
        break;
      case BranchKind::Return:
        // Before the return, the returned-from frame existed; its caller's
        // call instruction sits just before the return target.
        if (DstIdx > 0 && Bin.Code[DstIdx - 1].Op == Opcode::Call)
          CallStack.push_back(DstIdx - 1);
        break;
      case BranchKind::TailCallJump:
        // Frame replaced; depth unchanged. Nothing to pop or push: the
        // eliminated frame never appears in the sampled stack either.
        break;
      default:
        break;
      }
    }

    // Caller context of the branch source.
    uint32_t SrcFunc = Sym.funcIndexOf(SrcIdx);
    SampleContext Ctx = Out.Synced ? expandCallerContext(CallStack, SrcFunc)
                                   : SampleContext{};

    BranchWithContext B;
    B.SrcIdx = SrcIdx;
    B.DstIdx = DstIdx;
    B.CallerContext = Ctx;
    Out.Branches.push_back(std::move(B));

    // Linear range preceding this branch: [prev.Dst, curr.Src].
    if (I > 0) {
      const LBREntry &Prev = Sample.LBR[I - 1];
      size_t RBegin = Bin.indexOfAddr(Prev.Dst);
      if (RBegin == SIZE_MAX || RBegin > SrcIdx ||
          Sym.funcIndexOf(RBegin) != SrcFunc) {
        ++S.BrokenRanges;
        continue;
      }
      RangeWithContext R;
      R.BeginIdx = RBegin;
      R.EndIdx = SrcIdx;
      R.CallerContext = Out.Branches.back().CallerContext;
      Out.Ranges.push_back(std::move(R));
    }
  }
  return Out;
}

} // namespace csspgo

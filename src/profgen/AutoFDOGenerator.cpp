//===- profgen/AutoFDOGenerator.cpp - AutoFDO profile generation ------------===//

#include "profgen/AutoFDOGenerator.h"

#include "support/Hashing.h"

#include <map>

namespace csspgo {

namespace {

/// Navigates (creating as needed) the nested profile for the frame stack
/// of an instruction: frames[0] owns the top-level profile, deeper frames
/// are inlinees keyed by the call location in their parent.
FunctionProfile &profileForFrames(FlatProfile &Out,
                                  const std::vector<Symbolizer::Frame> &Frames) {
  FunctionProfile *P = &Out.getOrCreate(Frames.front().Func);
  for (size_t I = 0; I + 1 < Frames.size(); ++I) {
    ProfileKey Site(Frames[I].Loc.Line, Frames[I].Loc.Discriminator);
    P = &P->getOrCreateInlinee(Site, Frames[I + 1].Func);
  }
  return *P;
}

} // namespace

FlatProfile generateAutoFDOProfile(const Binary &Bin,
                                   const std::vector<PerfSample> &Samples,
                                   AutoFDOGenStats *Stats) {
  Symbolizer Sym(Bin);
  FlatProfile Out;
  Out.Kind = ProfileKind::LineBased;

  // Phase 1: per-address execution counts from LBR ranges, plus taken
  // branch counts.
  std::map<size_t, uint64_t> AddrCount;
  std::map<std::pair<size_t, size_t>, uint64_t> BranchCount;
  for (const PerfSample &Sample : Samples) {
    for (size_t I = 0; I + 1 < Sample.LBR.size(); ++I) {
      const LBREntry &B1 = Sample.LBR[I];
      const LBREntry &B2 = Sample.LBR[I + 1];
      size_t Begin = Bin.indexOfAddr(B1.Dst);
      size_t End = Bin.indexOfAddr(B2.Src);
      if (Begin == SIZE_MAX || End == SIZE_MAX || Begin > End ||
          Sym.funcIndexOf(Begin) != Sym.funcIndexOf(End)) {
        if (Stats)
          ++Stats->BrokenRanges;
        continue;
      }
      if (Stats)
        ++Stats->RangesProcessed;
      for (size_t Idx = Begin; Idx <= End; ++Idx)
        ++AddrCount[Idx];
    }
    for (const LBREntry &E : Sample.LBR) {
      size_t Src = Bin.indexOfAddr(E.Src);
      size_t Dst = Bin.indexOfAddr(E.Dst);
      if (Src != SIZE_MAX && Dst != SIZE_MAX)
        ++BranchCount[{Src, Dst}];
    }
  }

  // Phase 2: per-location counts via the MAX heuristic.
  for (const auto &[Idx, Count] : AddrCount) {
    auto Frames = Sym.framesAt(Idx);
    if (Frames.empty() || Frames.front().Func.empty())
      continue;
    FunctionProfile &P = profileForFrames(Out, Frames);
    const Symbolizer::Frame &Leaf = Frames.back();
    P.maxBody({Leaf.Loc.Line, Leaf.Loc.Discriminator}, Count);
  }

  // Phase 3: call targets and head samples from call branches.
  for (const auto &[Edge, Count] : BranchCount) {
    auto [Src, Dst] = Edge;
    BranchKind Kind = Sym.classify(Src);
    if (Kind != BranchKind::Call && Kind != BranchKind::TailCallJump)
      continue;
    uint32_t CalleeIdx = Sym.funcIndexOf(Dst);
    if (CalleeIdx == ~0u || Bin.Funcs[CalleeIdx].EntryIdx != Dst)
      continue;
    auto Frames = Sym.framesAt(Src);
    if (Frames.empty())
      continue;
    FunctionProfile &P = profileForFrames(Out, Frames);
    const Symbolizer::Frame &Leaf = Frames.back();
    P.addCall({Leaf.Loc.Line, Leaf.Loc.Discriminator},
              Bin.Funcs[CalleeIdx].Name, Count);
    Out.getOrCreate(Bin.Funcs[CalleeIdx].Name).HeadSamples += Count;
  }

  // Fill GUIDs for serialization fidelity.
  for (auto &[Name, P] : Out.Functions)
    P.Guid = computeFunctionGuid(Name);
  return Out;
}

} // namespace csspgo

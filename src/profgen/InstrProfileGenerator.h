//===- profgen/InstrProfileGenerator.h - Instr PGO profile -------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instrumentation-PGO profile generation: converts the counter dump of an
/// instrumented run into a flat profile keyed by counter id. Because every
/// counter maps one-to-one onto the early-IR block that owns it, this
/// profile is *exact* — it is the ground truth the paper's block-overlap
/// metric (Table I) compares sampling-based profiles against.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_PROFGEN_INSTRPROFILEGENERATOR_H
#define CSSPGO_PROFGEN_INSTRPROFILEGENERATOR_H

#include "codegen/MachineModule.h"
#include "profile/FunctionProfile.h"
#include "sim/Executor.h"
#include "sim/InstrRuntime.h"

namespace csspgo {

/// Converts \p Dump into a counter-keyed flat profile. HeadSamples of each
/// function is its entry-block counter (counter 1). When \p Run and
/// \p Bin are given, the run's indirect-call value profile is folded in
/// as call-target records keyed by value-site id (LLVM's value profiling).
FlatProfile generateInstrProfile(const CounterDump &Dump,
                                 const Binary *Bin = nullptr,
                                 const RunResult *Run = nullptr);

} // namespace csspgo

#endif // CSSPGO_PROFGEN_INSTRPROFILEGENERATOR_H

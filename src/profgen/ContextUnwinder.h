//===- profgen/ContextUnwinder.h - Algorithm 1 -------------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The virtual unwinder: reconstructs the calling context of every LBR
/// branch and linear range from a *synchronized* LBR + stack sample —
/// Algorithm 1 of the paper. LBR entries are processed in reverse
/// execution order; calls pop the leaf frame, returns push the frame being
/// returned from, tail-call jumps replace the leaf. Each linear range
/// [branch target, next branch source] is attributed to the reconstructed
/// caller context; inlined frames are expanded per instruction by the
/// generators.
///
/// The unwinder also performs the two §III-B mitigations:
/// - synchronization check: a stack that lags the LBR (sampling skid,
///   Precise=false in the simulator) is detected and the sample degrades
///   to context-less ranges;
/// - missing-frame inference for frames elided by tail-call elimination.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_PROFGEN_CONTEXTUNWINDER_H
#define CSSPGO_PROFGEN_CONTEXTUNWINDER_H

#include "profile/ContextTrie.h"
#include "profgen/MissingFrameInferrer.h"
#include "profgen/Symbolizer.h"
#include "sim/Sampler.h"

namespace csspgo {

/// A linear range [BeginIdx, EndIdx] (inclusive instruction indices)
/// executed once under CallerContext (frames of the *callers* of the
/// function owning the range; empty for top-level code).
struct RangeWithContext {
  size_t BeginIdx = 0;
  size_t EndIdx = 0;
  SampleContext CallerContext;
};

/// A taken branch with the caller context of its source.
struct BranchWithContext {
  size_t SrcIdx = 0;
  size_t DstIdx = 0;
  SampleContext CallerContext;
};

struct UnwoundSample {
  bool Synced = true;
  std::vector<RangeWithContext> Ranges;
  std::vector<BranchWithContext> Branches;
};

class ContextUnwinder {
public:
  ContextUnwinder(const Symbolizer &Sym, MissingFrameInferrer *Inferrer)
      : Sym(Sym), Inferrer(Inferrer) {}

  /// Unwinds one sample.
  UnwoundSample unwind(const PerfSample &Sample);

  struct Stats {
    uint64_t Samples = 0;
    uint64_t Unsynced = 0;
    uint64_t BrokenRanges = 0;
  };
  const Stats &stats() const { return S; }

private:
  /// Expands the current virtual stack (call-instruction indices, caller
  /// first) into a full caller context, running missing-frame inference
  /// between non-connecting frames. \p LeafFunc is the function the leaf
  /// code belongs to.
  SampleContext expandCallerContext(const std::vector<size_t> &CallStack,
                                    uint32_t LeafFuncIdx);

  const Symbolizer &Sym;
  MissingFrameInferrer *Inferrer;
  Stats S;
};

/// Scans \p Samples for tail-call jumps and feeds them to \p Inferrer as
/// dynamic tail-call edges (the pre-pass that builds the inference graph).
void collectTailCallEdges(const Symbolizer &Sym,
                          const std::vector<PerfSample> &Samples,
                          MissingFrameInferrer &Inferrer);

/// Range form scanning only Samples[Begin, End): the sharded pipeline
/// collects per-shard edge sets in parallel and unions them via
/// MissingFrameInferrer::addEdgesFrom.
void collectTailCallEdges(const Symbolizer &Sym,
                          const std::vector<PerfSample> &Samples,
                          size_t Begin, size_t End,
                          MissingFrameInferrer &Inferrer);

} // namespace csspgo

#endif // CSSPGO_PROFGEN_CONTEXTUNWINDER_H

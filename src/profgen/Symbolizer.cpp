//===- profgen/Symbolizer.cpp - Binary symbolization -----------------------===//

#include "profgen/Symbolizer.h"

#include <algorithm>

namespace csspgo {

Symbolizer::Symbolizer(const Binary &Bin) : Bin(Bin) {
  GuidToName = Bin.DebugNames;
  for (const MachineFunction &F : Bin.Funcs)
    GuidToName[F.Guid] = F.Name;
  for (const ProbeRecord &P : Bin.Probes) {
    if (P.IsCallProbe)
      CallProbes[P.InstIdx] = P.ProbeId;
    else
      BlockProbes[P.InstIdx].push_back(&P);
  }
  for (uint32_t F = 0; F != Bin.Funcs.size(); ++F) {
    if (Bin.Funcs[F].HotEnd > Bin.Funcs[F].HotBegin)
      RangeStarts.emplace_back(Bin.Funcs[F].HotBegin, F);
    if (Bin.Funcs[F].ColdEnd > Bin.Funcs[F].ColdBegin)
      RangeStarts.emplace_back(Bin.Funcs[F].ColdBegin, F);
  }
  std::sort(RangeStarts.begin(), RangeStarts.end());
}

const std::string &Symbolizer::nameOfGuid(uint64_t Guid) const {
  auto It = GuidToName.find(Guid);
  return It == GuidToName.end() ? EmptyName : It->second;
}

BranchKind Symbolizer::classify(size_t Idx) const {
  const MInst &I = Bin.Code[Idx];
  switch (I.Op) {
  case Opcode::CondBr:
    return BranchKind::Conditional;
  case Opcode::Br:
    return BranchKind::Unconditional;
  case Opcode::Call:
  case Opcode::CallIndirect:
    return I.IsTailCall ? BranchKind::TailCallJump : BranchKind::Call;
  case Opcode::Ret:
    return BranchKind::Return;
  default:
    return BranchKind::NotABranch;
  }
}

uint32_t Symbolizer::callProbeAt(size_t Idx) const {
  auto It = CallProbes.find(Idx);
  return It == CallProbes.end() ? 0 : It->second;
}

const std::vector<const ProbeRecord *> &Symbolizer::probesAt(size_t Idx) const {
  auto It = BlockProbes.find(Idx);
  return It == BlockProbes.end() ? Empty : It->second;
}

std::vector<Symbolizer::Frame> Symbolizer::framesAt(size_t Idx) const {
  std::vector<Frame> Out;
  for (const Binary::SymFrame &S : Bin.symbolize(Idx)) {
    Frame F;
    F.Func = nameOfGuid(S.Guid);
    F.Loc = S.Loc;
    F.CallProbeId = S.CallProbeId;
    Out.push_back(std::move(F));
  }
  // The leaf frame's call-site probe is the instruction's own call probe.
  if (!Out.empty())
    Out.back().CallProbeId = callProbeAt(Idx);
  return Out;
}

uint32_t Symbolizer::funcIndexOf(size_t Idx) const {
  auto It = std::upper_bound(
      RangeStarts.begin(), RangeStarts.end(),
      std::make_pair(Idx, ~0u));
  if (It == RangeStarts.begin())
    return ~0u;
  --It;
  uint32_t F = It->second;
  return Bin.Funcs[F].containsIdx(Idx) ? F : ~0u;
}

} // namespace csspgo

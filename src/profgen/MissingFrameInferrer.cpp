//===- profgen/MissingFrameInferrer.cpp - Tail-call frame recovery ----------===//

#include "profgen/MissingFrameInferrer.h"

namespace csspgo {

void MissingFrameInferrer::addTailCallEdge(const std::string &FromFunc,
                                           uint32_t SiteProbe,
                                           const std::string &ToFunc) {
  Edges[FromFunc].insert({SiteProbe, ToFunc});
}

void MissingFrameInferrer::addEdgesFrom(const MissingFrameInferrer &Other) {
  for (const auto &[From, Targets] : Other.Edges)
    Edges[From].insert(Targets.begin(), Targets.end());
}

unsigned MissingFrameInferrer::countPaths(const std::string &From,
                                          const std::string &To,
                                          std::set<std::string> &Visiting,
                                          std::vector<RecoveredFrame> &Path,
                                          unsigned Limit) {
  if (From == To)
    return 1;
  if (!Visiting.insert(From).second)
    return 0; // Cycle.
  auto It = Edges.find(From);
  unsigned Found = 0;
  if (It != Edges.end()) {
    for (const auto &[Site, Next] : It->second) {
      std::vector<RecoveredFrame> Sub;
      std::set<std::string> SubVisiting = Visiting;
      unsigned N = countPaths(Next, To, SubVisiting, Sub, Limit - Found);
      if (N > 0 && Found == 0) {
        // Record the first found path.
        Path.push_back({From, Site});
        Path.insert(Path.end(), Sub.begin(), Sub.end());
      }
      Found += N;
      if (Found >= Limit)
        break;
    }
  }
  Visiting.erase(From);
  return Found;
}

bool MissingFrameInferrer::inferMissingFrames(
    const std::string &From, const std::string &To,
    std::vector<RecoveredFrame> &Out) {
  ++S.Attempts;
  std::vector<RecoveredFrame> Path;
  std::set<std::string> Visiting;
  unsigned N = countPaths(From, To, Visiting, Path, 2);
  if (N == 0) {
    ++S.NoPath;
    return false;
  }
  if (N > 1) {
    ++S.AmbiguousPaths;
    return false;
  }
  ++S.Recovered;
  Out.insert(Out.end(), Path.begin(), Path.end());
  return true;
}

} // namespace csspgo

//===- profgen/MissingFrameInferrer.h - Tail-call frame recovery -*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Missing-frame inference (§III-B "Reliable stack sampling"). Tail-call
/// elimination removes caller frames from sampled stacks. The inferrer
/// builds a *dynamic* call graph of only tail-call edges observed in LBR
/// samples and, given a (caller, callee) pair whose frames do not connect,
/// searches for a unique tail-call path between them; a unique path fills
/// in the missing frames, multiple paths make the inference fail. The
/// paper reports more than two-thirds of missing tail-call frames being
/// recoverable in practice.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_PROFGEN_MISSINGFRAMEINFERRER_H
#define CSSPGO_PROFGEN_MISSINGFRAMEINFERRER_H

#include "profgen/Symbolizer.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace csspgo {

class MissingFrameInferrer {
public:
  /// Records a tail-call edge observed in an LBR sample: a tail-call jump
  /// in \p FromFunc (with call-site probe \p SiteProbe) landing in
  /// \p ToFunc.
  void addTailCallEdge(const std::string &FromFunc, uint32_t SiteProbe,
                       const std::string &ToFunc);

  /// Unions \p Other's edge graph into this one. Edges are a set, so the
  /// union is order-independent — the sharded pipeline collects edges per
  /// shard in parallel and reduces here, yielding the same graph as a
  /// serial scan of the full sample set.
  void addEdgesFrom(const MissingFrameInferrer &Other);

  /// One recovered frame: the function whose frame was elided plus the
  /// call-site probe of the tail call it made.
  struct RecoveredFrame {
    std::string Func;
    uint32_t SiteProbe = 0;
  };

  /// Tries to connect \p From to \p To through tail calls. On success
  /// appends the intermediate functions (including \p From itself with its
  /// outgoing site, excluding \p To) to \p Out and returns true. Fails when
  /// no path or more than one path exists.
  bool inferMissingFrames(const std::string &From, const std::string &To,
                          std::vector<RecoveredFrame> &Out);

  struct Stats {
    uint64_t Attempts = 0;
    uint64_t Recovered = 0;
    uint64_t AmbiguousPaths = 0;
    uint64_t NoPath = 0;
  };
  const Stats &stats() const { return S; }

private:
  /// Counts the distinct paths From->To (up to 2) and records one.
  unsigned countPaths(const std::string &From, const std::string &To,
                      std::set<std::string> &Visiting,
                      std::vector<RecoveredFrame> &Path, unsigned Limit);

  /// From -> set of (site, to).
  std::map<std::string, std::set<std::pair<uint32_t, std::string>>> Edges;
  Stats S;
};

} // namespace csspgo

#endif // CSSPGO_PROFGEN_MISSINGFRAMEINFERRER_H

//===- profgen/BinarySizeExtractor.cpp - Algorithm 3 ------------------------===//

#include "profgen/BinarySizeExtractor.h"

#include <set>

namespace csspgo {

void FuncSizeTable::add(const SampleContext &Ctx, uint64_t Bytes) {
  uint64_t &Slot = Sizes[Ctx];
  bool New = Slot == 0;
  Slot += Bytes;
  auto &[Sum, N] = Totals[Ctx.back().Func];
  Sum += Bytes;
  if (New)
    ++N;
}

uint64_t FuncSizeTable::sizeForContext(const SampleContext &Ctx) const {
  auto It = Sizes.find(Ctx);
  if (It != Sizes.end())
    return It->second;
  return averageSizeFor(Ctx.back().Func);
}

uint64_t FuncSizeTable::averageSizeFor(const std::string &Func) const {
  auto It = Totals.find(Func);
  if (It == Totals.end() || It->second.second == 0)
    return 0;
  return It->second.first / It->second.second;
}

FuncSizeTable extractFuncSizes(const Binary &Bin) {
  // Algorithm 3: for every instruction, attribute its size to its full
  // inline frame chain, and also initialize all prefixes so that callers
  // whose code was entirely absorbed/optimized away still get an entry
  // (size 0) — that is how the pre-inliner learns a function "will
  // eventually be fully optimized away".
  Symbolizer Sym(Bin);
  FuncSizeTable Table;
  std::map<SampleContext, uint64_t> Acc;
  std::set<SampleContext> Seen;

  for (size_t Idx = 0; Idx != Bin.Code.size(); ++Idx) {
    auto Frames = Sym.framesAt(Idx);
    if (Frames.empty())
      continue;
    SampleContext Ctx;
    for (const auto &F : Frames)
      Ctx.push_back({F.Func, F.CallProbeId});
    Ctx.back().Site = 0;
    Acc[Ctx] += Bin.Code[Idx].Size;
    // Register all prefixes (PopLeafFrames loop of Algorithm 3).
    SampleContext Prefix = Ctx;
    while (Prefix.size() > 1) {
      Prefix.pop_back();
      Prefix.back().Site = 0;
      Seen.insert(Prefix);
    }
  }

  for (const auto &[Ctx, Bytes] : Acc)
    Table.add(Ctx, Bytes);
  for (const auto &Ctx : Seen)
    if (!Acc.count(Ctx))
      Table.add(Ctx, 0); // Caller copy fully optimized away.
  return Table;
}

} // namespace csspgo

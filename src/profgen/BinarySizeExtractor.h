//===- profgen/BinarySizeExtractor.h - Algorithm 3 ---------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Context-sensitive inline cost extraction — Algorithm 3 of the paper.
/// Walks every instruction of the profiled binary, attributing its byte
/// size to the inline context it belongs to (a trie of function size per
/// inlined copy). The pre-inliner uses these *measured, post-optimization*
/// sizes instead of early-IR estimates: "extracted size can often
/// accurately tell the pre-inliner that certain functions will eventually
/// be fully optimized away".
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_PROFGEN_BINARYSIZEEXTRACTOR_H
#define CSSPGO_PROFGEN_BINARYSIZEEXTRACTOR_H

#include "profile/ContextTrie.h"
#include "profgen/Symbolizer.h"

#include <map>

namespace csspgo {

/// Measured code size per inline context. The context is the chain of
/// function frames ([physical function @ site, ..., leaf origin]); sizes
/// of distinct inlined copies stay distinct.
class FuncSizeTable {
public:
  /// Size in bytes of the inlined copy at \p Ctx, or the size that copy
  /// would have; returns 0 when unknown.
  uint64_t sizeForContext(const SampleContext &Ctx) const;

  /// Aggregate size for a function across all its copies, divided by the
  /// number of copies (the pre-inliner's per-copy estimate for contexts it
  /// has not seen). Returns 0 when the function never appears.
  uint64_t averageSizeFor(const std::string &Func) const;

  void add(const SampleContext &Ctx, uint64_t Bytes);

  size_t numContexts() const { return Sizes.size(); }

private:
  std::map<SampleContext, uint64_t> Sizes;
  std::map<std::string, std::pair<uint64_t, uint64_t>> Totals; // sum, n
};

/// Runs Algorithm 3 over \p Bin.
FuncSizeTable extractFuncSizes(const Binary &Bin);

} // namespace csspgo

#endif // CSSPGO_PROFGEN_BINARYSIZEEXTRACTOR_H

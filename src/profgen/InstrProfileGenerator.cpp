//===- profgen/InstrProfileGenerator.cpp - Instr PGO profile ----------------===//

#include "profgen/InstrProfileGenerator.h"

#include "support/Hashing.h"

namespace csspgo {

FlatProfile generateInstrProfile(const CounterDump &Dump,
                                 const Binary *Bin, const RunResult *Run) {
  FlatProfile Out;
  Out.Kind = ProfileKind::ProbeBased; // Keyed by anchor id, like probes.
  for (const auto &[Name, Counters] : Dump.Functions) {
    FunctionProfile &P = Out.getOrCreate(Name);
    P.Guid = computeFunctionGuid(Name);
    for (uint32_t C = 1; C < Counters.size(); ++C)
      P.addBody({C, 0}, Counters[C]);
    if (Counters.size() > 1)
      P.HeadSamples = Counters[1];
  }
  // Value profiles: indirect-call targets per value site.
  if (Bin && Run) {
    for (const auto &[Site, Targets] : Run->ValueProfile) {
      auto [Guid, SiteId] = Site;
      auto NameIt = Bin->DebugNames.find(Guid);
      if (NameIt == Bin->DebugNames.end())
        continue;
      FunctionProfile &P = Out.getOrCreate(NameIt->second);
      for (const auto &[Slot, Count] : Targets) {
        if (static_cast<size_t>(Slot) >= Bin->FuncTable.size())
          continue;
        const MachineFunction &Target =
            Bin->Funcs[Bin->FuncTable[static_cast<size_t>(Slot)]];
        P.addCall({SiteId, 0}, Target.Name, Count);
      }
    }
  }
  return Out;
}

} // namespace csspgo

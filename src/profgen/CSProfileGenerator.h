//===- profgen/CSProfileGenerator.h - CSSPGO profile generation --*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Context-sensitive, probe-based profile generation — the CSSPGO
/// llvm-profgen path. Linear ranges and branches are context-attributed by
/// the virtual unwinder (Algorithm 1); counts are recorded against
/// *pseudo-probe ids*, with copies of the same probe (from code
/// duplication) summed — the one-to-one mapping property of §III-A. The
/// probed functions' CFG checksums are persisted into the profile for
/// stale-profile detection.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_PROFGEN_CSPROFILEGENERATOR_H
#define CSSPGO_PROFGEN_CSPROFILEGENERATOR_H

#include "probe/ProbeTable.h"
#include "profile/ContextTrie.h"
#include "profgen/ContextUnwinder.h"
#include "sim/Sampler.h"

namespace csspgo {

struct CSProfileGenStats {
  uint64_t Samples = 0;
  uint64_t UnsyncedSamples = 0;
  uint64_t RangesProcessed = 0;
  MissingFrameInferrer::Stats TailCallStats;
};

struct CSProfileOptions {
  /// Enable the missing-frame inferrer.
  bool InferMissingFrames = true;
};

/// Generates a probe-based context profile from \p Samples taken on
/// \p Bin. \p Probes supplies function checksums (the .pseudo_probe_desc
/// section). Thin wrapper over the ProfileGenerator facade (serial path);
/// prefer the facade in new code.
ContextProfile
generateCSProfile(const Binary &Bin, const ProbeTable &Probes,
                  const std::vector<PerfSample> &Samples,
                  const CSProfileOptions &Opts = {},
                  CSProfileGenStats *Stats = nullptr);

/// Generates the "probe-only CSSPGO" profile (Fig. 6's middle variant): a
/// *flat* probe-keyed profile with nested inlinee profiles from the
/// binary's probe inline metadata, but no stack-based calling contexts.
/// Same correlation quality as full CSSPGO, no context sensitivity.
/// Thin wrapper over the ProfileGenerator facade (serial path).
FlatProfile generateProbeOnlyProfile(const Binary &Bin,
                                     const ProbeTable &Probes,
                                     const std::vector<PerfSample> &Samples,
                                     CSProfileGenStats *Stats = nullptr);

/// Chunk-level CS generation, the unit of work of the sharded pipeline
/// (ShardedProfGen): unwinds Samples[Begin, End) and materializes a
/// context trie for just that slice. \p Inferrer must already hold the
/// tail-call edge graph of the FULL sample set (collectTailCallEdges), so
/// every shard runs missing-frame inference against the same graph as the
/// serial path — the basis of the bit-identical-reduction guarantee. Each
/// concurrent chunk needs its own Inferrer copy (inference updates its
/// stats); pass nullptr to disable inference.
ContextProfile generateCSProfileChunk(const Symbolizer &Sym,
                                      const ProbeTable &Probes,
                                      const std::vector<PerfSample> &Samples,
                                      size_t Begin, size_t End,
                                      MissingFrameInferrer *Inferrer,
                                      CSProfileGenStats *Stats = nullptr);

/// Chunk-level probe-only generation over Samples[Begin, End); shards
/// reduce with mergeFlatProfiles (pure sums, so any partition reduces to
/// the serial result).
FlatProfile generateProbeOnlyProfileChunk(const Symbolizer &Sym,
                                          const ProbeTable &Probes,
                                          const std::vector<PerfSample> &Samples,
                                          size_t Begin, size_t End,
                                          CSProfileGenStats *Stats = nullptr);

} // namespace csspgo

#endif // CSSPGO_PROFGEN_CSPROFILEGENERATOR_H

//===- profgen/ProfileGenerator.cpp - Unified profgen facade --------------===//

#include "profgen/ProfileGenerator.h"

#include "profgen/AutoFDOGenerator.h"
#include "profgen/InstrProfileGenerator.h"
#include "profgen/ShardedProfGen.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace csspgo {

const char *profGenKindName(ProfGenKind K) {
  switch (K) {
  case ProfGenKind::CS:
    return "cs";
  case ProfGenKind::ProbeOnly:
    return "probeonly";
  case ProfGenKind::AutoFDO:
    return "autofdo";
  case ProfGenKind::Instr:
    return "instr";
  }
  return "?";
}

ProfileGenerator::ProfileGenerator(const Binary &Bin, const ProbeTable *Probes,
                                   ProfGenOptions Opts)
    : Bin(Bin), Probes(Probes), Opts(Opts) {
  if ((Opts.Kind == ProfGenKind::CS || Opts.Kind == ProfGenKind::ProbeOnly) &&
      !Probes) {
    std::fprintf(stderr,
                 "csspgo: ProfileGenerator kind '%s' requires a probe "
                 "descriptor table\n",
                 profGenKindName(Opts.Kind));
    std::abort();
  }
}

ProfGenResult
ProfileGenerator::generate(const std::vector<PerfSample> &Samples) const {
  ProfGenResult R;
  switch (Opts.Kind) {
  case ProfGenKind::CS: {
    CSProfileOptions CSOpts;
    CSOpts.InferMissingFrames = Opts.InferMissingFrames;
    R.ShardsUsed = static_cast<unsigned>(
        planShards(Samples.size(),
                   resolveParallelism(Opts.Parallelism, Samples.size()))
            .size());
    R.CS = generateCSProfileSharded(Bin, *Probes, Samples, CSOpts,
                                    Opts.Parallelism, &R.Stats, &R.Reduce);
    R.IsCS = true;
    break;
  }
  case ProfGenKind::ProbeOnly: {
    R.ShardsUsed = static_cast<unsigned>(
        planShards(Samples.size(),
                   resolveParallelism(Opts.Parallelism, Samples.size()))
            .size());
    R.Flat = generateProbeOnlyProfileSharded(Bin, *Probes, Samples,
                                             Opts.Parallelism, &R.Stats,
                                             &R.Reduce);
    break;
  }
  case ProfGenKind::AutoFDO: {
    AutoFDOGenStats AS;
    R.Flat = generateAutoFDOProfile(Bin, Samples, &AS);
    R.Stats.Samples = Samples.size();
    R.Stats.RangesProcessed = AS.RangesProcessed;
    break;
  }
  case ProfGenKind::Instr:
    std::fprintf(stderr, "csspgo: the Instr kind generates from a counter "
                         "dump, not from samples\n");
    std::abort();
  }
  if (R.ShardsUsed == 0)
    R.ShardsUsed = 1;
  if (Opts.Verify != VerifyLevel::Off) {
    VerifierOptions VO;
    VO.Level = Opts.Verify;
    // A freshly generated profile must agree with the probe table it was
    // generated against (CS/ProbeOnly kinds); AutoFDO keys records by
    // line offsets, where the probe domain does not apply.
    VO.Probes = Probes;
    R.Verify = R.IsCS ? verifyContextProfile(R.CS, VO)
                      : verifyFlatProfile(R.Flat, VO);
  }
  return R;
}

ProfGenResult ProfileGenerator::generate(const CounterDump &Dump,
                                         const RunResult *Run) const {
  assert(Opts.Kind == ProfGenKind::Instr &&
         "counter-dump generation is the Instr kind");
  ProfGenResult R;
  R.Flat = generateInstrProfile(Dump, &Bin, Run);
  if (Opts.Verify != VerifyLevel::Off) {
    VerifierOptions VO;
    VO.Level = Opts.Verify;
    // Counter profiles are exact: the head is a body counter, so
    // HEAD <= TOTAL must hold; the sampled head/call-edge conservation
    // law does not apply (counters are not paired with LBR records).
    VO.ExactCounts = true;
    VO.CheckHeadEdges = false;
    R.Verify = verifyFlatProfile(R.Flat, VO);
  }
  return R;
}

} // namespace csspgo

//===- ir/Builder.cpp - IR construction helper ----------------------------===//

#include "ir/Builder.h"

namespace csspgo {

Instruction &Builder::emit(Opcode Op) {
  assert(BB && "no insertion block set");
  BB->Insts.emplace_back();
  Instruction &I = BB->Insts.back();
  I.Op = Op;
  I.DL.Line = Line++;
  I.OriginGuid = F->getGuid();
  return I;
}

RegId Builder::emitBinary(Opcode Op, Operand A, Operand B) {
  RegId Dst = F->allocReg();
  Instruction &I = emit(Op);
  I.Dst = Dst;
  I.A = A;
  I.B = B;
  return Dst;
}

RegId Builder::emitSelect(Operand Cond, Operand T, Operand Fa) {
  RegId Dst = F->allocReg();
  Instruction &I = emit(Opcode::Select);
  I.Dst = Dst;
  I.A = Cond;
  I.B = T;
  I.C = Fa;
  return Dst;
}

RegId Builder::emitLoad(Operand Addr) {
  RegId Dst = F->allocReg();
  Instruction &I = emit(Opcode::Load);
  I.Dst = Dst;
  I.A = Addr;
  return Dst;
}

void Builder::emitStore(Operand Addr, Operand Val) {
  Instruction &I = emit(Opcode::Store);
  I.A = Addr;
  I.B = Val;
}

RegId Builder::emitCall(const std::string &Callee, std::vector<Operand> Args,
                        bool IsTail) {
  RegId Dst = F->allocReg();
  Instruction &I = emit(Opcode::Call);
  I.Dst = Dst;
  I.Callee = Callee;
  I.Args = std::move(Args);
  I.IsTailCall = IsTail;
  return Dst;
}

RegId Builder::emitCallIndirect(Operand Slot, std::vector<Operand> Args) {
  RegId Dst = F->allocReg();
  Instruction &I = emit(Opcode::CallIndirect);
  I.Dst = Dst;
  I.A = Slot;
  I.Args = std::move(Args);
  return Dst;
}

void Builder::emitRet(Operand Val) {
  Instruction &I = emit(Opcode::Ret);
  I.A = Val;
}

void Builder::emitBr(BasicBlock *Target) {
  Instruction &I = emit(Opcode::Br);
  I.Succ0 = Target;
}

void Builder::emitCondBr(Operand Cond, BasicBlock *TrueBB,
                         BasicBlock *FalseBB) {
  Instruction &I = emit(Opcode::CondBr);
  I.A = Cond;
  I.Succ0 = TrueBB;
  I.Succ1 = FalseBB;
}

} // namespace csspgo

//===- ir/Module.h - Module -------------------------------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Module: the unit of compilation. Owns functions and records the entry
/// point and the size of the global memory the program operates on.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_IR_MODULE_H
#define CSSPGO_IR_MODULE_H

#include "ir/Function.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace csspgo {

class Module {
public:
  explicit Module(std::string Name) : Name(std::move(Name)) {}

  const std::string &getName() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  /// Creates a function; names must be unique within the module.
  Function *createFunction(const std::string &FName, unsigned NumParams);

  /// Looks a function up by name; returns nullptr if absent.
  Function *getFunction(const std::string &FName) const;

  /// Looks a function up by GUID; returns nullptr if absent.
  Function *getFunctionByGuid(uint64_t Guid) const;

  /// Removes \p F. No remaining call sites may reference it.
  void eraseFunction(Function *F);

  std::vector<std::unique_ptr<Function>> Functions;

  /// Name of the entry function executed by the simulator.
  std::string EntryFunction;

  /// Number of 64-bit words of global memory (input data lives here).
  uint64_t MemWords = 1 << 16;

  /// Indirect-call function table: CallIndirect's slot operand indexes
  /// into this (the moral equivalent of a vtable / function-pointer
  /// array). Entries keep their functions alive through dead-function
  /// removal, like address-taken functions in a real linker.
  std::vector<std::string> FunctionTable;

  /// Adds \p FName to the function table and returns its slot.
  uint32_t addFunctionTableEntry(const std::string &FName) {
    FunctionTable.push_back(FName);
    return static_cast<uint32_t>(FunctionTable.size() - 1);
  }

  /// Returns the slot of \p FName in the table, or ~0u.
  uint32_t functionTableSlot(const std::string &FName) const {
    for (uint32_t I = 0; I != FunctionTable.size(); ++I)
      if (FunctionTable[I] == FName)
        return I;
    return ~0u;
  }

  /// Deep-copies the module (blocks, instructions, successor pointers and
  /// profile annotations are all remapped/copied).
  std::unique_ptr<Module> clone() const;

  /// Names of all functions ever created, including ones later removed as
  /// dead (debug info and probe descriptors keep symbol names even when
  /// the standalone body is gone — required to symbolize inlined copies).
  const std::map<uint64_t, std::string> &guidNames() const {
    return GuidNames;
  }

private:
  std::string Name;
  std::map<std::string, Function *> FunctionMap;
  std::map<uint64_t, Function *> GuidMap;
  std::map<uint64_t, std::string> GuidNames;
};

} // namespace csspgo

#endif // CSSPGO_IR_MODULE_H

//===- ir/Printer.cpp - Textual IR printer --------------------------------===//

#include "ir/Printer.h"

#include <sstream>

namespace csspgo {

static std::string operandStr(const Operand &O) {
  if (O.isReg())
    return "r" + std::to_string(O.getReg());
  if (O.isImm())
    return std::to_string(O.getImm());
  return "<none>";
}

std::string printInstruction(const Instruction &I, const PrintOptions &Opts) {
  std::ostringstream OS;
  switch (I.Op) {
  case Opcode::Store:
    OS << "store [" << operandStr(I.A) << "] = " << operandStr(I.B);
    break;
  case Opcode::Ret:
    OS << "ret " << operandStr(I.A);
    break;
  case Opcode::Br:
    OS << "br " << I.Succ0->getLabel();
    break;
  case Opcode::CondBr:
    OS << "condbr " << operandStr(I.A) << ", " << I.Succ0->getLabel() << ", "
       << I.Succ1->getLabel();
    break;
  case Opcode::Call: {
    OS << "r" << I.Dst << " = " << (I.IsTailCall ? "tailcall " : "call ")
       << I.Callee << "(";
    for (size_t A = 0; A != I.Args.size(); ++A) {
      if (A)
        OS << ", ";
      OS << operandStr(I.Args[A]);
    }
    OS << ")";
    if (I.ProbeId)
      OS << " !callprobe " << I.ProbeId;
    break;
  }
  case Opcode::CallIndirect: {
    OS << "r" << I.Dst << " = callindirect [" << operandStr(I.A) << "](";
    for (size_t A = 0; A != I.Args.size(); ++A) {
      if (A)
        OS << ", ";
      OS << operandStr(I.Args[A]);
    }
    OS << ")";
    if (I.ProbeId)
      OS << " !callprobe " << I.ProbeId;
    break;
  }
  case Opcode::PseudoProbe:
    OS << "pseudoprobe guid=" << I.OriginGuid << " id=" << I.ProbeId;
    break;
  case Opcode::InstrProfIncr:
    OS << "instrprof.incr counter=" << I.ProbeId;
    break;
  case Opcode::Select:
    OS << "r" << I.Dst << " = select " << operandStr(I.A) << ", "
       << operandStr(I.B) << ", " << operandStr(I.C);
    break;
  case Opcode::Load:
    OS << "r" << I.Dst << " = load [" << operandStr(I.A) << "]";
    break;
  case Opcode::Mov:
    OS << "r" << I.Dst << " = mov " << operandStr(I.A);
    break;
  default:
    OS << "r" << I.Dst << " = " << opcodeName(I.Op) << " " << operandStr(I.A)
       << ", " << operandStr(I.B);
    break;
  }
  if (Opts.ShowLines) {
    OS << "  !dbg :" << I.DL.Line;
    if (I.DL.Discriminator)
      OS << "." << I.DL.Discriminator;
  }
  if (Opts.ShowInlineStack && !I.InlineStack.empty()) {
    OS << "  !inlined[";
    for (size_t F = 0; F != I.InlineStack.size(); ++F) {
      if (F)
        OS << " @ ";
      OS << I.InlineStack[F].FuncGuid << ":" << I.InlineStack[F].CallLoc.Line;
    }
    OS << "]";
  }
  return OS.str();
}

std::string printBlock(const BasicBlock &BB, const PrintOptions &Opts) {
  std::ostringstream OS;
  OS << BB.getLabel() << ":";
  if (Opts.ShowProfile && BB.HasCount) {
    OS << "  ; count=" << BB.Count;
    if (!BB.SuccWeights.empty()) {
      OS << " weights=[";
      for (size_t I = 0; I != BB.SuccWeights.size(); ++I) {
        if (I)
          OS << ",";
        OS << BB.SuccWeights[I];
      }
      OS << "]";
    }
  }
  if (BB.IsColdSection)
    OS << "  ; cold";
  OS << "\n";
  for (const Instruction &I : BB.Insts)
    OS << "  " << printInstruction(I, Opts) << "\n";
  return OS.str();
}

std::string printFunction(const Function &F, const PrintOptions &Opts) {
  std::ostringstream OS;
  OS << "func " << F.getName() << "(" << F.getNumParams() << " params, "
     << F.getNumRegs() << " regs)";
  if (F.HasEntryCount)
    OS << " ; entry_count=" << F.EntryCount;
  if (F.HasProbes)
    OS << " ; probed checksum=" << F.ProbeCFGChecksum;
  OS << " {\n";
  for (const auto &BB : F.Blocks)
    OS << printBlock(*BB, Opts);
  OS << "}\n";
  return OS.str();
}

std::string printModule(const Module &M, const PrintOptions &Opts) {
  std::ostringstream OS;
  OS << "; module " << M.getName() << ", entry=" << M.EntryFunction << "\n";
  for (const auto &F : M.Functions)
    OS << printFunction(*F, Opts) << "\n";
  return OS.str();
}

} // namespace csspgo

//===- ir/BasicBlock.cpp - Basic block ------------------------------------===//

#include "ir/BasicBlock.h"

namespace csspgo {

std::vector<BasicBlock *> BasicBlock::successors() const {
  std::vector<BasicBlock *> Succs;
  if (!hasTerminator())
    return Succs;
  const Instruction &T = terminator();
  if (T.Succ0)
    Succs.push_back(T.Succ0);
  if (T.Op == Opcode::CondBr && T.Succ1)
    Succs.push_back(T.Succ1);
  return Succs;
}

unsigned BasicBlock::numSuccessors() const {
  if (!hasTerminator())
    return 0;
  const Instruction &T = terminator();
  switch (T.Op) {
  case Opcode::Ret:
    return 0;
  case Opcode::Br:
    return 1;
  case Opcode::CondBr:
    return 2;
  default:
    return 0;
  }
}

void BasicBlock::replaceSuccessor(BasicBlock *From, BasicBlock *To) {
  if (!hasTerminator())
    return;
  Instruction &T = terminator();
  if (T.Succ0 == From)
    T.Succ0 = To;
  if (T.Succ1 == From)
    T.Succ1 = To;
}

const Instruction *BasicBlock::getBlockProbe() const {
  for (const Instruction &I : Insts)
    if (I.isProbe())
      return &I;
  return nullptr;
}

uint64_t BasicBlock::succWeight(unsigned SuccIdx) const {
  unsigned N = numSuccessors();
  assert(SuccIdx < N && "successor index out of range");
  if (SuccIdx < SuccWeights.size())
    return SuccWeights[SuccIdx];
  return N ? Count / N : 0;
}

} // namespace csspgo

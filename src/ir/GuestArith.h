//===- ir/GuestArith.h - Guest i64 arithmetic semantics ---------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The guest ISA's integer semantics: i64 two's-complement with silent
/// wraparound, total division (x/0 == x%0 == 0, and INT64_MIN / -1 wraps
/// to INT64_MIN instead of trapping) and shift counts masked to 6 bits.
/// Host *signed* overflow is undefined behavior, so every component that
/// evaluates guest operations — the reference interpreter, the fast-path
/// interpreter and the constant folder, which must all agree bit-for-bit
/// — routes through these helpers, which compute in uint64_t where the
/// wrap is well defined. (UBSan caught the previous direct signed ops:
/// a generated workload squaring a large accumulator is enough.)
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_IR_GUESTARITH_H
#define CSSPGO_IR_GUESTARITH_H

#include <cstdint>

namespace csspgo {

inline int64_t guestAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}

inline int64_t guestSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}

inline int64_t guestMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}

inline int64_t guestDiv(int64_t A, int64_t B) {
  if (B == 0)
    return 0;
  if (B == -1) // INT64_MIN / -1 overflows; wrap like the negation it is.
    return guestSub(0, A);
  return A / B;
}

inline int64_t guestMod(int64_t A, int64_t B) {
  if (B == 0 || B == -1) // x % -1 == 0, minus the INT64_MIN trap.
    return 0;
  return A % B;
}

inline int64_t guestShl(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A)
                              << (static_cast<uint64_t>(B) & 63));
}

inline int64_t guestShr(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) >>
                              (static_cast<uint64_t>(B) & 63));
}

} // namespace csspgo

#endif // CSSPGO_IR_GUESTARITH_H

//===- ir/Function.cpp - Function -----------------------------------------===//

#include "ir/Function.h"

#include "support/Hashing.h"

#include <algorithm>

namespace csspgo {

Function::Function(Module *Parent, std::string Name, unsigned NumParams)
    : Parent(Parent), Name(std::move(Name)),
      Guid(computeFunctionGuid(this->Name)), NumParams(NumParams),
      NumRegs(NumParams) {}

BasicBlock *Function::createBlock(const std::string &LabelHint) {
  std::string Label = LabelHint + "." + std::to_string(NextBlockId++);
  Blocks.push_back(std::make_unique<BasicBlock>(this, Label));
  return Blocks.back().get();
}

void Function::eraseBlock(BasicBlock *BB) {
  assert(BB != getEntry() && "cannot erase the entry block");
  auto It = std::find_if(
      Blocks.begin(), Blocks.end(),
      [BB](const std::unique_ptr<BasicBlock> &P) { return P.get() == BB; });
  assert(It != Blocks.end() && "block not in function");
  Blocks.erase(It);
}

size_t Function::instructionCount() const {
  size_t N = 0;
  for (const auto &BB : Blocks)
    N += BB->Insts.size();
  return N;
}

size_t Function::codeInstructionCount() const {
  size_t N = 0;
  for (const auto &BB : Blocks)
    for (const Instruction &I : BB->Insts)
      if (!I.isProbe())
        ++N;
  return N;
}

void Function::renumberBlocks() {
  unsigned Id = 0;
  for (auto &BB : Blocks)
    BB->setLabel(Name + ".bb" + std::to_string(Id++));
  NextBlockId = Id;
}

unsigned Function::blockIndex(const BasicBlock *BB) const {
  for (unsigned I = 0; I != Blocks.size(); ++I)
    if (Blocks[I].get() == BB)
      return I;
  return ~0u;
}

} // namespace csspgo

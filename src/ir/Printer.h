//===- ir/Printer.h - Textual IR printer ------------------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Human-readable IR dumping for debugging, examples and golden tests.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_IR_PRINTER_H
#define CSSPGO_IR_PRINTER_H

#include "ir/Module.h"

#include <string>

namespace csspgo {

/// Options controlling how much annotation the printer emits.
struct PrintOptions {
  bool ShowLines = true;    ///< !dbg line/discriminator annotations.
  bool ShowProfile = true;  ///< Block counts and edge weights.
  bool ShowInlineStack = false; ///< Per-instruction inline context.
};

std::string printInstruction(const Instruction &I,
                             const PrintOptions &Opts = {});
std::string printBlock(const BasicBlock &BB, const PrintOptions &Opts = {});
std::string printFunction(const Function &F, const PrintOptions &Opts = {});
std::string printModule(const Module &M, const PrintOptions &Opts = {});

} // namespace csspgo

#endif // CSSPGO_IR_PRINTER_H

//===- ir/Checksum.h - CFG checksum -----------------------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CFG checksum for stale-profile detection (§III-A). The checksum hashes
/// the *shape* of the control-flow graph at probe-insertion time: block
/// count and, per block, the probe id and successor probe ids. Source edits
/// that do not change the CFG (comments, renamed locals) leave the checksum
/// unchanged, so CSSPGO profiles survive them; any CFG edit flips it and the
/// stale profile is rejected instead of silently mis-correlated.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_IR_CHECKSUM_H
#define CSSPGO_IR_CHECKSUM_H

#include "ir/Function.h"

namespace csspgo {

/// Computes the CFG-shape checksum of \p F. Requires block probes to be
/// present when \p UseProbes is true; otherwise falls back to structural
/// hashing by block position.
uint64_t computeCFGChecksum(const Function &F);

} // namespace csspgo

#endif // CSSPGO_IR_CHECKSUM_H

//===- ir/Builder.h - IR construction helper --------------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IRBuilder-style convenience API for constructing instructions. Tracks a
/// current insertion block and a current source line so generated programs
/// get realistic monotonically increasing function-relative line numbers
/// (which is what the debug-info-based correlation of AutoFDO keys on).
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_IR_BUILDER_H
#define CSSPGO_IR_BUILDER_H

#include "ir/Function.h"
#include "ir/Module.h"

namespace csspgo {

class Builder {
public:
  explicit Builder(Function *F) : F(F) {}

  Function *getFunction() const { return F; }

  /// Sets the block new instructions are appended to.
  void setInsertBlock(BasicBlock *B) { BB = B; }
  BasicBlock *getInsertBlock() const { return BB; }

  /// Sets the current source line (function-relative offset).
  void setLine(uint32_t L) { Line = L; }
  uint32_t getLine() const { return Line; }
  /// Advances the line as if one source statement was written.
  void nextLine() { ++Line; }

  /// \name Instruction creation. Each emits at the insertion point with the
  /// current line and advances the line by one.
  /// @{
  RegId emitBinary(Opcode Op, Operand A, Operand B);
  RegId emitConst(int64_t V) { return emitBinary(Opcode::Mov, Operand::imm(V), Operand()); }
  RegId emitMov(Operand A) { return emitBinary(Opcode::Mov, A, Operand()); }
  RegId emitSelect(Operand Cond, Operand T, Operand Fa);
  RegId emitLoad(Operand Addr);
  void emitStore(Operand Addr, Operand Val);
  RegId emitCall(const std::string &Callee, std::vector<Operand> Args,
                 bool IsTail = false);
  /// Indirect call through the module function table: slot in \p Slot.
  RegId emitCallIndirect(Operand Slot, std::vector<Operand> Args);
  void emitRet(Operand Val);
  void emitBr(BasicBlock *Target);
  void emitCondBr(Operand Cond, BasicBlock *TrueBB, BasicBlock *FalseBB);
  /// @}

private:
  Instruction &emit(Opcode Op);

  Function *F;
  BasicBlock *BB = nullptr;
  uint32_t Line = 1;
};

} // namespace csspgo

#endif // CSSPGO_IR_BUILDER_H

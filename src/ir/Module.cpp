//===- ir/Module.cpp - Module ---------------------------------------------===//

#include "ir/Module.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace csspgo {

Function *Module::createFunction(const std::string &FName,
                                 unsigned NumParams) {
  assert(!FunctionMap.count(FName) && "duplicate function name");
  Functions.push_back(std::make_unique<Function>(this, FName, NumParams));
  Function *F = Functions.back().get();
  FunctionMap[FName] = F;
  GuidMap[F->getGuid()] = F;
  GuidNames[F->getGuid()] = FName;
  return F;
}

Function *Module::getFunction(const std::string &FName) const {
  auto It = FunctionMap.find(FName);
  return It == FunctionMap.end() ? nullptr : It->second;
}

Function *Module::getFunctionByGuid(uint64_t Guid) const {
  auto It = GuidMap.find(Guid);
  return It == GuidMap.end() ? nullptr : It->second;
}

void Module::eraseFunction(Function *F) {
  FunctionMap.erase(F->getName());
  GuidMap.erase(F->getGuid());
  auto It = std::find_if(
      Functions.begin(), Functions.end(),
      [F](const std::unique_ptr<Function> &P) { return P.get() == F; });
  assert(It != Functions.end() && "function not in module");
  Functions.erase(It);
}

std::unique_ptr<Module> Module::clone() const {
  auto New = std::make_unique<Module>(Name);
  New->EntryFunction = EntryFunction;
  New->MemWords = MemWords;
  New->GuidNames = GuidNames;
  New->FunctionTable = FunctionTable;

  for (const auto &F : Functions) {
    Function *NF = New->createFunction(F->getName(), F->getNumParams());
    NF->ensureRegs(F->getNumRegs());
    NF->NoInline = F->NoInline;
    NF->AlwaysInline = F->AlwaysInline;
    NF->IsEntryPoint = F->IsEntryPoint;
    NF->NextProbeId = F->NextProbeId;
    NF->ProbeCFGChecksum = F->ProbeCFGChecksum;
    NF->HasProbes = F->HasProbes;
    NF->NumCounters = F->NumCounters;
    NF->HasEntryCount = F->HasEntryCount;
    NF->EntryCount = F->EntryCount;

    std::unordered_map<const BasicBlock *, BasicBlock *> BlockMap;
    for (const auto &BB : F->Blocks) {
      BasicBlock *NB = NF->createBlock("bb");
      NB->setLabel(BB->getLabel());
      NB->Insts = BB->Insts;
      NB->HasCount = BB->HasCount;
      NB->Count = BB->Count;
      NB->SuccWeights = BB->SuccWeights;
      NB->IsColdSection = BB->IsColdSection;
      BlockMap[BB.get()] = NB;
    }
    for (auto &NB : NF->Blocks) {
      for (Instruction &I : NB->Insts) {
        if (I.Succ0)
          I.Succ0 = BlockMap.at(I.Succ0);
        if (I.Succ1)
          I.Succ1 = BlockMap.at(I.Succ1);
      }
    }
  }
  return New;
}

} // namespace csspgo

//===- ir/Checksum.cpp - CFG checksum -------------------------------------===//

#include "ir/Checksum.h"

#include "support/Hashing.h"

#include <map>

namespace csspgo {

uint64_t computeCFGChecksum(const Function &F) {
  // Assign each block a stable id: its block probe id when probes are
  // present, otherwise its position in the block list.
  std::map<const BasicBlock *, uint64_t> Ids;
  uint64_t Pos = 0;
  for (const auto &BB : F.Blocks) {
    const Instruction *Probe = BB->getBlockProbe();
    Ids[BB.get()] = Probe ? Probe->ProbeId : (Pos + 1);
    ++Pos;
  }

  uint64_t Hash = hashCombine(0x5353504750ULL /*"SSPGP"*/, F.Blocks.size());
  for (const auto &BB : F.Blocks) {
    Hash = hashCombine(Hash, Ids[BB.get()]);
    Hash = hashCombine(Hash, BB->numSuccessors());
    for (const BasicBlock *S : BB->successors())
      Hash = hashCombine(Hash, Ids[S]);
  }
  return Hash;
}

} // namespace csspgo

//===- ir/Verifier.cpp - IR verifier --------------------------------------===//

#include "ir/Verifier.h"

#include <cstdio>
#include <cstdlib>
#include <set>

namespace csspgo {

std::vector<std::string> verifyFunction(const Function &F) {
  std::vector<std::string> Problems;
  auto Err = [&](const std::string &Msg) {
    Problems.push_back(F.getName() + ": " + Msg);
  };

  if (F.Blocks.empty()) {
    Err("function has no blocks");
    return Problems;
  }

  std::set<const BasicBlock *> Owned;
  for (const auto &BB : F.Blocks)
    Owned.insert(BB.get());

  const Module *M = F.getParent();
  std::set<uint32_t> SeenProbes;

  for (const auto &BB : F.Blocks) {
    if (BB->Insts.empty()) {
      Err("block " + BB->getLabel() + " is empty");
      continue;
    }
    if (!BB->Insts.back().isTerminator())
      Err("block " + BB->getLabel() + " lacks a terminator");

    for (size_t I = 0; I != BB->Insts.size(); ++I) {
      const Instruction &Inst = BB->Insts[I];
      if (Inst.isTerminator() && I + 1 != BB->Insts.size())
        Err("block " + BB->getLabel() + " has a terminator mid-block");

      auto CheckOp = [&](const Operand &O) {
        if (O.isReg() && O.getReg() >= F.getNumRegs())
          Err("register r" + std::to_string(O.getReg()) +
              " out of range in " + BB->getLabel());
      };
      CheckOp(Inst.A);
      CheckOp(Inst.B);
      CheckOp(Inst.C);
      for (const Operand &O : Inst.Args)
        CheckOp(O);
      if (Inst.Dst != InvalidReg && Inst.Dst >= F.getNumRegs())
        Err("dst register out of range in " + BB->getLabel());

      if (Inst.Op == Opcode::Br || Inst.Op == Opcode::CondBr) {
        if (!Inst.Succ0 || !Owned.count(Inst.Succ0))
          Err("dangling Succ0 in " + BB->getLabel());
        if (Inst.Op == Opcode::CondBr &&
            (!Inst.Succ1 || !Owned.count(Inst.Succ1)))
          Err("dangling Succ1 in " + BB->getLabel());
      }

      if (Inst.Op == Opcode::Call && M && !M->getFunction(Inst.Callee))
        Err("call to unknown function '" + Inst.Callee + "'");
      if (Inst.Op == Opcode::CallIndirect && M &&
          M->FunctionTable.empty())
        Err("indirect call without a module function table");

      // Probe ids are 1-based; 0 is reserved for "no probe". Note that
      // duplicate probe ids are legal: code duplication (unroll, tail dup,
      // jump threading) clones probes and profgen sums the copies (§III-A).
      if (Inst.isProbe() && Inst.ProbeId == 0)
        Err("probe with id 0 in " + BB->getLabel());
      (void)SeenProbes;
    }

    if (!BB->SuccWeights.empty() &&
        BB->SuccWeights.size() != BB->numSuccessors())
      Err("edge weight arity mismatch in " + BB->getLabel());
  }
  return Problems;
}

std::vector<std::string> verifyModule(const Module &M) {
  std::vector<std::string> Problems;
  for (const auto &F : M.Functions) {
    auto P = verifyFunction(*F);
    Problems.insert(Problems.end(), P.begin(), P.end());
  }
  if (!M.EntryFunction.empty() && !M.getFunction(M.EntryFunction))
    Problems.push_back("entry function '" + M.EntryFunction + "' not found");
  for (const std::string &Entry : M.FunctionTable)
    if (!M.getFunction(Entry))
      Problems.push_back("function table entry '" + Entry + "' not found");
  return Problems;
}

void verifyOrDie(const Module &M, const char *When) {
  auto Problems = verifyModule(M);
  if (Problems.empty())
    return;
  std::fprintf(stderr, "IR verification failed %s:\n", When);
  for (const std::string &P : Problems)
    std::fprintf(stderr, "  %s\n", P.c_str());
  std::abort();
}

} // namespace csspgo

//===- ir/Parser.h - Textual IR parser ---------------------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for the textual IR produced by ir/Printer.h, enabling module
/// round-trips for golden tests and hand-written test inputs. The grammar
/// is exactly the printer's output:
///
///   ; module NAME, entry=ENTRY
///   func NAME(P params, R regs) [; entry_count=N] [; probed checksum=C] {
///   label:  [; count=N weights=[a,b]] [; cold]
///     r3 = add r1, 2  !dbg :12[.d]
///     condbr r3, then.1, else.2  !dbg :13
///     ...
///   }
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_IR_PARSER_H
#define CSSPGO_IR_PARSER_H

#include "ir/Module.h"

#include <memory>
#include <string>

namespace csspgo {

/// Parses \p Text into a module. On failure returns nullptr and, when
/// \p Error is non-null, stores a line-numbered diagnostic there.
std::unique_ptr<Module> parseModule(const std::string &Text,
                                    std::string *Error = nullptr);

} // namespace csspgo

#endif // CSSPGO_IR_PARSER_H

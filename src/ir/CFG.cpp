//===- ir/CFG.cpp - CFG utilities -----------------------------------------===//

#include "ir/CFG.h"

#include <algorithm>

namespace csspgo {

std::map<BasicBlock *, std::vector<BasicBlock *>>
computePredecessors(Function &F) {
  std::map<BasicBlock *, std::vector<BasicBlock *>> Preds;
  for (auto &BB : F.Blocks)
    Preds[BB.get()]; // Ensure every block has an entry.
  for (auto &BB : F.Blocks)
    for (BasicBlock *S : BB->successors())
      Preds[S].push_back(BB.get());
  return Preds;
}

std::set<BasicBlock *> computeReachable(Function &F) {
  std::set<BasicBlock *> Seen;
  if (F.Blocks.empty())
    return Seen;
  std::vector<BasicBlock *> Work{F.getEntry()};
  Seen.insert(F.getEntry());
  while (!Work.empty()) {
    BasicBlock *B = Work.back();
    Work.pop_back();
    for (BasicBlock *S : B->successors())
      if (Seen.insert(S).second)
        Work.push_back(S);
  }
  return Seen;
}

static void postOrderVisit(BasicBlock *B, std::set<BasicBlock *> &Seen,
                           std::vector<BasicBlock *> &Order) {
  Seen.insert(B);
  for (BasicBlock *S : B->successors())
    if (!Seen.count(S))
      postOrderVisit(S, Seen, Order);
  Order.push_back(B);
}

std::vector<BasicBlock *> reversePostOrder(Function &F) {
  std::vector<BasicBlock *> Order;
  if (F.Blocks.empty())
    return Order;
  std::set<BasicBlock *> Seen;
  postOrderVisit(F.getEntry(), Seen, Order);
  std::reverse(Order.begin(), Order.end());
  return Order;
}

std::map<BasicBlock *, std::set<BasicBlock *>>
computeDominators(Function &F) {
  std::map<BasicBlock *, std::set<BasicBlock *>> Dom;
  std::vector<BasicBlock *> RPO = reversePostOrder(F);
  if (RPO.empty())
    return Dom;
  std::set<BasicBlock *> All(RPO.begin(), RPO.end());
  for (BasicBlock *B : RPO)
    Dom[B] = All;
  Dom[F.getEntry()] = {F.getEntry()};

  auto Preds = computePredecessors(F);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *B : RPO) {
      if (B == F.getEntry())
        continue;
      std::set<BasicBlock *> NewDom;
      bool First = true;
      for (BasicBlock *P : Preds[B]) {
        if (!Dom.count(P))
          continue; // Unreachable predecessor.
        if (First) {
          NewDom = Dom[P];
          First = false;
          continue;
        }
        std::set<BasicBlock *> Inter;
        std::set_intersection(NewDom.begin(), NewDom.end(), Dom[P].begin(),
                              Dom[P].end(),
                              std::inserter(Inter, Inter.begin()));
        NewDom = std::move(Inter);
      }
      NewDom.insert(B);
      if (NewDom != Dom[B]) {
        Dom[B] = std::move(NewDom);
        Changed = true;
      }
    }
  }
  return Dom;
}

std::vector<Loop> findLoops(Function &F) {
  std::vector<Loop> Loops;
  auto Dom = computeDominators(F);
  auto Preds = computePredecessors(F);
  std::map<BasicBlock *, size_t> HeaderLoop;

  for (auto &BBPtr : F.Blocks) {
    BasicBlock *B = BBPtr.get();
    if (!Dom.count(B))
      continue; // Unreachable.
    for (BasicBlock *S : B->successors()) {
      // Back edge B -> S iff S dominates B.
      if (!Dom[B].count(S))
        continue;
      size_t Idx;
      auto It = HeaderLoop.find(S);
      if (It == HeaderLoop.end()) {
        Idx = Loops.size();
        Loops.emplace_back();
        Loops[Idx].Header = S;
        Loops[Idx].Blocks.insert(S);
        HeaderLoop[S] = Idx;
      } else {
        Idx = It->second;
      }
      Loop &L = Loops[Idx];
      L.Latches.push_back(B);
      // Collect the loop body: reverse reachability from the latch without
      // passing through the header.
      std::vector<BasicBlock *> Work{B};
      while (!Work.empty()) {
        BasicBlock *X = Work.back();
        Work.pop_back();
        if (!L.Blocks.insert(X).second)
          continue;
        for (BasicBlock *P : Preds[X])
          if (P != L.Header)
            Work.push_back(P);
      }
    }
  }
  return Loops;
}

bool removeUnreachableBlocks(Function &F) {
  auto Reachable = computeReachable(F);
  if (Reachable.size() == F.Blocks.size())
    return false;
  std::vector<BasicBlock *> Dead;
  for (auto &BB : F.Blocks)
    if (!Reachable.count(BB.get()))
      Dead.push_back(BB.get());
  for (BasicBlock *B : Dead)
    F.eraseBlock(B);
  return !Dead.empty();
}

} // namespace csspgo

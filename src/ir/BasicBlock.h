//===- ir/BasicBlock.h - Basic block ----------------------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Basic block: an instruction sequence ending in a single terminator.
/// Blocks also carry the profile annotation (execution count and outgoing
/// edge weights) that the profile loader installs and every transformation
/// is responsible for maintaining (the "profile maintenance" component of
/// Fig. 1 in the paper).
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_IR_BASICBLOCK_H
#define CSSPGO_IR_BASICBLOCK_H

#include "ir/Instruction.h"

#include <string>
#include <vector>

namespace csspgo {

class Function;

class BasicBlock {
public:
  BasicBlock(Function *Parent, std::string Label)
      : Parent(Parent), Label(std::move(Label)) {}

  Function *getParent() const { return Parent; }
  const std::string &getLabel() const { return Label; }
  void setLabel(std::string L) { Label = std::move(L); }

  std::vector<Instruction> Insts;

  /// Returns the terminator, i.e. the last instruction. The block must be
  /// non-empty and well formed.
  Instruction &terminator() {
    assert(!Insts.empty() && Insts.back().isTerminator() &&
           "block has no terminator");
    return Insts.back();
  }
  const Instruction &terminator() const {
    return const_cast<BasicBlock *>(this)->terminator();
  }

  bool hasTerminator() const {
    return !Insts.empty() && Insts.back().isTerminator();
  }

  /// Returns the successor blocks in terminator order (taken target first
  /// for CondBr).
  std::vector<BasicBlock *> successors() const;

  /// Returns the number of successors without materializing a vector.
  unsigned numSuccessors() const;

  /// Replaces every successor edge to \p From with \p To.
  void replaceSuccessor(BasicBlock *From, BasicBlock *To);

  /// Returns the first PseudoProbe instruction of the block, or nullptr.
  /// Each block gets exactly one block probe when probes are inserted.
  const Instruction *getBlockProbe() const;

  /// \name Profile annotation
  /// @{

  /// Whether a profile count has been annotated on this block.
  bool HasCount = false;
  /// Execution count from the loaded profile (after inference).
  uint64_t Count = 0;
  /// Outgoing edge weights, parallel to successors(). Empty = unknown.
  std::vector<uint64_t> SuccWeights;

  void setCount(uint64_t C) {
    Count = C;
    HasCount = true;
  }
  void clearProfile() {
    HasCount = false;
    Count = 0;
    SuccWeights.clear();
  }

  /// Returns the weight of the edge to successor index \p SuccIdx, falling
  /// back to an even split of Count when edge weights are unknown.
  uint64_t succWeight(unsigned SuccIdx) const;
  /// @}

  /// Blocks moved to the cold section by function splitting.
  bool IsColdSection = false;

private:
  Function *Parent;
  std::string Label;
};

} // namespace csspgo

#endif // CSSPGO_IR_BASICBLOCK_H

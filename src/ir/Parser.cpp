//===- ir/Parser.cpp - Textual IR parser -----------------------------------===//

#include "ir/Parser.h"

#include "support/SourceText.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>
#include <stdexcept>

namespace csspgo {

namespace {

class Parser {
public:
  explicit Parser(const std::string &Text) : Text(Text) {}

  std::unique_ptr<Module> run(std::string *Error);

private:
  bool nextLine(std::string &Line);
  [[noreturn]] void fail(const std::string &Msg);

  /// Token helpers over a single line.
  static std::string trim(const std::string &S);
  static bool startsWith(const std::string &S, const char *Prefix) {
    return S.rfind(Prefix, 0) == 0;
  }

  Operand parseOperand(const std::string &Tok);
  void parseInstruction(const std::string &Line, BasicBlock *BB);
  void parseBlockHeader(const std::string &Line);
  void parseFunctionHeader(const std::string &Line);

  const std::string &Text;
  size_t Pos = 0;
  unsigned LineNo = 0;

  std::unique_ptr<Module> M;
  Function *F = nullptr;
  BasicBlock *BB = nullptr;
  /// Per-function label -> block, plus branch fixups resolved at '}'.
  std::map<std::string, BasicBlock *> Labels;
  /// (block, instruction index, label, which-successor): indices survive
  /// vector growth where raw Instruction pointers would not.
  std::vector<std::tuple<BasicBlock *, size_t, std::string, int>> Fixups;
  std::string ErrorMsg;
};

std::string Parser::trim(const std::string &S) {
  size_t B = 0, E = S.size();
  while (B < E && std::isspace(static_cast<unsigned char>(S[B])))
    ++B;
  while (E > B && std::isspace(static_cast<unsigned char>(S[E - 1])))
    --E;
  return S.substr(B, E - B);
}

bool Parser::nextLine(std::string &Line) {
  if (Pos >= Text.size())
    return false;
  size_t End = Text.find('\n', Pos);
  if (End == std::string::npos)
    End = Text.size();
  Line = Text.substr(Pos, End - Pos);
  Pos = End + 1;
  ++LineNo;
  return true;
}

void Parser::fail(const std::string &Msg) {
  throw std::runtime_error("line " + std::to_string(LineNo) + ": " + Msg);
}

Operand Parser::parseOperand(const std::string &TokIn) {
  std::string Tok = trim(TokIn);
  if (Tok.empty() || Tok == "<none>")
    return Operand();
  if (Tok[0] == 'r' && Tok.size() > 1 &&
      std::isdigit(static_cast<unsigned char>(Tok[1])))
    return Operand::reg(
        static_cast<RegId>(std::strtoul(Tok.c_str() + 1, nullptr, 10)));
  return Operand::imm(std::strtoll(Tok.c_str(), nullptr, 10));
}

void Parser::parseFunctionHeader(const std::string &Line) {
  // func NAME(P params, R regs) [; entry_count=N] [; probed checksum=C] {
  size_t Open = Line.find('(');
  size_t Close = Line.find(')');
  if (Open == std::string::npos || Close == std::string::npos)
    fail("malformed function header");
  std::string Name = trim(Line.substr(5, Open - 5));
  unsigned Params = 0, Regs = 0;
  if (std::sscanf(Line.c_str() + Open, "(%u params, %u regs)", &Params,
                  &Regs) != 2)
    fail("malformed function signature");
  F = M->createFunction(Name, Params);
  F->ensureRegs(Regs);
  Labels.clear();
  Fixups.clear();
  BB = nullptr;

  size_t EC = Line.find("entry_count=");
  if (EC != std::string::npos) {
    F->HasEntryCount = true;
    F->EntryCount = std::strtoull(Line.c_str() + EC + 12, nullptr, 10);
  }
  size_t CS = Line.find("probed checksum=");
  if (CS != std::string::npos) {
    F->HasProbes = true;
    F->ProbeCFGChecksum =
        std::strtoull(Line.c_str() + CS + 16, nullptr, 10);
  }
}

void Parser::parseBlockHeader(const std::string &Line) {
  size_t Colon = Line.find(':');
  std::string Label = trim(Line.substr(0, Colon));
  BB = F->createBlock("parsed");
  BB->setLabel(Label);
  Labels[Label] = BB;

  size_t Count = Line.find("count=");
  if (Count != std::string::npos)
    BB->setCount(std::strtoull(Line.c_str() + Count + 6, nullptr, 10));
  size_t Weights = Line.find("weights=[");
  if (Weights != std::string::npos) {
    const char *P = Line.c_str() + Weights + 9;
    while (*P && *P != ']') {
      BB->SuccWeights.push_back(std::strtoull(P, const_cast<char **>(&P),
                                              10));
      if (*P == ',')
        ++P;
    }
  }
  if (Line.find("; cold") != std::string::npos)
    BB->IsColdSection = true;
}

void Parser::parseInstruction(const std::string &LineIn, BasicBlock *Block) {
  std::string Line = trim(LineIn);
  Instruction I;
  I.OriginGuid = F->getGuid();

  // Peel the !dbg suffix.
  size_t Dbg = Line.find("  !dbg :");
  if (Dbg != std::string::npos) {
    const char *P = Line.c_str() + Dbg + 8;
    I.DL.Line = static_cast<uint32_t>(
        std::strtoul(P, const_cast<char **>(&P), 10));
    if (*P == '.')
      I.DL.Discriminator = static_cast<uint32_t>(
          std::strtoul(P + 1, nullptr, 10));
    Line = trim(Line.substr(0, Dbg));
  }
  // Peel a !callprobe suffix.
  size_t CP = Line.find(" !callprobe ");
  if (CP != std::string::npos) {
    I.ProbeId = static_cast<uint32_t>(
        std::strtoul(Line.c_str() + CP + 12, nullptr, 10));
    Line = trim(Line.substr(0, CP));
  }

  auto SplitArgs = [this](const std::string &S) {
    std::vector<Operand> Args;
    for (const std::string &Part : splitString(S, ','))
      if (!trim(Part).empty())
        Args.push_back(parseOperand(Part));
    return Args;
  };

  if (startsWith(Line, "store [")) {
    size_t RB = Line.find(']');
    I.Op = Opcode::Store;
    I.A = parseOperand(Line.substr(7, RB - 7));
    I.B = parseOperand(Line.substr(Line.find('=', RB) + 1));
  } else if (startsWith(Line, "ret ")) {
    I.Op = Opcode::Ret;
    I.A = parseOperand(Line.substr(4));
  } else if (startsWith(Line, "br ")) {
    I.Op = Opcode::Br;
    Block->Insts.push_back(I);
    Fixups.emplace_back(Block, Block->Insts.size() - 1, trim(Line.substr(3)),
                        0);
    return;
  } else if (startsWith(Line, "condbr ")) {
    I.Op = Opcode::CondBr;
    auto Parts = splitString(Line.substr(7), ',');
    if (Parts.size() != 3)
      fail("condbr needs 3 operands");
    I.A = parseOperand(Parts[0]);
    Block->Insts.push_back(I);
    Fixups.emplace_back(Block, Block->Insts.size() - 1, trim(Parts[1]), 0);
    Fixups.emplace_back(Block, Block->Insts.size() - 1, trim(Parts[2]), 1);
    return;
  } else if (startsWith(Line, "pseudoprobe ")) {
    I.Op = Opcode::PseudoProbe;
    size_t G = Line.find("guid=");
    size_t Id = Line.find(" id="); // Leading space: "id=" occurs in "guid=".
    if (G == std::string::npos || Id == std::string::npos)
      fail("malformed pseudoprobe");
    I.OriginGuid = std::strtoull(Line.c_str() + G + 5, nullptr, 10);
    I.ProbeId = static_cast<uint32_t>(
        std::strtoul(Line.c_str() + Id + 4, nullptr, 10));
  } else if (startsWith(Line, "instrprof.incr ")) {
    I.Op = Opcode::InstrProfIncr;
    size_t C = Line.find("counter=");
    I.ProbeId = static_cast<uint32_t>(
        std::strtoul(Line.c_str() + C + 8, nullptr, 10));
  } else {
    // rN = <op> ...
    size_t Eq = Line.find('=');
    if (Eq == std::string::npos || Line[0] != 'r')
      fail("unrecognized instruction: " + Line);
    I.Dst = static_cast<RegId>(std::strtoul(Line.c_str() + 1, nullptr, 10));
    std::string RHS = trim(Line.substr(Eq + 1));

    if (startsWith(RHS, "call ") || startsWith(RHS, "tailcall ")) {
      I.Op = Opcode::Call;
      I.IsTailCall = startsWith(RHS, "tailcall ");
      size_t NameBegin = I.IsTailCall ? 9 : 5;
      size_t Open = RHS.find('(');
      size_t Close = RHS.rfind(')');
      I.Callee = trim(RHS.substr(NameBegin, Open - NameBegin));
      I.Args = SplitArgs(RHS.substr(Open + 1, Close - Open - 1));
    } else if (startsWith(RHS, "callindirect [")) {
      I.Op = Opcode::CallIndirect;
      size_t RB = RHS.find(']');
      I.A = parseOperand(RHS.substr(14, RB - 14));
      size_t Open = RHS.find('(', RB);
      size_t Close = RHS.rfind(')');
      I.Args = SplitArgs(RHS.substr(Open + 1, Close - Open - 1));
    } else if (startsWith(RHS, "select ")) {
      I.Op = Opcode::Select;
      auto Parts = splitString(RHS.substr(7), ',');
      if (Parts.size() != 3)
        fail("select needs 3 operands");
      I.A = parseOperand(Parts[0]);
      I.B = parseOperand(Parts[1]);
      I.C = parseOperand(Parts[2]);
    } else if (startsWith(RHS, "load [")) {
      I.Op = Opcode::Load;
      size_t RB = RHS.find(']');
      I.A = parseOperand(RHS.substr(6, RB - 6));
    } else if (startsWith(RHS, "mov ")) {
      I.Op = Opcode::Mov;
      I.A = parseOperand(RHS.substr(4));
    } else {
      // Binary: "<mnemonic> a, b"
      size_t Space = RHS.find(' ');
      if (Space == std::string::npos)
        fail("unrecognized instruction: " + Line);
      std::string Mn = RHS.substr(0, Space);
      static const std::map<std::string, Opcode> Binary = {
          {"add", Opcode::Add},     {"sub", Opcode::Sub},
          {"mul", Opcode::Mul},     {"div", Opcode::Div},
          {"mod", Opcode::Mod},     {"and", Opcode::And},
          {"or", Opcode::Or},       {"xor", Opcode::Xor},
          {"shl", Opcode::Shl},     {"shr", Opcode::Shr},
          {"cmpeq", Opcode::CmpEQ}, {"cmpne", Opcode::CmpNE},
          {"cmplt", Opcode::CmpLT}, {"cmple", Opcode::CmpLE},
          {"cmpgt", Opcode::CmpGT}, {"cmpge", Opcode::CmpGE}};
      auto It = Binary.find(Mn);
      if (It == Binary.end())
        fail("unknown mnemonic '" + Mn + "'");
      I.Op = It->second;
      auto Parts = splitString(RHS.substr(Space + 1), ',');
      if (Parts.size() != 2)
        fail("binary op needs 2 operands");
      I.A = parseOperand(Parts[0]);
      I.B = parseOperand(Parts[1]);
    }
  }
  Block->Insts.push_back(std::move(I));
}

std::unique_ptr<Module> Parser::run(std::string *Error) {
  try {
    std::string Line;
    std::string EntryName;
    M = std::make_unique<Module>("parsed");
    while (nextLine(Line)) {
      std::string T = trim(Line);
      if (T.empty())
        continue;
      if (startsWith(T, "; module")) {
        size_t Comma = T.find(',');
        if (Comma != std::string::npos)
          M->setName(trim(T.substr(9, Comma - 9)));
        size_t E = T.find("entry=");
        if (E != std::string::npos)
          EntryName = trim(T.substr(E + 6));
        continue;
      }
      if (startsWith(T, "func ")) {
        parseFunctionHeader(T);
        continue;
      }
      if (T == "}") {
        if (!F)
          fail("'}' outside a function");
        for (auto &[Blk, Idx, Label, Which] : Fixups) {
          auto It = Labels.find(Label);
          if (It == Labels.end())
            fail("unknown block label '" + Label + "'");
          Instruction &Inst = Blk->Insts[Idx];
          (Which == 0 ? Inst.Succ0 : Inst.Succ1) = It->second;
        }
        F = nullptr;
        BB = nullptr;
        continue;
      }
      if (!F)
        fail("instruction outside a function");
      // Block headers are unindented "label:" lines; the printer indents
      // every instruction by two spaces.
      if (Line[0] != ' ') {
        if (T.find(':') == std::string::npos)
          fail("expected a block label, got: " + T);
        parseBlockHeader(T);
        continue;
      }
      if (!BB)
        fail("instruction before any block label");
      parseInstruction(T, BB);
    }
    M->EntryFunction = EntryName;
    return std::move(M);
  } catch (const std::exception &E) {
    if (Error)
      *Error = E.what();
    return nullptr;
  }
}

} // namespace

std::unique_ptr<Module> parseModule(const std::string &Text,
                                    std::string *Error) {
  return Parser(Text).run(Error);
}

} // namespace csspgo

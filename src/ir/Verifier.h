//===- ir/Verifier.h - IR verifier ------------------------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural verifier run between passes in checked builds. Catches the
/// usual transform bugs: missing terminators, mid-block terminators,
/// dangling successor pointers, register ids out of frame range, calls to
/// unknown functions, and malformed probes.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_IR_VERIFIER_H
#define CSSPGO_IR_VERIFIER_H

#include "ir/Module.h"

#include <string>
#include <vector>

namespace csspgo {

/// Verifies \p M; returns all problems found (empty = valid).
std::vector<std::string> verifyModule(const Module &M);

/// Verifies a single function.
std::vector<std::string> verifyFunction(const Function &F);

/// Asserts that \p M verifies; prints problems and aborts otherwise.
void verifyOrDie(const Module &M, const char *When);

} // namespace csspgo

#endif // CSSPGO_IR_VERIFIER_H

//===- ir/Function.h - Function ---------------------------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Function: an owned list of basic blocks (Blocks[0] is the entry; vector
/// order is also the layout order the block-placement pass edits), a
/// virtual-register frame, and PGO-related attributes (GUID, CFG checksum,
/// probe state, entry count).
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_IR_FUNCTION_H
#define CSSPGO_IR_FUNCTION_H

#include "ir/BasicBlock.h"

#include <memory>
#include <string>
#include <vector>

namespace csspgo {

class Module;

class Function {
public:
  Function(Module *Parent, std::string Name, unsigned NumParams);

  Module *getParent() const { return Parent; }
  const std::string &getName() const { return Name; }
  uint64_t getGuid() const { return Guid; }
  unsigned getNumParams() const { return NumParams; }

  /// Number of virtual registers in the frame. Registers [0, NumParams) are
  /// the parameters. Grows as construction/inlining allocates registers.
  unsigned getNumRegs() const { return NumRegs; }

  /// Allocates a fresh virtual register.
  RegId allocReg() { return NumRegs++; }

  /// Ensures the frame has at least \p N registers (used by inlining when
  /// splicing a callee frame into the caller).
  void ensureRegs(unsigned N) {
    if (N > NumRegs)
      NumRegs = N;
  }

  /// Creates a new block appended to the layout order.
  BasicBlock *createBlock(const std::string &LabelHint);

  /// Removes \p BB from the function. The block must have no predecessors.
  void eraseBlock(BasicBlock *BB);

  BasicBlock *getEntry() const {
    assert(!Blocks.empty() && "function has no blocks");
    return Blocks.front().get();
  }

  /// Blocks in layout order. Entry is Blocks[0] and must stay first.
  std::vector<std::unique_ptr<BasicBlock>> Blocks;

  size_t size() const { return Blocks.size(); }

  /// Total number of instructions (including intrinsics).
  size_t instructionCount() const;

  /// Number of instructions that lower to machine code (excludes pseudo
  /// probes). This is the size the inline-cost heuristics should use.
  size_t codeInstructionCount() const;

  /// \name Attributes
  /// @{
  bool NoInline = false;
  bool AlwaysInline = false;
  /// Entry point of the module (never inlined away, never dead).
  bool IsEntryPoint = false;
  /// @}

  /// \name Probe / profile state
  /// @{
  /// Next probe id to hand out; probe ids are unique within the function.
  uint32_t NextProbeId = 1;
  /// CFG checksum computed at probe-insertion time and persisted in the
  /// profile; used to detect stale profiles (§III-A "source drift").
  uint64_t ProbeCFGChecksum = 0;
  bool HasProbes = false;
  /// Number of instrumentation counters (Instr PGO).
  uint32_t NumCounters = 0;

  /// Profile-annotated entry count (set by the loader).
  bool HasEntryCount = false;
  uint64_t EntryCount = 0;
  /// @}

  /// Re-labels blocks to "<name>.bbN" making labels unique and stable.
  void renumberBlocks();

  /// Returns the position of \p BB in layout order, or ~0u.
  unsigned blockIndex(const BasicBlock *BB) const;

private:
  Module *Parent;
  std::string Name;
  uint64_t Guid;
  unsigned NumParams;
  unsigned NumRegs;
  unsigned NextBlockId = 0;
};

} // namespace csspgo

#endif // CSSPGO_IR_FUNCTION_H

//===- ir/CFG.h - CFG utilities ---------------------------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CFG analyses shared by the optimizer: predecessor maps, reachability,
/// reverse post order, and natural-loop detection (back edges to a block
/// that dominates the source; we use a lightweight dominance check).
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_IR_CFG_H
#define CSSPGO_IR_CFG_H

#include "ir/Function.h"

#include <map>
#include <set>
#include <vector>

namespace csspgo {

/// Returns a map from block to its predecessors (in layout order).
std::map<BasicBlock *, std::vector<BasicBlock *>>
computePredecessors(Function &F);

/// Returns the set of blocks reachable from the entry.
std::set<BasicBlock *> computeReachable(Function &F);

/// Returns blocks in reverse post order from the entry (unreachable blocks
/// excluded).
std::vector<BasicBlock *> reversePostOrder(Function &F);

/// Dominator sets (simple iterative dataflow; functions are small).
/// Dom[B] contains every block that dominates B, including B itself.
std::map<BasicBlock *, std::set<BasicBlock *>> computeDominators(Function &F);

/// A natural loop: header plus body blocks (header included).
struct Loop {
  BasicBlock *Header = nullptr;
  std::set<BasicBlock *> Blocks;
  /// Latch blocks: sources of back edges into the header.
  std::vector<BasicBlock *> Latches;
};

/// Finds natural loops (merging loops that share a header).
std::vector<Loop> findLoops(Function &F);

/// Removes blocks unreachable from the entry. Returns true if changed.
bool removeUnreachableBlocks(Function &F);

} // namespace csspgo

#endif // CSSPGO_IR_CFG_H

//===- ir/Instruction.cpp - Mid-level IR instruction ----------------------===//

#include "ir/Instruction.h"

namespace csspgo {

const char *opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Mod:
    return "mod";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::CmpEQ:
    return "cmpeq";
  case Opcode::CmpNE:
    return "cmpne";
  case Opcode::CmpLT:
    return "cmplt";
  case Opcode::CmpLE:
    return "cmple";
  case Opcode::CmpGT:
    return "cmpgt";
  case Opcode::CmpGE:
    return "cmpge";
  case Opcode::Mov:
    return "mov";
  case Opcode::Select:
    return "select";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::Call:
    return "call";
  case Opcode::CallIndirect:
    return "callindirect";
  case Opcode::Ret:
    return "ret";
  case Opcode::Br:
    return "br";
  case Opcode::CondBr:
    return "condbr";
  case Opcode::PseudoProbe:
    return "pseudoprobe";
  case Opcode::InstrProfIncr:
    return "instrprof.incr";
  }
  return "<invalid>";
}

bool isTerminator(Opcode Op) {
  return Op == Opcode::Br || Op == Opcode::CondBr || Op == Opcode::Ret;
}

bool isPureOp(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Mod:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::CmpEQ:
  case Opcode::CmpNE:
  case Opcode::CmpLT:
  case Opcode::CmpLE:
  case Opcode::CmpGT:
  case Opcode::CmpGE:
  case Opcode::Mov:
  case Opcode::Select:
    return true;
  default:
    return false;
  }
}

void Instruction::getUsedRegs(std::vector<RegId> &Regs) const {
  auto AddOp = [&Regs](const Operand &O) {
    if (O.isReg())
      Regs.push_back(O.getReg());
  };
  AddOp(A);
  AddOp(B);
  AddOp(C);
  for (const Operand &O : Args)
    AddOp(O);
}

bool Instruction::isIdenticalTo(const Instruction &O) const {
  if (Op != O.Op || Dst != O.Dst)
    return false;
  if (!(A == O.A) || !(B == O.B) || !(C == O.C))
    return false;
  if (Args != O.Args || Callee != O.Callee || IsTailCall != O.IsTailCall)
    return false;
  if (Succ0 != O.Succ0 || Succ1 != O.Succ1)
    return false;
  // Correlation anchors carry identity: two probes or counters are only
  // "identical" if they refer to the same source entity. This is the
  // mechanism by which pseudo-instrumentation blocks code merge (§III-A).
  if (isIntrinsic())
    return ProbeId == O.ProbeId && OriginGuid == O.OriginGuid &&
           InlineStack == O.InlineStack;
  // Calls with call-site probes likewise carry identity.
  if (isCall() && (ProbeId != 0 || O.ProbeId != 0))
    return ProbeId == O.ProbeId && OriginGuid == O.OriginGuid &&
           InlineStack == O.InlineStack;
  return true;
}

} // namespace csspgo

//===- ir/Instruction.h - Mid-level IR instruction -------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Three-address-code instruction for the mid-level IR. The IR is
/// deliberately register-machine shaped (mutable virtual registers, no SSA)
/// so the interpreter, the optimizer and the lowering stay small while still
/// exhibiting every phenomenon the paper studies: code merge, code
/// duplication, code motion, inlining, and the intrinsic-based
/// pseudo-instrumentation that anchors profile correlation.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_IR_INSTRUCTION_H
#define CSSPGO_IR_INSTRUCTION_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace csspgo {

class BasicBlock;

/// Virtual register index within a function frame. Parameters occupy
/// registers [0, NumParams).
using RegId = uint32_t;
constexpr RegId InvalidReg = ~0u;

/// Opcodes of the mid-level IR. Lowering maps each (except PseudoProbe,
/// which materializes as metadata only) to one machine instruction.
enum class Opcode : uint8_t {
  // Binary arithmetic: Dst = A op B.
  Add,
  Sub,
  Mul,
  Div, // Division by zero yields 0 (total semantics keep the simulator safe).
  Mod,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  // Comparisons: Dst = (A cmp B) ? 1 : 0.
  CmpEQ,
  CmpNE,
  CmpLT,
  CmpLE,
  CmpGT,
  CmpGE,
  // Data movement.
  Mov,    // Dst = A
  Select, // Dst = A ? B : C
  Load,   // Dst = Mem[A]
  Store,  // Mem[A] = B
  // Control flow.
  Call, // Dst = Callee(Args...); may be a tail call.
  CallIndirect, // Dst = FunctionTable[A](Args...) — indirect dispatch.
  Ret,  // return A
  Br,   // goto Succ0
  CondBr, // if (A) goto Succ0 else goto Succ1
  // Intrinsics.
  PseudoProbe,   // Correlation anchor; emits no machine instruction.
  InstrProfIncr, // Traditional instrumentation counter increment.
};

/// Returns a stable mnemonic for \p Op ("add", "condbr", ...).
const char *opcodeName(Opcode Op);

/// True for Br/CondBr/Ret: instructions that must terminate a block.
bool isTerminator(Opcode Op);

/// True for opcodes with no side effects besides writing Dst.
bool isPureOp(Opcode Op);

/// An instruction operand: either a virtual register or an immediate.
struct Operand {
  enum class Kind : uint8_t { None, Reg, Imm };

  Kind K = Kind::None;
  int64_t Val = 0;

  Operand() = default;

  static Operand reg(RegId R) {
    Operand O;
    O.K = Kind::Reg;
    O.Val = R;
    return O;
  }
  static Operand imm(int64_t V) {
    Operand O;
    O.K = Kind::Imm;
    O.Val = V;
    return O;
  }

  bool isReg() const { return K == Kind::Reg; }
  bool isImm() const { return K == Kind::Imm; }
  bool isNone() const { return K == Kind::None; }

  RegId getReg() const {
    assert(isReg() && "not a register operand");
    return static_cast<RegId>(Val);
  }
  int64_t getImm() const {
    assert(isImm() && "not an immediate operand");
    return Val;
  }

  bool operator==(const Operand &O) const { return K == O.K && Val == O.Val; }
};

/// Source location: a line offset from the start of the enclosing function
/// (AutoFDO-style function-relative lines, resilient to code above the
/// function moving) plus a DWARF-like discriminator.
struct DebugLoc {
  uint32_t Line = 0;
  uint32_t Discriminator = 0;

  bool operator==(const DebugLoc &O) const {
    return Line == O.Line && Discriminator == O.Discriminator;
  }
  bool operator<(const DebugLoc &O) const {
    return Line != O.Line ? Line < O.Line : Discriminator < O.Discriminator;
  }
};

/// One level of inlining context attached to an instruction: the function
/// the instruction was inlined *into* at this level, and the call site
/// within it. Mirrors DWARF inlined-subroutine info plus the pseudo-probe
/// inline stack.
struct InlineFrame {
  uint64_t FuncGuid = 0;     ///< Caller function at this level.
  DebugLoc CallLoc;          ///< Call site location in that caller.
  uint32_t CallProbeId = 0;  ///< Call-site probe id in that caller (0=none).

  bool operator==(const InlineFrame &O) const {
    return FuncGuid == O.FuncGuid && CallLoc == O.CallLoc &&
           CallProbeId == O.CallProbeId;
  }
  bool operator<(const InlineFrame &O) const {
    if (FuncGuid != O.FuncGuid)
      return FuncGuid < O.FuncGuid;
    if (!(CallLoc == O.CallLoc))
      return CallLoc < O.CallLoc;
    return CallProbeId < O.CallProbeId;
  }
};

/// A single IR instruction. Instructions are value types stored inline in
/// their block; passes mutate them in place or splice vectors.
class Instruction {
public:
  Opcode Op = Opcode::Mov;
  RegId Dst = InvalidReg;
  Operand A, B, C;

  /// Extra arguments for Call (beyond none; calls pass all args here).
  std::vector<Operand> Args;

  /// Callee symbol for Call.
  std::string Callee;

  /// Marks a call in tail position; lowering turns it into a frame-replacing
  /// jump, which destroys the caller frame for stack sampling (§III-B).
  bool IsTailCall = false;

  /// Branch targets for Br (Succ0) and CondBr (Succ0 taken / Succ1 false).
  BasicBlock *Succ0 = nullptr;
  BasicBlock *Succ1 = nullptr;

  /// PseudoProbe: id of the probe within its origin function.
  /// Call: id of the call-site probe (0 when probes are not inserted).
  /// InstrProfIncr: counter index within the origin function.
  uint32_t ProbeId = 0;

  /// Duplication factor for probes: when an optimization clones a probe N
  /// ways and the copies are statically known to execute together (e.g.
  /// full loop unrolling by factor N), profgen must divide the aggregate
  /// count. We model the common case (independent copies, counts summed),
  /// so this stays 1; kept for format fidelity.
  uint32_t ProbeFactor = 1;

  /// The function whose line numbering / probe numbering DebugLoc and
  /// ProbeId refer to (changes when the instruction is inlined elsewhere).
  uint64_t OriginGuid = 0;

  /// Inline context, outermost caller first. Empty for un-inlined code.
  std::vector<InlineFrame> InlineStack;

  DebugLoc DL;

  Instruction() = default;

  bool isTerminator() const { return csspgo::isTerminator(Op); }
  /// Any call (direct or indirect).
  bool isCall() const {
    return Op == Opcode::Call || Op == Opcode::CallIndirect;
  }
  bool isIndirectCall() const { return Op == Opcode::CallIndirect; }
  bool isProbe() const { return Op == Opcode::PseudoProbe; }
  bool isCounter() const { return Op == Opcode::InstrProfIncr; }
  bool isIntrinsic() const { return isProbe() || isCounter(); }

  /// Returns true if this instruction writes register \p R.
  bool writesReg(RegId R) const { return Dst == R && Dst != InvalidReg; }

  /// Collects all register ids read by this instruction into \p Regs.
  void getUsedRegs(std::vector<RegId> &Regs) const;

  /// True if two instructions perform the same operation on the same
  /// operands (ignoring debug location and inline stack). Used by tail
  /// merging to detect identical code sequences. Probes/counters compare by
  /// identity (origin + id), which is what makes them merge barriers.
  bool isIdenticalTo(const Instruction &O) const;
};

} // namespace csspgo

#endif // CSSPGO_IR_INSTRUCTION_H

//===- quality/BlockOverlap.cpp - Profile quality metric --------------------===//

#include "quality/BlockOverlap.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace csspgo {

double blockOverlapDegree(const std::vector<uint64_t> &F,
                          const std::vector<uint64_t> &GT) {
  if (F.size() != GT.size()) {
    // A length mismatch means the caller is comparing counts over two
    // different block sets; any number returned from here would be
    // meaningless, so fail loudly in every build mode.
    std::fprintf(stderr,
                 "csspgo: blockOverlapDegree over mismatched block sets "
                 "(%zu vs %zu counts); overlap is only defined for count "
                 "vectors over the same block set\n",
                 F.size(), GT.size());
    std::abort();
  }
  long double SumF = 0, SumGT = 0;
  for (size_t I = 0; I != F.size(); ++I) {
    SumF += F[I];
    SumGT += GT[I];
  }
  if (SumF == 0 && SumGT == 0)
    return 1.0;
  if (SumF == 0 || SumGT == 0)
    return 0.0;
  long double D = 0;
  for (size_t I = 0; I != F.size(); ++I)
    D += std::min(static_cast<long double>(F[I]) / SumF,
                  static_cast<long double>(GT[I]) / SumGT);
  return static_cast<double>(D);
}

OverlapReport computeBlockOverlap(const Module &Measured,
                                  const Module &GroundTruth,
                                  OverlapWeight Weight) {
  OverlapReport Report;
  long double WeightedSum = 0;
  long double TotalWeight = 0;

  for (const auto &MF : Measured.Functions) {
    const Function *GF = GroundTruth.getFunction(MF->getName());
    if (!GF || GF->Blocks.size() != MF->Blocks.size())
      continue;
    std::vector<uint64_t> F, GT;
    uint64_t FSum = 0, GTSum = 0;
    bool AnyAnnotated = false;
    for (size_t I = 0; I != MF->Blocks.size(); ++I) {
      F.push_back(MF->Blocks[I]->Count);
      GT.push_back(GF->Blocks[I]->Count);
      FSum += MF->Blocks[I]->Count;
      GTSum += GF->Blocks[I]->Count;
      AnyAnnotated |= MF->Blocks[I]->HasCount || GF->Blocks[I]->HasCount;
    }
    if (!AnyAnnotated)
      continue;
    double D = blockOverlapDegree(F, GT);
    Report.PerFunction.emplace_back(MF->getName(), D);
    ++Report.FunctionsCompared;
    // Weight by the function's share of samples (paper's D(P) weights by
    // the measured share).
    uint64_t W = Weight == OverlapWeight::Measured ? FSum : GTSum;
    WeightedSum += D * static_cast<long double>(W);
    TotalWeight += static_cast<long double>(W);
  }
  Report.ProgramOverlap =
      TotalWeight > 0 ? static_cast<double>(WeightedSum / TotalWeight) : 1.0;
  return Report;
}

} // namespace csspgo

//===- quality/BlockOverlap.h - Profile quality metric -----------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The block-overlap profile-quality metric of §IV-C. For one function
/// with block set V, measured counts f(v) and ground-truth counts gt(v):
///
///   D(V) = sum_v min( f(v) / sum f,  gt(v) / sum gt )
///
/// and for a program, the weighted aggregation over functions, weighted by
/// each function's share of the measured samples. Ground truth is the
/// instrumentation-PGO profile (exact counts).
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_QUALITY_BLOCKOVERLAP_H
#define CSSPGO_QUALITY_BLOCKOVERLAP_H

#include "ir/Module.h"

#include <string>
#include <vector>

namespace csspgo {

/// Per-function overlap degree between two count vectors over the same
/// block set. Edge cases are part of the contract: both all-zero → 1.0
/// (two unexecuted functions agree perfectly); exactly one side all-zero
/// → 0.0 (one profile claims the function ran, the other that it never
/// did — no mass overlaps); mismatched vector lengths are a fatal usage
/// error in every build mode, since an overlap over two different block
/// sets is meaningless.
double blockOverlapDegree(const std::vector<uint64_t> &F,
                          const std::vector<uint64_t> &GT);

struct OverlapReport {
  double ProgramOverlap = 0;
  size_t FunctionsCompared = 0;
  std::vector<std::pair<std::string, double>> PerFunction;
};

/// Function-weighting of the program aggregation.
enum class OverlapWeight : uint8_t {
  /// Each function weighted by its share of the *measured* samples (the
  /// paper's D(P)). A profile that silently drops a function also removes
  /// it from the aggregate — right for comparing collection modes, which
  /// cover the same functions.
  Measured,
  /// Weighted by the *ground-truth* share instead: a function the
  /// measured profile lost scores 0 at full weight. Right for staleness
  /// studies, where dropping hot functions is precisely the failure mode
  /// under measurement.
  GroundTruth,
};

/// Computes the program overlap between two *identically shaped* modules
/// whose blocks carry annotated counts (same functions, same block
/// counts/order — both annotated from the same pristine IR). \p Measured
/// is the sampling-based annotation, \p GroundTruth the instrumentation
/// annotation.
OverlapReport computeBlockOverlap(
    const Module &Measured, const Module &GroundTruth,
    OverlapWeight Weight = OverlapWeight::Measured);

} // namespace csspgo

#endif // CSSPGO_QUALITY_BLOCKOVERLAP_H

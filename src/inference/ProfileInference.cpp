//===- inference/ProfileInference.cpp - Profile inference -------------------===//

#include "inference/ProfileInference.h"

#include "inference/MinCostFlow.h"
#include "ir/CFG.h"

#include <algorithm>
#include <map>

namespace csspgo {

namespace {
constexpr int64_t InfCap = int64_t(1) << 40;
} // namespace

/// Cheap fallback for very large functions where MCF would be slow:
/// propagate counts along the CFG in reverse post order and derive edge
/// weights proportionally from successor counts.
static void localSmooth(Function &F) {
  auto RPO = reversePostOrder(F);
  auto Preds = computePredecessors(F);
  for (BasicBlock *B : RPO) {
    uint64_t In = 0;
    for (BasicBlock *P : Preds[B]) {
      auto Succs = P->successors();
      for (unsigned S = 0; S != Succs.size(); ++S)
        if (Succs[S] == B)
          In += P->succWeight(S);
    }
    if (B != F.getEntry())
      B->setCount(std::max(B->HasCount ? B->Count : 0, In));
    else if (!B->HasCount)
      B->setCount(In);
    // Distribute the block count over successors proportionally to the
    // successors' raw counts.
    auto Succs = B->successors();
    if (Succs.empty())
      continue;
    uint64_t Total = 0;
    for (BasicBlock *S : Succs)
      Total += S->HasCount ? S->Count : 0;
    B->SuccWeights.clear();
    for (BasicBlock *S : Succs) {
      uint64_t W = Total ? static_cast<uint64_t>(
                               static_cast<double>(B->Count) *
                               (S->HasCount ? S->Count : 0) / Total)
                         : B->Count / Succs.size();
      B->SuccWeights.push_back(W);
    }
  }
}

void inferFunctionProfile(Function &F, const InferenceOptions &Opts) {
  bool Any = false;
  for (auto &BB : F.Blocks)
    Any |= BB->HasCount && BB->Count > 0;
  if (!Any || F.Blocks.empty())
    return;

  if (F.Blocks.size() > 600) {
    localSmooth(F);
    return;
  }

  MinCostFlowSolver Solver;
  // Two nodes per block: in (2i) and out (2i+1).
  std::map<BasicBlock *, int> Index;
  for (auto &BB : F.Blocks) {
    int In = Solver.addNode();
    Solver.addNode();
    Index[BB.get()] = In;
  }

  // Block arcs: reward matching the measured count, penalize exceeding it.
  std::vector<int> MatchEdge(F.Blocks.size(), -1);
  std::vector<int> ExtraEdge(F.Blocks.size(), -1);
  for (size_t I = 0; I != F.Blocks.size(); ++I) {
    BasicBlock *B = F.Blocks[I].get();
    int In = Index[B], Out = In + 1;
    uint64_t W = B->HasCount ? B->Count : 0;
    if (W > 0) {
      MatchEdge[I] =
          Solver.addEdge(In, Out, static_cast<int64_t>(W), -Opts.MatchReward);
      ExtraEdge[I] = Solver.addEdge(In, Out, InfCap, Opts.ExceedPenalty);
    } else {
      ExtraEdge[I] = Solver.addEdge(In, Out, InfCap, Opts.UnknownPenalty);
    }
  }

  // CFG arcs.
  std::map<std::pair<BasicBlock *, unsigned>, int> CFGEdge;
  for (auto &BB : F.Blocks) {
    auto Succs = BB->successors();
    for (unsigned S = 0; S != Succs.size(); ++S) {
      int Id = Solver.addEdge(Index[BB.get()] + 1, Index[Succs[S]], InfCap, 0);
      CFGEdge[{BB.get(), S}] = Id;
    }
  }

  // Circulation closure: exits feed back into the entry.
  int EntryIn = Index[F.getEntry()];
  for (auto &BB : F.Blocks)
    if (BB->numSuccessors() == 0)
      Solver.addEdge(Index[BB.get()] + 1, EntryIn, InfCap, 0);

  Solver.solve();

  // Read the inferred profile back.
  for (size_t I = 0; I != F.Blocks.size(); ++I) {
    BasicBlock *B = F.Blocks[I].get();
    int64_t Flow = 0;
    if (MatchEdge[I] >= 0)
      Flow += Solver.flowOn(MatchEdge[I]);
    if (ExtraEdge[I] >= 0)
      Flow += Solver.flowOn(ExtraEdge[I]);
    B->setCount(static_cast<uint64_t>(Flow < 0 ? 0 : Flow));
    B->SuccWeights.clear();
    unsigned NumSucc = B->numSuccessors();
    for (unsigned S = 0; S != NumSucc; ++S) {
      int64_t EFlow = Solver.flowOn(CFGEdge.at({B, S}));
      B->SuccWeights.push_back(static_cast<uint64_t>(EFlow < 0 ? 0 : EFlow));
    }
  }
}

void inferModuleProfile(Module &M, const InferenceOptions &Opts) {
  for (auto &F : M.Functions)
    inferFunctionProfile(*F, Opts);
}

bool isProfileConsistent(const Function &F, uint64_t Tolerance) {
  std::map<const BasicBlock *, uint64_t> InFlow;
  for (auto &BB : F.Blocks) {
    auto Succs = BB->successors();
    uint64_t Out = 0;
    for (unsigned S = 0; S != Succs.size(); ++S) {
      uint64_t W = S < BB->SuccWeights.size() ? BB->SuccWeights[S] : 0;
      InFlow[Succs[S]] += W;
      Out += W;
    }
    if (!Succs.empty()) {
      uint64_t Diff = Out > BB->Count ? Out - BB->Count : BB->Count - Out;
      if (Diff > Tolerance)
        return false;
    }
  }
  for (auto &BB : F.Blocks) {
    if (BB.get() == F.getEntry())
      continue;
    uint64_t In = InFlow[BB.get()];
    uint64_t Diff = In > BB->Count ? In - BB->Count : BB->Count - In;
    if (Diff > Tolerance)
      return false;
  }
  return true;
}

} // namespace csspgo

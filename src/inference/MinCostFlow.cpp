//===- inference/MinCostFlow.cpp - Min-cost circulation ---------------------===//

#include "inference/MinCostFlow.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace csspgo {

int MinCostFlowSolver::addNode() {
  Adj.emplace_back();
  return NumNodes++;
}

int MinCostFlowSolver::addEdge(int From, int To, int64_t Cap, int64_t Cost) {
  assert(From >= 0 && From < NumNodes && To >= 0 && To < NumNodes);
  Arc Fwd;
  Fwd.To = To;
  Fwd.Cap = Cap;
  Fwd.Cost = Cost;
  Fwd.Rev = static_cast<int>(Adj[To].size());
  Arc Bwd;
  Bwd.To = From;
  Bwd.Cap = 0;
  Bwd.Cost = -Cost;
  Bwd.Rev = static_cast<int>(Adj[From].size());
  Adj[From].push_back(Fwd);
  Adj[To].push_back(Bwd);
  EdgeIndex.emplace_back(From, static_cast<int>(Adj[From].size()) - 1);
  OrigCap.push_back(Cap);
  return static_cast<int>(EdgeIndex.size()) - 1;
}

std::vector<std::pair<int, int>> MinCostFlowSolver::findNegativeCycle() const {
  constexpr int64_t Inf = std::numeric_limits<int64_t>::max() / 4;
  std::vector<int64_t> Dist(NumNodes, 0); // All-zero start finds any cycle.
  std::vector<std::pair<int, int>> Parent(NumNodes, {-1, -1});

  int Updated = -1;
  for (int Iter = 0; Iter != NumNodes; ++Iter) {
    Updated = -1;
    for (int U = 0; U != NumNodes; ++U) {
      for (int A = 0; A != static_cast<int>(Adj[U].size()); ++A) {
        const Arc &E = Adj[U][A];
        if (E.Cap <= 0)
          continue;
        if (Dist[U] + E.Cost < Dist[E.To] &&
            Dist[U] < Inf) {
          Dist[E.To] = Dist[U] + E.Cost;
          Parent[E.To] = {U, A};
          Updated = E.To;
        }
      }
    }
    if (Updated < 0)
      return {};
  }

  // A relaxation happened in the Nth round: a negative cycle exists. Walk
  // back N steps to land inside the cycle, then trace it.
  int X = Updated;
  for (int I = 0; I != NumNodes; ++I)
    X = Parent[X].first;
  std::vector<std::pair<int, int>> Cycle;
  int Cur = X;
  do {
    auto [PU, PA] = Parent[Cur];
    if (PU < 0)
      return {}; // Defensive: broken parent chain.
    Cycle.emplace_back(PU, PA);
    Cur = PU;
  } while (Cur != X && static_cast<int>(Cycle.size()) <= NumNodes + 1);
  if (Cur != X)
    return {}; // Trace failed to close; treat as no cycle found.
  std::reverse(Cycle.begin(), Cycle.end());
  return Cycle;
}

void MinCostFlowSolver::solve() {
  // Bound iterations defensively; each cancellation strictly reduces cost.
  for (int Round = 0; Round != 4096; ++Round) {
    auto Cycle = findNegativeCycle();
    if (Cycle.empty())
      return;
    int64_t Bottleneck = std::numeric_limits<int64_t>::max();
    for (auto [U, A] : Cycle)
      Bottleneck = std::min(Bottleneck, Adj[U][A].Cap);
    if (Bottleneck <= 0)
      return;
    for (auto [U, A] : Cycle) {
      Arc &E = Adj[U][A];
      E.Cap -= Bottleneck;
      Adj[E.To][E.Rev].Cap += Bottleneck;
    }
  }
}

int64_t MinCostFlowSolver::flowOn(int EdgeId) const {
  auto [U, A] = EdgeIndex[static_cast<size_t>(EdgeId)];
  return OrigCap[static_cast<size_t>(EdgeId)] - Adj[U][A].Cap;
}

} // namespace csspgo

//===- inference/MinCostFlow.h - Min-cost circulation ------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimum-cost circulation solver (negative-cycle canceling with
/// Bellman-Ford) — the algorithmic core of profile inference in the style
/// of Levin et al. [9] and profi [10]: raw sample counts are smoothed into
/// a flow-consistent profile by finding the cheapest circulation in a
/// network that rewards matching the measured counts.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_INFERENCE_MINCOSTFLOW_H
#define CSSPGO_INFERENCE_MINCOSTFLOW_H

#include <cstdint>
#include <vector>

namespace csspgo {

class MinCostFlowSolver {
public:
  /// Adds a node; returns its id.
  int addNode();

  /// Adds a directed edge with capacity \p Cap and per-unit cost \p Cost.
  /// Returns an edge id usable with flowOn().
  int addEdge(int From, int To, int64_t Cap, int64_t Cost);

  /// Cancels negative cycles until the circulation is optimal (or the
  /// iteration bound is hit; the result is still feasible).
  void solve();

  /// Flow pushed through edge \p EdgeId after solve().
  int64_t flowOn(int EdgeId) const;

  int numNodes() const { return NumNodes; }

private:
  struct Arc {
    int To = 0;
    int64_t Cap = 0;  ///< Residual capacity.
    int64_t Cost = 0;
    int Rev = 0; ///< Index of the reverse arc in Arcs[To... ] list.
  };

  /// Finds a negative cycle in the residual graph; returns the arc indices
  /// (into the flattened arc array) of the cycle, empty if none.
  std::vector<std::pair<int, int>> findNegativeCycle() const;

  int NumNodes = 0;
  /// Adjacency: per node, list of arcs.
  std::vector<std::vector<Arc>> Adj;
  /// Mapping from public edge id to (node, arc index).
  std::vector<std::pair<int, int>> EdgeIndex;
  /// Original capacity per public edge (to compute flow).
  std::vector<int64_t> OrigCap;
};

} // namespace csspgo

#endif // CSSPGO_INFERENCE_MINCOSTFLOW_H

//===- inference/ProfileInference.h - Profile inference ----------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Profile inference ("Profi", ref [10]): turns the raw, possibly
/// inconsistent block counts produced by sample correlation into a
/// flow-consistent profile (inflow == count == outflow at every block)
/// with per-edge weights, by solving a minimum-cost circulation that
/// rewards matching the measured counts and penalizes deviation. Both the
/// AutoFDO baseline and CSSPGO run this stage (§IV-A: "Since CSSPGO by
/// default uses Profi ... we also turned on Profi for AutoFDO").
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_INFERENCE_PROFILEINFERENCE_H
#define CSSPGO_INFERENCE_PROFILEINFERENCE_H

#include "ir/Module.h"

namespace csspgo {

struct InferenceOptions {
  /// Per-unit reward for flow matching a measured count.
  int64_t MatchReward = 2;
  /// Per-unit penalty for flow exceeding a measured count.
  int64_t ExceedPenalty = 2;
  /// Per-unit penalty for routing flow through unmeasured blocks.
  int64_t UnknownPenalty = 1;
};

/// Runs inference on \p F in place: blocks get consistent Count and
/// SuccWeights. Blocks without annotation participate with weight 0 and
/// may receive inferred flow. No-op when no block has a count.
void inferFunctionProfile(Function &F, const InferenceOptions &Opts = {});

/// Runs inference over every function of \p M.
void inferModuleProfile(Module &M, const InferenceOptions &Opts = {});

/// Returns true if the annotated counts are flow-consistent: for every
/// block (except entry/exits), count equals the sum of incoming edge
/// weights and the sum of outgoing edge weights. Used by tests.
bool isProfileConsistent(const Function &F, uint64_t Tolerance = 0);

} // namespace csspgo

#endif // CSSPGO_INFERENCE_PROFILEINFERENCE_H

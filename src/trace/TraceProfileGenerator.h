//===- trace/TraceProfileGenerator.h - Profiles from traces -----*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns a recorded core-instruction trace into the same profiles the
/// sampling pipeline produces: the trace is replayed (TraceDecoder) into
/// the exact PerfSample stream an equivalent LBR sampling run would have
/// emitted, then fed through the unchanged ProfileGenerator. Whenever
/// branch frequencies suffice — i.e. the virtual sampler sees the same
/// cycle stream the real PMU would have — the resulting flat and context
/// profiles are bit-identical to the sampling path's, which the property
/// suite pins. On top of the frequency profile the trace contributes what
/// sampling cannot: a measured per-block TimingProfile for the
/// timing-aware transform gates.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_TRACE_TRACEPROFILEGENERATOR_H
#define CSSPGO_TRACE_TRACEPROFILEGENERATOR_H

#include "profgen/ProfileGenerator.h"
#include "trace/TraceDecoder.h"

namespace csspgo {

struct TraceProfGenOptions {
  /// How to replay the trace (virtual sampler, cost model, format).
  TraceReplayOptions Replay;
  /// How to generate the profile from the synthesized samples.
  ProfGenOptions ProfGen;
};

struct TraceProfGenResult {
  /// The profile, exactly as the sampling path would have produced it.
  ProfGenResult Profile;
  /// Measured per-block timing (trace-only signal; empty when replay ran
  /// with CollectTiming off).
  TimingProfile Timing;
  /// Replay counters and TSC validation stats. Samples are cleared here
  /// (they were consumed into Profile); everything else is kept.
  TraceReplayResult Replay;
};

/// Replays \p Trace of a run of \p Bin started at \p Entry and generates a
/// profile from the synthesized samples. \p Probes follows the
/// ProfileGenerator contract (required for CS/ProbeOnly kinds). Corrupt
/// traces are rejected with the decoder's Status.
Expected<TraceProfGenResult>
generateTraceProfile(const Binary &Bin, const ProbeTable *Probes,
                     const std::string &Entry, const TraceData &Trace,
                     const TraceProfGenOptions &Opts);

} // namespace csspgo

#endif // CSSPGO_TRACE_TRACEPROFILEGENERATOR_H

//===- trace/TraceProfileGenerator.cpp - Profiles from traces --------------===//

#include "trace/TraceProfileGenerator.h"

#include <utility>

namespace csspgo {

Expected<TraceProfGenResult>
generateTraceProfile(const Binary &Bin, const ProbeTable *Probes,
                     const std::string &Entry, const TraceData &Trace,
                     const TraceProfGenOptions &Opts) {
  Expected<TraceReplayResult> Replayed =
      replayTrace(Bin, Entry, Trace, Opts.Replay);
  if (!Replayed)
    return Replayed.takeError().withContext("trace profile generation");

  TraceProfGenResult Out;
  Out.Replay = Replayed.take();
  Out.Timing = std::move(Out.Replay.Timing);
  Out.Replay.Timing = TimingProfile();

  ProfileGenerator Gen(Bin, Probes, Opts.ProfGen);
  Out.Profile = Gen.generate(Out.Replay.Samples);
  Out.Replay.Samples.clear();
  Out.Replay.Samples.shrink_to_fit();
  return Out;
}

} // namespace csspgo

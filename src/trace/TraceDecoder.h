//===- trace/TraceDecoder.h - Trace control-flow replay ---------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decodes a core-instruction trace (trace/TraceFormat.h) by re-walking
/// Binary::Code driven only by the packet stream — fallthrough, direct
/// branches, direct calls and returns are reconstructed statically from the
/// binary; conditional outcomes come from TNT packets and indirect-call
/// targets from TIP packets. Because trace perturbation only moves the
/// clock (never control flow or data), the replay reconstructs the
/// *unperturbed* cycle stream exactly, then:
///
///  - replays a *virtual PMU* over it (same SamplerConfig, cost model and
///    Rng seed a sampling run would use, including skid draws and the
///    modeled interrupt cost) to synthesize the exact PerfSample stream
///    that run would have produced — which is what makes trace-derived
///    profiles bit-identical to the LBR sampling path;
///  - attributes cycles and mispredicts to pseudo-probed blocks, producing
///    the TimingProfile the timing-aware transform gates consume;
///  - cross-validates every TSC packet against the replayed cost model
///    plus the modeled write cost (recorded cycles are the traced run's
///    perturbed clock: base cycles + bytes written so far times
///    CostModel::TraceByteCost).
///
/// The decoder is a validator as much as a reader: truncated traces decode
/// to their clean prefix, while corrupt ones (bad tags, out-of-range TIP
/// targets, packets crossing a timestamp boundary, trailing bytes) are
/// rejected with a Status — never a crash. The fuzz harness leans on this.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_TRACE_TRACEDECODER_H
#define CSSPGO_TRACE_TRACEDECODER_H

#include "codegen/MachineModule.h"
#include "opt/BlockTiming.h"
#include "sim/CostModel.h"
#include "sim/Sampler.h"
#include "support/Status.h"
#include "trace/TraceFormat.h"

#include <cstdint>
#include <string>
#include <vector>

namespace csspgo {

/// How to replay a trace. Costs and Format must match the traced run (the
/// TSC cross-check fails otherwise); Sampler describes the virtual PMU —
/// set it to the configuration of the sampling run whose sample stream the
/// replay should reproduce.
struct TraceReplayOptions {
  /// Virtual sampler replayed over the reconstructed cycle stream.
  /// Disabled leaves TraceReplayResult::Samples empty (timing-only decode).
  SamplerConfig Sampler;
  /// Cost model of the traced run (TraceByteCost validates TSC packets,
  /// SampleInterruptCost perturbs the virtual sampler's clock).
  CostModel Costs;
  /// Trace format knobs; TimestampEvery and CompressTimestamps must match
  /// the recording configuration.
  TraceConfig Format;
  /// Mirrors of the traced run's ExecConfig limits; the replay stops where
  /// the traced run stopped.
  uint64_t MaxInstructions = 4ull << 30;
  uint32_t MaxCallDepth = 512;
  /// Build the per-block TimingProfile (needs Binary::Probes).
  bool CollectTiming = true;
};

/// The replayed run. Counter fields mirror RunResult's microarchitectural
/// counters and must match the traced run's exactly (minus the sampler- and
/// trace-induced perturbation).
struct TraceReplayResult {
  /// The program ran to completion in the trace (reached its outermost
  /// return). False when the trace is truncated or the traced run hit an
  /// execution limit.
  bool Completed = false;
  /// Replay consumed a truncated trace's clean prefix.
  bool Truncated = false;

  /// The virtual PMU's samples (only with Sampler.Enabled) —
  /// bit-identical to the equivalent sampling run's RunResult::Samples.
  std::vector<PerfSample> Samples;
  /// Measured per-block timing (only with CollectTiming).
  TimingProfile Timing;

  /// Virtual sampled-run cycles: unperturbed cycles plus the modeled
  /// sample-interrupt cost (matches the sampling run's RunResult::Cycles).
  uint64_t Cycles = 0;
  uint64_t Instructions = 0;
  uint64_t TakenBranches = 0;
  uint64_t CondBranches = 0;
  uint64_t CondTaken = 0;
  uint64_t UncondJumps = 0;
  uint64_t Mispredicts = 0;
  uint64_t ICacheMisses = 0;
  uint64_t Calls = 0;
  uint64_t IndirectCalls = 0;
  uint64_t IndirectMispredicts = 0;

  /// TSC packets seen / failing the write-cost cross-check (0 expected
  /// whenever Costs/Format match the recording).
  uint64_t Timestamps = 0;
  uint64_t TimestampMismatches = 0;
};

/// Replays \p Trace of a run of \p Bin that started at \p Entry. Returns
/// an error Status for corrupt traces; truncated traces succeed with
/// Truncated set and the counters covering the decodable prefix.
Expected<TraceReplayResult> replayTrace(const Binary &Bin,
                                        const std::string &Entry,
                                        const TraceData &Trace,
                                        const TraceReplayOptions &Opts);

} // namespace csspgo

#endif // CSSPGO_TRACE_TRACEDECODER_H

//===- trace/TraceFormat.h - Core-instruction-trace packets -----*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-wire format of the core-instruction-trace collection mode and the
/// encoder the executor records through. The design follows hardware branch
/// traces (Intel PT, the TGO/ltrace RISC-V tracer): everything statically
/// reconstructible from the binary — fallthrough, direct branches, direct
/// calls, returns — is *not* recorded; the packet stream carries only
///
///  - TNT packets: taken/not-taken outcomes of conditional branches,
///    packed up to eight per payload byte;
///  - TIP packets: resolved callee indices of indirect calls;
///  - TSC packets: delta-compressed cycle timestamps emitted every
///    TraceConfig::TimestampEvery branch events (ULEB128 deltas by
///    default, raw 8-byte little-endian with compression off);
///  - an END packet marking a cleanly terminated trace.
///
/// TraceDecoder (trace/TraceDecoder.h) re-walks Binary::Code driven only by
/// these packets, which is what makes trace-derived profiles bit-identical
/// to the LBR sampling path.
///
/// The encoder lives in the header because the executor (csspgo_sim) sits
/// *below* csspgo_trace in the library layering: the recorder must be
/// usable from the interpreter hot loop without linking the decoder's
/// dependencies (profgen) into sim.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_TRACE_TRACEFORMAT_H
#define CSSPGO_TRACE_TRACEFORMAT_H

#include <cstdint>
#include <vector>

namespace csspgo {

/// Packet tag bytes. Tags 0x10..0x17 are TNT packets whose low three bits
/// encode (bit count - 1); the payload byte holds the outcomes LSB-first
/// (bit 0 = oldest branch; 1 = taken).
enum TracePacketTag : uint8_t {
  TraceTagTNTBase = 0x10, ///< 0x10 + (count - 1), count in [1, 8].
  TraceTagTIP = 0x20,     ///< + ULEB128 callee function index.
  TraceTagTSC = 0x30,     ///< + cycle delta (ULEB128 or raw u64).
  TraceTagEnd = 0x40,     ///< Clean end of trace; no payload.
};

/// Configuration of the trace collection mode (ExecConfig::Trace).
struct TraceConfig {
  bool Enabled = false;
  /// Bound on encoded trace size. When the buffer fills, recording stops
  /// and TraceData::Truncated is set; the prefix stays decodable.
  uint64_t MaxBytes = 64ull << 20;
  /// Emit a timestamp packet every N branch events (conditional branches
  /// + indirect calls). 0 disables timestamps entirely.
  uint32_t TimestampEvery = 32;
  /// Delta-compress timestamps as ULEB128 (versus raw 8-byte values —
  /// the knob that makes the write-cost model sensitive to compression).
  bool CompressTimestamps = true;
};

/// The recorded trace plus collection statistics.
struct TraceData {
  std::vector<uint8_t> Bytes;
  bool Truncated = false;
  uint64_t Packets = 0;       ///< Total packets emitted (incl. END).
  uint64_t BranchEvents = 0;  ///< Conditional branches + indirect calls.
  /// Modeled perturbation charged to the traced run: bytes written times
  /// CostModel::TraceByteCost. Included in the run's Cycles.
  uint64_t WriteCycles = 0;
};

/// Appends \p V to \p Out as ULEB128.
inline void traceAppendULEB128(std::vector<uint8_t> &Out, uint64_t V) {
  do {
    uint8_t Byte = V & 0x7f;
    V >>= 7;
    Out.push_back(Byte | (V ? 0x80 : 0));
  } while (V);
}

/// Reads a ULEB128 from \p Bytes at \p Pos. Returns false on truncation or
/// a value wider than 64 bits; advances \p Pos past the encoding on
/// success.
inline bool traceReadULEB128(const std::vector<uint8_t> &Bytes, size_t &Pos,
                             uint64_t &Out) {
  Out = 0;
  for (uint32_t Shift = 0; Shift < 64; Shift += 7) {
    if (Pos >= Bytes.size())
      return false;
    uint8_t Byte = Bytes[Pos++];
    Out |= static_cast<uint64_t>(Byte & 0x7f) << Shift;
    if (!(Byte & 0x80))
      return true;
    if (Shift == 63)
      return false; // 10th continuation byte: value does not fit.
  }
  return false;
}

/// The encoder the interpreters record through. Both machines call the
/// same three hooks in the same handler positions, so the byte stream (and
/// the modeled write cost) is identical across the fast and reference
/// paths. Every packet flush charges its bytes to the caller's cycle
/// counter at \c CostPerByte — the modeled runtime perturbation of
/// tracing. Perturbation only moves the clock; it never changes control
/// flow or data, which is what lets the decoder reconstruct the
/// *unperturbed* cycle stream exactly.
class TraceRecorder {
public:
  TraceRecorder(const TraceConfig &Config, uint32_t CostPerByte)
      : Config(Config), CostPerByte(CostPerByte) {
    if (Config.Enabled)
      Data.Bytes.reserve(
          static_cast<size_t>(Config.MaxBytes < 4096 ? Config.MaxBytes
                                                     : 4096));
  }

  /// Records one conditional-branch outcome.
  void condBranch(bool Taken, uint64_t &Cycles) {
    PendingTNT |= static_cast<uint8_t>(Taken) << PendingBits;
    if (++PendingBits == 8)
      flushTNT(Cycles);
    branchEvent(Cycles);
  }

  /// Records one resolved indirect-call target.
  void indirectTarget(uint32_t CalleeIdx, uint64_t &Cycles) {
    flushTNT(Cycles); // Preserve event order for the decoder.
    Scratch.clear();
    Scratch.push_back(TraceTagTIP);
    traceAppendULEB128(Scratch, CalleeIdx);
    emit(Cycles);
    branchEvent(Cycles);
  }

  /// Flushes pending TNT bits, appends the END marker (absent on a
  /// truncated trace) and returns the trace. The tail is charged to
  /// \p Cycles like every other packet.
  TraceData finish(uint64_t &Cycles) {
    flushTNT(Cycles);
    if (!Data.Truncated) {
      Scratch.assign(1, static_cast<uint8_t>(TraceTagEnd));
      emit(Cycles);
    }
    return std::move(Data);
  }

private:
  void branchEvent(uint64_t &Cycles) {
    ++Data.BranchEvents;
    if (Config.TimestampEvery &&
        Data.BranchEvents % Config.TimestampEvery == 0)
      timestamp(Cycles);
  }

  /// Emits a TSC packet carrying the delta of the (perturbed) cycle
  /// counter since the previous TSC. The recorded value is the counter
  /// *before* this packet's own bytes are charged, so a decoder replaying
  /// the write-cost model validates it from the preceding bytes alone.
  void timestamp(uint64_t &Cycles) {
    flushTNT(Cycles);
    uint64_t Delta = Cycles - LastTimestamp;
    Scratch.clear();
    Scratch.push_back(TraceTagTSC);
    if (Config.CompressTimestamps) {
      traceAppendULEB128(Scratch, Delta);
    } else {
      for (int B = 0; B != 8; ++B)
        Scratch.push_back(static_cast<uint8_t>(Delta >> (8 * B)));
    }
    if (emit(Cycles))
      LastTimestamp = Cycles;
  }

  void flushTNT(uint64_t &Cycles) {
    if (!PendingBits)
      return;
    Scratch.clear();
    Scratch.push_back(
        static_cast<uint8_t>(TraceTagTNTBase + (PendingBits - 1)));
    Scratch.push_back(PendingTNT);
    PendingTNT = 0;
    PendingBits = 0;
    emit(Cycles);
  }

  /// Appends Scratch as one packet, charging its write cost to \p Cycles.
  /// A packet that would exceed MaxBytes is dropped whole and the trace
  /// marked truncated (no partial packets on the wire).
  bool emit(uint64_t &Cycles) {
    if (Data.Truncated ||
        Data.Bytes.size() + Scratch.size() > Config.MaxBytes) {
      Data.Truncated = true;
      return false;
    }
    Data.Bytes.insert(Data.Bytes.end(), Scratch.begin(), Scratch.end());
    ++Data.Packets;
    uint64_t Cost = static_cast<uint64_t>(Scratch.size()) * CostPerByte;
    Cycles += Cost;
    Data.WriteCycles += Cost;
    return true;
  }

  TraceConfig Config;
  uint32_t CostPerByte = 0;
  TraceData Data;
  std::vector<uint8_t> Scratch;
  uint64_t LastTimestamp = 0;
  uint8_t PendingTNT = 0;
  uint32_t PendingBits = 0;
};

} // namespace csspgo

#endif // CSSPGO_TRACE_TRACEFORMAT_H

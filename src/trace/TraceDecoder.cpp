//===- trace/TraceDecoder.cpp - Trace control-flow replay ------------------===//
//
// The replay mirrors ReferenceMachine (sim/Executor.cpp) exactly — same
// per-instruction order (base cost, i-cache, sampler, handler), same LBR
// ring and stack-capture semantics, same skid draws from the same Rng
// stream — except that conditional outcomes and indirect targets come from
// the packet stream instead of register values. Any divergence between the
// two is a bug that the trace-vs-LBR bit-identity property test catches.
//
//===----------------------------------------------------------------------===//

#include "trace/TraceDecoder.h"

#include <unordered_map>
#include <utility>

namespace csspgo {

namespace {

/// Sequential packet consumer. Reads are bounds-checked and tag-checked;
/// every framing violation is a Status error carrying the byte offset.
/// Bytes are tallied as packets are consumed, which reproduces the
/// encoder's charge order (the encoder flushes everything pending before a
/// TSC, so at any timestamp boundary the consumed bytes equal the bytes
/// the traced run had been charged for).
class PacketReader {
public:
  PacketReader(const TraceData &Trace, const TraceConfig &Format)
      : Trace(Trace), Format(Format) {}

  uint64_t consumedBytes() const { return Consumed; }
  bool pendingBits() const { return BitsUsed < BitsCount; }
  bool atEnd() const { return Pos == Trace.Bytes.size(); }

  /// Next conditional-branch outcome: 0/1, or -1 when a truncated trace
  /// ran out (the clean stop; never returned for intact traces).
  Status takeBit(int &Bit) {
    if (BitsUsed == BitsCount) {
      if (atEnd()) {
        if (Trace.Truncated) {
          Bit = -1;
          return Status();
        }
        return corrupt("trace ends before a conditional-branch outcome");
      }
      uint8_t Tag = Trace.Bytes[Pos];
      if (Tag < TraceTagTNTBase || Tag > TraceTagTNTBase + 7)
        return corrupt("expected a TNT packet");
      if (Pos + 2 > Trace.Bytes.size())
        return corrupt("TNT packet cut mid-payload");
      BitsCount = static_cast<uint32_t>(Tag - TraceTagTNTBase) + 1;
      Payload = Trace.Bytes[Pos + 1];
      BitsUsed = 0;
      Pos += 2;
      Consumed += 2;
    }
    Bit = (Payload >> BitsUsed) & 1;
    ++BitsUsed;
    return Status();
  }

  /// Next indirect-call target; -1 on a truncated trace's clean stop.
  Status takeTip(int64_t &Callee, size_t NumFuncs) {
    if (pendingBits())
      return corrupt("TNT bits pending at an indirect call");
    if (atEnd()) {
      if (Trace.Truncated) {
        Callee = -1;
        return Status();
      }
      return corrupt("trace ends before an indirect-call target");
    }
    if (Trace.Bytes[Pos] != TraceTagTIP)
      return corrupt("expected a TIP packet");
    size_t Start = Pos++;
    uint64_t V = 0;
    if (!traceReadULEB128(Trace.Bytes, Pos, V))
      return corrupt("corrupt TIP payload");
    if (V >= NumFuncs)
      return corrupt("TIP callee index out of range");
    Consumed += Pos - Start;
    Callee = static_cast<int64_t>(V);
    return Status();
  }

  /// Consumes the TSC packet due at a timestamp boundary. \p Got is false
  /// only on a truncated trace's clean stop; \p ConsumedBefore reports the
  /// bytes consumed *before* this packet (the traced run's write charge at
  /// the moment the delta was recorded).
  Status takeTsc(bool &Got, uint64_t &Delta, uint64_t &ConsumedBefore) {
    Got = false;
    if (pendingBits())
      return corrupt("TNT packet crosses a timestamp boundary");
    if (atEnd()) {
      if (Trace.Truncated)
        return Status();
      return corrupt("trace ends at a timestamp boundary");
    }
    if (Trace.Bytes[Pos] != TraceTagTSC)
      return corrupt("expected a TSC packet");
    ConsumedBefore = Consumed;
    size_t Start = Pos++;
    if (Format.CompressTimestamps) {
      if (!traceReadULEB128(Trace.Bytes, Pos, Delta))
        return corrupt("corrupt TSC payload");
    } else {
      if (Pos + 8 > Trace.Bytes.size())
        return corrupt("TSC packet cut mid-payload");
      Delta = 0;
      for (int B = 0; B != 8; ++B)
        Delta |= static_cast<uint64_t>(Trace.Bytes[Pos + B]) << (8 * B);
      Pos += 8;
    }
    Consumed += Pos - Start;
    Got = true;
    return Status();
  }

  /// Validates the stream tail once the replayed program stops: an intact
  /// trace must end with exactly one END packet, a truncated one must be
  /// fully consumed, and no branch outcomes may be left over.
  Status expectEnd() {
    if (pendingBits())
      return corrupt("unconsumed branch outcomes at program end");
    if (Trace.Truncated) {
      if (!atEnd())
        return corrupt("truncated trace continues past program end");
      return Status();
    }
    if (atEnd())
      return corrupt("missing END packet");
    if (Trace.Bytes[Pos] != TraceTagEnd)
      return corrupt("expected the END packet");
    ++Pos;
    ++Consumed;
    if (!atEnd())
      return corrupt("trailing bytes after the END packet");
    return Status();
  }

private:
  Status corrupt(const char *What) const {
    return Status::error("corrupt trace at byte " + std::to_string(Pos) +
                         ": " + What);
  }

  const TraceData &Trace;
  const TraceConfig &Format;
  size_t Pos = 0;
  uint64_t Consumed = 0;
  uint8_t Payload = 0;
  uint32_t BitsUsed = 0;
  uint32_t BitsCount = 0;
};

/// Replayed call frame: just enough to rebuild sampled stacks (registers
/// are gone — the trace carries no data) plus the block the frame is
/// currently attributing time to.
struct ReplayFrame {
  uint32_t FuncIdx = 0;
  /// Resume point in the caller; SIZE_MAX for the outermost frame.
  size_t RetIdx = SIZE_MAX;
  uint64_t RetAddr = 0;
  /// Timing attribution: the (guid, probe id) of the last block probe
  /// crossed in this frame.
  bool HasKey = false;
  std::pair<uint64_t, uint32_t> Key{0, 0};
};

class Replayer {
public:
  Replayer(const Binary &Bin, const TraceData &Trace,
           const TraceReplayOptions &Opts)
      : Bin(Bin), Opts(Opts), Reader(Trace, Opts.Format),
        Cache(Opts.Costs), Predictor(Opts.Costs),
        Ring(Opts.Sampler.LBRDepth), Jitter(Opts.Sampler.Seed) {}

  Expected<TraceReplayResult> run(const std::string &Entry);

private:
  /// Virtual sampled-run clock: unperturbed cycles plus accumulated
  /// sample-interrupt charges. Base alone is the traced run's unperturbed
  /// clock, which the TSC cross-check builds on.
  uint64_t virtCycles() const { return Base + InterruptCharges; }

  void recordBranch(uint64_t Src, uint64_t Dst) {
    Ring.record(Src, Dst);
    ++Result.TakenBranches;
    Base += Opts.Costs.TakenBranchCost;
  }

  std::vector<uint64_t> captureStack(size_t PCIdx) const {
    std::vector<uint64_t> Stack;
    Stack.reserve(Frames.size());
    Stack.push_back(Bin.Code[PCIdx].Addr);
    for (size_t I = Frames.size(); I-- > 0;) {
      if (Frames[I].RetIdx != SIZE_MAX)
        Stack.push_back(Frames[I].RetAddr);
    }
    return Stack;
  }

  /// Mirror of ReferenceMachine::maybeSample against the virtual clock,
  /// including the zero-skid delivery rule and the Rng draw order.
  void maybeSample(size_t PCIdx) {
    if (!Opts.Sampler.Enabled)
      return;
    if (SkidCountdown > 0) {
      if (--SkidCountdown == 0) {
        Pending.Stack = captureStack(PCIdx);
        Result.Samples.push_back(std::move(Pending));
        Pending = PerfSample();
      }
    }
    if (virtCycles() < NextSampleAt)
      return;
    NextSampleAt = virtCycles() + Opts.Sampler.PeriodCycles;
    InterruptCharges += Opts.Costs.SampleInterruptCost;
    if (Opts.Sampler.Precise) {
      PerfSample S;
      S.LBR = Ring.snapshot();
      S.Stack = captureStack(PCIdx);
      Result.Samples.push_back(std::move(S));
      return;
    }
    if (SkidCountdown > 0)
      return;
    Pending.LBR = Ring.snapshot();
    if (Opts.Sampler.MaxSkidInstructions == 0) {
      Pending.Stack = captureStack(PCIdx);
      Result.Samples.push_back(std::move(Pending));
      Pending = PerfSample();
      return;
    }
    SkidCountdown = 1 + Jitter.nextBelow(Opts.Sampler.MaxSkidInstructions);
  }

  /// Called at the two packet hook positions after every branch event;
  /// consumes and cross-checks the TSC packet when one is due.
  /// \p CleanStop is set on a truncated trace's end.
  Status branchEventBoundary(bool &CleanStop) {
    CleanStop = false;
    ++BranchEvents;
    if (!Opts.Format.TimestampEvery ||
        BranchEvents % Opts.Format.TimestampEvery != 0)
      return Status();
    bool Got = false;
    uint64_t Delta = 0, ConsumedBefore = 0;
    if (Status S = Reader.takeTsc(Got, Delta, ConsumedBefore); !S.ok())
      return S;
    if (!Got) {
      CleanStop = true;
      return Status();
    }
    ++Result.Timestamps;
    // The recorded value is the traced run's perturbed clock before the
    // TSC packet's own bytes: unperturbed cycles + bytes-written so far
    // times the per-byte write cost. The encoder then advances its
    // reference point past its own bytes.
    uint64_t PerByte = Opts.Costs.TraceByteCost;
    uint64_t AtEmission = Base + ConsumedBefore * PerByte;
    if (AtEmission - LastTimestamp != Delta)
      ++Result.TimestampMismatches;
    LastTimestamp = Base + Reader.consumedBytes() * PerByte;
    return Status();
  }

  const Binary &Bin;
  const TraceReplayOptions &Opts;
  PacketReader Reader;
  ICache Cache;
  BranchPredictor Predictor;
  LBRRing Ring;
  Rng Jitter;

  std::vector<ReplayFrame> Frames;
  std::unordered_map<uint64_t, uint64_t> IndirectBTB;
  std::unordered_map<size_t, std::vector<std::pair<uint64_t, uint32_t>>>
      BlockProbeAt;
  TraceReplayResult Result;

  uint64_t Base = 0;
  uint64_t InterruptCharges = 0;
  uint64_t BranchEvents = 0;
  uint64_t LastTimestamp = 0;
  uint64_t NextSampleAt = 0;
  PerfSample Pending;
  uint32_t SkidCountdown = 0;
};

Expected<TraceReplayResult> Replayer::run(const std::string &Entry) {
  uint32_t EntryIdx = Bin.funcIndexByName(Entry);
  if (EntryIdx == ~0u)
    return Status::error("trace replay: entry function '" + Entry +
                         "' not found");
  if (Opts.CollectTiming)
    for (const ProbeRecord &P : Bin.Probes)
      if (!P.IsCallProbe)
        BlockProbeAt[P.InstIdx].push_back({P.Guid, P.ProbeId});

  NextSampleAt = Opts.Sampler.PeriodCycles;
  Frames.push_back(ReplayFrame{EntryIdx, SIZE_MAX, 0, false, {0, 0}});
  size_t PC = Bin.Funcs[EntryIdx].EntryIdx;

  enum class Stop { None, Completed, Truncated, Limit };
  Stop Why = Stop::None;

  while (Why == Stop::None) {
    if (Result.Instructions >= Opts.MaxInstructions) {
      // The traced run stopped here too ("instruction limit exceeded");
      // the stream-tail check below verifies that.
      Why = Stop::Limit;
      break;
    }
    if (PC >= Bin.Code.size())
      return Status::error("trace replay: PC out of range (malformed binary)");
    const MInst &I = Bin.Code[PC];

    ++Result.Instructions;
    uint64_t BaseBefore = Base;
    bool CondMispredict = false;
    Base += Opts.Costs.baseCost(I.Op);
    if (Cache.access(I.Addr)) {
      ++Result.ICacheMisses;
      Base += Opts.Costs.ICacheMissPenalty;
    }
    maybeSample(PC);

    // Timing attribution: crossing a block probe re-keys the frame; the
    // instruction's cycles go to whatever block the frame is then in.
    bool HasAttr = false;
    std::pair<uint64_t, uint32_t> Attr{0, 0};
    if (Opts.CollectTiming) {
      auto It = BlockProbeAt.find(PC);
      if (It != BlockProbeAt.end()) {
        ReplayFrame &F = Frames.back();
        for (const auto &Key : It->second) {
          ++Result.Timing.Blocks[Key].Executed;
          F.Key = Key;
          F.HasKey = true;
        }
      }
      if (Frames.back().HasKey) {
        HasAttr = true;
        Attr = Frames.back().Key;
      }
    }

    size_t NextPC = PC + 1;
    switch (I.Op) {
    case Opcode::Br:
      NextPC = static_cast<size_t>(I.Target);
      ++Result.UncondJumps;
      recordBranch(I.Addr, Bin.Code[NextPC].Addr);
      break;

    case Opcode::CondBr: {
      int Bit = 0;
      if (Status S = Reader.takeBit(Bit); !S.ok())
        return S;
      if (Bit < 0) {
        Why = Stop::Truncated;
        break;
      }
      bool Taken = Bit != 0;
      ++Result.CondBranches;
      if (Predictor.mispredicted(I.Addr, Taken)) {
        ++Result.Mispredicts;
        Base += Opts.Costs.MispredictPenalty;
        CondMispredict = true;
      }
      if (Taken) {
        ++Result.CondTaken;
        NextPC = static_cast<size_t>(I.Target);
        recordBranch(I.Addr, Bin.Code[NextPC].Addr);
      }
      bool CleanStop = false;
      if (Status S = branchEventBoundary(CleanStop); !S.ok())
        return S;
      if (CleanStop)
        Why = Stop::Truncated;
      break;
    }

    case Opcode::CallIndirect:
    case Opcode::Call: {
      uint32_t CalleeIdx = I.CalleeIdx;
      if (I.Op == Opcode::CallIndirect) {
        int64_t Tip = 0;
        if (Status S = Reader.takeTip(Tip, Bin.Funcs.size()); !S.ok())
          return S;
        if (Tip < 0) {
          Why = Stop::Truncated;
          break;
        }
        CalleeIdx = static_cast<uint32_t>(Tip);
        ++Result.IndirectCalls;
        uint64_t &Last = IndirectBTB[I.Addr];
        if (Last != Bin.Funcs[CalleeIdx].EntryIdx + 1) {
          ++Result.IndirectMispredicts;
          ++Result.Mispredicts;
          Base += Opts.Costs.MispredictPenalty;
          Last = Bin.Funcs[CalleeIdx].EntryIdx + 1;
        }
        // (Value profiles are not reconstructible — the trace records the
        // resolved callee, not the dispatch slot — and the sampling path
        // the replay reproduces never collects them.)
        bool CleanStop = false;
        if (Status S = branchEventBoundary(CleanStop); !S.ok())
          return S;
        if (CleanStop) {
          Why = Stop::Truncated;
          break;
        }
      }
      const MachineFunction &Callee = Bin.Funcs[CalleeIdx];
      ++Result.Calls;
      if (I.IsTailCall) {
        ReplayFrame &F = Frames.back();
        F.FuncIdx = CalleeIdx;
        F.HasKey = false; // New function body; re-keyed at its first probe.
        NextPC = Callee.EntryIdx;
        recordBranch(I.Addr, Bin.Code[NextPC].Addr);
        break;
      }
      if (Frames.size() >= Opts.MaxCallDepth) {
        Why = Stop::Limit; // "call depth limit exceeded" in the traced run.
        break;
      }
      ReplayFrame NewF;
      NewF.FuncIdx = CalleeIdx;
      NewF.RetIdx = PC + 1;
      NewF.RetAddr = Bin.Code[PC + 1].Addr;
      Frames.push_back(NewF);
      NextPC = Callee.EntryIdx;
      recordBranch(I.Addr, Bin.Code[NextPC].Addr);
      break;
    }

    case Opcode::Ret: {
      size_t RetIdx = Frames.back().RetIdx;
      Frames.pop_back();
      if (Frames.empty() || RetIdx == SIZE_MAX) {
        Why = Stop::Completed;
        break;
      }
      NextPC = RetIdx;
      recordBranch(I.Addr, Bin.Code[NextPC].Addr);
      break;
    }

    default:
      // Straight-line instructions carry no trace payload; only their
      // (already charged) cost matters to the replay.
      break;
    }

    if (HasAttr) {
      BlockTimingStats &St = Result.Timing.Blocks[Attr];
      St.Cycles += Base - BaseBefore;
      if (CondMispredict)
        ++St.Mispredicts;
    }
    PC = NextPC;
  }

  if (Why == Stop::Truncated) {
    Result.Truncated = true;
  } else {
    if (Status S = Reader.expectEnd(); !S.ok())
      return S;
    Result.Completed = Why == Stop::Completed;
  }
  Result.Cycles = virtCycles();
  return std::move(Result);
}

} // namespace

Expected<TraceReplayResult> replayTrace(const Binary &Bin,
                                        const std::string &Entry,
                                        const TraceData &Trace,
                                        const TraceReplayOptions &Opts) {
  return Replayer(Bin, Trace, Opts).run(Entry);
}

} // namespace csspgo

//===- verify/ProfileVerifier.cpp - Profile invariant checking ------------===//

#include "verify/ProfileVerifier.h"

#include "probe/ProbeTable.h"

#include <map>
#include <sstream>

namespace csspgo {

const char *violationKindName(ViolationKind K) {
  switch (K) {
  case ViolationKind::TotalMismatch:
    return "total-mismatch";
  case ViolationKind::HeadExceedsTotal:
    return "head-exceeds-total";
  case ViolationKind::HeadEdgeMismatch:
    return "head-edge-mismatch";
  case ViolationKind::DiscOnProbeKey:
    return "disc-on-probe-key";
  case ViolationKind::ProbeOutOfDomain:
    return "probe-out-of-domain";
  case ViolationKind::GuidMismatch:
    return "guid-mismatch";
  case ViolationKind::ChecksumMismatch:
    return "checksum-mismatch";
  case ViolationKind::NameMismatch:
    return "name-mismatch";
  case ViolationKind::TrieEdgeMismatch:
    return "trie-edge-mismatch";
  }
  return "unknown";
}

std::string VerifyReport::str() const {
  std::ostringstream OS;
  std::string Scope =
      ContextsChecked ? std::to_string(ContextsChecked) + " contexts"
                      : std::to_string(FunctionsChecked) + " functions";
  if (ok()) {
    OS << "clean (" << Scope << ")";
    return OS.str();
  }
  OS << Violations << " violation(s) across " << Scope;
  if (!Details.empty())
    OS << "; first: [" << violationKindName(Details.front().Kind) << "] "
       << Details.front().Where << ": " << Details.front().Message;
  return OS.str();
}

namespace {

std::string keyStr(ProfileKey K) {
  std::string S = std::to_string(K.Index);
  if (K.Disc)
    S += "." + std::to_string(K.Disc);
  return S;
}

/// One verification run: options, the report under construction, and the
/// cross-database head/call-target accumulators.
class Checker {
public:
  Checker(const VerifierOptions &Opts, bool ProbeKeyed)
      : Opts(Opts), ProbeKeyed(ProbeKeyed) {}

  VerifyReport take() {
    finishEdges();
    return std::move(R);
  }

  void violate(ViolationKind K, const std::string &Where, std::string Msg) {
    ++R.Violations;
    if (R.Details.size() < Opts.MaxRecorded)
      R.Details.push_back({K, Where, std::move(Msg)});
  }

  /// Checks one FunctionProfile (recursing into nested inlinees).
  /// \p ExpectName is the name the container keys it under.
  void checkProfile(const FunctionProfile &P, const std::string &Where,
                    const std::string &ExpectName) {
    if (P.Name.empty() || (!ExpectName.empty() && P.Name != ExpectName))
      violate(ViolationKind::NameMismatch, Where,
              "profile name '" + P.Name + "' vs container key '" +
                  ExpectName + "'");

    // Count conservation: TotalSamples is maintained exclusively through
    // addBody/maxBody, so it must equal the saturating body sum.
    uint64_t BodySum = 0;
    for (const auto &[K, N] : P.Body)
      BodySum = saturatingAdd(BodySum, N);
    if (BodySum != P.TotalSamples)
      violate(ViolationKind::TotalMismatch, Where,
              "TotalSamples " + std::to_string(P.TotalSamples) +
                  " != body sum " + std::to_string(BodySum));

    if (Opts.ExactCounts && P.HeadSamples > P.TotalSamples)
      violate(ViolationKind::HeadExceedsTotal, Where,
              "head " + std::to_string(P.HeadSamples) + " > total " +
                  std::to_string(P.TotalSamples));

    bool Full = Opts.Level == VerifyLevel::Full;
    if (Full && Opts.CheckHeadEdges && !Opts.ExactCounts) {
      auto &H = Heads[P.Name];
      H = saturatingAdd(H, P.HeadSamples);
      for (const auto &[K, Targets] : P.Calls)
        for (const auto &[Callee, N] : Targets) {
          auto &T = TargetSums[Callee];
          T = saturatingAdd(T, N);
        }
    }

    const ProbeDescriptor *Desc = nullptr;
    if (Full && ProbeKeyed) {
      for (const auto &[K, N] : P.Body)
        checkProbeKey(K, Where, "body");
      for (const auto &[K, Targets] : P.Calls)
        checkProbeKey(K, Where, "call site");
      for (const auto &[K, Map] : P.Inlinees)
        checkProbeKey(K, Where, "inlinee site");
      if (Opts.Probes) {
        Desc = Opts.Probes->findByName(P.Name);
        if (!Desc) {
          violate(ViolationKind::NameMismatch, Where,
                  "no probe descriptor for '" + P.Name + "'");
        } else {
          if (P.Guid && P.Guid != Desc->Guid)
            violate(ViolationKind::GuidMismatch, Where,
                    "guid " + std::to_string(P.Guid) + " != descriptor " +
                        std::to_string(Desc->Guid));
          if (P.Checksum && P.Checksum != Desc->CFGChecksum)
            violate(ViolationKind::ChecksumMismatch, Where,
                    "checksum " + std::to_string(P.Checksum) +
                        " != descriptor " +
                        std::to_string(Desc->CFGChecksum));
          checkDomain(P, Where, *Desc);
        }
      }
    }

    for (const auto &[K, Map] : P.Inlinees)
      for (const auto &[Callee, Inlinee] : Map)
        checkProfile(Inlinee, Where + " > " + Callee + "@" + keyStr(K),
                     Callee);
  }

  /// Checks an edge site key against the *parent* function's probe domain
  /// (used for context-trie child edges).
  void checkSiteInDomain(uint32_t Site, const std::string &ParentFunc,
                         const std::string &Where) {
    if (!Opts.Probes)
      return;
    const ProbeDescriptor *Desc = Opts.Probes->findByName(ParentFunc);
    if (Desc && (Site < 1 || Site > Desc->NumProbes))
      violate(ViolationKind::ProbeOutOfDomain, Where,
              "edge site " + std::to_string(Site) + " outside [1, " +
                  std::to_string(Desc->NumProbes) + "] of '" + ParentFunc +
                  "'");
  }

  VerifyReport R;

private:
  void checkProbeKey(ProfileKey K, const std::string &Where,
                     const char *What) {
    if (K.Disc)
      violate(ViolationKind::DiscOnProbeKey, Where,
              std::string(What) + " key " + keyStr(K) +
                  " carries a discriminator on a probe-based profile");
  }

  void checkDomain(const FunctionProfile &P, const std::string &Where,
                   const ProbeDescriptor &Desc) {
    auto InDomain = [&](ProfileKey K, const char *What) {
      if (K.Index < 1 || K.Index > Desc.NumProbes)
        violate(ViolationKind::ProbeOutOfDomain, Where,
                std::string(What) + " key " + keyStr(K) + " outside [1, " +
                    std::to_string(Desc.NumProbes) + "]");
    };
    for (const auto &[K, N] : P.Body)
      InDomain(K, "body");
    for (const auto &[K, Targets] : P.Calls)
      InDomain(K, "call site");
    for (const auto &[K, Map] : P.Inlinees)
      InDomain(K, "inlinee site");
  }

  /// Sampled-profile head/call-edge conservation: per function, the head
  /// samples across the database equal the call-target counts into it
  /// (every generator records both off the same LBR call branch, and
  /// merging/trimming/pre-inlining only move or sum counts).
  void finishEdges() {
    if (Opts.Level != VerifyLevel::Full || !Opts.CheckHeadEdges ||
        Opts.ExactCounts)
      return;
    for (const auto &[Name, H] : Heads) {
      auto It = TargetSums.find(Name);
      uint64_t T = It == TargetSums.end() ? 0 : It->second;
      if (H == UINT64_MAX || T == UINT64_MAX)
        continue; // Saturated sums are incomparable.
      if (H != T)
        violate(ViolationKind::HeadEdgeMismatch, Name,
                "head samples " + std::to_string(H) +
                    " != call-target counts " + std::to_string(T));
    }
    for (const auto &[Name, T] : TargetSums)
      if (!Heads.count(Name) && T != 0)
        violate(ViolationKind::HeadEdgeMismatch, Name,
                "call-target counts " + std::to_string(T) +
                    " into a function with no head record");
  }

  const VerifierOptions &Opts;
  bool ProbeKeyed;
  /// Per-function saturating sums of head samples / call-target counts.
  std::map<std::string, uint64_t> Heads, TargetSums;
};

} // namespace

VerifyReport verifyFlatProfile(const FlatProfile &Profile,
                               const VerifierOptions &Opts) {
  Checker C(Opts, Profile.Kind == ProfileKind::ProbeBased);
  if (Opts.Level == VerifyLevel::Off)
    return C.take();
  for (const auto &[Name, P] : Profile.Functions) {
    ++C.R.FunctionsChecked;
    C.checkProfile(P, Name, Name);
  }
  return C.take();
}

VerifyReport verifyContextProfile(const ContextProfile &Profile,
                                  const VerifierOptions &Opts) {
  Checker C(Opts, Profile.Kind == ProfileKind::ProbeBased);
  if (Opts.Level == VerifyLevel::Off)
    return C.take();
  bool Full = Opts.Level == VerifyLevel::Full;

  // Manual walk with the rendered context and the parent at hand, so both
  // the per-node profile and the trie structure get checked.
  std::function<void(const ContextTrieNode &, bool, SampleContext &)> Walk =
      [&](const ContextTrieNode &N, bool IsRoot, SampleContext &Ctx) {
        for (const auto &[Key, Child] : N.Children) {
          auto [Site, Callee] = Key;
          if (!Ctx.empty())
            Ctx.back().Site = Site;
          Ctx.push_back({Child.FuncName, 0});
          std::string Where = contextToString(Ctx);

          if (Full) {
            if (IsRoot && Site != 0)
              C.violate(ViolationKind::TrieEdgeMismatch, Where,
                        "root edge carries nonzero site " +
                            std::to_string(Site));
            if (Child.FuncName != Callee)
              C.violate(ViolationKind::NameMismatch, Where,
                        "edge callee '" + Callee + "' vs node '" +
                            Child.FuncName + "'");
            if (!IsRoot)
              C.checkSiteInDomain(Site, N.FuncName, Where);
            if (!Child.HasProfile &&
                (Child.Profile.TotalSamples || Child.Profile.HeadSamples ||
                 !Child.Profile.Body.empty()))
              C.violate(ViolationKind::TrieEdgeMismatch, Where,
                        "node without HasProfile holds counts");
          }
          if (Child.HasProfile) {
            ++C.R.ContextsChecked;
            C.checkProfile(Child.Profile, Where, Child.FuncName);
          }

          Walk(Child, false, Ctx);
          Ctx.pop_back();
          if (!Ctx.empty())
            Ctx.back().Site = 0;
        }
      };
  SampleContext Ctx;
  Walk(Profile.Root, true, Ctx);
  return C.take();
}

} // namespace csspgo

//===- verify/ProfileVerifier.h - Profile invariant checking ----*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Invariant verification over sample-profile databases. A silently
/// corrupt count is indistinguishable from a profile-quality regression,
/// so every profile entering the pipeline (out of profgen, into the
/// loader) can be checked against the invariants the generators maintain:
///
///  * **Count conservation** — a FunctionProfile's TotalSamples equals the
///    (saturating) sum of its body counts, recursively through nested
///    inlinee profiles. Both the generators (addBody/maxBody) and the
///    parser maintain this; a drifted total means a count was edited
///    behind the container's back.
///
///  * **Head/call-edge conservation** (sampled profiles) — every head
///    sample the generators record is paired with a call-target record at
///    the calling site (same LBR call branch), so per function the sum of
///    head samples across the whole database equals the sum of
///    call-target counts into it. The equality survives merging,
///    cold-context trimming and the pre-inliner, all of which move or sum
///    counts but never drop one side of an edge. Instrumentation profiles
///    record heads from the entry counter and call targets only at
///    indirect-call value sites, so the edge equality does not apply to
///    them — they get the stronger exact-count check instead:
///
///  * **HEAD <= TOTAL** (exact profiles) — an instrumentation head count
///    is the entry-block counter, which is one of the body counters, so
///    it can never exceed their sum. Sampled profiles do *not* satisfy
///    this invariant: the newest LBR entry's call branch bumps the
///    callee's head while the range to the sampled PC is never
///    attributed, so a cold function observed only there legitimately
///    serializes as "name:0:1".
///
///  * **Probe-domain / metadata agreement** (probe-based profiles, given
///    the ProbeTable of the producing build) — every body, call-site and
///    inlinee key is a probe id within [1, NumProbes] of its function;
///    discriminators are 0 (probe keys have none); GUIDs and CFG
///    checksums match the descriptors.
///
///  * **Context-trie structure** (CS profiles) — child edges are
///    consistent (edge callee == child FuncName == child profile name),
///    root edges carry site 0, and non-root edge sites lie in the parent
///    function's probe domain.
///
/// The checks are diagnostics, not gates: verification returns a report
/// with violation counts and capped details; callers (ProfileLoader,
/// ProfileGenerator, PGODriver) decide whether to surface, warn or abort.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_VERIFY_PROFILEVERIFIER_H
#define CSSPGO_VERIFY_PROFILEVERIFIER_H

#include "profile/ContextTrie.h"
#include "profile/FunctionProfile.h"

#include <string>
#include <vector>

namespace csspgo {

class ProbeTable;

/// How much verification to run. Summary covers the per-function count
/// conservation and exact-count head checks in one cheap linear pass;
/// Full adds the cross-database edge conservation, probe-domain /
/// metadata agreement and trie-structure checks.
enum class VerifyLevel : uint8_t { Off, Summary, Full };

enum class ViolationKind : uint8_t {
  /// TotalSamples != saturating sum of body counts.
  TotalMismatch,
  /// HeadSamples > TotalSamples under exact-count (Instr) semantics.
  HeadExceedsTotal,
  /// Sum of head samples of a function != sum of call-target counts
  /// into it across the database (sampled profiles only).
  HeadEdgeMismatch,
  /// Probe-based profile key carries a nonzero discriminator.
  DiscOnProbeKey,
  /// Probe-based key outside [1, NumProbes] of its function.
  ProbeOutOfDomain,
  /// Profile GUID disagrees with the probe descriptor.
  GuidMismatch,
  /// Profile CFG checksum disagrees with the probe descriptor.
  ChecksumMismatch,
  /// Profile/trie naming inconsistency (map key vs Profile.Name, edge
  /// callee vs child FuncName, empty function name).
  NameMismatch,
  /// Context-trie structural breakage (root edge with nonzero site).
  TrieEdgeMismatch,
};

const char *violationKindName(ViolationKind K);

struct Violation {
  ViolationKind Kind;
  /// Function name or rendered context the violation anchors to.
  std::string Where;
  std::string Message;
};

struct VerifierOptions {
  VerifyLevel Level = VerifyLevel::Full;
  /// Exact-count semantics (instrumentation profiles): enforce
  /// HEAD <= TOTAL and skip the sampled-profile edge conservation.
  bool ExactCounts = false;
  /// Check per-function head vs call-target conservation (sampled
  /// profiles; ignored when ExactCounts).
  bool CheckHeadEdges = true;
  /// Probe descriptors of the producing build; enables the probe-domain
  /// and GUID/checksum agreement checks for probe-based profiles. Leave
  /// null when verifying a profile away from its build (e.g. a stale
  /// profile before matching), where out-of-domain keys are legitimate.
  const ProbeTable *Probes = nullptr;
  /// Detail cap; violations beyond it are counted but not recorded.
  size_t MaxRecorded = 16;
};

struct VerifyReport {
  uint64_t FunctionsChecked = 0;
  uint64_t ContextsChecked = 0;
  /// Total violations found (Details is capped, this is not).
  uint64_t Violations = 0;
  std::vector<Violation> Details;

  bool ok() const { return Violations == 0; }
  /// One-line human-readable summary ("clean" or count + first detail).
  std::string str() const;
};

/// Verifies a flat (AutoFDO / probe-only / instrumentation) profile.
VerifyReport verifyFlatProfile(const FlatProfile &Profile,
                               const VerifierOptions &Opts = {});

/// Verifies a context-sensitive profile, including trie structure.
VerifyReport verifyContextProfile(const ContextProfile &Profile,
                                  const VerifierOptions &Opts = {});

} // namespace csspgo

#endif // CSSPGO_VERIFY_PROFILEVERIFIER_H

//===- service/ProfileService.cpp - Continuous profiling service -------------===//

#include "service/ProfileService.h"

#include "probe/ProbeInserter.h"
#include "sim/Executor.h"
#include "store/ProfileStore.h"
#include "support/BoundedQueue.h"
#include "support/SourceText.h"
#include "support/ThreadPool.h"
#include "workload/Workloads.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <thread>

namespace csspgo {

namespace {

/// What one worker produced for one (host, epoch) assignment.
struct HostProfile {
  ContextProfile CS;
  CSProfileGenStats Stats;
  uint64_t Samples = 0;
};

} // namespace

/// One deployed binary version of a service. Tasks reference the release
/// they were assigned under, so a deploy mid-stream never changes what an
/// already-enqueued epoch profiles.
struct ProfileService::Release {
  unsigned Index = 0;
  std::shared_ptr<const Module> Source; ///< Pristine IR of this release.
  std::unique_ptr<Binary> Bin;          ///< Probe-anchored profiling build.
  ProbeTable Probes;
};

/// Everything in flight for one epoch: per-host result slots (indexed by
/// host, so completion order is irrelevant) and the release each service
/// was on when the epoch was produced.
struct ProfileService::EpochBatch {
  std::vector<std::optional<HostProfile>> Results;
  std::vector<std::shared_ptr<Release>> Rels;
  std::atomic<size_t> Remaining{0};
};

struct ProfileService::PerService {
  std::string Name;
  WorkloadConfig Workload;
  /// Source the next release drifts from; touched only by the producer.
  std::unique_ptr<Module> Current;
  std::shared_ptr<Release> Rel; ///< Written by producer, snapshotted per epoch.
  unsigned Releases = 1;

  ProfilePipeline Pipeline;

  std::string StoreBytes;
  uint64_t EpochsFolded = 0;
  uint64_t EpochsDropped = 0;
  uint64_t LastFoldTimestamp = 0;
  uint64_t SamplesIngested = 0;
  std::string LastError;

  std::vector<std::string> HotSet;
  double HotChurn = 0;

  LoaderStats ProbeStats; ///< Last freshness probe (store → current IR).
  double RecoveredSampleRate = 0;
  uint64_t LastProbeStoreSamples = 0;
};

static std::shared_ptr<ProfileService::Release>
buildRelease(const Module &Source, unsigned Index) {
  auto R = std::make_shared<ProfileService::Release>();
  R->Index = Index;
  R->Source = std::shared_ptr<const Module>(Source.clone().release());
  BuildConfig BC;
  BC.Variant = PGOVariant::CSSPGOFull;
  BuildResult B = buildWithPGO(Source, BC, nullptr);
  R->Bin = std::move(B.Bin);
  R->Probes = B.ProbeDescs;
  return R;
}

ProfileService::ProfileService(ServiceConfig Config)
    : C(std::move(Config)), Fleet(C.Fleet) {
  C.Fleet = Fleet.config(); // FleetSim clamps; keep the two in sync.
  C.QueueBound = std::max<size_t>(1, C.QueueBound);
  C.HotTopN = std::max(1u, C.HotTopN);
  for (unsigned S = 0; S != C.Fleet.Services; ++S) {
    auto Svc = std::make_unique<PerService>();
    Svc->Name = Fleet.serviceName(S);
    Svc->Workload = Fleet.serviceWorkload(S);
    Svc->Current = generateProgram(Svc->Workload);
    Svc->Rel = buildRelease(*Svc->Current, 0);
    PipelineOptions PO;
    PO.kind(ProfGenKind::CS)
        .verify(VerifyLevel::Full)
        .strict(true)
        .decay(C.DecayPermille)
        .compactNames(C.CompactNames);
    Svc->Pipeline = ProfilePipeline(PO);
    Services.push_back(std::move(Svc));
  }
}

ProfileService::~ProfileService() = default;

const std::string &ProfileService::store(unsigned S) const {
  return Services[S]->StoreBytes;
}

namespace {

/// Executes one host assignment and generates its context profile.
/// Workers run this concurrently; everything it touches is task-local or
/// const (the release binary and probe table are shared read-only).
HostProfile profileHost(const ProfileService::Release &R,
                        const WorkloadConfig &W, const HostTask &T) {
  HostProfile Out;
  std::vector<int64_t> Mem = generateInput(W, T.InputSeed);
  ExecConfig EC;
  EC.Sampler.Enabled = true;
  EC.Sampler.PeriodCycles = T.SamplePeriodCycles;
  EC.Sampler.Precise = true;
  EC.Sampler.Seed = T.SamplerSeed;
  RunResult Run = execute(*R.Bin, "main", Mem, EC);

  ProfGenOptions GO;
  GO.Kind = ProfGenKind::CS;
  GO.Parallelism = 1;           // Sharding here is across hosts, not samples.
  GO.Verify = VerifyLevel::Off; // The fold is the verification gate.
  ProfileGenerator Gen(*R.Bin, &R.Probes, GO);
  ProfGenResult PR = Gen.generate(Run.Samples);
  Out.CS = std::move(PR.CS);
  Out.Stats = PR.Stats;
  Out.Samples = Out.CS.totalSamples();
  return Out;
}

/// Top-N store functions by (samples desc, name asc) — deterministic.
std::vector<std::string> hotFunctions(const ProfileStore &St, unsigned N) {
  std::vector<std::pair<uint64_t, std::string>> All;
  for (size_t I = 0; I != St.numFunctions(); ++I)
    All.push_back(
        {St.functionTotalSamples(I), std::string(St.functionName(I))});
  std::sort(All.begin(), All.end(), [](const auto &A, const auto &B) {
    return A.first != B.first ? A.first > B.first : A.second < B.second;
  });
  if (All.size() > N)
    All.resize(N);
  std::vector<std::string> Names;
  for (auto &[Total, Name] : All)
    Names.push_back(std::move(Name));
  return Names;
}

} // namespace

Status ProfileService::run(unsigned NumEpochs) {
  if (!NumEpochs)
    return {};
  const unsigned First = NextEpoch;
  const unsigned Last = First + NumEpochs;

  struct Item {
    size_t EpochIdx = 0; ///< Relative to First.
    HostTask Task;
    std::shared_ptr<Release> Rel;
    const WorkloadConfig *Workload = nullptr;
  };

  std::vector<std::unique_ptr<EpochBatch>> Batches;
  for (unsigned I = 0; I != NumEpochs; ++I)
    Batches.push_back(std::make_unique<EpochBatch>());
  std::mutex DoneMutex;
  std::condition_variable DoneCV;
  std::atomic<unsigned> Produced{0};

  BoundedQueue<Item> Queue(C.QueueBound);

  // Shard workers: drain the queue until closed. Results land in their
  // pre-assigned host slots, so completion order cannot affect the fold.
  ThreadPool Pool(C.Shards);
  std::vector<std::future<void>> Drains;
  for (unsigned W = 0; W != Pool.concurrency(); ++W) {
    Drains.push_back(Pool.async([&] {
      while (std::optional<Item> I = Queue.pop()) {
        EpochBatch &B = *Batches[I->EpochIdx];
        B.Results[I->Task.Host] = profileHost(*I->Rel, *I->Workload, I->Task);
        if (B.Remaining.fetch_sub(1) == 1) {
          std::lock_guard<std::mutex> Lock(DoneMutex);
          DoneCV.notify_all();
        }
      }
    }));
  }

  // Producer: deploys releases at their epoch boundaries, then streams
  // the epoch's host assignments. push() blocking on a full queue is the
  // fleet's backpressure.
  std::thread Producer([&] {
    for (unsigned E = First; E != Last; ++E) {
      if (C.DriftEveryEpochs && E && E % C.DriftEveryEpochs == 0) {
        for (auto &Svc : Services) {
          // Alternate the edit kinds so both guard insertion and block
          // splits show up over a long run.
          CFGDriftKind Kind = Svc->Releases % 2 ? CFGDriftKind::GuardInsert
                                                : CFGDriftKind::BlockSplit;
          applyCFGDrift(*Svc->Current, Kind, E);
          Svc->Rel = buildRelease(*Svc->Current, Svc->Releases);
          ++Svc->Releases;
        }
      }
      EpochBatch &B = *Batches[E - First];
      for (auto &Svc : Services)
        B.Rels.push_back(Svc->Rel);
      std::vector<HostTask> Tasks = Fleet.epochTasks(E);
      B.Results.resize(Tasks.size());
      B.Remaining.store(Tasks.size());
      Produced.fetch_add(1);
      for (const HostTask &T : Tasks) {
        Item I;
        I.EpochIdx = E - First;
        I.Task = T;
        I.Rel = B.Rels[T.Service];
        I.Workload = &Services[T.Service]->Workload;
        if (!Queue.push(std::move(I)))
          return; // Queue closed underneath us (fatal shutdown).
      }
    }
    Queue.close();
  });

  // Folder (this thread): epochs fold strictly in order — decay makes the
  // fold non-commutative, so fold order is part of the determinism
  // contract, whatever order the shards finished in.
  Status Fatal;
  for (unsigned E = First; E != Last; ++E) {
    EpochBatch &B = *Batches[E - First];
    {
      std::unique_lock<std::mutex> Lock(DoneMutex);
      DoneCV.wait(Lock, [&] {
        return Produced.load() > E - First && B.Remaining.load() == 0;
      });
    }
    unsigned Ahead = Produced.load() - (E - First);
    MaxEpochLag = std::max(MaxEpochLag, Ahead ? Ahead - 1 : 0);
    if (Status S = foldEpoch(E, B); !S && Fatal.ok())
      Fatal = S;
    Batches[E - First].reset(); // Free host profiles as the stream advances.
  }

  Producer.join();
  for (auto &D : Drains)
    D.get(); // Rethrows worker exceptions at the orchestration point.

  QueueHighWater = std::max(QueueHighWater, Queue.highWater());
  TasksExecuted += static_cast<uint64_t>(NumEpochs) * C.Fleet.Hosts;
  NextEpoch = Last;
  return Fatal;
}

Status ProfileService::foldEpoch(unsigned E, EpochBatch &Batch) {
  for (unsigned S = 0; S != C.Fleet.Services; ++S) {
    PerService &Svc = *Services[S];
    PipelineStats &PS = Svc.Pipeline.stats();
    PS.ShardsUsed =
        std::max(PS.ShardsUsed, C.Shards ? C.Shards
                                         : ThreadPool::defaultConcurrency());

    // Reduce this service's hosts in ascending host order (slots are laid
    // out by host index, so a straight scan is exactly that order) — on
    // the flat plane: one k-way merge of the host views into an empty
    // destination, bit-identical to folding each host trie in turn.
    std::vector<ContextProfileView> HostViews;
    uint64_t EpochSamples = 0;
    for (unsigned H = 0; H != C.Fleet.Hosts; ++H) {
      if (Fleet.serviceOfHost(H) != S || !Batch.Results[H])
        continue;
      HostProfile &HP = *Batch.Results[H];
      accumulate(PS.ProfGen, HP.Stats);
      EpochSamples += HP.Samples;
      HostViews.push_back(contextViewOf(HP.CS));
    }
    std::vector<const ContextProfileView *> HostPtrs;
    HostPtrs.reserve(HostViews.size());
    for (const ContextProfileView &V : HostViews)
      HostPtrs.push_back(&V);
    MergeStats ReduceStats;
    ContextProfile Epoch = contextProfileOf(
        mergeContextViews(HostPtrs, ReduceStats, /*IntoEmptyDst=*/true));
    PS.Reduce += ReduceStats;

    if (!EpochSamples) {
      ++Svc.EpochsDropped;
      Svc.LastError = "epoch produced no samples";
      continue;
    }

    ProfileBundle Bundle;
    Bundle.Has = true;
    Bundle.IsCS = true;
    Bundle.CS = std::move(Epoch);
    uint64_t Ts = Fleet.timestamp(E);
    if (Status S2 = Svc.Pipeline.ingest(Svc.StoreBytes, Bundle, Ts); !S2) {
      // The gate held: the aggregate store is untouched and the service
      // keeps running. Dropped epochs are the dashboard's alarm signal.
      ++Svc.EpochsDropped;
      Svc.LastError = S2.message();
      continue;
    }
    ++Svc.EpochsFolded;
    Svc.LastFoldTimestamp = Ts;
    Svc.SamplesIngested += EpochSamples;
    PS.TotalSamples += EpochSamples;

    // Post-fold observability: hot-set churn and the freshness probe
    // (annotate this epoch's release straight from the store — the
    // build-farm view of the aggregate). The store borrows the service's
    // aggregate bytes, which stay untouched until the next fold.
    Expected<ProfileStore> St = ProfileStore::openBorrowed(Svc.StoreBytes);
    if (!St) {
      Svc.LastError = St.status().message();
      continue;
    }
    std::vector<std::string> Hot = hotFunctions(*St, C.HotTopN);
    if (!Svc.HotSet.empty() && !Hot.empty()) {
      std::set<std::string> Prev(Svc.HotSet.begin(), Svc.HotSet.end());
      size_t Kept = 0;
      for (const std::string &N : Hot)
        Kept += Prev.count(N);
      Svc.HotChurn =
          1.0 - static_cast<double>(Kept) / static_cast<double>(Hot.size());
    }
    Svc.HotSet = std::move(Hot);

    std::unique_ptr<Module> Target = Batch.Rels[S]->Source->clone();
    insertProbes(*Target, AnchorKind::PseudoProbe);
    St->resolveNames(*Target);
    LoaderOptions LO;
    Expected<LoaderStats> Probe =
        loadProfileFromStore(*Target, *St, LO, /*Lazy=*/true);
    if (!Probe) {
      Svc.LastError = Probe.status().message();
      continue;
    }
    Svc.ProbeStats = *Probe;
    accumulate(PS.Loader, *Probe);
    Svc.LastProbeStoreSamples = St->totalSamples();
    Svc.RecoveredSampleRate =
        Svc.LastProbeStoreSamples
            ? static_cast<double>(Probe->StaleCountsRecovered) /
                  static_cast<double>(Svc.LastProbeStoreSamples)
            : 0;
  }
  return {};
}

FleetSnapshot ProfileService::snapshot() const {
  FleetSnapshot Snap;
  Snap.EpochsProduced = NextEpoch;
  Snap.Shards = C.Shards ? C.Shards : ThreadPool::defaultConcurrency();
  Snap.QueueBound = C.QueueBound;
  Snap.QueueHighWater = QueueHighWater;
  Snap.MaxEpochLag = MaxEpochLag;
  Snap.TasksExecuted = TasksExecuted;
  uint64_t NewestTs = NextEpoch ? Fleet.timestamp(NextEpoch - 1) : 0;
  for (unsigned S = 0; S != C.Fleet.Services; ++S) {
    const PerService &Svc = *Services[S];
    ServiceSnapshot Row;
    Row.Name = Svc.Name;
    Row.Hosts = Fleet.hostsOfService(S);
    Row.Releases = Svc.Releases;
    Row.EpochsFolded = Svc.EpochsFolded;
    Row.EpochsDropped = Svc.EpochsDropped;
    Row.LastFoldTimestamp = Svc.LastFoldTimestamp;
    Row.FreshnessLagSeconds = NewestTs > Svc.LastFoldTimestamp
                                  ? NewestTs - Svc.LastFoldTimestamp
                                  : 0;
    Row.SamplesIngested = Svc.SamplesIngested;
    Row.StoreSizeBytes = Svc.StoreBytes.size();
    if (!Svc.StoreBytes.empty()) {
      Expected<ProfileStore> St = ProfileStore::openBorrowed(Svc.StoreBytes);
      if (St) {
        Row.StoreSamples = St->totalSamples();
        Row.StoreFunctions = St->numFunctions();
      }
    }
    Row.FunctionsAnnotated = Svc.ProbeStats.FunctionsAnnotated;
    Row.StaleMatched = Svc.ProbeStats.StaleMatched;
    Row.StaleDropped = Svc.ProbeStats.StaleDropped;
    Row.CountsRecovered = Svc.ProbeStats.StaleCountsRecovered;
    Row.RecoveredSampleRate = Svc.RecoveredSampleRate;
    Row.HotChurn = Svc.HotChurn;
    Row.Pipeline = Svc.Pipeline.stats();
    Snap.Services.push_back(std::move(Row));
  }
  return Snap;
}

//===----------------------------------------------------------------------===//
// Dashboard rendering.
//===----------------------------------------------------------------------===//

namespace {

std::string percent(double Frac) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f%%", Frac * 100.0);
  return Buf;
}

} // namespace

std::string FleetSnapshot::toText() const {
  std::ostringstream Out;
  uint64_t Hosts = 0;
  for (const ServiceSnapshot &S : Services)
    Hosts += S.Hosts;
  Out << "fleet: " << Hosts << " hosts, " << Services.size() << " services, "
      << EpochsProduced << " epochs produced\n";
  Out << "ingestion: " << Shards << " shards, queue bound " << QueueBound
      << " (high water " << QueueHighWater << "), max epoch lag "
      << MaxEpochLag << ", " << TasksExecuted << " host-epochs executed\n";
  TextTable Table({"service", "hosts", "rel", "folded", "dropped", "lag(s)",
                   "samples", "store", "recovered", "churn"});
  for (const ServiceSnapshot &S : Services) {
    Table.addRow({S.Name, std::to_string(S.Hosts),
                  std::to_string(S.Releases), std::to_string(S.EpochsFolded),
                  std::to_string(S.EpochsDropped),
                  std::to_string(S.FreshnessLagSeconds),
                  std::to_string(S.SamplesIngested),
                  formatBytes(S.StoreSizeBytes),
                  percent(S.RecoveredSampleRate), percent(S.HotChurn)});
  }
  Out << Table.render();
  for (const ServiceSnapshot &S : Services) {
    Out << S.Name << ": " << S.StoreFunctions << " store functions, "
        << S.StoreSamples << " aggregate samples, " << S.FunctionsAnnotated
        << " annotated";
    if (S.StaleMatched || S.StaleDropped)
      Out << ", stale " << S.StaleMatched << " matched / " << S.StaleDropped
          << " dropped, " << S.CountsRecovered << " counts recovered";
    Out << "\n";
  }
  return Out.str();
}

std::string FleetSnapshot::toJSON() const {
  std::ostringstream Out;
  Out << "{\"epochs_produced\":" << EpochsProduced
      << ",\"shards\":" << Shards << ",\"queue_bound\":" << QueueBound
      << ",\"queue_high_water\":" << QueueHighWater
      << ",\"max_epoch_lag\":" << MaxEpochLag
      << ",\"tasks_executed\":" << TasksExecuted << ",\"services\":[";
  for (size_t I = 0; I != Services.size(); ++I) {
    const ServiceSnapshot &S = Services[I];
    if (I)
      Out << ",";
    Out << "{\"name\":\"" << S.Name << "\",\"hosts\":" << S.Hosts
        << ",\"releases\":" << S.Releases
        << ",\"epochs_folded\":" << S.EpochsFolded
        << ",\"epochs_dropped\":" << S.EpochsDropped
        << ",\"last_fold_timestamp\":" << S.LastFoldTimestamp
        << ",\"freshness_lag_seconds\":" << S.FreshnessLagSeconds
        << ",\"samples_ingested\":" << S.SamplesIngested
        << ",\"store_samples\":" << S.StoreSamples
        << ",\"store_bytes\":" << S.StoreSizeBytes
        << ",\"store_functions\":" << S.StoreFunctions
        << ",\"functions_annotated\":" << S.FunctionsAnnotated
        << ",\"stale_matched\":" << S.StaleMatched
        << ",\"stale_dropped\":" << S.StaleDropped
        << ",\"counts_recovered\":" << S.CountsRecovered
        << ",\"recovered_sample_rate_permille\":"
        << static_cast<uint64_t>(S.RecoveredSampleRate * 1000 + 0.5)
        << ",\"hot_churn_permille\":"
        << static_cast<uint64_t>(S.HotChurn * 1000 + 0.5)
        << ",\"pipeline\":" << S.Pipeline.toJSON() << "}";
  }
  Out << "]}";
  return Out.str();
}

} // namespace csspgo

//===- service/ProfileService.h - Continuous profiling service --*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet-scale continuous-profiling service: the long-running process
/// the paper's deployment story implies but the repo only had pieces of.
/// A FleetSim (src/workload) emits per-(host, epoch) sampling
/// assignments; the service streams them through a sharded ingestion
/// front — a BoundedQueue feeding K ThreadPool workers, so a fleet
/// producing faster than the shards can profile stalls at the queue
/// (backpressure) instead of growing memory — and folds each completed
/// epoch into a per-service binary profile store through
/// ProfilePipeline::ingest (decay-weighted, verifier-gated).
///
/// Determinism contract: store bytes are a pure function of the
/// ServiceConfig. Workers may finish in any order, but each result lands
/// in its pre-assigned slot, hosts are reduced in ascending host order,
/// and epochs fold in epoch order — so K shards are bit-identical to
/// serial for any K (ServiceTest proves it).
///
/// Release drift: every DriftEveryEpochs epochs the producer "deploys a
/// new release" of each service (a CFG-changing source edit + rebuild),
/// so the aggregate store — collected against older releases — goes stale
/// against the current module exactly the way production profiles do. The
/// post-fold freshness probe annotates the current release from the store
/// and reports how much of the profile the stale matcher recovered.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_SERVICE_PROFILESERVICE_H
#define CSSPGO_SERVICE_PROFILESERVICE_H

#include "pgo/ProfilePipeline.h"
#include "support/Status.h"
#include "workload/FleetSim.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace csspgo {

struct ServiceConfig {
  FleetConfig Fleet;
  /// Ingestion shards (worker threads); 0 = one per hardware thread,
  /// 1 = serial. Any value produces bit-identical stores.
  unsigned Shards = 1;
  /// Bounded-queue capacity of the ingestion front (min 1).
  size_t QueueBound = 16;
  /// Prior-aggregate weight per fold, permille (1000 = plain merge).
  uint32_t DecayPermille = 900;
  /// Compact (GUID) name tables in the per-service stores.
  bool CompactNames = false;
  /// Deploy a drifted release of every service each N epochs (0 = never).
  unsigned DriftEveryEpochs = 0;
  /// Hot-set size for the churn metric.
  unsigned HotTopN = 10;
};

/// Dashboard row for one service.
struct ServiceSnapshot {
  std::string Name;
  unsigned Hosts = 0;
  unsigned Releases = 1;

  uint64_t EpochsFolded = 0;
  /// Epochs rejected by the ingest gate (verifier / decode failures) —
  /// the service survives them; nonzero is an alarm, not a crash.
  uint64_t EpochsDropped = 0;
  uint64_t LastFoldTimestamp = 0;
  /// Seconds between the newest produced epoch and the newest folded one
  /// (0 = fully fresh).
  uint64_t FreshnessLagSeconds = 0;

  uint64_t SamplesIngested = 0; ///< Sum of fresh epoch weights.
  uint64_t StoreSamples = 0;    ///< Aggregate after decay.
  uint64_t StoreSizeBytes = 0;
  size_t StoreFunctions = 0;

  /// Freshness probe: annotating the *current* release from the store.
  uint64_t FunctionsAnnotated = 0;
  uint64_t StaleMatched = 0;
  uint64_t StaleDropped = 0;
  uint64_t CountsRecovered = 0;
  /// CountsRecovered / StoreSamples of the last probe.
  double RecoveredSampleRate = 0;

  /// Fraction of the top-N hot functions replaced by the last fold.
  double HotChurn = 0;

  /// Full pipeline observability for this service (profgen/reduce/
  /// ingest/loader/verify), summable across services.
  PipelineStats Pipeline;
};

/// Dashboard snapshot of the whole fleet.
struct FleetSnapshot {
  unsigned EpochsProduced = 0;
  unsigned Shards = 1;
  size_t QueueBound = 0;
  /// Deepest the ingestion queue ever got (≤ QueueBound by contract).
  size_t QueueHighWater = 0;
  /// Max epochs the producer ran ahead of the folder.
  unsigned MaxEpochLag = 0;
  uint64_t TasksExecuted = 0;
  std::vector<ServiceSnapshot> Services;

  /// Human dashboard (fixed-width table + totals).
  std::string toText() const;
  /// Machine dashboard; stable key order (byte-identical for equal
  /// snapshots).
  std::string toJSON() const;
};

class ProfileService {
public:
  /// Builds the fleet: one workload module and one profiling binary per
  /// service. Deterministic; no work is streamed yet.
  explicit ProfileService(ServiceConfig Config);
  ~ProfileService();

  ProfileService(const ProfileService &) = delete;
  ProfileService &operator=(const ProfileService &) = delete;

  /// Streams the next \p NumEpochs epochs end to end (produce → shard →
  /// fold → probe) and returns when the queue is drained and every fold
  /// landed. Callable repeatedly; state (stores, stats, epoch counter)
  /// carries over. Returns the first *fatal* error (worker death);
  /// per-epoch ingest failures are absorbed into EpochsDropped.
  Status run(unsigned NumEpochs);

  unsigned epochsRun() const { return NextEpoch; }
  const FleetSim &fleet() const { return Fleet; }

  /// Store bytes of service \p S (empty until its first fold).
  const std::string &store(unsigned S) const;

  FleetSnapshot snapshot() const;

  struct Release; ///< One deployed binary version (see .cpp).

private:
  struct PerService;
  struct EpochBatch;

  Status foldEpoch(unsigned E, EpochBatch &Batch);

  ServiceConfig C;
  FleetSim Fleet;
  std::vector<std::unique_ptr<PerService>> Services;

  unsigned NextEpoch = 0;
  size_t QueueHighWater = 0;
  unsigned MaxEpochLag = 0;
  uint64_t TasksExecuted = 0;
};

} // namespace csspgo

#endif // CSSPGO_SERVICE_PROFILESERVICE_H

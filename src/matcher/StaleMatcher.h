//===- matcher/StaleMatcher.h - Stale-profile matching ----------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stale-profile matching: when a profile no longer correlates with the
/// current IR (probe CFG checksum mismatch after a CFG-changing source
/// edit, or line-based call anchors that drifted), recover the profile by
/// anchor alignment instead of dropping it.
///
/// The algorithm follows Meta's "Stale Profile Matching" (Ayupov,
/// Panchenko, Pupyrev) and LLVM's SampleProfileMatcher / BOLT's
/// StaleMatcher:
///
///  1. Extract an ordered **anchor sequence** from both sides. Call sites
///     are the strong anchors — they carry a callee name that survives
///     most edits. The stale side reads them from the profile's
///     call-target and inlinee records; the fresh side walks the
///     probe-decorated (or line-annotated) IR.
///  2. Align the two call-anchor sequences with an LCS matcher whose
///     equality test is callee-name intersection (falls back to
///     unique-anchor matching filtered by a longest increasing
///     subsequence when the DP would be too large).
///  3. Derive a stale→fresh key remapping: matched anchors map exactly;
///     every other key shifts by the delta of the nearest preceding
///     matched anchor, guarded so it neither crosses the next anchor nor
///     (for probe profiles) lands on a key of the wrong kind (block
///     probe vs call probe).
///  4. Rewrite body counts, call targets and nested inlinee profiles
///     through the remapping, recursing into inlinees against their
///     callee's fresh IR, and stamp the recovered profile with the fresh
///     checksum.
///
/// Per-function MatchStats report how much was recovered; a confidence
/// threshold decides whether the recovered profile is applied or the
/// stale one is still dropped.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_MATCHER_STALEMATCHER_H
#define CSSPGO_MATCHER_STALEMATCHER_H

#include "ir/Module.h"
#include "profile/ContextTrie.h"
#include "profile/FunctionProfile.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace csspgo {

struct MatcherConfig {
  /// Minimum confidence (recovered body-sample fraction) at which a
  /// recovered profile is applied; below it the stale profile is dropped
  /// exactly as without the matcher.
  double MinConfidence = 0.5;
  /// Recursion cap for nested inlinee profiles.
  unsigned MaxInlineeDepth = 8;
  /// |stale anchors| * |fresh anchors| above which the LCS DP is skipped
  /// in favor of unique-anchor matching (guards quadratic blowup on
  /// machine-generated monster functions).
  size_t MaxLCSProduct = size_t(1) << 22;
};

/// Per-function (or per-context) record of one matching attempt.
struct MatchStats {
  /// Stale call-site anchors considered (including recursed inlinees).
  unsigned AnchorsTotal = 0;
  /// Anchors the LCS aligned to a fresh key.
  unsigned AnchorsMatched = 0;
  /// Body samples in the stale profile (including recursed inlinees).
  uint64_t SamplesTotal = 0;
  /// Body samples carried over to fresh keys.
  uint64_t SamplesRecovered = 0;
  /// SamplesRecovered / SamplesTotal (anchor fraction when sample-free).
  double Confidence = 0;
  /// Whether Confidence cleared MatcherConfig::MinConfidence.
  bool Accepted = false;
};

struct MatchResult {
  FunctionProfile Recovered;
  MatchStats Stats;
};

/// Matches the stale \p P against the fresh IR of \p F and returns the
/// recovered profile plus stats. \p Kind selects the anchor space (probe
/// ids or line offsets); \p M resolves callees for inlinee recursion.
/// The recovered profile carries F's checksum, so downstream staleness
/// checks and merges treat it as fresh.
MatchResult matchStaleProfile(const FunctionProfile &P, const Function &F,
                              const Module &M, ProfileKind Kind,
                              const MatcherConfig &Cfg = {});

/// Staleness detection for line-based profiles, which carry no CFG
/// checksum: true when any call anchor of \p P (a line key plus callee
/// names) has no identically-keyed call to one of those callees in \p F.
/// Profiles collected on the same source always pass, so this never
/// triggers matching on non-drifted loads.
bool lineProfileLooksStale(const FunctionProfile &P, const Function &F);

/// Aggregate result of matching a whole context trie.
struct ContextMatchSummary {
  /// Functions whose contexts were recovered / left stale (low confidence).
  unsigned FunctionsMatched = 0;
  unsigned FunctionsBelowConfidence = 0;
  /// Trie nodes rewritten into the fresh key space.
  unsigned ContextsRemapped = 0;
  /// Subtrees dropped because they hang off a call site that no longer
  /// exists (their site key did not survive the remap).
  unsigned ContextsDropped = 0;
  uint64_t AnchorsMatched = 0;
  uint64_t CountsRecovered = 0;
  /// Per-function records (one per distinct stale function).
  std::vector<std::pair<std::string, MatchStats>> PerFunction;
};

/// Matches every stale context of \p CS against \p M. One remapping is
/// computed per function from the *merged* anchor view of all its stale
/// contexts (every context of a function shares the profiled binary's
/// probe-id space), then applied node by node, re-keying child edges
/// through the owning function's remap. Returns a corrected copy of the
/// trie, or nullptr when no context is stale. Functions below the
/// confidence threshold keep their stale nodes unchanged, so the loader
/// drops them exactly as before.
std::unique_ptr<ContextProfile>
matchContextProfile(const ContextProfile &CS, const Module &M,
                    const MatcherConfig &Cfg, ContextMatchSummary &Summary);

} // namespace csspgo

#endif // CSSPGO_MATCHER_STALEMATCHER_H

//===- matcher/StaleMatcher.cpp - Stale-profile matching ------------------===//

#include "matcher/StaleMatcher.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

namespace csspgo {

namespace {

/// One call-site anchor: a profile key (probe id or line offset) plus the
/// callee names observed there. The stale side may record several targets
/// (indirect calls, merged contexts); the fresh side may merge several
/// calls sharing a line. The empty string stands for an indirect call
/// with no recorded target.
struct CallAnchor {
  uint32_t Key = 0;
  std::set<std::string> Callees;
};

/// Anchor view of the fresh IR: call anchors in key order, plus (probe
/// mode only) the universe of valid block/call probe ids, used to reject
/// delta-shifted keys that would land on a key of the wrong kind.
struct FreshView {
  std::vector<CallAnchor> Calls;
  std::set<uint32_t> BlockIds;
  std::set<uint32_t> CallIds;
};

FreshView extractFreshAnchors(const Function &F, ProfileKind Kind) {
  FreshView V;
  std::map<uint32_t, CallAnchor> Calls;
  for (const auto &BB : F.Blocks)
    for (const Instruction &I : BB->Insts) {
      if (I.OriginGuid != F.getGuid())
        continue;
      if (Kind == ProfileKind::ProbeBased) {
        if (I.isProbe()) {
          V.BlockIds.insert(I.ProbeId);
        } else if (I.isCall() && I.ProbeId) {
          V.CallIds.insert(I.ProbeId);
          CallAnchor &A = Calls[I.ProbeId];
          A.Key = I.ProbeId;
          A.Callees.insert(I.isIndirectCall() ? std::string() : I.Callee);
        }
      } else if (I.isCall()) {
        CallAnchor &A = Calls[I.DL.Line];
        A.Key = I.DL.Line;
        A.Callees.insert(I.isIndirectCall() ? std::string() : I.Callee);
      }
    }
  V.Calls.reserve(Calls.size());
  for (auto &[Key, A] : Calls)
    V.Calls.push_back(std::move(A));
  return V;
}

/// Stale call anchors come from the profile's call-target and inlinee
/// records; the body map alone cannot tell a call key from a block key.
std::vector<CallAnchor> extractStaleCallAnchors(const FunctionProfile &P) {
  std::map<uint32_t, CallAnchor> Calls;
  for (const auto &[K, Targets] : P.Calls) {
    CallAnchor &A = Calls[K.Index];
    A.Key = K.Index;
    for (const auto &[Callee, N] : Targets)
      A.Callees.insert(Callee);
  }
  for (const auto &[K, Map] : P.Inlinees) {
    CallAnchor &A = Calls[K.Index];
    A.Key = K.Index;
    for (const auto &[Callee, Sub] : Map)
      A.Callees.insert(Callee);
  }
  std::vector<CallAnchor> Out;
  Out.reserve(Calls.size());
  for (auto &[Key, A] : Calls)
    Out.push_back(std::move(A));
  return Out;
}

bool anchorsEqual(const CallAnchor &A, const CallAnchor &B) {
  // An indirect site ("" callee) accepts any target set: LBR profiles
  // record the concrete targets observed at a site where the IR records
  // no callee at all, so name intersection would never see them agree.
  if (A.Callees.count(std::string()) || B.Callees.count(std::string()))
    return true;
  const std::set<std::string> &Small =
      A.Callees.size() <= B.Callees.size() ? A.Callees : B.Callees;
  const std::set<std::string> &Big =
      A.Callees.size() <= B.Callees.size() ? B.Callees : A.Callees;
  for (const std::string &C : Small)
    if (Big.count(C))
      return true;
  return false;
}

/// Longest increasing subsequence (by second element) over \p Cand, which
/// is sorted by first element. Used by the unique-anchor fallback to keep
/// an order-consistent subset of candidate pairs.
std::vector<std::pair<uint32_t, uint32_t>>
longestIncreasingByFresh(const std::vector<std::pair<uint32_t, uint32_t>> &Cand) {
  const size_t N = Cand.size();
  std::vector<size_t> Tail;   // Tail[l] = index of smallest ending value of LIS of length l+1.
  std::vector<size_t> Parent(N, SIZE_MAX);
  for (size_t I = 0; I != N; ++I) {
    auto Cmp = [&](size_t A, uint32_t V) { return Cand[A].second < V; };
    auto It = std::lower_bound(Tail.begin(), Tail.end(), Cand[I].second, Cmp);
    if (It != Tail.begin())
      Parent[I] = *(It - 1);
    if (It == Tail.end())
      Tail.push_back(I);
    else
      *It = I;
  }
  std::vector<std::pair<uint32_t, uint32_t>> Out;
  if (Tail.empty())
    return Out;
  for (size_t I = Tail.back(); I != SIZE_MAX; I = Parent[I])
    Out.push_back(Cand[I]);
  std::reverse(Out.begin(), Out.end());
  return Out;
}

/// Aligns the two call-anchor sequences; returns matched (stale, fresh)
/// key pairs, ascending on both sides. LCS DP when affordable, else
/// unique-callee anchors filtered through an LIS.
std::vector<std::pair<uint32_t, uint32_t>>
alignCallAnchors(const std::vector<CallAnchor> &Stale,
                 const std::vector<CallAnchor> &Fresh, size_t MaxProduct) {
  std::vector<std::pair<uint32_t, uint32_t>> Out;
  const size_t N = Stale.size(), M = Fresh.size();
  if (!N || !M)
    return Out;
  if (N * M <= MaxProduct) {
    std::vector<std::vector<uint32_t>> DP(N + 1,
                                          std::vector<uint32_t>(M + 1, 0));
    for (size_t I = N; I-- > 0;)
      for (size_t J = M; J-- > 0;)
        DP[I][J] = anchorsEqual(Stale[I], Fresh[J])
                       ? DP[I + 1][J + 1] + 1
                       : std::max(DP[I + 1][J], DP[I][J + 1]);
    size_t I = 0, J = 0;
    while (I < N && J < M) {
      if (anchorsEqual(Stale[I], Fresh[J]) && DP[I][J] == DP[I + 1][J + 1] + 1) {
        Out.push_back({Stale[I].Key, Fresh[J].Key});
        ++I;
        ++J;
      } else if (DP[I + 1][J] >= DP[I][J + 1]) {
        ++I;
      } else {
        ++J;
      }
    }
    return Out;
  }

  // Fallback: match callee names that are unique on both sides, then keep
  // the largest order-consistent subset.
  std::map<std::string, std::vector<size_t>> StaleByCallee, FreshByCallee;
  for (size_t I = 0; I != N; ++I)
    for (const std::string &C : Stale[I].Callees)
      StaleByCallee[C].push_back(I);
  for (size_t J = 0; J != M; ++J)
    for (const std::string &C : Fresh[J].Callees)
      FreshByCallee[C].push_back(J);
  std::vector<std::pair<uint32_t, uint32_t>> Cand;
  for (const auto &[Callee, SIdx] : StaleByCallee) {
    if (Callee.empty() || SIdx.size() != 1)
      continue;
    auto It = FreshByCallee.find(Callee);
    if (It == FreshByCallee.end() || It->second.size() != 1)
      continue;
    Cand.push_back({Stale[SIdx[0]].Key, Fresh[It->second[0]].Key});
  }
  std::sort(Cand.begin(), Cand.end());
  Cand.erase(std::unique(Cand.begin(), Cand.end()), Cand.end());
  return longestIncreasingByFresh(Cand);
}

/// A computed stale→fresh key remapping: matched anchor pairs plus the
/// delta rule for the keys between them.
struct AlignedRemap {
  ProfileKind Kind = ProfileKind::ProbeBased;
  FreshView Fresh;
  std::set<uint32_t> StaleCallKeys;
  /// Matched (stale, fresh) pairs, ascending in both components. Probe
  /// mode seeds (1, 1): the entry block probe is id 1 on both sides.
  std::vector<std::pair<uint32_t, uint32_t>> Pairs;
  unsigned AnchorsTotal = 0;
  unsigned AnchorsMatched = 0;

  /// Maps \p StaleKey; returns false when the key has no trustworthy
  /// fresh counterpart (its count is dropped). Matched anchors map
  /// exactly; other keys shift by the delta of the nearest preceding
  /// matched anchor, rejected when the shifted key would cross the next
  /// matched anchor or (probe mode) land on a key of the wrong kind.
  bool map(uint32_t StaleKey, bool IsCallKey, uint32_t &Out) const {
    auto It = std::upper_bound(
        Pairs.begin(), Pairs.end(),
        std::make_pair(StaleKey, std::numeric_limits<uint32_t>::max()));
    int64_t Target;
    if (It != Pairs.begin()) {
      const auto &Prev = *(It - 1);
      if (Prev.first == StaleKey) {
        Out = Prev.second;
        return true;
      }
      Target = int64_t(StaleKey) + int64_t(Prev.second) - int64_t(Prev.first);
    } else {
      Target = StaleKey; // Head region: no anchor yet, delta 0.
    }
    if (Target <= 0)
      return false;
    if (It != Pairs.end() && Target >= int64_t(It->second))
      return false;
    uint32_t T = static_cast<uint32_t>(Target);
    if (Kind == ProfileKind::ProbeBased &&
        (IsCallKey ? !Fresh.CallIds.count(T) : !Fresh.BlockIds.count(T)))
      return false;
    Out = T;
    return true;
  }
};

AlignedRemap computeRemap(const FunctionProfile &AnchorSource,
                          const Function &F, ProfileKind Kind,
                          const MatcherConfig &Cfg) {
  AlignedRemap R;
  R.Kind = Kind;
  R.Fresh = extractFreshAnchors(F, Kind);
  std::vector<CallAnchor> Stale = extractStaleCallAnchors(AnchorSource);
  for (const CallAnchor &A : Stale)
    R.StaleCallKeys.insert(A.Key);
  R.Pairs = alignCallAnchors(Stale, R.Fresh.Calls, Cfg.MaxLCSProduct);
  R.AnchorsTotal = static_cast<unsigned>(Stale.size());
  R.AnchorsMatched = static_cast<unsigned>(R.Pairs.size());
  if (Kind == ProfileKind::ProbeBased && R.Fresh.BlockIds.count(1) &&
      (R.Pairs.empty() || (R.Pairs.front().first > 1 && R.Pairs.front().second > 1)))
    R.Pairs.insert(R.Pairs.begin(), {1u, 1u});
  return R;
}

MatchResult matchStaleProfileImpl(const FunctionProfile &P, const Function &F,
                                  const Module &M, ProfileKind Kind,
                                  const MatcherConfig &Cfg, unsigned Depth);

/// Rewrites \p P through \p R into \p Out, recursing into inlinee
/// profiles against their callee's fresh IR, accumulating \p S (which
/// must already carry R's anchor counts when the caller wants them).
void rewriteThroughRemap(const FunctionProfile &P, const AlignedRemap &R,
                         const Function &F, const Module &M, ProfileKind Kind,
                         const MatcherConfig &Cfg, unsigned Depth,
                         FunctionProfile &Out, MatchStats &S) {
  Out.Name = P.Name.empty() ? F.getName() : P.Name;
  Out.Guid = P.Guid ? P.Guid : F.getGuid();
  Out.Checksum = Kind == ProfileKind::ProbeBased ? F.ProbeCFGChecksum
                                                 : P.Checksum;
  Out.HeadSamples += P.HeadSamples;

  for (const auto &[K, N] : P.Body) {
    S.SamplesTotal += N;
    uint32_t NewIdx = 0;
    if (R.map(K.Index, R.StaleCallKeys.count(K.Index) != 0, NewIdx)) {
      Out.addBody({NewIdx, K.Disc}, N);
      S.SamplesRecovered += N;
    }
  }

  for (const auto &[K, Targets] : P.Calls) {
    uint32_t NewIdx = 0;
    if (!R.map(K.Index, /*IsCallKey=*/true, NewIdx))
      continue;
    for (const auto &[Callee, N] : Targets)
      Out.addCall({NewIdx, K.Disc}, Callee, N);
  }

  for (const auto &[K, Map] : P.Inlinees) {
    uint32_t NewIdx = 0;
    bool SiteOk = R.map(K.Index, /*IsCallKey=*/true, NewIdx);
    for (const auto &[Callee, Sub] : Map) {
      const uint64_t SubTotal = Sub.totalBodySamples();
      const Function *CalleeF = M.getFunction(Callee);
      if (!SiteOk || !CalleeF || Depth >= Cfg.MaxInlineeDepth) {
        S.SamplesTotal += SubTotal; // Lost with the vanished call site.
        continue;
      }
      bool SubStale =
          Kind == ProfileKind::ProbeBased
              ? (Sub.Checksum && CalleeF->HasProbes &&
                 Sub.Checksum != CalleeF->ProbeCFGChecksum)
              : lineProfileLooksStale(Sub, *CalleeF);
      if (!SubStale) {
        FunctionProfile &Dst = Out.getOrCreateInlinee({NewIdx, K.Disc}, Callee);
        if (Sub.Guid)
          Dst.Guid = Sub.Guid;
        if (Sub.Checksum)
          Dst.Checksum = Sub.Checksum;
        Dst.merge(Sub);
        S.SamplesTotal += SubTotal;
        S.SamplesRecovered += SubTotal;
        continue;
      }
      MatchResult Rec =
          matchStaleProfileImpl(Sub, *CalleeF, M, Kind, Cfg, Depth + 1);
      S.AnchorsTotal += Rec.Stats.AnchorsTotal;
      S.AnchorsMatched += Rec.Stats.AnchorsMatched;
      S.SamplesTotal += Rec.Stats.SamplesTotal;
      if (!Rec.Stats.Accepted)
        continue; // Dropped inlinee: the loader falls back to the
                  // callee's flat profile or cold-fills the body.
      S.SamplesRecovered += Rec.Stats.SamplesRecovered;
      FunctionProfile &Dst = Out.getOrCreateInlinee({NewIdx, K.Disc}, Callee);
      Dst.Guid = Rec.Recovered.Guid;
      Dst.Checksum = Rec.Recovered.Checksum;
      Dst.merge(Rec.Recovered);
    }
  }
}

void finalizeStats(MatchStats &S, const MatcherConfig &Cfg) {
  S.Confidence =
      S.SamplesTotal
          ? static_cast<double>(S.SamplesRecovered) / S.SamplesTotal
          : (S.AnchorsTotal
                 ? static_cast<double>(S.AnchorsMatched) / S.AnchorsTotal
                 : 1.0);
  S.Accepted = S.Confidence >= Cfg.MinConfidence;
}

MatchResult matchStaleProfileImpl(const FunctionProfile &P, const Function &F,
                                  const Module &M, ProfileKind Kind,
                                  const MatcherConfig &Cfg, unsigned Depth) {
  MatchResult R;
  AlignedRemap Remap = computeRemap(P, F, Kind, Cfg);
  R.Stats.AnchorsTotal = Remap.AnchorsTotal;
  R.Stats.AnchorsMatched = Remap.AnchorsMatched;
  rewriteThroughRemap(P, Remap, F, M, Kind, Cfg, Depth, R.Recovered, R.Stats);
  finalizeStats(R.Stats, Cfg);
  return R;
}

size_t countProfiledNodes(const ContextTrieNode &N) {
  size_t Count = N.HasProfile ? 1 : 0;
  for (const auto &[Key, Child] : N.Children)
    Count += countProfiledNodes(Child);
  return Count;
}

void mergeTrieNodeInto(ContextTrieNode &&Src, ContextTrieNode &Dst) {
  if (Dst.FuncName.empty())
    Dst.FuncName = Src.FuncName;
  Dst.ShouldBeInlined |= Src.ShouldBeInlined;
  if (Src.HasProfile) {
    if (!Dst.HasProfile) {
      Dst.Profile = std::move(Src.Profile);
      Dst.HasProfile = true;
    } else {
      if (Src.Profile.Guid)
        Dst.Profile.Guid = Src.Profile.Guid;
      if (Src.Profile.Checksum)
        Dst.Profile.Checksum = Src.Profile.Checksum;
      Dst.Profile.merge(Src.Profile);
    }
  }
  for (auto &[Key, Child] : Src.Children) {
    auto It = Dst.Children.find(Key);
    if (It == Dst.Children.end())
      Dst.Children.emplace(Key, std::move(Child));
    else
      mergeTrieNodeInto(std::move(Child), It->second);
  }
}

/// Per-function matching state shared by every context of that function.
struct FnMatchState {
  const Function *F = nullptr;
  FunctionProfile Merged;
  AlignedRemap Remap;
  MatchStats Stats;
  bool Accepted = false;
};

void copyTrieNode(const ContextTrieNode &Src, ContextTrieNode &Dst,
                  const Module &M, const MatcherConfig &Cfg,
                  const std::map<std::string, FnMatchState> &Fns,
                  ContextMatchSummary &Summary) {
  Dst.FuncName = Src.FuncName;
  Dst.HasProfile = Src.HasProfile;
  Dst.ShouldBeInlined = Src.ShouldBeInlined;

  auto FnIt = Fns.find(Src.FuncName);
  const FnMatchState *St = FnIt == Fns.end() ? nullptr : &FnIt->second;
  const bool NodeStale = St && Src.HasProfile && Src.Profile.Checksum &&
                         Src.Profile.Checksum != St->F->ProbeCFGChecksum;
  if (NodeStale && St->Accepted) {
    MatchStats Ignored; // Per-function stats were taken from the merged view.
    rewriteThroughRemap(Src.Profile, St->Remap, *St->F, M,
                        ProfileKind::ProbeBased, Cfg, 0, Dst.Profile, Ignored);
    ++Summary.ContextsRemapped;
  } else {
    Dst.Profile = Src.Profile;
  }

  // Child edges are keyed by call sites in *this* function's probe space;
  // re-key them through its remap. Profile-less intermediate nodes of a
  // stale function live in the old space too.
  const bool RemapSites =
      St && St->Accepted && (NodeStale || !Src.HasProfile);
  for (const auto &[Key, Child] : Src.Children) {
    uint32_t Site = Key.first;
    if (RemapSites && Site != 0) {
      uint32_t NewSite = 0;
      if (!St->Remap.map(Site, /*IsCallKey=*/true, NewSite)) {
        Summary.ContextsDropped +=
            static_cast<unsigned>(countProfiledNodes(Child));
        continue; // The call site no longer exists.
      }
      Site = NewSite;
    }
    ContextTrieNode Tmp;
    copyTrieNode(Child, Tmp, M, Cfg, Fns, Summary);
    auto It = Dst.Children.find({Site, Key.second});
    if (It == Dst.Children.end())
      Dst.Children.emplace(std::make_pair(Site, Key.second), std::move(Tmp));
    else
      mergeTrieNodeInto(std::move(Tmp), It->second);
  }
}

} // namespace

MatchResult matchStaleProfile(const FunctionProfile &P, const Function &F,
                              const Module &M, ProfileKind Kind,
                              const MatcherConfig &Cfg) {
  return matchStaleProfileImpl(P, F, M, Kind, Cfg, 0);
}

bool lineProfileLooksStale(const FunctionProfile &P, const Function &F) {
  std::vector<CallAnchor> Stale = extractStaleCallAnchors(P);
  if (Stale.empty())
    return false;
  FreshView Fresh = extractFreshAnchors(F, ProfileKind::LineBased);
  for (const CallAnchor &A : Stale) {
    auto It = std::lower_bound(
        Fresh.Calls.begin(), Fresh.Calls.end(), A.Key,
        [](const CallAnchor &FA, uint32_t Key) { return FA.Key < Key; });
    if (It == Fresh.Calls.end() || It->Key != A.Key || !anchorsEqual(A, *It))
      return true;
  }
  return false;
}

std::unique_ptr<ContextProfile>
matchContextProfile(const ContextProfile &CS, const Module &M,
                    const MatcherConfig &Cfg, ContextMatchSummary &Summary) {
  // Pass 1: merge the anchor view of every stale context per function.
  std::map<std::string, FnMatchState> Fns;
  CS.forEachNode([&](const SampleContext &, const ContextTrieNode &N) {
    const Function *F = M.getFunction(N.FuncName);
    if (!F || !F->HasProbes || !N.Profile.Checksum ||
        N.Profile.Checksum == F->ProbeCFGChecksum)
      return;
    FnMatchState &St = Fns[N.FuncName];
    St.F = F;
    St.Merged.merge(N.Profile);
  });
  if (Fns.empty())
    return nullptr;

  // Pass 2: one alignment per function, confidence from the merged view.
  for (auto &[Name, St] : Fns) {
    St.Remap = computeRemap(St.Merged, *St.F, ProfileKind::ProbeBased, Cfg);
    St.Stats.AnchorsTotal = St.Remap.AnchorsTotal;
    St.Stats.AnchorsMatched = St.Remap.AnchorsMatched;
    FunctionProfile Trial;
    rewriteThroughRemap(St.Merged, St.Remap, *St.F, M,
                        ProfileKind::ProbeBased, Cfg, 0, Trial, St.Stats);
    finalizeStats(St.Stats, Cfg);
    St.Accepted = St.Stats.Accepted;
    Summary.PerFunction.push_back({Name, St.Stats});
    if (St.Accepted) {
      ++Summary.FunctionsMatched;
      Summary.AnchorsMatched += St.Stats.AnchorsMatched;
      Summary.CountsRecovered += St.Stats.SamplesRecovered;
    } else {
      ++Summary.FunctionsBelowConfidence;
    }
  }

  // Pass 3: corrected copy of the trie.
  auto Out = std::make_unique<ContextProfile>();
  Out->Kind = CS.Kind;
  copyTrieNode(CS.Root, Out->Root, M, Cfg, Fns, Summary);
  return Out;
}

} // namespace csspgo

//===- sim/Sampler.cpp - PMU sampling model --------------------------------===//
//
// The sampler state machine lives in the executor's hot loop; this file
// anchors the module (data types are header-only).
//
//===----------------------------------------------------------------------===//

#include "sim/Sampler.h"

namespace csspgo {
// Intentionally empty.
} // namespace csspgo

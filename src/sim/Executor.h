//===- sim/Executor.h - Machine code executor -------------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a linked Binary with the cycle cost model, producing both the
/// performance measurement (cycles) and, when sampling is enabled, the
/// stream of synchronized LBR + stack samples that profile generation
/// consumes. Also hosts the instrumentation counter runtime.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_SIM_EXECUTOR_H
#define CSSPGO_SIM_EXECUTOR_H

#include "codegen/MachineModule.h"
#include "sim/CostModel.h"
#include "sim/Sampler.h"
#include "trace/TraceFormat.h"

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace csspgo {

struct ExecConfig {
  CostModel Costs;
  SamplerConfig Sampler;
  /// Core-instruction-trace collection (per-branch packets with
  /// delta-compressed timestamps; see trace/TraceFormat.h). Orthogonal to
  /// the sampler — a trace run normally disables sampling. Packet writes
  /// are charged at Costs.TraceByteCost cycles per byte.
  TraceConfig Trace;
  /// Hard cap on retired instructions (safety against runaway programs).
  uint64_t MaxInstructions = 4ull << 30;
  /// Hard cap on call depth.
  uint32_t MaxCallDepth = 512;
  /// Collect a per-instruction execution histogram (diagnostics; sized
  /// like Binary::Code in the result).
  bool CollectInstCounts = false;
  /// Collect indirect-call value profiles (part of the instrumentation
  /// runtime: per call site, per target slot execution counts).
  bool CollectValueProfile = false;
  /// Run the straightforward reference interpreter instead of the
  /// predecoded fast path. Both produce bit-identical RunResults (same
  /// Rng draw order, same sample stream); the reference exists as the
  /// oracle for the equivalence suite and for debugging.
  bool ReferenceMode = false;
};

/// Field population by configuration:
/// - Completed/Error/ExitValue and the scalar microarchitectural counters
///   (Cycles .. IndirectMispredicts) are always populated.
/// - Samples is populated only when ExecConfig::Sampler.Enabled; its
///   capacity is pre-reserved from MaxInstructions / PeriodCycles (capped)
///   so growth is amortized away from the hot loop.
/// - InstCounts is populated only with ExecConfig::CollectInstCounts
///   (sized like Binary::Code, else empty).
/// - ValueProfile is populated only with ExecConfig::CollectValueProfile.
/// - Counters is always sized NumCounters + 1, but only an instrumented
///   binary (one with InstrProfIncr anchors) produces non-zero entries.
struct RunResult {
  bool Completed = false;
  std::string Error;
  int64_t ExitValue = 0;

  uint64_t Cycles = 0;
  uint64_t Instructions = 0;
  uint64_t TakenBranches = 0;
  uint64_t CondBranches = 0;
  uint64_t CondTaken = 0;
  uint64_t UncondJumps = 0;
  uint64_t Mispredicts = 0;
  uint64_t ICacheMisses = 0;
  uint64_t Calls = 0;
  uint64_t IndirectCalls = 0;
  uint64_t IndirectMispredicts = 0;

  /// PMU samples (only with Sampler.Enabled).
  std::vector<PerfSample> Samples;
  /// Per-instruction execution counts (only with CollectInstCounts).
  std::vector<uint64_t> InstCounts;
  /// Indirect-call value profile (only with CollectValueProfile):
  /// (origin guid, call-site id) -> target slot -> count.
  std::map<std::pair<uint64_t, uint32_t>, std::map<int64_t, uint64_t>>
      ValueProfile;
  /// Instrumentation counters (index 0 unused; counter ids are 1-based
  /// within functions, re-based by CounterBase).
  std::vector<uint64_t> Counters;
  /// Recorded trace (only with Trace.Enabled). Cycles already includes
  /// Trace.WriteCycles — the modeled perturbation of writing the trace.
  TraceData Trace;
};

/// Runs \p Bin starting at function \p Entry with the given global memory
/// image. \p Memory is modified in place.
RunResult execute(const Binary &Bin, const std::string &Entry,
                  std::vector<int64_t> &Memory, const ExecConfig &Config);

} // namespace csspgo

#endif // CSSPGO_SIM_EXECUTOR_H

//===- sim/CostModel.cpp - Microarchitectural cost model -------------------===//

#include "sim/CostModel.h"

namespace csspgo {

uint32_t CostModel::baseCost(Opcode Op) const {
  switch (Op) {
  case Opcode::Mul:
    return 3;
  case Opcode::Div:
  case Opcode::Mod:
    return 16;
  case Opcode::Load:
  case Opcode::Store:
    return 2;
  case Opcode::Select:
    return 1;
  case Opcode::Call:
    return CallCost;
  case Opcode::Ret:
    return RetCost;
  case Opcode::InstrProfIncr:
    return CounterCost;
  case Opcode::PseudoProbe:
    return 0;
  default:
    return 1;
  }
}

} // namespace csspgo

//===- sim/CostModel.h - Microarchitectural cost model ----------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cycle cost model of the machine simulator. PGO's payoff channels are
/// modeled explicitly so that better profiles translate into fewer cycles
/// through the same causal chain as on real hardware:
/// - taken branches cost a fetch redirect (rewards Ext-TSP layout that
///   maximizes fallthrough);
/// - a direct-mapped i-cache penalizes sparse/hot-cold-mixed code
///   (rewards selective inlining, function splitting, smaller code);
/// - a 2-bit branch predictor penalizes unbiased branches (rewards
///   if-conversion of unpredictable branches);
/// - calls/returns carry frame overhead (rewards inlining hot calls);
/// - instrumentation counter increments cost real cycles (the 73% Instr
///   PGO profiling overhead of Table I).
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_SIM_COSTMODEL_H
#define CSSPGO_SIM_COSTMODEL_H

#include "ir/Instruction.h"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace csspgo {

struct CostModel {
  uint32_t TakenBranchCost = 2;
  uint32_t MispredictPenalty = 14;
  uint32_t CallCost = 7; ///< Argument setup + prologue/epilogue overhead.
  uint32_t RetCost = 3;
  uint32_t ICacheMissPenalty = 24;
  uint32_t ICacheLines = 384; ///< Total lines (24 KiB at 64 B lines).
  uint32_t ICacheWays = 4;    ///< Set associativity.
  uint32_t ICacheLineBytes = 64;
  uint32_t CounterCost = 5;
  /// Modeled cost of delivering one PMU sample interrupt (charged when a
  /// sample fires). 0 keeps sampling free, matching the classic "sampling
  /// is (nearly) zero overhead" baseline; experiments that want the real
  /// overhead column set it.
  uint32_t SampleInterruptCost = 0;
  /// Modeled cost per trace byte written in the core-instruction-trace
  /// collection mode (charged as packets are emitted). Only paid when
  /// ExecConfig::Trace.Enabled.
  uint32_t TraceByteCost = 2;     ///< InstrProfIncr: inc m64 + store traffic.
  uint32_t BranchPredictorEntries = 4096;

  /// Base execution cost of \p Op in cycles.
  uint32_t baseCost(Opcode Op) const;
};

/// A set-associative LRU instruction cache model.
class ICache {
public:
  explicit ICache(const CostModel &CM)
      : Ways(CM.ICacheWays ? CM.ICacheWays : 1),
        Sets(CM.ICacheLines / (CM.ICacheWays ? CM.ICacheWays : 1)),
        LineBytes(CM.ICacheLineBytes),
        Tags(static_cast<size_t>(Sets) * Ways, ~0ull),
        Age(static_cast<size_t>(Sets) * Ways, 0) {}

  /// Accesses \p Addr; returns true on miss. (The straightforward
  /// lookup; does not consult the same-line shortcut, so mixing access()
  /// and accessPrecomputed() on one instance is fine only if the caller
  /// sticks to a single entry point — each machine does.)
  bool access(uint64_t Addr) {
    uint64_t Line = Addr / LineBytes;
    size_t Set = static_cast<size_t>(Line % Sets) * Ways;
    ++Clock;
    size_t Victim = Set;
    for (size_t W = Set; W != Set + Ways; ++W) {
      if (Tags[W] == Line) {
        Age[W] = Clock;
        return false;
      }
      if (Age[W] < Age[Victim])
        Victim = W;
    }
    Tags[Victim] = Line;
    Age[Victim] = Clock;
    return true;
  }

  /// Line number of \p Addr (for precomputing access indices at decode
  /// time; code addresses are static).
  uint64_t lineOf(uint64_t Addr) const { return Addr / LineBytes; }
  /// First way slot of the set holding \p Line.
  size_t setOf(uint64_t Line) const {
    return static_cast<size_t>(Line % Sets) * Ways;
  }

  /// access() with the division folded out: \p Line and \p Set come from
  /// lineOf()/setOf(), precomputed once per static instruction. The LRU
  /// state transition is identical to a fresh lookup; a same-line
  /// shortcut (straight-line code stays in one 64B line) skips the way
  /// scan but still bumps the clock and the line's age.
  bool accessPrecomputed(uint64_t Line, size_t Set) {
    if (Line == LastLine) {
      // Age[LastWay] is flushed lazily when the streak ends; only the
      // streak's final clock value matters for LRU.
      ++Clock;
      return false;
    }
    if (LastLine != ~0ull)
      Age[LastWay] = Clock;
    ++Clock;
    size_t Victim = Set;
    for (size_t W = Set; W != Set + Ways; ++W) {
      if (Tags[W] == Line) {
        Age[W] = Clock;
        LastLine = Line;
        LastWay = W;
        return false;
      }
      if (Age[W] < Age[Victim])
        Victim = W;
    }
    Tags[Victim] = Line;
    Age[Victim] = Clock;
    LastLine = Line;
    LastWay = Victim;
    return true;
  }

  /// accessPrecomputed() for callers that filter same-line accesses
  /// themselves (one register compare in the interpreter loop instead of
  /// a call): \p Pending is the number of consecutive accesses to the
  /// previously-accessed line the caller absorbed since the last call.
  /// Folding their clock ticks in here, before the flush and the new
  /// lookup, reproduces the eager clock sequence exactly — only the
  /// streak's final clock value ever reaches the Age array.
  bool accessStreaked(uint64_t Line, size_t Set, uint64_t &Pending) {
    Clock += Pending;
    Pending = 0;
    if (LastLine != ~0ull)
      Age[LastWay] = Clock;
    ++Clock;
    size_t Victim = Set;
    for (size_t W = Set; W != Set + Ways; ++W) {
      if (Tags[W] == Line) {
        Age[W] = Clock;
        LastLine = Line;
        LastWay = W;
        return false;
      }
      if (Age[W] < Age[Victim])
        Victim = W;
    }
    Tags[Victim] = Line;
    Age[Victim] = Clock;
    LastLine = Line;
    LastWay = Victim;
    return true;
  }

  void reset() {
    std::fill(Tags.begin(), Tags.end(), ~0ull);
    std::fill(Age.begin(), Age.end(), 0);
    LastLine = ~0ull;
    LastWay = 0;
  }

private:
  uint32_t Ways;
  uint64_t Sets;
  uint64_t LineBytes;
  std::vector<uint64_t> Tags;
  std::vector<uint64_t> Age;
  uint64_t Clock = 0;
  /// Same-line shortcut state (~0 = invalid; code addresses never reach
  /// line ~0).
  uint64_t LastLine = ~0ull;
  size_t LastWay = 0;
};

/// A table of 2-bit saturating counters for conditional branches.
class BranchPredictor {
public:
  explicit BranchPredictor(const CostModel &CM)
      : Table(CM.BranchPredictorEntries, 1) {}

  /// Predicts and updates for the branch at \p Addr; returns true if the
  /// prediction was wrong.
  bool mispredicted(uint64_t Addr, bool Taken) {
    return mispredictedAt(indexOf(Addr), Taken);
  }

  /// Table index of the branch at \p Addr (for precomputing at decode
  /// time; branch addresses are static).
  size_t indexOf(uint64_t Addr) const { return (Addr >> 1) % Table.size(); }

  /// mispredicted() with the modulo folded out.
  bool mispredictedAt(size_t Idx, bool Taken) {
    uint8_t &State = Table[Idx];
    bool Predicted = State >= 2;
    if (Taken) {
      if (State < 3)
        ++State;
    } else if (State > 0) {
      --State;
    }
    return Predicted != Taken;
  }

private:
  std::vector<uint8_t> Table;
};

} // namespace csspgo

#endif // CSSPGO_SIM_COSTMODEL_H

//===- sim/CostModel.h - Microarchitectural cost model ----------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cycle cost model of the machine simulator. PGO's payoff channels are
/// modeled explicitly so that better profiles translate into fewer cycles
/// through the same causal chain as on real hardware:
/// - taken branches cost a fetch redirect (rewards Ext-TSP layout that
///   maximizes fallthrough);
/// - a direct-mapped i-cache penalizes sparse/hot-cold-mixed code
///   (rewards selective inlining, function splitting, smaller code);
/// - a 2-bit branch predictor penalizes unbiased branches (rewards
///   if-conversion of unpredictable branches);
/// - calls/returns carry frame overhead (rewards inlining hot calls);
/// - instrumentation counter increments cost real cycles (the 73% Instr
///   PGO profiling overhead of Table I).
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_SIM_COSTMODEL_H
#define CSSPGO_SIM_COSTMODEL_H

#include "ir/Instruction.h"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace csspgo {

struct CostModel {
  uint32_t TakenBranchCost = 2;
  uint32_t MispredictPenalty = 14;
  uint32_t CallCost = 7; ///< Argument setup + prologue/epilogue overhead.
  uint32_t RetCost = 3;
  uint32_t ICacheMissPenalty = 24;
  uint32_t ICacheLines = 384; ///< Total lines (24 KiB at 64 B lines).
  uint32_t ICacheWays = 4;    ///< Set associativity.
  uint32_t ICacheLineBytes = 64;
  uint32_t CounterCost = 5;     ///< InstrProfIncr: inc m64 + store traffic.
  uint32_t BranchPredictorEntries = 4096;

  /// Base execution cost of \p Op in cycles.
  uint32_t baseCost(Opcode Op) const;
};

/// A set-associative LRU instruction cache model.
class ICache {
public:
  explicit ICache(const CostModel &CM)
      : Ways(CM.ICacheWays ? CM.ICacheWays : 1),
        Sets(CM.ICacheLines / (CM.ICacheWays ? CM.ICacheWays : 1)),
        LineBytes(CM.ICacheLineBytes),
        Tags(static_cast<size_t>(Sets) * Ways, ~0ull),
        Age(static_cast<size_t>(Sets) * Ways, 0) {}

  /// Accesses \p Addr; returns true on miss.
  bool access(uint64_t Addr) {
    uint64_t Line = Addr / LineBytes;
    size_t Set = static_cast<size_t>(Line % Sets) * Ways;
    ++Clock;
    size_t Victim = Set;
    for (size_t W = Set; W != Set + Ways; ++W) {
      if (Tags[W] == Line) {
        Age[W] = Clock;
        return false;
      }
      if (Age[W] < Age[Victim])
        Victim = W;
    }
    Tags[Victim] = Line;
    Age[Victim] = Clock;
    return true;
  }

  void reset() {
    std::fill(Tags.begin(), Tags.end(), ~0ull);
    std::fill(Age.begin(), Age.end(), 0);
  }

private:
  uint32_t Ways;
  uint64_t Sets;
  uint64_t LineBytes;
  std::vector<uint64_t> Tags;
  std::vector<uint64_t> Age;
  uint64_t Clock = 0;
};

/// A table of 2-bit saturating counters for conditional branches.
class BranchPredictor {
public:
  explicit BranchPredictor(const CostModel &CM)
      : Table(CM.BranchPredictorEntries, 1) {}

  /// Predicts and updates for the branch at \p Addr; returns true if the
  /// prediction was wrong.
  bool mispredicted(uint64_t Addr, bool Taken) {
    uint8_t &State = Table[(Addr >> 1) % Table.size()];
    bool Predicted = State >= 2;
    if (Taken) {
      if (State < 3)
        ++State;
    } else if (State > 0) {
      --State;
    }
    return Predicted != Taken;
  }

private:
  std::vector<uint8_t> Table;
};

} // namespace csspgo

#endif // CSSPGO_SIM_COSTMODEL_H

//===- sim/InstrRuntime.h - Instrumentation runtime -------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profile-dump side of traditional instrumentation: turns the raw
/// global counter array produced by an instrumented run into per-function
/// counter vectors (the equivalent of writing a .profraw file at exit).
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_SIM_INSTRRUNTIME_H
#define CSSPGO_SIM_INSTRRUNTIME_H

#include "codegen/MachineModule.h"
#include "sim/Executor.h"

#include <map>
#include <string>
#include <vector>

namespace csspgo {

/// Raw instrumentation dump: function name -> counter values indexed by the
/// function-local counter id (index 0 unused; ids are 1-based).
struct CounterDump {
  std::map<std::string, std::vector<uint64_t>> Functions;
};

/// Extracts the per-function counters of \p Result (an instrumented run on
/// \p Bin).
CounterDump dumpCounters(const Binary &Bin, const RunResult &Result);

/// Accumulates \p Src into \p Dst (multi-run aggregation). Counters clamp
/// at UINT64_MAX through the shared saturatingAccum instead of wrapping;
/// returns the number of counter slots that saturated so callers can
/// report clamping the way the profile merge paths do.
uint64_t mergeCounterDumps(CounterDump &Dst, const CounterDump &Src);

} // namespace csspgo

#endif // CSSPGO_SIM_INSTRRUNTIME_H

//===- sim/InstrRuntime.cpp - Instrumentation runtime ----------------------===//

#include "sim/InstrRuntime.h"

#include "profile/FunctionProfile.h"

namespace csspgo {

CounterDump dumpCounters(const Binary &Bin, const RunResult &Result) {
  CounterDump Dump;
  for (const auto &[Guid, BaseNum] : Bin.CounterOwners) {
    auto [Base, Num] = BaseNum;
    if (!Num)
      continue;
    auto NameIt = Bin.DebugNames.find(Guid);
    if (NameIt == Bin.DebugNames.end())
      continue;
    std::vector<uint64_t> Counters(Num + 1, 0);
    for (uint32_t C = 1; C <= Num; ++C) {
      uint32_t Global = Base + C;
      if (Global < Result.Counters.size())
        Counters[C] = Result.Counters[Global];
    }
    Dump.Functions[NameIt->second] = std::move(Counters);
  }
  return Dump;
}

uint64_t mergeCounterDumps(CounterDump &Dst, const CounterDump &Src) {
  uint64_t Saturated = 0;
  for (const auto &[Name, Counters] : Src.Functions) {
    std::vector<uint64_t> &D = Dst.Functions[Name];
    if (D.size() < Counters.size())
      D.resize(Counters.size(), 0);
    for (size_t I = 0; I != Counters.size(); ++I)
      Saturated += saturatingAccum(D[I], Counters[I]);
  }
  return Saturated;
}

} // namespace csspgo

//===- sim/Executor.cpp - Machine code executor ----------------------------===//
//
// Two interpreters live here, both producing bit-identical RunResults:
//
// - ReferenceMachine: the original straightforward interpreter. One heap
//   vector of registers per frame, per-operand tag dispatch, std::map BTB,
//   allocating sampler snapshots. Kept as the oracle for the equivalence
//   suite (ExecConfig::ReferenceMode) and as readable documentation of the
//   semantics.
//
// - FastMachine: the production fast path. Bin.Code is predecoded once per
//   execute() into a dense internal form that resolves every operand's
//   imm/reg tag up front (branchless (Regs[Idx] & Mask) | Imm reads), all
//   frames share one contiguous register-file stack (calls and returns
//   stop allocating), the sampler writes LBR/stack snapshots into reused
//   buffers, and the indirect-call BTB is a dense per-call-site table
//   sized during predecode.
//
// Equivalence is pinned by tests/PropertyTest.cpp (ExecutorEquivalence)
// and measured by bench/micro_executor.cpp.
//
//===----------------------------------------------------------------------===//

#include "sim/Executor.h"

#include "ir/GuestArith.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace csspgo {

namespace {

/// Pre-reservation for RunResult::Samples: expected sample count if the
/// run hits the instruction cap (cycles >= instructions, so this slightly
/// overshoots), clamped so a huge MaxInstructions cannot balloon memory.
size_t sampleReserveEstimate(const ExecConfig &Config) {
  if (!Config.Sampler.Enabled || Config.Sampler.PeriodCycles == 0)
    return 0;
  uint64_t Estimate = Config.MaxInstructions / Config.Sampler.PeriodCycles;
  return static_cast<size_t>(std::min<uint64_t>(Estimate, 1u << 16));
}

//===----------------------------------------------------------------------===//
// Reference interpreter
//===----------------------------------------------------------------------===//

struct Frame {
  uint32_t FuncIdx = 0;
  std::vector<int64_t> Regs;
  /// Global instruction index to resume at in the caller (SIZE_MAX for the
  /// outermost frame).
  size_t RetIdx = SIZE_MAX;
  /// Destination register in the caller for the return value.
  RegId RetDst = InvalidReg;
};

class ReferenceMachine {
public:
  ReferenceMachine(const Binary &Bin, std::vector<int64_t> &Memory,
                   const ExecConfig &Config)
      : Bin(Bin), Memory(Memory), Config(Config), Cache(Config.Costs),
        Predictor(Config.Costs), Ring(Config.Sampler.LBRDepth),
        Jitter(Config.Sampler.Seed),
        Tracer(Config.Trace, Config.Costs.TraceByteCost) {}

  RunResult run(const std::string &Entry);

private:
  int64_t eval(const Operand &O, const Frame &F) const {
    if (O.isImm())
      return O.getImm();
    if (O.isReg())
      return F.Regs[O.getReg()];
    return 0;
  }

  uint64_t memIndex(int64_t Addr) const {
    uint64_t Size = Memory.size();
    assert(Size && "memory must be non-empty");
    int64_t M = Addr % static_cast<int64_t>(Size);
    if (M < 0)
      M += static_cast<int64_t>(Size);
    return static_cast<uint64_t>(M);
  }

  void recordBranch(uint64_t Src, uint64_t Dst) {
    Ring.record(Src, Dst);
    ++Result.TakenBranches;
    Result.Cycles += Config.Costs.TakenBranchCost;
  }

  std::vector<uint64_t> captureStack(size_t PCIdx) const {
    std::vector<uint64_t> Stack;
    Stack.reserve(Frames.size());
    Stack.push_back(Bin.Code[PCIdx].Addr);
    for (size_t I = Frames.size(); I-- > 0;) {
      if (Frames[I].RetIdx != SIZE_MAX)
        Stack.push_back(Bin.Code[Frames[I].RetIdx].Addr);
    }
    return Stack;
  }

  void maybeSample(size_t PCIdx) {
    if (!Config.Sampler.Enabled)
      return;
    // Deliver a pending (skidded) sample once its delay has elapsed.
    if (SkidCountdown > 0) {
      if (--SkidCountdown == 0) {
        Pending.Stack = captureStack(PCIdx);
        Result.Samples.push_back(std::move(Pending));
        Pending = PerfSample();
      }
    }
    if (Result.Cycles < NextSampleAt)
      return;
    NextSampleAt = Result.Cycles + Config.Sampler.PeriodCycles;
    // The PMU interrupt itself costs cycles (modeled perturbation; 0 by
    // default). Charged after the next-sample point is armed so the
    // sampling period is unperturbed.
    Result.Cycles += Config.Costs.SampleInterruptCost;
    if (Config.Sampler.Precise) {
      PerfSample S;
      S.LBR = Ring.snapshot();
      S.Stack = captureStack(PCIdx);
      Result.Samples.push_back(std::move(S));
      return;
    }
    // Imprecise: LBR now, stack after a short skid. If a sample is already
    // pending, drop the new one (PMU interrupts do not nest).
    if (SkidCountdown > 0)
      return;
    Pending.LBR = Ring.snapshot();
    if (Config.Sampler.MaxSkidInstructions == 0) {
      // Zero skid: deliver at this instruction (Rng::nextBelow(0) is
      // invalid — there is no skid to draw).
      Pending.Stack = captureStack(PCIdx);
      Result.Samples.push_back(std::move(Pending));
      Pending = PerfSample();
      return;
    }
    SkidCountdown =
        1 + Jitter.nextBelow(Config.Sampler.MaxSkidInstructions);
  }

  /// Folds the recorded trace into the result; every exit path returns
  /// through here.
  RunResult finish() {
    if (Config.Trace.Enabled)
      Result.Trace = Tracer.finish(Result.Cycles);
    return std::move(Result);
  }

  const Binary &Bin;
  std::vector<int64_t> &Memory;
  const ExecConfig &Config;
  ICache Cache;
  BranchPredictor Predictor;
  LBRRing Ring;
  Rng Jitter;
  TraceRecorder Tracer;

  std::vector<Frame> Frames;
  std::map<uint64_t, uint64_t> IndirectBTB;
  RunResult Result;
  uint64_t NextSampleAt = 0;
  PerfSample Pending;
  uint32_t SkidCountdown = 0;
};

RunResult ReferenceMachine::run(const std::string &Entry) {
  uint32_t EntryIdx = Bin.funcIndexByName(Entry);
  if (EntryIdx == ~0u) {
    Result.Error = "entry function '" + Entry + "' not found";
    return finish();
  }
  Result.Counters.assign(Bin.NumCounters + 1, 0);
  if (Config.CollectInstCounts)
    Result.InstCounts.assign(Bin.Code.size(), 0);
  Result.Samples.reserve(sampleReserveEstimate(Config));
  NextSampleAt = Config.Sampler.PeriodCycles;

  Frame Top;
  Top.FuncIdx = EntryIdx;
  Top.Regs.assign(Bin.Funcs[EntryIdx].NumRegs, 0);
  Frames.push_back(std::move(Top));

  size_t PC = Bin.Funcs[EntryIdx].EntryIdx;

  while (true) {
    if (Result.Instructions >= Config.MaxInstructions) {
      Result.Error = "instruction limit exceeded";
      return finish();
    }
    assert(PC < Bin.Code.size() && "PC out of range");
    const MInst &I = Bin.Code[PC];
    Frame &F = Frames.back();

    ++Result.Instructions;
    if (Config.CollectInstCounts)
      ++Result.InstCounts[PC];
    Result.Cycles += Config.Costs.baseCost(I.Op);
    if (Cache.access(I.Addr)) {
      ++Result.ICacheMisses;
      Result.Cycles += Config.Costs.ICacheMissPenalty;
    }
    maybeSample(PC);

    size_t NextPC = PC + 1;
    switch (I.Op) {
    case Opcode::Add:
      F.Regs[I.Dst] = guestAdd(eval(I.A, F), eval(I.B, F));
      break;
    case Opcode::Sub:
      F.Regs[I.Dst] = guestSub(eval(I.A, F), eval(I.B, F));
      break;
    case Opcode::Mul:
      F.Regs[I.Dst] = guestMul(eval(I.A, F), eval(I.B, F));
      break;
    case Opcode::Div:
      F.Regs[I.Dst] = guestDiv(eval(I.A, F), eval(I.B, F));
      break;
    case Opcode::Mod:
      F.Regs[I.Dst] = guestMod(eval(I.A, F), eval(I.B, F));
      break;
    case Opcode::And:
      F.Regs[I.Dst] = eval(I.A, F) & eval(I.B, F);
      break;
    case Opcode::Or:
      F.Regs[I.Dst] = eval(I.A, F) | eval(I.B, F);
      break;
    case Opcode::Xor:
      F.Regs[I.Dst] = eval(I.A, F) ^ eval(I.B, F);
      break;
    case Opcode::Shl:
      F.Regs[I.Dst] = guestShl(eval(I.A, F), eval(I.B, F));
      break;
    case Opcode::Shr:
      F.Regs[I.Dst] = guestShr(eval(I.A, F), eval(I.B, F));
      break;
    case Opcode::CmpEQ:
      F.Regs[I.Dst] = eval(I.A, F) == eval(I.B, F);
      break;
    case Opcode::CmpNE:
      F.Regs[I.Dst] = eval(I.A, F) != eval(I.B, F);
      break;
    case Opcode::CmpLT:
      F.Regs[I.Dst] = eval(I.A, F) < eval(I.B, F);
      break;
    case Opcode::CmpLE:
      F.Regs[I.Dst] = eval(I.A, F) <= eval(I.B, F);
      break;
    case Opcode::CmpGT:
      F.Regs[I.Dst] = eval(I.A, F) > eval(I.B, F);
      break;
    case Opcode::CmpGE:
      F.Regs[I.Dst] = eval(I.A, F) >= eval(I.B, F);
      break;
    case Opcode::Mov:
      F.Regs[I.Dst] = eval(I.A, F);
      break;
    case Opcode::Select:
      F.Regs[I.Dst] = eval(I.A, F) ? eval(I.B, F) : eval(I.C, F);
      break;
    case Opcode::Load:
      F.Regs[I.Dst] = Memory[memIndex(eval(I.A, F))];
      break;
    case Opcode::Store:
      Memory[memIndex(eval(I.A, F))] = eval(I.B, F);
      break;
    case Opcode::InstrProfIncr:
      ++Result.Counters[I.CounterIdx];
      break;
    case Opcode::Br:
      NextPC = static_cast<size_t>(I.Target);
      ++Result.UncondJumps;
      recordBranch(I.Addr, Bin.Code[NextPC].Addr);
      break;
    case Opcode::CondBr: {
      bool Cond = eval(I.A, F) != 0;
      bool Taken = Cond != I.InvertCond;
      ++Result.CondBranches;
      if (Predictor.mispredicted(I.Addr, Taken)) {
        ++Result.Mispredicts;
        Result.Cycles += Config.Costs.MispredictPenalty;
      }
      if (Taken) {
        ++Result.CondTaken;
        NextPC = static_cast<size_t>(I.Target);
        recordBranch(I.Addr, Bin.Code[NextPC].Addr);
      }
      if (Config.Trace.Enabled)
        Tracer.condBranch(Taken, Result.Cycles);
      break;
    }
    case Opcode::CallIndirect:
    case Opcode::Call: {
      uint32_t CalleeIdx = I.CalleeIdx;
      if (I.Op == Opcode::CallIndirect) {
        // Resolve through the dispatch table; out-of-range slots wrap
        // (total semantics, mirrors the generator's contract).
        assert(!Bin.FuncTable.empty() && "indirect call without table");
        uint64_t Slot = static_cast<uint64_t>(eval(I.A, F)) %
                        Bin.FuncTable.size();
        CalleeIdx = Bin.FuncTable[Slot];
        ++Result.IndirectCalls;
        // Indirect-branch target prediction: a last-target BTB entry per
        // call site. This is the channel indirect-call promotion pays
        // through — promoted sites become direct calls and stop missing.
        uint64_t &Last = IndirectBTB[I.Addr];
        if (Last != Bin.Funcs[CalleeIdx].EntryIdx + 1) {
          ++Result.IndirectMispredicts;
          ++Result.Mispredicts;
          Result.Cycles += Config.Costs.MispredictPenalty;
          Last = Bin.Funcs[CalleeIdx].EntryIdx + 1;
        }
        if (Config.CollectValueProfile && I.CallSiteId)
          ++Result.ValueProfile[{I.OriginGuid, I.CallSiteId}]
                               [static_cast<int64_t>(Slot)];
        if (Config.Trace.Enabled)
          Tracer.indirectTarget(CalleeIdx, Result.Cycles);
      }
      const MachineFunction &Callee = Bin.Funcs[CalleeIdx];
      ++Result.Calls;
      if (I.IsTailCall) {
        // Tail-call elimination: reuse the frame; the caller disappears
        // from the sampled stack.
        Frame NewF;
        NewF.FuncIdx = CalleeIdx;
        NewF.Regs.assign(Callee.NumRegs, 0);
        for (size_t A = 0; A != I.Args.size() && A < Callee.NumParams; ++A)
          NewF.Regs[A] = eval(I.Args[A], F);
        NewF.RetIdx = F.RetIdx;
        NewF.RetDst = F.RetDst;
        Frames.back() = std::move(NewF);
        NextPC = Callee.EntryIdx;
        // A tail call is an unconditional jump in the binary.
        recordBranch(I.Addr, Bin.Code[NextPC].Addr);
        break;
      }
      if (Frames.size() >= Config.MaxCallDepth) {
        Result.Error = "call depth limit exceeded in " + Callee.Name;
        return finish();
      }
      Frame NewF;
      NewF.FuncIdx = CalleeIdx;
      NewF.Regs.assign(Callee.NumRegs, 0);
      for (size_t A = 0; A != I.Args.size() && A < Callee.NumParams; ++A)
        NewF.Regs[A] = eval(I.Args[A], F);
      NewF.RetIdx = PC + 1;
      NewF.RetDst = I.Dst;
      Frames.push_back(std::move(NewF));
      NextPC = Callee.EntryIdx;
      recordBranch(I.Addr, Bin.Code[NextPC].Addr);
      break;
    }
    case Opcode::Ret: {
      int64_t Value = eval(I.A, F);
      size_t RetIdx = F.RetIdx;
      RegId RetDst = F.RetDst;
      Frames.pop_back();
      if (Frames.empty() || RetIdx == SIZE_MAX) {
        Result.ExitValue = Value;
        Result.Completed = true;
        return finish();
      }
      if (RetDst != InvalidReg)
        Frames.back().Regs[RetDst] = Value;
      NextPC = RetIdx;
      recordBranch(I.Addr, Bin.Code[NextPC].Addr);
      break;
    }
    case Opcode::PseudoProbe:
      assert(false && "pseudo probes never lower to machine code");
      break;
    }
    PC = NextPC;
  }
}

//===----------------------------------------------------------------------===//
// Fast path
//===----------------------------------------------------------------------===//

/// Predecoded operand. An operand read is the branchless expression
///   Regs[Idx] + ImmBits
/// against a register window whose slot 0 is a dedicated always-zero pad
/// (registers are biased by one: register r lives at slot r + 1):
/// - register operand: Idx = reg + 1, ImmBits = 0
/// - immediate:        Idx = 0,       ImmBits = imm   (0 + imm)
/// - none:             Idx = 0,       ImmBits = 0     (reads as 0)
struct DecOp {
  uint32_t Idx = 0;
  int64_t ImmBits = 0;
};

/// One predecoded instruction. 1:1 with Binary::Code, so branch targets
/// keep their global indices. All per-operand tags, cost-model lookups,
/// target addresses and callee metadata are resolved here, outside the
/// hot loop.
struct DecInst {
  // Field order is deliberate: the first 64 bytes are everything an ALU
  // op (and the dispatch/cost/i-cache bookkeeping) touches, so the
  // common case reads one cache line; branch extras come next and
  // call-only fields last.
  Opcode Op = Opcode::Mov;
  bool IsTailCall = false;
  bool InvertCond = false;
  /// Destination slot, biased like DecOp::Idx (register r -> r + 1;
  /// InvalidReg wraps to 0, the sentinel for "no destination").
  RegId Dst = 0;
  DecOp A, B;
  uint32_t BaseCost = 0;
  /// Precomputed i-cache set and line and branch-predictor index for
  /// Addr (static per instruction; folds the divisions out of the hot
  /// loop).
  uint32_t ICSet = 0;
  uint64_t ICLine = 0;
  /// Br/CondBr taken target; direct calls: callee entry index.
  size_t Target = 0;

  DecOp C; ///< Third operand (Select only).
  uint32_t BPIdx = 0;
  uint64_t Addr = 0;
  /// Address of the instruction at Target.
  uint64_t TargetAddr = 0;

  /// Direct calls.
  uint32_t CalleeIdx = ~0u;
  uint32_t CalleeNumRegs = 0;

  /// Argument operands live in a shared flat array [ArgsBegin,
  /// ArgsBegin + NumArgs). For direct calls NumArgs is pre-clamped to the
  /// callee's parameter count; indirect calls clamp at dispatch time.
  uint32_t ArgsBegin = 0;
  uint32_t NumArgs = 0;

  /// Calls: resume point in the caller and its address (avoids the
  /// Bin.Code indirection in captureStack).
  size_t RetIdx = SIZE_MAX;
  uint64_t RetAddr = 0;

  uint32_t CounterIdx = 0;

  /// CallIndirect: dense BTB slot, and dense value-profile site slot
  /// (~0u when value profiling is off or the site has no id).
  uint32_t BTBSlot = ~0u;
  uint32_t VPSlot = ~0u;
};

/// Frame metadata for the contiguous register-file stack: frame I's
/// window is RegStack[RegBase, RegBase + NumRegs + 1); slot RegBase + 0
/// is the always-zero pad backing immediate/none operand reads, register
/// r lives at RegBase + r + 1.
struct FrameMeta {
  uint32_t FuncIdx = 0;
  size_t RegBase = 0;
  size_t RetIdx = SIZE_MAX;
  uint64_t RetAddr = 0;
  /// Biased like DecInst::Dst (0 = no destination).
  RegId RetDst = 0;
};

class FastMachine {
public:
  FastMachine(const Binary &Bin, std::vector<int64_t> &Memory,
              const ExecConfig &Config)
      : Bin(Bin), Memory(Memory), Config(Config), Cache(Config.Costs),
        Predictor(Config.Costs), Ring(Config.Sampler.LBRDepth),
        Jitter(Config.Sampler.Seed),
        Tracer(Config.Trace, Config.Costs.TraceByteCost) {}

  RunResult run(const std::string &Entry);

private:
  static DecOp decOp(const Operand &O) {
    DecOp D;
    if (O.isReg())
      D.Idx = O.getReg() + 1;
    else if (O.isImm())
      D.ImmBits = O.getImm();
    return D;
  }

  void decode();

  uint64_t memIndex(int64_t Addr) const {
    // In-range addresses (the common case) skip the division; the modulo
    // is the identity for 0 <= Addr < MemSize.
    if (static_cast<uint64_t>(Addr) < MemSize)
      return static_cast<uint64_t>(Addr);
    int64_t M = Addr % static_cast<int64_t>(MemSize);
    if (M < 0)
      M += static_cast<int64_t>(MemSize);
    return static_cast<uint64_t>(M);
  }

  void recordBranch(uint64_t Src, uint64_t Dst, uint64_t &Cycles) {
    Ring.record(Src, Dst);
    ++Result.TakenBranches;
    Cycles += Config.Costs.TakenBranchCost;
  }

  void captureStackInto(size_t PCIdx, std::vector<uint64_t> &Out) const {
    Out.clear();
    Out.push_back(Dec[PCIdx].Addr);
    for (size_t I = Frames.size(); I-- > 0;) {
      if (Frames[I].RetIdx != SIZE_MAX)
        Out.push_back(Frames[I].RetAddr);
    }
  }

  void maybeSample(size_t PCIdx, uint64_t &Cycles) {
    if (SkidCountdown > 0) {
      if (--SkidCountdown == 0) {
        captureStackInto(PCIdx, Pending.Stack);
        Result.Samples.push_back(std::move(Pending));
        Pending.LBR.clear();
        Pending.Stack.clear();
      }
    }
    if (Cycles < NextSampleAt)
      return;
    NextSampleAt = Cycles + Config.Sampler.PeriodCycles;
    // The PMU interrupt itself costs cycles (modeled perturbation; 0 by
    // default). Charged after the next-sample point is armed so the
    // sampling period is unperturbed.
    Cycles += Config.Costs.SampleInterruptCost;
    if (Precise) {
      Result.Samples.emplace_back();
      PerfSample &S = Result.Samples.back();
      Ring.snapshotInto(S.LBR);
      captureStackInto(PCIdx, S.Stack);
      return;
    }
    if (SkidCountdown > 0)
      return;
    Ring.snapshotInto(Pending.LBR);
    if (Config.Sampler.MaxSkidInstructions == 0) {
      // Zero skid: deliver at this instruction (Rng::nextBelow(0) is
      // invalid — there is no skid to draw).
      captureStackInto(PCIdx, Pending.Stack);
      Result.Samples.push_back(std::move(Pending));
      Pending.LBR.clear();
      Pending.Stack.clear();
      return;
    }
    SkidCountdown =
        1 + Jitter.nextBelow(Config.Sampler.MaxSkidInstructions);
  }

  /// Folds the dense per-site value-profile counts into the map shape the
  /// reference interpreter builds incrementally.
  void foldValueProfile() {
    if (VPCounts.empty())
      return;
    size_t TableSize = Bin.FuncTable.size();
    for (size_t S = 0; S != VPSites.size(); ++S) {
      const uint64_t *Row = VPCounts.data() + S * TableSize;
      std::map<int64_t, uint64_t> *Dst = nullptr;
      for (size_t Slot = 0; Slot != TableSize; ++Slot) {
        if (!Row[Slot])
          continue;
        if (!Dst)
          Dst = &Result.ValueProfile[VPSites[S]];
        (*Dst)[static_cast<int64_t>(Slot)] += Row[Slot];
      }
    }
  }

  RunResult finish() {
    foldValueProfile();
    if (Config.Trace.Enabled)
      Result.Trace = Tracer.finish(Result.Cycles);
    return std::move(Result);
  }

  const Binary &Bin;
  std::vector<int64_t> &Memory;
  const ExecConfig &Config;
  ICache Cache;
  BranchPredictor Predictor;
  LBRRing Ring;
  Rng Jitter;
  TraceRecorder Tracer;

  std::vector<DecInst> Dec;
  std::vector<DecOp> ArgOps;
  std::vector<std::pair<uint64_t, uint32_t>> VPSites;

  std::vector<FrameMeta> Frames;
  std::vector<int64_t> RegStack;
  std::vector<int64_t> ArgBuf;
  std::vector<uint64_t> BTB;
  std::vector<uint64_t> VPCounts;

  RunResult Result;
  uint64_t MemSize = 0;
  uint64_t NextSampleAt = 0;
  PerfSample Pending;
  uint32_t SkidCountdown = 0;
  bool Precise = true;
};

void FastMachine::decode() {
  Dec.resize(Bin.Code.size());
  uint32_t NumBTBSlots = 0;
  for (size_t Idx = 0; Idx != Bin.Code.size(); ++Idx) {
    const MInst &M = Bin.Code[Idx];
    DecInst &D = Dec[Idx];
    D.Op = M.Op;
    D.Dst = M.Dst + 1; // Biased; InvalidReg wraps to the 0 sentinel.
    D.A = decOp(M.A);
    D.B = decOp(M.B);
    D.C = decOp(M.C);
    D.BaseCost = Config.Costs.baseCost(M.Op);
    D.Addr = M.Addr;
    D.ICLine = Cache.lineOf(M.Addr);
    D.ICSet = static_cast<uint32_t>(Cache.setOf(D.ICLine));
    D.BPIdx = static_cast<uint32_t>(Predictor.indexOf(M.Addr));
    D.InvertCond = M.InvertCond;
    D.IsTailCall = M.IsTailCall;
    D.CounterIdx = M.CounterIdx;

    switch (M.Op) {
    case Opcode::Br:
    case Opcode::CondBr:
      D.Target = static_cast<size_t>(M.Target);
      D.TargetAddr = Bin.Code[D.Target].Addr;
      break;
    case Opcode::Call: {
      const MachineFunction &Callee = Bin.Funcs[M.CalleeIdx];
      D.CalleeIdx = M.CalleeIdx;
      D.CalleeNumRegs = Callee.NumRegs;
      D.Target = Callee.EntryIdx;
      D.TargetAddr = Bin.Code[Callee.EntryIdx].Addr;
      D.NumArgs = static_cast<uint32_t>(
          std::min<size_t>(M.Args.size(), Callee.NumParams));
      D.ArgsBegin = static_cast<uint32_t>(ArgOps.size());
      for (uint32_t A = 0; A != D.NumArgs; ++A)
        ArgOps.push_back(decOp(M.Args[A]));
      D.RetIdx = Idx + 1;
      D.RetAddr = Idx + 1 < Bin.Code.size() ? Bin.Code[Idx + 1].Addr : 0;
      break;
    }
    case Opcode::CallIndirect: {
      D.BTBSlot = NumBTBSlots++;
      if (Config.CollectValueProfile && M.CallSiteId) {
        D.VPSlot = static_cast<uint32_t>(VPSites.size());
        VPSites.push_back({M.OriginGuid, M.CallSiteId});
      }
      // The callee (and its parameter count) is resolved per dispatch;
      // keep every argument operand and clamp at the call.
      D.NumArgs = static_cast<uint32_t>(M.Args.size());
      D.ArgsBegin = static_cast<uint32_t>(ArgOps.size());
      for (const Operand &O : M.Args)
        ArgOps.push_back(decOp(O));
      D.RetIdx = Idx + 1;
      D.RetAddr = Idx + 1 < Bin.Code.size() ? Bin.Code[Idx + 1].Addr : 0;
      break;
    }
    default:
      break;
    }
  }
  BTB.assign(NumBTBSlots, 0);
  if (!VPSites.empty())
    VPCounts.assign(VPSites.size() * Bin.FuncTable.size(), 0);
}

RunResult FastMachine::run(const std::string &Entry) {
  uint32_t EntryIdx = Bin.funcIndexByName(Entry);
  if (EntryIdx == ~0u) {
    Result.Error = "entry function '" + Entry + "' not found";
    return finish();
  }
  decode();

  Result.Counters.assign(Bin.NumCounters + 1, 0);
  const bool CollectInstCounts = Config.CollectInstCounts;
  if (CollectInstCounts)
    Result.InstCounts.assign(Bin.Code.size(), 0);
  Result.Samples.reserve(sampleReserveEstimate(Config));
  NextSampleAt = Config.Sampler.PeriodCycles;
  Precise = Config.Sampler.Precise;
  const bool SamplerOn = Config.Sampler.Enabled;
  const bool Tracing = Config.Trace.Enabled;
  MemSize = Memory.size();
  assert(MemSize && "memory must be non-empty");

  // Size the register stack for the common case up front: a mid-depth
  // call chain of the widest frames. resize() handles deeper growth.
  size_t MaxWindow = 1;
  for (const MachineFunction &F : Bin.Funcs)
    MaxWindow = std::max<size_t>(MaxWindow, F.NumRegs + 1);
  RegStack.reserve(std::min<size_t>(MaxWindow * 64, 1u << 20));
  Frames.reserve(std::min<size_t>(Config.MaxCallDepth, 1u << 16));

  Frames.push_back({EntryIdx, 0, SIZE_MAX, 0, 0});
  RegStack.resize(Bin.Funcs[EntryIdx].NumRegs + 1, 0);

  size_t PC = Bin.Funcs[EntryIdx].EntryIdx;
  const DecInst *Code = Dec.data();
  const uint64_t MaxInstructions = Config.MaxInstructions;
  const uint32_t ICacheMissPenalty = Config.Costs.ICacheMissPenalty;
  const uint32_t MispredictPenalty = Config.Costs.MispredictPenalty;

  // Retired-instruction and cycle counters live in registers for the
  // duration of the loop; every exit path syncs them into Result.
  uint64_t Instructions = 0;
  uint64_t Cycles = 0;
  auto syncCounters = [&] {
    Result.Instructions = Instructions;
    Result.Cycles = Cycles;
  };

  // Cached pointer to the current frame's register window; reloaded only
  // after frame surgery (call/ret/tail call may reallocate RegStack).
  int64_t *R = RegStack.data();
  auto reloadR = [&] { R = RegStack.data() + Frames.back().RegBase; };

  // Register-resident mirrors of the sampler gate state; maybeSample is
  // the only writer, so they are refreshed after each call.
  uint64_t NextAt = NextSampleAt;
  uint32_t Skid = SkidCountdown;
  [[maybe_unused]] const size_t DecSize = Dec.size();

  size_t NextPC = PC;
  auto val = [&](const DecOp &O) { return R[O.Idx] + O.ImmBits; };

#if defined(__GNUC__) || defined(__clang__)
  // Threaded dispatch (computed goto): every handler ends with its own
  // indirect jump, so the host branch predictor learns per-opcode
  // successor patterns instead of funneling all dispatch through one
  // switch branch. Observable behavior is identical to the portable
  // switch loop in the #else branch — same prologue, same handler
  // bodies, same draw order. Table order must match the Opcode
  // enumerators exactly (CallIndirect shares the Call handler, which
  // branches on I.Op).
  static const void *const JumpTable[] = {
      &&Op_Add,    &&Op_Sub,
      &&Op_Mul,    &&Op_Div,
      &&Op_Mod,    &&Op_And,
      &&Op_Or,     &&Op_Xor,
      &&Op_Shl,    &&Op_Shr,
      &&Op_CmpEQ,  &&Op_CmpNE,
      &&Op_CmpLT,  &&Op_CmpLE,
      &&Op_CmpGT,  &&Op_CmpGE,
      &&Op_Mov,    &&Op_Select,
      &&Op_Load,   &&Op_Store,
      &&Op_Call,   &&Op_Call /* CallIndirect */,
      &&Op_Ret,    &&Op_Br,
      &&Op_CondBr, &&Op_PseudoProbe,
      &&Op_InstrProfIncr};
  const DecInst *IP = Code + PC;
  // Same-line i-cache accesses (straight-line code inside one 64B line —
  // the common case) are filtered here with one register compare; their
  // clock ticks are folded in at the next line change, reproducing the
  // eager clock sequence exactly (see ICache::accessStreaked).
  uint64_t ICLine = ~0ull;
  uint64_t ICPending = 0;

  // Per-instruction prologue (retire accounting, i-cache, sampler gate)
  // followed by the jump to the next handler.
#define CSSPGO_DISPATCH()                                                      \
  do {                                                                         \
    PC = NextPC;                                                               \
    if (Instructions >= MaxInstructions)                                       \
      goto LimitHit;                                                           \
    assert(PC < DecSize && "PC out of range");                                 \
    IP = Code + PC;                                                            \
    ++Instructions;                                                            \
    if (CollectInstCounts)                                                     \
      ++Result.InstCounts[PC];                                                 \
    Cycles += IP->BaseCost;                                                    \
    if (IP->ICLine == ICLine) {                                                \
      ++ICPending;                                                             \
    } else {                                                                   \
      ICLine = IP->ICLine;                                                     \
      if (Cache.accessStreaked(ICLine, IP->ICSet, ICPending)) {                \
        ++Result.ICacheMisses;                                                 \
        Cycles += ICacheMissPenalty;                                           \
      }                                                                        \
    }                                                                          \
    if (SamplerOn && (Skid != 0 || Cycles >= NextAt)) {                        \
      maybeSample(PC, Cycles);                                                 \
      NextAt = NextSampleAt;                                                   \
      Skid = SkidCountdown;                                                    \
    }                                                                          \
    NextPC = PC + 1;                                                           \
    goto *JumpTable[static_cast<size_t>(IP->Op)];                              \
  } while (0)

  CSSPGO_DISPATCH();

Op_Add: {
  const DecInst &I = *IP;
  R[I.Dst] = guestAdd(val(I.A), val(I.B));
  CSSPGO_DISPATCH();
}
Op_Sub: {
  const DecInst &I = *IP;
  R[I.Dst] = guestSub(val(I.A), val(I.B));
  CSSPGO_DISPATCH();
}
Op_Mul: {
  const DecInst &I = *IP;
  R[I.Dst] = guestMul(val(I.A), val(I.B));
  CSSPGO_DISPATCH();
}
Op_Div: {
  const DecInst &I = *IP;
  R[I.Dst] = guestDiv(val(I.A), val(I.B));
  CSSPGO_DISPATCH();
}
Op_Mod: {
  const DecInst &I = *IP;
  R[I.Dst] = guestMod(val(I.A), val(I.B));
  CSSPGO_DISPATCH();
}
Op_And: {
  const DecInst &I = *IP;
  R[I.Dst] = val(I.A) & val(I.B);
  CSSPGO_DISPATCH();
}
Op_Or: {
  const DecInst &I = *IP;
  R[I.Dst] = val(I.A) | val(I.B);
  CSSPGO_DISPATCH();
}
Op_Xor: {
  const DecInst &I = *IP;
  R[I.Dst] = val(I.A) ^ val(I.B);
  CSSPGO_DISPATCH();
}
Op_Shl: {
  const DecInst &I = *IP;
  R[I.Dst] = guestShl(val(I.A), val(I.B));
  CSSPGO_DISPATCH();
}
Op_Shr: {
  const DecInst &I = *IP;
  R[I.Dst] = guestShr(val(I.A), val(I.B));
  CSSPGO_DISPATCH();
}
Op_CmpEQ: {
  const DecInst &I = *IP;
  R[I.Dst] = val(I.A) == val(I.B);
  CSSPGO_DISPATCH();
}
Op_CmpNE: {
  const DecInst &I = *IP;
  R[I.Dst] = val(I.A) != val(I.B);
  CSSPGO_DISPATCH();
}
Op_CmpLT: {
  const DecInst &I = *IP;
  R[I.Dst] = val(I.A) < val(I.B);
  CSSPGO_DISPATCH();
}
Op_CmpLE: {
  const DecInst &I = *IP;
  R[I.Dst] = val(I.A) <= val(I.B);
  CSSPGO_DISPATCH();
}
Op_CmpGT: {
  const DecInst &I = *IP;
  R[I.Dst] = val(I.A) > val(I.B);
  CSSPGO_DISPATCH();
}
Op_CmpGE: {
  const DecInst &I = *IP;
  R[I.Dst] = val(I.A) >= val(I.B);
  CSSPGO_DISPATCH();
}
Op_Mov: {
  const DecInst &I = *IP;
  R[I.Dst] = val(I.A);
  CSSPGO_DISPATCH();
}
Op_Select: {
  const DecInst &I = *IP;
  R[I.Dst] = val(I.A) ? val(I.B) : val(I.C);
  CSSPGO_DISPATCH();
}
Op_Load: {
  const DecInst &I = *IP;
  R[I.Dst] = Memory[memIndex(val(I.A))];
  CSSPGO_DISPATCH();
}
Op_Store: {
  const DecInst &I = *IP;
  Memory[memIndex(val(I.A))] = val(I.B);
  CSSPGO_DISPATCH();
}
Op_InstrProfIncr: {
  const DecInst &I = *IP;
  ++Result.Counters[I.CounterIdx];
  CSSPGO_DISPATCH();
}
Op_Br: {
  const DecInst &I = *IP;
  NextPC = I.Target;
  ++Result.UncondJumps;
  recordBranch(I.Addr, I.TargetAddr, Cycles);
  CSSPGO_DISPATCH();
}
Op_CondBr: {
  const DecInst &I = *IP;
  bool Cond = val(I.A) != 0;
  bool Taken = Cond != I.InvertCond;
  ++Result.CondBranches;
  if (Predictor.mispredictedAt(I.BPIdx, Taken)) {
    ++Result.Mispredicts;
    Cycles += MispredictPenalty;
  }
  if (Taken) {
    ++Result.CondTaken;
    NextPC = I.Target;
    recordBranch(I.Addr, I.TargetAddr, Cycles);
  }
  if (Tracing)
    Tracer.condBranch(Taken, Cycles);
  CSSPGO_DISPATCH();
}
Op_Call: {
  const DecInst &I = *IP;
  uint32_t CalleeIdx;
  uint32_t CalleeNumRegs;
  size_t CalleeEntry;
  uint64_t CalleeEntryAddr;
  uint32_t NumArgs = I.NumArgs;
  if (I.Op == Opcode::CallIndirect) {
    assert(!Bin.FuncTable.empty() && "indirect call without table");
    uint64_t Slot = static_cast<uint64_t>(val(I.A)) % Bin.FuncTable.size();
    CalleeIdx = Bin.FuncTable[Slot];
    ++Result.IndirectCalls;
    const MachineFunction &Callee = Bin.Funcs[CalleeIdx];
    uint64_t &Last = BTB[I.BTBSlot];
    if (Last != Callee.EntryIdx + 1) {
      ++Result.IndirectMispredicts;
      ++Result.Mispredicts;
      Cycles += MispredictPenalty;
      Last = Callee.EntryIdx + 1;
    }
    if (I.VPSlot != ~0u)
      ++VPCounts[I.VPSlot * Bin.FuncTable.size() + Slot];
    if (Tracing)
      Tracer.indirectTarget(CalleeIdx, Cycles);
    CalleeNumRegs = Callee.NumRegs;
    CalleeEntry = Callee.EntryIdx;
    CalleeEntryAddr = Bin.Code[Callee.EntryIdx].Addr;
    NumArgs = std::min(NumArgs, Callee.NumParams);
  } else {
    CalleeIdx = I.CalleeIdx;
    CalleeNumRegs = I.CalleeNumRegs;
    CalleeEntry = I.Target;
    CalleeEntryAddr = I.TargetAddr;
  }
  ++Result.Calls;

  // Evaluate the arguments against the caller window before any frame
  // surgery (the register stack may reallocate or, for tail calls, the
  // window itself is about to be replaced).
  ArgBuf.clear();
  const DecOp *Args = ArgOps.data() + I.ArgsBegin;
  for (uint32_t A = 0; A != NumArgs; ++A)
    ArgBuf.push_back(val(Args[A]));

  size_t Window = CalleeNumRegs + 1;
  if (I.IsTailCall) {
    // Tail-call elimination: reuse the frame slot; the caller
    // disappears from the sampled stack. Shrink-then-grow
    // zero-initializes the fresh window (including the pad slot).
    FrameMeta &F = Frames.back();
    RegStack.resize(F.RegBase);
    RegStack.resize(F.RegBase + Window);
    for (uint32_t A = 0; A != NumArgs; ++A)
      RegStack[F.RegBase + 1 + A] = ArgBuf[A];
    F.FuncIdx = CalleeIdx;
    reloadR();
    NextPC = CalleeEntry;
    // A tail call is an unconditional jump in the binary.
    recordBranch(I.Addr, CalleeEntryAddr, Cycles);
    CSSPGO_DISPATCH();
  }
  if (Frames.size() >= Config.MaxCallDepth) {
    Result.Error = "call depth limit exceeded in " + Bin.Funcs[CalleeIdx].Name;
    syncCounters();
    return finish();
  }
  size_t Base = RegStack.size();
  RegStack.resize(Base + Window);
  for (uint32_t A = 0; A != NumArgs; ++A)
    RegStack[Base + 1 + A] = ArgBuf[A];
  Frames.push_back({CalleeIdx, Base, I.RetIdx, I.RetAddr, I.Dst});
  reloadR();
  NextPC = CalleeEntry;
  recordBranch(I.Addr, CalleeEntryAddr, Cycles);
  CSSPGO_DISPATCH();
}
Op_Ret: {
  const DecInst &I = *IP;
  int64_t Value = val(I.A);
  FrameMeta F = Frames.back();
  Frames.pop_back();
  RegStack.resize(F.RegBase);
  if (Frames.empty() || F.RetIdx == SIZE_MAX) {
    Result.ExitValue = Value;
    Result.Completed = true;
    syncCounters();
    return finish();
  }
  if (F.RetDst != 0)
    RegStack[Frames.back().RegBase + F.RetDst] = Value;
  reloadR();
  NextPC = F.RetIdx;
  recordBranch(I.Addr, F.RetAddr, Cycles);
  CSSPGO_DISPATCH();
}
Op_PseudoProbe: {
  assert(false && "pseudo probes never lower to machine code");
  CSSPGO_DISPATCH();
}
LimitHit:
  Result.Error = "instruction limit exceeded";
  syncCounters();
  return finish();
#undef CSSPGO_DISPATCH

#else // Portable switch dispatch; behavior identical to the above.
  while (true) {
    if (Instructions >= MaxInstructions) {
      Result.Error = "instruction limit exceeded";
      syncCounters();
      return finish();
    }
    assert(PC < DecSize && "PC out of range");
    const DecInst &I = Code[PC];

    ++Instructions;
    if (CollectInstCounts)
      ++Result.InstCounts[PC];
    Cycles += I.BaseCost;
    if (Cache.accessPrecomputed(I.ICLine, I.ICSet)) {
      ++Result.ICacheMisses;
      Cycles += ICacheMissPenalty;
    }
    // Inline gate for the common no-op case (no pending skidded sample,
    // period not yet elapsed); maybeSample handles the rest.
    if (SamplerOn && (Skid != 0 || Cycles >= NextAt)) {
      maybeSample(PC, Cycles);
      NextAt = NextSampleAt;
      Skid = SkidCountdown;
    }

    NextPC = PC + 1;
    switch (I.Op) {
    case Opcode::Add:
      R[I.Dst] = guestAdd(val(I.A), val(I.B));
      break;
    case Opcode::Sub:
      R[I.Dst] = guestSub(val(I.A), val(I.B));
      break;
    case Opcode::Mul:
      R[I.Dst] = guestMul(val(I.A), val(I.B));
      break;
    case Opcode::Div:
      R[I.Dst] = guestDiv(val(I.A), val(I.B));
      break;
    case Opcode::Mod:
      R[I.Dst] = guestMod(val(I.A), val(I.B));
      break;
    case Opcode::And:
      R[I.Dst] = val(I.A) & val(I.B);
      break;
    case Opcode::Or:
      R[I.Dst] = val(I.A) | val(I.B);
      break;
    case Opcode::Xor:
      R[I.Dst] = val(I.A) ^ val(I.B);
      break;
    case Opcode::Shl:
      R[I.Dst] = guestShl(val(I.A), val(I.B));
      break;
    case Opcode::Shr:
      R[I.Dst] = guestShr(val(I.A), val(I.B));
      break;
    case Opcode::CmpEQ:
      R[I.Dst] = val(I.A) == val(I.B);
      break;
    case Opcode::CmpNE:
      R[I.Dst] = val(I.A) != val(I.B);
      break;
    case Opcode::CmpLT:
      R[I.Dst] = val(I.A) < val(I.B);
      break;
    case Opcode::CmpLE:
      R[I.Dst] = val(I.A) <= val(I.B);
      break;
    case Opcode::CmpGT:
      R[I.Dst] = val(I.A) > val(I.B);
      break;
    case Opcode::CmpGE:
      R[I.Dst] = val(I.A) >= val(I.B);
      break;
    case Opcode::Mov:
      R[I.Dst] = val(I.A);
      break;
    case Opcode::Select:
      R[I.Dst] = val(I.A) ? val(I.B) : val(I.C);
      break;
    case Opcode::Load:
      R[I.Dst] = Memory[memIndex(val(I.A))];
      break;
    case Opcode::Store:
      Memory[memIndex(val(I.A))] = val(I.B);
      break;
    case Opcode::InstrProfIncr:
      ++Result.Counters[I.CounterIdx];
      break;
    case Opcode::Br:
      NextPC = I.Target;
      ++Result.UncondJumps;
      recordBranch(I.Addr, I.TargetAddr, Cycles);
      break;
    case Opcode::CondBr: {
      bool Cond = val(I.A) != 0;
      bool Taken = Cond != I.InvertCond;
      ++Result.CondBranches;
      if (Predictor.mispredictedAt(I.BPIdx, Taken)) {
        ++Result.Mispredicts;
        Cycles += MispredictPenalty;
      }
      if (Taken) {
        ++Result.CondTaken;
        NextPC = I.Target;
        recordBranch(I.Addr, I.TargetAddr, Cycles);
      }
      if (Tracing)
        Tracer.condBranch(Taken, Cycles);
      break;
    }
    case Opcode::CallIndirect:
    case Opcode::Call: {
      uint32_t CalleeIdx;
      uint32_t CalleeNumRegs;
      size_t CalleeEntry;
      uint64_t CalleeEntryAddr;
      uint32_t NumArgs = I.NumArgs;
      if (I.Op == Opcode::CallIndirect) {
        assert(!Bin.FuncTable.empty() && "indirect call without table");
        uint64_t Slot =
            static_cast<uint64_t>(val(I.A)) % Bin.FuncTable.size();
        CalleeIdx = Bin.FuncTable[Slot];
        ++Result.IndirectCalls;
        const MachineFunction &Callee = Bin.Funcs[CalleeIdx];
        uint64_t &Last = BTB[I.BTBSlot];
        if (Last != Callee.EntryIdx + 1) {
          ++Result.IndirectMispredicts;
          ++Result.Mispredicts;
          Cycles += MispredictPenalty;
          Last = Callee.EntryIdx + 1;
        }
        if (I.VPSlot != ~0u)
          ++VPCounts[I.VPSlot * Bin.FuncTable.size() + Slot];
        if (Tracing)
          Tracer.indirectTarget(CalleeIdx, Cycles);
        CalleeNumRegs = Callee.NumRegs;
        CalleeEntry = Callee.EntryIdx;
        CalleeEntryAddr = Bin.Code[Callee.EntryIdx].Addr;
        NumArgs = std::min(NumArgs, Callee.NumParams);
      } else {
        CalleeIdx = I.CalleeIdx;
        CalleeNumRegs = I.CalleeNumRegs;
        CalleeEntry = I.Target;
        CalleeEntryAddr = I.TargetAddr;
      }
      ++Result.Calls;

      // Evaluate the arguments against the caller window before any
      // frame surgery (the register stack may reallocate or, for tail
      // calls, the window itself is about to be replaced).
      ArgBuf.clear();
      const DecOp *Args = ArgOps.data() + I.ArgsBegin;
      for (uint32_t A = 0; A != NumArgs; ++A)
        ArgBuf.push_back(val(Args[A]));

      size_t Window = CalleeNumRegs + 1;
      if (I.IsTailCall) {
        // Tail-call elimination: reuse the frame slot; the caller
        // disappears from the sampled stack. Shrink-then-grow
        // zero-initializes the fresh window (including the pad slot).
        FrameMeta &F = Frames.back();
        RegStack.resize(F.RegBase);
        RegStack.resize(F.RegBase + Window);
        for (uint32_t A = 0; A != NumArgs; ++A)
          RegStack[F.RegBase + 1 + A] = ArgBuf[A];
        F.FuncIdx = CalleeIdx;
        reloadR();
        NextPC = CalleeEntry;
        // A tail call is an unconditional jump in the binary.
        recordBranch(I.Addr, CalleeEntryAddr, Cycles);
        break;
      }
      if (Frames.size() >= Config.MaxCallDepth) {
        Result.Error =
            "call depth limit exceeded in " + Bin.Funcs[CalleeIdx].Name;
        syncCounters();
        return finish();
      }
      size_t Base = RegStack.size();
      RegStack.resize(Base + Window);
      for (uint32_t A = 0; A != NumArgs; ++A)
        RegStack[Base + 1 + A] = ArgBuf[A];
      Frames.push_back({CalleeIdx, Base, I.RetIdx, I.RetAddr, I.Dst});
      reloadR();
      NextPC = CalleeEntry;
      recordBranch(I.Addr, CalleeEntryAddr, Cycles);
      break;
    }
    case Opcode::Ret: {
      int64_t Value = val(I.A);
      FrameMeta F = Frames.back();
      Frames.pop_back();
      RegStack.resize(F.RegBase);
      if (Frames.empty() || F.RetIdx == SIZE_MAX) {
        Result.ExitValue = Value;
        Result.Completed = true;
        syncCounters();
        return finish();
      }
      if (F.RetDst != 0)
        RegStack[Frames.back().RegBase + F.RetDst] = Value;
      reloadR();
      NextPC = F.RetIdx;
      recordBranch(I.Addr, F.RetAddr, Cycles);
      break;
    }
    case Opcode::PseudoProbe:
      assert(false && "pseudo probes never lower to machine code");
      break;
    }
    PC = NextPC;
  }
#endif
}

} // namespace

RunResult execute(const Binary &Bin, const std::string &Entry,
                  std::vector<int64_t> &Memory, const ExecConfig &Config) {
  if (Config.ReferenceMode) {
    ReferenceMachine M(Bin, Memory, Config);
    return M.run(Entry);
  }
  FastMachine M(Bin, Memory, Config);
  return M.run(Entry);
}

} // namespace csspgo

//===- sim/Executor.cpp - Machine code executor ----------------------------===//

#include "sim/Executor.h"

#include <cassert>
#include <map>

namespace csspgo {

namespace {

struct Frame {
  uint32_t FuncIdx = 0;
  std::vector<int64_t> Regs;
  /// Global instruction index to resume at in the caller (SIZE_MAX for the
  /// outermost frame).
  size_t RetIdx = SIZE_MAX;
  /// Destination register in the caller for the return value.
  RegId RetDst = InvalidReg;
};

class Machine {
public:
  Machine(const Binary &Bin, std::vector<int64_t> &Memory,
          const ExecConfig &Config)
      : Bin(Bin), Memory(Memory), Config(Config), Cache(Config.Costs),
        Predictor(Config.Costs), Ring(Config.Sampler.LBRDepth),
        Jitter(Config.Sampler.Seed) {}

  RunResult run(const std::string &Entry);

private:
  int64_t eval(const Operand &O, const Frame &F) const {
    if (O.isImm())
      return O.getImm();
    if (O.isReg())
      return F.Regs[O.getReg()];
    return 0;
  }

  uint64_t memIndex(int64_t Addr) const {
    uint64_t Size = Memory.size();
    assert(Size && "memory must be non-empty");
    int64_t M = Addr % static_cast<int64_t>(Size);
    if (M < 0)
      M += static_cast<int64_t>(Size);
    return static_cast<uint64_t>(M);
  }

  void recordBranch(uint64_t Src, uint64_t Dst) {
    Ring.record(Src, Dst);
    ++Result.TakenBranches;
    Result.Cycles += Config.Costs.TakenBranchCost;
  }

  std::vector<uint64_t> captureStack(size_t PCIdx) const {
    std::vector<uint64_t> Stack;
    Stack.reserve(Frames.size());
    Stack.push_back(Bin.Code[PCIdx].Addr);
    for (size_t I = Frames.size(); I-- > 0;) {
      if (Frames[I].RetIdx != SIZE_MAX)
        Stack.push_back(Bin.Code[Frames[I].RetIdx].Addr);
    }
    return Stack;
  }

  void maybeSample(size_t PCIdx) {
    if (!Config.Sampler.Enabled)
      return;
    // Deliver a pending (skidded) sample once its delay has elapsed.
    if (SkidCountdown > 0) {
      if (--SkidCountdown == 0) {
        Pending.Stack = captureStack(PCIdx);
        Result.Samples.push_back(std::move(Pending));
        Pending = PerfSample();
      }
    }
    if (Result.Cycles < NextSampleAt)
      return;
    NextSampleAt = Result.Cycles + Config.Sampler.PeriodCycles;
    if (Config.Sampler.Precise) {
      PerfSample S;
      S.LBR = Ring.snapshot();
      S.Stack = captureStack(PCIdx);
      Result.Samples.push_back(std::move(S));
      return;
    }
    // Imprecise: LBR now, stack after a short skid. If a sample is already
    // pending, drop the new one (PMU interrupts do not nest).
    if (SkidCountdown > 0)
      return;
    Pending.LBR = Ring.snapshot();
    SkidCountdown =
        1 + Jitter.nextBelow(Config.Sampler.MaxSkidInstructions);
  }

  const Binary &Bin;
  std::vector<int64_t> &Memory;
  const ExecConfig &Config;
  ICache Cache;
  BranchPredictor Predictor;
  LBRRing Ring;
  Rng Jitter;

  std::vector<Frame> Frames;
  std::map<uint64_t, uint64_t> IndirectBTB;
  RunResult Result;
  uint64_t NextSampleAt = 0;
  PerfSample Pending;
  uint32_t SkidCountdown = 0;
};

RunResult Machine::run(const std::string &Entry) {
  uint32_t EntryIdx = Bin.funcIndexByName(Entry);
  if (EntryIdx == ~0u) {
    Result.Error = "entry function '" + Entry + "' not found";
    return std::move(Result);
  }
  Result.Counters.assign(Bin.NumCounters + 1, 0);
  if (Config.CollectInstCounts)
    Result.InstCounts.assign(Bin.Code.size(), 0);
  NextSampleAt = Config.Sampler.PeriodCycles;

  Frame Top;
  Top.FuncIdx = EntryIdx;
  Top.Regs.assign(Bin.Funcs[EntryIdx].NumRegs, 0);
  Frames.push_back(std::move(Top));

  size_t PC = Bin.Funcs[EntryIdx].EntryIdx;

  while (true) {
    if (Result.Instructions >= Config.MaxInstructions) {
      Result.Error = "instruction limit exceeded";
      return std::move(Result);
    }
    assert(PC < Bin.Code.size() && "PC out of range");
    const MInst &I = Bin.Code[PC];
    Frame &F = Frames.back();

    ++Result.Instructions;
    if (Config.CollectInstCounts)
      ++Result.InstCounts[PC];
    Result.Cycles += Config.Costs.baseCost(I.Op);
    if (Cache.access(I.Addr)) {
      ++Result.ICacheMisses;
      Result.Cycles += Config.Costs.ICacheMissPenalty;
    }
    maybeSample(PC);

    size_t NextPC = PC + 1;
    switch (I.Op) {
    case Opcode::Add:
      F.Regs[I.Dst] = eval(I.A, F) + eval(I.B, F);
      break;
    case Opcode::Sub:
      F.Regs[I.Dst] = eval(I.A, F) - eval(I.B, F);
      break;
    case Opcode::Mul:
      F.Regs[I.Dst] = eval(I.A, F) * eval(I.B, F);
      break;
    case Opcode::Div: {
      int64_t D = eval(I.B, F);
      F.Regs[I.Dst] = D ? eval(I.A, F) / D : 0;
      break;
    }
    case Opcode::Mod: {
      int64_t D = eval(I.B, F);
      F.Regs[I.Dst] = D ? eval(I.A, F) % D : 0;
      break;
    }
    case Opcode::And:
      F.Regs[I.Dst] = eval(I.A, F) & eval(I.B, F);
      break;
    case Opcode::Or:
      F.Regs[I.Dst] = eval(I.A, F) | eval(I.B, F);
      break;
    case Opcode::Xor:
      F.Regs[I.Dst] = eval(I.A, F) ^ eval(I.B, F);
      break;
    case Opcode::Shl:
      F.Regs[I.Dst] = eval(I.A, F) << (eval(I.B, F) & 63);
      break;
    case Opcode::Shr:
      F.Regs[I.Dst] = static_cast<int64_t>(
          static_cast<uint64_t>(eval(I.A, F)) >> (eval(I.B, F) & 63));
      break;
    case Opcode::CmpEQ:
      F.Regs[I.Dst] = eval(I.A, F) == eval(I.B, F);
      break;
    case Opcode::CmpNE:
      F.Regs[I.Dst] = eval(I.A, F) != eval(I.B, F);
      break;
    case Opcode::CmpLT:
      F.Regs[I.Dst] = eval(I.A, F) < eval(I.B, F);
      break;
    case Opcode::CmpLE:
      F.Regs[I.Dst] = eval(I.A, F) <= eval(I.B, F);
      break;
    case Opcode::CmpGT:
      F.Regs[I.Dst] = eval(I.A, F) > eval(I.B, F);
      break;
    case Opcode::CmpGE:
      F.Regs[I.Dst] = eval(I.A, F) >= eval(I.B, F);
      break;
    case Opcode::Mov:
      F.Regs[I.Dst] = eval(I.A, F);
      break;
    case Opcode::Select:
      F.Regs[I.Dst] = eval(I.A, F) ? eval(I.B, F) : eval(I.C, F);
      break;
    case Opcode::Load:
      F.Regs[I.Dst] = Memory[memIndex(eval(I.A, F))];
      break;
    case Opcode::Store:
      Memory[memIndex(eval(I.A, F))] = eval(I.B, F);
      break;
    case Opcode::InstrProfIncr:
      ++Result.Counters[I.CounterIdx];
      break;
    case Opcode::Br:
      NextPC = static_cast<size_t>(I.Target);
      ++Result.UncondJumps;
      recordBranch(I.Addr, Bin.Code[NextPC].Addr);
      break;
    case Opcode::CondBr: {
      bool Cond = eval(I.A, F) != 0;
      bool Taken = Cond != I.InvertCond;
      ++Result.CondBranches;
      if (Predictor.mispredicted(I.Addr, Taken)) {
        ++Result.Mispredicts;
        Result.Cycles += Config.Costs.MispredictPenalty;
      }
      if (Taken) {
        ++Result.CondTaken;
        NextPC = static_cast<size_t>(I.Target);
        recordBranch(I.Addr, Bin.Code[NextPC].Addr);
      }
      break;
    }
    case Opcode::CallIndirect:
    case Opcode::Call: {
      uint32_t CalleeIdx = I.CalleeIdx;
      if (I.Op == Opcode::CallIndirect) {
        // Resolve through the dispatch table; out-of-range slots wrap
        // (total semantics, mirrors the generator's contract).
        assert(!Bin.FuncTable.empty() && "indirect call without table");
        uint64_t Slot = static_cast<uint64_t>(eval(I.A, F)) %
                        Bin.FuncTable.size();
        CalleeIdx = Bin.FuncTable[Slot];
        ++Result.IndirectCalls;
        // Indirect-branch target prediction: a last-target BTB entry per
        // call site. This is the channel indirect-call promotion pays
        // through — promoted sites become direct calls and stop missing.
        uint64_t &Last = IndirectBTB[I.Addr];
        if (Last != Bin.Funcs[CalleeIdx].EntryIdx + 1) {
          ++Result.IndirectMispredicts;
          ++Result.Mispredicts;
          Result.Cycles += Config.Costs.MispredictPenalty;
          Last = Bin.Funcs[CalleeIdx].EntryIdx + 1;
        }
        if (Config.CollectValueProfile && I.CallSiteId)
          ++Result.ValueProfile[{I.OriginGuid, I.CallSiteId}]
                               [static_cast<int64_t>(Slot)];
      }
      const MachineFunction &Callee = Bin.Funcs[CalleeIdx];
      ++Result.Calls;
      if (I.IsTailCall) {
        // Tail-call elimination: reuse the frame; the caller disappears
        // from the sampled stack.
        Frame NewF;
        NewF.FuncIdx = CalleeIdx;
        NewF.Regs.assign(Callee.NumRegs, 0);
        for (size_t A = 0; A != I.Args.size() && A < Callee.NumParams; ++A)
          NewF.Regs[A] = eval(I.Args[A], F);
        NewF.RetIdx = F.RetIdx;
        NewF.RetDst = F.RetDst;
        Frames.back() = std::move(NewF);
        NextPC = Callee.EntryIdx;
        // A tail call is an unconditional jump in the binary.
        recordBranch(I.Addr, Bin.Code[NextPC].Addr);
        break;
      }
      if (Frames.size() >= Config.MaxCallDepth) {
        Result.Error = "call depth limit exceeded in " + Callee.Name;
        return std::move(Result);
      }
      Frame NewF;
      NewF.FuncIdx = CalleeIdx;
      NewF.Regs.assign(Callee.NumRegs, 0);
      for (size_t A = 0; A != I.Args.size() && A < Callee.NumParams; ++A)
        NewF.Regs[A] = eval(I.Args[A], F);
      NewF.RetIdx = PC + 1;
      NewF.RetDst = I.Dst;
      Frames.push_back(std::move(NewF));
      NextPC = Callee.EntryIdx;
      recordBranch(I.Addr, Bin.Code[NextPC].Addr);
      break;
    }
    case Opcode::Ret: {
      int64_t Value = eval(I.A, F);
      size_t RetIdx = F.RetIdx;
      RegId RetDst = F.RetDst;
      Frames.pop_back();
      if (Frames.empty() || RetIdx == SIZE_MAX) {
        Result.ExitValue = Value;
        Result.Completed = true;
        return std::move(Result);
      }
      if (RetDst != InvalidReg)
        Frames.back().Regs[RetDst] = Value;
      NextPC = RetIdx;
      recordBranch(I.Addr, Bin.Code[NextPC].Addr);
      break;
    }
    case Opcode::PseudoProbe:
      assert(false && "pseudo probes never lower to machine code");
      break;
    }
    PC = NextPC;
  }
}

} // namespace

RunResult execute(const Binary &Bin, const std::string &Entry,
                  std::vector<int64_t> &Memory, const ExecConfig &Config) {
  Machine M(Bin, Memory, Config);
  return M.run(Entry);
}

} // namespace csspgo

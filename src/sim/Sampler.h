//===- sim/Sampler.h - PMU sampling model -----------------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PMU model: a cycle counter that "underflows" every sampling period
/// and snapshots (a) the 16-entry LBR ring of the most recent taken
/// branches and (b) the call stack — the synchronized LBR + stack sampling
/// of §III-B ("perf record -g --call-graph fp -e
/// br_inst_retired.near_taken:upp").
///
/// Two fidelity knobs reproduce the paper's practical challenges:
/// - \c Precise=false injects sampling skid: the stack snapshot lags the
///   LBR snapshot by a few retired instructions, so the stack can be off
///   by one frame relative to the last LBR branch (fixed by PEBS in the
///   paper);
/// - tail-call elimination in the executor removes caller frames from the
///   sampled stack (mitigated by the missing-frame inferrer).
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_SIM_SAMPLER_H
#define CSSPGO_SIM_SAMPLER_H

#include "support/Random.h"

#include <cstdint>
#include <vector>

namespace csspgo {

/// One LBR record: a taken branch from Src to Dst (byte addresses).
struct LBREntry {
  uint64_t Src = 0;
  uint64_t Dst = 0;
};

/// One PMU sample: the LBR snapshot (oldest first) plus the synchronized
/// stack snapshot. The stack is leaf-first: Stack[0] is the sampled PC,
/// Stack[1..] are return addresses of the frames below.
struct PerfSample {
  std::vector<LBREntry> LBR;
  std::vector<uint64_t> Stack;
};

/// Configuration of the PMU model.
struct SamplerConfig {
  bool Enabled = false;
  uint64_t PeriodCycles = 4001; ///< Prime periods avoid loop lockstep.
  /// LBR depth; rounded up to a power of two (real LBRs are 8/16/32
  /// deep), which lets the ring replace modulo arithmetic with masks.
  uint32_t LBRDepth = 16;
  /// PEBS-precise sampling: LBR and stack snapshot at the same instant.
  bool Precise = true;
  /// Max skid in retired instructions when Precise is false.
  uint32_t MaxSkidInstructions = 24;
  uint64_t Seed = 1;
};

/// The LBR ring buffer. The depth is rounded up to a power of two so the
/// wraparound arithmetic in the executor's hot loop is a mask, not a
/// division.
class LBRRing {
public:
  explicit LBRRing(uint32_t Depth)
      : Depth(roundUpToPowerOfTwo(Depth)), Mask(this->Depth - 1) {
    Ring.reserve(this->Depth);
  }

  void record(uint64_t Src, uint64_t Dst) {
    if (Ring.size() < Depth) {
      // Filling phase: Head stays 0, entries are already oldest-first.
      Ring.push_back({Src, Dst});
      return;
    }
    Ring[Head] = {Src, Dst};
    Head = (Head + 1) & Mask;
  }

  /// Returns entries oldest-first.
  std::vector<LBREntry> snapshot() const {
    std::vector<LBREntry> Out;
    snapshotInto(Out);
    return Out;
  }

  /// Writes the snapshot (oldest-first) into \p Out, reusing its storage.
  void snapshotInto(std::vector<LBREntry> &Out) const {
    Out.clear();
    if (Ring.size() < Depth) {
      Out.insert(Out.end(), Ring.begin(), Ring.end());
      return;
    }
    Out.reserve(Depth);
    for (size_t I = 0; I != Depth; ++I)
      Out.push_back(Ring[(Head + I) & Mask]);
  }

  void clear() {
    Ring.clear();
    Head = 0;
  }

  /// Effective (power-of-two) depth.
  uint32_t depth() const { return Depth; }

  static uint32_t roundUpToPowerOfTwo(uint32_t V) {
    uint32_t P = 1;
    while (P < V && P < (1u << 31))
      P <<= 1;
    return P;
  }

private:
  uint32_t Depth;
  size_t Mask;
  std::vector<LBREntry> Ring;
  size_t Head = 0;
};

} // namespace csspgo

#endif // CSSPGO_SIM_SAMPLER_H

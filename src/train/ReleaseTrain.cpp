//===- train/ReleaseTrain.cpp - Longitudinal release-train simulator --------===//

#include "train/ReleaseTrain.h"

#include "pgo/ProfilePipeline.h"
#include "quality/BlockOverlap.h"
#include "sim/Executor.h"
#include "store/ProfileStore.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <cstdlib>

namespace csspgo {
namespace train {

const char *policyName(StalePolicy P) {
  switch (P) {
  case StalePolicy::Drop:
    return "drop";
  case StalePolicy::Match:
    return "match";
  case StalePolicy::Ingest:
    return "ingest";
  }
  return "unknown";
}

bool parsePolicy(const std::string &Name, StalePolicy &Out) {
  if (Name == "drop")
    Out = StalePolicy::Drop;
  else if (Name == "match")
    Out = StalePolicy::Match;
  else if (Name == "ingest")
    Out = StalePolicy::Ingest;
  else
    return false;
  return true;
}

ExperimentConfig releaseConfig(const TrainConfig &Config, unsigned Release) {
  ExperimentConfig CR = Config.Exp;
  // Successive releases train and evaluate on drifted inputs: fresh seeds
  // per release, same shift model as a single experiment.
  CR.TrainSeed += Release;
  CR.EvalSeedBase += 100 * static_cast<uint64_t>(Release);
  return CR;
}

namespace {

double improvePct(double Cycles, double Base) {
  return Base ? 100.0 * (Base - Cycles) / Base : 0;
}

/// Deterministic epoch timestamp of release \p R (seconds; arbitrary
/// monotone scale — the store records, never interprets, them).
uint64_t releaseTimestamp(unsigned R) { return 100 * (R + 1ull); }

/// Index-sharded parallel loop matching the bench runMany contract:
/// Jobs <= 1 (or a single task) runs inline, anything else fans out over
/// a pool; results are written into index-addressed slots either way.
void forEachIndex(size_t Count, unsigned Jobs,
                  const std::function<void(size_t)> &Fn) {
  if (Jobs <= 1 || Count <= 1) {
    for (size_t I = 0; I != Count; ++I)
      Fn(I);
    return;
  }
  ThreadPool Pool(Jobs);
  Pool.parallelFor(Count, Fn);
}

/// Everything phase A computes per release.
struct ReleaseArtifact {
  double PlainCycles = 0;
  int64_t PlainExit = 0;
  double OracleCycles = 0;
  int64_t OracleExit = 0;
  ProfileBundle Profile; ///< The release's fresh (oracle) profile.

  bool HasPostLink = false;
  double PostLinkCycles = 0;
  bool RewriteKept = false;
  int64_t PostLinkExit = 0;
};

[[noreturn]] void fatal(const std::string &Msg) {
  std::fprintf(stderr, "csspgo train: %s\n", Msg.c_str());
  std::abort();
}

ProfileBundle loadStoreBundle(const std::string &Bytes) {
  Expected<ProfileStore> Store = ProfileStore::openBorrowed(Bytes);
  if (!Store)
    fatal("store snapshot does not open: " + Store.status().message());
  ProfileBundle Bundle;
  Bundle.Has = true;
  Bundle.IsCS = Store->isCS();
  if (Bundle.IsCS) {
    Expected<ContextProfile> CS = Store->loadContext();
    if (!CS)
      fatal("store snapshot does not load: " + CS.status().message());
    Bundle.CS = CS.take();
  } else {
    Expected<FlatProfile> Flat = Store->loadFlat();
    if (!Flat)
      fatal("store snapshot does not load: " + Flat.status().message());
    Bundle.Flat = Flat.take();
  }
  return Bundle;
}

} // namespace

TrainResult runTrain(const TrainConfig &Config) {
  if (Config.Releases == 0)
    fatal("Releases must be >= 1");
  if (Config.FirstRelease < 1 || Config.FirstRelease > Config.Releases)
    fatal("FirstRelease out of range");
  if (Config.FirstRelease > 1 && Config.InitialStore.empty())
    fatal("resuming (FirstRelease > 1) requires InitialStore");
  if (Config.Policies.empty())
    fatal("no policies selected");
  if (Config.Variant == PGOVariant::None)
    fatal("the train needs a PGO variant (it builds from profiles)");

  const unsigned N = Config.Releases;
  const unsigned First = Config.FirstRelease;
  const unsigned R0 = First - 1; // Earliest release needing artifacts.

  // --- Sources: release 0 is the pristine workload, release r applies
  // the seeded per-release drift plan to its predecessor. Serial and
  // cheap; the plans are the same helpers the drift ablation stages.
  std::vector<std::unique_ptr<Module>> Sources(N + 1);
  std::vector<std::string> DriftNames(N + 1, "seed");
  std::vector<unsigned> DriftEdits(N + 1, 0);
  Sources[0] = generateProgram(Config.Exp.Workload);
  for (unsigned R = 1; R <= N; ++R) {
    DriftPlan Plan = releaseDriftPlan(Config.DriftSeed, R);
    Sources[R] = Sources[R - 1]->clone();
    DriftEdits[R] = applyDriftPlan(*Sources[R], Plan);
    DriftNames[R] = driftPlanName(Plan);
  }

  // --- Phase A: per-release plain + oracle (fresh-profile) pipelines,
  // independent across releases; the PGO+BOLT column rides along here
  // because it rewrites the oracle's binary.
  std::vector<ReleaseArtifact> Artifacts(N + 1);
  forEachIndex(N + 1 - R0, Config.Jobs, [&](size_t Idx) {
    unsigned R = R0 + static_cast<unsigned>(Idx);
    ExperimentConfig CR = releaseConfig(Config, R);
    PGODriver Driver(CR, Sources[R]->clone());
    ReleaseArtifact &A = Artifacts[R];

    const VariantOutcome &Plain = Driver.baseline();
    A.PlainCycles = Plain.EvalCyclesMean;
    A.PlainExit = Plain.ExitValue;

    VariantOutcome Oracle = Driver.run(Config.Variant);
    if (Config.PostLink && R >= First) {
      // One-release-stale samples: the rewriter profiles this release's
      // binary under the *previous* release's eval-shifted input. The
      // rollout guard inside stackPostLink still consults only the
      // current training input.
      PostLinkOutcome PL = Driver.stackPostLink(
          std::move(Oracle), Config.PostLinkOpts,
          Config.Exp.TrainSeed + (R - 1), Config.Exp.EvalShift);
      A.HasPostLink = true;
      A.PostLinkCycles = PL.EvalCyclesMean;
      A.RewriteKept = PL.RewriteKept;
      A.PostLinkExit = PL.ExitValue;
      Oracle = std::move(PL.Base);
    }
    A.OracleCycles = Oracle.EvalCyclesMean;
    A.OracleExit = Oracle.ExitValue;
    A.Profile = std::move(Oracle.Profile);
  });

  // --- Phase B: the store evolves serially — release r's fresh profile
  // folds in under decay at its release timestamp. Snapshot[r] is the
  // store as release r+1's build sees it.
  TrainResult Result;
  Result.StoreSnapshots.assign(N + 1, std::string());
  std::vector<bool> FoldClean(N + 1, false);
  {
    PipelineOptions IngestOpts;
    IngestOpts.DecayPermille = Config.DecayPermille;
    ProfilePipeline Pipeline(IngestOpts);
    std::string Store = Config.InitialStore;
    for (unsigned R = R0; R <= N; ++R) {
      if (R == R0 && !Config.InitialStore.empty()) {
        // Resume: the caller supplied Snapshot[First-1] of a prior run.
        FoldClean[R] = true;
      } else {
        Status S =
            Pipeline.ingest(Store, Artifacts[R].Profile, releaseTimestamp(R));
        FoldClean[R] = S.ok();
        if (!S.ok())
          std::fprintf(stderr, "csspgo train: fold of release %u failed: %s\n",
                       R, S.message().c_str());
      }
      Result.StoreSnapshots[R] = Store;
    }
  }

  // --- Phase C: the train cells — (release, policy) pairs, each an
  // independent stale build + evaluation, sharded over Jobs.
  const unsigned Rows = N + 1 - First;
  const size_t PerRow = Config.Policies.size();
  std::vector<PolicyCell> Cells(Rows * PerRow);
  forEachIndex(Cells.size(), Config.Jobs, [&](size_t Idx) {
    unsigned R = First + static_cast<unsigned>(Idx / PerRow);
    StalePolicy Policy = Config.Policies[Idx % PerRow];
    ExperimentConfig CR = releaseConfig(Config, R);
    const ReleaseArtifact &A = Artifacts[R];
    const Module &Source = *Sources[R];

    BuildConfig BC = staleVariantBuildConfig(Config.Variant, CR);
    BC.Loader.Verify = VerifyLevel::Full;
    if (Policy == StalePolicy::Drop)
      BC.Loader.RecoverStaleProfiles = false;

    ProfileBundle StoreBundle;
    const ProfileBundle *Stale = &Artifacts[R - 1].Profile;
    if (Policy == StalePolicy::Ingest) {
      StoreBundle = loadStoreBundle(Result.StoreSnapshots[R - 1]);
      Stale = &StoreBundle;
    }

    BuildResult Build = buildWithPGO(Source, BC, Stale);

    PolicyCell &Cell = Cells[Idx];
    Cell.Policy = Policy;
    Cell.EvalCyclesMean = evalMeanCycles(Build, CR);
    Cell.VsPlainPct = improvePct(Cell.EvalCyclesMean, A.PlainCycles);
    Cell.VsOraclePct = improvePct(Cell.EvalCyclesMean, A.OracleCycles);
    Cell.StaleDropped = Build.Loader.StaleDropped;
    Cell.StaleMatched = Build.Loader.StaleMatched;
    Cell.CountsRecovered = Build.Loader.StaleCountsRecovered;
    Cell.VerifyClean = Build.Loader.VerifyViolations == 0;

    std::vector<int64_t> Mem =
        generateInput(CR.Workload, CR.EvalSeedBase, CR.EvalShift);
    Cell.ExitValue = execute(*Build.Bin, "main", Mem, {}).ExitValue;
    Cell.ExitMatch = Cell.ExitValue == A.PlainExit;

    // Quality: both the stale policy's profile and the oracle's annotate
    // the same pristine release source, so their block counts compare
    // directly. The policy's loader settings carry into the annotation
    // (a drop build's quality must not benefit from the matcher).
    auto GroundTruth = annotateForQuality(Source, A.Profile);
    auto Measured = annotateForQuality(Source, *Stale, BC.Loader);
    // Ground-truth weighting: a hot function the stale profile dropped
    // must pull the score down, not silently leave the aggregate.
    Cell.Overlap = computeBlockOverlap(*Measured, *GroundTruth,
                                       OverlapWeight::GroundTruth)
                       .ProgramOverlap;
  });

  // --- Assembly, in release order.
  Result.Rows.resize(Rows);
  for (unsigned I = 0; I != Rows; ++I) {
    unsigned R = First + I;
    const ReleaseArtifact &A = Artifacts[R];
    ReleaseRow &Row = Result.Rows[I];
    Row.Release = R;
    Row.DriftName = DriftNames[R];
    Row.DriftEdits = DriftEdits[R];
    Row.PlainCycles = A.PlainCycles;
    Row.PlainExit = A.PlainExit;
    Row.OracleCycles = A.OracleCycles;
    Row.OracleVsPlainPct = improvePct(A.OracleCycles, A.PlainCycles);
    Row.HasPostLink = A.HasPostLink;
    if (A.HasPostLink) {
      Row.PostLinkCycles = A.PostLinkCycles;
      Row.PostLinkVsOraclePct = improvePct(A.PostLinkCycles, A.OracleCycles);
      Row.RewriteKept = A.RewriteKept;
      Row.PostLinkExitMatch = A.PostLinkExit == A.PlainExit;
    }
    Row.IngestFoldClean = FoldClean[R];
    Expected<ProfileStore> Prev =
        ProfileStore::openBorrowed(Result.StoreSnapshots[R - 1]);
    if (Prev && !Prev->epochs().empty()) {
      Row.StoreEpochs = static_cast<unsigned>(Prev->epochs().size());
      Row.StoreTimestamp = Prev->epochs().back().Timestamp;
    }
    Row.Cells.assign(Cells.begin() + I * PerRow,
                     Cells.begin() + (I + 1) * PerRow);
  }
  return Result;
}

const PolicyCell *TrainResult::cell(const ReleaseRow &Row,
                                    StalePolicy P) const {
  for (const PolicyCell &C : Row.Cells)
    if (C.Policy == P)
      return &C;
  return nullptr;
}

double TrainResult::aggregate(StalePolicy P) const {
  long double Sum = 0;
  size_t Count = 0;
  for (const ReleaseRow &Row : Rows)
    if (const PolicyCell *C = cell(Row, P)) {
      Sum += C->VsPlainPct;
      ++Count;
    }
  return Count ? static_cast<double>(Sum / Count) : 0;
}

bool TrainResult::allClean() const {
  for (const ReleaseRow &Row : Rows) {
    if (!Row.IngestFoldClean)
      return false;
    for (const PolicyCell &C : Row.Cells)
      if (!C.VerifyClean || !C.ExitMatch)
        return false;
  }
  return true;
}

namespace {

std::string fmtF(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.4f", V);
  return Buf;
}

} // namespace

std::string TrainResult::toJSON() const {
  std::string J = "{\n  \"rows\": [";
  for (size_t I = 0; I != Rows.size(); ++I) {
    const ReleaseRow &Row = Rows[I];
    J += I ? ",\n    {" : "\n    {";
    J += "\"release\": " + std::to_string(Row.Release);
    J += ", \"drift\": \"" + Row.DriftName + "\"";
    J += ", \"edits\": " + std::to_string(Row.DriftEdits);
    J += ", \"plain_cycles\": " + fmtF(Row.PlainCycles);
    J += ", \"oracle_cycles\": " + fmtF(Row.OracleCycles);
    J += ", \"oracle_vs_plain_pct\": " + fmtF(Row.OracleVsPlainPct);
    if (Row.HasPostLink) {
      J += ", \"postlink\": {\"cycles\": " + fmtF(Row.PostLinkCycles);
      J += ", \"vs_oracle_pct\": " + fmtF(Row.PostLinkVsOraclePct);
      J += std::string(", \"kept\": ") + (Row.RewriteKept ? "true" : "false");
      J += std::string(", \"exit_match\": ") +
           (Row.PostLinkExitMatch ? "true" : "false") + "}";
    }
    J += ", \"store\": {\"epochs\": " + std::to_string(Row.StoreEpochs);
    J += ", \"timestamp\": " + std::to_string(Row.StoreTimestamp);
    J += std::string(", \"fold_clean\": ") +
         (Row.IngestFoldClean ? "true" : "false") + "}";
    J += ", \"policies\": [";
    for (size_t P = 0; P != Row.Cells.size(); ++P) {
      const PolicyCell &C = Row.Cells[P];
      J += P ? ", {" : "{";
      J += std::string("\"policy\": \"") + policyName(C.Policy) + "\"";
      J += ", \"eval_cycles\": " + fmtF(C.EvalCyclesMean);
      J += ", \"vs_plain_pct\": " + fmtF(C.VsPlainPct);
      J += ", \"vs_oracle_pct\": " + fmtF(C.VsOraclePct);
      J += ", \"overlap\": " + fmtF(C.Overlap);
      J += ", \"stale_dropped\": " + std::to_string(C.StaleDropped);
      J += ", \"stale_matched\": " + std::to_string(C.StaleMatched);
      J += ", \"counts_recovered\": " + std::to_string(C.CountsRecovered);
      J += std::string(", \"exit_match\": ") + (C.ExitMatch ? "true" : "false");
      J += std::string(", \"verify_clean\": ") +
           (C.VerifyClean ? "true" : "false") + "}";
    }
    J += "]}";
  }
  J += "\n  ],\n  \"aggregate\": {";
  // Aggregate over the distinct policies present, in enum order.
  bool FirstAgg = true;
  for (StalePolicy P :
       {StalePolicy::Drop, StalePolicy::Match, StalePolicy::Ingest}) {
    bool Present = false;
    for (const ReleaseRow &Row : Rows)
      if (cell(Row, P))
        Present = true;
    if (!Present)
      continue;
    if (!FirstAgg)
      J += ", ";
    FirstAgg = false;
    J += std::string("\"") + policyName(P) + "\": " + fmtF(aggregate(P));
  }
  J += "}\n}\n";
  return J;
}

} // namespace train
} // namespace csspgo

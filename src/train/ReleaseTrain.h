//===- train/ReleaseTrain.h - Longitudinal release-train simulator -*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The longitudinal release-train simulator: the deployment scenario the
/// stale-profile-matching literature actually evaluates. A workload source
/// evolves through N successive releases (seeded drift plans drawn from
/// both the CFG editors and the comment-drift line shift); each release is
/// built with the *previous* release's profile under three staleness
/// policies:
///
///   drop   — checksum-mismatched profiles dropped (legacy behavior),
///   match  — the stale matcher (src/matcher) recovers them,
///   ingest — the build consumes the multi-epoch decayed store aggregate
///            (ProfilePipeline::ingest folds every release's profile under
///            exponential decay), matcher on.
///
/// Per release the simulator records the trajectory: eval cycles vs the
/// plain build and vs the fresh-profile oracle, block-overlap quality of
/// the stale profile against the oracle's annotation, matcher and verifier
/// statistics, and the store's freshness (epoch count / newest timestamp).
/// Optionally the oracle binary is additionally routed through the
/// post-link optimizer with one-release-stale (eval-shifted) samples — the
/// PGO+BOLT column quantifying *binary-level* staleness.
///
/// Everything is deterministic: a fixed (workload, seed, release count)
/// yields bit-identical trajectories at any job count, and a train can be
/// resumed from a mid-train store snapshot (FirstRelease + InitialStore)
/// with rows identical to the full run's tail.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_TRAIN_RELEASETRAIN_H
#define CSSPGO_TRAIN_RELEASETRAIN_H

#include "pgo/PGODriver.h"
#include "workload/DriftPlan.h"

#include <string>
#include <vector>

namespace csspgo {
namespace train {

/// What the build of release r does with release r-1's profile.
enum class StalePolicy : uint8_t {
  Drop,   ///< RecoverStaleProfiles off: mismatched profiles are dropped.
  Match,  ///< Stale matcher recovers mismatched profiles.
  Ingest, ///< Matcher + the decayed multi-epoch store aggregate.
};

const char *policyName(StalePolicy P);

/// Parses "drop" / "match" / "ingest" (exact). Returns false on anything
/// else.
bool parsePolicy(const std::string &Name, StalePolicy &Out);

struct TrainConfig {
  /// Per-release experiment knobs. The workload (archetype, seeds) lives
  /// in Exp.Workload; release r shifts TrainSeed by +r and EvalSeedBase
  /// by +100*r so successive releases see drifting inputs.
  ExperimentConfig Exp;
  PGOVariant Variant = PGOVariant::CSSPGOFull;

  /// Releases after the initial one: the train simulates releases
  /// 1..Releases, each built with its predecessor's profile.
  unsigned Releases = 4;
  /// Seeds the per-release drift plans (workload/DriftPlan.h).
  uint64_t DriftSeed = 1;
  /// Store-fold decay for the ingest policy (permille weight of the prior
  /// aggregate on each fold).
  uint32_t DecayPermille = 500;

  /// Policies evaluated per release, in this order.
  std::vector<StalePolicy> Policies = {StalePolicy::Drop, StalePolicy::Match,
                                       StalePolicy::Ingest};

  /// Stack the post-link optimizer on each release's oracle binary,
  /// feeding the rewriter samples collected under the *previous* release's
  /// eval-shifted input (binary-level staleness). The rollout guard still
  /// consults only the current training input.
  bool PostLink = false;
  postlink::PostLinkOptions PostLinkOpts;

  /// Resume support: first release to report rows for (1-based). A value
  /// > 1 requires InitialStore = the store snapshot of release
  /// FirstRelease-1 from the run being resumed.
  unsigned FirstRelease = 1;
  std::string InitialStore;

  /// Worker threads sharding the train's cells (1 = serial). Any value
  /// yields bit-identical results.
  unsigned Jobs = 1;
};

/// One (release, policy) cell of the trajectory.
struct PolicyCell {
  StalePolicy Policy = StalePolicy::Drop;
  double EvalCyclesMean = 0;
  /// Improvement vs the release's plain build (positive = faster).
  double VsPlainPct = 0;
  /// Improvement vs the fresh-profile oracle (<= 0 in expectation).
  double VsOraclePct = 0;
  /// Block-overlap of the policy's annotation against the oracle
  /// profile's annotation of the same release (src/quality).
  double Overlap = 0;
  unsigned StaleDropped = 0;
  unsigned StaleMatched = 0;
  uint64_t CountsRecovered = 0;
  int64_t ExitValue = 0;
  bool ExitMatch = false;   ///< Semantics preserved vs the plain build.
  bool VerifyClean = false; ///< Pre-load Full verification: no violations.
};

/// One release's row of the trajectory.
struct ReleaseRow {
  unsigned Release = 0;
  std::string DriftName; ///< driftPlanName of the release's edit.
  unsigned DriftEdits = 0;
  double PlainCycles = 0;
  int64_t PlainExit = 0;
  double OracleCycles = 0;
  double OracleVsPlainPct = 0;
  std::vector<PolicyCell> Cells; ///< Config.Policies order.

  /// PGO+BOLT column (Config.PostLink): the oracle binary rewritten from
  /// one-release-stale samples.
  bool HasPostLink = false;
  double PostLinkCycles = 0;
  double PostLinkVsOraclePct = 0;
  bool RewriteKept = false;
  bool PostLinkExitMatch = false;

  /// Freshness of the store the ingest cell consumed (epochs folded, and
  /// the newest epoch's timestamp).
  unsigned StoreEpochs = 0;
  uint64_t StoreTimestamp = 0;
  /// The fold of this release's own profile into the store verified clean.
  bool IngestFoldClean = false;
};

struct TrainResult {
  std::vector<ReleaseRow> Rows; ///< Releases FirstRelease..Releases.
  /// Store snapshot after folding release r's profile, indexed by r
  /// (0..Releases). Resume a train by passing Snapshot[k-1] as
  /// InitialStore with FirstRelease=k. Not part of the JSON.
  std::vector<std::string> StoreSnapshots;

  const PolicyCell *cell(const ReleaseRow &Row, StalePolicy P) const;
  /// Mean VsPlainPct of \p P over all rows (the trajectory aggregate the
  /// bench gates on).
  double aggregate(StalePolicy P) const;
  /// True when every policy cell of every row verified clean and
  /// preserved semantics, and every ingest fold was clean.
  bool allClean() const;
  /// Stable-shape JSON of the trajectory (fixed key order, fixed float
  /// formatting) — the CLI's --json output and the CLITest golden.
  std::string toJSON() const;
};

/// Runs the train. Deterministic for a fixed config; Jobs only shards.
TrainResult runTrain(const TrainConfig &Config);

/// The per-release experiment config (input-drifted seeds) runTrain uses;
/// exposed so tests and benches can rebuild a release's context.
ExperimentConfig releaseConfig(const TrainConfig &Config, unsigned Release);

} // namespace train
} // namespace csspgo

#endif // CSSPGO_TRAIN_RELEASETRAIN_H

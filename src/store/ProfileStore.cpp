//===- store/ProfileStore.cpp - Binary profile store ------------------------===//

#include "store/ProfileStore.h"

#include "ir/Module.h"
#include "profile/ProfileSummary.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <set>
#include <tuple>

namespace csspgo {

namespace {

/// Inlinee nesting beyond this is rejected at decode time (the generators
/// produce depth <= the inline depth limit, far below this).
constexpr unsigned MaxRecordDepth = 64;

void collectRefs(const FunctionProfile &P, std::set<std::string> &S) {
  for (const auto &[K, Targets] : P.Calls)
    for (const auto &[Callee, N] : Targets)
      S.insert(Callee);
  for (const auto &[K, Map] : P.Inlinees)
    for (const auto &[Callee, Sub] : Map) {
      S.insert(Callee);
      collectRefs(Sub, S);
    }
}

/// Deduplicating string table under construction: sorted-unique entries,
/// so equal profiles always produce byte-identical tables.
class StringIndex {
public:
  explicit StringIndex(std::set<std::string> Set)
      : Strings(Set.begin(), Set.end()) {
    for (uint32_t I = 0; I != Strings.size(); ++I)
      Map[Strings[I]] = I;
  }

  uint32_t index(const std::string &S) const { return Map.at(S); }
  const std::vector<std::string> &all() const { return Strings; }

private:
  std::vector<std::string> Strings;
  std::map<std::string, uint32_t> Map;
};

void encodeRecord(ByteWriter &W, const FunctionProfile &P,
                  const StringIndex &SI) {
  W.uleb(P.TotalSamples);
  W.uleb(P.HeadSamples);
  W.uleb(P.Body.size());
  for (const auto &[K, N] : P.Body) {
    W.uleb(K.Index);
    W.uleb(K.Disc);
    W.uleb(N);
  }
  W.uleb(P.Calls.size());
  for (const auto &[K, Targets] : P.Calls) {
    W.uleb(K.Index);
    W.uleb(K.Disc);
    W.uleb(Targets.size());
    for (const auto &[Callee, N] : Targets) {
      W.uleb(SI.index(Callee));
      W.uleb(N);
    }
  }
  W.uleb(P.Inlinees.size());
  for (const auto &[K, Map] : P.Inlinees) {
    W.uleb(K.Index);
    W.uleb(K.Disc);
    W.uleb(Map.size());
    for (const auto &[Callee, Sub] : Map) {
      W.uleb(SI.index(Callee));
      W.uleb(Sub.Guid);
      W.uleb(Sub.Checksum);
      encodeRecord(W, Sub, SI);
    }
  }
}

bool decodeRecord(ByteReader &R, FunctionProfile &P,
                  const std::vector<std::string_view> &Names, unsigned Depth,
                  std::string &Err) {
  if (Depth > MaxRecordDepth) {
    Err = "inlinee nesting exceeds depth limit";
    return false;
  }
  uint64_t NBody, NCalls, NInl, Idx, Disc, N;
  if (!R.uleb(P.TotalSamples) || !R.uleb(P.HeadSamples) || !R.uleb(NBody)) {
    Err = "truncated record header";
    return false;
  }
  for (uint64_t I = 0; I != NBody; ++I) {
    if (!R.uleb(Idx) || !R.uleb(Disc) || !R.uleb(N) || Idx > UINT32_MAX ||
        Disc > UINT32_MAX) {
      Err = "malformed body entry";
      return false;
    }
    ProfileKey K(static_cast<uint32_t>(Idx), static_cast<uint32_t>(Disc));
    if (!P.Body.emplace(K, N).second) {
      Err = "duplicate body key";
      return false;
    }
  }
  if (!R.uleb(NCalls)) {
    Err = "truncated call-site count";
    return false;
  }
  for (uint64_t I = 0; I != NCalls; ++I) {
    uint64_t NTargets;
    if (!R.uleb(Idx) || !R.uleb(Disc) || !R.uleb(NTargets) ||
        Idx > UINT32_MAX || Disc > UINT32_MAX) {
      Err = "malformed call site";
      return false;
    }
    ProfileKey K(static_cast<uint32_t>(Idx), static_cast<uint32_t>(Disc));
    auto [SiteIt, Fresh] = P.Calls.emplace(
        K, std::map<std::string, uint64_t>());
    if (!Fresh) {
      Err = "duplicate call-site key";
      return false;
    }
    for (uint64_t T = 0; T != NTargets; ++T) {
      uint64_t NameIdx;
      if (!R.uleb(NameIdx) || !R.uleb(N) || NameIdx >= Names.size()) {
        Err = "malformed call target";
        return false;
      }
      if (!SiteIt->second.emplace(std::string(Names[NameIdx]), N).second) {
        Err = "duplicate call target";
        return false;
      }
    }
  }
  if (!R.uleb(NInl)) {
    Err = "truncated inline-site count";
    return false;
  }
  for (uint64_t I = 0; I != NInl; ++I) {
    uint64_t NCallees;
    if (!R.uleb(Idx) || !R.uleb(Disc) || !R.uleb(NCallees) ||
        Idx > UINT32_MAX || Disc > UINT32_MAX) {
      Err = "malformed inline site";
      return false;
    }
    ProfileKey K(static_cast<uint32_t>(Idx), static_cast<uint32_t>(Disc));
    auto [SiteIt, Fresh] = P.Inlinees.emplace(
        K, std::map<std::string, FunctionProfile>());
    if (!Fresh) {
      Err = "duplicate inline-site key";
      return false;
    }
    for (uint64_t C = 0; C != NCallees; ++C) {
      uint64_t NameIdx, Guid, Checksum;
      if (!R.uleb(NameIdx) || !R.uleb(Guid) || !R.uleb(Checksum) ||
          NameIdx >= Names.size()) {
        Err = "malformed inlinee";
        return false;
      }
      FunctionProfile Sub;
      Sub.Name = std::string(Names[NameIdx]);
      Sub.Guid = Guid;
      Sub.Checksum = Checksum;
      if (!decodeRecord(R, Sub, Names, Depth + 1, Err))
        return false;
      if (!SiteIt->second.emplace(Sub.Name, std::move(Sub)).second) {
        Err = "duplicate inlinee";
        return false;
      }
    }
  }
  return true;
}

constexpr NameId InvalidNameId = ~NameId(0);

/// Lazily maps store string-table indices to arena name ids, interning a
/// name the first time a record references it. A module-scoped lazy load
/// then interns O(names referenced), not O(string table). Arena ids are
/// therefore NOT name-ordered — which is fine: the view merges remap
/// every part through a name-sorted output interner, and the in-record
/// slice order is validated on the store indices (sorted-unique table, so
/// ascending index IS ascending name).
struct NameMapper {
  const std::vector<std::string_view> &Names;
  NameInterner &Interner;
  std::vector<NameId> &Map;

  NameId operator()(uint64_t Idx) {
    NameId &Slot = Map[Idx];
    if (Slot == InvalidNameId)
      Slot = Interner.intern(Names[Idx]);
    return Slot;
  }
};

/// Flat-plane record decoder: cursors one payload tile straight into an
/// arena — body/call slots append to the pools, inlinee children recurse
/// through a temporary so the parent's inline slice stays contiguous.
/// Mirrors decodeRecord's validation with the order requirement tightened
/// from "no duplicate keys" to "strictly ascending" — the canonical order
/// every writer emits (std::map iteration), and what lets merges run on
/// the slices without re-sorting.
bool decodeRecordView(ByteReader &R, ProfileArena &A, NameMapper &NM,
                      unsigned Depth, uint32_t &RecOut, std::string &Err) {
  if (Depth > MaxRecordDepth) {
    Err = "inlinee nesting exceeds depth limit";
    return false;
  }
  FuncRecord Rec;
  uint64_t NBody, NCalls, NInl, Idx, Disc, N;
  if (!R.uleb(Rec.TotalSamples) || !R.uleb(Rec.HeadSamples) ||
      !R.uleb(NBody)) {
    Err = "truncated record header";
    return false;
  }
  Rec.BodyBegin = static_cast<uint32_t>(A.Body.size());
  for (uint64_t I = 0; I != NBody; ++I) {
    if (!R.uleb(Idx) || !R.uleb(Disc) || !R.uleb(N) || Idx > UINT32_MAX ||
        Disc > UINT32_MAX) {
      Err = "malformed body entry";
      return false;
    }
    ProfileKey K(static_cast<uint32_t>(Idx), static_cast<uint32_t>(Disc));
    if (I && !(A.Body.back().Key < K)) {
      Err = "body entries not in ascending key order";
      return false;
    }
    A.Body.push_back({K, N});
  }
  Rec.BodyEnd = static_cast<uint32_t>(A.Body.size());
  if (!R.uleb(NCalls)) {
    Err = "truncated call-site count";
    return false;
  }
  Rec.CallsBegin = static_cast<uint32_t>(A.Calls.size());
  ProfileKey PrevSite;
  for (uint64_t I = 0; I != NCalls; ++I) {
    uint64_t NTargets;
    if (!R.uleb(Idx) || !R.uleb(Disc) || !R.uleb(NTargets) ||
        Idx > UINT32_MAX || Disc > UINT32_MAX) {
      Err = "malformed call site";
      return false;
    }
    ProfileKey K(static_cast<uint32_t>(Idx), static_cast<uint32_t>(Disc));
    if (I && !(PrevSite < K)) {
      Err = "call sites not in ascending key order";
      return false;
    }
    PrevSite = K;
    uint64_t PrevName = 0;
    for (uint64_t T = 0; T != NTargets; ++T) {
      uint64_t NameIdx;
      if (!R.uleb(NameIdx) || !R.uleb(N) || NameIdx >= NM.Map.size()) {
        Err = "malformed call target";
        return false;
      }
      if (T && NameIdx <= PrevName) {
        Err = "call targets not in ascending name order";
        return false;
      }
      PrevName = NameIdx;
      A.Calls.push_back({K, NM(NameIdx), N});
    }
  }
  Rec.CallsEnd = static_cast<uint32_t>(A.Calls.size());
  if (!R.uleb(NInl)) {
    Err = "truncated inline-site count";
    return false;
  }
  std::vector<InlineSlot> Tmp;
  ProfileKey PrevISite;
  for (uint64_t I = 0; I != NInl; ++I) {
    uint64_t NCallees;
    if (!R.uleb(Idx) || !R.uleb(Disc) || !R.uleb(NCallees) ||
        Idx > UINT32_MAX || Disc > UINT32_MAX) {
      Err = "malformed inline site";
      return false;
    }
    ProfileKey K(static_cast<uint32_t>(Idx), static_cast<uint32_t>(Disc));
    if (I && !(PrevISite < K)) {
      Err = "inline sites not in ascending key order";
      return false;
    }
    PrevISite = K;
    uint64_t PrevName = 0;
    for (uint64_t C = 0; C != NCallees; ++C) {
      uint64_t NameIdx, Guid, Checksum;
      if (!R.uleb(NameIdx) || !R.uleb(Guid) || !R.uleb(Checksum) ||
          NameIdx >= NM.Map.size()) {
        Err = "malformed inlinee";
        return false;
      }
      if (C && NameIdx <= PrevName) {
        Err = "inlinees not in ascending name order";
        return false;
      }
      PrevName = NameIdx;
      uint32_t Child;
      if (!decodeRecordView(R, A, NM, Depth + 1, Child, Err))
        return false;
      NameId CN = NM(NameIdx);
      FuncRecord &CR = A.Records[Child];
      CR.Name = CN;
      CR.Guid = Guid;
      CR.Checksum = Checksum;
      Tmp.push_back({K, CN, Child});
    }
  }
  Rec.InlineesBegin = static_cast<uint32_t>(A.Inlinees.size());
  A.Inlinees.insert(A.Inlinees.end(), Tmp.begin(), Tmp.end());
  Rec.InlineesEnd = static_cast<uint32_t>(A.Inlinees.size());
  RecOut = static_cast<uint32_t>(A.Records.size());
  A.Records.push_back(Rec);
  return true;
}

/// Trie-DFS order over context frame slices: lexicographic on the path
/// keys [(0, F0), (S0, F1), (S1, F2), ...], prefixes first — exactly the
/// (site, callee) child order ContextProfile::forEachNode visits in.
/// Callee frames compare as strings: with lazy interning the arena ids
/// follow first-reference order, not name order, so id comparison would
/// not be name comparison.
int compareContextFrames(const ProfileArena &A, const ContextRecord &X,
                         const ContextRecord &Y) {
  uint32_t LX = X.FramesEnd - X.FramesBegin;
  uint32_t LY = Y.FramesEnd - Y.FramesBegin;
  uint32_t L = std::min(LX, LY);
  for (uint32_t I = 0; I != L; ++I) {
    uint32_t SX = I ? A.Frames[X.FramesBegin + I - 1].Site : 0;
    uint32_t SY = I ? A.Frames[Y.FramesBegin + I - 1].Site : 0;
    if (SX != SY)
      return SX < SY ? -1 : 1;
    NameId FX = A.Frames[X.FramesBegin + I].Func;
    NameId FY = A.Frames[Y.FramesBegin + I].Func;
    if (FX != FY) {
      int C = A.Names.name(FX).compare(A.Names.name(FY));
      if (C != 0)
        return C < 0 ? -1 : 1;
    }
  }
  if (LX != LY)
    return LX < LY ? -1 : 1;
  return 0;
}

/// Non-compact layout: u32 count, count u32 cumulative end offsets, then
/// the concatenated name blob — every name is random-accessible, so
/// open() builds its views with plain word loads instead of a varint
/// walk over the whole table. Compact layout: u32 count + count u64
/// GUIDs. The table is emitted sorted-unique (callers collect names into
/// a std::set); findFunction's binary search and the canonical
/// "ascending index is ascending name" record order stand on that.
std::string encodeStringTable(const std::vector<std::string> &Strings,
                              bool Compact) {
  ByteWriter W;
  W.u32(static_cast<uint32_t>(Strings.size()));
  if (Compact) {
    for (const std::string &S : Strings)
      W.u64(computeFunctionGuid(S));
    return W.take();
  }
  uint32_t End = 0;
  for (const std::string &S : Strings) {
    End += static_cast<uint32_t>(S.size());
    W.u32(End);
  }
  for (const std::string &S : Strings)
    W.bytes(S);
  return W.take();
}

std::string encodeEpochTable(const std::vector<EpochInfo> &Epochs) {
  ByteWriter W;
  W.uleb(Epochs.size());
  for (const EpochInfo &E : Epochs) {
    W.uleb(E.Timestamp);
    W.uleb(E.TotalSamples);
    W.uleb(E.DecayPermille);
  }
  return W.take();
}

std::string encodeSummary(std::vector<uint64_t> Counts) {
  std::sort(Counts.rbegin(), Counts.rend());
  ByteWriter W;
  std::vector<std::pair<uint64_t, uint64_t>> Dist;
  for (uint64_t C : Counts) {
    if (!Dist.empty() && Dist.back().first == C)
      ++Dist.back().second;
    else
      Dist.push_back({C, 1});
  }
  W.uleb(Dist.size());
  for (const auto &[Value, Mult] : Dist) {
    W.uleb(Value);
    W.uleb(Mult);
  }
  return W.take();
}

struct IndexEntryW {
  uint32_t NameIdx;
  uint64_t Offset;
  uint64_t Size;
  uint64_t Total;
  uint64_t Head;
};

/// Fixed 36-byte entries (u32 name index + four u64s), no count prefix —
/// the count is the section size over 36. Fixed width costs bytes
/// relative to varints but lets open() decode the index with straight
/// word loads, which is what keeps the zero-copy open O(bytes) with a
/// tiny constant.
std::string encodeFuncIndex(const std::vector<IndexEntryW> &Entries) {
  ByteWriter W;
  for (const IndexEntryW &E : Entries) {
    W.u32(E.NameIdx);
    W.u64(E.Offset);
    W.u64(E.Size);
    W.u64(E.Total);
    W.u64(E.Head);
  }
  return W.take();
}

/// Lays out header + section table + payloads and patches in the content
/// hash over everything after the hash field itself.
std::string
assembleStore(uint8_t Flags,
              const std::vector<std::pair<StoreSection, std::string>> &Secs) {
  ByteWriter W;
  W.bytes(std::string_view(StoreMagic, sizeof(StoreMagic)));
  W.u16(StoreVersion);
  W.u8(Flags);
  W.u8(0); // reserved
  W.u64(0); // content hash, patched below
  W.u32(static_cast<uint32_t>(Secs.size()));
  uint64_t Off = StoreHeaderSize + Secs.size() * StoreSectionEntrySize;
  for (const auto &[Id, Body] : Secs) {
    W.u32(static_cast<uint32_t>(Id));
    W.u32(0);
    W.u64(Off);
    W.u64(Body.size());
    Off += Body.size();
  }
  for (const auto &[Id, Body] : Secs)
    W.bytes(Body);
  std::string Out = W.take();
  uint64_t Hash = hashStoreBytes(std::string_view(Out).substr(16));
  for (int I = 0; I != 8; ++I)
    Out[8 + I] = static_cast<char>(Hash >> (8 * I));
  return Out;
}

const char *sectionName(StoreSection S) {
  switch (S) {
  case StoreSection::StringTable:
    return "string-table";
  case StoreSection::EpochTable:
    return "epoch-table";
  case StoreSection::FuncIndex:
    return "func-index";
  case StoreSection::FlatPayload:
    return "flat-payload";
  case StoreSection::CSPayload:
    return "cs-payload";
  case StoreSection::ProbeMeta:
    return "probe-meta";
  case StoreSection::Summary:
    return "summary";
  }
  return "<unknown>";
}

} // namespace

std::string writeStore(const FlatProfile &Profile,
                       const std::vector<EpochInfo> &Epochs,
                       const StoreWriteOptions &Opts, bool IsInstr) {
  std::set<std::string> Strs;
  for (const auto &[Name, P] : Profile.Functions) {
    Strs.insert(Name);
    collectRefs(P, Strs);
  }
  StringIndex SI(std::move(Strs));

  ByteWriter Payload;
  ByteWriter ProbeMeta;
  std::vector<IndexEntryW> Entries;
  // Probe metadata is fixed 16-byte {guid, checksum} pairs parallel to the
  // index — no count prefix; the section size must be 16x the index size.
  for (const auto &[Name, P] : Profile.Functions) {
    uint64_t Off = Payload.size();
    encodeRecord(Payload, P, SI);
    Entries.push_back({SI.index(Name), Off, Payload.size() - Off,
                       P.TotalSamples, P.HeadSamples});
    ProbeMeta.u64(P.Guid);
    ProbeMeta.u64(P.Checksum);
  }

  uint8_t Flags = 0;
  if (Profile.Kind == ProfileKind::ProbeBased)
    Flags |= SF_ProbeBased;
  if (Opts.CompactNames)
    Flags |= SF_CompactNames;
  if (IsInstr)
    Flags |= SF_ExactCounts;
  return assembleStore(
      Flags,
      {{StoreSection::StringTable, encodeStringTable(SI.all(), Opts.CompactNames)},
       {StoreSection::EpochTable, encodeEpochTable(Epochs)},
       {StoreSection::FuncIndex, encodeFuncIndex(Entries)},
       {StoreSection::FlatPayload, Payload.take()},
       {StoreSection::ProbeMeta, ProbeMeta.take()},
       {StoreSection::Summary, encodeSummary(hotCountDistribution(Profile))}});
}

std::string writeStore(const ContextProfile &Profile,
                       const std::vector<EpochInfo> &Epochs,
                       const StoreWriteOptions &Opts) {
  // Contexts grouped per leaf function (the unit of lazy loading); the
  // in-group order is the trie DFS order, which a reload reproduces.
  std::map<std::string,
           std::vector<std::pair<SampleContext, const ContextTrieNode *>>>
      ByLeaf;
  std::set<std::string> Strs;
  Profile.forEachNode([&](const SampleContext &Ctx, const ContextTrieNode &N) {
    ByLeaf[Ctx.back().Func].push_back({Ctx, &N});
    for (const ContextFrame &F : Ctx)
      Strs.insert(F.Func);
    collectRefs(N.Profile, Strs);
  });
  StringIndex SI(std::move(Strs));

  ByteWriter Payload;
  std::vector<IndexEntryW> Entries;
  for (const auto &[Leaf, Nodes] : ByLeaf) {
    uint64_t Off = Payload.size();
    uint64_t Total = 0, Head = 0;
    Payload.uleb(Nodes.size());
    for (const auto &[Ctx, N] : Nodes) {
      Payload.uleb(Ctx.size());
      for (const ContextFrame &F : Ctx) {
        Payload.uleb(SI.index(F.Func));
        Payload.uleb(F.Site);
      }
      Payload.u8(N->ShouldBeInlined ? 1 : 0);
      Payload.uleb(N->Profile.Guid);
      Payload.uleb(N->Profile.Checksum);
      encodeRecord(Payload, N->Profile, SI);
      Total = saturatingAdd(Total, N->Profile.TotalSamples);
      Head = saturatingAdd(Head, N->Profile.HeadSamples);
    }
    Entries.push_back(
        {SI.index(Leaf), Off, Payload.size() - Off, Total, Head});
  }

  uint8_t Flags = SF_ContextSensitive;
  if (Profile.Kind == ProfileKind::ProbeBased)
    Flags |= SF_ProbeBased;
  if (Opts.CompactNames)
    Flags |= SF_CompactNames;
  return assembleStore(
      Flags,
      {{StoreSection::StringTable, encodeStringTable(SI.all(), Opts.CompactNames)},
       {StoreSection::EpochTable, encodeEpochTable(Epochs)},
       {StoreSection::FuncIndex, encodeFuncIndex(Entries)},
       {StoreSection::CSPayload, Payload.take()},
       {StoreSection::Summary, encodeSummary(hotCountDistribution(Profile))}});
}

std::string_view ProfileStore::section(StoreSection S) const {
  const SectionRef &Ref = Sections[static_cast<uint32_t>(S)];
  if (!Ref.Present)
    return {};
  return data().substr(Ref.Offset, Ref.Size);
}

bool ProfileStore::decodeSections(std::string &Err) {
  std::string_view Bytes = data();
  ByteReader Header(Bytes);
  std::string_view Magic;
  uint16_t Version;
  uint8_t Reserved;
  uint32_t NumSections;
  uint64_t Hash;
  if (!Header.bytes(sizeof(StoreMagic), Magic) ||
      std::memcmp(Magic.data(), StoreMagic, sizeof(StoreMagic)) != 0) {
    Err = "not a profile store (bad magic)";
    return false;
  }
  if (!Header.u16(Version) || Version != StoreVersion) {
    Err = "unsupported store version";
    return false;
  }
  if (!Header.u8(Flags) || (Flags & ~StoreKnownFlags)) {
    Err = "unknown flag bits";
    return false;
  }
  if (!Header.u8(Reserved) || Reserved != 0) {
    Err = "nonzero reserved header byte";
    return false;
  }
  if (!Header.u64(Hash) || Hash != hashStoreBytes(Bytes.substr(16))) {
    Err = "content hash mismatch (truncated or corrupted store)";
    return false;
  }
  if (!Header.u32(NumSections) || NumSections > 64) {
    Err = "malformed section count";
    return false;
  }
  uint64_t DataStart =
      StoreHeaderSize + uint64_t(NumSections) * StoreSectionEntrySize;
  if (DataStart > Bytes.size()) {
    Err = "section table past end of store";
    return false;
  }
  for (uint32_t I = 0; I != NumSections; ++I) {
    uint32_t Id, Pad;
    uint64_t Off, Size;
    if (!Header.u32(Id) || !Header.u32(Pad) || !Header.u64(Off) ||
        !Header.u64(Size)) {
      Err = "truncated section table";
      return false;
    }
    if (Off < DataStart || Size > Bytes.size() || Off > Bytes.size() - Size) {
      Err = "section bounds outside store";
      return false;
    }
    if (Id == 0 || Id >= 8)
      continue; // Unknown section: skip (forward compatibility).
    if (Sections[Id].Present) {
      Err = "duplicate section";
      return false;
    }
    Sections[Id] = {Off, Size, true};
  }

  auto Required = [&](StoreSection S) {
    if (!Sections[static_cast<uint32_t>(S)].Present) {
      Err = std::string("missing required section: ") + sectionName(S);
      return false;
    }
    return true;
  };
  if (!Required(StoreSection::StringTable) ||
      !Required(StoreSection::EpochTable) ||
      !Required(StoreSection::FuncIndex) || !Required(StoreSection::Summary) ||
      !Required(isCS() ? StoreSection::CSPayload : StoreSection::FlatPayload))
    return false;
  if (!isCS() && !Required(StoreSection::ProbeMeta))
    return false;

  // String table: u32 count, then either u64 GUIDs (compact) or u32
  // cumulative end offsets followed by the concatenated name blob.
  {
    std::string_view Sec = section(StoreSection::StringTable);
    if (Sec.size() < 4) {
      Err = "malformed string table";
      return false;
    }
    uint32_t Count = loadStoreWord32(Sec.data());
    if (compactNames()) {
      if (Sec.size() != 4 + 8ull * Count) {
        Err = "truncated compact string table";
        return false;
      }
      Names.reserve(Count);
      for (uint32_t I = 0; I != Count; ++I) {
        uint64_t Guid = loadStoreWord(Sec.data() + 4 + 8ull * I);
        NameGuids.push_back(Guid);
        NameStorage.push_back("guid." + std::to_string(Guid));
        Names.push_back(NameStorage.back());
      }
    } else {
      if (Sec.size() < 4 + 4ull * Count) {
        Err = "truncated string table";
        return false;
      }
      // Zero-copy: every entry stays a view into the container bytes —
      // open() allocates nothing per name. GUIDs are derived, not stored;
      // ensureGuids() hashes them on first use. Pre-sized index writes,
      // not push_back + substr: the bounds checks inside substr and the
      // grow branch in push_back defeat the compiler here and cost ~7x on
      // this loop, which open() pays on every store.
      std::string_view Blob = Sec.substr(4 + 4ull * Count);
      Names.resize(Count);
      uint32_t Prev = 0;
      for (uint32_t I = 0; I != Count; ++I) {
        uint32_t End = loadStoreWord32(Sec.data() + 4 + 4ull * I);
        if (End < Prev || End > Blob.size()) {
          Err = "malformed string table offsets";
          return false;
        }
        Names[I] = std::string_view(Blob.data() + Prev, End - Prev);
        Prev = End;
      }
      if (Prev != Blob.size()) {
        Err = "trailing bytes in string table";
        return false;
      }
      // The writer emits the table sorted-unique (a writer contract, not
      // re-validated here: findFunction's binary search and the
      // "ascending index is ascending name" record order stand on it,
      // but an unsorted table only mis-orders results — every access is
      // still bounds-checked).
    }
  }

  // Epoch table.
  {
    ByteReader R(section(StoreSection::EpochTable));
    uint64_t Count;
    if (!R.uleb(Count)) {
      Err = "malformed epoch table";
      return false;
    }
    for (uint64_t I = 0; I != Count; ++I) {
      EpochInfo E;
      uint64_t Decay;
      if (!R.uleb(E.Timestamp) || !R.uleb(E.TotalSamples) ||
          !R.uleb(Decay) || Decay > 1000) {
        Err = "malformed epoch entry";
        return false;
      }
      E.DecayPermille = static_cast<uint32_t>(Decay);
      Epochs.push_back(E);
    }
    if (!R.done()) {
      Err = "trailing bytes in epoch table";
      return false;
    }
  }

  // Function index: entries must tile the payload section exactly.
  uint64_t PayloadSize =
      Sections[static_cast<uint32_t>(isCS() ? StoreSection::CSPayload
                                            : StoreSection::FlatPayload)]
          .Size;
  {
    std::string_view Sec = section(StoreSection::FuncIndex);
    constexpr size_t EntryBytes = 36; // u32 name + 4 x u64
    if (Sec.size() % EntryBytes != 0) {
      Err = "malformed function index";
      return false;
    }
    size_t Count = Sec.size() / EntryBytes;
    Index.resize(Count);
    uint64_t Expected = 0;
    for (size_t I = 0; I != Count; ++I) {
      const char *P = Sec.data() + I * EntryBytes;
      IndexEntry &E = Index[I];
      E.NameIdx = loadStoreWord32(P);
      E.Offset = loadStoreWord(P + 4);
      E.Size = loadStoreWord(P + 12);
      E.Total = loadStoreWord(P + 20);
      E.Head = loadStoreWord(P + 28);
      if (E.NameIdx >= Names.size()) {
        Err = "malformed index entry";
        return false;
      }
      if (E.Offset != Expected || E.Size > PayloadSize - E.Offset) {
        Err = "index entries do not tile the payload";
        return false;
      }
      Expected = E.Offset + E.Size;
    }
    if (Expected != PayloadSize) {
      Err = "payload bytes not covered by the index";
      return false;
    }
  }

  // Probe metadata (flat stores): fixed 16-byte {guid, checksum} pairs,
  // parallel to the function index.
  if (!isCS()) {
    std::string_view Sec = section(StoreSection::ProbeMeta);
    if (Sec.size() != 16ull * Index.size()) {
      Err = "probe metadata does not match the function index";
      return false;
    }
    for (size_t I = 0; I != Index.size(); ++I) {
      Index[I].MetaGuid = loadStoreWord(Sec.data() + 16 * I);
      Index[I].MetaChecksum = loadStoreWord(Sec.data() + 16 * I + 8);
    }
  }

  // Summary distribution: strictly descending values, positive counts.
  {
    ByteReader R(section(StoreSection::Summary));
    uint64_t Count;
    if (!R.uleb(Count)) {
      Err = "malformed summary";
      return false;
    }
    for (uint64_t I = 0; I != Count; ++I) {
      uint64_t Value, Mult;
      if (!R.uleb(Value) || !R.uleb(Mult) || Mult == 0 ||
          (!Distribution.empty() && Value >= Distribution.back().first)) {
        Err = "malformed summary distribution";
        return false;
      }
      Distribution.push_back({Value, Mult});
    }
    if (!R.done()) {
      Err = "trailing bytes in summary";
      return false;
    }
  }
  return true;
}

Expected<ProfileStore> ProfileStore::open(std::string Bytes) {
  ProfileStore S;
  S.Owned = std::move(Bytes);
  std::string Err;
  if (!S.decodeSections(Err))
    return Status::error(Err);
  return S;
}

Expected<ProfileStore> ProfileStore::openBorrowed(std::string_view Bytes) {
  ProfileStore S;
  S.Borrowed = Bytes;
  std::string Err;
  if (!S.decodeSections(Err))
    return Status::error(Err);
  return S;
}

std::vector<std::pair<std::string, size_t>> ProfileStore::sectionSizes() const {
  std::vector<std::pair<std::string, size_t>> Out;
  for (uint32_t I = 1; I != 8; ++I)
    if (Sections[I].Present)
      Out.push_back({sectionName(static_cast<StoreSection>(I)),
                     static_cast<size_t>(Sections[I].Size)});
  return Out;
}

std::vector<std::tuple<std::string, uint64_t, uint64_t>>
ProfileStore::sectionLayout() const {
  std::vector<std::tuple<std::string, uint64_t, uint64_t>> Out;
  for (uint32_t I = 1; I != 8; ++I)
    if (Sections[I].Present)
      Out.push_back({sectionName(static_cast<StoreSection>(I)),
                     Sections[I].Offset, Sections[I].Size});
  std::sort(Out.begin(), Out.end(), [](const auto &A, const auto &B) {
    return std::get<1>(A) < std::get<1>(B);
  });
  return Out;
}

std::string_view ProfileStore::functionName(size_t I) const {
  return Names[Index[I].NameIdx];
}

uint64_t ProfileStore::functionGuid(size_t I) const {
  ensureGuids();
  return NameGuids[Index[I].NameIdx];
}

std::pair<uint64_t, uint64_t> ProfileStore::functionTile(size_t I) const {
  const SectionRef &P = Sections[static_cast<uint32_t>(
      isCS() ? StoreSection::CSPayload : StoreSection::FlatPayload)];
  return {P.Offset + Index[I].Offset, Index[I].Size};
}

uint64_t ProfileStore::totalSamples() const {
  uint64_t Total = 0;
  for (const IndexEntry &E : Index)
    Total = saturatingAdd(Total, E.Total);
  return Total;
}

void ProfileStore::ensureGuids() const {
  if (NameGuids.size() == Names.size())
    return;
  NameGuids.reserve(Names.size());
  for (std::string_view N : Names)
    NameGuids.push_back(computeFunctionGuid(N));
}

void ProfileStore::ensureLookups() const {
  if (LookupsBuilt)
    return;
  ensureGuids();
  for (uint32_t I = 0; I != Index.size(); ++I) {
    // Non-compact stores never need the name map — findFunction binary
    // searches the name-sorted index instead. Compact/resolved names are
    // not in table order, so they get the map.
    if (compactNames())
      NameToFunc[Names[Index[I].NameIdx]] = I;
    GuidToFunc.emplace(NameGuids[Index[I].NameIdx], I);
  }
  LookupsBuilt = true;
}

int ProfileStore::findFunction(const std::string &Name) const {
  if (compactNames()) {
    ensureLookups();
    auto It = NameToFunc.find(Name);
    return It == NameToFunc.end() ? -1 : static_cast<int>(It->second);
  }
  // The index is name-sorted (the writer iterates a sorted map over a
  // sorted-unique string table — a writer contract), so lookup is a
  // binary search over borrowed views — no side tables, nothing built up
  // front.
  auto It = std::lower_bound(
      Index.begin(), Index.end(), std::string_view(Name),
      [this](const IndexEntry &E, std::string_view N) {
        return Names[E.NameIdx] < N;
      });
  if (It == Index.end() || Names[It->NameIdx] != Name)
    return -1;
  return static_cast<int>(It - Index.begin());
}

int ProfileStore::findFunctionByGuid(uint64_t Guid) const {
  ensureLookups();
  auto It = GuidToFunc.find(Guid);
  return It == GuidToFunc.end() ? -1 : static_cast<int>(It->second);
}

void ProfileStore::resolveNames(const Module &M) {
  if (!compactNames())
    return;
  std::map<uint64_t, const std::string *> ByGuid;
  for (const auto &F : M.Functions)
    ByGuid[F->getGuid()] = &F->getName();
  for (size_t I = 0; I != Names.size(); ++I) {
    auto It = ByGuid.find(NameGuids[I]);
    if (It != ByGuid.end()) {
      // Copy the module's name: the Module need not outlive the store.
      NameStorage.push_back(*It->second);
      Names[I] = NameStorage.back();
    }
  }
  NameToFunc.clear();
  GuidToFunc.clear();
  LookupsBuilt = false;
}

Status ProfileStore::loadFunction(size_t I, FlatProfile &Into) const {
  if (isCS())
    return Status::error("store holds a context-sensitive profile; use "
                         "loadFunctionContexts");
  const IndexEntry &E = Index[I];
  ByteReader R(section(StoreSection::FlatPayload).substr(E.Offset, E.Size));
  FunctionProfile P;
  std::string Err;
  if (!decodeRecord(R, P, Names, 0, Err))
    return Status::error(Err);
  if (!R.done())
    return Status::error("record shorter than its index slice");
  if (P.TotalSamples != E.Total || P.HeadSamples != E.Head)
    return Status::error("record totals disagree with the function index");
  P.Name = std::string(Names[E.NameIdx]);
  P.Guid = E.MetaGuid;
  P.Checksum = E.MetaChecksum;
  Into.Kind = kind();
  Into.Functions[P.Name] = std::move(P);
  return {};
}

Status ProfileStore::loadFunctionContexts(size_t I,
                                          ContextProfile &Into) const {
  std::string Err;
  if (!loadFunctionContextsImpl(I, Into, Err))
    return Status::error(Err);
  return {};
}

bool ProfileStore::loadFunctionContextsImpl(size_t I, ContextProfile &Into,
                                            std::string &Err) const {
  if (!isCS()) {
    Err = "store holds a flat profile; use loadFunction";
    return false;
  }
  const IndexEntry &E = Index[I];
  ByteReader R(section(StoreSection::CSPayload).substr(E.Offset, E.Size));
  uint64_t NContexts;
  if (!R.uleb(NContexts)) {
    Err = "malformed context block";
    return false;
  }
  Into.Kind = kind();
  for (uint64_t C = 0; C != NContexts; ++C) {
    uint64_t NFrames;
    if (!R.uleb(NFrames) || NFrames == 0 || NFrames > R.remaining()) {
      Err = "malformed context frame count";
      return false;
    }
    SampleContext Ctx;
    for (uint64_t F = 0; F != NFrames; ++F) {
      uint64_t NameIdx, Site;
      if (!R.uleb(NameIdx) || !R.uleb(Site) || NameIdx >= Names.size() ||
          Site > UINT32_MAX) {
        Err = "malformed context frame";
        return false;
      }
      Ctx.push_back(
          {std::string(Names[NameIdx]), static_cast<uint32_t>(Site)});
    }
    if (Ctx.back().Site != 0 || Ctx.back().Func != Names[E.NameIdx]) {
      Err = "context leaf disagrees with its index entry";
      return false;
    }
    uint8_t NodeFlags;
    uint64_t Guid, Checksum;
    if (!R.u8(NodeFlags) || NodeFlags > 1 || !R.uleb(Guid) ||
        !R.uleb(Checksum)) {
      Err = "malformed context node header";
      return false;
    }
    FunctionProfile P;
    if (!decodeRecord(R, P, Names, 0, Err))
      return false;
    P.Name = Ctx.back().Func;
    P.Guid = Guid;
    P.Checksum = Checksum;
    ContextTrieNode &N = Into.getOrCreateNode(Ctx);
    N.HasProfile = true;
    N.ShouldBeInlined = NodeFlags & 1;
    N.Profile = std::move(P);
  }
  if (!R.done()) {
    Err = "context block shorter than its index slice";
    return false;
  }
  return true;
}

Expected<FlatProfile> ProfileStore::loadFlat() const {
  FlatProfile Out;
  Out.Kind = kind();
  for (size_t I = 0; I != Index.size(); ++I)
    if (Status S = loadFunction(I, Out); !S.ok())
      return S;
  return Out;
}

Expected<ContextProfile> ProfileStore::loadContext() const {
  ContextProfile Out;
  Out.Kind = kind();
  for (size_t I = 0; I != Index.size(); ++I)
    if (Status S = loadFunctionContexts(I, Out); !S.ok())
      return S;
  return Out;
}

Expected<FlatProfileView> ProfileStore::loadFlatView() const {
  FlatViewLoader L(*this);
  for (size_t I = 0; I != Index.size(); ++I)
    if (Status S = L.load(I); !S.ok())
      return S;
  return L.take();
}

Expected<ContextProfileView> ProfileStore::loadContextView() const {
  ContextViewLoader L(*this);
  for (size_t I = 0; I != Index.size(); ++I)
    if (Status S = L.load(I); !S.ok())
      return S;
  ContextProfileView V = L.take();
  // Context blocks are grouped per leaf function (the lazy-load unit), so
  // the concatenation is DFS-ordered only within each block. Restore the
  // global trie-DFS order the view contract requires.
  const ProfileArena &A = V.Arena;
  std::sort(V.Contexts.begin(), V.Contexts.end(),
            [&A](const ContextRecord &X, const ContextRecord &Y) {
              return compareContextFrames(A, X, Y) < 0;
            });
  return V;
}

uint64_t ProfileStore::hotThreshold(double Cutoff) const {
  std::vector<uint64_t> Counts;
  for (const auto &[Value, Mult] : Distribution)
    for (uint64_t I = 0; I != Mult; ++I)
      Counts.push_back(Value);
  return summaryThreshold(std::move(Counts), Cutoff);
}

FlatViewLoader::FlatViewLoader(const ProfileStore &S) : S(S) {
  V.Kind = S.kind();
  NameMap.assign(S.Names.size(), InvalidNameId);
}

Status FlatViewLoader::load(size_t I) {
  if (S.isCS())
    return Status::error("store holds a context-sensitive profile; use "
                         "ContextViewLoader");
  const ProfileStore::IndexEntry &E = S.Index[I];
  ByteReader R(S.section(StoreSection::FlatPayload).substr(E.Offset, E.Size));
  NameMapper NM{S.Names, V.Arena.Names, NameMap};
  uint32_t Rec;
  std::string Err;
  if (!decodeRecordView(R, V.Arena, NM, 0, Rec, Err))
    return Status::error(Err);
  if (!R.done())
    return Status::error("record shorter than its index slice");
  FuncRecord &FR = V.Arena.Records[Rec];
  if (FR.TotalSamples != E.Total || FR.HeadSamples != E.Head)
    return Status::error("record totals disagree with the function index");
  FR.Name = NM(E.NameIdx);
  FR.Guid = E.MetaGuid;
  FR.Checksum = E.MetaChecksum;
  V.Functions.push_back(Rec);
  return {};
}

ContextViewLoader::ContextViewLoader(const ProfileStore &S) : S(S) {
  V.Kind = S.kind();
  NameMap.assign(S.Names.size(), InvalidNameId);
}

Status ContextViewLoader::load(size_t I) {
  if (!S.isCS())
    return Status::error("store holds a flat profile; use FlatViewLoader");
  const ProfileStore::IndexEntry &E = S.Index[I];
  ByteReader R(S.section(StoreSection::CSPayload).substr(E.Offset, E.Size));
  NameMapper NM{S.Names, V.Arena.Names, NameMap};
  uint64_t NContexts;
  if (!R.uleb(NContexts))
    return Status::error("malformed context block");
  for (uint64_t C = 0; C != NContexts; ++C) {
    uint64_t NFrames;
    if (!R.uleb(NFrames) || NFrames == 0 || NFrames > R.remaining())
      return Status::error("malformed context frame count");
    ContextRecord CR;
    CR.FramesBegin = static_cast<uint32_t>(V.Arena.Frames.size());
    for (uint64_t F = 0; F != NFrames; ++F) {
      uint64_t NameIdx, Site;
      if (!R.uleb(NameIdx) || !R.uleb(Site) || NameIdx >= NM.Map.size() ||
          Site > UINT32_MAX)
        return Status::error("malformed context frame");
      V.Arena.Frames.push_back({NM(NameIdx), static_cast<uint32_t>(Site)});
    }
    CR.FramesEnd = static_cast<uint32_t>(V.Arena.Frames.size());
    FrameSlot Leaf = V.Arena.Frames.back();
    if (Leaf.Site != 0 || Leaf.Func != NM(E.NameIdx))
      return Status::error("context leaf disagrees with its index entry");
    uint8_t NodeFlags;
    uint64_t Guid, Checksum;
    if (!R.u8(NodeFlags) || NodeFlags > 1 || !R.uleb(Guid) ||
        !R.uleb(Checksum))
      return Status::error("malformed context node header");
    std::string Err;
    if (!decodeRecordView(R, V.Arena, NM, 0, CR.Rec, Err))
      return Status::error(Err);
    FuncRecord &FR = V.Arena.Records[CR.Rec];
    FR.Name = Leaf.Func;
    FR.Guid = Guid;
    FR.Checksum = Checksum;
    CR.ShouldBeInlined = NodeFlags & 1;
    V.Contexts.push_back(CR);
  }
  if (!R.done())
    return Status::error("context block shorter than its index slice");
  return {};
}

namespace {

/// Shared ingest plumbing: opens the prior store (if any) over the
/// caller's bytes without copying them (the bytes outlive every use of
/// the store — they are only replaced after the last read).
bool openPrior(const std::string &Bytes, ProfileStore &Prior, bool &Exists,
               IngestResult &R) {
  Exists = !Bytes.empty();
  if (!Exists)
    return true;
  Expected<ProfileStore> S = ProfileStore::openBorrowed(Bytes);
  if (!S) {
    R.Error = "cannot open existing store: " + S.status().message();
    return false;
  }
  Prior = S.take();
  if (Prior.compactNames()) {
    R.Error = "cannot ingest into a compact-name store (names are not "
              "recoverable without a module)";
    return false;
  }
  return true;
}

} // namespace

IngestResult ingestEpoch(std::string &Bytes, const FlatProfile &Fresh,
                         const IngestOptions &Opts) {
  IngestResult R;
  if (Opts.DecayPermille > 1000) {
    R.Error = "decay must be in [0, 1000] permille";
    return R;
  }
  ProfileStore Prior;
  bool Exists;
  if (!openPrior(Bytes, Prior, Exists, R))
    return R;

  bool Instr = Exists ? Prior.isInstr() : Opts.ExactCounts;
  FlatProfileView AggV;
  if (Exists) {
    if (Prior.isCS()) {
      R.Error = "store holds a context-sensitive profile; flat epoch "
                "rejected";
      return R;
    }
    // Decay 0 = replace: history is fully decayed away, so the prior
    // aggregate is never materialized at all.
    if (Opts.DecayPermille != 0) {
      Expected<FlatProfileView> V = Prior.loadFlatView();
      if (!V) {
        R.Error = "cannot materialize existing store: " + V.status().message();
        return R;
      }
      AggV = V.take();
      scaleFlatView(AggV, Opts.DecayPermille, 1000, Instr);
    }
  }
  if (!AggV.Functions.empty() && AggV.Kind != Fresh.Kind) {
    R.Error = "epoch profile kind disagrees with the store";
    return R;
  }
  FlatProfileView FreshV = flatViewOf(Fresh);
  // An empty aggregate folds exactly like the map path's empty
  // FlatProfile destination: the fresh epoch is the sole merge *source*
  // (IntoEmptyDst), so kind adoption and MergeStats come out identical.
  FlatProfileView Merged =
      AggV.Functions.empty()
          ? mergeFlatViews({&FreshV}, R.Merge, /*IntoEmptyDst=*/true)
          : mergeFlatViews({&AggV, &FreshV}, R.Merge);
  FlatProfile Agg = flatProfileOf(Merged);
  std::vector<EpochInfo> Epochs = Prior.epochs();
  Epochs.push_back({Opts.Timestamp, Fresh.totalSamples(), Opts.DecayPermille});

  if (Opts.Verify != VerifyLevel::Off) {
    VerifierOptions VO;
    VO.Level = Opts.Verify;
    VO.ExactCounts = Instr;
    VO.CheckHeadEdges = !Instr;
    R.Verify = verifyFlatProfile(Agg, VO);
    if (!R.Verify.ok()) {
      R.Error = "post-ingest verification failed: " + R.Verify.str();
      return R;
    }
  }
  Bytes = writeStore(Agg, Epochs, Opts.Write, Instr);
  R.Ok = true;
  R.EpochsNow = Epochs.size();
  return R;
}

IngestResult ingestEpoch(std::string &Bytes, const ContextProfile &Fresh,
                         const IngestOptions &Opts) {
  IngestResult R;
  if (Opts.DecayPermille > 1000) {
    R.Error = "decay must be in [0, 1000] permille";
    return R;
  }
  ProfileStore Prior;
  bool Exists;
  if (!openPrior(Bytes, Prior, Exists, R))
    return R;

  ContextProfileView AggV;
  if (Exists) {
    if (!Prior.isCS()) {
      R.Error = "store holds a flat profile; context-sensitive epoch "
                "rejected";
      return R;
    }
    if (Opts.DecayPermille != 0) {
      Expected<ContextProfileView> V = Prior.loadContextView();
      if (!V) {
        R.Error = "cannot materialize existing store: " + V.status().message();
        return R;
      }
      AggV = V.take();
      scaleContextView(AggV, Opts.DecayPermille, 1000);
    }
  }
  if (!AggV.Contexts.empty() && AggV.Kind != Fresh.Kind) {
    R.Error = "epoch profile kind disagrees with the store";
    return R;
  }
  ContextProfileView FreshV = contextViewOf(Fresh);
  ContextProfileView Merged =
      AggV.Contexts.empty()
          ? mergeContextViews({&FreshV}, R.Merge, /*IntoEmptyDst=*/true)
          : mergeContextViews({&AggV, &FreshV}, R.Merge);
  ContextProfile Agg = contextProfileOf(Merged);
  std::vector<EpochInfo> Epochs = Prior.epochs();
  Epochs.push_back({Opts.Timestamp, Fresh.totalSamples(), Opts.DecayPermille});

  if (Opts.Verify != VerifyLevel::Off) {
    VerifierOptions VO;
    VO.Level = Opts.Verify;
    R.Verify = verifyContextProfile(Agg, VO);
    if (!R.Verify.ok()) {
      R.Error = "post-ingest verification failed: " + R.Verify.str();
      return R;
    }
  }
  Bytes = writeStore(Agg, Epochs, Opts.Write);
  R.Ok = true;
  R.EpochsNow = Epochs.size();
  return R;
}

} // namespace csspgo

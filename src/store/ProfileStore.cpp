//===- store/ProfileStore.cpp - Binary profile store ------------------------===//

#include "store/ProfileStore.h"

#include "ir/Module.h"
#include "profile/ProfileSummary.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <set>

namespace csspgo {

namespace {

/// Inlinee nesting beyond this is rejected at decode time (the generators
/// produce depth <= the inline depth limit, far below this).
constexpr unsigned MaxRecordDepth = 64;

void collectRefs(const FunctionProfile &P, std::set<std::string> &S) {
  for (const auto &[K, Targets] : P.Calls)
    for (const auto &[Callee, N] : Targets)
      S.insert(Callee);
  for (const auto &[K, Map] : P.Inlinees)
    for (const auto &[Callee, Sub] : Map) {
      S.insert(Callee);
      collectRefs(Sub, S);
    }
}

/// Deduplicating string table under construction: sorted-unique entries,
/// so equal profiles always produce byte-identical tables.
class StringIndex {
public:
  explicit StringIndex(std::set<std::string> Set)
      : Strings(Set.begin(), Set.end()) {
    for (uint32_t I = 0; I != Strings.size(); ++I)
      Map[Strings[I]] = I;
  }

  uint32_t index(const std::string &S) const { return Map.at(S); }
  const std::vector<std::string> &all() const { return Strings; }

private:
  std::vector<std::string> Strings;
  std::map<std::string, uint32_t> Map;
};

void encodeRecord(ByteWriter &W, const FunctionProfile &P,
                  const StringIndex &SI) {
  W.uleb(P.TotalSamples);
  W.uleb(P.HeadSamples);
  W.uleb(P.Body.size());
  for (const auto &[K, N] : P.Body) {
    W.uleb(K.Index);
    W.uleb(K.Disc);
    W.uleb(N);
  }
  W.uleb(P.Calls.size());
  for (const auto &[K, Targets] : P.Calls) {
    W.uleb(K.Index);
    W.uleb(K.Disc);
    W.uleb(Targets.size());
    for (const auto &[Callee, N] : Targets) {
      W.uleb(SI.index(Callee));
      W.uleb(N);
    }
  }
  W.uleb(P.Inlinees.size());
  for (const auto &[K, Map] : P.Inlinees) {
    W.uleb(K.Index);
    W.uleb(K.Disc);
    W.uleb(Map.size());
    for (const auto &[Callee, Sub] : Map) {
      W.uleb(SI.index(Callee));
      W.uleb(Sub.Guid);
      W.uleb(Sub.Checksum);
      encodeRecord(W, Sub, SI);
    }
  }
}

bool decodeRecord(ByteReader &R, FunctionProfile &P,
                  const std::vector<std::string> &Names, unsigned Depth,
                  std::string &Err) {
  if (Depth > MaxRecordDepth) {
    Err = "inlinee nesting exceeds depth limit";
    return false;
  }
  uint64_t NBody, NCalls, NInl, Idx, Disc, N;
  if (!R.uleb(P.TotalSamples) || !R.uleb(P.HeadSamples) || !R.uleb(NBody)) {
    Err = "truncated record header";
    return false;
  }
  for (uint64_t I = 0; I != NBody; ++I) {
    if (!R.uleb(Idx) || !R.uleb(Disc) || !R.uleb(N) || Idx > UINT32_MAX ||
        Disc > UINT32_MAX) {
      Err = "malformed body entry";
      return false;
    }
    ProfileKey K(static_cast<uint32_t>(Idx), static_cast<uint32_t>(Disc));
    if (!P.Body.emplace(K, N).second) {
      Err = "duplicate body key";
      return false;
    }
  }
  if (!R.uleb(NCalls)) {
    Err = "truncated call-site count";
    return false;
  }
  for (uint64_t I = 0; I != NCalls; ++I) {
    uint64_t NTargets;
    if (!R.uleb(Idx) || !R.uleb(Disc) || !R.uleb(NTargets) ||
        Idx > UINT32_MAX || Disc > UINT32_MAX) {
      Err = "malformed call site";
      return false;
    }
    ProfileKey K(static_cast<uint32_t>(Idx), static_cast<uint32_t>(Disc));
    auto [SiteIt, Fresh] = P.Calls.emplace(
        K, std::map<std::string, uint64_t>());
    if (!Fresh) {
      Err = "duplicate call-site key";
      return false;
    }
    for (uint64_t T = 0; T != NTargets; ++T) {
      uint64_t NameIdx;
      if (!R.uleb(NameIdx) || !R.uleb(N) || NameIdx >= Names.size()) {
        Err = "malformed call target";
        return false;
      }
      if (!SiteIt->second.emplace(Names[NameIdx], N).second) {
        Err = "duplicate call target";
        return false;
      }
    }
  }
  if (!R.uleb(NInl)) {
    Err = "truncated inline-site count";
    return false;
  }
  for (uint64_t I = 0; I != NInl; ++I) {
    uint64_t NCallees;
    if (!R.uleb(Idx) || !R.uleb(Disc) || !R.uleb(NCallees) ||
        Idx > UINT32_MAX || Disc > UINT32_MAX) {
      Err = "malformed inline site";
      return false;
    }
    ProfileKey K(static_cast<uint32_t>(Idx), static_cast<uint32_t>(Disc));
    auto [SiteIt, Fresh] = P.Inlinees.emplace(
        K, std::map<std::string, FunctionProfile>());
    if (!Fresh) {
      Err = "duplicate inline-site key";
      return false;
    }
    for (uint64_t C = 0; C != NCallees; ++C) {
      uint64_t NameIdx, Guid, Checksum;
      if (!R.uleb(NameIdx) || !R.uleb(Guid) || !R.uleb(Checksum) ||
          NameIdx >= Names.size()) {
        Err = "malformed inlinee";
        return false;
      }
      FunctionProfile Sub;
      Sub.Name = Names[NameIdx];
      Sub.Guid = Guid;
      Sub.Checksum = Checksum;
      if (!decodeRecord(R, Sub, Names, Depth + 1, Err))
        return false;
      if (!SiteIt->second.emplace(Sub.Name, std::move(Sub)).second) {
        Err = "duplicate inlinee";
        return false;
      }
    }
  }
  return true;
}

std::string encodeStringTable(const std::vector<std::string> &Strings,
                              bool Compact) {
  ByteWriter W;
  W.uleb(Strings.size());
  for (const std::string &S : Strings) {
    if (Compact) {
      W.u64(computeFunctionGuid(S));
    } else {
      W.uleb(S.size());
      W.bytes(S);
    }
  }
  return W.take();
}

std::string encodeEpochTable(const std::vector<EpochInfo> &Epochs) {
  ByteWriter W;
  W.uleb(Epochs.size());
  for (const EpochInfo &E : Epochs) {
    W.uleb(E.Timestamp);
    W.uleb(E.TotalSamples);
    W.uleb(E.DecayPermille);
  }
  return W.take();
}

std::string encodeSummary(std::vector<uint64_t> Counts) {
  std::sort(Counts.rbegin(), Counts.rend());
  ByteWriter W;
  std::vector<std::pair<uint64_t, uint64_t>> Dist;
  for (uint64_t C : Counts) {
    if (!Dist.empty() && Dist.back().first == C)
      ++Dist.back().second;
    else
      Dist.push_back({C, 1});
  }
  W.uleb(Dist.size());
  for (const auto &[Value, Mult] : Dist) {
    W.uleb(Value);
    W.uleb(Mult);
  }
  return W.take();
}

struct IndexEntryW {
  uint32_t NameIdx;
  uint64_t Offset;
  uint64_t Size;
  uint64_t Total;
  uint64_t Head;
};

std::string encodeFuncIndex(const std::vector<IndexEntryW> &Entries) {
  ByteWriter W;
  W.uleb(Entries.size());
  for (const IndexEntryW &E : Entries) {
    W.uleb(E.NameIdx);
    W.uleb(E.Offset);
    W.uleb(E.Size);
    W.uleb(E.Total);
    W.uleb(E.Head);
  }
  return W.take();
}

/// Lays out header + section table + payloads and patches in the content
/// hash over everything after the hash field itself.
std::string
assembleStore(uint8_t Flags,
              const std::vector<std::pair<StoreSection, std::string>> &Secs) {
  ByteWriter W;
  W.bytes(std::string_view(StoreMagic, sizeof(StoreMagic)));
  W.u16(StoreVersion);
  W.u8(Flags);
  W.u8(0); // reserved
  W.u64(0); // content hash, patched below
  W.u32(static_cast<uint32_t>(Secs.size()));
  uint64_t Off = StoreHeaderSize + Secs.size() * StoreSectionEntrySize;
  for (const auto &[Id, Body] : Secs) {
    W.u32(static_cast<uint32_t>(Id));
    W.u32(0);
    W.u64(Off);
    W.u64(Body.size());
    Off += Body.size();
  }
  for (const auto &[Id, Body] : Secs)
    W.bytes(Body);
  std::string Out = W.take();
  uint64_t Hash = hashBytes(std::string_view(Out).substr(16));
  for (int I = 0; I != 8; ++I)
    Out[8 + I] = static_cast<char>(Hash >> (8 * I));
  return Out;
}

const char *sectionName(StoreSection S) {
  switch (S) {
  case StoreSection::StringTable:
    return "string-table";
  case StoreSection::EpochTable:
    return "epoch-table";
  case StoreSection::FuncIndex:
    return "func-index";
  case StoreSection::FlatPayload:
    return "flat-payload";
  case StoreSection::CSPayload:
    return "cs-payload";
  case StoreSection::ProbeMeta:
    return "probe-meta";
  case StoreSection::Summary:
    return "summary";
  }
  return "<unknown>";
}

} // namespace

std::string writeStore(const FlatProfile &Profile,
                       const std::vector<EpochInfo> &Epochs,
                       const StoreWriteOptions &Opts, bool IsInstr) {
  std::set<std::string> Strs;
  for (const auto &[Name, P] : Profile.Functions) {
    Strs.insert(Name);
    collectRefs(P, Strs);
  }
  StringIndex SI(std::move(Strs));

  ByteWriter Payload;
  ByteWriter ProbeMeta;
  std::vector<IndexEntryW> Entries;
  ProbeMeta.uleb(Profile.Functions.size());
  for (const auto &[Name, P] : Profile.Functions) {
    uint64_t Off = Payload.size();
    encodeRecord(Payload, P, SI);
    Entries.push_back({SI.index(Name), Off, Payload.size() - Off,
                       P.TotalSamples, P.HeadSamples});
    ProbeMeta.uleb(P.Guid);
    ProbeMeta.uleb(P.Checksum);
  }

  uint8_t Flags = 0;
  if (Profile.Kind == ProfileKind::ProbeBased)
    Flags |= SF_ProbeBased;
  if (Opts.CompactNames)
    Flags |= SF_CompactNames;
  if (IsInstr)
    Flags |= SF_ExactCounts;
  return assembleStore(
      Flags,
      {{StoreSection::StringTable, encodeStringTable(SI.all(), Opts.CompactNames)},
       {StoreSection::EpochTable, encodeEpochTable(Epochs)},
       {StoreSection::FuncIndex, encodeFuncIndex(Entries)},
       {StoreSection::FlatPayload, Payload.take()},
       {StoreSection::ProbeMeta, ProbeMeta.take()},
       {StoreSection::Summary, encodeSummary(hotCountDistribution(Profile))}});
}

std::string writeStore(const ContextProfile &Profile,
                       const std::vector<EpochInfo> &Epochs,
                       const StoreWriteOptions &Opts) {
  // Contexts grouped per leaf function (the unit of lazy loading); the
  // in-group order is the trie DFS order, which a reload reproduces.
  std::map<std::string,
           std::vector<std::pair<SampleContext, const ContextTrieNode *>>>
      ByLeaf;
  std::set<std::string> Strs;
  Profile.forEachNode([&](const SampleContext &Ctx, const ContextTrieNode &N) {
    ByLeaf[Ctx.back().Func].push_back({Ctx, &N});
    for (const ContextFrame &F : Ctx)
      Strs.insert(F.Func);
    collectRefs(N.Profile, Strs);
  });
  StringIndex SI(std::move(Strs));

  ByteWriter Payload;
  std::vector<IndexEntryW> Entries;
  for (const auto &[Leaf, Nodes] : ByLeaf) {
    uint64_t Off = Payload.size();
    uint64_t Total = 0, Head = 0;
    Payload.uleb(Nodes.size());
    for (const auto &[Ctx, N] : Nodes) {
      Payload.uleb(Ctx.size());
      for (const ContextFrame &F : Ctx) {
        Payload.uleb(SI.index(F.Func));
        Payload.uleb(F.Site);
      }
      Payload.u8(N->ShouldBeInlined ? 1 : 0);
      Payload.uleb(N->Profile.Guid);
      Payload.uleb(N->Profile.Checksum);
      encodeRecord(Payload, N->Profile, SI);
      Total = saturatingAdd(Total, N->Profile.TotalSamples);
      Head = saturatingAdd(Head, N->Profile.HeadSamples);
    }
    Entries.push_back(
        {SI.index(Leaf), Off, Payload.size() - Off, Total, Head});
  }

  uint8_t Flags = SF_ContextSensitive;
  if (Profile.Kind == ProfileKind::ProbeBased)
    Flags |= SF_ProbeBased;
  if (Opts.CompactNames)
    Flags |= SF_CompactNames;
  return assembleStore(
      Flags,
      {{StoreSection::StringTable, encodeStringTable(SI.all(), Opts.CompactNames)},
       {StoreSection::EpochTable, encodeEpochTable(Epochs)},
       {StoreSection::FuncIndex, encodeFuncIndex(Entries)},
       {StoreSection::CSPayload, Payload.take()},
       {StoreSection::Summary, encodeSummary(hotCountDistribution(Profile))}});
}

std::string_view ProfileStore::section(StoreSection S) const {
  const SectionRef &Ref = Sections[static_cast<uint32_t>(S)];
  if (!Ref.Present)
    return {};
  return std::string_view(Bytes).substr(Ref.Offset, Ref.Size);
}

bool ProfileStore::decodeSections(std::string &Err) {
  ByteReader Header(Bytes);
  std::string_view Magic;
  uint16_t Version;
  uint8_t Reserved;
  uint32_t NumSections;
  uint64_t Hash;
  if (!Header.bytes(sizeof(StoreMagic), Magic) ||
      std::memcmp(Magic.data(), StoreMagic, sizeof(StoreMagic)) != 0) {
    Err = "not a profile store (bad magic)";
    return false;
  }
  if (!Header.u16(Version) || Version != StoreVersion) {
    Err = "unsupported store version";
    return false;
  }
  if (!Header.u8(Flags) || (Flags & ~StoreKnownFlags)) {
    Err = "unknown flag bits";
    return false;
  }
  if (!Header.u8(Reserved) || Reserved != 0) {
    Err = "nonzero reserved header byte";
    return false;
  }
  if (!Header.u64(Hash) ||
      Hash != hashBytes(std::string_view(Bytes).substr(16))) {
    Err = "content hash mismatch (truncated or corrupted store)";
    return false;
  }
  if (!Header.u32(NumSections) || NumSections > 64) {
    Err = "malformed section count";
    return false;
  }
  uint64_t DataStart =
      StoreHeaderSize + uint64_t(NumSections) * StoreSectionEntrySize;
  if (DataStart > Bytes.size()) {
    Err = "section table past end of store";
    return false;
  }
  for (uint32_t I = 0; I != NumSections; ++I) {
    uint32_t Id, Pad;
    uint64_t Off, Size;
    if (!Header.u32(Id) || !Header.u32(Pad) || !Header.u64(Off) ||
        !Header.u64(Size)) {
      Err = "truncated section table";
      return false;
    }
    if (Off < DataStart || Size > Bytes.size() || Off > Bytes.size() - Size) {
      Err = "section bounds outside store";
      return false;
    }
    if (Id == 0 || Id >= 8)
      continue; // Unknown section: skip (forward compatibility).
    if (Sections[Id].Present) {
      Err = "duplicate section";
      return false;
    }
    Sections[Id] = {Off, Size, true};
  }

  auto Required = [&](StoreSection S) {
    if (!Sections[static_cast<uint32_t>(S)].Present) {
      Err = std::string("missing required section: ") + sectionName(S);
      return false;
    }
    return true;
  };
  if (!Required(StoreSection::StringTable) ||
      !Required(StoreSection::EpochTable) ||
      !Required(StoreSection::FuncIndex) || !Required(StoreSection::Summary) ||
      !Required(isCS() ? StoreSection::CSPayload : StoreSection::FlatPayload))
    return false;
  if (!isCS() && !Required(StoreSection::ProbeMeta))
    return false;

  // String table.
  {
    ByteReader R(section(StoreSection::StringTable));
    uint64_t Count;
    if (!R.uleb(Count)) {
      Err = "malformed string table";
      return false;
    }
    for (uint64_t I = 0; I != Count; ++I) {
      if (compactNames()) {
        uint64_t Guid;
        if (!R.u64(Guid)) {
          Err = "truncated compact string table";
          return false;
        }
        NameGuids.push_back(Guid);
        Names.push_back("guid." + std::to_string(Guid));
      } else {
        uint64_t Len;
        std::string_view S;
        if (!R.uleb(Len) || !R.bytes(Len, S)) {
          Err = "truncated string table entry";
          return false;
        }
        Names.emplace_back(S);
        NameGuids.push_back(computeFunctionGuid(Names.back()));
      }
    }
    if (!R.done()) {
      Err = "trailing bytes in string table";
      return false;
    }
  }

  // Epoch table.
  {
    ByteReader R(section(StoreSection::EpochTable));
    uint64_t Count;
    if (!R.uleb(Count)) {
      Err = "malformed epoch table";
      return false;
    }
    for (uint64_t I = 0; I != Count; ++I) {
      EpochInfo E;
      uint64_t Decay;
      if (!R.uleb(E.Timestamp) || !R.uleb(E.TotalSamples) ||
          !R.uleb(Decay) || Decay > 1000) {
        Err = "malformed epoch entry";
        return false;
      }
      E.DecayPermille = static_cast<uint32_t>(Decay);
      Epochs.push_back(E);
    }
    if (!R.done()) {
      Err = "trailing bytes in epoch table";
      return false;
    }
  }

  // Function index: entries must tile the payload section exactly.
  uint64_t PayloadSize =
      Sections[static_cast<uint32_t>(isCS() ? StoreSection::CSPayload
                                            : StoreSection::FlatPayload)]
          .Size;
  {
    ByteReader R(section(StoreSection::FuncIndex));
    uint64_t Count;
    if (!R.uleb(Count)) {
      Err = "malformed function index";
      return false;
    }
    uint64_t Expected = 0;
    for (uint64_t I = 0; I != Count; ++I) {
      IndexEntry E;
      uint64_t NameIdx;
      if (!R.uleb(NameIdx) || !R.uleb(E.Offset) || !R.uleb(E.Size) ||
          !R.uleb(E.Total) || !R.uleb(E.Head) || NameIdx >= Names.size()) {
        Err = "malformed index entry";
        return false;
      }
      if (E.Offset != Expected || E.Size > PayloadSize - E.Offset) {
        Err = "index entries do not tile the payload";
        return false;
      }
      Expected = E.Offset + E.Size;
      E.NameIdx = static_cast<uint32_t>(NameIdx);
      Index.push_back(E);
    }
    if (Expected != PayloadSize) {
      Err = "payload bytes not covered by the index";
      return false;
    }
    if (!R.done()) {
      Err = "trailing bytes in function index";
      return false;
    }
  }

  // Probe metadata (flat stores): one {guid, checksum} per index entry.
  if (!isCS()) {
    ByteReader R(section(StoreSection::ProbeMeta));
    uint64_t Count;
    if (!R.uleb(Count) || Count != Index.size()) {
      Err = "probe metadata does not match the function index";
      return false;
    }
    for (IndexEntry &E : Index) {
      if (!R.uleb(E.MetaGuid) || !R.uleb(E.MetaChecksum)) {
        Err = "truncated probe metadata";
        return false;
      }
    }
    if (!R.done()) {
      Err = "trailing bytes in probe metadata";
      return false;
    }
  }

  // Summary distribution: strictly descending values, positive counts.
  {
    ByteReader R(section(StoreSection::Summary));
    uint64_t Count;
    if (!R.uleb(Count)) {
      Err = "malformed summary";
      return false;
    }
    for (uint64_t I = 0; I != Count; ++I) {
      uint64_t Value, Mult;
      if (!R.uleb(Value) || !R.uleb(Mult) || Mult == 0 ||
          (!Distribution.empty() && Value >= Distribution.back().first)) {
        Err = "malformed summary distribution";
        return false;
      }
      Distribution.push_back({Value, Mult});
    }
    if (!R.done()) {
      Err = "trailing bytes in summary";
      return false;
    }
  }

  for (uint32_t I = 0; I != Index.size(); ++I) {
    NameToFunc[Names[Index[I].NameIdx]] = I;
    GuidToFunc.emplace(NameGuids[Index[I].NameIdx], I);
  }
  return true;
}

Expected<ProfileStore> ProfileStore::open(std::string Bytes) {
  ProfileStore S;
  S.Bytes = std::move(Bytes);
  std::string Err;
  if (!S.decodeSections(Err))
    return Status::error(Err);
  return S;
}

bool ProfileStore::open(std::string Bytes, ProfileStore &Out,
                        std::string &Err) {
  Expected<ProfileStore> S = open(std::move(Bytes));
  if (!S) {
    Err = S.status().message();
    return false;
  }
  Out = S.take();
  return true;
}

std::vector<std::pair<std::string, size_t>> ProfileStore::sectionSizes() const {
  std::vector<std::pair<std::string, size_t>> Out;
  for (uint32_t I = 1; I != 8; ++I)
    if (Sections[I].Present)
      Out.push_back({sectionName(static_cast<StoreSection>(I)),
                     static_cast<size_t>(Sections[I].Size)});
  return Out;
}

const std::string &ProfileStore::functionName(size_t I) const {
  return Names[Index[I].NameIdx];
}

uint64_t ProfileStore::functionGuid(size_t I) const {
  return NameGuids[Index[I].NameIdx];
}

uint64_t ProfileStore::totalSamples() const {
  uint64_t Total = 0;
  for (const IndexEntry &E : Index)
    Total = saturatingAdd(Total, E.Total);
  return Total;
}

int ProfileStore::findFunction(const std::string &Name) const {
  auto It = NameToFunc.find(Name);
  return It == NameToFunc.end() ? -1 : static_cast<int>(It->second);
}

int ProfileStore::findFunctionByGuid(uint64_t Guid) const {
  auto It = GuidToFunc.find(Guid);
  return It == GuidToFunc.end() ? -1 : static_cast<int>(It->second);
}

void ProfileStore::resolveNames(const Module &M) {
  if (!compactNames())
    return;
  std::map<uint64_t, const std::string *> ByGuid;
  for (const auto &F : M.Functions)
    ByGuid[F->getGuid()] = &F->getName();
  for (size_t I = 0; I != Names.size(); ++I) {
    auto It = ByGuid.find(NameGuids[I]);
    if (It != ByGuid.end())
      Names[I] = *It->second;
  }
  NameToFunc.clear();
  for (uint32_t I = 0; I != Index.size(); ++I)
    NameToFunc[Names[Index[I].NameIdx]] = I;
}

Status ProfileStore::loadFunction(size_t I, FlatProfile &Into) const {
  if (isCS())
    return Status::error("store holds a context-sensitive profile; use "
                         "loadFunctionContexts");
  const IndexEntry &E = Index[I];
  ByteReader R(section(StoreSection::FlatPayload).substr(E.Offset, E.Size));
  FunctionProfile P;
  std::string Err;
  if (!decodeRecord(R, P, Names, 0, Err))
    return Status::error(Err);
  if (!R.done())
    return Status::error("record shorter than its index slice");
  if (P.TotalSamples != E.Total || P.HeadSamples != E.Head)
    return Status::error("record totals disagree with the function index");
  P.Name = Names[E.NameIdx];
  P.Guid = E.MetaGuid;
  P.Checksum = E.MetaChecksum;
  Into.Kind = kind();
  Into.Functions[P.Name] = std::move(P);
  return {};
}

bool ProfileStore::loadFunction(size_t I, FlatProfile &Into,
                                std::string &Err) const {
  Status S = loadFunction(I, Into);
  if (!S.ok())
    Err = S.message();
  return S.ok();
}

bool ProfileStore::loadFunctionContexts(size_t I, ContextProfile &Into,
                                        std::string &Err) const {
  Status S = loadFunctionContexts(I, Into);
  if (!S.ok())
    Err = S.message();
  return S.ok();
}

Status ProfileStore::loadFunctionContexts(size_t I,
                                          ContextProfile &Into) const {
  std::string Err;
  if (!loadFunctionContextsImpl(I, Into, Err))
    return Status::error(Err);
  return {};
}

bool ProfileStore::loadFunctionContextsImpl(size_t I, ContextProfile &Into,
                                            std::string &Err) const {
  if (!isCS()) {
    Err = "store holds a flat profile; use loadFunction";
    return false;
  }
  const IndexEntry &E = Index[I];
  ByteReader R(section(StoreSection::CSPayload).substr(E.Offset, E.Size));
  uint64_t NContexts;
  if (!R.uleb(NContexts)) {
    Err = "malformed context block";
    return false;
  }
  Into.Kind = kind();
  for (uint64_t C = 0; C != NContexts; ++C) {
    uint64_t NFrames;
    if (!R.uleb(NFrames) || NFrames == 0 || NFrames > R.remaining()) {
      Err = "malformed context frame count";
      return false;
    }
    SampleContext Ctx;
    for (uint64_t F = 0; F != NFrames; ++F) {
      uint64_t NameIdx, Site;
      if (!R.uleb(NameIdx) || !R.uleb(Site) || NameIdx >= Names.size() ||
          Site > UINT32_MAX) {
        Err = "malformed context frame";
        return false;
      }
      Ctx.push_back({Names[NameIdx], static_cast<uint32_t>(Site)});
    }
    if (Ctx.back().Site != 0 || Ctx.back().Func != Names[E.NameIdx]) {
      Err = "context leaf disagrees with its index entry";
      return false;
    }
    uint8_t NodeFlags;
    uint64_t Guid, Checksum;
    if (!R.u8(NodeFlags) || NodeFlags > 1 || !R.uleb(Guid) ||
        !R.uleb(Checksum)) {
      Err = "malformed context node header";
      return false;
    }
    FunctionProfile P;
    if (!decodeRecord(R, P, Names, 0, Err))
      return false;
    P.Name = Ctx.back().Func;
    P.Guid = Guid;
    P.Checksum = Checksum;
    ContextTrieNode &N = Into.getOrCreateNode(Ctx);
    N.HasProfile = true;
    N.ShouldBeInlined = NodeFlags & 1;
    N.Profile = std::move(P);
  }
  if (!R.done()) {
    Err = "context block shorter than its index slice";
    return false;
  }
  return true;
}

Expected<FlatProfile> ProfileStore::loadFlat() const {
  FlatProfile Out;
  Out.Kind = kind();
  for (size_t I = 0; I != Index.size(); ++I)
    if (Status S = loadFunction(I, Out); !S.ok())
      return S;
  return Out;
}

Expected<ContextProfile> ProfileStore::loadContext() const {
  ContextProfile Out;
  Out.Kind = kind();
  for (size_t I = 0; I != Index.size(); ++I)
    if (Status S = loadFunctionContexts(I, Out); !S.ok())
      return S;
  return Out;
}

bool ProfileStore::loadFlat(FlatProfile &Out, std::string &Err) const {
  Expected<FlatProfile> P = loadFlat();
  if (!P) {
    Err = P.status().message();
    return false;
  }
  Out = P.take();
  return true;
}

bool ProfileStore::loadContext(ContextProfile &Out, std::string &Err) const {
  Expected<ContextProfile> P = loadContext();
  if (!P) {
    Err = P.status().message();
    return false;
  }
  Out = P.take();
  return true;
}

uint64_t ProfileStore::hotThreshold(double Cutoff) const {
  std::vector<uint64_t> Counts;
  for (const auto &[Value, Mult] : Distribution)
    for (uint64_t I = 0; I != Mult; ++I)
      Counts.push_back(Value);
  return summaryThreshold(std::move(Counts), Cutoff);
}

namespace {

/// Shared ingest plumbing: opens the prior store (if any), leaving kind /
/// epoch bookkeeping to the shape-specific callers.
bool openPrior(const std::string &Bytes, ProfileStore &Prior, bool &Exists,
               IngestResult &R) {
  Exists = !Bytes.empty();
  if (!Exists)
    return true;
  std::string Err;
  if (!ProfileStore::open(Bytes, Prior, Err)) {
    R.Error = "cannot open existing store: " + Err;
    return false;
  }
  if (Prior.compactNames()) {
    R.Error = "cannot ingest into a compact-name store (names are not "
              "recoverable without a module)";
    return false;
  }
  return true;
}

} // namespace

IngestResult ingestEpoch(std::string &Bytes, const FlatProfile &Fresh,
                         const IngestOptions &Opts) {
  IngestResult R;
  if (Opts.DecayPermille > 1000) {
    R.Error = "decay must be in [0, 1000] permille";
    return R;
  }
  ProfileStore Prior;
  bool Exists;
  if (!openPrior(Bytes, Prior, Exists, R))
    return R;

  FlatProfile Agg;
  bool Instr = Exists ? Prior.isInstr() : Opts.ExactCounts;
  if (Exists) {
    if (Prior.isCS()) {
      R.Error = "store holds a context-sensitive profile; flat epoch "
                "rejected";
      return R;
    }
    std::string Err;
    if (!Prior.loadFlat(Agg, Err)) {
      R.Error = "cannot materialize existing store: " + Err;
      return R;
    }
    if (Opts.DecayPermille == 0)
      Agg = FlatProfile{}; // Replace: history fully decayed away.
    else
      scaleFlatProfile(Agg, Opts.DecayPermille, 1000, Instr);
  }
  if (!Agg.Functions.empty() && Agg.Kind != Fresh.Kind) {
    R.Error = "epoch profile kind disagrees with the store";
    return R;
  }
  R.Merge = mergeFlatProfiles(Agg, Fresh);
  std::vector<EpochInfo> Epochs = Prior.epochs();
  Epochs.push_back({Opts.Timestamp, Fresh.totalSamples(), Opts.DecayPermille});

  if (Opts.Verify != VerifyLevel::Off) {
    VerifierOptions VO;
    VO.Level = Opts.Verify;
    VO.ExactCounts = Instr;
    VO.CheckHeadEdges = !Instr;
    R.Verify = verifyFlatProfile(Agg, VO);
    if (!R.Verify.ok()) {
      R.Error = "post-ingest verification failed: " + R.Verify.str();
      return R;
    }
  }
  Bytes = writeStore(Agg, Epochs, Opts.Write, Instr);
  R.Ok = true;
  R.EpochsNow = Epochs.size();
  return R;
}

IngestResult ingestEpoch(std::string &Bytes, const ContextProfile &Fresh,
                         const IngestOptions &Opts) {
  IngestResult R;
  if (Opts.DecayPermille > 1000) {
    R.Error = "decay must be in [0, 1000] permille";
    return R;
  }
  ProfileStore Prior;
  bool Exists;
  if (!openPrior(Bytes, Prior, Exists, R))
    return R;

  ContextProfile Agg;
  if (Exists) {
    if (!Prior.isCS()) {
      R.Error = "store holds a flat profile; context-sensitive epoch "
                "rejected";
      return R;
    }
    std::string Err;
    if (!Prior.loadContext(Agg, Err)) {
      R.Error = "cannot materialize existing store: " + Err;
      return R;
    }
    if (Opts.DecayPermille == 0)
      Agg = ContextProfile{};
    else
      scaleContextProfile(Agg, Opts.DecayPermille, 1000);
  }
  bool AggEmpty = Agg.Root.Children.empty() && !Agg.Root.HasProfile;
  if (!AggEmpty && Agg.Kind != Fresh.Kind) {
    R.Error = "epoch profile kind disagrees with the store";
    return R;
  }
  R.Merge = mergeContextProfiles(Agg, Fresh);
  std::vector<EpochInfo> Epochs = Prior.epochs();
  Epochs.push_back({Opts.Timestamp, Fresh.totalSamples(), Opts.DecayPermille});

  if (Opts.Verify != VerifyLevel::Off) {
    VerifierOptions VO;
    VO.Level = Opts.Verify;
    R.Verify = verifyContextProfile(Agg, VO);
    if (!R.Verify.ok()) {
      R.Error = "post-ingest verification failed: " + R.Verify.str();
      return R;
    }
  }
  Bytes = writeStore(Agg, Epochs, Opts.Write);
  R.Ok = true;
  R.EpochsNow = Epochs.size();
  return R;
}

} // namespace csspgo

//===- store/StoreFormat.h - Binary profile container format ----*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// On-disk format of the binary profile store (the ExtBinary-style
/// sectioned container, see DESIGN.md "Profile store"):
///
///   header (20 bytes, fixed little-endian):
///     [0..3]   magic "CSPF"
///     [4..5]   u16 format version (currently 3)
///     [6]      u8 flag bits (context-sensitive / probe-based /
///              compact-names / exact-counts); unknown bits are rejected
///     [7]      u8 reserved, must be 0
///     [8..15]  u64 content hash (hashStoreBytes) of every byte from offset
///              16 to the end — any truncation or bit flip anywhere in the
///              file fails open()
///     [16..19] u32 section count
///   section table (24 bytes per entry, fixed little-endian):
///     { u32 section id, u32 reserved(0), u64 absolute offset, u64 size }
///   section payloads. The metadata sections that open() must walk in
///   full (string table, function index, probe metadata) are fixed-width
///   so they decode with plain word loads; the per-function payload
///   records stay ULEB128-encoded (they are only decoded on demand, and
///   varints keep them small).
///
/// Unknown section ids are skipped (forward compatibility); the sections a
/// store of the declared shape requires must all be present.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_STORE_STOREFORMAT_H
#define CSSPGO_STORE_STOREFORMAT_H

#include <cstdint>
#include <string>
#include <string_view>

namespace csspgo {

inline constexpr char StoreMagic[4] = {'C', 'S', 'P', 'F'};
/// Version 2: content hash switched from byte-serial FNV-1a to a
/// word-at-a-time multiply-xor chain. Version 3: the chain was split into
/// four independent lanes (hashStoreBytes below), so the hash value — and
/// therefore the container — changed again. The layout is otherwise
/// unchanged; older stores are rejected (nothing persists stores across
/// versions — they are build artifacts, not archives).
inline constexpr uint16_t StoreVersion = 3;
inline constexpr size_t StoreHeaderSize = 20;
inline constexpr size_t StoreSectionEntrySize = 24;

/// Reads the 8-byte little-endian word at \p P. memcpy compiles to one
/// load (the shift-assembly idiom does not — it was the hash bottleneck);
/// the bswap on big-endian hosts keeps the value, and so every store
/// hash, endian-independent.
inline uint64_t loadStoreWord(const char *P) {
  uint64_t W;
  __builtin_memcpy(&W, P, 8);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  W = __builtin_bswap64(W);
#endif
  return W;
}

/// 4-byte counterpart of loadStoreWord, for the fixed-width section
/// layouts (string-table offsets, index entries).
inline uint32_t loadStoreWord32(const char *P) {
  uint32_t W;
  __builtin_memcpy(&W, P, 4);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  W = __builtin_bswap32(W);
#endif
  return W;
}

/// Content hash of the store body. Validating the whole container on open
/// is the fixed cost every reader pays — including the zero-copy lazy
/// path, whose point is to *not* touch most of the payload — so this has
/// to run at memory speed: four independent 64-bit multiply-xor chains
/// over 8-byte words (a single chain is serialized on the multiply
/// latency; four lanes keep the multipliers full and measure ~4x the
/// single-chain throughput). The length is mixed into the seed so "abc"
/// and "abc\0" cannot collide via the zero-padded tail.
inline uint64_t hashStoreBytes(std::string_view Data) {
  constexpr uint64_t M = 0x9e3779b97f4a7c15ull;
  uint64_t H0 = 0xcbf29ce484222325ull ^ (Data.size() * M);
  uint64_t H1 = 0x84222325cbf29ce4ull;
  uint64_t H2 = 0x9ce484222325cbf2ull;
  uint64_t H3 = 0x2325cbf29ce48422ull;
  size_t I = 0;
  for (; I + 32 <= Data.size(); I += 32) {
    H0 = (H0 ^ loadStoreWord(Data.data() + I)) * M;
    H1 = (H1 ^ loadStoreWord(Data.data() + I + 8)) * M;
    H2 = (H2 ^ loadStoreWord(Data.data() + I + 16)) * M;
    H3 = (H3 ^ loadStoreWord(Data.data() + I + 24)) * M;
  }
  for (; I + 8 <= Data.size(); I += 8)
    H0 = (H0 ^ loadStoreWord(Data.data() + I)) * M;
  if (I != Data.size()) {
    uint64_t W = 0;
    for (int B = 0; I + B < Data.size(); ++B)
      W |= static_cast<uint64_t>(static_cast<uint8_t>(Data[I + B])) << (8 * B);
    H0 = (H0 ^ W) * M;
  }
  // Fold the lanes (every lane passes through a multiply so no input
  // word can cancel another lane's), then avalanche the high bits back
  // down so truncating consumers of any byte range still see every input
  // bit.
  uint64_t H = (((H1 * M ^ H2) * M ^ H3) * M ^ H0) * M;
  H ^= H >> 32;
  H *= 0xff51afd7ed558ccdull;
  H ^= H >> 29;
  return H;
}

/// Header flag bits. Open rejects any bit outside StoreKnownFlags so a
/// corrupted flag byte (or a future format) never decodes as garbage.
enum StoreFlagBits : uint8_t {
  SF_ContextSensitive = 1u << 0, ///< CS trie payload (else flat payload).
  SF_ProbeBased = 1u << 1,       ///< ProfileKind::ProbeBased records.
  SF_CompactNames = 1u << 2,     ///< String table holds GUIDs, not names.
  SF_ExactCounts = 1u << 3,      ///< Instrumentation (counter) profile.
};
inline constexpr uint8_t StoreKnownFlags =
    SF_ContextSensitive | SF_ProbeBased | SF_CompactNames | SF_ExactCounts;

enum class StoreSection : uint32_t {
  StringTable = 1, ///< Deduplicated names (or GUIDs when compact).
  EpochTable = 2,  ///< Ingestion history: {timestamp, total, decay}.
  FuncIndex = 3,   ///< Per-function {name, offset, size, total, head}.
  FlatPayload = 4, ///< Flat-profile function records.
  CSPayload = 5,   ///< Context-trie blocks grouped by leaf function.
  ProbeMeta = 6,   ///< Top-level {guid, checksum} parallel to FuncIndex.
  Summary = 7,     ///< Hot-threshold count distribution (value, count).
};

/// Append-only little-endian byte sink for the store writer.
class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(static_cast<char>(V)); }
  void u16(uint16_t V) {
    u8(static_cast<uint8_t>(V));
    u8(static_cast<uint8_t>(V >> 8));
  }
  void u32(uint32_t V) {
    u16(static_cast<uint16_t>(V));
    u16(static_cast<uint16_t>(V >> 16));
  }
  void u64(uint64_t V) {
    u32(static_cast<uint32_t>(V));
    u32(static_cast<uint32_t>(V >> 32));
  }
  void uleb(uint64_t V) {
    do {
      uint8_t B = V & 0x7f;
      V >>= 7;
      u8(V ? B | 0x80 : B);
    } while (V);
  }
  void bytes(std::string_view S) { Buf.append(S); }

  size_t size() const { return Buf.size(); }
  std::string take() { return std::move(Buf); }
  const std::string &str() const { return Buf; }

private:
  std::string Buf;
};

/// Bounds-checked little-endian reader over one slice of the store. Every
/// accessor returns false instead of reading past the end; ULEB decoding
/// additionally rejects encodings that overflow 64 bits.
class ByteReader {
public:
  ByteReader() = default;
  explicit ByteReader(std::string_view Data) : Data(Data) {}

  size_t pos() const { return Pos; }
  size_t remaining() const { return Data.size() - Pos; }
  bool done() const { return Pos == Data.size(); }

  bool u8(uint8_t &Out) {
    if (remaining() < 1)
      return false;
    Out = static_cast<uint8_t>(Data[Pos++]);
    return true;
  }
  bool u16(uint16_t &Out) {
    uint8_t A, B;
    if (!u8(A) || !u8(B))
      return false;
    Out = static_cast<uint16_t>(A | (B << 8));
    return true;
  }
  bool u32(uint32_t &Out) {
    uint16_t A, B;
    if (!u16(A) || !u16(B))
      return false;
    Out = static_cast<uint32_t>(A) | (static_cast<uint32_t>(B) << 16);
    return true;
  }
  bool u64(uint64_t &Out) {
    uint32_t A, B;
    if (!u32(A) || !u32(B))
      return false;
    Out = static_cast<uint64_t>(A) | (static_cast<uint64_t>(B) << 32);
    return true;
  }
  bool uleb(uint64_t &Out) {
    // Fast path: a one-byte varint (the overwhelmingly common case in
    // every section — small counts, keys, deltas) costs one bounds check
    // and one branch.
    if (Pos < Data.size()) {
      uint8_t B = static_cast<uint8_t>(Data[Pos]);
      if (!(B & 0x80)) {
        ++Pos;
        Out = B;
        return true;
      }
    }
    Out = 0;
    for (unsigned Shift = 0; Shift < 64; Shift += 7) {
      uint8_t B;
      if (!u8(B))
        return false;
      // The 10th byte may only contribute the final bit of a 64-bit value.
      if (Shift == 63 && (B & 0x7e))
        return false;
      Out |= static_cast<uint64_t>(B & 0x7f) << Shift;
      if (!(B & 0x80))
        return true;
    }
    return false;
  }
  bool bytes(size_t N, std::string_view &Out) {
    if (remaining() < N)
      return false;
    Out = Data.substr(Pos, N);
    Pos += N;
    return true;
  }

private:
  std::string_view Data;
  size_t Pos = 0;
};

} // namespace csspgo

#endif // CSSPGO_STORE_STOREFORMAT_H

//===- store/StoreFormat.h - Binary profile container format ----*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// On-disk format of the binary profile store (the ExtBinary-style
/// sectioned container, see DESIGN.md "Profile store"):
///
///   header (20 bytes, fixed little-endian):
///     [0..3]   magic "CSPF"
///     [4..5]   u16 format version (currently 1)
///     [6]      u8 flag bits (context-sensitive / probe-based /
///              compact-names / exact-counts); unknown bits are rejected
///     [7]      u8 reserved, must be 0
///     [8..15]  u64 FNV-1a hash of every byte from offset 16 to the end —
///              any truncation or bit flip anywhere in the file fails open()
///     [16..19] u32 section count
///   section table (24 bytes per entry, fixed little-endian):
///     { u32 section id, u32 reserved(0), u64 absolute offset, u64 size }
///   section payloads, ULEB128-encoded.
///
/// Unknown section ids are skipped (forward compatibility); the sections a
/// store of the declared shape requires must all be present.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_STORE_STOREFORMAT_H
#define CSSPGO_STORE_STOREFORMAT_H

#include <cstdint>
#include <string>
#include <string_view>

namespace csspgo {

inline constexpr char StoreMagic[4] = {'C', 'S', 'P', 'F'};
inline constexpr uint16_t StoreVersion = 1;
inline constexpr size_t StoreHeaderSize = 20;
inline constexpr size_t StoreSectionEntrySize = 24;

/// Header flag bits. Open rejects any bit outside StoreKnownFlags so a
/// corrupted flag byte (or a future format) never decodes as garbage.
enum StoreFlagBits : uint8_t {
  SF_ContextSensitive = 1u << 0, ///< CS trie payload (else flat payload).
  SF_ProbeBased = 1u << 1,       ///< ProfileKind::ProbeBased records.
  SF_CompactNames = 1u << 2,     ///< String table holds GUIDs, not names.
  SF_ExactCounts = 1u << 3,      ///< Instrumentation (counter) profile.
};
inline constexpr uint8_t StoreKnownFlags =
    SF_ContextSensitive | SF_ProbeBased | SF_CompactNames | SF_ExactCounts;

enum class StoreSection : uint32_t {
  StringTable = 1, ///< Deduplicated names (or GUIDs when compact).
  EpochTable = 2,  ///< Ingestion history: {timestamp, total, decay}.
  FuncIndex = 3,   ///< Per-function {name, offset, size, total, head}.
  FlatPayload = 4, ///< Flat-profile function records.
  CSPayload = 5,   ///< Context-trie blocks grouped by leaf function.
  ProbeMeta = 6,   ///< Top-level {guid, checksum} parallel to FuncIndex.
  Summary = 7,     ///< Hot-threshold count distribution (value, count).
};

/// Append-only little-endian byte sink for the store writer.
class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(static_cast<char>(V)); }
  void u16(uint16_t V) {
    u8(static_cast<uint8_t>(V));
    u8(static_cast<uint8_t>(V >> 8));
  }
  void u32(uint32_t V) {
    u16(static_cast<uint16_t>(V));
    u16(static_cast<uint16_t>(V >> 16));
  }
  void u64(uint64_t V) {
    u32(static_cast<uint32_t>(V));
    u32(static_cast<uint32_t>(V >> 32));
  }
  void uleb(uint64_t V) {
    do {
      uint8_t B = V & 0x7f;
      V >>= 7;
      u8(V ? B | 0x80 : B);
    } while (V);
  }
  void bytes(std::string_view S) { Buf.append(S); }

  size_t size() const { return Buf.size(); }
  std::string take() { return std::move(Buf); }
  const std::string &str() const { return Buf; }

private:
  std::string Buf;
};

/// Bounds-checked little-endian reader over one slice of the store. Every
/// accessor returns false instead of reading past the end; ULEB decoding
/// additionally rejects encodings that overflow 64 bits.
class ByteReader {
public:
  ByteReader() = default;
  explicit ByteReader(std::string_view Data) : Data(Data) {}

  size_t pos() const { return Pos; }
  size_t remaining() const { return Data.size() - Pos; }
  bool done() const { return Pos == Data.size(); }

  bool u8(uint8_t &Out) {
    if (remaining() < 1)
      return false;
    Out = static_cast<uint8_t>(Data[Pos++]);
    return true;
  }
  bool u16(uint16_t &Out) {
    uint8_t A, B;
    if (!u8(A) || !u8(B))
      return false;
    Out = static_cast<uint16_t>(A | (B << 8));
    return true;
  }
  bool u32(uint32_t &Out) {
    uint16_t A, B;
    if (!u16(A) || !u16(B))
      return false;
    Out = static_cast<uint32_t>(A) | (static_cast<uint32_t>(B) << 16);
    return true;
  }
  bool u64(uint64_t &Out) {
    uint32_t A, B;
    if (!u32(A) || !u32(B))
      return false;
    Out = static_cast<uint64_t>(A) | (static_cast<uint64_t>(B) << 32);
    return true;
  }
  bool uleb(uint64_t &Out) {
    Out = 0;
    for (unsigned Shift = 0; Shift < 64; Shift += 7) {
      uint8_t B;
      if (!u8(B))
        return false;
      // The 10th byte may only contribute the final bit of a 64-bit value.
      if (Shift == 63 && (B & 0x7e))
        return false;
      Out |= static_cast<uint64_t>(B & 0x7f) << Shift;
      if (!(B & 0x80))
        return true;
    }
    return false;
  }
  bool bytes(size_t N, std::string_view &Out) {
    if (remaining() < N)
      return false;
    Out = Data.substr(Pos, N);
    Pos += N;
    return true;
  }

private:
  std::string_view Data;
  size_t Pos = 0;
};

} // namespace csspgo

#endif // CSSPGO_STORE_STOREFORMAT_H

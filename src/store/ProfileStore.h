//===- store/ProfileStore.h - Binary profile store ---------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profile storage/serving layer for continuous deployment: a sectioned
/// binary container (StoreFormat.h) holding one aggregated profile plus its
/// ingestion history, a reader with a per-function offset index so a build
/// job materializes only the functions its module actually contains, and
/// `ingestEpoch()` — the continuous-collection entry point that folds a
/// fresh ProfileGenerator output into the aggregate under exponential decay
/// and re-verifies the invariants on every fold.
///
/// The container is lossless: writeStore → open → load reproduces the exact
/// in-memory profile (including Guid/Checksum, which the text format
/// drops), and writing the loaded profile again is byte-identical. Decay
/// scaling preserves the verifier's head/call-edge conservation by
/// construction (see scaleFlatProfile), so an ingested store always passes
/// strict `csspgo_verify`.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_STORE_PROFILESTORE_H
#define CSSPGO_STORE_PROFILESTORE_H

#include "profile/ContextTrie.h"
#include "profile/FunctionProfile.h"
#include "profile/ProfileMerge.h"
#include "store/StoreFormat.h"
#include "support/Status.h"
#include "verify/ProfileVerifier.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace csspgo {

class Module;

/// One ingestion epoch recorded in the store (newest last).
struct EpochInfo {
  /// Producer-supplied collection time (seconds; 0 = unset). Stored, never
  /// interpreted — benches pass fixed values to stay deterministic.
  uint64_t Timestamp = 0;
  /// Total samples of the epoch's fresh profile (before decay).
  uint64_t TotalSamples = 0;
  /// Decay applied to the prior aggregate when this epoch was folded in
  /// (permille: 1000 = plain merge, 0 = replace).
  uint32_t DecayPermille = 1000;
};

struct StoreWriteOptions {
  /// Store GUIDs instead of names in the string table (LLVM's MD5 name
  /// table analogue). Roughly halves the table for long C++-style names;
  /// readers resolve GUIDs back to names against a module
  /// (ProfileStore::resolveNames) before lazy loading.
  bool CompactNames = false;
};

/// Serializes \p Profile (+ ingestion history) into container bytes.
std::string writeStore(const FlatProfile &Profile,
                       const std::vector<EpochInfo> &Epochs,
                       const StoreWriteOptions &Opts = {},
                       bool IsInstr = false);
std::string writeStore(const ContextProfile &Profile,
                       const std::vector<EpochInfo> &Epochs,
                       const StoreWriteOptions &Opts = {});

/// Reader over one store file. open() validates the whole container up
/// front (magic, version, flags, content hash, section table, function
/// index); after that per-function loads decode straight from the indexed
/// payload slice, so materializing K of N functions costs O(K), not O(N).
class ProfileStore {
public:
  ProfileStore() = default;

  /// Parses and validates \p Bytes (takes ownership). Returns an error
  /// Status on any malformation — a truncated or bit-flipped input is
  /// always rejected here, never at load time.
  static Expected<ProfileStore> open(std::string Bytes);

  /// Deprecated bool/out-param form of open(); thin wrapper kept for one
  /// PR while callers migrate to the Expected-based surface.
  static bool open(std::string Bytes, ProfileStore &Out, std::string &Err);

  bool isCS() const { return Flags & SF_ContextSensitive; }
  bool isInstr() const { return Flags & SF_ExactCounts; }
  bool compactNames() const { return Flags & SF_CompactNames; }
  ProfileKind kind() const {
    return (Flags & SF_ProbeBased) ? ProfileKind::ProbeBased
                                   : ProfileKind::LineBased;
  }

  const std::vector<EpochInfo> &epochs() const { return Epochs; }
  size_t sizeBytes() const { return Bytes.size(); }
  /// (section name, payload bytes) of every section, for `store inspect`
  /// and the size benches.
  std::vector<std::pair<std::string, size_t>> sectionSizes() const;

  /// Number of top-level functions (flat) or leaf functions (CS).
  size_t numFunctions() const { return Index.size(); }
  const std::string &functionName(size_t I) const;
  uint64_t functionGuid(size_t I) const;
  uint64_t functionTotalSamples(size_t I) const { return Index[I].Total; }
  /// Sum of per-function totals (saturating).
  uint64_t totalSamples() const;

  /// Index of the function named \p Name, or -1. Name lookup works on
  /// compact stores only after resolveNames().
  int findFunction(const std::string &Name) const;
  int findFunctionByGuid(uint64_t Guid) const;

  /// Resolves compact-name (GUID) string-table entries against the
  /// functions of \p M; entries with no match keep a stable
  /// "guid.<decimal>" placeholder. No-op for stores written with names.
  void resolveNames(const Module &M);

  /// Materializes function \p I into \p Into (lazy path). The decoded
  /// record was hash-validated at open(), so a failure here means the
  /// writer/reader disagree — reported, never a crash.
  Status loadFunction(size_t I, FlatProfile &Into) const;
  /// CS stores: materializes every context whose leaf is function \p I.
  Status loadFunctionContexts(size_t I, ContextProfile &Into) const;

  /// Eager full materialization (tools, ingest, conversion).
  Expected<FlatProfile> loadFlat() const;
  Expected<ContextProfile> loadContext() const;

  /// Deprecated bool/out-param forms; thin wrappers kept for one PR.
  bool loadFunction(size_t I, FlatProfile &Into, std::string &Err) const;
  bool loadFunctionContexts(size_t I, ContextProfile &Into,
                            std::string &Err) const;
  bool loadFlat(FlatProfile &Out, std::string &Err) const;
  bool loadContext(ContextProfile &Out, std::string &Err) const;

  /// Hot threshold from the persisted count distribution — identical to
  /// hotThreshold() over the eagerly loaded profile, which is what makes
  /// lazy module-scoped loading bit-identical to an eager load.
  uint64_t hotThreshold(double Cutoff) const;

private:
  struct IndexEntry {
    uint32_t NameIdx = 0;
    uint64_t Offset = 0; ///< Relative to the payload section.
    uint64_t Size = 0;
    uint64_t Total = 0;
    uint64_t Head = 0;
    /// Persisted top-level Guid/Checksum (ProbeMeta section, flat stores
    /// only; distinct from the name-derived lookup GUID so a profile with
    /// Guid 0 round-trips byte-identically).
    uint64_t MetaGuid = 0;
    uint64_t MetaChecksum = 0;
  };
  struct SectionRef {
    uint64_t Offset = 0;
    uint64_t Size = 0;
    bool Present = false;
  };

  std::string_view section(StoreSection S) const;
  bool decodeSections(std::string &Err);
  bool loadFunctionContextsImpl(size_t I, ContextProfile &Into,
                                std::string &Err) const;

  std::string Bytes;
  uint8_t Flags = 0;
  SectionRef Sections[8];
  std::vector<std::string> Names; ///< Resolved string table.
  std::vector<uint64_t> NameGuids;
  std::vector<EpochInfo> Epochs;
  std::vector<IndexEntry> Index;
  std::map<std::string, uint32_t> NameToFunc;
  std::map<uint64_t, uint32_t> GuidToFunc;
  /// (count value, multiplicity), descending — the hotThreshold input.
  std::vector<std::pair<uint64_t, uint64_t>> Distribution;
};

struct IngestOptions {
  /// Weight (permille) the prior aggregate keeps: 1000 folds the new epoch
  /// in at full history (plain merge), 500 halves history each epoch
  /// (exponential decay), 0 discards it (replace).
  uint32_t DecayPermille = 1000;
  /// Recorded in the new EpochInfo.
  uint64_t Timestamp = 0;
  /// Exact-count (Instr) semantics; only consulted when the store is
  /// created (later epochs must match the store's flag).
  bool ExactCounts = false;
  StoreWriteOptions Write;
  /// Post-ingest invariant verification level (Full by default; every
  /// ingest is gated on a clean report).
  VerifyLevel Verify = VerifyLevel::Full;
};

struct IngestResult {
  bool Ok = false;
  std::string Error;
  MergeStats Merge;
  VerifyReport Verify;
  size_t EpochsNow = 0;
};

/// Folds \p Fresh into the store held in \p Bytes: decay-scales the prior
/// aggregate by DecayPermille/1000, merges the fresh epoch on top under the
/// usual saturation semantics, appends the epoch record, verifies, and
/// rewrites \p Bytes — which is left untouched unless the result is Ok.
/// An empty \p Bytes creates a new single-epoch store.
IngestResult ingestEpoch(std::string &Bytes, const FlatProfile &Fresh,
                         const IngestOptions &Opts = {});
IngestResult ingestEpoch(std::string &Bytes, const ContextProfile &Fresh,
                         const IngestOptions &Opts = {});

} // namespace csspgo

#endif // CSSPGO_STORE_PROFILESTORE_H

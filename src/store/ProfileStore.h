//===- store/ProfileStore.h - Binary profile store ---------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profile storage/serving layer for continuous deployment: a sectioned
/// binary container (StoreFormat.h) holding one aggregated profile plus its
/// ingestion history, a reader with a per-function offset index so a build
/// job materializes only the functions its module actually contains, and
/// `ingestEpoch()` — the continuous-collection entry point that folds a
/// fresh ProfileGenerator output into the aggregate under exponential decay
/// and re-verifies the invariants on every fold.
///
/// The container is lossless: writeStore → open → load reproduces the exact
/// in-memory profile (including Guid/Checksum, which the text format
/// drops), and writing the loaded profile again is byte-identical. Decay
/// scaling preserves the verifier's head/call-edge conservation by
/// construction (see scaleFlatProfile), so an ingested store always passes
/// strict `csspgo_verify`.
///
/// Two read planes share one validated container:
///
///  * the map plane (`loadFunction` / `loadFlat` / …) materializes the
///    classic FunctionProfile containers — the reference path;
///  * the flat plane (`openBorrowed` + FlatViewLoader / ContextViewLoader)
///    cursors the indexed payload tiles straight into a ProfileArena:
///    no byte copy of the container, no map nodes, no per-record string
///    allocation — lazy materialization is pointer fixup plus a varint
///    cursor. Both planes decode the same bytes to the same profiles;
///    ArenaTest and the fuzzer diff them.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_STORE_PROFILESTORE_H
#define CSSPGO_STORE_PROFILESTORE_H

#include "profile/ContextTrie.h"
#include "profile/FunctionProfile.h"
#include "profile/ProfileArena.h"
#include "profile/ProfileMerge.h"
#include "store/StoreFormat.h"
#include "support/Status.h"
#include "verify/ProfileVerifier.h"

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace csspgo {

class Module;

/// One ingestion epoch recorded in the store (newest last).
struct EpochInfo {
  /// Producer-supplied collection time (seconds; 0 = unset). Stored, never
  /// interpreted — benches pass fixed values to stay deterministic.
  uint64_t Timestamp = 0;
  /// Total samples of the epoch's fresh profile (before decay).
  uint64_t TotalSamples = 0;
  /// Decay applied to the prior aggregate when this epoch was folded in
  /// (permille: 1000 = plain merge, 0 = replace).
  uint32_t DecayPermille = 1000;
};

struct StoreWriteOptions {
  /// Store GUIDs instead of names in the string table (LLVM's MD5 name
  /// table analogue). Roughly halves the table for long C++-style names;
  /// readers resolve GUIDs back to names against a module
  /// (ProfileStore::resolveNames) before lazy loading.
  bool CompactNames = false;
};

/// Serializes \p Profile (+ ingestion history) into container bytes.
std::string writeStore(const FlatProfile &Profile,
                       const std::vector<EpochInfo> &Epochs,
                       const StoreWriteOptions &Opts = {},
                       bool IsInstr = false);
std::string writeStore(const ContextProfile &Profile,
                       const std::vector<EpochInfo> &Epochs,
                       const StoreWriteOptions &Opts = {});

/// Reader over one store file. open() validates the whole container up
/// front (magic, version, flags, content hash, section table, function
/// index); after that per-function loads decode straight from the indexed
/// payload slice, so materializing K of N functions costs O(K), not O(N).
class ProfileStore {
public:
  ProfileStore() = default;

  /// Parses and validates \p Bytes (takes ownership). Returns an error
  /// Status on any malformation — a truncated or bit-flipped input is
  /// always rejected here, never at load time.
  static Expected<ProfileStore> open(std::string Bytes);

  /// Zero-copy open: validates and indexes \p Bytes without copying them.
  /// The caller must keep the buffer alive and unmodified for the store's
  /// lifetime (mmap-style borrow); every rejection open() performs —
  /// truncation, bit flips, malformed sections — applies identically here
  /// because both run the same validation over the same bytes.
  static Expected<ProfileStore> openBorrowed(std::string_view Bytes);

  bool isCS() const { return Flags & SF_ContextSensitive; }
  bool isInstr() const { return Flags & SF_ExactCounts; }
  bool compactNames() const { return Flags & SF_CompactNames; }
  ProfileKind kind() const {
    return (Flags & SF_ProbeBased) ? ProfileKind::ProbeBased
                                   : ProfileKind::LineBased;
  }

  const std::vector<EpochInfo> &epochs() const { return Epochs; }
  size_t sizeBytes() const { return data().size(); }
  /// (section name, payload bytes) of every section, for `store inspect`
  /// and the size benches.
  std::vector<std::pair<std::string, size_t>> sectionSizes() const;
  /// (section name, absolute offset, size) of every section, in file
  /// order — `store inspect --layout`.
  std::vector<std::tuple<std::string, uint64_t, uint64_t>> sectionLayout()
      const;

  /// Number of top-level functions (flat) or leaf functions (CS).
  size_t numFunctions() const { return Index.size(); }
  std::string_view functionName(size_t I) const;
  uint64_t functionGuid(size_t I) const;
  uint64_t functionTotalSamples(size_t I) const { return Index[I].Total; }
  /// Absolute (offset, size) of function \p I's payload tile within the
  /// container — the directly-addressable slice the zero-copy readers
  /// cursor over. For `store inspect --layout` and debugging.
  std::pair<uint64_t, uint64_t> functionTile(size_t I) const;
  /// Sum of per-function totals (saturating).
  uint64_t totalSamples() const;

  /// Index of the function named \p Name, or -1. Name lookup works on
  /// compact stores only after resolveNames().
  int findFunction(const std::string &Name) const;
  int findFunctionByGuid(uint64_t Guid) const;

  /// Resolves compact-name (GUID) string-table entries against the
  /// functions of \p M; entries with no match keep a stable
  /// "guid.<decimal>" placeholder. No-op for stores written with names.
  void resolveNames(const Module &M);

  /// Materializes function \p I into \p Into (lazy path). The decoded
  /// record was hash-validated at open(), so a failure here means the
  /// writer/reader disagree — reported, never a crash.
  Status loadFunction(size_t I, FlatProfile &Into) const;
  /// CS stores: materializes every context whose leaf is function \p I.
  Status loadFunctionContexts(size_t I, ContextProfile &Into) const;

  /// Eager full materialization (tools, ingest, conversion).
  Expected<FlatProfile> loadFlat() const;
  Expected<ContextProfile> loadContext() const;

  /// Eager flat-plane materialization: decodes every function into an
  /// arena view. The flat view's functions keep the index (= name) order;
  /// the context view's contexts are sorted into global trie-DFS order,
  /// so both satisfy the canonical-order contract of the view merges.
  Expected<FlatProfileView> loadFlatView() const;
  Expected<ContextProfileView> loadContextView() const;

  /// Hot threshold from the persisted count distribution — identical to
  /// hotThreshold() over the eagerly loaded profile, which is what makes
  /// lazy module-scoped loading bit-identical to an eager load.
  uint64_t hotThreshold(double Cutoff) const;

private:
  friend class FlatViewLoader;
  friend class ContextViewLoader;

  struct IndexEntry {
    uint32_t NameIdx = 0;
    uint64_t Offset = 0; ///< Relative to the payload section.
    uint64_t Size = 0;
    uint64_t Total = 0;
    uint64_t Head = 0;
    /// Persisted top-level Guid/Checksum (ProbeMeta section, flat stores
    /// only; distinct from the name-derived lookup GUID so a profile with
    /// Guid 0 round-trips byte-identically).
    uint64_t MetaGuid = 0;
    uint64_t MetaChecksum = 0;
  };
  struct SectionRef {
    uint64_t Offset = 0;
    uint64_t Size = 0;
    bool Present = false;
  };

  /// The container bytes: Owned when open() copied them in, otherwise the
  /// borrowed buffer. Owned wins so the view stays valid across moves.
  std::string_view data() const {
    return Owned.empty() ? Borrowed : std::string_view(Owned);
  }
  std::string_view section(StoreSection S) const;
  bool decodeSections(std::string &Err);
  bool loadFunctionContextsImpl(size_t I, ContextProfile &Into,
                                std::string &Err) const;
  /// Guid lookup map (and, for compact stores, the name map — non-compact
  /// name lookup binary searches the sorted index instead) built on first
  /// findFunction* use so open() stays off the O(N log N) map-build path.
  void ensureLookups() const;
  /// Name GUIDs are hashed on first use for the same reason (compact
  /// stores persist them, so there they are filled at open()).
  void ensureGuids() const;

  std::string Owned;
  std::string_view Borrowed;
  uint8_t Flags = 0;
  SectionRef Sections[8];
  /// String table. Non-compact entries are views straight into data() —
  /// open() allocates nothing per name; compact placeholders and
  /// resolveNames() results point into NameStorage (a deque, so views
  /// stay valid as entries are added and across store moves).
  std::vector<std::string_view> Names;
  std::deque<std::string> NameStorage;
  mutable std::vector<uint64_t> NameGuids;
  std::vector<EpochInfo> Epochs;
  std::vector<IndexEntry> Index;
  mutable bool LookupsBuilt = false;
  mutable std::map<std::string_view, uint32_t> NameToFunc;
  mutable std::map<uint64_t, uint32_t> GuidToFunc;
  /// (count value, multiplicity), descending — the hotThreshold input.
  std::vector<std::pair<uint64_t, uint64_t>> Distribution;
};

/// Streams store functions into a FlatProfileView: the zero-copy flat
/// read plane. Each load() is a varint cursor over the function's payload
/// tile appending POD slots — no maps, no string churn, and names intern
/// into the view's arena on first reference, so a module-scoped load
/// never touches the rest of the string table. The store (and, for a
/// borrowed store, its buffer) must outlive the loader.
class FlatViewLoader {
public:
  explicit FlatViewLoader(const ProfileStore &S);

  /// Appends function \p I's record to the view. Same validation and
  /// failure cases as ProfileStore::loadFunction.
  Status load(size_t I);

  FlatProfileView &view() { return V; }
  FlatProfileView take() { return std::move(V); }

private:
  const ProfileStore &S;
  FlatProfileView V;
  /// Store string index -> view name id, interned on first reference so a
  /// module-scoped load pays O(names referenced), not O(string table).
  std::vector<NameId> NameMap;
};

/// CS counterpart of FlatViewLoader: load(I) appends every context whose
/// leaf is function I, in the tile's (trie-DFS within leaf) order. Use
/// ProfileStore::loadContextView for a globally DFS-ordered view.
class ContextViewLoader {
public:
  explicit ContextViewLoader(const ProfileStore &S);

  Status load(size_t I);

  ContextProfileView &view() { return V; }
  ContextProfileView take() { return std::move(V); }

private:
  const ProfileStore &S;
  ContextProfileView V;
  std::vector<NameId> NameMap;
};

struct IngestOptions {
  /// Weight (permille) the prior aggregate keeps: 1000 folds the new epoch
  /// in at full history (plain merge), 500 halves history each epoch
  /// (exponential decay), 0 discards it (replace).
  uint32_t DecayPermille = 1000;
  /// Recorded in the new EpochInfo.
  uint64_t Timestamp = 0;
  /// Exact-count (Instr) semantics; only consulted when the store is
  /// created (later epochs must match the store's flag).
  bool ExactCounts = false;
  StoreWriteOptions Write;
  /// Post-ingest invariant verification level (Full by default; every
  /// ingest is gated on a clean report).
  VerifyLevel Verify = VerifyLevel::Full;
};

struct IngestResult {
  bool Ok = false;
  std::string Error;
  MergeStats Merge;
  VerifyReport Verify;
  size_t EpochsNow = 0;
};

/// Folds \p Fresh into the store held in \p Bytes: decay-scales the prior
/// aggregate by DecayPermille/1000, merges the fresh epoch on top under the
/// usual saturation semantics, appends the epoch record, verifies, and
/// rewrites \p Bytes — which is left untouched unless the result is Ok.
/// An empty \p Bytes creates a new single-epoch store.
///
/// The fold runs on the flat data plane end-to-end — borrowed-buffer open,
/// arena decode, view decay-scale, k-way view merge — and bridges to the
/// map containers only for the (mandatory) Full verification and the
/// writer. Every step is bit-identical to the map pipeline, so the stores
/// this produces are byte-for-byte what the map fold produced.
IngestResult ingestEpoch(std::string &Bytes, const FlatProfile &Fresh,
                         const IngestOptions &Opts = {});
IngestResult ingestEpoch(std::string &Bytes, const ContextProfile &Fresh,
                         const IngestOptions &Opts = {});

} // namespace csspgo

#endif // CSSPGO_STORE_PROFILESTORE_H

//===- bench/fig6_performance.cpp - Fig. 6 reproduction -----------*- C++ -*-===//
//
// Fig. 6 of the paper: performance of probe-only CSSPGO, full CSSPGO and
// instrumentation PGO relative to the AutoFDO baseline, across the five
// server workloads. The paper reports:
//   - full CSSPGO: +1% .. +5% over AutoFDO,
//   - probe-only CSSPGO contributing 38-78% of the full gain,
//   - Instr PGO (HHVM only): +2.4% over AutoFDO vs CSSPGO's +1.5%
//     (CSSPGO bridges >60% of the gap).
// The paper could only collect Instr PGO data on HHVM (instrumented
// binaries failed production health checks elsewhere); our simulator has
// no such limitation, so the Instr column is filled for every workload.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace csspgo;
using namespace csspgo::bench;

int main(int argc, char **argv) {
  unsigned Jobs = benchJobs(argc, argv);
  printHeader("Fig 6", "CSSPGO performance vs AutoFDO (server workloads)");

  TextTable Table({"workload", "AutoFDO vs plain", "probe-only vs AutoFDO",
                   "CSSPGO vs AutoFDO", "Instr vs AutoFDO",
                   "probe-only share", "gap bridged"});

  // Every workload's pipeline is independent and deterministic: fan them
  // out with runMany (-j N) and print the rows in paper order afterwards.
  std::vector<std::string> Workloads = serverWorkloadNames();
  auto Rows = runMany<std::vector<std::string>>(
      Workloads.size(), Jobs, [&](size_t Idx) {
        const std::string &W = Workloads[Idx];
        PGODriver Driver(makeConfig(W));
        const VariantOutcome &Plain = Driver.baseline();
        VariantOutcome Auto = Driver.run(PGOVariant::AutoFDO);
        VariantOutcome Probe = Driver.run(PGOVariant::CSSPGOProbeOnly);
        VariantOutcome Full = Driver.run(PGOVariant::CSSPGOFull);
        VariantOutcome Instr = Driver.run(PGOVariant::Instr);

        double AutoGain =
            improvement(Auto.EvalCyclesMean, Plain.EvalCyclesMean);
        double ProbeVsAuto =
            improvement(Probe.EvalCyclesMean, Auto.EvalCyclesMean);
        double FullVsAuto =
            improvement(Full.EvalCyclesMean, Auto.EvalCyclesMean);
        double InstrVsAuto =
            improvement(Instr.EvalCyclesMean, Auto.EvalCyclesMean);
        double Share = FullVsAuto > 0 ? 100.0 * ProbeVsAuto / FullVsAuto : 0;
        double Bridged =
            InstrVsAuto > 0 ? 100.0 * FullVsAuto / InstrVsAuto : 0;

        return std::vector<std::string>{
            W, formatSignedPercent(AutoGain),
            formatSignedPercent(ProbeVsAuto), formatSignedPercent(FullVsAuto),
            formatSignedPercent(InstrVsAuto), formatPercent(Share),
            formatPercent(Bridged)};
      });
  for (const auto &Row : Rows)
    Table.addRow(Row);
  std::printf("%s\n", Table.render().c_str());
  std::printf("paper: CSSPGO +1..+5%% over AutoFDO; probe-only contributes\n"
              "38-78%% of the gain; on HHVM CSSPGO bridges >60%% of the\n"
              "AutoFDO->Instr gap.\n");
  return 0;
}

//===- bench/fig9_metadata_size.cpp - Fig. 9 reproduction ---------*- C++ -*-===//
//
// Fig. 9: size of the pseudo-probe metadata (.pseudo_probe +
// .pseudo_probe_desc) per workload, expressed as a percentage of total
// binary size including -g2 debug info; the debug-info share is shown for
// comparison. The paper reports the probe metadata averaging ~25% of the
// binary, and stresses that it is self-contained (strippable) and never
// loaded at run time.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "codegen/DebugInfo.h"
#include "codegen/ProbeMetadata.h"
#include "profile/ProfileIO.h"
#include "store/ProfileStore.h"

using namespace csspgo;
using namespace csspgo::bench;

int main() {
  printHeader("Fig 9", "pseudo-probe metadata size overhead");

  TextTable Table({"workload", "text", "debug info", "probe metadata",
                   "debug share", "probe share"});
  // Companion table: the same workloads' CS profile in each on-disk
  // format (extended text, binary store, compact-name store).
  TextTable Formats({"workload", "profile text", "profile binary",
                     "binary/text", "compact", "compact/text"});
  double ShareSum = 0;
  unsigned N = 0;

  for (const std::string &W : serverWorkloadNames()) {
    PGODriver Driver(makeConfig(W));
    // The shipped CSSPGO binary carries probes; measure its sections.
    VariantOutcome Full = Driver.run(PGOVariant::CSSPGOFull);
    const Binary &Bin = *Full.Build->Bin;
    DebugInfoStats Dbg = computeDebugInfoStats(Bin);
    ProbeMetadataStats Probe = computeProbeMetadataStats(Bin);
    uint64_t Text = Bin.textSize();
    uint64_t Total = Text + Dbg.SizeBytes + Probe.SizeBytes;
    double DbgShare = 100.0 * Dbg.SizeBytes / Total;
    double ProbeShare = 100.0 * Probe.SizeBytes / Total;
    ShareSum += ProbeShare;
    ++N;
    Table.addRow({W, formatBytes(Text), formatBytes(Dbg.SizeBytes),
                  formatBytes(Probe.SizeBytes), formatPercent(DbgShare),
                  formatPercent(ProbeShare)});

    size_t TextSize = profileSizeBytes(Full.Profile.CS);
    std::vector<EpochInfo> Epochs{{0, Full.Profile.CS.totalSamples(), 1000}};
    size_t BinSize = writeStore(Full.Profile.CS, Epochs).size();
    StoreWriteOptions Compact;
    Compact.CompactNames = true;
    size_t CompactSize =
        writeStore(Full.Profile.CS, Epochs, Compact).size();
    Formats.addRow({W, formatBytes(TextSize), formatBytes(BinSize),
                    formatPercent(100.0 * BinSize / TextSize),
                    formatBytes(CompactSize),
                    formatPercent(100.0 * CompactSize / TextSize)});
  }
  std::printf("%s\n", Table.render().c_str());
  std::printf("average probe-metadata share: %s (paper: ~25%% of binary\n"
              "incl. -g2 debug info; strippable, never loaded at run "
              "time)\n\n",
              formatPercent(ShareSum / N).c_str());
  std::printf("-- CS profile size by on-disk format --\n%s\n",
              Formats.render().c_str());
  return 0;
}

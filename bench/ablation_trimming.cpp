//===- bench/ablation_trimming.cpp - §III-B profile scalability ---*- C++ -*-===//
//
// §III-B "Scalability": untrimmed context-sensitive profiles can be ~10x
// the size of a regular profile on dense call graphs; trimming cold
// contexts into the base profile makes the CS profile comparable in size
// "without losing its benefit".
//
// Harness: generate the full CS profile with and without cold-context
// trimming, compare serialized sizes against the flat (probe-only)
// profile, and verify the performance effect of trimming is negligible.
// The per-workload pipelines are independent and fan out over runMany
// (-j N).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "profile/ProfileIO.h"

using namespace csspgo;
using namespace csspgo::bench;

int main(int argc, char **argv) {
  unsigned Jobs = benchJobs(argc, argv);
  printHeader("Ablation", "cold-context trimming — §III-B scalability");

  TextTable Table({"workload", "flat bytes", "CS untrimmed", "CS trimmed",
                   "untrimmed/flat", "trimmed/flat", "perf delta"});
  // A dense-dynamic-call-graph configuration (the scenario where the paper
  // reports ~10x untrimmed growth), alongside a standard preset.
  auto DenseConfig = [&] {
    ExperimentConfig C = makeConfig("AdFinder");
    C.Workload.Name = "AdFinder-dense";
    C.Workload.MidsPerService = 24;
    C.Workload.UtilCallsPerMid = 4;
    C.Workload.TailCallProb = 0.6;
    C.SamplePeriodCycles = 997; // Denser sampling reaches colder contexts.
    return C;
  };
  const char *Workloads[] = {"HHVM", "AdFinder-dense"};
  auto Rows = runMany<std::vector<std::string>>(
      std::size(Workloads), Jobs, [&](size_t Idx) {
        std::string W = Workloads[Idx];
        ExperimentConfig Trim =
            W == "AdFinder-dense" ? DenseConfig() : makeConfig(W);
        ExperimentConfig NoTrim = Trim;
        NoTrim.TrimColdContexts = false;

        PGODriver DTrim(Trim), DNoTrim(NoTrim);
        VariantOutcome Flat = DTrim.run(PGOVariant::CSSPGOProbeOnly);
        VariantOutcome Trimmed = DTrim.run(PGOVariant::CSSPGOFull);
        VariantOutcome Untrimmed = DNoTrim.run(PGOVariant::CSSPGOFull);

        size_t FlatBytes = profileSizeBytes(Flat.Profile.Flat);
        size_t TrimBytes = profileSizeBytes(Trimmed.Profile.CS);
        size_t RawBytes = profileSizeBytes(Untrimmed.Profile.CS);
        double PerfDelta =
            improvement(Trimmed.EvalCyclesMean, Untrimmed.EvalCyclesMean);
        char RawRatio[32], TrimRatio[32];
        std::snprintf(RawRatio, sizeof(RawRatio), "%.2fx",
                      static_cast<double>(RawBytes) / FlatBytes);
        std::snprintf(TrimRatio, sizeof(TrimRatio), "%.2fx",
                      static_cast<double>(TrimBytes) / FlatBytes);
        return std::vector<std::string>{
            W, std::to_string(FlatBytes), std::to_string(RawBytes),
            std::to_string(TrimBytes), RawRatio, TrimRatio,
            formatSignedPercent(PerfDelta)};
      });
  for (const auto &Row : Rows)
    Table.addRow(Row);
  std::printf("%s\n", Table.render().c_str());
  std::printf("paper: dense call graphs can see ~10x untrimmed growth;\n"
              "trimming brings the CS profile to a size comparable to the\n"
              "regular profile without losing its benefit.\n");
  return 0;
}

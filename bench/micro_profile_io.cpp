//===- bench/micro_profile_io.cpp - profile store I/O benchmark -----------===//
//
// Profile serving benchmark for the continuous-deployment store
// (store/ProfileStore.h): per workload, the size of the CS profile as
// extended text vs binary container vs compact-name (GUID table)
// container, and the time to materialize it three ways —
//
//   text-parse:  parseContextProfile over the full text database (what a
//                text-profile build job pays, always O(whole database));
//   binary-eager: open + loadContext (tools, conversions);
//   binary-lazy: open + loadFunctionContexts for only the functions of
//                one simulated link unit (1/8 of the profiled functions)
//                through the per-function index — the build-job path,
//                O(module), which is the lazy-loading payoff.
//
// Every path is checked for bit-identity (serialized text of the loaded
// profile) before timing. Reports best-of-N wall times
// (CSSPGO_MICRO_REPS, default 3); scale the workloads with CSSPGO_SCALE.
// Emits the shared one-line JSON summary, keyed on the clang-like
// ClangProxy workload, and exits 1 if the binary container is not
// smaller than text or the lazy module-scoped load is not faster than
// the eager full text parse there — the store's two reasons to exist.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "profile/ProfileIO.h"
#include "store/ProfileStore.h"

#include <chrono>
#include <cstring>

using namespace csspgo;
using namespace csspgo::bench;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// Best-of-\p Reps wall time of \p Fn (the standard noise-rejecting
/// estimator on shared hosts).
template <typename FnT> double bestSeconds(unsigned Reps, FnT Fn) {
  double Best = 1e30;
  for (unsigned R = 0; R != Reps; ++R) {
    auto Start = std::chrono::steady_clock::now();
    Fn();
    Best = std::min(Best, secondsSince(Start));
  }
  return Best;
}

std::string fmtMs(double Seconds) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.2f ms", Seconds * 1e3);
  return Buf;
}

std::string fmtX(double Ratio) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1fx", Ratio);
  return Buf;
}

[[noreturn]] void fail(const std::string &Msg) {
  std::fprintf(stderr, "micro_profile_io: FAILED: %s\n", Msg.c_str());
  std::exit(1);
}

struct Row {
  std::string Workload;
  size_t TextBytes = 0;
  size_t BinaryBytes = 0;
  size_t CompactBytes = 0;
  double ParseText = 0;
  double LoadEager = 0;
  double LoadLazy = 0;
  size_t UnitFunctions = 0;
  size_t TotalFunctions = 0;
};

Row benchWorkload(const std::string &Workload, unsigned Reps) {
  Row R;
  R.Workload = Workload;

  PGODriver Driver(makeConfig(Workload));
  VariantOutcome Out = Driver.run(PGOVariant::CSSPGOFull);
  const ContextProfile &CS = Out.Profile.CS;
  std::string Text = serializeContextProfile(CS);
  R.TextBytes = Text.size();

  std::string Bytes = writeStore(CS, {{0, CS.totalSamples(), 1000}});
  R.BinaryBytes = Bytes.size();
  StoreWriteOptions Compact;
  Compact.CompactNames = true;
  R.CompactBytes = writeStore(CS, {{0, CS.totalSamples(), 1000}}, Compact)
                       .size();

  ProfileStore Store;
  std::string Err;
  if (!ProfileStore::open(Bytes, Store, Err))
    fail(Workload + ": store does not open: " + Err);
  R.TotalFunctions = Store.numFunctions();

  // One simulated link unit: every 8th profiled function. A build job in
  // a shared-database deployment materializes only its own module.
  std::vector<size_t> Unit;
  for (size_t I = 0; I < Store.numFunctions(); I += 8)
    Unit.push_back(I);
  R.UnitFunctions = Unit.size();

  // Bit-identity before timing: text parse == eager binary load, and the
  // lazy union over all functions reproduces the eager load too.
  {
    ContextProfile FromText, FromStore, FromLazy;
    if (!parseContextProfile(Text, FromText))
      fail(Workload + ": text profile does not parse");
    if (!Store.loadContext(FromStore, Err))
      fail(Workload + ": eager store load failed: " + Err);
    if (serializeContextProfile(FromText) !=
        serializeContextProfile(FromStore))
      fail(Workload + ": text and binary loads disagree");
    for (size_t I = 0; I != Store.numFunctions(); ++I)
      if (!Store.loadFunctionContexts(I, FromLazy, Err))
        fail(Workload + ": lazy load failed: " + Err);
    if (serializeContextProfile(FromLazy) !=
        serializeContextProfile(FromStore))
      fail(Workload + ": lazy union and eager load disagree");
  }

  R.ParseText = bestSeconds(Reps, [&] {
    ContextProfile P;
    if (!parseContextProfile(Text, P))
      fail(Workload + ": text profile does not parse");
  });
  R.LoadEager = bestSeconds(Reps, [&] {
    ProfileStore S;
    std::string E;
    if (!ProfileStore::open(Bytes, S, E))
      fail(Workload + ": " + E);
    ContextProfile P;
    if (!S.loadContext(P, E))
      fail(Workload + ": " + E);
  });
  R.LoadLazy = bestSeconds(Reps, [&] {
    ProfileStore S;
    std::string E;
    if (!ProfileStore::open(Bytes, S, E))
      fail(Workload + ": " + E);
    ContextProfile P;
    for (size_t I : Unit)
      if (!S.loadFunctionContexts(I, P, E))
        fail(Workload + ": " + E);
  });
  return R;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Jobs = benchJobs(argc, argv);
  unsigned Reps = 3;
  if (const char *Env = std::getenv("CSSPGO_MICRO_REPS"))
    Reps = std::max(1, std::atoi(Env));

  printHeader("micro_profile_io",
              "profile store: text vs binary, eager vs lazy");

  std::vector<std::string> Workloads = serverWorkloadNames();
  Workloads.push_back("ClangProxy");
  auto Rows = runMany<Row>(Workloads.size(), Jobs, [&](size_t I) {
    return benchWorkload(Workloads[I], Reps);
  });

  TextTable Table({"workload", "text", "binary", "compact", "text parse",
                   "binary eager", "lazy (unit)", "lazy speedup"});
  for (const Row &R : Rows)
    Table.addRow({R.Workload, formatBytes(R.TextBytes),
                  formatBytes(R.BinaryBytes), formatBytes(R.CompactBytes),
                  fmtMs(R.ParseText), fmtMs(R.LoadEager), fmtMs(R.LoadLazy),
                  fmtX(R.LoadLazy > 0 ? R.ParseText / R.LoadLazy : 0)});
  std::printf("%s\n", Table.render().c_str());
  std::printf("lazy (unit) opens the store and materializes one simulated\n"
              "link unit (every 8th function) through the per-function\n"
              "index; text parse always pays for the whole database.\n\n");

  const Row &Clang = Rows.back();
  std::printf("ClangProxy: %zu functions, unit of %zu; binary %.0f%% of "
              "text, compact %.0f%%\n",
              Clang.TotalFunctions, Clang.UnitFunctions,
              100.0 * Clang.BinaryBytes / Clang.TextBytes,
              100.0 * Clang.CompactBytes / Clang.TextBytes);
  printBenchJson(
      "micro_profile_io",
      {{"text_bytes", static_cast<double>(Clang.TextBytes)},
       {"binary_bytes", static_cast<double>(Clang.BinaryBytes)},
       {"compact_bytes", static_cast<double>(Clang.CompactBytes)},
       {"parse_text_ms", Clang.ParseText * 1e3},
       {"load_eager_ms", Clang.LoadEager * 1e3},
       {"load_lazy_ms", Clang.LoadLazy * 1e3},
       {"lazy_speedup",
        Clang.LoadLazy > 0 ? Clang.ParseText / Clang.LoadLazy : 0}});

  if (Clang.BinaryBytes >= Clang.TextBytes)
    fail("binary container is not smaller than text on ClangProxy");
  if (Clang.LoadLazy >= Clang.ParseText)
    fail("lazy module-scoped load is not faster than the eager text "
         "parse on ClangProxy");
  return 0;
}

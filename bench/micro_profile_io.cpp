//===- bench/micro_profile_io.cpp - profile store I/O benchmark -----------===//
//
// Profile serving benchmark for the continuous-deployment store
// (store/ProfileStore.h): per workload, the size of the CS profile as
// extended text vs binary container vs compact-name (GUID table)
// container, and the time to materialize it three ways —
//
//   text-parse:  parseContextProfile over the full text database (what a
//                text-profile build job pays, always O(whole database));
//   binary-eager: open + loadContext (tools, conversions);
//   binary-lazy: the frozen pre-arena baseline build-job path over one
//                link unit of a simulated fleet database (the workload
//                profile cloned under per-module name suffixes,
//                CSSPGO_IO_CLONES modules, default 16): copying open,
//                eager guid table + name map, by-name lookup, map/trie
//                record decode;
//   flat-lazy:   openBorrowed + binary-search lookup + ContextViewLoader
//                over the same unit — the zero-copy data plane: no byte
//                copy of the container, no side tables, no map nodes, no
//                per-record string allocation.
//
// Every path is checked for bit-identity (serialized text of the loaded
// profile) before timing. Reports best-of-N wall times
// (CSSPGO_MICRO_REPS, default 3); scale the workloads with CSSPGO_SCALE.
// Emits the shared one-line JSON summary, keyed on the clang-like
// ClangProxy workload, and exits 1 if the binary container is not
// smaller than text, the lazy module-scoped load is not faster than the
// eager full text parse, or the flat-lazy path is under the minimum
// speedup over the map-plane lazy load (CSSPGO_IO_MIN_SPEEDUP,
// default 5x) — the data-plane contract this store exists to meet.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "profile/ProfileIO.h"
#include "store/ProfileStore.h"
#include "support/Hashing.h"

#include <chrono>
#include <cstring>
#include <map>

using namespace csspgo;
using namespace csspgo::bench;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// Best-of-\p Reps wall time of \p Fn (the standard noise-rejecting
/// estimator on shared hosts).
template <typename FnT> double bestSeconds(unsigned Reps, FnT Fn) {
  double Best = 1e30;
  for (unsigned R = 0; R != Reps; ++R) {
    auto Start = std::chrono::steady_clock::now();
    Fn();
    Best = std::min(Best, secondsSince(Start));
  }
  return Best;
}

std::string fmtMs(double Seconds) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.2f ms", Seconds * 1e3);
  return Buf;
}

std::string fmtX(double Ratio) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1fx", Ratio);
  return Buf;
}

[[noreturn]] void fail(const std::string &Msg) {
  std::fprintf(stderr, "micro_profile_io: FAILED: %s\n", Msg.c_str());
  std::exit(1);
}

/// Deep-copies \p P with \p Suffix appended to its own name, every call
/// target, and every inlinee (recursively) — one renamed "module copy" of
/// a function profile. Counts, keys and checksums are untouched.
FunctionProfile renameProfile(const FunctionProfile &P,
                              const std::string &Suffix) {
  FunctionProfile Out;
  Out.Name = P.Name + Suffix;
  Out.Guid = P.Guid;
  Out.Checksum = P.Checksum;
  Out.TotalSamples = P.TotalSamples;
  Out.HeadSamples = P.HeadSamples;
  Out.Body = P.Body;
  for (const auto &[K, Targets] : P.Calls)
    for (const auto &[Callee, N] : Targets)
      Out.Calls[K].emplace(Callee + Suffix, N);
  for (const auto &[K, Map] : P.Inlinees)
    for (const auto &[Callee, Sub] : Map)
      Out.Inlinees[K].emplace(Callee + Suffix, renameProfile(Sub, Suffix));
  return Out;
}

/// Builds the shared-database workload: \p Clones disjoint copies of
/// \p CS under per-module name suffixes ".m0" .. ".m<Clones-1>", the
/// shape of a fleet profile store serving many link units. A build job
/// materializes exactly one module out of it.
ContextProfile fleetDB(const ContextProfile &CS, unsigned Clones) {
  ContextProfile DB;
  DB.Kind = CS.Kind;
  for (unsigned M = 0; M != Clones; ++M) {
    std::string Suffix = ".m" + std::to_string(M);
    CS.forEachNode([&](const SampleContext &Ctx, const ContextTrieNode &N) {
      SampleContext RCtx = Ctx;
      for (ContextFrame &F : RCtx)
        F.Func += Suffix;
      ContextTrieNode &Node = DB.getOrCreateNode(RCtx);
      Node.Profile = renameProfile(N.Profile, Suffix);
      Node.HasProfile = true;
      Node.ShouldBeInlined = N.ShouldBeInlined;
    });
  }
  return DB;
}

struct Row {
  std::string Workload;
  size_t TextBytes = 0;
  size_t BinaryBytes = 0;
  size_t CompactBytes = 0;
  double ParseText = 0;
  double LoadEager = 0;
  double LoadLazy = 0;
  double LoadLazyFlat = 0;
  size_t UnitFunctions = 0;
  size_t TotalFunctions = 0;
};

Row benchWorkload(const std::string &Workload, unsigned Reps,
                  unsigned Clones) {
  Row R;
  R.Workload = Workload;

  PGODriver Driver(makeConfig(Workload));
  VariantOutcome Out = Driver.run(PGOVariant::CSSPGOFull);
  ContextProfile DB = fleetDB(Out.Profile.CS, Clones);
  std::string Text = serializeContextProfile(DB);
  R.TextBytes = Text.size();

  std::string Bytes = writeStore(DB, {{0, DB.totalSamples(), 1000}});
  R.BinaryBytes = Bytes.size();
  StoreWriteOptions Compact;
  Compact.CompactNames = true;
  R.CompactBytes = writeStore(DB, {{0, DB.totalSamples(), 1000}}, Compact)
                       .size();

  Expected<ProfileStore> StoreE = ProfileStore::open(Bytes);
  if (!StoreE)
    fail(Workload + ": store does not open: " + StoreE.status().message());
  ProfileStore &Store = *StoreE;
  R.TotalFunctions = Store.numFunctions();

  // One link unit of the fleet: module 0. The suffix is anchored at the
  // end of the name, so ".m0" cannot match ".m10". A build job knows its
  // functions by NAME, so the timed paths below look the unit up by name
  // — lookup cost is part of what the data plane is measured on.
  const std::string UnitSuffix = ".m0";
  std::vector<size_t> Unit;
  std::vector<std::string> UnitNames;
  for (size_t I = 0; I < Store.numFunctions(); ++I) {
    std::string_view N = Store.functionName(I);
    if (N.size() >= UnitSuffix.size() &&
        N.compare(N.size() - UnitSuffix.size(), UnitSuffix.size(),
                  UnitSuffix) == 0) {
      Unit.push_back(I);
      UnitNames.emplace_back(N);
    }
  }
  if (Unit.empty())
    fail(Workload + ": fleet database has no module-0 functions");
  R.UnitFunctions = Unit.size();

  // Bit-identity before timing: text parse == eager binary load, the lazy
  // union over all functions reproduces the eager load, and the zero-copy
  // flat plane agrees with the map plane both on the full database and on
  // the unit subset.
  {
    ContextProfile FromText, FromLazy;
    if (!parseContextProfile(Text, FromText))
      fail(Workload + ": text profile does not parse");
    Expected<ContextProfile> FromStore = Store.loadContext();
    if (!FromStore)
      fail(Workload +
           ": eager store load failed: " + FromStore.status().message());
    std::string Eager = serializeContextProfile(*FromStore);
    if (serializeContextProfile(FromText) != Eager)
      fail(Workload + ": text and binary loads disagree");
    for (size_t I = 0; I != Store.numFunctions(); ++I) {
      Status St = Store.loadFunctionContexts(I, FromLazy);
      if (!St.ok())
        fail(Workload + ": lazy load failed: " + St.message());
    }
    if (serializeContextProfile(FromLazy) != Eager)
      fail(Workload + ": lazy union and eager load disagree");

    Expected<ContextProfileView> FullView = Store.loadContextView();
    if (!FullView)
      fail(Workload +
           ": flat eager load failed: " + FullView.status().message());
    if (serializeContextProfile(contextProfileOf(*FullView)) != Eager)
      fail(Workload + ": flat plane and map plane disagree");

    ContextProfile UnitMap;
    ContextViewLoader UnitFlat(Store);
    for (size_t I : Unit) {
      Status SM = Store.loadFunctionContexts(I, UnitMap);
      if (!SM.ok())
        fail(Workload + ": unit lazy load failed: " + SM.message());
      Status SF = UnitFlat.load(I);
      if (!SF.ok())
        fail(Workload + ": unit flat load failed: " + SF.message());
    }
    if (serializeContextProfile(contextProfileOf(UnitFlat.view())) !=
        serializeContextProfile(UnitMap))
      fail(Workload + ": flat and map unit loads disagree");
  }

  R.ParseText = bestSeconds(Reps, [&] {
    ContextProfile P;
    if (!parseContextProfile(Text, P))
      fail(Workload + ": text profile does not parse");
  });
  R.LoadEager = bestSeconds(Reps, [&] {
    Expected<ProfileStore> S = ProfileStore::open(Bytes);
    if (!S)
      fail(Workload + ": " + S.status().message());
    Expected<ContextProfile> P = S->loadContext();
    if (!P)
      fail(Workload + ": " + P.status().message());
  });
  // The frozen baseline the flat-speedup gate is defined against: the
  // pre-arena (PR-5) build-job path. Its open() copied the container,
  // hashed a GUID per table entry, and built the name->index map; lookups
  // then went through that map and every record decoded into the map/trie
  // containers. open() has since shed the side tables, so the baseline
  // rebuilds them here explicitly — otherwise open()-path improvements
  // would silently flatter the baseline and the gate would measure
  // nothing.
  R.LoadLazy = bestSeconds(Reps, [&] {
    Expected<ProfileStore> S = ProfileStore::open(Bytes);
    if (!S)
      fail(Workload + ": " + S.status().message());
    std::vector<uint64_t> Guids;
    std::map<std::string, size_t> NameToFunc;
    for (size_t I = 0; I != S->numFunctions(); ++I) {
      Guids.push_back(computeFunctionGuid(S->functionName(I)));
      NameToFunc.emplace(S->functionName(I), I);
    }
    ContextProfile P;
    for (const std::string &N : UnitNames) {
      auto It = NameToFunc.find(N);
      if (It == NameToFunc.end())
        fail(Workload + ": unit function missing from the store");
      Status St = S->loadFunctionContexts(It->second, P);
      if (!St.ok())
        fail(Workload + ": " + St.message());
    }
  });
  // The zero-copy flat plane: borrowed open (no byte copy, names stay
  // views into the buffer, no side tables), name lookup by binary search
  // over the sorted index, and arena view decode of just the unit's
  // tiles. The view is the usable representation — merge, scale and
  // ingest all run on it directly.
  R.LoadLazyFlat = bestSeconds(Reps, [&] {
    Expected<ProfileStore> S = ProfileStore::openBorrowed(Bytes);
    if (!S)
      fail(Workload + ": " + S.status().message());
    ContextViewLoader L(*S);
    for (const std::string &N : UnitNames) {
      int I = S->findFunction(N);
      if (I < 0)
        fail(Workload + ": unit function missing from the store");
      Status St = L.load(static_cast<size_t>(I));
      if (!St.ok())
        fail(Workload + ": " + St.message());
    }
  });
  return R;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Jobs = benchJobs(argc, argv);
  unsigned Reps = 3;
  if (const char *Env = std::getenv("CSSPGO_MICRO_REPS"))
    Reps = std::max(1, std::atoi(Env));
  unsigned Clones = 16;
  if (const char *Env = std::getenv("CSSPGO_IO_CLONES"))
    Clones = std::max(1, std::atoi(Env));

  printHeader("micro_profile_io",
              "profile store: text vs binary, eager vs lazy");

  std::vector<std::string> Workloads = serverWorkloadNames();
  Workloads.push_back("ClangProxy");
  auto Rows = runMany<Row>(Workloads.size(), Jobs, [&](size_t I) {
    return benchWorkload(Workloads[I], Reps, Clones);
  });

  TextTable Table({"workload", "text", "binary", "compact", "text parse",
                   "binary eager", "lazy (unit)", "flat lazy",
                   "flat speedup"});
  for (const Row &R : Rows)
    Table.addRow(
        {R.Workload, formatBytes(R.TextBytes), formatBytes(R.BinaryBytes),
         formatBytes(R.CompactBytes), fmtMs(R.ParseText), fmtMs(R.LoadEager),
         fmtMs(R.LoadLazy), fmtMs(R.LoadLazyFlat),
         fmtX(R.LoadLazyFlat > 0 ? R.LoadLazy / R.LoadLazyFlat : 0)});
  std::printf("%s\n", Table.render().c_str());
  std::printf("the database is the workload profile cloned into %u modules\n"
              "(per-module name suffixes); lazy (unit) opens the store and\n"
              "materializes module 0 through the per-function index; flat\n"
              "lazy decodes the same unit on the zero-copy arena plane;\n"
              "text parse always pays for the whole database.\n\n",
              Clones);

  const Row &Clang = Rows.back();
  std::printf("ClangProxy: %zu functions, unit of %zu; binary %.0f%% of "
              "text, compact %.0f%%\n",
              Clang.TotalFunctions, Clang.UnitFunctions,
              100.0 * Clang.BinaryBytes / Clang.TextBytes,
              100.0 * Clang.CompactBytes / Clang.TextBytes);
  double FlatSpeedup =
      Clang.LoadLazyFlat > 0 ? Clang.LoadLazy / Clang.LoadLazyFlat : 0;
  printBenchJson(
      "micro_profile_io",
      {{"text_bytes", static_cast<double>(Clang.TextBytes)},
       {"binary_bytes", static_cast<double>(Clang.BinaryBytes)},
       {"compact_bytes", static_cast<double>(Clang.CompactBytes)},
       {"parse_text_ms", Clang.ParseText * 1e3},
       {"load_eager_ms", Clang.LoadEager * 1e3},
       {"load_lazy_ms", Clang.LoadLazy * 1e3},
       {"load_lazy_flat_ms", Clang.LoadLazyFlat * 1e3},
       {"lazy_speedup",
        Clang.LoadLazy > 0 ? Clang.ParseText / Clang.LoadLazy : 0},
       {"lazy_flat_speedup", FlatSpeedup}});

  if (Clang.BinaryBytes >= Clang.TextBytes)
    fail("binary container is not smaller than text on ClangProxy");
  if (Clang.LoadLazy >= Clang.ParseText)
    fail("lazy module-scoped load is not faster than the eager text "
         "parse on ClangProxy");
  double MinSpeedup = 5.0;
  if (const char *Env = std::getenv("CSSPGO_IO_MIN_SPEEDUP"))
    MinSpeedup = std::atof(Env);
  if (FlatSpeedup < MinSpeedup) {
    char Buf[128];
    std::snprintf(Buf, sizeof(Buf),
                  "flat lazy load is only %.2fx the map-plane lazy load "
                  "on ClangProxy (minimum %.2fx)",
                  FlatSpeedup, MinSpeedup);
    fail(Buf);
  }
  return 0;
}

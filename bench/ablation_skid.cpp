//===- bench/ablation_skid.cpp - §III-B sampling skid -------------*- C++ -*-===//
//
// §III-B "Synchronizing LBR and stack sample": without PEBS-precise
// sampling, the stack snapshot can lag the LBR by a frame (sampling
// skid), desynchronizing the two and breaking context reconstruction.
// The paper uses br_inst_retired.near_taken:upp (PEBS level 2) to
// guarantee synchronization.
//
// Harness: full CSSPGO with precise sampling vs skidding sampling;
// reports the fraction of unsynchronized samples the unwinder detects and
// the resulting performance.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace csspgo;
using namespace csspgo::bench;

int main() {
  printHeader("Ablation", "sampling skid vs PEBS-precise — §III-B");

  TextTable Table({"sampling", "unsynced samples", "CS contexts",
                   "CSSPGO vs plain"});
  for (bool Precise : {true, false}) {
    ExperimentConfig Config = makeConfig("HHVM");
    Config.PreciseSampling = Precise;
    PGODriver Driver(Config);
    const VariantOutcome &Plain = Driver.baseline();
    VariantOutcome Full = Driver.run(PGOVariant::CSSPGOFull);
    double UnsyncedPct =
        Full.ProfGen.Samples
            ? 100.0 * Full.ProfGen.UnsyncedSamples / Full.ProfGen.Samples
            : 0;
    Table.addRow({Precise ? "PEBS-precise" : "skidding",
                  formatPercent(UnsyncedPct),
                  std::to_string(Full.Profile.CS.numProfiles()),
                  formatSignedPercent(improvement(Full.EvalCyclesMean,
                                                  Plain.EvalCyclesMean))});
  }
  std::printf("%s\n", Table.render().c_str());
  std::printf("paper: PEBS eliminates the skid so LBR and stack samples\n"
              "are always synchronized; without it context recovery\n"
              "degrades.\n");
  return 0;
}

//===- bench/ablation_skid.cpp - §III-B sampling skid -------------*- C++ -*-===//
//
// §III-B "Synchronizing LBR and stack sample": without PEBS-precise
// sampling, the stack snapshot can lag the LBR by a frame (sampling
// skid), desynchronizing the two and breaking context reconstruction.
// The paper uses br_inst_retired.near_taken:upp (PEBS level 2) to
// guarantee synchronization.
//
// Harness: full CSSPGO with precise sampling vs skidding sampling;
// reports the fraction of unsynchronized samples the unwinder detects and
// the resulting performance. The two configurations fan out over
// runMany (-j N).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace csspgo;
using namespace csspgo::bench;

int main(int argc, char **argv) {
  unsigned Jobs = benchJobs(argc, argv);
  printHeader("Ablation", "sampling skid vs PEBS-precise — §III-B");

  TextTable Table({"sampling", "unsynced samples", "CS contexts",
                   "CSSPGO vs plain"});
  const bool Configs[] = {true, false};
  auto Rows = runMany<std::vector<std::string>>(2, Jobs, [&](size_t Idx) {
    bool Precise = Configs[Idx];
    ExperimentConfig Config = makeConfig("HHVM");
    Config.PreciseSampling = Precise;
    PGODriver Driver(Config);
    const VariantOutcome &Plain = Driver.baseline();
    VariantOutcome Full = Driver.run(PGOVariant::CSSPGOFull);
    double UnsyncedPct =
        Full.ProfGen.Samples
            ? 100.0 * Full.ProfGen.UnsyncedSamples / Full.ProfGen.Samples
            : 0;
    return std::vector<std::string>{
        Precise ? "PEBS-precise" : "skidding", formatPercent(UnsyncedPct),
        std::to_string(Full.Profile.CS.numProfiles()),
        formatSignedPercent(
            improvement(Full.EvalCyclesMean, Plain.EvalCyclesMean))};
  });
  for (const auto &Row : Rows)
    Table.addRow(Row);
  std::printf("%s\n", Table.render().c_str());
  std::printf("paper: PEBS eliminates the skid so LBR and stack samples\n"
              "are always synchronized; without it context recovery\n"
              "degrades.\n");
  return 0;
}

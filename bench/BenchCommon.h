//===- bench/BenchCommon.h - Shared bench harness helpers --------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-figure benchmark harnesses: workload scaling
/// via the CSSPGO_SCALE environment variable, mean/confidence statistics
/// for the error bars of Fig. 8, and paper-style table printing.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_BENCH_BENCHCOMMON_H
#define CSSPGO_BENCH_BENCHCOMMON_H

#include "pgo/PGODriver.h"
#include "support/SourceText.h"
#include "workload/Workloads.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace csspgo::bench {

/// Request-count multiplier from $CSSPGO_SCALE (default 1.0).
inline double scaleFromEnv() {
  const char *Env = std::getenv("CSSPGO_SCALE");
  if (!Env)
    return 1.0;
  double S = std::atof(Env);
  return S > 0 ? S : 1.0;
}

/// Default experiment config for \p Workload at the environment scale.
inline ExperimentConfig makeConfig(const std::string &Workload) {
  ExperimentConfig Config;
  Config.Workload = workloadPreset(Workload, scaleFromEnv());
  return Config;
}

struct MeanCI {
  double Mean = 0;
  double HalfWidth95 = 0; ///< ~P95 half-width (1.96 * stderr).
};

inline MeanCI meanCI(const std::vector<uint64_t> &Values) {
  MeanCI R;
  if (Values.empty())
    return R;
  long double Sum = 0;
  for (uint64_t V : Values)
    Sum += V;
  R.Mean = static_cast<double>(Sum / Values.size());
  if (Values.size() < 2)
    return R;
  long double Var = 0;
  for (uint64_t V : Values)
    Var += (V - R.Mean) * (V - R.Mean);
  Var /= (Values.size() - 1);
  R.HalfWidth95 =
      1.96 * std::sqrt(static_cast<double>(Var) / Values.size());
  return R;
}

/// Percentage improvement of \p V over \p Base (positive = V faster).
inline double improvement(double V, double Base) {
  return Base > 0 ? 100.0 * (Base - V) / Base : 0.0;
}

inline void printHeader(const char *Id, const char *Title) {
  std::printf("==============================================================\n"
              "%s: %s\n"
              "==============================================================\n",
              Id, Title);
}

} // namespace csspgo::bench

#endif // CSSPGO_BENCH_BENCHCOMMON_H

//===- bench/BenchCommon.h - Shared bench harness helpers --------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-figure benchmark harnesses: workload scaling
/// via the CSSPGO_SCALE environment variable, mean/confidence statistics
/// for the error bars of Fig. 8, paper-style table printing, the runMany
/// fan-out harness that parallelizes independent (binary, seed, config)
/// executions over support/ThreadPool, and the shared one-line JSON
/// summary the BENCH_*.json trajectories parse.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_BENCH_BENCHCOMMON_H
#define CSSPGO_BENCH_BENCHCOMMON_H

#include "pgo/PGODriver.h"
#include "support/SourceText.h"
#include "support/ThreadPool.h"
#include "workload/Workloads.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace csspgo::bench {

/// Request-count multiplier from $CSSPGO_SCALE (default 1.0).
inline double scaleFromEnv() {
  const char *Env = std::getenv("CSSPGO_SCALE");
  if (!Env)
    return 1.0;
  double S = std::atof(Env);
  return S > 0 ? S : 1.0;
}

/// Default experiment config for \p Workload at the environment scale.
/// Profile verification stays at the ExperimentConfig default (Full
/// level, strict): every bench doubles as an invariant sweep over its
/// workload matrix, and a verifier violation aborts the run with a
/// report instead of silently skewing a figure. CSSPGO_NO_VERIFY=1
/// disables it for timing pipelines without the verification pass.
inline ExperimentConfig makeConfig(const std::string &Workload) {
  ExperimentConfig Config;
  Config.Workload = workloadPreset(Workload, scaleFromEnv());
  if (const char *Env = std::getenv("CSSPGO_NO_VERIFY"))
    if (Env[0] && Env[0] != '0') {
      Config.VerifyProfiles = false;
      Config.VerifyStrict = false;
    }
  return Config;
}

struct MeanCI {
  double Mean = 0;
  double HalfWidth95 = 0; ///< ~P95 half-width (1.96 * stderr).
};

inline MeanCI meanCI(const std::vector<uint64_t> &Values) {
  MeanCI R;
  if (Values.empty())
    return R;
  long double Sum = 0;
  for (uint64_t V : Values)
    Sum += V;
  R.Mean = static_cast<double>(Sum / Values.size());
  if (Values.size() < 2)
    return R;
  long double Var = 0;
  for (uint64_t V : Values)
    Var += (V - R.Mean) * (V - R.Mean);
  Var /= (Values.size() - 1);
  R.HalfWidth95 =
      1.96 * std::sqrt(static_cast<double>(Var) / Values.size());
  return R;
}

/// Percentage improvement of \p V over \p Base (positive = V faster).
inline double improvement(double V, double Base) {
  return Base > 0 ? 100.0 * (Base - V) / Base : 0.0;
}

inline void printHeader(const char *Id, const char *Title) {
  std::printf("==============================================================\n"
              "%s: %s\n"
              "==============================================================\n",
              Id, Title);
}

/// Worker count for the bench fan-out: `-j N` / `-jN` on the command line,
/// else $CSSPGO_BENCH_JOBS, else 1 (serial). Every fanned-out task is a
/// deterministic, independent pipeline, so any job count prints the same
/// numbers; this is purely a wall-clock knob.
inline unsigned benchJobs(int argc, char **argv) {
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "-j" && I + 1 < argc)
      return std::max(1, std::atoi(argv[I + 1]));
    if (A.rfind("-j", 0) == 0 && A.size() > 2)
      return std::max(1, std::atoi(A.c_str() + 2));
  }
  if (const char *Env = std::getenv("CSSPGO_BENCH_JOBS"))
    return std::max(1, std::atoi(Env));
  return 1;
}

/// Runs Fn(0) .. Fn(Count-1) — serially when Jobs <= 1, else on a
/// ThreadPool — and returns the results in index order, so tables print
/// rows in the same order as the serial loop they replace. Tasks must be
/// independent (each typically owns its PGODriver); the first task
/// exception is rethrown after all tasks finish.
template <typename ResultT>
std::vector<ResultT> runMany(size_t Count, unsigned Jobs,
                             const std::function<ResultT(size_t)> &Fn) {
  std::vector<ResultT> Out(Count);
  if (Jobs <= 1 || Count <= 1) {
    for (size_t I = 0; I != Count; ++I)
      Out[I] = Fn(I);
    return Out;
  }
  ThreadPool Pool(static_cast<unsigned>(
      std::min<size_t>(Jobs, Count)));
  Pool.parallelFor(Count, [&](size_t I) { Out[I] = Fn(I); });
  return Out;
}

/// Emits the shared one-line machine-readable summary:
///   {"bench":"<name>","metrics":{"k":v,...}}
/// micro_executor and micro_parallel_profgen both use this shape so the
/// BENCH_*.json trajectory tooling parses them uniformly.
inline void
printBenchJson(const std::string &Bench,
               const std::vector<std::pair<std::string, double>> &Metrics) {
  std::string Line = "{\"bench\":\"" + Bench + "\",\"metrics\":{";
  for (size_t I = 0; I != Metrics.size(); ++I) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.6g", Metrics[I].second);
    if (I)
      Line += ',';
    Line += '"';
    Line += Metrics[I].first;
    Line += "\":";
    Line += Buf;
  }
  Line += "}}";
  std::printf("%s\n", Line.c_str());
}

} // namespace csspgo::bench

#endif // CSSPGO_BENCH_BENCHCOMMON_H
